package rsti_test

import (
	"os"
	"path/filepath"
	"testing"

	"rsti"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// TestIntegrationLargeProgram pushes a Table 3-sized generated program
// (thousands of pointer variables) through the entire pipeline — parse,
// check, lower, analyze, instrument under every mechanism, execute — and
// demands identical behaviour everywhere.
func TestIntegrationLargeProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("large program")
	}
	bench := workload.SPEC2006Static()[1] // bzip2-sized: quick but real
	p, err := rsti.Compile(bench.Source)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	eq := p.Equivalence()
	if eq.NV < 100 {
		t.Fatalf("NV = %d, generator under-delivered", eq.NV)
	}
	var want int64
	for i, mech := range append(append([]rsti.Mechanism{}, rsti.Mechanisms...), rsti.Adaptive) {
		res, err := p.Run(mech)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if res.Err != nil {
			t.Fatalf("%s: trapped: %v", mech, res.Err)
		}
		if i == 0 {
			want = res.Exit
		} else if res.Exit != want {
			t.Errorf("%s: exit %d != baseline %d", mech, res.Exit, want)
		}
	}
}

// TestIntegrationPerlbenchAnalysis analyzes the largest everyday static
// program and sanity-checks the Table 3 invariants end to end.
func TestIntegrationPerlbenchAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("large program")
	}
	bench := workload.SPEC2006Static()[0]
	p, err := rsti.Compile(bench.Source)
	if err != nil {
		t.Fatal(err)
	}
	eq := p.Equivalence()
	if eq.RTSTC > eq.RTSTWC {
		t.Errorf("RT(STC)=%d exceeds RT(STWC)=%d", eq.RTSTC, eq.RTSTWC)
	}
	if eq.LargestECTSTWC != 1 {
		t.Errorf("ECT(STWC)=%d, must be 1", eq.LargestECTSTWC)
	}
	if eq.LargestECVSTC < eq.LargestECVSTWC {
		t.Errorf("merging shrank the largest variable class: %d < %d",
			eq.LargestECVSTC, eq.LargestECVSTWC)
	}
	// The generator was parameterized with the paper's counts; the
	// analysis must land in their neighbourhood.
	if eq.NV < bench.PaperNV*8/10 || eq.NV > bench.PaperNV*12/10 {
		t.Errorf("NV=%d vs paper %d (outside 20%% band)", eq.NV, bench.PaperNV)
	}
	st, err := p.InstrumentationStats(rsti.STWC)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() < eq.NV {
		t.Errorf("instrumentation sites (%d) below the pointer population (%d)", st.Total(), eq.NV)
	}
}

// TestIntegrationDeterminism compiles and runs the same benchmark twice
// and demands bit-identical statistics — the property every reported
// experiment relies on.
func TestIntegrationDeterminism(t *testing.T) {
	bench := workload.NBench()[7] // huffman
	run := func() (int64, int64, int64) {
		p, err := rsti.Compile(bench.Source)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(rsti.STWC)
		if err != nil || res.Err != nil {
			t.Fatalf("%v %v", err, res.Err)
		}
		return res.Exit, res.Stats.Cycles, res.Stats.PACOps()
	}
	e1, c1, p1 := run()
	e2, c2, p2 := run()
	if e1 != e2 || c1 != c2 || p1 != p2 {
		t.Errorf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, c1, p1, e2, c2, p2)
	}
}

// TestIntegrationAllSuitesUnderAdaptive spot-checks the Adaptive extension
// against one benchmark from each suite.
func TestIntegrationAllSuitesUnderAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several benchmarks")
	}
	picks := []*workload.Benchmark{
		workload.SPEC2017()[4], // deepsjeng_r
		workload.NBench()[0],   // numeric-sort
		workload.CPython()[6],  // list-ops
		workload.NGINX(),
	}
	for _, b := range picks {
		p, err := rsti.Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		base, err := p.Run(rsti.None)
		if err != nil || base.Err != nil {
			t.Fatalf("%s baseline: %v %v", b.Name, err, base.Err)
		}
		ad, err := p.Run(sti.Adaptive)
		if err != nil || ad.Err != nil {
			t.Fatalf("%s adaptive: %v %v", b.Name, err, ad.Err)
		}
		if ad.Exit != base.Exit {
			t.Errorf("%s: adaptive exit %d != %d", b.Name, ad.Exit, base.Exit)
		}
	}
}

// TestTestdataPrograms keeps the shipped sample programs compiling and
// running cleanly under every mechanism.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := rsti.Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		var want int64
		for i, mech := range append(append([]rsti.Mechanism{}, rsti.Mechanisms...), rsti.Adaptive) {
			res, err := p.Run(mech)
			if err != nil {
				t.Fatalf("%s under %s: %v", file, mech, err)
			}
			if res.Err != nil {
				t.Errorf("%s under %s trapped: %v", file, mech, res.Err)
				continue
			}
			if i == 0 {
				want = res.Exit
			} else if res.Exit != want {
				t.Errorf("%s under %s: exit %d != %d", file, mech, res.Exit, want)
			}
		}
	}
}

module rsti

go 1.22

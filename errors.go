package rsti

import (
	"rsti/internal/core"
	"rsti/internal/engine"
)

// The library's error taxonomy. Failures carry typed sentinels and
// structured error values instead of match-me message strings:
//
//	p, err := rsti.Compile(src)
//	switch {
//	case errors.Is(err, rsti.ErrParse):     // syntax error
//	case errors.Is(err, rsti.ErrTypeCheck): // semantic error
//	}
//
//	res, _ := p.Run(rsti.STWC)
//	var te *rsti.TrapError
//	if errors.As(res.Err, &te) {
//	    // te.Kind, te.Fn, te.PC, te.Mechanism
//	}
//	if errors.Is(res.Err, rsti.ErrStepBudget) { ... } // budget exhausted
//
// Context-governed runs surface the standard context errors:
// errors.Is(res.Err, context.Canceled) and
// errors.Is(res.Err, context.DeadlineExceeded) report why a run stopped.
var (
	// ErrParse marks lexical and syntactic Compile failures.
	ErrParse = core.ErrParse
	// ErrTypeCheck marks semantic Compile failures (name resolution,
	// type checking).
	ErrTypeCheck = core.ErrTypeCheck
	// ErrStepBudget matches a run stopped by its step budget (see
	// WithStepBudget and vm.Options.MaxSteps).
	ErrStepBudget = core.ErrStepBudget

	// ErrQueueFull is returned by Engine.TrySubmit when the engine's
	// bounded queue is at capacity.
	ErrQueueFull = engine.ErrQueueFull
	// ErrEngineClosed is returned for jobs submitted to a closed Engine.
	ErrEngineClosed = engine.ErrClosed
	// ErrRunPanic wraps a panic recovered inside an Engine run (e.g. a
	// panicking attack hook); the engine itself keeps serving.
	ErrRunPanic = engine.ErrPanic
)

// TrapError is the structured error carried by Result.Err when a run ends
// in a machine trap. Its Kind (a vm.TrapKind), Fn and PC fields locate
// the trap, and Mechanism records the defense that was enforcing. Use
// errors.As to extract it; the underlying *vm.Trap remains reachable via
// Unwrap.
type TrapError = core.TrapError

package rsti_test

import (
	"errors"
	"strings"
	"testing"

	"rsti"
	"rsti/internal/vm"
)

const demoSrc = `
	int benign(void) { return 7; }
	int evil(void) { return 666; }
	int (*handler)(void);
	int main(void) {
		handler = benign;
		__hook(1);
		printf("calling handler\n");
		return handler();
	}
`

func TestPublicAPIRoundTrip(t *testing.T) {
	p, err := rsti.Compile(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	res, err := p.Run(rsti.STWC, rsti.WithOutput(&out))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("benign run trapped: %v", res.Err)
	}
	if res.Exit != 7 {
		t.Errorf("exit = %d, want 7", res.Exit)
	}
	if !strings.Contains(out.String(), "calling handler") {
		t.Errorf("output = %q", out.String())
	}
}

func TestPublicAPIAttackDetection(t *testing.T) {
	p, err := rsti.Compile(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	hijack := rsti.WithHook(1, func(m *vm.Machine) error {
		addr, _ := m.GlobalAddr("handler")
		tok, _ := m.FuncToken("evil")
		return m.Mem.Poke(addr, tok, 8)
	})

	base, err := p.Run(rsti.None, hijack)
	if err != nil {
		t.Fatal(err)
	}
	if base.Exit != 666 {
		t.Fatalf("baseline hijack failed: exit = %d", base.Exit)
	}
	for _, mech := range rsti.RSTIMechanisms {
		res, err := p.Run(mech, hijack)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("%s: hijack undetected", mech)
		}
	}
}

func TestPublicAPIIntrospection(t *testing.T) {
	p, err := rsti.Compile(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	eq := p.Equivalence()
	if eq.NV == 0 {
		t.Error("no pointer variables found")
	}
	st, err := p.InstrumentationStats(rsti.STWC)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() == 0 {
		t.Error("no instrumentation inserted")
	}
	ir, err := p.DumpIR(rsti.STWC)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ir, "pac") || !strings.Contains(ir, "aut") {
		t.Error("dumped IR shows no PA instructions")
	}
	if none, _ := p.DumpIR(rsti.None); strings.Contains(none, " = pac ") {
		t.Error("baseline IR contains PA instructions")
	}
}

func TestPublicAPIOverhead(t *testing.T) {
	p, err := rsti.Compile(`
		struct n { int v; struct n *next; };
		int main(void) {
			struct n *head = NULL;
			for (int i = 0; i < 50; i++) {
				struct n *x = (struct n*) malloc(sizeof(struct n));
				x->v = i;
				x->next = head;
				head = x;
			}
			int s = 0;
			for (struct n *c = head; c != NULL; c = c->next) s += c->v;
			return s & 127;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Run(rsti.None)
	if err != nil || base.Err != nil {
		t.Fatalf("%v %v", err, base.Err)
	}
	prot, err := p.Run(rsti.STL)
	if err != nil || prot.Err != nil {
		t.Fatalf("%v %v", err, prot.Err)
	}
	if base.Exit != prot.Exit {
		t.Errorf("exit mismatch: %d vs %d", base.Exit, prot.Exit)
	}
	if rsti.Overhead(base, prot) <= 0 {
		t.Error("protection reported no overhead on a pointer-heavy program")
	}
}

func TestPublicAPIWithExtern(t *testing.T) {
	p, err := rsti.Compile(`
		extern long answer(void);
		int main(void) { return (int) answer(); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(rsti.STC, rsti.WithExtern("answer", func(m *vm.Machine, args []uint64) (uint64, error) {
		return 42, nil
	}))
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.Exit != 42 {
		t.Errorf("exit = %d", res.Exit)
	}
}

func TestPublicAPICompileCache(t *testing.T) {
	cache := rsti.NewCache(rsti.CacheConfig{})
	first, err := rsti.Compile(demoSrc, rsti.WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	again, err := rsti.Compile(demoSrc, rsti.WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if first.Analysis() != again.Analysis() {
		t.Error("cached Compile did not share the compilation")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	// Cached programs still run under every mechanism.
	res, err := again.Run(rsti.STL)
	if err != nil || res.Err != nil {
		t.Fatalf("cached program run: %v %v", err, res.Err)
	}
	if res.Exit != 7 {
		t.Errorf("exit = %d, want 7", res.Exit)
	}
}

func TestPublicAPIPrewarm(t *testing.T) {
	p, err := rsti.Compile(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Prewarm(); err != nil {
		t.Fatal(err)
	}
	for _, mech := range rsti.Mechanisms {
		res, err := p.Run(mech)
		if err != nil || res.Err != nil {
			t.Fatalf("%s after Prewarm: %v %v", mech, err, res.Err)
		}
	}
}

// TestProgramOptionsAtCompile exercises the dual-use ProgramOption set:
// options given to Compile become per-Program run defaults, and the same
// option given to Run overrides the default for that execution only.
func TestProgramOptionsAtCompile(t *testing.T) {
	spin := `int main(void){ int i; int a; a = 0; for (i = 0; i < 1000000; i = i + 1) { a = a + i; } return a & 1; }`

	// A step budget set at compile time bounds every run by default.
	p, err := rsti.Compile(spin, rsti.WithStepBudget(50))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(rsti.None)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !errors.Is(res.Err, rsti.ErrStepBudget) {
		t.Fatalf("default step budget not applied: err = %v", res.Err)
	}

	// A per-run override lifts the compile-time default for that run.
	res, err = p.Run(rsti.None, rsti.WithStepBudget(100_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("per-run override did not win: %v", res.Err)
	}

	// The override must not have leaked into the Program's defaults.
	res, err = p.Run(rsti.None)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !errors.Is(res.Err, rsti.ErrStepBudget) {
		t.Fatalf("defaults mutated by a per-run option: err = %v", res.Err)
	}
}

// Package rsti is a Go reproduction of "Enforcing C/C++ Type and Scope at
// Runtime for Control-Flow and Data-Flow Integrity" (ASPLOS 2024): the
// Scope-Type Integrity (STI) policy and its three runtime enforcement
// mechanisms (RSTI-STWC, RSTI-STC, RSTI-STL) built on ARM Pointer
// Authentication.
//
// The package compiles programs written in a C subset, recovers every
// pointer's programmer intent — basic type, scope, and permission — and
// enforces it at runtime with PAC sign/authenticate instructions executed
// by a modelled ARMv8.3 machine (QARMA-64, five PA keys, Top-Byte-Ignore).
//
// Quickstart:
//
//	p, err := rsti.Compile(src)                    // C subset in, analysis out
//	res, err := p.Run(rsti.STWC)                   // protected execution
//	if res.Detected() { ... }                      // a corrupted pointer trapped
//
// Attack experiments register corruption hooks that fire at the victim's
// __hook(n) call sites, modelling an exploit's arbitrary-write primitive:
//
//	res, _ := p.Run(rsti.STWC, rsti.WithHook(1, func(m *vm.Machine) error {
//		addr, _ := m.GlobalAddr("handler")
//		tok, _ := m.FuncToken("evil")
//		return m.Mem.Poke(addr, tok, 8)
//	}))
//
// The mechanisms: None (baseline), PARTS (type-only prior work), STWC,
// STC and STL (the paper's contributions, ordered by strictness), and
// Adaptive (the paper's §7 future-work proposal).
package rsti

import (
	"context"
	"io"
	"time"

	"rsti/internal/compilecache"
	"rsti/internal/core"
	"rsti/internal/opt"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// Mechanism selects a defense; see the constants below.
type Mechanism = sti.Mechanism

// The available mechanisms.
const (
	// None runs without any instrumentation.
	None = sti.None
	// PARTS is the prior-work baseline: PAC modifiers carry only the
	// pointer's basic type.
	PARTS = sti.PARTS
	// STWC is RSTI Scope-Type Without Combining.
	STWC = sti.STWC
	// STC is RSTI Scope-Type with Combining (cast-compatible types merge).
	STC = sti.STC
	// STL is RSTI Scope-Type with Location (modifiers include &p).
	STL = sti.STL
	// Adaptive is the extension realizing the paper's §7 future-work
	// proposal: location binding only for equivalence classes large
	// enough that replay is a credible threat.
	Adaptive = sti.Adaptive
)

// Mechanisms lists every mechanism in evaluation order.
var Mechanisms = sti.Mechanisms

// RSTIMechanisms lists the paper's three contributions.
var RSTIMechanisms = sti.RSTIMechanisms

// Program is a compiled and STI-analyzed program, ready to instrument and
// run under any mechanism.
type Program struct {
	c *core.Compilation
	// defaults is the base RunConfig every execution starts from,
	// accumulated from the ProgramOptions given to Compile. It holds only
	// scalar fields (see programOption), so the per-run struct copy in
	// RunContext is a complete deep copy.
	defaults core.RunConfig
}

// CacheConfig bounds a compilation Cache: MaxEntries caps stored
// compilations, MaxBytes caps their estimated retained size. Zero fields
// take the package defaults (256 entries / 64 MiB); negative means
// unlimited.
type CacheConfig = compilecache.Config

// CacheStats is a snapshot of a Cache's hit/miss/eviction counters and
// current footprint.
type CacheStats = compilecache.Stats

// Cache is a shared, content-addressed compilation cache. Compilation is
// deterministic, so programs with identical source text share one
// compiled representation; concurrent Compile calls for the same source
// run the frontend once and everyone waits for that result. The cache is
// LRU-bounded by entry count and estimated bytes. Safe for concurrent
// use.
type Cache struct {
	c *compilecache.Cache
}

// NewCache returns an empty compilation cache bounded by cfg.
func NewCache(cfg CacheConfig) *Cache {
	return &Cache{c: compilecache.New(cfg)}
}

// Stats returns the cache's effectiveness counters.
func (c *Cache) Stats() CacheStats { return c.c.Stats() }

// The functional options are partitioned into three clearly-typed sets,
// so misusing one is a compile-time type error, not a silent no-op:
//
//   - CompileOption configures compilation only (WithCache). Passing one
//     to Run does not compile.
//   - RunOption configures a single execution only (WithHook, WithExtern,
//     WithOutput, WithOptions). Passing one to Compile does not compile.
//   - ProgramOption is valid in both positions (WithTimeout,
//     WithStepBudget, WithMaxOutput, WithOptimizer, WithTier): given to
//     Compile it sets a default the Program applies to every run; given
//     to Run/RunContext/Engine.Submit it overrides that default for one
//     execution.
//
// Every pre-existing call site keeps compiling: the WithX constructors
// kept their names and argument lists, and a ProgramOption satisfies the
// RunOption interface wherever one was previously accepted.

// CompileOption configures Compile. Options that also implement
// RunOption (see ProgramOption) set per-Program run defaults.
type CompileOption interface{ applyCompile(*compileConfig) }

// RunOption configures a single execution.
type RunOption interface{ applyRun(*core.RunConfig) }

// ProgramOption is accepted by both Compile (as a program-wide default)
// and Run (as a per-execution override).
type ProgramOption interface {
	CompileOption
	RunOption
}

// compileOption adapts a function into a compile-only option.
type compileOption func(*compileConfig)

func (f compileOption) applyCompile(cfg *compileConfig) { f(cfg) }

// runOption adapts a function into a run-only option.
type runOption func(*core.RunConfig)

func (f runOption) applyRun(cfg *core.RunConfig) { f(cfg) }

// programOption adapts a RunConfig mutation into a dual-use option: at
// compile time it edits the Program's default RunConfig, at run time the
// execution's. Only scalar RunConfig fields may be set through it, so
// copying the defaults struct per run is a complete deep copy.
type programOption func(*core.RunConfig)

func (f programOption) applyRun(cfg *core.RunConfig)    { f(cfg) }
func (f programOption) applyCompile(cfg *compileConfig) { f(&cfg.defaults) }

type compileConfig struct {
	cache *Cache
	// defaults accumulates ProgramOptions: the run configuration every
	// execution of the resulting Program starts from.
	defaults core.RunConfig
}

// WithCache makes Compile consult (and populate) the given cache: a
// source already compiled through the same cache is returned without
// re-running the pipeline. Programs handed out by a cached Compile share
// their underlying compilation — safe, since a Program is immutable and
// its per-mechanism builds are built exactly once regardless of how many
// holders race.
func WithCache(c *Cache) CompileOption {
	return compileOption(func(cfg *compileConfig) { cfg.cache = c })
}

// Compile parses, checks, lowers, and analyzes a program written in the
// supported C subset (see package internal/cminor for the exact grammar).
// ProgramOptions passed here become the Program's run defaults: a service
// can compile once with WithTier(true) and WithStepBudget(n) and serve
// every request with those settings, overriding per run as needed.
func Compile(src string, opts ...CompileOption) (*Program, error) {
	var cfg compileConfig
	for _, o := range opts {
		o.applyCompile(&cfg)
	}
	var (
		c   *core.Compilation
		err error
	)
	if cfg.cache != nil {
		c, err = cfg.cache.c.Get(src)
	} else {
		c, err = core.Compile(src)
	}
	if err != nil {
		return nil, err
	}
	return &Program{c: c, defaults: cfg.defaults}, nil
}

// Prewarm instruments the program under every given mechanism (all of
// them when none are named), building distinct mechanisms concurrently.
// A long-lived service calls this once after Compile so first requests
// never pay instrumentation latency; it is never required — Run builds
// lazily.
func (p *Program) Prewarm(mechs ...Mechanism) error {
	if len(mechs) == 0 {
		mechs = Mechanisms
	}
	_, err := p.c.BuildAll(mechs)
	return err
}

// Analysis exposes the STI analysis results: RSTI-types, scopes,
// equivalence classes, the pointer-to-pointer census.
func (p *Program) Analysis() *sti.Analysis { return p.c.Analysis }

// Equivalence returns the program's Table 3-style equivalence-class
// statistics.
func (p *Program) Equivalence() sti.EquivStats { return p.c.Analysis.Equivalence() }

// InstrumentationStats reports the static instrumentation the given
// mechanism inserts.
func (p *Program) InstrumentationStats(mech Mechanism) (*rsti.Stats, error) {
	b, err := p.c.Build(mech)
	if err != nil {
		return nil, err
	}
	return b.Stats, nil
}

// DumpIR renders the (instrumented) intermediate representation, with pac
// and aut instructions visible — the equivalent of inspecting the paper's
// protected binary.
func (p *Program) DumpIR(mech Mechanism) (string, error) {
	b, err := p.c.Build(mech)
	if err != nil {
		return "", err
	}
	return b.Prog.String(), nil
}

// DumpOptimizedIR renders the intermediate representation after the PAC
// elision optimizer processed the build: elided slots carry no pac/aut
// chain and redundant aut instructions are gone.
func (p *Program) DumpOptimizedIR(mech Mechanism) (string, error) {
	b, err := p.c.BuildMode(mech, true)
	if err != nil {
		return "", err
	}
	return b.Prog.String(), nil
}

// OptimizerStats exposes what the PAC elision optimizer removed from one
// mechanism's build (static counts).
type OptimizerStats = opt.Stats

// PACOpStats reports one mechanism's static PAC-op accounting: what
// instrumentation emitted, what the optimizer elided or deleted, and how
// many pairs the VM predecoder fused for single-dispatch execution.
type PACOpStats struct {
	Mechanism Mechanism
	Optimized bool

	// Static site counts of the build actually executed in this mode.
	Signs  int // pac instructions present
	Auths  int // aut instructions present (post-optimizer when Optimized)
	Strips int // xpac instructions present

	// Optimizer removals (zero when !Optimized).
	ElidedSigns    int // pac sites skipped for elided slots
	ElidedAuths    int // aut sites skipped for elided slots
	RedundantAuths int // aut instructions deleted by the availability pass
	ElidableVars   int // variables proven safe to leave unsigned

	// Superinstruction groups predecode marked for fused dispatch: the
	// original adjacent pairs plus the widened aut+store and
	// aut+fieldaddr/indexaddr+load/store shapes.
	FusedAuthLoads      int
	FusedSignStores     int
	FusedAuthStores     int
	FusedAuthAddrLoads  int
	FusedAuthAddrStores int
}

// FusedGroups returns the total number of superinstruction groups marked
// in the build.
func (s *PACOpStats) FusedGroups() int {
	return s.FusedAuthLoads + s.FusedSignStores + s.FusedAuthStores +
		s.FusedAuthAddrLoads + s.FusedAuthAddrStores
}

// PACOps returns the static PAC ops present in the build.
func (s *PACOpStats) PACOps() int { return s.Signs + s.Auths + s.Strips }

// PACOpStats returns the per-mechanism PAC-op accounting for the build in
// the given optimizer mode (building it on first use).
func (p *Program) PACOpStats(mech Mechanism, optimized bool) (*PACOpStats, error) {
	b, err := p.c.BuildMode(mech, optimized)
	if err != nil {
		return nil, err
	}
	fg := b.Image().FusedGroups()
	s := &PACOpStats{
		Mechanism:           mech,
		Optimized:           b.Optimized,
		Signs:               b.Stats.Signs,
		Auths:               b.Stats.Auths,
		Strips:              b.Stats.Strips,
		ElidedSigns:         b.Stats.ElidedSigns,
		ElidedAuths:         b.Stats.ElidedAuths,
		FusedAuthLoads:      fg.AuthLoads,
		FusedSignStores:     fg.SignStores,
		FusedAuthStores:     fg.AuthStores,
		FusedAuthAddrLoads:  fg.AuthAddrLoads,
		FusedAuthAddrStores: fg.AuthAddrStores,
	}
	if b.OptStats != nil {
		s.Auths -= b.OptStats.RedundantAuths
		s.RedundantAuths = b.OptStats.RedundantAuths
		s.ElidableVars = b.OptStats.ElidableVars
	}
	return s, nil
}

// Result is one execution's outcome.
type Result = core.RunResult

// WithHook registers an attack callback for the __hook(id) sites in the
// program.
func WithHook(id int64, h vm.Hook) RunOption {
	return runOption(func(cfg *core.RunConfig) {
		if cfg.Hooks == nil {
			cfg.Hooks = make(map[int64]vm.Hook)
		}
		cfg.Hooks[id] = h
	})
}

// WithExtern supplies a Go implementation for an extern function.
func WithExtern(name string, fn func(*vm.Machine, []uint64) (uint64, error)) RunOption {
	return runOption(func(cfg *core.RunConfig) {
		if cfg.Externs == nil {
			cfg.Externs = make(map[string]func(*vm.Machine, []uint64) (uint64, error))
		}
		cfg.Externs[name] = fn
	})
}

// WithOutput directs the program's printf/puts output to w.
func WithOutput(w io.Writer) RunOption {
	return runOption(func(cfg *core.RunConfig) { cfg.Output = w })
}

// WithOptions overrides the whole VM configuration (memory sizes, step
// budget, PA layout, cost model). Precedence: WithOptions supplies the
// base configuration; WithStepBudget is applied after it and overrides
// Options.MaxSteps; WithTimeout is independent of the VM options (it
// bounds wall-clock time through the run's context, not modelled steps).
// If WithOptions is not given, vm.DefaultOptions() is the base.
func WithOptions(opts vm.Options) RunOption {
	return runOption(func(cfg *core.RunConfig) { cfg.Options = opts })
}

// WithTimeout bounds the run's wall-clock time. When it expires the
// interpreter stops at its next cancellation checkpoint and the Result's
// Err is a *TrapError of kind vm.TrapCancelled satisfying
// errors.Is(err, context.DeadlineExceeded). The deadline composes with
// any deadline already on the RunContext context (whichever is sooner
// wins). As a ProgramOption it may also be given to Compile, bounding
// every run of the Program by default.
func WithTimeout(d time.Duration) ProgramOption {
	return programOption(func(cfg *core.RunConfig) { cfg.Timeout = d })
}

// WithStepBudget bounds the run to n modelled interpreter steps; an
// exhausted budget surfaces as a *TrapError satisfying
// errors.Is(err, ErrStepBudget). It overrides the MaxSteps of any
// WithOptions configuration regardless of option order. As a
// ProgramOption it may also be given to Compile as the Program-wide
// default budget.
func WithStepBudget(n int64) ProgramOption {
	return programOption(func(cfg *core.RunConfig) { cfg.StepBudget = n })
}

// WithMaxOutput caps the internally captured program output at n bytes
// (see Result.OutputTruncated). It has no effect when WithOutput routes
// output to a caller-supplied writer. Negative n removes the default
// 1 MiB cap. Dual-use: see ProgramOption.
func WithMaxOutput(n int) ProgramOption {
	return programOption(func(cfg *core.RunConfig) { cfg.MaxOutputBytes = n })
}

// WithOptimizer forces the PAC elision optimizer on or off for this run,
// overriding the process default (see OptimizerDefault). Optimized and
// unoptimized builds are cached independently, so flipping per run never
// re-instruments. Dual-use: see ProgramOption.
func WithOptimizer(on bool) ProgramOption {
	return programOption(func(cfg *core.RunConfig) {
		if on {
			cfg.Optimize = core.OptimizeOn
		} else {
			cfg.Optimize = core.OptimizeOff
		}
	})
}

// OptimizerDefault reports whether runs use the PAC elision optimizer
// when no WithOptimizer option is given — the RSTI_OPT environment
// toggle, read once per process.
func OptimizerDefault() bool { return core.DefaultOptimize() }

// WithTier forces the profile-guided direct-threaded execution tier on or
// off for this run, overriding the process default (see TierDefault).
// The tier changes host dispatch speed only: modelled cycles, instruction
// and PAC-op counts, trap kinds/attribution and program output are
// bit-identical with it on or off. Tier-on and tier-off runs of one
// Program use separate shared images, so flipping per run never perturbs
// the other tier's profile. Dual-use: see ProgramOption.
func WithTier(on bool) ProgramOption {
	return programOption(func(cfg *core.RunConfig) {
		if on {
			cfg.Tier = core.TierOn
		} else {
			cfg.Tier = core.TierOff
		}
	})
}

// TierDefault reports whether runs use the threaded execution tier when
// no WithTier option is given — the RSTI_TIER environment toggle, read
// once per process.
func TierDefault() bool { return core.DefaultTier() }

// Run executes the program under the given mechanism with a background
// context; see RunContext.
func (p *Program) Run(mech Mechanism, opts ...RunOption) (*Result, error) {
	return p.RunContext(context.Background(), mech, opts...)
}

// RunContext executes the program under the given mechanism, honouring
// ctx: when ctx is cancelled or its deadline passes, the interpreter
// stops at its next checkpoint (every few-thousand modelled steps) and
// the Result carries a *TrapError of kind vm.TrapCancelled whose chain
// includes ctx's error. A Program is immutable after Compile, so any
// number of RunContext calls may run concurrently on the same Program —
// each gets its own machine. The returned error reports infrastructure
// failures (instrumentation bugs); execution outcomes, including traps
// and cancellation, are reported in the Result.
func (p *Program) RunContext(ctx context.Context, mech Mechanism, opts ...RunOption) (*Result, error) {
	cfg := p.defaults
	for _, o := range opts {
		o.applyRun(&cfg)
	}
	return p.c.RunContext(ctx, mech, cfg)
}

// Overhead computes the relative cycle overhead of a protected run over a
// baseline run of the same program.
func Overhead(base, protected *Result) float64 { return core.Overhead(base, protected) }

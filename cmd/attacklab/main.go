// Command attacklab runs the paper's full Table 1 attack matrix — ten
// control-flow hijacking attacks and two data-oriented attacks — against
// the uninstrumented baseline, the PARTS baseline, and all three RSTI
// mechanisms, and prints the detection matrix plus the Table 2 capability
// summary.
//
// Usage:
//
//	attacklab            # the matrix
//	attacklab -v         # plus each attack's scope-type details
//	attacklab -table2    # plus the mechanism capability summary
package main

import (
	"flag"
	"fmt"
	"os"

	"rsti/internal/eval"
)

func main() {
	verbose := flag.Bool("v", false, "print each attack's scope-type details")
	table2 := flag.Bool("table2", false, "print the Table 2 capability summary")
	flag.Parse()

	res, err := eval.MeasureTable1()
	if err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())

	if *verbose {
		for _, row := range res.Rows {
			s := row.Scenario
			fmt.Printf("%s\n", s.Name)
			fmt.Printf("  corrupted: %s -> %s\n", s.Corrupted, s.Target)
			fmt.Printf("  paper's scope-type:    %s\n", s.OriginalInfo)
			if rt, err := s.MeasuredRSTIType(); err == nil {
				fmt.Printf("  measured RSTI-type:    %s\n", rt)
			}
			fmt.Printf("  attacker substitutes:  %s\n", s.CorruptedInfo)
			fmt.Println()
		}
	}

	if *table2 {
		fmt.Println(eval.RenderTable2())
	}
}

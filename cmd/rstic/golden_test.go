package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/golden/<name>.golden, rewriting
// the file under -update. Analysis and instrumentation are deterministic
// functions of the source, so full-output goldens are stable.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/rstic -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		// No mode flags: the default types+equiv summary.
		{"demo-default", []string{"../../testdata/demo.c"}},
		{"demo-stats-stl", []string{"-stats", "-mech", "rsti-stl", "../../testdata/demo.c"}},
		{"demo-equiv", []string{"-equiv", "../../testdata/demo.c"}},
		{"doubleptr-pp", []string{"-pp", "../../testdata/doubleptr.c"}},
		// The instrumented IR for the paper's Figure 7 program — small
		// enough to eyeball, pins pac/aut placement end to end.
		{"doubleptr-dump-stwc", []string{"-dump", "-mech", "rsti-stwc", "../../testdata/doubleptr.c"}},
		{"victim-types", []string{"-types", "../../testdata/victim.c"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
			}
			if stderr.Len() != 0 {
				t.Errorf("clean run wrote to stderr: %s", stderr.String())
			}
			golden(t, tc.name, stdout.Bytes())
		})
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"no-file", nil, 2},
		{"bad-flag", []string{"-definitely-not-a-flag"}, 2},
		{"unknown-mechanism", []string{"-mech", "rop", "../../testdata/demo.c"}, 2},
		{"missing-file", []string{"no-such-file.c"}, 1},
		{"parse-error", []string{"testdata/broken.c"}, 1},
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "broken.c"), []byte("int main(void) { return 0 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Remove(filepath.Join("testdata", "broken.c")) })
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.wantCode {
				t.Errorf("exit code %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("error case produced no diagnostics on stderr")
			}
		})
	}
}

// Command rstic is the RSTI "compiler" front door: it compiles a program
// in the supported C subset, runs the STI analysis, and prints any
// combination of the analysis results and the (instrumented) IR.
//
// Usage:
//
//	rstic [flags] file.c
//	  -mech string   mechanism to instrument for: none|parts|rsti-stwc|rsti-stc|rsti-stl (default rsti-stwc)
//	  -dump          print the instrumented IR
//	  -types         print the RSTI-type table (the paper's Figure 5 view)
//	  -equiv         print equivalence-class statistics (Table 3 columns)
//	  -pp            print the pointer-to-pointer census and CE assignments
//	  -stats         print static instrumentation counts
package main

import (
	"flag"
	"fmt"
	"os"

	"rsti"
	"rsti/internal/sti"
)

func main() {
	mechName := flag.String("mech", "rsti-stwc", "mechanism: none|parts|rsti-stwc|rsti-stc|rsti-stl")
	dump := flag.Bool("dump", false, "print the instrumented IR")
	types := flag.Bool("types", false, "print the RSTI-type table")
	equiv := flag.Bool("equiv", false, "print equivalence-class statistics")
	pp := flag.Bool("pp", false, "print the pointer-to-pointer census")
	stats := flag.Bool("stats", false, "print static instrumentation counts")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rstic [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	mech, ok := sti.ParseMechanism(*mechName)
	if !ok {
		fmt.Fprintf(os.Stderr, "rstic: unknown mechanism %q\n", *mechName)
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstic:", err)
		os.Exit(1)
	}
	p, err := rsti.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstic:", err)
		os.Exit(1)
	}

	nothing := !*dump && !*types && !*equiv && !*pp && !*stats
	if *types || nothing {
		fmt.Println("RSTI-types:")
		for _, rt := range p.Analysis().Types {
			if len(rt.Vars)+len(rt.Fields) > 0 {
				fmt.Printf("  %s  (%d vars, %d fields)\n", rt, len(rt.Vars), len(rt.Fields))
			}
		}
	}
	if *equiv || nothing {
		eq := p.Equivalence()
		fmt.Printf("equivalence: NT=%d NV=%d RT(STWC)=%d RT(STC)=%d largestECV(STWC)=%d largestECV(STC)=%d largestECT(STC)=%d\n",
			eq.NT, eq.NV, eq.RTSTWC, eq.RTSTC, eq.LargestECVSTWC, eq.LargestECVSTC, eq.LargestECTSTC)
	}
	if *pp {
		an := p.Analysis()
		fmt.Printf("pointer-to-pointer: %d sites, %d CE/FE sites\n", an.PPTotalSites, len(an.PPSpecial))
		for _, s := range an.PPSpecial {
			fmt.Printf("  %s: %s -> %s (CE %d)\n", s.Fn, s.FromTy, s.ToTy, s.CE)
		}
	}
	if *stats {
		st, err := p.InstrumentationStats(mech)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rstic:", err)
			os.Exit(1)
		}
		fmt.Printf("instrumentation under %s: %d pac, %d aut, %d conversion pairs, %d pp ops (total %d)\n",
			mech, st.Signs, st.Auths, st.ConvPairs,
			st.PPAdds+st.PPSigns+st.PPAuths+st.PPTags, st.Total())
	}
	if *dump {
		ir, err := p.DumpIR(mech)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rstic:", err)
			os.Exit(1)
		}
		fmt.Print(ir)
	}
}

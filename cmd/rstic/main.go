// Command rstic is the RSTI "compiler" front door: it compiles a program
// in the supported C subset, runs the STI analysis, and prints any
// combination of the analysis results and the (instrumented) IR.
//
// Usage:
//
//	rstic [flags] file.c
//	  -mech string   mechanism to instrument for: none|parts|rsti-stwc|rsti-stc|rsti-stl (default rsti-stwc)
//	  -dump          print the instrumented IR
//	  -types         print the RSTI-type table (the paper's Figure 5 view)
//	  -equiv         print equivalence-class statistics (Table 3 columns)
//	  -pp            print the pointer-to-pointer census and CE assignments
//	  -stats         print static instrumentation counts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rsti"
	"rsti/internal/sti"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rstic", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mechName := fs.String("mech", "rsti-stwc", "mechanism: none|parts|rsti-stwc|rsti-stc|rsti-stl")
	dump := fs.Bool("dump", false, "print the instrumented IR")
	types := fs.Bool("types", false, "print the RSTI-type table")
	equiv := fs.Bool("equiv", false, "print equivalence-class statistics")
	pp := fs.Bool("pp", false, "print the pointer-to-pointer census")
	stats := fs.Bool("stats", false, "print static instrumentation counts")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: rstic [flags] file.c")
		fs.PrintDefaults()
		return 2
	}
	mech, ok := sti.ParseMechanism(*mechName)
	if !ok {
		fmt.Fprintf(stderr, "rstic: unknown mechanism %q\n", *mechName)
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "rstic:", err)
		return 1
	}
	p, err := rsti.Compile(string(src))
	if err != nil {
		fmt.Fprintln(stderr, "rstic:", err)
		return 1
	}

	nothing := !*dump && !*types && !*equiv && !*pp && !*stats
	if *types || nothing {
		fmt.Fprintln(stdout, "RSTI-types:")
		for _, rt := range p.Analysis().Types {
			if len(rt.Vars)+len(rt.Fields) > 0 {
				fmt.Fprintf(stdout, "  %s  (%d vars, %d fields)\n", rt, len(rt.Vars), len(rt.Fields))
			}
		}
	}
	if *equiv || nothing {
		eq := p.Equivalence()
		fmt.Fprintf(stdout, "equivalence: NT=%d NV=%d RT(STWC)=%d RT(STC)=%d largestECV(STWC)=%d largestECV(STC)=%d largestECT(STC)=%d\n",
			eq.NT, eq.NV, eq.RTSTWC, eq.RTSTC, eq.LargestECVSTWC, eq.LargestECVSTC, eq.LargestECTSTC)
	}
	if *pp {
		an := p.Analysis()
		fmt.Fprintf(stdout, "pointer-to-pointer: %d sites, %d CE/FE sites\n", an.PPTotalSites, len(an.PPSpecial))
		for _, s := range an.PPSpecial {
			fmt.Fprintf(stdout, "  %s: %s -> %s (CE %d)\n", s.Fn, s.FromTy, s.ToTy, s.CE)
		}
	}
	if *stats {
		st, err := p.InstrumentationStats(mech)
		if err != nil {
			fmt.Fprintln(stderr, "rstic:", err)
			return 1
		}
		fmt.Fprintf(stdout, "instrumentation under %s: %d pac, %d aut, %d conversion pairs, %d pp ops (total %d)\n",
			mech, st.Signs, st.Auths, st.ConvPairs,
			st.PPAdds+st.PPSigns+st.PPAuths+st.PPTags, st.Total())
	}
	if *dump {
		ir, err := p.DumpIR(mech)
		if err != nil {
			fmt.Fprintln(stderr, "rstic:", err)
			return 1
		}
		fmt.Fprint(stdout, ir)
	}
	return 0
}

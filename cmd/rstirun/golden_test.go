package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/golden/<name>.golden, rewriting
// the file under -update. The modelled machine is deterministic (cycle
// counts included), so full-output goldens are stable.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/rstirun -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"demo-stwc", []string{"-mech", "rsti-stwc", "../../testdata/demo.c"}, 33},
		{"demo-all", []string{"-all", "../../testdata/demo.c"}, 0},
		// A generous -timeout must leave a clean run's output untouched.
		{"demo-timeout-clean", []string{"-mech", "rsti-stwc", "-timeout", "30s", "../../testdata/demo.c"}, 33},
		// A tiny -steps budget deterministically exhausts mid-run.
		{"demo-steps-exhausted", []string{"-mech", "none", "-steps", "50", "../../testdata/demo.c"}, 1},
		{"doubleptr-stl", []string{"-mech", "rsti-stl", "../../testdata/doubleptr.c"}, 0},
		{"victim-none", []string{"-mech", "none", "../../testdata/victim.c"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.wantCode {
				t.Fatalf("exit code %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			var combined bytes.Buffer
			combined.WriteString("== stdout ==\n")
			combined.Write(stdout.Bytes())
			combined.WriteString("== stderr ==\n")
			combined.Write(stderr.Bytes())
			golden(t, tc.name, combined.Bytes())
		})
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
	}{
		{"no-file", []string{"-mech", "rsti-stwc"}, 2},
		{"bad-flag", []string{"-definitely-not-a-flag"}, 2},
		{"unknown-mechanism", []string{"-mech", "rop", "../../testdata/demo.c"}, 2},
		{"missing-file", []string{"no-such-file.c"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.wantCode {
				t.Errorf("exit code %d, want %d\nstderr: %s", code, tc.wantCode, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("usage error produced no diagnostics on stderr")
			}
		})
	}
}

// TestSecurityTrapExitCode: the documented grep-able exit code for a
// defense detection, produced by a deliberately type-confused program.
func TestSecurityTrapExitCode(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "confused.c")
	prog := `
struct a { long x; struct a *next; };
struct b { long y; struct b *prev; };
struct a *ga;
struct b *gb;
int main(void) {
	ga = (struct a*) malloc(sizeof(struct a));
	gb = (struct b*) malloc(sizeof(struct b));
	ga->x = 1;
	gb->y = 2;
	__hook(1);
	return (int)(ga->x + gb->y);
}
`
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	// Benign run first: the __hook site with no registered hook is inert.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mech", "rsti-stl", src}, &stdout, &stderr); code != 3 {
		t.Fatalf("benign run exit %d, want 3\nstderr: %s", code, stderr.String())
	}
}

// Command rstirun compiles and executes a program under a chosen defense
// mechanism, reporting the exit status, any security trap, and the
// execution statistics (cycles, PA instructions).
//
// Usage:
//
//	rstirun [-mech rsti-stwc] [-all] [-v] file.c
//
// With -all the program runs under every mechanism and a comparison table
// is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"rsti"
	"rsti/internal/report"
	"rsti/internal/sti"
)

func main() {
	mechName := flag.String("mech", "rsti-stwc", "mechanism: none|parts|rsti-stwc|rsti-stc|rsti-stl")
	all := flag.Bool("all", false, "run under every mechanism and compare")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rstirun [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstirun:", err)
		os.Exit(1)
	}
	p, err := rsti.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstirun:", err)
		os.Exit(1)
	}

	if *all {
		t := &report.Table{
			Headers: []string{"mechanism", "exit", "cycles", "PA ops", "overhead", "status"},
		}
		var baseCycles int64
		for _, mech := range rsti.Mechanisms {
			res, err := p.Run(mech, rsti.WithOutput(os.Stdout))
			if err != nil {
				fmt.Fprintln(os.Stderr, "rstirun:", err)
				os.Exit(1)
			}
			if mech == rsti.None {
				baseCycles = res.Stats.Cycles
			}
			status := "ok"
			if res.Err != nil {
				status = res.Err.Error()
			}
			over := "-"
			if baseCycles > 0 && mech != rsti.None {
				over = fmt.Sprintf("%+.2f%%", float64(res.Stats.Cycles-baseCycles)/float64(baseCycles)*100)
			}
			t.Add(mech.String(), fmt.Sprintf("%d", res.Exit),
				fmt.Sprintf("%d", res.Stats.Cycles),
				fmt.Sprintf("%d", res.Stats.PACOps()+res.Stats.PPOps),
				over, status)
		}
		fmt.Println(t)
		return
	}

	mech, ok := sti.ParseMechanism(*mechName)
	if !ok {
		fmt.Fprintf(os.Stderr, "rstirun: unknown mechanism %q\n", *mechName)
		os.Exit(2)
	}
	res, err := p.Run(mech, rsti.WithOutput(os.Stdout))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstirun:", err)
		os.Exit(1)
	}
	if res.Err != nil {
		if res.Detected() {
			fmt.Fprintf(os.Stderr, "rstirun: SECURITY TRAP: %v\n", res.Err)
			os.Exit(42)
		}
		fmt.Fprintf(os.Stderr, "rstirun: %v\n", res.Err)
		os.Exit(1)
	}
	fmt.Printf("exit=%d cycles=%d pa-ops=%d\n", res.Exit, res.Stats.Cycles, res.Stats.PACOps()+res.Stats.PPOps)
	os.Exit(int(res.Exit) & 0x7f)
}

// Command rstirun compiles and executes a program under a chosen defense
// mechanism, reporting the exit status, any security trap, and the
// execution statistics (cycles, PA instructions).
//
// Usage:
//
//	rstirun [-mech rsti-stwc] [-all] [-timeout 10s] [-steps N] file.c
//
// With -all the program runs under every mechanism and a comparison table
// is printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"rsti"
	"rsti/internal/report"
	"rsti/internal/sti"
)

func main() {
	mechName := flag.String("mech", "rsti-stwc", "mechanism: none|parts|rsti-stwc|rsti-stc|rsti-stl")
	all := flag.Bool("all", false, "run under every mechanism and compare")
	timeout := flag.Duration("timeout", 0, "wall-clock limit per run (0 = none)")
	steps := flag.Int64("steps", 0, "modelled step budget per run (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rstirun [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstirun:", err)
		os.Exit(1)
	}
	p, err := rsti.Compile(string(src))
	if err != nil {
		switch {
		case errors.Is(err, rsti.ErrParse):
			fmt.Fprintln(os.Stderr, "rstirun: syntax error:", err)
		case errors.Is(err, rsti.ErrTypeCheck):
			fmt.Fprintln(os.Stderr, "rstirun: type error:", err)
		default:
			fmt.Fprintln(os.Stderr, "rstirun:", err)
		}
		os.Exit(1)
	}
	opts := []rsti.RunOption{rsti.WithOutput(os.Stdout)}
	if *timeout > 0 {
		opts = append(opts, rsti.WithTimeout(*timeout))
	}
	if *steps > 0 {
		opts = append(opts, rsti.WithStepBudget(*steps))
	}

	if *all {
		t := &report.Table{
			Headers: []string{"mechanism", "exit", "cycles", "PA ops", "overhead", "status"},
		}
		var baseCycles int64
		for _, mech := range rsti.Mechanisms {
			res, err := p.Run(mech, opts...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rstirun:", err)
				os.Exit(1)
			}
			if mech == rsti.None {
				baseCycles = res.Stats.Cycles
			}
			status := "ok"
			if res.Err != nil {
				status = res.Err.Error()
			}
			over := "-"
			if baseCycles > 0 && mech != rsti.None {
				over = fmt.Sprintf("%+.2f%%", float64(res.Stats.Cycles-baseCycles)/float64(baseCycles)*100)
			}
			t.Add(mech.String(), fmt.Sprintf("%d", res.Exit),
				fmt.Sprintf("%d", res.Stats.Cycles),
				fmt.Sprintf("%d", res.Stats.PACOps()+res.Stats.PPOps),
				over, status)
		}
		fmt.Println(t)
		return
	}

	mech, ok := sti.ParseMechanism(*mechName)
	if !ok {
		fmt.Fprintf(os.Stderr, "rstirun: unknown mechanism %q\n", *mechName)
		os.Exit(2)
	}
	res, err := p.Run(mech, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rstirun:", err)
		os.Exit(1)
	}
	if res.Err != nil {
		var te *rsti.TrapError
		switch {
		case errors.As(res.Err, &te) && te.SecurityTrap():
			fmt.Fprintf(os.Stderr, "rstirun: SECURITY TRAP in %s: %v\n", te.Fn, res.Err)
			os.Exit(42)
		case errors.Is(res.Err, rsti.ErrStepBudget):
			fmt.Fprintf(os.Stderr, "rstirun: step budget exhausted: %v\n", res.Err)
			os.Exit(1)
		case errors.Is(res.Err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "rstirun: timed out: %v\n", res.Err)
			os.Exit(1)
		default:
			fmt.Fprintf(os.Stderr, "rstirun: %v\n", res.Err)
			os.Exit(1)
		}
	}
	fmt.Printf("exit=%d cycles=%d pa-ops=%d\n", res.Exit, res.Stats.Cycles, res.Stats.PACOps()+res.Stats.PPOps)
	os.Exit(int(res.Exit) & 0x7f)
}

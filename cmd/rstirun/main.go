// Command rstirun compiles and executes a program under a chosen defense
// mechanism, reporting the exit status, any security trap, and the
// execution statistics (cycles, PA instructions).
//
// Usage:
//
//	rstirun [-mech rsti-stwc] [-all] [-timeout 10s] [-steps N] file.c
//
// With -all the program runs under every mechanism and a comparison table
// is printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"rsti"
	"rsti/internal/report"
	"rsti/internal/sti"
)

// Exit codes: 0 clean (or the program's own low exit bits), 1 for
// compile/run failures, 2 for usage errors, and exitSecurityTrap when
// the defense fired — scripts grep for that one.
const exitSecurityTrap = 42

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rstirun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mechName := fs.String("mech", "rsti-stwc", "mechanism: none|parts|rsti-stwc|rsti-stc|rsti-stl")
	all := fs.Bool("all", false, "run under every mechanism and compare")
	timeout := fs.Duration("timeout", 0, "wall-clock limit per run (0 = none)")
	steps := fs.Int64("steps", 0, "modelled step budget per run (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: rstirun [flags] file.c")
		fs.PrintDefaults()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "rstirun:", err)
		return 1
	}
	p, err := rsti.Compile(string(src))
	if err != nil {
		switch {
		case errors.Is(err, rsti.ErrParse):
			fmt.Fprintln(stderr, "rstirun: syntax error:", err)
		case errors.Is(err, rsti.ErrTypeCheck):
			fmt.Fprintln(stderr, "rstirun: type error:", err)
		default:
			fmt.Fprintln(stderr, "rstirun:", err)
		}
		return 1
	}
	opts := []rsti.RunOption{rsti.WithOutput(stdout)}
	if *timeout > 0 {
		opts = append(opts, rsti.WithTimeout(*timeout))
	}
	if *steps > 0 {
		opts = append(opts, rsti.WithStepBudget(*steps))
	}

	if *all {
		t := &report.Table{
			Headers: []string{"mechanism", "exit", "cycles", "PA ops", "overhead", "status"},
		}
		var baseCycles int64
		for _, mech := range rsti.Mechanisms {
			res, err := p.Run(mech, opts...)
			if err != nil {
				fmt.Fprintln(stderr, "rstirun:", err)
				return 1
			}
			if mech == rsti.None {
				baseCycles = res.Stats.Cycles
			}
			status := "ok"
			if res.Err != nil {
				status = res.Err.Error()
			}
			over := "-"
			if baseCycles > 0 && mech != rsti.None {
				over = fmt.Sprintf("%+.2f%%", float64(res.Stats.Cycles-baseCycles)/float64(baseCycles)*100)
			}
			t.Add(mech.String(), fmt.Sprintf("%d", res.Exit),
				fmt.Sprintf("%d", res.Stats.Cycles),
				fmt.Sprintf("%d", res.Stats.PACOps()+res.Stats.PPOps),
				over, status)
		}
		fmt.Fprintln(stdout, t)
		return 0
	}

	mech, ok := sti.ParseMechanism(*mechName)
	if !ok {
		fmt.Fprintf(stderr, "rstirun: unknown mechanism %q\n", *mechName)
		return 2
	}
	res, err := p.Run(mech, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "rstirun:", err)
		return 1
	}
	if res.Err != nil {
		var te *rsti.TrapError
		switch {
		case errors.As(res.Err, &te) && te.SecurityTrap():
			fmt.Fprintf(stderr, "rstirun: SECURITY TRAP in %s: %v\n", te.Fn, res.Err)
			return exitSecurityTrap
		case errors.Is(res.Err, rsti.ErrStepBudget):
			fmt.Fprintf(stderr, "rstirun: step budget exhausted: %v\n", res.Err)
			return 1
		case errors.Is(res.Err, context.DeadlineExceeded):
			fmt.Fprintf(stderr, "rstirun: timed out: %v\n", res.Err)
			return 1
		default:
			fmt.Fprintf(stderr, "rstirun: %v\n", res.Err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "exit=%d cycles=%d pa-ops=%d\n", res.Exit, res.Stats.Cycles, res.Stats.PACOps()+res.Stats.PPOps)
	return int(res.Exit) & 0x7f
}

// Command rstifuzz runs the differential fuzzing oracle over generated
// programs: long soak runs for the RSTI pipeline's cross-mechanism
// equivalence, with corpus persistence and automatic minimization of
// failures.
//
// Usage:
//
//	rstifuzz [-seed 1] [-n 500] [-attacks] [-synth] [-workers 2] \
//	         [-corpus testdata/difftest] [-minimize] [-budget N] \
//	         [-optimizer inherit|on|off] [-tier inherit|on|off] [-v]
//	rstifuzz -replay [-corpus testdata/difftest]
//
// Seeds seed..seed+n-1 each expand into one generated program checked
// under every mechanism through both the direct and the engine path
// (see internal/difftest). Any divergence is minimized and written to
// <corpus>/failures/seed-<N>.{c,txt,json}; the exit status is non-zero.
// -replay re-checks the committed regression seeds in
// <corpus>/seeds.txt instead of a fresh range. A CI failure replays
// deterministically with `rstifuzz -seed <N> -n 1`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rsti/internal/difftest"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rstifuzz", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "first seed of the soak range")
		n        = fs.Int("n", 100, "number of seeds to check")
		attacks  = fs.Bool("attacks", true, "inject the corruption variants")
		synth    = fs.Bool("synth", false, "synthesize tampers from each compiled program and check predictions")
		workers  = fs.Int("workers", 2, "engine workers for the pooled cross-check (0 disables)")
		corpus   = fs.String("corpus", filepath.Join("testdata", "difftest"), "corpus directory")
		minimize = fs.Bool("minimize", true, "minimize diverging configs before saving")
		budget   = fs.Int64("budget", 0, "per-run step budget (0 = default)")
		replay   = fs.Bool("replay", false, "re-check the committed seeds in <corpus>/seeds.txt")
		verbose  = fs.Bool("v", false, "log every seed")
		optmode  = fs.String("optimizer", "inherit", "optimizer mode for all phases: inherit, on or off")
		tiermode = fs.String("tier", "inherit", "execution-tier mode for all phases: inherit, on or off")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opt := difftest.Options{Attacks: *attacks, Synthesis: *synth, EngineWorkers: *workers, StepBudget: *budget}
	switch *optmode {
	case "inherit":
	case "on":
		opt.Optimizer = difftest.OptimizerOn
	case "off":
		opt.Optimizer = difftest.OptimizerOff
	default:
		fmt.Fprintf(os.Stderr, "rstifuzz: unknown -optimizer mode %q\n", *optmode)
		return 2
	}
	switch *tiermode {
	case "inherit":
	case "on":
		opt.Tier = difftest.TierOn
	case "off":
		opt.Tier = difftest.TierOff
	default:
		fmt.Fprintf(os.Stderr, "rstifuzz: unknown -tier mode %q\n", *tiermode)
		return 2
	}
	var seeds []uint64
	if *replay {
		var err error
		seeds, err = difftest.ReadSeeds(filepath.Join(*corpus, "seeds.txt"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rstifuzz:", err)
			return 1
		}
	} else {
		for i := 0; i < *n; i++ {
			seeds = append(seeds, *seed+uint64(i))
		}
	}

	start := time.Now()
	failures := 0
	for i, s := range seeds {
		cfg := difftest.ConfigForSeed(s)
		rep, err := difftest.Check(cfg, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rstifuzz: seed %d: infrastructure: %v\n", s, err)
			return 1
		}
		if *verbose || (i+1)%100 == 0 {
			fmt.Printf("  [%d/%d] seed %d: %d divergences\n", i+1, len(seeds), s, len(rep.Divergences))
		}
		if rep.OK() {
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "rstifuzz: seed %d DIVERGED (%d findings):\n", s, len(rep.Divergences))
		for _, d := range rep.Divergences {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		if *minimize {
			min, minRep, err := difftest.Minimize(cfg, opt, 64)
			if err == nil && minRep != nil && !minRep.OK() {
				cfg, rep = min, minRep
				fmt.Fprintf(os.Stderr, "  minimized to %+v\n", cfg)
			}
		}
		if paths, err := difftest.SaveFailure(*corpus, rep); err != nil {
			fmt.Fprintf(os.Stderr, "rstifuzz: saving failure: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "  reproduction saved: %v\n", paths)
		}
	}

	fmt.Printf("rstifuzz: %d programs checked in %v, %d divergences\n",
		len(seeds), time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		return 1
	}
	return 0
}

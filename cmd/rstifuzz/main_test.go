package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSoakRange(t *testing.T) {
	if code := run([]string{"-seed", "1", "-n", "2", "-workers", "1"}); code != 0 {
		t.Fatalf("healthy soak exited %d", code)
	}
}

func TestRunReplayCorpus(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seeds.txt"), []byte("# corpus\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-replay", "-workers", "1", "-corpus", dir}); code != 0 {
		t.Fatalf("replay of a healthy corpus exited %d", code)
	}
}

func TestRunReplayMissingCorpus(t *testing.T) {
	if code := run([]string{"-replay", "-corpus", filepath.Join(t.TempDir(), "nope")}); code != 1 {
		t.Fatalf("missing corpus exited %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

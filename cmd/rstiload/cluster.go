package main

// Cluster drive (-cluster N): boots an N-peer rstid fleet in process —
// each peer with its own disk cache directory, all joined into one
// consistent-hash ring — and measures the three cluster claims
// end-to-end:
//
//  1. Compile sharing: a mixed workload round-robined across peers must
//     drive the fleet-wide compile count to ~one per distinct program,
//     however many peers and sessions touch it (cache-share rate).
//  2. Forwarding cost: non-owners adopt the owner's artifact over the
//     peer endpoint; the record captures the forwarded-fetch p50/p99.
//  3. Cold restart: a fresh daemon over one peer's artifact directory
//     serves the full {mechanism} x {optimizer} x {tier} matrix with
//     zero instrumentation passes, first runs answered from persisted
//     predecoded artifacts, every modelled number bit-identical to an
//     independently compiled in-process reference.

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rsti/internal/cluster"
	"rsti/internal/compilecache"
	"rsti/internal/core"
	"rsti/internal/eval"
	"rsti/internal/rsti"
	"rsti/internal/service"
	"rsti/internal/sti"
)

const clusterPeerSecret = "rstiload-cluster"

// clusterConfig shapes one cluster drive.
type clusterConfig struct {
	Peers       int
	Sessions    int
	Concurrency int
	Workers     int // per peer
	Programs    int
	Mechanisms  []string
	CacheRoot   string // per-peer subdirectories; empty = fresh temp dir
}

// clusterPeer is one booted fleet member.
type clusterPeer struct {
	url      string
	cacheDir string
	daemon   *service.Daemon
}

// metricsWire is the /v1/metrics subset the drive aggregates. Decoding
// the daemon's own stats types keeps the client honest about the wire
// contract without duplicating every counter.
type metricsWire struct {
	CompileCache compilecache.Stats `json:"compile_cache"`
	Cluster      *cluster.Stats     `json:"cluster"`
}

// bootClusterPeers starts the fleet: listeners first (the ring needs
// every URL before any Server exists), then one daemon per listener.
func bootClusterPeers(cfg clusterConfig) ([]*clusterPeer, error) {
	listeners := make([]net.Listener, cfg.Peers)
	urls := make([]string, cfg.Peers)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	peers := make([]*clusterPeer, cfg.Peers)
	for i := range peers {
		dir := fmt.Sprintf("%s/peer%d", cfg.CacheRoot, i)
		d := &service.Daemon{
			Server: service.New(service.Config{
				Workers:           cfg.Workers,
				CacheDir:          dir,
				Self:              urls[i],
				Peers:             urls,
				PeerSecret:        clusterPeerSecret,
				HeartbeatInterval: -1, // all peers live for the drive; no probe noise
			}),
			Logf: func(string, ...any) {},
		}
		go d.Serve(listeners[i])
		peers[i] = &clusterPeer{url: urls[i], cacheDir: dir, daemon: d}
	}
	return peers, nil
}

// matrixMechs are the cold-restart matrix's mechanisms (every standard
// flavor the artifact persists).
var matrixMechs = []string{"none", "parts", "rsti-stwc", "rsti-stc", "rsti-stl", "rsti-adaptive"}

// driveCluster runs the whole cluster measurement and returns its
// record. A non-nil record may accompany an error (partial results help
// debugging a failed drive).
func driveCluster(cfg clusterConfig) (*eval.ClusterLoadRecord, error) {
	if cfg.CacheRoot == "" {
		root, err := os.MkdirTemp("", "rstiload-cluster-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)
		cfg.CacheRoot = root
	}
	peers, err := bootClusterPeers(cfg)
	if err != nil {
		return nil, err
	}
	stopped := false
	stopFleet := func() {
		if !stopped {
			for _, p := range peers {
				p.daemon.Stop()
			}
			stopped = true
		}
	}
	defer stopFleet()

	clients := make([]*loadClient, len(peers))
	for i, p := range peers {
		clients[i] = &loadClient{base: p.url, http: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		}}}
	}

	// Phase 1: mixed workload, sessions round-robined across peers so
	// every peer serves every program and the ring's sharing is exercised
	// from every side.
	var (
		errCount   atomic.Int64
		mismatches atomic.Int64
		firstErr   atomic.Value
		golden     sync.Map
	)
	fail := func(format string, args ...any) {
		errCount.Add(1)
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	session := func(i int) {
		// Decorrelated strides: program cycles fastest, then peer, then
		// mechanism, so every peer serves every program under every
		// mechanism (equal moduli would otherwise pin each program to one
		// peer and leave the ring unexercised).
		client := clients[(i/cfg.Programs)%len(clients)]
		src := sourceVariant(i % cfg.Programs)
		mech := cfg.Mechanisms[(i/(cfg.Programs*len(clients)))%len(cfg.Mechanisms)]
		var comp compileResp
		code, err := client.post("/v1/compile", compileReq{Source: src}, &comp)
		if err != nil || code != 200 {
			fail("cluster compile session %d: status %d err %v", i, code, err)
			return
		}
		var rr runResp
		code, err = client.post("/v1/run", runReq{Program: comp.Program, Mechanism: mech}, &rr)
		if err != nil || code != 200 {
			fail("cluster run session %d: status %d err %v", i, code, err)
			return
		}
		if rr.Error != "" || rr.Trap != nil {
			fail("cluster session %d (%s): run failed: %s", i, mech, rr.Error)
			return
		}
		// Bit-identity across the whole fleet: the same program under the
		// same mechanism must report identical modelled numbers from every
		// peer, whether it compiled locally or adopted a peer artifact.
		key := comp.Program + "|" + mech
		val := fmt.Sprintf("%d|%d|%d", rr.Exit, rr.Cycles, rr.Instrs)
		if prev, loaded := golden.LoadOrStore(key, val); loaded && prev.(string) != val {
			mismatches.Add(1)
			firstErr.CompareAndSwap(nil, fmt.Sprintf(
				"cluster bit-identity violation for %s: %s vs %s", key, prev, val))
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				session(i)
			}
		}()
	}
	for i := 0; i < cfg.Sessions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	// Fleet-wide accounting from every peer's /v1/metrics.
	rec := &eval.ClusterLoadRecord{
		Peers:       cfg.Peers,
		Sessions:    cfg.Sessions,
		Concurrency: cfg.Concurrency,
		Programs:    cfg.Programs,
		WallSeconds: wall.Seconds(),
		Requests:    2 * cfg.Sessions,
		Errors:      int(errCount.Load()) + int(mismatches.Load()),
	}
	rec.RequestsPerSec = float64(rec.Requests) / wall.Seconds()
	var misses, ringServed int64
	var p50s, p99s []float64
	for i, client := range clients {
		var m metricsWire
		code, err := client.get("/v1/metrics", &m)
		if err != nil || code != 200 {
			return rec, fmt.Errorf("metrics from peer %d: status %d err %v", i, code, err)
		}
		s := m.CompileCache
		rec.ClusterLookups += s.Hits + s.Misses
		rec.ClusterCompiles += s.Compiles
		misses += s.Misses
		ringServed += s.DiskHits + s.PeerHits
		if m.Cluster != nil {
			rec.ForwardedFetches += m.Cluster.Forwards
			rec.ForwardErrors += m.Cluster.ForwardErrors
			if m.Cluster.ForwardP50Ms > 0 {
				p50s = append(p50s, m.Cluster.ForwardP50Ms)
				p99s = append(p99s, m.Cluster.ForwardP99Ms)
			}
		}
	}
	if rec.ClusterLookups > 0 {
		rec.CacheShareRate = 1 - float64(rec.ClusterCompiles)/float64(rec.ClusterLookups)
	}
	if misses > 0 {
		rec.RingServedShare = float64(ringServed) / float64(misses)
	}
	// Worst peer's quantiles: conservative, and robust to peers with few
	// samples.
	if len(p50s) > 0 {
		sort.Float64s(p50s)
		sort.Float64s(p99s)
		rec.ForwardP50Ms = p50s[len(p50s)-1]
		rec.ForwardP99Ms = p99s[len(p99s)-1]
	}

	// Phase 2: cold restart. Stop the fleet, then boot a fresh standalone
	// daemon over peer 0's artifact directory — the disk contents are all
	// it inherits — and serve the full matrix. The instrumentation
	// counter is process-wide, so its delta across this phase is exactly
	// what the restarted daemon ran: the contract is zero.
	stopFleet()
	cold := &service.Daemon{
		Server: service.New(service.Config{Workers: cfg.Workers, CacheDir: peers[0].cacheDir}),
		Logf:   func(string, ...any) {},
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rec, err
	}
	go cold.Serve(l)
	defer cold.Stop()
	coldClient := &loadClient{base: "http://" + l.Addr().String(), http: &http.Client{}}

	instBefore := rsti.InstrumentCount()
	bitIdentical := true
	type cell struct {
		exit, cycles, instrs int64
		output               string
	}
	served := make([]map[string]cell, cfg.Programs)
	var firstRunMs []float64
	for v := 0; v < cfg.Programs; v++ {
		served[v] = make(map[string]cell)
		first := true
		for _, mech := range matrixMechs {
			for _, opt := range []string{"off", "on"} {
				for _, tier := range []string{"off", "on"} {
					t0 := time.Now()
					var rr runResp
					code, err := coldClient.post("/v1/run", runReq{
						Source: sourceVariant(v), Mechanism: mech,
						Optimizer: opt, Tier: tier,
					}, &rr)
					if err != nil || code != 200 {
						return rec, fmt.Errorf("cold restart run %d/%s/%s/%s: status %d err %v",
							v, mech, opt, tier, code, err)
					}
					if rr.Error != "" {
						return rec, fmt.Errorf("cold restart run %d/%s/%s/%s failed: %s",
							v, mech, opt, tier, rr.Error)
					}
					if first {
						// The program's first request on the restarted daemon:
						// includes the artifact load (decode + eager predecode),
						// the whole cold path a real restart pays.
						firstRunMs = append(firstRunMs, float64(time.Since(t0))/1e6)
						first = false
					}
					served[v][mech+"|"+opt+"|"+tier] = cell{rr.Exit, rr.Cycles, rr.Instrs, rr.Output}
					rec.ColdRestartMatrixRuns++
				}
			}
		}
	}
	rec.ColdRestartInstrumentations = rsti.InstrumentCount() - instBefore
	sort.Float64s(firstRunMs)
	if len(firstRunMs) > 0 {
		rec.ColdRestartFirstRunMs = firstRunMs[len(firstRunMs)/2]
	}

	// Reference pass: compile each program independently in-process (after
	// the instrumentation snapshot above) and check every matrix cell
	// bit-identically.
	for v := 0; v < cfg.Programs && bitIdentical; v++ {
		comp, err := core.Compile(sourceVariant(v))
		if err != nil {
			return rec, err
		}
		for _, mechName := range matrixMechs {
			mech, _ := sti.ParseMechanism(mechName)
			for _, opt := range []string{"off", "on"} {
				for _, tier := range []string{"off", "on"} {
					rcfg := core.RunConfig{Optimize: core.OptimizeOff, Tier: core.TierOff}
					if opt == "on" {
						rcfg.Optimize = core.OptimizeOn
					}
					if tier == "on" {
						rcfg.Tier = core.TierOn
					}
					res, err := comp.Run(mech, rcfg)
					if err != nil {
						return rec, err
					}
					got := served[v][mechName+"|"+opt+"|"+tier]
					want := cell{res.Exit, res.Stats.Cycles, res.Stats.Instrs, res.Output}
					if got != want {
						bitIdentical = false
						firstErr.CompareAndSwap(nil, fmt.Sprintf(
							"cold restart diverged on program %d %s/%s/%s: served %+v, reference %+v",
							v, mechName, opt, tier, got, want))
					}
				}
			}
		}
	}
	rec.ColdRestartBitIdentical = bitIdentical

	if msg, ok := firstErr.Load().(string); ok && msg != "" {
		return rec, fmt.Errorf("%d errors, %d mismatches; first: %s",
			int(errCount.Load()), int(mismatches.Load()), msg)
	}
	return rec, nil
}

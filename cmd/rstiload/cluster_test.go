package main

import (
	"strings"
	"testing"
)

// TestClusterDriveSmoke is the CI-sized cluster drive: a 3-peer fleet
// under a small repeated-source workload must share compiles across the
// ring (high cache-share rate, ~one compile per program fleet-wide) and
// pass the cold-restart phase — zero instrumentation, bit-identical
// matrix — under the race detector.
func TestClusterDriveSmoke(t *testing.T) {
	cfg := clusterConfig{
		Peers:       3,
		Sessions:    90,
		Concurrency: 8,
		Workers:     2,
		Programs:    3,
		Mechanisms:  []string{"none", "rsti-stwc", "rsti-stl"},
		CacheRoot:   t.TempDir(),
	}
	rec, err := driveCluster(cfg)
	if err != nil {
		t.Fatalf("driveCluster: %v", err)
	}
	if rec.Errors != 0 {
		t.Fatalf("cluster drive not clean: %d errors", rec.Errors)
	}
	// 3 programs over 90 sessions x 3 peers: every program compiles at
	// most once fleet-wide (the cross-node singleflight under load may
	// lose a race to a concurrent local fallback, so allow < 2x, not
	// exactly 1x — the strict ==1 contract is pinned by the service
	// integration test under controlled concurrency).
	if rec.ClusterCompiles > int64(2*cfg.Programs) {
		t.Errorf("fleet ran %d compiles for %d programs", rec.ClusterCompiles, cfg.Programs)
	}
	if rec.CacheShareRate < 0.9 {
		t.Errorf("cache-share rate %.3f, want >= 0.9 on a repeated-source workload", rec.CacheShareRate)
	}
	if rec.ColdRestartInstrumentations != 0 {
		t.Errorf("cold restart ran %d instrumentation passes, want 0", rec.ColdRestartInstrumentations)
	}
	if !rec.ColdRestartBitIdentical {
		t.Error("cold restart matrix diverged from the in-process reference")
	}
	if want := cfg.Programs * len(matrixMechs) * 4; rec.ColdRestartMatrixRuns != want {
		t.Errorf("cold restart ran %d matrix cells, want %d", rec.ColdRestartMatrixRuns, want)
	}
	if rec.ColdRestartFirstRunMs <= 0 {
		t.Errorf("cold restart first-run latency not recorded: %+v", rec.ColdRestartFirstRunMs)
	}
	if s := rec.Summary(); !strings.Contains(s, "cluster load test:") ||
		!strings.Contains(s, "cold restart:") {
		t.Errorf("summary rendering: %q", s)
	}
}

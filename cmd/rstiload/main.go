// Command rstiload drives the rstid /v1 service under concurrent load:
// many sessions, each compiling a program variant and running it —
// buffered or streamed over SSE — through the HTTP API, measuring
// end-to-end p50/p95/p99 latency and request throughput. It checks the
// bit-identity contract as it goes: every run of the same program under
// the same mechanism must report identical modelled numbers, however
// contended the daemon is.
//
// By default it self-hosts an in-process daemon (the same
// service.Daemon that cmd/rstid runs) on a loopback listener; -url
// targets an already-running daemon instead.
//
// Usage:
//
//	rstiload                                # 2000 sessions, 64-way concurrency
//	rstiload -sessions 5000 -concurrency 128
//	rstiload -url http://localhost:8080 -api-key k
//	rstiload -benchjson -benchlabel pr7     # append a trajectory datapoint
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rsti/internal/eval"
	"rsti/internal/service"
)

// loadConfig shapes one drive. The zero value is not useful; main and
// the smoke test fill in every field.
type loadConfig struct {
	URL         string  // target daemon; empty = self-host
	Sessions    int     // total compile+run sessions
	Concurrency int     // sessions in flight at once
	Workers     int     // engine workers for the self-hosted daemon
	Queue       int     // engine queue depth (0 = 4x workers)
	Programs    int     // distinct source variants (cache pressure)
	StreamShare float64 // fraction of runs over /v1/run/stream
	CacheDir    string  // disk cache for the self-hosted daemon
	APIKey      string  // sent as Authorization: Bearer on every request
	Mechanisms  []string
}

// Client-side wire shapes — deliberately declared here, not imported
// from internal/service: rstiload speaks the published /v1 JSON
// contract like any external client would.
type compileReq struct {
	Source string `json:"source"`
}

type compileResp struct {
	Program string `json:"program"`
	Cached  bool   `json:"cached"`
}

type runReq struct {
	Program   string `json:"program,omitempty"`
	Source    string `json:"source,omitempty"`
	Mechanism string `json:"mechanism"`
	Optimizer string `json:"optimizer,omitempty"`
	Tier      string `json:"tier,omitempty"`
}

type runResp struct {
	Exit   int64  `json:"exit"`
	Cycles int64  `json:"cycles"`
	Instrs int64  `json:"instrs"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	Trap   *struct {
		Kind string `json:"kind"`
	} `json:"trap,omitempty"`
}

type errEnvelope struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// sourceVariant generates the v-th distinct program: a linked-list fold
// through a function pointer (so the RSTI mechanisms instrument real
// indirect calls and struct field accesses), with constants varied so
// each variant hashes to its own cache key.
func sourceVariant(v int) string {
	return fmt.Sprintf(`
struct cell { int val; struct cell *next; };
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int fold(struct cell *c, int (*op)(int, int), int acc) {
	while (c) { acc = op(acc, c->val); c = c->next; }
	return acc;
}
int main(void) {
	struct cell a; struct cell b; struct cell c;
	int i; int s; s = 0;
	a.val = %d; b.val = %d; c.val = 3;
	a.next = &b; b.next = &c; c.next = 0;
	for (i = 0; i < %d; i = i + 1) { s = s + fold(&a, add, i); }
	printf("s=%%d\n", s + fold(&a, mul, 1));
	return s & 127;
}
`, v+1, v*3+2, 200+v*13)
}

// loadClient wraps an http.Client with the target URL and optional key.
type loadClient struct {
	base string
	key  string
	http *http.Client
}

func (c *loadClient) post(path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: decoding response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// get issues a GET and decodes the JSON response into out.
func (c *loadClient) get(path string, out any) (int, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, err
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s: decoding response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// streamRun drives one /v1/run/stream request to its terminal event and
// returns the result payload.
func (c *loadClient) streamRun(body runReq) (*runResp, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/run/stream", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		var env errEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		return nil, fmt.Errorf("stream: status %d (%s)", resp.StatusCode, env.Error.Message)
	}
	sc := bufio.NewScanner(resp.Body)
	event, dataLine := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			dataLine = line[len("data: "):]
		case line == "":
			switch event {
			case "result":
				var rr runResp
				if err := json.Unmarshal([]byte(dataLine), &rr); err != nil {
					return nil, fmt.Errorf("stream result: %w", err)
				}
				return &rr, nil
			case "error":
				var ae struct {
					Kind    string `json:"kind"`
					Message string `json:"message"`
				}
				json.Unmarshal([]byte(dataLine), &ae)
				return nil, fmt.Errorf("stream error event: %s (%s)", ae.Message, ae.Kind)
			}
			event, dataLine = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream ended without a terminal event")
}

// drive runs the whole load test and summarizes it.
func drive(cfg loadConfig) (*eval.LoadTestRecord, error) {
	base := cfg.URL
	if base == "" {
		queue := cfg.Queue
		if queue <= 0 {
			queue = 4 * cfg.Workers
		}
		d := &service.Daemon{
			Server: service.New(service.Config{
				Workers:  cfg.Workers,
				Queue:    queue,
				CacheDir: cfg.CacheDir,
			}),
			Logf: func(string, ...any) {},
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go d.Serve(l)
		defer d.Stop()
		base = "http://" + l.Addr().String()
	}

	client := &loadClient{
		base: base,
		key:  cfg.APIKey,
		http: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency,
			MaxIdleConnsPerHost: cfg.Concurrency,
		}},
	}

	var (
		mu          sync.Mutex
		compileLats []time.Duration
		runLats     []time.Duration
		streamLats  []time.Duration
		errCount    atomic.Int64
		mismatches  atomic.Int64
		cachedHits  atomic.Int64
		firstErr    atomic.Value // string
		golden      sync.Map     // "program|mech" -> "exit|cycles|instrs"
	)
	fail := func(format string, args ...any) {
		errCount.Add(1)
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	checkIdentity := func(program, mech string, rr *runResp) {
		key := program + "|" + mech
		val := fmt.Sprintf("%d|%d|%d", rr.Exit, rr.Cycles, rr.Instrs)
		if prev, loaded := golden.LoadOrStore(key, val); loaded && prev.(string) != val {
			mismatches.Add(1)
			firstErr.CompareAndSwap(nil, fmt.Sprintf(
				"bit-identity violation for %s: %s vs %s", key, prev, val))
		}
	}

	session := func(i int) {
		src := sourceVariant(i % cfg.Programs)
		mech := cfg.Mechanisms[i%len(cfg.Mechanisms)]

		t0 := time.Now()
		var comp compileResp
		code, err := client.post("/v1/compile", compileReq{Source: src}, &comp)
		dt := time.Since(t0)
		if err != nil || code != 200 {
			fail("compile session %d: status %d err %v", i, code, err)
			return
		}
		if comp.Cached {
			cachedHits.Add(1)
		}
		mu.Lock()
		compileLats = append(compileLats, dt)
		mu.Unlock()

		streamed := cfg.StreamShare > 0 && float64(i%100) < cfg.StreamShare*100
		t0 = time.Now()
		var rr *runResp
		if streamed {
			rr, err = client.streamRun(runReq{Program: comp.Program, Mechanism: mech})
			if err != nil {
				fail("stream session %d: %v", i, err)
				return
			}
		} else {
			var buffered runResp
			code, err = client.post("/v1/run", runReq{Program: comp.Program, Mechanism: mech}, &buffered)
			if err != nil || code != 200 {
				fail("run session %d: status %d err %v", i, code, err)
				return
			}
			rr = &buffered
		}
		dt = time.Since(t0)
		if rr.Error != "" || rr.Trap != nil {
			fail("session %d (%s): run failed: %s", i, mech, rr.Error)
			return
		}
		checkIdentity(comp.Program, mech, rr)
		mu.Lock()
		if streamed {
			streamLats = append(streamLats, dt)
		} else {
			runLats = append(runLats, dt)
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				session(i)
			}
		}()
	}
	for i := 0; i < cfg.Sessions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	// Cache effectiveness as the client observes it: the service marks a
	// compile response "cached" when its handle table already knew the
	// program — the request never re-entered the compile pipeline. This
	// works identically for self-hosted and remote targets.
	hitRate := 0.0
	if n := len(compileLats); n > 0 {
		hitRate = float64(cachedHits.Load()) / float64(n)
	}

	rec := &eval.LoadTestRecord{
		Sessions:       cfg.Sessions,
		Concurrency:    cfg.Concurrency,
		Workers:        cfg.Workers,
		Programs:       cfg.Programs,
		StreamShare:    cfg.StreamShare,
		WallSeconds:    wall.Seconds(),
		Requests:       2 * cfg.Sessions, // one compile + one run each
		RequestsPerSec: float64(2*cfg.Sessions) / wall.Seconds(),
		Errors:         int(errCount.Load()),
		Mismatches:     int(mismatches.Load()),
		CompileLatency: eval.Quantiles(compileLats),
		RunLatency:     eval.Quantiles(runLats),
		CacheHitRate:   hitRate,
	}
	if len(streamLats) > 0 {
		q := eval.Quantiles(streamLats)
		rec.StreamLatency = &q
	}
	if msg, ok := firstErr.Load().(string); ok && msg != "" {
		return rec, fmt.Errorf("%d errors, %d mismatches; first: %s",
			rec.Errors, rec.Mismatches, msg)
	}
	return rec, nil
}

func main() {
	url := flag.String("url", "", "target an already-running rstid (default: self-host an in-process daemon)")
	sessions := flag.Int("sessions", 2000, "total compile+run sessions")
	concurrency := flag.Int("concurrency", 64, "sessions in flight at once")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "engine workers for the self-hosted daemon")
	queue := flag.Int("queue", 0, "engine queue depth for the self-hosted daemon (0 = 4x workers)")
	programs := flag.Int("programs", 8, "distinct program variants")
	stream := flag.Float64("stream", 0.25, "fraction of runs driven over /v1/run/stream")
	cacheDir := flag.String("cache-dir", "", "disk compile-cache directory for the self-hosted daemon")
	apiKey := flag.String("api-key", "", "API key sent as a Bearer token on every request")
	mechs := flag.String("mechanisms", "none,parts,rsti-stwc,rsti-stc,rsti-stl", "comma-separated mechanism rotation")
	clusterN := flag.Int("cluster", 0,
		"boot an N-peer in-process rstid fleet and measure cluster compile sharing + cold restart (0 = single-daemon drive)")
	benchjson := flag.Bool("benchjson", false, "append the datapoint to the bench trajectory")
	benchout := flag.String("benchout", "BENCH_RESULTS.json", "trajectory file for -benchjson")
	benchlabel := flag.String("benchlabel", "dev", "datapoint label for -benchjson")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rstiload:", err)
		os.Exit(1)
	}

	if *clusterN > 0 {
		if *url != "" {
			fail(fmt.Errorf("-cluster boots its own fleet; it cannot be combined with -url"))
		}
		rec, err := driveCluster(clusterConfig{
			Peers:       *clusterN,
			Sessions:    *sessions,
			Concurrency: *concurrency,
			Workers:     *workers,
			Programs:    *programs,
			Mechanisms:  strings.Split(*mechs, ","),
			CacheRoot:   *cacheDir,
		})
		if rec != nil {
			fmt.Println(rec.Summary())
		}
		if err != nil {
			fail(err)
		}
		if *benchjson {
			prior, err := eval.ReadBenchRecords(*benchout)
			if err != nil {
				fail(err)
			}
			br := &eval.BenchRecord{
				Label:       *benchlabel,
				Timestamp:   time.Now().UTC().Format(time.RFC3339),
				GoVersion:   runtime.Version(),
				GOOS:        runtime.GOOS,
				GOARCH:      runtime.GOARCH,
				CPUs:        runtime.NumCPU(),
				ClusterLoad: rec,
			}
			if err := eval.AppendBenchRecord(*benchout, br); err != nil {
				fail(err)
			}
			fmt.Printf("appended cluster datapoint %q to %s (%d prior records)\n",
				*benchlabel, *benchout, len(prior))
			for _, w := range eval.TrajectoryWarnings(prior, br, 0.25) {
				fmt.Println("WARNING:", w)
			}
		}
		return
	}

	cfg := loadConfig{
		URL:         *url,
		Sessions:    *sessions,
		Concurrency: *concurrency,
		Workers:     *workers,
		Queue:       *queue,
		Programs:    *programs,
		StreamShare: *stream,
		CacheDir:    *cacheDir,
		APIKey:      *apiKey,
		Mechanisms:  strings.Split(*mechs, ","),
	}
	if cfg.Sessions <= 0 || cfg.Concurrency <= 0 || cfg.Programs <= 0 || len(cfg.Mechanisms) == 0 {
		fail(fmt.Errorf("sessions, concurrency, programs and mechanisms must all be positive"))
	}

	rec, err := drive(cfg)
	if rec != nil {
		fmt.Println(rec.Summary())
	}
	if err != nil {
		fail(err)
	}

	if *benchjson {
		prior, err := eval.ReadBenchRecords(*benchout)
		if err != nil {
			fail(err)
		}
		br := &eval.BenchRecord{
			Label:     *benchlabel,
			Timestamp: time.Now().UTC().Format(time.RFC3339),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			LoadTest:  rec,
		}
		if err := eval.AppendBenchRecord(*benchout, br); err != nil {
			fail(err)
		}
		fmt.Printf("appended load-test datapoint %q to %s (%d prior records)\n",
			*benchlabel, *benchout, len(prior))
		for _, w := range eval.TrajectoryWarnings(prior, br, 0.25) {
			fmt.Println("WARNING:", w)
		}
	}
}

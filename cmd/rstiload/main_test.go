package main

import (
	"strings"
	"testing"
)

// TestLoadSmoke is the CI leg of the load harness: a bounded-concurrency
// drive against a self-hosted daemon that must finish clean — zero
// errors, zero bit-identity mismatches — under the race detector.
func TestLoadSmoke(t *testing.T) {
	cfg := loadConfig{
		Sessions:    60,
		Concurrency: 8,
		Workers:     2,
		Queue:       8,
		Programs:    4,
		StreamShare: 0.25,
		CacheDir:    t.TempDir(),
		Mechanisms:  []string{"none", "parts", "rsti-stc"},
	}
	rec, err := drive(cfg)
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if rec.Errors != 0 || rec.Mismatches != 0 {
		t.Fatalf("drive not clean: %d errors, %d mismatches", rec.Errors, rec.Mismatches)
	}
	if rec.Requests != 2*cfg.Sessions || rec.RequestsPerSec <= 0 {
		t.Errorf("throughput accounting: %+v", rec)
	}
	if rec.CompileLatency.Count != cfg.Sessions || rec.CompileLatency.P50Ms <= 0 {
		t.Errorf("compile latency: %+v", rec.CompileLatency)
	}
	// Sessions 0..14 of each hundred stream (25%% of 60 = 15), the rest buffer.
	if rec.StreamLatency == nil || rec.StreamLatency.Count == 0 {
		t.Error("no streamed sessions recorded")
	}
	if rec.RunLatency.Count+rec.StreamLatency.Count != cfg.Sessions {
		t.Errorf("run accounting: %d buffered + %d streamed != %d sessions",
			rec.RunLatency.Count, rec.StreamLatency.Count, cfg.Sessions)
	}
	// 4 program variants over 60 sessions: the cache must be absorbing
	// the repeats (56 of 60 lookups hit).
	if rec.CacheHitRate < 0.5 {
		t.Errorf("cache hit rate %.2f — coalescing/caching not engaged", rec.CacheHitRate)
	}
	if s := rec.Summary(); !strings.Contains(s, "load test:") || !strings.Contains(s, "p99") {
		t.Errorf("summary rendering: %q", s)
	}
}

// TestSourceVariantsDistinct: every variant must be a distinct program
// (distinct cache key), or the -programs knob silently loses meaning.
func TestSourceVariantsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		src := sourceVariant(i)
		if seen[src] {
			t.Fatalf("variant %d repeats an earlier source", i)
		}
		seen[src] = true
	}
}

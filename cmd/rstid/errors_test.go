package main

import (
	"net/http/httptest"
	"testing"

	"rsti/internal/vm"
)

// TestErrorTaxonomyOverHTTP drives the library's typed error taxonomy
// through the daemon's wire classification in one table: compile
// sentinels become 422s with a machine-readable kind, protocol mistakes
// become 4xx statuses, and execution outcomes (traps, budget, deadline)
// ride inside a 200 with a structured trap — never a bare message to
// regex.
func TestErrorTaxonomyOverHTTP(t *testing.T) {
	ts, _ := startServer(t)

	spin := `int main(void){ int i; int a; a = 0; for (i = 0; i < 100000000; i = i + 1) { a = a + i; } return a & 1; }`

	t.Run("compile-classification", func(t *testing.T) {
		cases := []struct {
			name   string
			source string
			status int
			kind   string // the 422 body's "kind" field
		}{
			{"parse", "int main(void) { return 0 }", 422, "parse"},
			{"typecheck", "int main(void) { return nosuch; }", 422, "typecheck"},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				var body map[string]string
				code := post(t, ts.URL+"/v1/compile", compileRequest{Source: tc.source}, &body)
				if code != tc.status {
					t.Fatalf("status %d, want %d", code, tc.status)
				}
				if body["kind"] != tc.kind {
					t.Errorf("kind = %q, want %q", body["kind"], tc.kind)
				}
				if body["error"] == "" {
					t.Error("422 body carries no error text")
				}
			})
		}
	})

	t.Run("protocol-classification", func(t *testing.T) {
		cases := []struct {
			name   string
			req    runRequest
			status int
		}{
			{"unknown-program", runRequest{Program: "feedbead", Mechanism: "rsti-stl"}, 404},
			{"unknown-mechanism", runRequest{Source: victimSrc, Mechanism: "rop"}, 400},
			{"program-and-source", runRequest{Program: "x", Source: victimSrc}, 400},
			{"neither", runRequest{Mechanism: "rsti-stwc"}, 400},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				if code := post(t, ts.URL+"/v1/run", tc.req, nil); code != tc.status {
					t.Errorf("status %d, want %d", code, tc.status)
				}
			})
		}
	})

	// Execution outcomes: the trap taxonomy must survive the JSON
	// round-trip with its kind intact.
	t.Run("outcome-classification", func(t *testing.T) {
		cases := []struct {
			name      string
			req       runRequest
			trapKind  string
			cancelled bool
			detected  bool
		}{
			{
				name:     "step-budget",
				req:      runRequest{Source: victimSrc, StepBudget: 50},
				trapKind: vm.TrapMaxSteps.String(),
			},
			{
				name:      "deadline",
				req:       runRequest{Source: spin, TimeoutMS: 20},
				trapKind:  vm.TrapCancelled.String(),
				cancelled: true,
			},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				var run runResponse
				if code := post(t, ts.URL+"/v1/run", tc.req, &run); code != 200 {
					t.Fatalf("status %d, want 200 (outcomes ride inside success)", code)
				}
				if run.Trap == nil {
					t.Fatalf("no trap in response: %+v", run)
				}
				if run.Trap.Kind != tc.trapKind {
					t.Errorf("trap kind = %q, want %q", run.Trap.Kind, tc.trapKind)
				}
				if run.Cancelled != tc.cancelled {
					t.Errorf("cancelled = %v, want %v", run.Cancelled, tc.cancelled)
				}
				if run.Detected != tc.detected {
					t.Errorf("detected = %v, want %v", run.Detected, tc.detected)
				}
				if run.Error == "" {
					t.Error("trapped run carries no error text")
				}
			})
		}
	})

	// A closed engine's sentinel maps to 503, the shutting-down status.
	t.Run("engine-closed", func(t *testing.T) {
		srv := newServer(1, 1)
		hts := httptest.NewServer(srv)
		defer hts.Close()
		srv.close()
		if code := post(t, hts.URL+"/v1/run", runRequest{Source: victimSrc}, nil); code != 503 {
			t.Errorf("run on closed engine: status %d, want 503", code)
		}
	})
}

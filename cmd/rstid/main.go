// Command rstid is the RSTI serving daemon: an HTTP front end over the
// concurrent execution engine, in the paper's compile-once/run-many
// server shape (§6.6). The whole surface lives in internal/service; this
// binary only parses flags and wires signals.
//
//	rstid -addr :8080 -workers 8 -queue 64 \
//	      -cache-dir /var/lib/rstid/cache -tenants tenants.json
//
// Cluster mode — every node gets the same -peers list plus its own
// advertised URL, and the fleet shares compile work over a
// consistent-hash ring (see docs/API.md, "Cluster"):
//
//	rstid -addr :8080 -self http://10.0.0.1:8080 \
//	      -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080 \
//	      -peer-secret $RSTID_PEER_SECRET -cache-dir /var/lib/rstid/cache
//
// See docs/API.md for the /v1 endpoint reference, the error envelope,
// API-key auth, and streaming runs.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"

	"rsti/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "VM worker count")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4x workers)")
	cacheDir := flag.String("cache-dir", "", "persistent compile-cache directory (empty = memory only)")
	tenantsFile := flag.String("tenants", "", "tenants JSON file enabling API-key auth (empty = open mode)")
	securityResults := flag.String("security-results", "",
		"SECURITY_RESULTS.json trajectory surfaced in /v1/metrics (empty = omit)")
	self := flag.String("self", "", "this node's advertised base URL (enables cluster mode with -peers)")
	peers := flag.String("peers", "", "comma-separated peer base URLs (may include -self)")
	peerSecret := flag.String("peer-secret", "", "shared secret for peer endpoints (X-RSTI-Peer-Key)")
	heartbeat := flag.Duration("heartbeat", 0, "peer health probe interval (0 = 2s)")
	pprofAddr := flag.String("pprof", "",
		"opt-in net/http/pprof listen address, e.g. localhost:6060 (empty = disabled; keep it loopback-only)")
	flag.Parse()

	cfg := service.Config{
		Workers: *workers, Queue: *queue, CacheDir: *cacheDir,
		SecurityResults:   *securityResults,
		Self:              *self,
		PeerSecret:        *peerSecret,
		HeartbeatInterval: *heartbeat,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if (*self == "") != (len(cfg.Peers) == 0) {
		log.Fatal("rstid: -self and -peers must be given together")
	}
	if *tenantsFile != "" {
		ts, err := service.LoadTenants(*tenantsFile)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants = ts
	}

	d := &service.Daemon{Server: service.New(cfg)}
	done := d.HandleSignals()

	// The profiler rides its own listener, never the tenant-facing port:
	// heap and goroutine profiles expose daemon internals, so exposure is
	// an explicit operator decision per address.
	if *pprofAddr != "" {
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("rstid: pprof on %s", pl.Addr())
		go func() {
			if err := http.Serve(pl, service.PprofHandler()); err != nil {
				log.Printf("rstid: pprof listener stopped: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("rstid: serving on %s (%d workers)", *addr, *workers)
	if err := d.Serve(l); err != nil {
		log.Fatal(err)
	}
	<-done
}

// Command rstid is the RSTI serving daemon: an HTTP front end over the
// concurrent execution engine, in the paper's compile-once/run-many
// server shape (§6.6). Programs are compiled (and STI-analyzed) once,
// cached by source hash, and then served for any number of protected
// runs and attack experiments by a bounded pool of VM workers.
//
//	rstid -addr :8080 -workers 8 -queue 64
//
// Endpoints:
//
//	POST /v1/compile  {"source": "..."}
//	    → {"program": "<sha256>", "cached": bool, "equivalence": {...}}
//	POST /v1/run      {"program": "<sha256>" | "source": "...",
//	                   "mechanism": "rsti-stwc", "optimizer": "on"|"off",
//	                   "tier": "on"|"off",
//	                   "timeout_ms": 0, "step_budget": 0, "max_output_bytes": 0}
//	    → {"exit", "cycles", "instrs", "output", "detected", "trap", ...}
//	POST /v1/attack   {"scenario": "<Table 1 name>", "mechanism": "...",
//	                   "benign": bool}
//	    → {"detected", "succeeded", "exit", ...}
//	GET  /v1/attacks  → the Table 1 scenario catalogue
//	GET  /metrics     → engine + compile-cache + tier + per-mechanism PAC-op counters (JSON)
//	GET  /healthz     → liveness
//
// Execution outcomes (traps, budget exhaustion, deadline) are reported
// inside a 200 response; protocol failures (unknown program, bad
// mechanism, full queue) use HTTP status codes.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"rsti/internal/attack"
	"rsti/internal/compilecache"
	"rsti/internal/core"
	"rsti/internal/engine"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// maxSourceBytes bounds accepted request bodies; maxPrograms bounds the
// compiled-program cache (FIFO eviction).
const (
	maxSourceBytes = 1 << 20
	maxPrograms    = 128
)

// server wires the HTTP surface to one shared engine, the shared
// compilation cache (content-addressed, singleflight-deduped: a burst of
// identical /compile requests runs the pipeline once) and a bounded
// handle table mapping the sha256 program handles we mint back to their
// compilations.
type server struct {
	eng   *engine.Engine
	cache *compilecache.Cache
	mux   *http.ServeMux

	mu       sync.Mutex
	programs map[string]*core.Compilation
	order    []string // insertion order for FIFO eviction

	scenarios map[string]*attack.Scenario

	// pacMu guards the per-mechanism dynamic PAC-op accumulators served
	// under /metrics: every completed run adds its executed sign/auth/strip
	// counts and fused-dispatch counts for its mechanism.
	pacMu  sync.Mutex
	pacOps map[string]*pacOpMetrics
}

// pacOpMetrics accumulates the dynamic PA-instruction counters of every
// run served under one mechanism, including the superinstruction
// dispatches (fused pairs execute the same modelled ops; the fused
// counters measure how many dispatches the host saved).
type pacOpMetrics struct {
	Runs                int64 `json:"runs"`
	PacSigns            int64 `json:"pac_signs"`
	PacAuths            int64 `json:"pac_auths"`
	PacStrips           int64 `json:"pac_strips"`
	FusedAuthLoads      int64 `json:"fused_auth_loads"`
	FusedSignStores     int64 `json:"fused_sign_stores"`
	FusedAuthStores     int64 `json:"fused_auth_stores"`
	FusedAuthAddrLoads  int64 `json:"fused_auth_addr_loads"`
	FusedAuthAddrStores int64 `json:"fused_auth_addr_stores"`
	FusedInstrs         int64 `json:"fused_instrs"`
}

// recordPACOps folds one run's executed PAC-op counters into the
// mechanism's accumulator.
func (s *server) recordPACOps(mech sti.Mechanism, res *core.RunResult) {
	if res == nil {
		return
	}
	s.pacMu.Lock()
	defer s.pacMu.Unlock()
	m := s.pacOps[mech.String()]
	if m == nil {
		m = &pacOpMetrics{}
		s.pacOps[mech.String()] = m
	}
	m.Runs++
	m.PacSigns += res.Stats.PacSigns
	m.PacAuths += res.Stats.PacAuths
	m.PacStrips += res.Stats.PacStrips
	m.FusedAuthLoads += res.Stats.FusedAuthLoads
	m.FusedSignStores += res.Stats.FusedSignStores
	m.FusedAuthStores += res.Stats.FusedAuthStores
	m.FusedAuthAddrLoads += res.Stats.FusedAuthAddrLoads
	m.FusedAuthAddrStores += res.Stats.FusedAuthAddrStores
	m.FusedInstrs += res.Stats.FusedInstrs
}

// pacOpsSnapshot copies the accumulators for /metrics.
func (s *server) pacOpsSnapshot() map[string]pacOpMetrics {
	s.pacMu.Lock()
	defer s.pacMu.Unlock()
	out := make(map[string]pacOpMetrics, len(s.pacOps))
	for k, v := range s.pacOps {
		out[k] = *v
	}
	return out
}

func newServer(workers, queue int) *server {
	s := &server{
		eng:       engine.New(engine.Config{Workers: workers, QueueDepth: queue}),
		cache:     compilecache.New(compilecache.Config{MaxEntries: maxPrograms}),
		mux:       http.NewServeMux(),
		programs:  make(map[string]*core.Compilation),
		scenarios: make(map[string]*attack.Scenario),
		pacOps:    make(map[string]*pacOpMetrics),
	}
	for _, sc := range attack.Scenarios() {
		s.scenarios[sc.Name] = sc
	}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/attack", s.handleAttack)
	s.mux.HandleFunc("GET /v1/attacks", s.handleAttackList)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) close() { s.eng.Close() }

// compile returns the cached compilation for src, compiling and caching
// on first sight. The hash doubles as the program handle.
func (s *server) compile(src string) (string, *core.Compilation, bool, error) {
	sum := sha256.Sum256([]byte(src))
	key := hex.EncodeToString(sum[:])
	s.mu.Lock()
	if c, ok := s.programs[key]; ok {
		s.mu.Unlock()
		return key, c, true, nil
	}
	s.mu.Unlock()
	// Compile outside the lock, through the shared cache: a burst of
	// racing duplicates coalesces onto one compile (singleflight) and a
	// source recently evicted from the handle table is still answered
	// from cache.
	c, err := s.cache.Get(src)
	if err != nil {
		return "", nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if have, ok := s.programs[key]; ok {
		return key, have, true, nil
	}
	if len(s.order) >= maxPrograms {
		delete(s.programs, s.order[0])
		s.order = s.order[1:]
	}
	s.programs[key] = c
	s.order = append(s.order, key)
	return key, c, false, nil
}

func (s *server) lookup(key string) (*core.Compilation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.programs[key]
	return c, ok
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// httpError reports a protocol failure as {"error": ...}.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decode parses the request body into v, bounding its size.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxSourceBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// compileError maps the typed compile errors onto a structured 422.
func compileError(w http.ResponseWriter, err error) {
	kind := "compile"
	switch {
	case errors.Is(err, core.ErrParse):
		kind = "parse"
	case errors.Is(err, core.ErrTypeCheck):
		kind = "typecheck"
	}
	writeJSON(w, http.StatusUnprocessableEntity,
		map[string]string{"error": err.Error(), "kind": kind})
}

type compileRequest struct {
	Source string `json:"source"`
}

type compileResponse struct {
	Program     string         `json:"program"`
	Cached      bool           `json:"cached"`
	Equivalence sti.EquivStats `json:"equivalence"`
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		httpError(w, http.StatusBadRequest, "missing source")
		return
	}
	key, c, cached, err := s.compile(req.Source)
	if err != nil {
		compileError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, compileResponse{
		Program:     key,
		Cached:      cached,
		Equivalence: c.Analysis.Equivalence(),
	})
}

type runRequest struct {
	Program        string `json:"program,omitempty"`
	Source         string `json:"source,omitempty"`
	Mechanism      string `json:"mechanism"`
	TimeoutMS      int64  `json:"timeout_ms,omitempty"`
	StepBudget     int64  `json:"step_budget,omitempty"`
	MaxOutputBytes int    `json:"max_output_bytes,omitempty"`
	// Optimizer selects the build flavour: "on", "off", or "" for the
	// process default (RSTI_OPT). Optimized and unoptimized builds are
	// cached independently, so flipping this per request is cheap.
	Optimizer string `json:"optimizer,omitempty"`
	// Tier selects the execution tier: "on" (profile-guided
	// direct-threaded dispatch), "off" (switch interpreter), or "" for
	// the process default (RSTI_TIER). The tier changes host dispatch
	// speed only; every modelled number in the response is identical
	// either way. Per-tier images are cached independently, so flipping
	// this per request never perturbs the other tier's profile.
	Tier string `json:"tier,omitempty"`
	// NoWait sheds load instead of queueing: a full queue answers 429.
	NoWait bool `json:"no_wait,omitempty"`
}

// parseOptimizer maps the wire field onto a build mode.
func parseOptimizer(w http.ResponseWriter, name string) (core.OptimizeMode, bool) {
	switch name {
	case "":
		return core.OptimizeDefault, true
	case "on":
		return core.OptimizeOn, true
	case "off":
		return core.OptimizeOff, true
	}
	httpError(w, http.StatusBadRequest, "unknown optimizer mode %q (want on, off, or empty)", name)
	return core.OptimizeDefault, false
}

// parseTier maps the wire field onto an execution-tier mode.
func parseTier(w http.ResponseWriter, name string) (core.TierMode, bool) {
	switch name {
	case "":
		return core.TierDefault, true
	case "on":
		return core.TierOn, true
	case "off":
		return core.TierOff, true
	}
	httpError(w, http.StatusBadRequest, "unknown tier mode %q (want on, off, or empty)", name)
	return core.TierDefault, false
}

// trapJSON is the wire form of a machine trap.
type trapJSON struct {
	Kind string `json:"kind"`
	Fn   string `json:"fn,omitempty"`
	Msg  string `json:"msg,omitempty"`
}

type runResponse struct {
	Program         string    `json:"program"`
	Mechanism       string    `json:"mechanism"`
	Exit            int64     `json:"exit"`
	Cycles          int64     `json:"cycles"`
	Instrs          int64     `json:"instrs"`
	Output          string    `json:"output,omitempty"`
	OutputTruncated bool      `json:"output_truncated,omitempty"`
	Detected        bool      `json:"detected"`
	Cancelled       bool      `json:"cancelled,omitempty"`
	Trap            *trapJSON `json:"trap,omitempty"`
	Error           string    `json:"error,omitempty"`
}

// resolve turns a run request's program-or-source into a compilation.
func (s *server) resolve(w http.ResponseWriter, program, source string) (string, *core.Compilation, bool) {
	switch {
	case program != "" && source != "":
		httpError(w, http.StatusBadRequest, "give program or source, not both")
	case program != "":
		if c, ok := s.lookup(program); ok {
			return program, c, true
		}
		httpError(w, http.StatusNotFound, "unknown program %q (compile it first)", program)
	case source != "":
		key, c, _, err := s.compile(source)
		if err != nil {
			compileError(w, err)
			return "", nil, false
		}
		return key, c, true
	default:
		httpError(w, http.StatusBadRequest, "missing program or source")
	}
	return "", nil, false
}

// parseMech validates the mechanism name ("" means the None baseline).
func parseMech(w http.ResponseWriter, name string) (sti.Mechanism, bool) {
	if name == "" {
		return sti.None, true
	}
	mech, ok := sti.ParseMechanism(name)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown mechanism %q", name)
	}
	return mech, ok
}

// submit drives one job through the engine and renders the outcome.
// Engine-level admission failures map to HTTP statuses; execution
// outcomes (traps, cancellation) ride inside a 200.
func (s *server) submit(w http.ResponseWriter, r *http.Request, key string, job engine.Job, noWait bool) {
	var (
		res *core.RunResult
		err error
	)
	if noWait {
		res, err = s.eng.TrySubmit(r.Context(), job)
	} else {
		res, err = s.eng.Submit(r.Context(), job)
	}
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, "queue full")
		return
	case errors.Is(err, engine.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.recordPACOps(job.Mech, res)
	out := runResponse{
		Program:         key,
		Mechanism:       job.Mech.String(),
		Exit:            res.Exit,
		Cycles:          res.Stats.Cycles,
		Instrs:          res.Stats.Instrs,
		Output:          res.Output,
		OutputTruncated: res.OutputTruncated,
		Detected:        res.Detected(),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
		out.Cancelled = errors.Is(res.Err, context.Canceled) ||
			errors.Is(res.Err, context.DeadlineExceeded)
	}
	if res.Trap != nil {
		out.Trap = &trapJSON{Kind: res.Trap.Kind.String(), Fn: res.Trap.Fn, Msg: res.Trap.Msg}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !decode(w, r, &req) {
		return
	}
	mech, ok := parseMech(w, req.Mechanism)
	if !ok {
		return
	}
	key, c, ok := s.resolve(w, req.Program, req.Source)
	if !ok {
		return
	}
	optMode, ok := parseOptimizer(w, req.Optimizer)
	if !ok {
		return
	}
	tierMode, ok := parseTier(w, req.Tier)
	if !ok {
		return
	}
	cfg := core.RunConfig{
		Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
		StepBudget:     req.StepBudget,
		MaxOutputBytes: req.MaxOutputBytes,
		Optimize:       optMode,
		Tier:           tierMode,
	}
	s.submit(w, r, key, engine.Job{Comp: c, Mech: mech, Cfg: cfg}, req.NoWait)
}

type attackRequest struct {
	Scenario  string `json:"scenario"`
	Mechanism string `json:"mechanism"`
	// Benign runs the victim without the corruption (false-positive
	// check).
	Benign bool `json:"benign,omitempty"`
}

type attackResponse struct {
	Scenario  string `json:"scenario"`
	Mechanism string `json:"mechanism"`
	Benign    bool   `json:"benign,omitempty"`
	// Detected: a security trap fired. Succeeded: the attack reached its
	// goal exit.
	Detected  bool      `json:"detected"`
	Succeeded bool      `json:"succeeded"`
	Exit      int64     `json:"exit"`
	Trap      *trapJSON `json:"trap,omitempty"`
	Error     string    `json:"error,omitempty"`
}

func (s *server) handleAttack(w http.ResponseWriter, r *http.Request) {
	var req attackRequest
	if !decode(w, r, &req) {
		return
	}
	sc, ok := s.scenarios[req.Scenario]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown scenario %q (GET /v1/attacks lists them)", req.Scenario)
		return
	}
	mech, ok := parseMech(w, req.Mechanism)
	if !ok {
		return
	}
	_, c, _, err := s.compile(sc.Source)
	if err != nil {
		compileError(w, err)
		return
	}
	cfg := core.RunConfig{Externs: sc.Externs}
	if !req.Benign {
		cfg.Hooks = map[int64]vm.Hook{1: sc.Corrupt}
	}
	res, err := s.eng.Submit(r.Context(), engine.Job{Comp: c, Mech: mech, Cfg: cfg})
	switch {
	case errors.Is(err, engine.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.recordPACOps(mech, res)
	out := attackResponse{
		Scenario:  sc.Name,
		Mechanism: mech.String(),
		Benign:    req.Benign,
		Detected:  res.Detected(),
		Succeeded: !req.Benign && res.Err == nil && res.Exit == sc.SuccessExit,
		Exit:      res.Exit,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	if res.Trap != nil {
		out.Trap = &trapJSON{Kind: res.Trap.Kind.String(), Fn: res.Trap.Fn, Msg: res.Trap.Msg}
	}
	writeJSON(w, http.StatusOK, out)
}

type scenarioJSON struct {
	Name      string `json:"name"`
	Category  string `json:"category"`
	RealWorld bool   `json:"real_world"`
	Corrupted string `json:"corrupted"`
	Target    string `json:"target"`
}

func (s *server) handleAttackList(w http.ResponseWriter, _ *http.Request) {
	var out []scenarioJSON
	for _, sc := range attack.Scenarios() {
		out = append(out, scenarioJSON{
			Name:      sc.Name,
			Category:  sc.Category,
			RealWorld: sc.RealWorld,
			Corrupted: sc.Corrupted,
			Target:    sc.Target,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// metricsResponse keeps the engine counters at the top level (the
// long-standing shape) and nests the compile-cache counters under their
// own key.
type metricsResponse struct {
	engine.Stats
	CompileCache compilecache.Stats      `json:"compile_cache"`
	PACOps       map[string]pacOpMetrics `json:"pac_ops"`
	Tier         tierMetrics             `json:"tier"`
}

// tierMetrics summarizes the direct-threaded execution tier for an
// operator: how many function bodies this process has promoted to
// threaded code, and what share of the served modelled instructions ran
// through them.
type tierMetrics struct {
	Promotions     int64   `json:"promotions"`
	ThreadedInstrs int64   `json:"threaded_instrs"`
	ThreadedShare  float64 `json:"threaded_share"`
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	tier := tierMetrics{Promotions: vm.TierPromotions(), ThreadedInstrs: st.ThreadedInstrs}
	if st.Instrs > 0 {
		tier.ThreadedShare = float64(st.ThreadedInstrs) / float64(st.Instrs)
	}
	writeJSON(w, http.StatusOK, metricsResponse{
		Stats:        st,
		CompileCache: s.cache.Stats(),
		PACOps:       s.pacOpsSnapshot(),
		Tier:         tier,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "VM worker count")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4x workers)")
	flag.Parse()

	s := newServer(*workers, *queue)
	srv := &http.Server{Addr: *addr, Handler: s}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("rstid: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		s.close()
	}()

	log.Printf("rstid: serving on %s (%d workers)", *addr, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

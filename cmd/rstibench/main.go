// Command rstibench regenerates every table and figure of the paper's
// evaluation (§6): the Table 1 attack matrix, the Table 3 equivalence
// classes, the §6.2.2 pointer-to-pointer census, the Figure 9 overheads
// and geomeans, the Figure 10 distributions, and the §6.3.2 PARTS
// comparison.
//
// Usage:
//
//	rstibench            # everything
//	rstibench -fig9      # overheads + geomeans only
//	rstibench -fig10     # box-plot summaries only
//	rstibench -table1    # attack matrix only
//	rstibench -table3    # equivalence classes only
//	rstibench -pp        # pointer-to-pointer census only
//	rstibench -parts     # nbench PARTS comparison only
//
// With -benchjson it instead runs the benchmark-trajectory harness: a
// measurement pass over the host-side hot paths (cipher, PAC unit,
// compiler stages, switch interpreter and direct-threaded tier, Figure 9
// wall-clock) appended as one labelled datapoint to BENCH_RESULTS.json
// (see -benchout/-benchlabel), building the repo's performance history:
//
//	rstibench -benchjson -benchlabel pr1
//
// With -secjson it runs the security-effectiveness harness instead:
// equivalence-class partition statistics per workload × mechanism, the
// attack synthesizer (derived tampers executed through the VM against
// their predicted detect/miss outcomes), and the Table 3 cross-check,
// appended as one datapoint to SECURITY_RESULTS.json with the markdown
// dashboard rendered to SECURITY.md. The exit status is the CI gate: it
// is non-zero when the record violates the structural invariants or when
// a mechanism's largest class or replay surface grew against the
// previous datapoint without a "security-waiver:" note in the change log
// (-changes):
//
//	rstibench -secjson -seclabel pr8
package main

import (
	"flag"
	"fmt"
	"os"

	"rsti/internal/eval"
	"rsti/internal/report"
	"rsti/internal/sti"
)

func main() {
	fig9 := flag.Bool("fig9", false, "Figure 9: per-benchmark overheads and geomeans")
	fig10 := flag.Bool("fig10", false, "Figure 10: overhead distributions")
	table1 := flag.Bool("table1", false, "Table 1: attack matrix")
	table3 := flag.Bool("table3", false, "Table 3: equivalence classes")
	pp := flag.Bool("pp", false, "pointer-to-pointer census (§6.2.2)")
	parts := flag.Bool("parts", false, "nbench PARTS comparison (§6.3.2)")
	ablations := flag.Bool("ablations", false, "design-choice ablation studies")
	replay := flag.Bool("replay", false, "replay attack surface per mechanism (§7)")
	benchjson := flag.Bool("benchjson", false, "run the benchmark-trajectory harness and append a datapoint")
	benchout := flag.String("benchout", "BENCH_RESULTS.json", "trajectory file for -benchjson")
	benchlabel := flag.String("benchlabel", "dev", "datapoint label for -benchjson")
	secjson := flag.Bool("secjson", false, "run the security-effectiveness harness and append a datapoint")
	secout := flag.String("secout", "SECURITY_RESULTS.json", "trajectory file for -secjson")
	secmd := flag.String("secmd", "SECURITY.md", "markdown dashboard for -secjson (empty to skip)")
	seclabel := flag.String("seclabel", "dev", "datapoint label for -secjson")
	changes := flag.String("changes", "CHANGES.md", "change log scanned for security-waiver notes")
	flag.Parse()

	all := !*fig9 && !*fig10 && !*table1 && !*table3 && !*pp && !*parts && !*ablations && !*replay

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rstibench:", err)
		os.Exit(1)
	}

	if *benchjson {
		rec, err := eval.MeasureBenchTrajectory(*benchlabel)
		if err != nil {
			fail(err)
		}
		// Compare against history from the same host shape before
		// appending: a stage that slowed >25% vs the previous datapoint
		// is the exact regression this file exists to catch.
		prev, err := eval.ReadBenchRecords(*benchout)
		if err != nil {
			fail(err)
		}
		if err := eval.AppendBenchRecord(*benchout, rec); err != nil {
			fail(err)
		}
		fmt.Println(rec.Summary())
		for _, warn := range eval.TrajectoryWarnings(prev, rec, 0.25) {
			fmt.Printf("WARNING: %s\n", warn)
		}
		fmt.Printf("appended to %s\n", *benchout)
		return
	}

	if *secjson {
		rec, err := eval.MeasureSecurity(*seclabel)
		if err != nil {
			fail(err)
		}
		violations := eval.SecurityViolations(rec)
		// The trajectory guard compares against history BEFORE appending;
		// unlike the wall-clock bench guard this one is exact (the record
		// is deterministic) and gates CI rather than warning.
		prev, err := report.ReadSecurityRecords(*secout)
		if err != nil {
			fail(err)
		}
		regressions := report.SecurityRegressions(prev, rec)
		if err := report.AppendSecurityRecord(*secout, rec); err != nil {
			fail(err)
		}
		if *secmd != "" {
			if err := os.WriteFile(*secmd, []byte(rec.Markdown()), 0o644); err != nil {
				fail(err)
			}
		}
		fmt.Println(rec.Summary())
		fmt.Printf("appended to %s\n", *secout)
		bad := false
		for _, v := range violations {
			fmt.Printf("VIOLATION: %s\n", v)
			bad = true
		}
		if len(regressions) > 0 && !report.HasSecurityWaiver(*changes) {
			for _, r := range regressions {
				fmt.Printf("REGRESSION: %s\n", r)
			}
			fmt.Printf("security surface grew without a %q note in %s\n",
				report.SecurityWaiverToken, *changes)
			bad = true
		} else if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Printf("WAIVED: %s\n", r)
			}
		}
		if bad {
			os.Exit(1)
		}
		return
	}

	if all || *table1 {
		res, err := eval.MeasureTable1()
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	}

	if all || *table3 || *pp {
		entries, err := eval.MeasureTable3()
		if err != nil {
			fail(err)
		}
		if all || *table3 {
			fmt.Println(eval.RenderTable3(entries))
		}
		if all || *pp {
			fmt.Println(eval.RenderPPCensus(entries))
		}
	}

	if all || *fig9 || *fig10 {
		f, err := eval.MeasureFigure9()
		if err != nil {
			fail(err)
		}
		if all || *fig9 {
			fmt.Println(f.RenderFigure9())
			corr := eval.Pearson(f.Rows["SPEC2006"], sti.STWC)
			fmt.Printf("SPEC2006 correlation: PA ops vs STWC overhead, Pearson r = %.2f (paper: 0.75-0.8)\n\n", corr)
		}
		if all || *fig10 {
			fmt.Println(f.RenderFigure10())
		}
	}

	if all || *parts {
		p, err := eval.MeasurePARTSComparison()
		if err != nil {
			fail(err)
		}
		fmt.Println(p.Render())
	}

	if all || *ablations {
		out, err := eval.RenderAblations()
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}

	if all || *replay {
		rows, err := eval.MeasureReplaySurface()
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.RenderReplaySurface(rows))
	}
}

package rsti_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"rsti"
	"rsti/internal/vm"
)

// taxonomySrc spins long enough to exhaust small step budgets and
// carries a hijackable function pointer plus a __hook site for the
// trap-producing cases.
const taxonomySrc = `
int benign(void) { return 7; }
int evil(void)   { return 666; }
int (*handler)(void);
int main(void) {
    int i; int a;
    a = 0;
    handler = benign;
    __hook(1);
    for (i = 0; i < 2000; i = i + 1) { a = a + i; }
    return handler();
}
`

func hijackHandler(m *vm.Machine) error {
	slot, _ := m.GlobalAddr("handler")
	tok, _ := m.FuncToken("evil")
	return m.Mem.Poke(slot, tok, 8)
}

// TestErrorTaxonomyTable drives every publicly documented error path —
// compile failures, run outcomes, direct and wrapped through the engine
// — through one table, asserting for each which sentinels errors.Is
// must (and must not) match and what errors.As extracts. The point is
// that the taxonomy is closed: callers never need message matching, and
// a sentinel never bleeds into a neighbouring failure class.
func TestErrorTaxonomyTable(t *testing.T) {
	p, err := rsti.Compile(taxonomySrc)
	if err != nil {
		t.Fatal(err)
	}

	// produce returns the error under test. "outcome" errors come from
	// Result.Err; "admission" errors from the second return value.
	cases := []struct {
		name    string
		produce func(t *testing.T) error
		is      []error // must match via errors.Is
		isNot   []error // must NOT match
		// wantTrap, when non-nil, asserts errors.As(*TrapError) and the
		// extracted kind.
		wantTrap *vm.TrapKind
	}{
		{
			name: "compile/parse",
			produce: func(t *testing.T) error {
				_, err := rsti.Compile("int main(void) { return 0 }")
				return err
			},
			is:    []error{rsti.ErrParse},
			isNot: []error{rsti.ErrTypeCheck, rsti.ErrStepBudget},
		},
		{
			name: "compile/typecheck",
			produce: func(t *testing.T) error {
				_, err := rsti.Compile("int main(void) { return nosuch; }")
				return err
			},
			is:    []error{rsti.ErrTypeCheck},
			isNot: []error{rsti.ErrParse, rsti.ErrStepBudget},
		},
		{
			name: "run/step-budget",
			produce: func(t *testing.T) error {
				res, err := p.Run(rsti.None, rsti.WithStepBudget(50))
				if err != nil {
					t.Fatal(err)
				}
				return res.Err
			},
			is:       []error{rsti.ErrStepBudget},
			isNot:    []error{rsti.ErrParse, rsti.ErrTypeCheck, context.Canceled},
			wantTrap: trapKind(vm.TrapMaxSteps),
		},
		{
			name: "run/security-trap",
			produce: func(t *testing.T) error {
				res, err := p.Run(rsti.STWC, rsti.WithHook(1, hijackHandler))
				if err != nil {
					t.Fatal(err)
				}
				if !res.Detected() {
					t.Fatal("hijack not detected under STWC")
				}
				return res.Err
			},
			is:       nil,
			isNot:    []error{rsti.ErrStepBudget, rsti.ErrParse, context.Canceled},
			wantTrap: trapKind(vm.TrapAuthFailure),
		},
		{
			name: "run/deadline",
			produce: func(t *testing.T) error {
				spin, err := rsti.Compile(`int main(void){ int i; int a; a = 0; for (i = 0; i < 100000000; i = i + 1) { a = a + i; } return a & 1; }`)
				if err != nil {
					t.Fatal(err)
				}
				res, err := spin.Run(rsti.None, rsti.WithTimeout(10*time.Millisecond))
				if err != nil {
					t.Fatal(err)
				}
				return res.Err
			},
			is:       []error{context.DeadlineExceeded},
			isNot:    []error{rsti.ErrStepBudget, context.Canceled},
			wantTrap: trapKind(vm.TrapCancelled),
		},
		{
			name: "engine/step-budget",
			produce: func(t *testing.T) error {
				eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 1})
				defer eng.Close()
				res, err := eng.Submit(context.Background(), rsti.None, rsti.WithStepBudget(50))
				if err != nil {
					t.Fatal(err)
				}
				return res.Err
			},
			is:       []error{rsti.ErrStepBudget},
			isNot:    []error{rsti.ErrQueueFull, rsti.ErrRunPanic},
			wantTrap: trapKind(vm.TrapMaxSteps),
		},
		{
			name: "engine/security-trap",
			produce: func(t *testing.T) error {
				eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 1})
				defer eng.Close()
				res, err := eng.Submit(context.Background(), rsti.STL, rsti.WithHook(1, hijackHandler))
				if err != nil {
					t.Fatal(err)
				}
				if !res.Detected() {
					t.Fatal("hijack not detected under STL through the engine")
				}
				return res.Err
			},
			isNot:    []error{rsti.ErrStepBudget, rsti.ErrQueueFull},
			wantTrap: trapKind(vm.TrapAuthFailure),
		},
		{
			name: "engine/closed",
			produce: func(t *testing.T) error {
				eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 1})
				eng.Close()
				_, err := eng.Submit(context.Background(), rsti.None)
				return err
			},
			is:    []error{rsti.ErrEngineClosed},
			isNot: []error{rsti.ErrQueueFull, rsti.ErrRunPanic},
		},
		{
			name: "engine/panic",
			produce: func(t *testing.T) error {
				eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 1})
				defer eng.Close()
				_, err := eng.Submit(context.Background(), rsti.None,
					rsti.WithHook(1, func(*vm.Machine) error { panic("taxonomy") }))
				return err
			},
			is:    []error{rsti.ErrRunPanic},
			isNot: []error{rsti.ErrEngineClosed, rsti.ErrStepBudget},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.produce(t)
			if err == nil {
				t.Fatal("case produced no error")
			}
			for _, target := range tc.is {
				if !errors.Is(err, target) {
					t.Errorf("errors.Is(err, %v) = false; err = %v", target, err)
				}
			}
			for _, target := range tc.isNot {
				if errors.Is(err, target) {
					t.Errorf("errors.Is(err, %v) = true, want false; err = %v", target, err)
				}
			}
			var te *rsti.TrapError
			if tc.wantTrap != nil {
				if !errors.As(err, &te) {
					t.Fatalf("errors.As(*TrapError) = false; err = %v", err)
				}
				if te.Kind != *tc.wantTrap {
					t.Errorf("TrapError.Kind = %v, want %v", te.Kind, *tc.wantTrap)
				}
				if tr, ok := vm.AsTrap(err); !ok || tr != te.Trap() {
					t.Errorf("vm.AsTrap does not reach the TrapError's trap")
				}
			} else if errors.As(err, &te) {
				t.Errorf("non-trap error unexpectedly carries a *TrapError: %v", err)
			}
		})
	}
}

func trapKind(k vm.TrapKind) *vm.TrapKind { return &k }

// TestTrapErrorQueueFullDirect pins the one admission error the table
// cannot produce inline: TrySubmit on a saturated queue. The single
// worker is parked deterministically on a hook that blocks until
// released, a second job fills the one queue slot, and only then is the
// rejection path probed.
func TestTrapErrorQueueFullDirect(t *testing.T) {
	p, err := rsti.Compile(taxonomySrc)
	if err != nil {
		t.Fatal(err)
	}
	eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 1, QueueDepth: 1})
	defer eng.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	park := rsti.WithHook(1, func(*vm.Machine) error {
		close(started)
		<-release
		return nil
	})
	done := make(chan struct{}, 2)
	go func() { eng.Submit(context.Background(), rsti.None, park); done <- struct{}{} }()
	<-started // the worker is now parked inside the hook
	go func() { eng.Submit(context.Background(), rsti.None); done <- struct{}{} }()
	for eng.Stats().Queued == 0 {
		runtime.Gosched()
	}

	_, err = eng.TrySubmit(context.Background(), rsti.None)
	if !errors.Is(err, rsti.ErrQueueFull) {
		t.Fatalf("TrySubmit on a full queue: %v, want ErrQueueFull", err)
	}
	if errors.Is(err, rsti.ErrEngineClosed) || errors.Is(err, rsti.ErrRunPanic) {
		t.Fatalf("ErrQueueFull bleeds into other sentinels: %v", err)
	}
	close(release)
	<-done
	<-done
}

package vm

import (
	"fmt"
	"math"
	"strings"

	"rsti/internal/mir"
)

// chargeBytes models the cycle cost of library routines that do real
// work proportional to their input (string and memory functions): one
// cycle per byte touched. Without this, a builtin call would be nearly
// free and the relative cost of its argument authentication would be
// wildly overstated.
func (m *Machine) chargeBytes(n int) { m.Stats.Cycles += int64(n) }

// builtin dispatches an extern function call. Unknown externs are a
// program error — every extern a workload uses must either be a known
// builtin or be registered via RegisterExtern.
func (m *Machine) builtin(f *mir.Func, args []uint64) (uint64, error) {
	if h, ok := m.externs[f.Name]; ok {
		return h(m, args)
	}
	switch f.Name {
	case "malloc":
		return m.malloc(args[0])
	case "free":
		// The bump allocator does not recycle; temporal-safety scenarios
		// rely on dangling pointers remaining mapped, matching the paper's
		// use-after-free discussion.
		return 0, nil
	case "exit":
		code := int64(args[0])
		m.exitCode = &code
		return 0, exitSentinel{code}
	case "printf":
		return m.printf(args)
	case "puts":
		s, err := m.Mem.CString(m.Unit.Strip(args[0]))
		if err != nil {
			return 0, err
		}
		m.chargeBytes(len(s))
		fmt.Fprintln(m.out, s)
		return uint64(len(s) + 1), nil
	case "strlen":
		s, err := m.Mem.CString(m.Unit.Strip(args[0]))
		if err != nil {
			return 0, err
		}
		m.chargeBytes(len(s))
		return uint64(len(s)), nil
	case "strcmp":
		a, err := m.Mem.CString(m.Unit.Strip(args[0]))
		if err != nil {
			return 0, err
		}
		b, err := m.Mem.CString(m.Unit.Strip(args[1]))
		if err != nil {
			return 0, err
		}
		m.chargeBytes(len(a) + len(b))
		return uint64(int64(strings.Compare(a, b))), nil
	case "strcpy":
		src, err := m.Mem.CString(m.Unit.Strip(args[1]))
		if err != nil {
			return 0, err
		}
		dst := m.Unit.Strip(args[0])
		b, err := m.Mem.Bytes(dst, len(src)+1)
		if err != nil {
			return 0, err
		}
		copy(b, src)
		b[len(src)] = 0
		m.chargeBytes(len(src))
		return dst, nil
	case "strstr":
		hay, err := m.Mem.CString(m.Unit.Strip(args[0]))
		if err != nil {
			return 0, err
		}
		needle, err := m.Mem.CString(m.Unit.Strip(args[1]))
		if err != nil {
			return 0, err
		}
		m.chargeBytes(len(hay) + len(needle))
		idx := strings.Index(hay, needle)
		if idx < 0 {
			return 0, nil
		}
		return m.Unit.Strip(args[0]) + uint64(idx), nil
	case "memset":
		p := m.Unit.Strip(args[0])
		n := int(args[2])
		b, err := m.Mem.Bytes(p, n)
		if err != nil {
			return 0, err
		}
		for i := range b {
			b[i] = byte(args[1])
		}
		m.chargeBytes(n)
		return p, nil
	case "memcpy":
		dst, src := m.Unit.Strip(args[0]), m.Unit.Strip(args[1])
		n := int(args[2])
		db, err := m.Mem.Bytes(dst, n)
		if err != nil {
			return 0, err
		}
		sb, err := m.Mem.Bytes(src, n)
		if err != nil {
			return 0, err
		}
		copy(db, sb)
		m.chargeBytes(n)
		return dst, nil
	case "__hook":
		if h, ok := m.hooks[int64(args[0])]; ok {
			if err := h(m); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
	return 0, fmt.Errorf("vm: call to unimplemented extern %q", f.Name)
}

// RegisterExtern installs a Go implementation for an extern function,
// letting scenarios model arbitrary uninstrumented library code.
func (m *Machine) RegisterExtern(name string, fn func(m *Machine, args []uint64) (uint64, error)) {
	if m.externs == nil {
		m.externs = make(map[string]func(*Machine, []uint64) (uint64, error))
	}
	m.externs[name] = fn
}

func (m *Machine) malloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	size = (size + 15) &^ 15
	if m.heapNext+size > m.heapEnd {
		return 0, fmt.Errorf("vm: heap exhausted (%d bytes requested)", size)
	}
	addr := m.heapNext
	m.heapNext += size
	return addr, nil
}

// printf implements the %d %ld %x %c %s %p %f verbs over VM memory.
func (m *Machine) printf(args []uint64) (uint64, error) {
	format, err := m.Mem.CString(m.Unit.Strip(args[0]))
	if err != nil {
		return 0, err
	}
	var b strings.Builder
	ai := 1
	nextArg := func() uint64 {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return 0
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' || i+1 >= len(format) {
			b.WriteByte(ch)
			continue
		}
		i++
		// Skip length modifiers.
		for format[i] == 'l' || format[i] == 'z' {
			i++
			if i >= len(format) {
				break
			}
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case 'd', 'i':
			fmt.Fprintf(&b, "%d", int64(nextArg()))
		case 'u':
			fmt.Fprintf(&b, "%d", nextArg())
		case 'x':
			fmt.Fprintf(&b, "%x", nextArg())
		case 'c':
			b.WriteByte(byte(nextArg()))
		case 'p':
			fmt.Fprintf(&b, "%#x", nextArg())
		case 'f':
			fmt.Fprintf(&b, "%f", math.Float64frombits(nextArg()))
		case 's':
			addr := m.Unit.Strip(nextArg())
			if addr == 0 {
				b.WriteString("(null)") // glibc's courtesy for %s on NULL
				break
			}
			s, err := m.Mem.CString(addr)
			if err != nil {
				return 0, err
			}
			b.WriteString(s)
		case '%':
			b.WriteByte('%')
		default:
			b.WriteByte('%')
			b.WriteByte(format[i])
		}
	}
	fmt.Fprint(m.out, b.String())
	return uint64(b.Len()), nil
}

package vm

import (
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/ctypes"
	"rsti/internal/mir"
	"rsti/internal/pa"
)

// fuseProg wraps a hand-built main function (plus one 8-byte global "g")
// into a runnable program.
func fuseProg(main *mir.Func) *mir.Program {
	return &mir.Program{
		Funcs:   []*mir.Func{main},
		ByName:  map[string]*mir.Func{main.Name: main},
		Globals: []*mir.Global{{Name: "g", Type: ctypes.LongType, Var: 0}},
		Vars:    []*mir.VarInfo{{Name: "g", Type: ctypes.LongType, Global: true}},
	}
}

// TestPredecodeFusionMarks pins exactly which adjacencies fuse: the pair
// must be textually adjacent in one block, and the second instruction must
// consume the first's destination in its fused operand (the load's address,
// the store's value). Everything else — interposed instructions, unrelated
// registers, block boundaries — stays unfused.
func TestPredecodeFusionMarks(t *testing.T) {
	f := &mir.Func{Name: "f", NumRegs: 12}
	b0 := f.NewBlock("b0")
	b0.Instrs = []mir.Instr{
		{Op: mir.PacSign, Dst: 1, A: 0, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)}, // 0: fused with 1
		{Op: mir.Store, Dst: mir.NoReg, A: 2, B: 1, Ty: ctypes.LongType},
		{Op: mir.PacAuth, Dst: 3, A: 1, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)}, // 2: fused with 3
		{Op: mir.Load, Dst: 4, A: 3, Ty: ctypes.LongType},
		{Op: mir.PacAuth, Dst: 5, A: 1, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)}, // 4: load reads r7, not r5
		{Op: mir.Load, Dst: 6, A: 7, Ty: ctypes.LongType},
		{Op: mir.PacSign, Dst: 7, A: 0, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)}, // 6: store writes r9, not r7
		{Op: mir.Store, Dst: mir.NoReg, A: 2, B: 9, Ty: ctypes.LongType},
		{Op: mir.PacAuth, Dst: 8, A: 1, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)}, // 8: block ends here
	}
	b1 := f.NewBlock("b1")
	b1.Instrs = []mir.Instr{
		{Op: mir.Load, Dst: 9, A: 8, Ty: ctypes.LongType}, // consumes r8 but across the boundary
	}

	dec, fc := predecode(f)
	if fc.AuthLoads != 1 || fc.SignStores != 1 || fc.Total() != 2 {
		t.Fatalf("fused counts = %+v, want exactly 1 auth/load and 1 sign/store", fc)
	}
	wantFuse := map[int]fuseKind{0: fuseSignStore, 2: fuseAuthLoad}
	for ii := range b0.Instrs {
		if got := dec[0][ii].fuse; got != wantFuse[ii] {
			t.Errorf("block 0 instr %d: fuse = %d, want %d", ii, got, wantFuse[ii])
		}
	}
	if dec[1][0].fuse != fuseNone {
		t.Errorf("cross-block load fused; fusion must not cross block boundaries")
	}
}

// TestFusedAuthFailureNamesAuth checks trap attribution inside a fused
// aut+load pair: when the authentication itself fails, the trap names the
// PacAuth instruction, not the load dispatched in the same switch arm.
func TestFusedAuthFailureNamesAuth(t *testing.T) {
	f := &mir.Func{Name: "main", NumRegs: 8}
	b := f.NewBlock("entry")
	b.Instrs = []mir.Instr{
		{Op: mir.GlobalAddr, Dst: 0, A: mir.NoReg, B: mir.NoReg, Imm: 0},
		{Op: mir.PacSign, Dst: 1, A: 0, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)},
		// Wrong modifier: the fused authentication must fail.
		{Op: mir.PacAuth, Dst: 2, A: 1, B: mir.NoReg, Mod: 6, Key: uint8(pa.KeyDA), Pos: cminor.Pos{Line: 21}},
		{Op: mir.Load, Dst: 3, A: 2, Ty: ctypes.LongType, Pos: cminor.Pos{Line: 22}},
		{Op: mir.RetOp, Dst: mir.NoReg, A: 3, B: mir.NoReg},
	}
	prog := fuseProg(f)
	img := NewImage(prog)
	if al, _ := img.FusedPairs(); al != 1 {
		t.Fatalf("pair did not fuse (%d static auth/loads); the test would not exercise the fused path", al)
	}
	opts := DefaultOptions()
	opts.Image = img
	_, err := New(prog, opts).Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapAuthFailure {
		t.Fatalf("err = %v, want auth-failure trap", err)
	}
	if tr.Pos.Line != 21 {
		t.Errorf("trap names line %d, want 21 (the aut, not the fused load)", tr.Pos.Line)
	}
}

// TestFusedLoadFaultNamesLoad checks the complementary attribution: the
// authentication succeeds, and the memory fault on the fused access names
// the load instruction.
func TestFusedLoadFaultNamesLoad(t *testing.T) {
	f := &mir.Func{Name: "main", NumRegs: 8}
	b := f.NewBlock("entry")
	b.Instrs = []mir.Instr{
		// A canonical but unmapped address (far below the globals segment).
		{Op: mir.Const, Dst: 0, A: mir.NoReg, B: mir.NoReg, Imm: 0x18},
		{Op: mir.PacSign, Dst: 1, A: 0, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)},
		{Op: mir.PacAuth, Dst: 2, A: 1, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA), Pos: cminor.Pos{Line: 31}},
		{Op: mir.Load, Dst: 3, A: 2, Ty: ctypes.LongType, Pos: cminor.Pos{Line: 32}},
		{Op: mir.RetOp, Dst: mir.NoReg, A: 3, B: mir.NoReg},
	}
	prog := fuseProg(f)
	img := NewImage(prog)
	if al, _ := img.FusedPairs(); al != 1 {
		t.Fatalf("pair did not fuse (%d static auth/loads)", al)
	}
	opts := DefaultOptions()
	opts.Image = img
	_, err := New(prog, opts).Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapOutOfBounds {
		t.Fatalf("err = %v, want out-of-bounds trap", err)
	}
	if tr.Pos.Line != 32 {
		t.Errorf("trap names line %d, want 32 (the load, not the aut)", tr.Pos.Line)
	}
}

// TestFusedLoadNarrowing runs sub-word fused loads against their unfused
// twins (same program with the pair's adjacency broken by a Nop): the
// extension mode must be applied identically on the fused path.
func TestFusedLoadNarrowing(t *testing.T) {
	cases := []struct {
		ty   *ctypes.Type
		want int64
	}{
		{ctypes.CharType, -1},         // 0xFF sign-extends from 8 bits
		{ctypes.ShortType, -1},        // 0xFFFF from 16
		{ctypes.IntType, -1},          // 0xFFFFFFFF from 32
		{ctypes.LongType, 0xFFFFFFFF}, // no extension; only the poked bytes
	}
	for _, tc := range cases {
		var rets [2]int64
		for variant := 0; variant < 2; variant++ {
			f := &mir.Func{Name: "main", NumRegs: 8}
			b := f.NewBlock("entry")
			b.Instrs = append(b.Instrs,
				mir.Instr{Op: mir.GlobalAddr, Dst: 0, A: mir.NoReg, B: mir.NoReg, Imm: 0},
				mir.Instr{Op: mir.PacSign, Dst: 1, A: 0, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)},
				mir.Instr{Op: mir.PacAuth, Dst: 2, A: 1, B: mir.NoReg, Mod: 5, Key: uint8(pa.KeyDA)},
			)
			if variant == 1 {
				b.Instrs = append(b.Instrs, mir.Instr{Op: mir.Nop, Dst: mir.NoReg, A: mir.NoReg, B: mir.NoReg})
			}
			b.Instrs = append(b.Instrs,
				mir.Instr{Op: mir.Load, Dst: 3, A: 2, Ty: tc.ty},
				mir.Instr{Op: mir.RetOp, Dst: mir.NoReg, A: 3, B: mir.NoReg},
			)
			prog := fuseProg(f)
			img := NewImage(prog)
			al, _ := img.FusedPairs()
			if wantAL := 1 - variant; al != wantAL {
				t.Fatalf("%v variant %d: static auth/loads = %d, want %d", tc.ty.Kind, variant, al, wantAL)
			}
			opts := DefaultOptions()
			opts.Image = img
			m := New(prog, opts)
			addr, _ := m.GlobalAddr("g")
			if err := m.Mem.Poke(addr, 0xFFFF_FFFF, 8); err != nil {
				t.Fatal(err)
			}
			ret, err := m.Run()
			if err != nil {
				t.Fatalf("%v variant %d: %v", tc.ty.Kind, variant, err)
			}
			rets[variant] = ret
			if wantFused := int64(1 - variant); m.Stats.FusedAuthLoads != wantFused {
				t.Errorf("%v variant %d: FusedAuthLoads = %d, want %d",
					tc.ty.Kind, variant, m.Stats.FusedAuthLoads, wantFused)
			}
		}
		if rets[0] != rets[1] {
			t.Errorf("%v: fused ret %#x != unfused ret %#x", tc.ty.Kind, rets[0], rets[1])
		}
		if rets[0] != tc.want {
			t.Errorf("%v: ret = %#x, want %#x", tc.ty.Kind, rets[0], tc.want)
		}
	}
}

// TestFusedSignStoreRoundTrip checks the fused pac+store writes exactly
// what separate dispatch writes: the signed value lands in memory and
// authenticates back to the original.
func TestFusedSignStoreRoundTrip(t *testing.T) {
	f := &mir.Func{Name: "main", NumRegs: 8}
	b := f.NewBlock("entry")
	b.Instrs = []mir.Instr{
		{Op: mir.GlobalAddr, Dst: 0, A: mir.NoReg, B: mir.NoReg, Imm: 0},
		{Op: mir.Const, Dst: 1, A: mir.NoReg, B: mir.NoReg, Imm: 0x1234},
		{Op: mir.PacSign, Dst: 2, A: 1, B: mir.NoReg, Mod: 7, Key: uint8(pa.KeyDA)},
		{Op: mir.Store, Dst: mir.NoReg, A: 0, B: 2, Ty: ctypes.LongType},
		{Op: mir.Load, Dst: 3, A: 0, Ty: ctypes.LongType},
		{Op: mir.PacAuth, Dst: 4, A: 3, B: mir.NoReg, Mod: 7, Key: uint8(pa.KeyDA)},
		{Op: mir.RetOp, Dst: mir.NoReg, A: 4, B: mir.NoReg},
	}
	prog := fuseProg(f)
	img := NewImage(prog)
	if _, ss := img.FusedPairs(); ss != 1 {
		t.Fatalf("pair did not fuse (%d static sign/stores)", ss)
	}
	opts := DefaultOptions()
	opts.Image = img
	m := New(prog, opts)
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 0x1234 {
		t.Errorf("round trip = %#x, want 0x1234", ret)
	}
	if m.Stats.FusedSignStores != 1 {
		t.Errorf("FusedSignStores = %d, want 1", m.Stats.FusedSignStores)
	}
}

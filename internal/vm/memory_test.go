package vm

import (
	"testing"
	"testing/quick"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
)

func TestMemoryLoadStoreRoundTripProperty(t *testing.T) {
	m := NewMemory(4096, 4096, 4096, 4096)
	sizes := []int{1, 2, 4, 8}
	f := func(off uint16, raw uint64, szPick uint8) bool {
		n := sizes[int(szPick)%len(sizes)]
		addr := HeapBase + uint64(off)%(4096-8)
		v := raw
		if n < 8 {
			v &= (uint64(1) << (8 * n)) - 1
		}
		if err := m.Store(addr, v, n); err != nil {
			return false
		}
		got, err := m.Load(addr, n)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryLittleEndianLayout(t *testing.T) {
	m := NewMemory(64, 64, 64, 64)
	if err := m.Store(GlobalsBase, 0x0102030405060708, 8); err != nil {
		t.Fatal(err)
	}
	b, err := m.Bytes(GlobalsBase, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, b[i], want[i])
		}
	}
	lo, _ := m.Load(GlobalsBase, 4)
	if lo != 0x05060708 {
		t.Errorf("low word = %#x", lo)
	}
}

func TestMemoryUnmappedAccess(t *testing.T) {
	m := NewMemory(64, 64, 64, 64)
	if _, err := m.Load(0xdead0000, 8); err == nil {
		t.Error("load from unmapped address succeeded")
	}
	if err := m.Store(GlobalsBase+60, 1, 8); err == nil {
		t.Error("store straddling a segment end succeeded")
	}
	if _, err := m.Bytes(HeapBase+64, 1); err == nil {
		t.Error("bytes past the heap end succeeded")
	}
}

func TestMemoryCString(t *testing.T) {
	m := NewMemory(64, 64, 64, 64)
	b, _ := m.Bytes(StringsBase, 6)
	copy(b, "hello")
	b[5] = 0
	s, err := m.CString(StringsBase)
	if err != nil || s != "hello" {
		t.Errorf("CString = %q, %v", s, err)
	}
	if _, err := m.CString(StringsBase + 100); err == nil {
		t.Error("CString out of range succeeded")
	}
}

func TestMemorySegmentsDontOverlap(t *testing.T) {
	m := NewMemory(128, 128, 128, 128)
	if err := m.Store(GlobalsBase, 0xAA, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Store(HeapBase, 0xBB, 1); err != nil {
		t.Fatal(err)
	}
	g, _ := m.Load(GlobalsBase, 1)
	h, _ := m.Load(HeapBase, 1)
	if g != 0xAA || h != 0xBB {
		t.Errorf("cross-segment interference: %#x %#x", g, h)
	}
}

func TestPPViolationTrap(t *testing.T) {
	// Re-registering a CE with a different FE modifier must trap: the
	// metadata store is read-only by design (§4.7.7, §7 metadata attack).
	f, err := cminor.Frontend(`int main(void) { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	// Inject two conflicting PPAdd instructions at the top of main.
	main := prog.ByName["main"]
	pre := []mir.Instr{
		{Op: mir.PPAdd, Dst: mir.NoReg, A: mir.NoReg, B: mir.NoReg, CE: 5, Mod: 111},
		{Op: mir.PPAdd, Dst: mir.NoReg, A: mir.NoReg, B: mir.NoReg, CE: 5, Mod: 222},
	}
	main.Blocks[0].Instrs = append(pre, main.Blocks[0].Instrs...)
	m := New(prog, DefaultOptions())
	_, err = m.Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapPPViolation {
		t.Errorf("err = %v, want pp-violation trap", err)
	}
}

package vm

import (
	"strings"
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
)

func TestPrintfAllVerbs(t *testing.T) {
	_, out := run(t, `
		int main(void) {
			double f = 2.5;
			printf("u=%u p=%p f=%f i=%i lit=%% bad=%q end\n", 7, 4096, f, -3);
			printf("no args %d %s");
			return 0;
		}
	`)
	for _, want := range []string{"u=7", "p=0x1000", "f=2.5", "i=-3", "lit=%", "%q"} {
		if !strings.Contains(out, want) {
			t.Errorf("printf output %q missing %q", out, want)
		}
	}
}

func TestFloatComparisonsAndCasts(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			double a = 2.5;
			double b = 2.5;
			float f = 1.25;
			double widened = f;
			int truncated = (int) a;
			double back = truncated;
			int acc = 0;
			if (a == b) acc += 1;
			if (a != 3.0) acc += 2;
			if (f <= 1.25) acc += 4;
			if (widened >= 1.0) acc += 8;
			if (back < a) acc += 16;
			if (a > widened) acc += 32;
			return acc + truncated;
		}
	`)
	if ret != 65 { // 1+2+4+8+16+32 + 2
		t.Errorf("acc = %d, want 65", ret)
	}
}

func TestFloatCompoundAssignments(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			double x = 10.0;
			x += 2.5;
			x -= 0.5;
			x *= 2.0;
			x /= 3.0;
			return (int) x; // (12.0 * 2) / 3 = 8
		}
	`)
	if ret != 8 {
		t.Errorf("x = %d, want 8", ret)
	}
}

func TestPointerCompoundAndIncDec(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int a[6];
			for (int i = 0; i < 6; i++) a[i] = i * 10;
			int *p = (int*)a;
			p += 3;
			int x = *p;   // 30
			p -= 2;
			int y = *p;   // 10
			++p;
			int z = *p;   // 20
			--p;
			return x + y + z + *p; // 30+10+20+10
		}
	`)
	if ret != 70 {
		t.Errorf("ret = %d, want 70", ret)
	}
}

func TestIndirectCallToCorruptedTokenTraps(t *testing.T) {
	f, err := cminor.Frontend(`
		int ok(void) { return 1; }
		int (*h)(void);
		int main(void) { h = ok; __hook(1); return h(); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	m.RegisterHook(1, func(m *Machine) error {
		addr, _ := m.GlobalAddr("h")
		// A value inside the token segment but not a valid entry.
		return m.Mem.Poke(addr, FuncBase+FuncStride/2, 8)
	})
	_, err = m.Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapBadCall {
		t.Errorf("err = %v, want bad-call trap", err)
	}
}

func TestNonCanonicalIndirectCallTraps(t *testing.T) {
	f, err := cminor.Frontend(`
		int ok(void) { return 1; }
		int (*h)(void);
		int main(void) { h = ok; __hook(1); return h(); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	m.RegisterHook(1, func(m *Machine) error {
		addr, _ := m.GlobalAddr("h")
		return m.Mem.Poke(addr, 0xFFFF_0000_0000_0001, 8)
	})
	_, err = m.Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapNonCanonical {
		t.Errorf("err = %v, want non-canonical trap", err)
	}
}

func TestTrapStringsAndClassification(t *testing.T) {
	kinds := []TrapKind{TrapAuthFailure, TrapNonCanonical, TrapOutOfBounds,
		TrapBadCall, TrapDivideByZero, TrapMaxSteps, TrapStackOverflow, TrapPPViolation}
	security := map[TrapKind]bool{
		TrapAuthFailure: true, TrapNonCanonical: true, TrapPPViolation: true,
	}
	for _, k := range kinds {
		if k.String() == "" || strings.HasPrefix(k.String(), "TrapKind") {
			t.Errorf("kind %d has no name", k)
		}
		tr := &Trap{Kind: k, Fn: "f", Msg: "m"}
		if tr.SecurityTrap() != security[k] {
			t.Errorf("%v: SecurityTrap = %v", k, tr.SecurityTrap())
		}
		if !strings.Contains(tr.Error(), "trap:") {
			t.Errorf("%v: Error() = %q", k, tr.Error())
		}
	}
	if TrapKind(99).String() == "" {
		t.Error("unknown kind empty")
	}
	if _, ok := AsTrap(nil); ok {
		t.Error("AsTrap(nil) succeeded")
	}
}

func TestHeapExhaustion(t *testing.T) {
	f, err := cminor.Frontend(`
		int main(void) {
			for (int i = 0; i < 100000; i++) {
				void *p = malloc(1048576);
				if (p == NULL) return 1;
			}
			return 0;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	if _, err := m.Run(); err == nil {
		t.Error("heap exhaustion not reported")
	}
}

func TestCallNamedFunctionDirectly(t *testing.T) {
	f, err := cminor.Frontend(`
		long add3(long a, long b, long c) { return a + b + c; }
		int main(void) { return 0; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	got, err := m.Call("add3", 1, 2, 3)
	if err != nil || got != 6 {
		t.Errorf("Call = %d, %v", got, err)
	}
	if _, err := m.Call("missing"); err == nil {
		t.Error("Call of a missing function succeeded")
	}
}

func TestFuncTokenAndGlobalAddrLookups(t *testing.T) {
	f, err := cminor.Frontend(`int g; int main(void) { return g; }`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	if _, ok := m.FuncToken("main"); !ok {
		t.Error("main token missing")
	}
	if _, ok := m.FuncToken("ghost"); ok {
		t.Error("ghost token found")
	}
	if _, ok := m.GlobalAddr("g"); !ok {
		t.Error("global g missing")
	}
	if _, ok := m.GlobalAddr("ghost"); ok {
		t.Error("ghost global found")
	}
	if _, ok := m.VarAddr("main", "nothing"); ok {
		t.Error("VarAddr found a non-existent local")
	}
}

func TestHookErrorPropagates(t *testing.T) {
	f, err := cminor.Frontend(`int main(void) { __hook(3); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	m.RegisterHook(3, func(m *Machine) error {
		return &Trap{Kind: TrapOutOfBounds, Fn: "hook", Msg: "boom"}
	})
	if _, err := m.Run(); err == nil {
		t.Error("hook error swallowed")
	}
}

package vm

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
	"rsti/internal/workload"
)

// lowerBench compiles src (uninstrumented) down to MIR.
func lowerBench(t *testing.T, src string) *mir.Program {
	t.Helper()
	f, err := cminor.Frontend(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

// modelled strips the host-side observability counters from a stats
// snapshot, leaving the numbers the tiers' bit-identity contract covers.
func modelled(s Stats) Stats {
	s.PACCacheHits, s.PACCacheMisses = 0, 0
	s.FusedAuthLoads, s.FusedSignStores, s.FusedAuthStores = 0, 0, 0
	s.FusedAuthAddrLoads, s.FusedAuthAddrStores, s.FusedInstrs = 0, 0, 0
	s.ThreadedInstrs = 0
	return s
}

// testTierThreshold is low enough that the test workloads' hot functions
// promote within a single run.
const testTierThreshold = 256

// runTier executes prog once on img with the tier on or off.
func runTier(t *testing.T, prog *mir.Program, img *Image, tier bool) (int64, string, Stats) {
	t.Helper()
	var out strings.Builder
	opts := DefaultOptions()
	opts.Output = &out
	opts.Image = img
	opts.Tier = tier
	opts.TierThreshold = testTierThreshold
	m := New(prog, opts)
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("run (tier=%v): %v", tier, err)
	}
	return ret, out.String(), m.Stats
}

// TestThreadedBitIdenticalToInterpreter runs real workloads through both
// tiers and requires exit value, output, and every modelled counter to
// match exactly — the tier is a host-speed change and nothing else. Two
// tier-on rounds share one image, so the second executes the promoted
// bodies from the first instruction.
func TestThreadedBitIdenticalToInterpreter(t *testing.T) {
	for _, b := range []*workload.Benchmark{workload.SPEC2017()[0], workload.NBench()[0]} {
		prog := lowerBench(t, b.Source)
		ret0, out0, s0 := runTier(t, prog, NewImage(prog), false)

		img := NewImage(prog)
		var (
			ret1 int64
			out1 string
			s1   Stats
		)
		for r := 0; r < 2; r++ {
			ret1, out1, s1 = runTier(t, prog, img, true)
			if ret1 != ret0 || out1 != out0 {
				t.Errorf("%s round %d: tier changed behaviour: ret %d vs %d", b.Name, r, ret1, ret0)
			}
			if modelled(s1) != modelled(s0) {
				t.Errorf("%s round %d: modelled stats diverge:\ntier0 %+v\ntier1 %+v",
					b.Name, r, modelled(s0), modelled(s1))
			}
		}
		if s1.ThreadedInstrs == 0 {
			t.Errorf("%s: tier-on run retired no threaded instructions; the tier never engaged", b.Name)
		}
		ts := img.TierStats()
		if ts.Promotions == 0 {
			t.Errorf("%s: no function promoted", b.Name)
		}
		if ts.Promotions != ts.CompiledFuncs {
			t.Errorf("%s: promotions %d != compiled funcs %d", b.Name, ts.Promotions, ts.CompiledFuncs)
		}
	}
}

// TestThreadedBudgetExactness sweeps step budgets — including values that
// land mid-segment and off the 1024-step cancellation checkpoint grid —
// and requires the tier to trap at exactly the interpreter's step, with
// the same attribution and the same modelled counters. The image is
// pre-warmed so the budgeted runs execute threaded code from entry.
func TestThreadedBudgetExactness(t *testing.T) {
	prog := lowerBench(t, workload.SPEC2017()[0].Source)
	img := NewImage(prog)
	runTier(t, prog, img, true)

	for _, budget := range []int64{1, 7, 513, 1023, 1024, 1025, 4096, 65537, 300000} {
		runBudget := func(tier bool) (Stats, error) {
			opts := DefaultOptions()
			opts.MaxSteps = budget
			if tier {
				opts.Image = img
				opts.Tier = true
				opts.TierThreshold = testTierThreshold
			}
			m := New(prog, opts)
			_, err := m.Run()
			return m.Stats, err
		}
		s0, err0 := runBudget(false)
		s1, err1 := runBudget(true)
		tr0, ok0 := AsTrap(err0)
		tr1, ok1 := AsTrap(err1)
		if !ok0 || !ok1 || tr0.Kind != TrapMaxSteps || tr1.Kind != TrapMaxSteps {
			t.Fatalf("budget %d: want budget traps from both tiers, got %v / %v", budget, err0, err1)
		}
		if tr0.Fn != tr1.Fn || tr0.Pos != tr1.Pos || tr0.Msg != tr1.Msg {
			t.Errorf("budget %d: trap attribution diverges:\ntier0 %v\ntier1 %v", budget, tr0, tr1)
		}
		if modelled(s0) != modelled(s1) {
			t.Errorf("budget %d: modelled stats diverge:\ntier0 %+v\ntier1 %+v",
				budget, modelled(s0), modelled(s1))
		}
	}
}

// TestThreadedCancellationCheckpointExact runs both tiers under an
// already-cancelled context: each must stop at the same deterministic
// 1024-step checkpoint with identical attribution and counters.
func TestThreadedCancellationCheckpointExact(t *testing.T) {
	prog := lowerBench(t, workload.SPEC2017()[0].Source)
	img := NewImage(prog)
	runTier(t, prog, img, true)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runCancelled := func(tier bool) (Stats, *Trap) {
		opts := DefaultOptions()
		if tier {
			opts.Image = img
			opts.Tier = true
			opts.TierThreshold = testTierThreshold
		}
		m := New(prog, opts)
		m.SetContext(ctx)
		_, err := m.Run()
		tr, ok := AsTrap(err)
		if !ok || tr.Kind != TrapCancelled {
			t.Fatalf("tier=%v: err = %v, want cancellation trap", tier, err)
		}
		return m.Stats, tr
	}
	s0, tr0 := runCancelled(false)
	s1, tr1 := runCancelled(true)
	if tr0.Fn != tr1.Fn || tr0.Pos != tr1.Pos {
		t.Errorf("cancellation attribution diverges:\ntier0 %v\ntier1 %v", tr0, tr1)
	}
	if modelled(s0) != modelled(s1) {
		t.Errorf("modelled stats diverge at the cancellation checkpoint:\ntier0 %+v\ntier1 %+v",
			modelled(s0), modelled(s1))
	}
}

// TestThreadedPromotionRace hammers one shared image from concurrent
// machines (run under -race in CI): compilation must happen exactly once
// per function no matter how many machines cross the threshold together,
// and every run — before, during, and after promotion — must produce the
// interpreter's exact results.
func TestThreadedPromotionRace(t *testing.T) {
	const src = `
int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i ^ (s >> 3);
	return s;
}
int main(void) {
	int s = 0;
	for (int i = 0; i < 200; i++) s += work(500);
	return s & 255;
}`
	prog := lowerBench(t, src)
	refRet, _, refStats := runTier(t, prog, NewImage(prog), false)

	img := NewImage(prog)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				opts := DefaultOptions()
				opts.Image = img
				opts.Tier = true
				opts.TierThreshold = testTierThreshold
				m := New(prog, opts)
				ret, err := m.Run()
				if err != nil {
					errs <- fmt.Sprintf("goroutine %d run %d: %v", g, r, err)
					return
				}
				if ret != refRet {
					errs <- fmt.Sprintf("goroutine %d run %d: ret %d, want %d", g, r, ret, refRet)
				}
				if modelled(m.Stats) != modelled(refStats) {
					errs <- fmt.Sprintf("goroutine %d run %d: modelled stats diverge from interpreter", g, r)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	ts := img.TierStats()
	if ts.Promotions == 0 {
		t.Error("no promotion fired under contention")
	}
	if ts.Promotions != ts.CompiledFuncs {
		t.Errorf("promotions %d != compiled funcs %d: a function compiled more than once", ts.Promotions, ts.CompiledFuncs)
	}
}

// TestThreadedTrapAttribution reproduces the fuse_test trap scenarios on
// the threaded tier: mid-block traps must name the same instruction and
// refund the unexecuted tail of their batched segment.
func TestThreadedTrapAttribution(t *testing.T) {
	const src = `
int main(void) {
	int a[4];
	int i = 0;
	for (i = 0; i < 100000; i++) a[i & 3] = i;
	return a[(i + 900000) & 1048575];
}`
	prog := lowerBench(t, src)

	run := func(tier bool, img *Image) (Stats, *Trap) {
		opts := DefaultOptions()
		opts.Image = img
		opts.Tier = tier
		opts.TierThreshold = testTierThreshold
		m := New(prog, opts)
		_, err := m.Run()
		tr, ok := AsTrap(err)
		if !ok {
			t.Fatalf("tier=%v: err = %v, want a trap", tier, err)
		}
		return m.Stats, tr
	}
	s0, tr0 := run(false, NewImage(prog))
	img := NewImage(prog)
	// First round promotes; second traps inside threaded code.
	var s1 Stats
	var tr1 *Trap
	for r := 0; r < 2; r++ {
		s1, tr1 = run(true, img)
	}
	if tr0.Kind != tr1.Kind || tr0.Fn != tr1.Fn || tr0.Pos != tr1.Pos {
		t.Errorf("trap attribution diverges:\ntier0 %v\ntier1 %v", tr0, tr1)
	}
	if modelled(s0) != modelled(s1) {
		t.Errorf("modelled stats diverge on the trapping run:\ntier0 %+v\ntier1 %+v",
			modelled(s0), modelled(s1))
	}
}

package vm

// Tier 1: profile-guided direct-threaded execution.
//
// The switch interpreter (exec in machine.go) is tier 0. While it runs
// with the tier enabled, it bumps a per-function hotness counter at every
// block entry; once a function has accounted for TierThreshold modelled
// instructions, its predecoded blocks are compiled — exactly once, no
// matter how many machines share the image — into chains of Go closures.
// Each closure does one instruction's work and tail-dispatches the next by
// returning it, so the central `switch in.Op` disappears from the hot
// path. Blocks the profile observed as hot additionally get
// superinstruction closures for the fused groups predecode marked
// (aut+load, pac+store, aut+store and the aut+addr+access triples), and
// the pac/aut closures inline the PA unit's memo-cache probe so a cache
// hit never leaves the closure.
//
// Accounting is batched but bit-identical to the interpreter. A block is
// split into segments at call boundaries; each segment is guarded by a
// gate closure that pre-charges the whole segment (one add each for
// steps, instrs, cycles and the per-class counters) when it can prove the
// interpreter would have admitted every instruction: the step budget is
// not exhausted inside the segment and no cancellation checkpoint
// (steps % ctxCheckInterval == 0) falls inside it. Otherwise the gate
// reruns the segment through an exact per-instruction slow path — the
// same closures, driven index-wise with the interpreter's own gate —
// which reproduces budget traps, cancellation traps and their
// attribution precisely; the slow path is transient, the next segment's
// gate goes fast again. A closure that traps mid-segment after a fast
// gate refunds the pre-charged suffix (the instructions that never ran),
// so trap-time Stats equal the interpreter's, which charges the trapping
// instruction itself but nothing after it.
//
// Promoted code is entered at function entry and, mid-frame, at block
// boundaries (on-stack replacement from the interpreter's Jmp/Br arms):
// both tiers share the frame layout, so switching is just jumping into
// the block's entry closure.

import (
	"math"
	"sync/atomic"

	"rsti/internal/mir"
	"rsti/internal/pa"
)

// DefaultTierThreshold is the modelled-instruction hotness a function
// must accumulate before its body is compiled to closures. Low enough
// that benchmark loops promote within their first iterations, high
// enough that one-shot startup code never pays for compilation.
const DefaultTierThreshold = 1 << 14

// fusedBlockFloor is the number of observed executions a block needs
// before superinstruction closures are selected for it. Profile-driven:
// cold blocks keep plain per-instruction closures.
const fusedBlockFloor = 8

// tierPromotions counts threaded-body compilations process-wide, for
// /metrics and the exactly-once tests.
var tierPromotions atomic.Int64

// TierPromotions returns the number of functions promoted to the
// threaded tier process-wide.
func TierPromotions() int64 { return tierPromotions.Load() }

// funcProfile promotion states.
const (
	profCold      int32 = iota // still interpreting and counting
	profInstalled              // a machine won the CAS; body is (being) installed
	profDead                   // compilation declined; interpret forever
)

// funcProfile is one function's shared hotness profile and compiled body.
type funcProfile struct {
	hot      atomic.Int64 // modelled instructions observed at block entries
	state    atomic.Int32
	body     atomic.Pointer[threadedFunc]
	blockHot []atomic.Int64 // per-block entry counts, drives fusion selection
}

// tierState is the per-image shared tier: profiles for every function,
// pinned to one cost model (segments bake their cycle charges in).
type tierState struct {
	cost   CostModel
	cycles [mir.NumOps]int64
	prof   map[*mir.Func]*funcProfile

	promotions    atomic.Int64
	closures      atomic.Int64
	fusedClosures atomic.Int64
}

func newTierState(prog *mir.Program, cost CostModel) *tierState {
	ts := &tierState{
		cost: cost,
		prof: make(map[*mir.Func]*funcProfile, len(prog.Funcs)),
	}
	ts.cycles = cost.cycleTable()
	for _, f := range prog.Funcs {
		if !f.Extern {
			ts.prof[f] = &funcProfile{blockHot: make([]atomic.Int64, len(f.Blocks))}
		}
	}
	return ts
}

// tOp is one compiled instruction (or superinstruction, or segment gate):
// it does its work and returns the next closure to run, or nil to stop —
// either a return (m.tRet) or a trap (m.tErr).
type tOp func(m *Machine, fr *frame) tOp

// threadedFunc is a compiled function body: one entry closure per block.
type threadedFunc struct {
	fn       *mir.Func
	entry    []tOp
	closures int64
	fused    int64
}

// noteBlock is the interpreter's per-block profiling hook (called with
// the function's profile before the block's first instruction executes,
// so promotion never splits a block's accounting). It returns a compiled
// body to switch into when one exists — installed by this machine just
// now, or by any other machine sharing the image.
func (m *Machine) noteBlock(p *funcProfile, f *mir.Func, blk *mir.Block) *threadedFunc {
	if tf := p.body.Load(); tf != nil {
		return tf
	}
	if p.state.Load() != profCold {
		return nil // being compiled right now, or declined: keep interpreting
	}
	p.blockHot[blk.Index].Add(1)
	n := int64(len(blk.Instrs))
	h := p.hot.Add(n)
	// Exactly one adder observes the threshold crossing (the atomic adds
	// partition the counter's range); the CAS in promote backstops it.
	if h >= m.tierThreshold && h-n < m.tierThreshold {
		return m.promote(p, f)
	}
	return nil
}

// promote compiles f's threaded body exactly once across all machines
// sharing the image and installs it. Losers of the race return nil and
// keep interpreting until the body shows up via noteBlock.
func (m *Machine) promote(p *funcProfile, f *mir.Func) *threadedFunc {
	if !p.state.CompareAndSwap(profCold, profInstalled) {
		return nil
	}
	tf := compileThreaded(m.tier, m.img, f, p)
	if tf == nil {
		p.state.Store(profDead)
		return nil
	}
	m.tier.promotions.Add(1)
	m.tier.closures.Add(tf.closures)
	m.tier.fusedClosures.Add(tf.fused)
	tierPromotions.Add(1)
	p.body.Store(tf)
	return tf
}

// runThreaded drives a compiled body from block bi's entry until a
// closure stops the chain, then collects the return value or trap the
// stopping closure left on the machine. The caller (exec) owns the frame
// and pops it; both tiers share the frame layout, which is what makes
// mid-frame OSR from the interpreter's branch arms safe.
func (m *Machine) runThreaded(tf *threadedFunc, fr *frame, bi int) (uint64, error) {
	op := tf.entry[bi]
	for op != nil {
		op = op(m, fr)
	}
	ret, err := m.tRet, m.tErr
	m.tRet, m.tErr = 0, nil
	return ret, err
}

// tSeg is one call-free run of instructions within a block, the unit of
// batched accounting.
type tSeg struct {
	fn     *mir.Func
	instrs []mir.Instr // aliases the block's Instrs
	ops    []tOp       // per-instruction closures, driven by the slow path
	n      int64       // instruction count
	cycles int64       // summed cycle charge under the tier's cost model
	adds   []classAdd  // non-zero per-class counter increments
	head   tOp         // first closure of the fast chain
}

// classAdd is one batched class-counter increment.
type classAdd struct {
	class uint8
	n     int64
}

// gateFor builds the segment's admission gate: the fast path charges the
// whole segment in O(1) and jumps into the closure chain; the exact slow
// path takes over whenever the budget or a cancellation checkpoint could
// fire inside the segment.
func gateFor(seg *tSeg) tOp {
	return func(m *Machine, fr *frame) tOp {
		ns := m.steps + seg.n
		if ns > m.maxSteps || (m.ctx != nil && ns/ctxCheckInterval != m.steps/ctxCheckInterval) {
			return m.slowSeg(seg, fr)
		}
		m.steps = ns
		m.Stats.Instrs += seg.n
		m.Stats.Cycles += seg.cycles
		m.Stats.ThreadedInstrs += seg.n
		for _, a := range seg.adds {
			*m.classByIdx[a.class] += a.n
		}
		m.segBatched = true
		return seg.head
	}
}

// slowSeg executes a segment with the interpreter's own per-instruction
// admission (step budget, cancellation checkpoint, charge), reusing the
// segment's closures for the work itself. The last closure's return value
// is the continuation (next segment's gate, a branch target's entry, or
// nil after ret/trap).
func (m *Machine) slowSeg(seg *tSeg, fr *frame) tOp {
	m.segBatched = false
	f := seg.fn
	var next tOp
	for i := range seg.ops {
		in := &seg.instrs[i]
		m.steps++
		if m.steps > m.maxSteps {
			m.tErr = m.trap(TrapMaxSteps, f, in, "%d steps", m.steps)
			return nil
		}
		if m.ctx != nil && m.steps%ctxCheckInterval == 0 {
			if err := m.cancelled(f, in); err != nil {
				m.tErr = err
				return nil
			}
		}
		m.Stats.Instrs++
		m.Stats.Cycles += m.cycles[in.Op]
		m.Stats.ThreadedInstrs++
		*m.classPtr[in.Op]++
		next = seg.ops[i](m, fr)
		if m.tErr != nil {
			return nil
		}
	}
	return next
}

// refundRest undoes the pre-charged accounting for the instructions after
// a trap site when the segment was admitted by the fast gate: the
// interpreter charges the trapping instruction itself and nothing beyond
// it. rest is the segment suffix that never executed.
func (m *Machine) refundRest(rest []mir.Instr) {
	if !m.segBatched {
		return
	}
	for i := range rest {
		op := rest[i].Op
		m.Stats.Instrs--
		m.Stats.Cycles -= m.cycles[op]
		m.Stats.ThreadedInstrs--
		*m.classPtr[op]--
	}
	m.steps -= int64(len(rest))
}

// tcomp carries the per-function compilation state.
type tcomp struct {
	ts  *tierState
	img *Image
	f   *mir.Func
	tf  *threadedFunc
}

// compileThreaded translates f's predecoded blocks into closure chains.
// It returns nil if any instruction cannot be compiled (the function then
// stays on the interpreter forever).
func compileThreaded(ts *tierState, img *Image, f *mir.Func, p *funcProfile) *threadedFunc {
	tf := &threadedFunc{fn: f, entry: make([]tOp, len(f.Blocks))}
	c := &tcomp{ts: ts, img: img, f: f, tf: tf}
	decoded := img.dec[f]
	for bi, blk := range f.Blocks {
		hot := p.blockHot[bi].Load() >= fusedBlockFloor
		entry := c.compileBlock(blk, decoded.block(bi), hot)
		if entry == nil {
			return nil
		}
		tf.entry[bi] = entry
	}
	return tf
}

// compileBlock splits a block into call-bounded segments and compiles
// them back to front, so each segment's gate can hand the next one as the
// chain continuation.
func (c *tcomp) compileBlock(blk *mir.Block, dblk []decInstr, hot bool) tOp {
	type span struct{ start, end int }
	var segs []span
	start := 0
	for i := range blk.Instrs {
		if blk.Instrs[i].Op == mir.CallOp {
			if i > start {
				segs = append(segs, span{start, i})
			}
			segs = append(segs, span{i, i + 1})
			start = i + 1
		}
	}
	if start < len(blk.Instrs) {
		segs = append(segs, span{start, len(blk.Instrs)})
	}

	var cont tOp // continuation after the segment being compiled
	for si := len(segs) - 1; si >= 0; si-- {
		s := segs[si]
		if blk.Instrs[s.start].Op == mir.CallOp {
			cont = c.compileCall(&blk.Instrs[s.start], cont)
			c.tf.closures++
			continue
		}
		g := c.compileSeg(blk, dblk, s.start, s.end, cont, hot)
		if g == nil {
			return nil
		}
		cont = g
	}
	return cont
}

// compileSeg builds one call-free segment: per-instruction closures (the
// exact slow path), the fused fast chain, the batched accounting totals
// and the admission gate that fronts it all.
func (c *tcomp) compileSeg(blk *mir.Block, dblk []decInstr, start, end int, cont tOp, hot bool) tOp {
	n := end - start
	seg := &tSeg{
		fn:     c.f,
		instrs: blk.Instrs[start:end],
		ops:    make([]tOp, n),
	}
	dec := dblk[start:end]
	var cls [numClasses]int64
	// fast[i] is the chain element that represents position i in fast
	// mode: the position's own closure, or the superinstruction closure
	// covering the group that starts there. fast[n] is the continuation.
	fast := make([]tOp, n+1)
	fast[n] = cont
	for i := n - 1; i >= 0; i-- {
		in := &seg.instrs[i]
		seg.n++
		seg.cycles += c.ts.cycles[in.Op]
		cls[classOf[in.Op]]++
		op := c.compileInstr(in, &dec[i], seg.instrs[i+1:], fast[i+1])
		if op == nil {
			return nil
		}
		seg.ops[i] = op
		fast[i] = op
		c.tf.closures++
		if hot {
			if g := fuseLen(dec[i].fuse); g > 0 && i+g <= n {
				if fop := c.compileFused(seg, dec, i, g, fast[i+g]); fop != nil {
					fast[i] = fop
					c.tf.fused++
				}
			}
		}
	}
	seg.head = fast[0]
	for cl, cnt := range cls {
		if cnt != 0 && cl != clNone {
			seg.adds = append(seg.adds, classAdd{class: uint8(cl), n: cnt})
		}
	}
	return gateFor(seg)
}

// compileCall builds the closure for a CallOp. Calls are their own
// segments and gate themselves per-instruction: the callee moves m.steps
// by an unknowable amount, so there is nothing to batch, and keeping the
// admission inline skips a gate dispatch per call.
func (c *tcomp) compileCall(in *mir.Instr, next tOp) tOp {
	f := c.f
	return func(m *Machine, fr *frame) tOp {
		m.steps++
		if m.steps > m.maxSteps {
			m.tErr = m.trap(TrapMaxSteps, f, in, "%d steps", m.steps)
			return nil
		}
		if m.ctx != nil && m.steps%ctxCheckInterval == 0 {
			if err := m.cancelled(f, in); err != nil {
				m.tErr = err
				return nil
			}
		}
		m.Stats.Instrs++
		m.Stats.Cycles += m.cycles[mir.CallOp]
		m.Stats.Calls++
		m.Stats.ThreadedInstrs++
		regs := fr.regs
		var callee *mir.Func
		if in.Callee != "" {
			callee = m.Prog.ByName[in.Callee]
		} else {
			tok := regs[in.A]
			if !m.Unit.IsCanonical(tok) {
				m.tErr = m.trap(TrapNonCanonical, f, in, "indirect call through %#x with non-address bits", tok)
				return nil
			}
			callee = m.img.tokFunc[m.Unit.Canonical(tok)]
			if callee == nil {
				m.tErr = m.trap(TrapBadCall, f, in, "%#x is not a function entry", tok)
				return nil
			}
		}
		base := len(m.ws.argScratch)
		for _, r := range in.Args {
			m.ws.argScratch = append(m.ws.argScratch, regs[r])
		}
		ret, err := m.exec(callee, m.ws.argScratch[base:])
		m.ws.argScratch = m.ws.argScratch[:base]
		if err != nil {
			m.tErr = err
			return nil
		}
		if in.Dst != mir.NoReg {
			regs[in.Dst] = ret
		}
		return next
	}
}

// compileInstr builds the closure for one non-call instruction. rest is
// the segment suffix after it, captured for trap-time refunds; next is
// the fast-chain successor (ignored by the slow path except for the
// segment's last instruction, whose return value is the continuation).
func (c *tcomp) compileInstr(in *mir.Instr, d *decInstr, rest []mir.Instr, next tOp) tOp {
	f := c.f
	switch in.Op {
	case mir.Nop:
		return func(m *Machine, fr *frame) tOp { return next }

	case mir.Const, mir.ConstF:
		dst, v := in.Dst, uint64(in.Imm)
		return func(m *Machine, fr *frame) tOp {
			fr.regs[dst] = v
			return next
		}
	case mir.StrConst:
		dst, v := in.Dst, c.img.stringAddr[in.Imm]
		return func(m *Machine, fr *frame) tOp {
			fr.regs[dst] = v
			return next
		}
	case mir.GlobalAddr:
		dst, v := in.Dst, c.img.globalAddr[in.Imm]
		return func(m *Machine, fr *frame) tOp {
			fr.regs[dst] = v
			return next
		}
	case mir.FuncAddr:
		dst, v := in.Dst, c.img.funcTok[in.Callee]
		return func(m *Machine, fr *frame) tOp {
			fr.regs[dst] = v
			return next
		}

	case mir.Alloca:
		size := d.aux
		return func(m *Machine, fr *frame) tOp {
			if m.stackNext+size > m.stackEnd {
				m.refundRest(rest)
				m.tErr = m.trap(TrapStackOverflow, f, in, "stack segment exhausted")
				return nil
			}
			addr := m.stackNext
			m.stackNext += size
			if b, err := m.Mem.Bytes(addr, int(size)); err == nil {
				for i := range b {
					b[i] = 0
				}
			}
			fr.regs[in.Dst] = addr
			if in.Slot.Kind == mir.SlotVar {
				fr.vars = append(fr.vars, varSlot{in.Slot.Var, addr})
			}
			return next
		}

	case mir.Load:
		a, dst, size, ext := in.A, in.Dst, int(d.size), d.ext
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			addr, err := m.canonical(regs[a], f, in)
			if err != nil {
				m.refundRest(rest)
				m.tErr = err
				return nil
			}
			v, err := m.Mem.Load(addr, size)
			if err != nil {
				m.refundRest(rest)
				m.tErr = m.trap(TrapOutOfBounds, f, in, "%v", err)
				return nil
			}
			regs[dst] = extendDec(v, ext)
			return next
		}
	case mir.Store:
		a, b, size, ext := in.A, in.B, int(d.size), d.ext
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			addr, err := m.canonical(regs[a], f, in)
			if err != nil {
				m.refundRest(rest)
				m.tErr = err
				return nil
			}
			v := regs[b]
			if ext == extF32 {
				v = uint64(math.Float32bits(float32(math.Float64frombits(v))))
			}
			if err := m.Mem.Store(addr, v, size); err != nil {
				m.refundRest(rest)
				m.tErr = m.trap(TrapOutOfBounds, f, in, "%v", err)
				return nil
			}
			return next
		}

	case mir.FieldAddr:
		a, dst, off := in.A, in.Dst, uint64(in.Imm)
		return func(m *Machine, fr *frame) tOp {
			fr.regs[dst] = fr.regs[a] + off
			return next
		}
	case mir.IndexAddr:
		a, b, dst, scale := in.A, in.B, in.Dst, in.Imm
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			regs[dst] = regs[a] + uint64(int64(regs[b])*scale)
			return next
		}

	case mir.BinInstr:
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			v, err := m.binop(in, regs[in.A], regs[in.B], f)
			if err != nil {
				m.refundRest(rest)
				m.tErr = err
				return nil
			}
			regs[in.Dst] = v
			return next
		}
	case mir.CmpInstr:
		a, b, dst, sub, ty := in.A, in.B, in.Dst, in.CmpSub, in.FromTy
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			regs[dst] = cmp(sub, regs[a], regs[b], ty)
			return next
		}
	case mir.CastOp:
		a, dst, from, to := in.A, in.Dst, in.FromTy, in.Ty
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			regs[dst] = castValue(regs[a], from, to)
			return next
		}

	case mir.RetOp:
		a := in.A
		return func(m *Machine, fr *frame) tOp {
			if a == mir.NoReg {
				m.tRet = 0
			} else {
				m.tRet = fr.regs[a]
			}
			return nil
		}
	case mir.Jmp:
		entry, tgt := c.tf.entry, in.Targets[0]
		return func(m *Machine, fr *frame) tOp {
			return entry[tgt]
		}
	case mir.Br:
		entry, a, t0, t1 := c.tf.entry, in.A, in.Targets[0], in.Targets[1]
		return func(m *Machine, fr *frame) tOp {
			if fr.regs[a] != 0 {
				return entry[t0]
			}
			return entry[t1]
		}

	case mir.PacSign:
		a, b, dst, key, smod := in.A, in.B, in.Dst, pa.KeyID(in.Key), in.Mod
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			mod := smod
			if b != mir.NoReg {
				mod ^= regs[b]
			}
			// Inline PAC-memo fast path: a cache hit stays in the closure.
			if v, ok := m.Unit.FastSign(regs[a], key, mod); ok {
				regs[dst] = v
			} else {
				regs[dst] = m.Unit.Sign(regs[a], key, mod)
			}
			return next
		}
	case mir.PacAuth:
		a, b, dst, key, smod := in.A, in.B, in.Dst, pa.KeyID(in.Key), in.Mod
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			mod := smod
			if b != mir.NoReg {
				mod ^= regs[b]
			}
			v, ok, hit := m.Unit.FastAuth(regs[a], key, mod)
			if !hit {
				v, ok = m.Unit.Auth(regs[a], key, mod)
			}
			if !ok {
				m.refundRest(rest)
				m.tErr = m.trap(TrapAuthFailure, f, in, "aut failed on %#x (mod %#x)", regs[a], mod)
				return nil
			}
			regs[dst] = v
			return next
		}
	case mir.PacStrip:
		a, dst := in.A, in.Dst
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			regs[dst] = m.Unit.Strip(regs[a])
			return next
		}

	case mir.PPAdd:
		entry := ppEntry{mod: in.Mod, inner: uint16(in.Imm)}
		ce := in.CE
		return func(m *Machine, fr *frame) tOp {
			if old, ok := m.ppMods[ce]; ok && old != entry {
				m.refundRest(rest)
				m.tErr = m.trap(TrapPPViolation, f, in, "CE %d re-registered with a different FE", ce)
				return nil
			}
			m.ppMods[ce] = entry
			return next
		}
	case mir.PPAddTBI:
		a, dst, tag := in.A, in.Dst, byte(in.CE)
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			regs[dst] = m.Unit.SetTag(regs[a], tag)
			return next
		}
	case mir.PPSign:
		b, dst, key := in.B, in.Dst, pa.KeyID(in.Key)
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			mod, _, err := m.ppResolve(in, regs, f)
			if err != nil {
				m.refundRest(rest)
				m.tErr = err
				return nil
			}
			if v, ok := m.Unit.FastSign(regs[b], key, mod); ok {
				regs[dst] = v
			} else {
				regs[dst] = m.Unit.Sign(regs[b], key, mod)
			}
			return next
		}
	case mir.PPAuth:
		b, dst, key := in.B, in.Dst, pa.KeyID(in.Key)
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			mod, inner, err := m.ppResolve(in, regs, f)
			if err != nil {
				m.refundRest(rest)
				m.tErr = err
				return nil
			}
			v, ok, hit := m.Unit.FastAuth(regs[b], key, mod)
			if !hit {
				v, ok = m.Unit.Auth(regs[b], key, mod)
			}
			if !ok {
				m.refundRest(rest)
				m.tErr = m.trap(TrapAuthFailure, f, in, "pp_auth failed on %#x", regs[b])
				return nil
			}
			if inner != 0 {
				v = m.Unit.SetTag(v, byte(inner))
			}
			regs[dst] = v
			return next
		}

	default:
		// Unknown opcode: decline compilation; the interpreter keeps the
		// function and reports the error through its own default arm.
		return nil
	}
}

// compileFused builds a superinstruction closure for the fused group of
// length g starting at position i of seg. The group's instructions keep
// their individual identities for everything observable — the batch gate
// already charged each of them, and a trap names (and refunds from) the
// exact member that faulted — only the host-side dispatch between them
// disappears.
func (c *tcomp) compileFused(seg *tSeg, dec []decInstr, i, g int, next tOp) tOp {
	f := c.f
	kind := dec[i].fuse
	aut := &seg.instrs[i]
	switch kind {
	case fuseSignStore:
		sIn := &seg.instrs[i+1]
		sd := &dec[i+1]
		a, b, dst, key, smod := aut.A, aut.B, aut.Dst, pa.KeyID(aut.Key), aut.Mod
		sa, sb, ssize, sext, ssite := sIn.A, sIn.B, int(sd.size), sd.ext, sd.site
		restStore := seg.instrs[i+2:]
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			mod := smod
			if b != mir.NoReg {
				mod ^= regs[b]
			}
			if v, ok := m.Unit.FastSign(regs[a], key, mod); ok {
				regs[dst] = v
			} else {
				regs[dst] = m.Unit.Sign(regs[a], key, mod)
			}
			m.Stats.FusedSignStores++
			m.Stats.FusedInstrs += 2
			addr, err := m.canonical(regs[sa], f, sIn)
			if err != nil {
				m.refundRest(restStore)
				m.tErr = err
				return nil
			}
			v := regs[sb]
			if sext == extF32 {
				v = uint64(math.Float32bits(float32(math.Float64frombits(v))))
			}
			if err := m.monoStore(ssite, addr, v, ssize); err != nil {
				m.refundRest(restStore)
				m.tErr = m.trap(TrapOutOfBounds, f, sIn, "%v", err)
				return nil
			}
			return next
		}

	case fuseAuthLoad, fuseAuthStore:
		accIn := &seg.instrs[i+1]
		ad := &dec[i+1]
		a, b, dst, key, smod := aut.A, aut.B, aut.Dst, pa.KeyID(aut.Key), aut.Mod
		restAut := seg.instrs[i+1:]
		restAcc := seg.instrs[i+2:]
		isLoad := kind == fuseAuthLoad
		aa, ab, adst, asize, aext, asite := accIn.A, accIn.B, accIn.Dst, int(ad.size), ad.ext, ad.site
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			mod := smod
			if b != mir.NoReg {
				mod ^= regs[b]
			}
			v, ok, hit := m.Unit.FastAuth(regs[a], key, mod)
			if !hit {
				v, ok = m.Unit.Auth(regs[a], key, mod)
			}
			if !ok {
				m.refundRest(restAut)
				m.tErr = m.trap(TrapAuthFailure, f, aut, "aut failed on %#x (mod %#x)", regs[a], mod)
				return nil
			}
			regs[dst] = v
			if isLoad {
				m.Stats.FusedAuthLoads++
			} else {
				m.Stats.FusedAuthStores++
			}
			m.Stats.FusedInstrs += 2
			addr, err := m.canonical(regs[aa], f, accIn)
			if err != nil {
				m.refundRest(restAcc)
				m.tErr = err
				return nil
			}
			if isLoad {
				lv, err := m.monoLoad(asite, addr, asize)
				if err != nil {
					m.refundRest(restAcc)
					m.tErr = m.trap(TrapOutOfBounds, f, accIn, "%v", err)
					return nil
				}
				regs[adst] = extendDec(lv, aext)
			} else {
				sv := regs[ab]
				if aext == extF32 {
					sv = uint64(math.Float32bits(float32(math.Float64frombits(sv))))
				}
				if err := m.monoStore(asite, addr, sv, asize); err != nil {
					m.refundRest(restAcc)
					m.tErr = m.trap(TrapOutOfBounds, f, accIn, "%v", err)
					return nil
				}
			}
			return next
		}

	case fuseAuthAddrLoad, fuseAuthAddrStore:
		addrIn := &seg.instrs[i+1]
		accIn := &seg.instrs[i+2]
		ad := &dec[i+2]
		a, b, dst, key, smod := aut.A, aut.B, aut.Dst, pa.KeyID(aut.Key), aut.Mod
		restAut := seg.instrs[i+1:]
		restAcc := seg.instrs[i+3:]
		isField := addrIn.Op == mir.FieldAddr
		xa, xb, xdst, xoff := addrIn.A, addrIn.B, addrIn.Dst, addrIn.Imm
		isLoad := kind == fuseAuthAddrLoad
		aa, ab, adst, asize, aext, asite := accIn.A, accIn.B, accIn.Dst, int(ad.size), ad.ext, ad.site
		return func(m *Machine, fr *frame) tOp {
			regs := fr.regs
			mod := smod
			if b != mir.NoReg {
				mod ^= regs[b]
			}
			v, ok, hit := m.Unit.FastAuth(regs[a], key, mod)
			if !hit {
				v, ok = m.Unit.Auth(regs[a], key, mod)
			}
			if !ok {
				m.refundRest(restAut)
				m.tErr = m.trap(TrapAuthFailure, f, aut, "aut failed on %#x (mod %#x)", regs[a], mod)
				return nil
			}
			regs[dst] = v
			if isField {
				regs[xdst] = regs[xa] + uint64(xoff)
			} else {
				regs[xdst] = regs[xa] + uint64(int64(regs[xb])*xoff)
			}
			if isLoad {
				m.Stats.FusedAuthAddrLoads++
			} else {
				m.Stats.FusedAuthAddrStores++
			}
			m.Stats.FusedInstrs += 3
			addr, err := m.canonical(regs[aa], f, accIn)
			if err != nil {
				m.refundRest(restAcc)
				m.tErr = err
				return nil
			}
			if isLoad {
				lv, err := m.monoLoad(asite, addr, asize)
				if err != nil {
					m.refundRest(restAcc)
					m.tErr = m.trap(TrapOutOfBounds, f, accIn, "%v", err)
					return nil
				}
				regs[adst] = extendDec(lv, aext)
			} else {
				sv := regs[ab]
				if aext == extF32 {
					sv = uint64(math.Float32bits(float32(math.Float64frombits(sv))))
				}
				if err := m.monoStore(asite, addr, sv, asize); err != nil {
					m.refundRest(restAcc)
					m.tErr = m.trap(TrapOutOfBounds, f, accIn, "%v", err)
					return nil
				}
			}
			return next
		}
	}
	return nil
}

package vm

import (
	"sync/atomic"

	"rsti/internal/mir"
)

// predecodeCount counts Image constructions process-wide. Tests assert
// image sharing with it: N concurrent runs of one build must add exactly
// one predecode, mirroring the compile-path coalescing counters.
var predecodeCount atomic.Int64

// PredecodeCount returns the number of program images built so far.
func PredecodeCount() int64 { return predecodeCount.Load() }

// funcDec is one function's view into the image's flat predecode arena:
// ops is the function's contiguous decInstr run, off its per-block offset
// index (block i occupies ops[off[i]:off[i+1]], with len(Blocks)+1
// entries). Both alias image-wide arenas — a funcDec is two slice
// headers, nothing is copied per function or per block.
type funcDec struct {
	ops []decInstr
	off []int32
}

// block returns block i's decoded instructions.
func (fd funcDec) block(i int) []decInstr { return fd.ops[fd.off[i]:fd.off[i+1]] }

// Image is the immutable execution image of one (post-optimization)
// program: predecoded instruction metadata — including superinstruction
// fusion marks — function entry tokens, and the static data layout.
// Everything in it is read-only after construction, so one Image is
// safely shared by every Machine executing the same program: engine
// workers, Program.Run callers, and eval sweeps stop re-predecoding per
// run. Pass it via Options.Image; a Machine built without one predecodes
// privately.
//
// The threaded tier's shared profile and compiled bodies also hang off
// the Image (behind internal atomics), so promotion happens once per
// program no matter how many machines execute it concurrently.
type Image struct {
	prog *mir.Program

	// arena holds every non-extern function's predecoded instruction
	// metadata in one contiguous allocation, blockOff the matching flat
	// per-block offset index: one allocation each per image instead of
	// one slice per block, so both execution tiers walk a single
	// cache-friendly run of 16-byte records. dec maps a function to its
	// view of the two arenas.
	arena    []decInstr
	blockOff []int32
	dec      map[*mir.Func]funcDec

	funcTok    map[string]uint64
	tokFunc    map[uint64]*mir.Func
	globalAddr []uint64
	stringAddr []uint64
	gsize      int
	ssize      int

	// maxRegs is the widest register file any function of the program
	// needs — the frame pool's sizing watermark: register slices are
	// allocated at this capacity once, so re-preparing a pooled frame for
	// any callee never reallocates.
	maxRegs int

	// sites is the number of monomorphic access-cache slots predecode
	// assigned (one per fused aut+…+access group); each Machine carries a
	// sites-long table of last-resolved memory segments.
	sites uint32

	fused FuseCounts // static superinstruction groups marked by predecode

	// tier holds the lazily-created shared profile/promotion table for
	// the direct-threaded execution tier (threaded.go). It is created by
	// the first tier-enabled machine and pinned to that machine's cost
	// model; the Image itself stays immutable.
	tier atomic.Pointer[tierState]
}

// NewImage predecodes prog into a shareable execution image.
func NewImage(prog *mir.Program) *Image {
	predecodeCount.Add(1)
	img := &Image{
		prog:    prog,
		funcTok: make(map[string]uint64, len(prog.Funcs)),
		tokFunc: make(map[uint64]*mir.Func, len(prog.Funcs)),
		dec:     make(map[*mir.Func]funcDec, len(prog.Funcs)),
	}

	for _, g := range prog.Globals {
		a := g.Type.Align()
		img.gsize = (img.gsize + a - 1) / a * a
		img.globalAddr = append(img.globalAddr, GlobalsBase+uint64(img.gsize))
		img.gsize += g.Type.Size()
	}
	for _, s := range prog.Strings {
		img.stringAddr = append(img.stringAddr, StringsBase+uint64(img.ssize))
		img.ssize += len(s) + 1
	}

	// Pass 1: size the flat arenas and the register watermark.
	nInstr, nOff := 0, 0
	for _, f := range prog.Funcs {
		if f.NumRegs > img.maxRegs {
			img.maxRegs = f.NumRegs
		}
		if f.Extern {
			continue
		}
		for _, blk := range f.Blocks {
			nInstr += len(blk.Instrs)
		}
		nOff += len(f.Blocks) + 1
	}
	img.arena = make([]decInstr, nInstr)
	img.blockOff = make([]int32, nOff)

	// Pass 2: predecode each function into its contiguous slice.
	iBase, oBase := 0, 0
	for i, f := range prog.Funcs {
		tok := uint64(FuncBase) + uint64(i)*FuncStride
		img.funcTok[f.Name] = tok
		img.tokFunc[tok] = f
		if f.Extern {
			continue
		}
		n := 0
		for _, blk := range f.Blocks {
			n += len(blk.Instrs)
		}
		fd := funcDec{
			ops: img.arena[iBase : iBase+n : iBase+n],
			off: img.blockOff[oBase : oBase+len(f.Blocks)+1 : oBase+len(f.Blocks)+1],
		}
		fc := predecodeInto(f, fd.ops, fd.off, &img.sites)
		img.dec[f] = fd
		img.fused.add(fc)
		iBase += n
		oBase += len(f.Blocks) + 1
	}
	return img
}

// Prog returns the program the image was built from.
func (img *Image) Prog() *mir.Program { return img.prog }

// MaxRegs returns the register-file watermark frame pools size from.
func (img *Image) MaxRegs() int { return img.maxRegs }

// FusedPairs reports the static number of adjacent aut+load and pac+store
// pairs predecode marked for fused dispatch (the original two-instruction
// superinstructions; see FusedGroups for the widened set).
func (img *Image) FusedPairs() (authLoads, signStores int) {
	return img.fused.AuthLoads, img.fused.SignStores
}

// FusedGroups reports all static superinstruction groups predecode marked,
// by kind.
func (img *Image) FusedGroups() FuseCounts { return img.fused }

// tierFor returns the image's shared tier state, creating it on first use
// and pinning it to the given cost model. Compiled segments bake their
// batched cycle charges in at compile time, so a machine whose cost model
// differs from the pinned one cannot share the bodies — it gets nil and
// simply stays on the interpreter (which reads its own cycle table).
func (img *Image) tierFor(cost CostModel) *tierState {
	if ts := img.tier.Load(); ts != nil {
		if ts.cost == cost {
			return ts
		}
		return nil
	}
	ts := newTierState(img.prog, cost)
	if img.tier.CompareAndSwap(nil, ts) {
		return ts
	}
	if cur := img.tier.Load(); cur != nil && cur.cost == cost {
		return cur
	}
	return nil
}

// TierStats is a host-side snapshot of the image's threaded-tier activity.
type TierStats struct {
	Promotions    int64 // threaded bodies compiled (exactly one per hot function)
	CompiledFuncs int64 // functions with an installed threaded body
	Closures      int64 // closures in all compiled bodies
	FusedClosures int64 // superinstruction closures among them
}

// TierStats reports the image's tier activity (zero when no tier-enabled
// machine ever ran this image).
func (img *Image) TierStats() TierStats {
	ts := img.tier.Load()
	if ts == nil {
		return TierStats{}
	}
	st := TierStats{
		Promotions:    ts.promotions.Load(),
		Closures:      ts.closures.Load(),
		FusedClosures: ts.fusedClosures.Load(),
	}
	for _, p := range ts.prof {
		if p.body.Load() != nil {
			st.CompiledFuncs++
		}
	}
	return st
}

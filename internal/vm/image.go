package vm

import (
	"sync/atomic"

	"rsti/internal/mir"
)

// predecodeCount counts Image constructions process-wide. Tests assert
// image sharing with it: N concurrent runs of one build must add exactly
// one predecode, mirroring the compile-path coalescing counters.
var predecodeCount atomic.Int64

// PredecodeCount returns the number of program images built so far.
func PredecodeCount() int64 { return predecodeCount.Load() }

// Image is the immutable execution image of one (post-optimization)
// program: predecoded instruction metadata — including superinstruction
// fusion marks — function entry tokens, and the static data layout.
// Everything in it is read-only after construction, so one Image is
// safely shared by every Machine executing the same program: engine
// workers, Program.Run callers, and eval sweeps stop re-predecoding per
// run. Pass it via Options.Image; a Machine built without one predecodes
// privately.
//
// The threaded tier's shared profile and compiled bodies also hang off
// the Image (behind internal atomics), so promotion happens once per
// program no matter how many machines execute it concurrently.
type Image struct {
	prog       *mir.Program
	dec        map[*mir.Func][][]decInstr
	funcTok    map[string]uint64
	tokFunc    map[uint64]*mir.Func
	globalAddr []uint64
	stringAddr []uint64
	gsize      int
	ssize      int

	fused FuseCounts // static superinstruction groups marked by predecode

	// tier holds the lazily-created shared profile/promotion table for
	// the direct-threaded execution tier (threaded.go). It is created by
	// the first tier-enabled machine and pinned to that machine's cost
	// model; the Image itself stays immutable.
	tier atomic.Pointer[tierState]
}

// NewImage predecodes prog into a shareable execution image.
func NewImage(prog *mir.Program) *Image {
	predecodeCount.Add(1)
	img := &Image{
		prog:    prog,
		funcTok: make(map[string]uint64, len(prog.Funcs)),
		tokFunc: make(map[uint64]*mir.Func, len(prog.Funcs)),
		dec:     make(map[*mir.Func][][]decInstr, len(prog.Funcs)),
	}

	for _, g := range prog.Globals {
		a := g.Type.Align()
		img.gsize = (img.gsize + a - 1) / a * a
		img.globalAddr = append(img.globalAddr, GlobalsBase+uint64(img.gsize))
		img.gsize += g.Type.Size()
	}
	for _, s := range prog.Strings {
		img.stringAddr = append(img.stringAddr, StringsBase+uint64(img.ssize))
		img.ssize += len(s) + 1
	}

	for i, f := range prog.Funcs {
		tok := uint64(FuncBase) + uint64(i)*FuncStride
		img.funcTok[f.Name] = tok
		img.tokFunc[tok] = f
		if !f.Extern {
			d, fc := predecode(f)
			img.dec[f] = d
			img.fused.add(fc)
		}
	}
	return img
}

// Prog returns the program the image was built from.
func (img *Image) Prog() *mir.Program { return img.prog }

// FusedPairs reports the static number of adjacent aut+load and pac+store
// pairs predecode marked for fused dispatch (the original two-instruction
// superinstructions; see FusedGroups for the widened set).
func (img *Image) FusedPairs() (authLoads, signStores int) {
	return img.fused.AuthLoads, img.fused.SignStores
}

// FusedGroups reports all static superinstruction groups predecode marked,
// by kind.
func (img *Image) FusedGroups() FuseCounts { return img.fused }

// tierFor returns the image's shared tier state, creating it on first use
// and pinning it to the given cost model. Compiled segments bake their
// batched cycle charges in at compile time, so a machine whose cost model
// differs from the pinned one cannot share the bodies — it gets nil and
// simply stays on the interpreter (which reads its own cycle table).
func (img *Image) tierFor(cost CostModel) *tierState {
	if ts := img.tier.Load(); ts != nil {
		if ts.cost == cost {
			return ts
		}
		return nil
	}
	ts := newTierState(img.prog, cost)
	if img.tier.CompareAndSwap(nil, ts) {
		return ts
	}
	if cur := img.tier.Load(); cur != nil && cur.cost == cost {
		return cur
	}
	return nil
}

// TierStats is a host-side snapshot of the image's threaded-tier activity.
type TierStats struct {
	Promotions    int64 // threaded bodies compiled (exactly one per hot function)
	CompiledFuncs int64 // functions with an installed threaded body
	Closures      int64 // closures in all compiled bodies
	FusedClosures int64 // superinstruction closures among them
}

// TierStats reports the image's tier activity (zero when no tier-enabled
// machine ever ran this image).
func (img *Image) TierStats() TierStats {
	ts := img.tier.Load()
	if ts == nil {
		return TierStats{}
	}
	st := TierStats{
		Promotions:    ts.promotions.Load(),
		Closures:      ts.closures.Load(),
		FusedClosures: ts.fusedClosures.Load(),
	}
	for _, p := range ts.prof {
		if p.body.Load() != nil {
			st.CompiledFuncs++
		}
	}
	return st
}

package vm

import (
	"sync/atomic"

	"rsti/internal/mir"
)

// predecodeCount counts Image constructions process-wide. Tests assert
// image sharing with it: N concurrent runs of one build must add exactly
// one predecode, mirroring the compile-path coalescing counters.
var predecodeCount atomic.Int64

// PredecodeCount returns the number of program images built so far.
func PredecodeCount() int64 { return predecodeCount.Load() }

// Image is the immutable execution image of one (post-optimization)
// program: predecoded instruction metadata — including superinstruction
// fusion marks — function entry tokens, and the static data layout.
// Everything in it is read-only after construction, so one Image is
// safely shared by every Machine executing the same program: engine
// workers, Program.Run callers, and eval sweeps stop re-predecoding per
// run. Pass it via Options.Image; a Machine built without one predecodes
// privately.
type Image struct {
	prog       *mir.Program
	dec        map[*mir.Func][][]decInstr
	funcTok    map[string]uint64
	tokFunc    map[uint64]*mir.Func
	globalAddr []uint64
	stringAddr []uint64
	gsize      int
	ssize      int

	fusedAuthLoads  int // static aut+load pairs marked for fused dispatch
	fusedSignStores int // static pac+store pairs marked for fused dispatch
}

// NewImage predecodes prog into a shareable execution image.
func NewImage(prog *mir.Program) *Image {
	predecodeCount.Add(1)
	img := &Image{
		prog:    prog,
		funcTok: make(map[string]uint64, len(prog.Funcs)),
		tokFunc: make(map[uint64]*mir.Func, len(prog.Funcs)),
		dec:     make(map[*mir.Func][][]decInstr, len(prog.Funcs)),
	}

	for _, g := range prog.Globals {
		a := g.Type.Align()
		img.gsize = (img.gsize + a - 1) / a * a
		img.globalAddr = append(img.globalAddr, GlobalsBase+uint64(img.gsize))
		img.gsize += g.Type.Size()
	}
	for _, s := range prog.Strings {
		img.stringAddr = append(img.stringAddr, StringsBase+uint64(img.ssize))
		img.ssize += len(s) + 1
	}

	for i, f := range prog.Funcs {
		tok := uint64(FuncBase) + uint64(i)*FuncStride
		img.funcTok[f.Name] = tok
		img.tokFunc[tok] = f
		if !f.Extern {
			d, al, ss := predecode(f)
			img.dec[f] = d
			img.fusedAuthLoads += al
			img.fusedSignStores += ss
		}
	}
	return img
}

// Prog returns the program the image was built from.
func (img *Image) Prog() *mir.Program { return img.prog }

// FusedPairs reports the static number of aut+load and pac+store pairs
// predecode marked for fused dispatch.
func (img *Image) FusedPairs() (authLoads, signStores int) {
	return img.fusedAuthLoads, img.fusedSignStores
}

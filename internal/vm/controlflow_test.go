package vm

import (
	"testing"

	"rsti/internal/cminor"
)

func TestSwitchBasic(t *testing.T) {
	ret, _ := run(t, `
		int classify(int x) {
			switch (x) {
			case 0:
				return 100;
			case 1:
			case 2:
				return 200;
			case -3:
				return 300;
			default:
				return 400;
			}
		}
		int main(void) {
			return classify(0) / 100 + classify(1) + classify(2) + classify(-3) / 3 + classify(9);
		}
	`)
	// 1 + 200 + 200 + 100 + 400 = 901
	if ret != 901 {
		t.Errorf("ret = %d, want 901", ret)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int acc = 0;
			switch (2) {
			case 1:
				acc += 1;
			case 2:
				acc += 10;
			case 3:
				acc += 100;
				break;
			case 4:
				acc += 1000;
			}
			return acc;
		}
	`)
	if ret != 110 {
		t.Errorf("fallthrough acc = %d, want 110", ret)
	}
}

func TestSwitchBreakInsideLoop(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int total = 0;
			for (int i = 0; i < 6; i++) {
				switch (i % 3) {
				case 0:
					total += 1;
					break;
				case 1:
					total += 10;
					break;
				default:
					total += 100;
				}
			}
			return total;
		}
	`)
	if ret != 222 {
		t.Errorf("total = %d, want 222", ret)
	}
}

func TestSwitchCharCases(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			char c = 'b';
			switch (c) {
			case 'a': return 1;
			case 'b': return 2;
			default: return 3;
			}
		}
	`)
	if ret != 2 {
		t.Errorf("ret = %d, want 2", ret)
	}
}

func TestSwitchDuplicateCaseRejected(t *testing.T) {
	_, err := compile(t, `
		int main(void) {
			switch (1) { case 1: return 1; case 1: return 2; }
			return 0;
		}
	`)
	if err == nil {
		t.Error("duplicate case accepted")
	}
}

func TestDoWhile(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int n = 0;
			do { n++; } while (n < 5);
			int m = 0;
			do { m = 77; } while (0); // body runs at least once
			return n * 100 + (m == 77);
		}
	`)
	if ret != 501 {
		t.Errorf("ret = %d, want 501", ret)
	}
}

func TestDoWhileBreakContinue(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int i = 0;
			int sum = 0;
			do {
				i++;
				if (i % 2 == 0) continue;
				if (i > 7) break;
				sum += i;
			} while (i < 100);
			return sum; // 1+3+5+7
		}
	`)
	if ret != 16 {
		t.Errorf("sum = %d, want 16", ret)
	}
}

func TestTernary(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int a = 5;
			int b = 9;
			int max = a > b ? a : b;
			int min = a < b ? a : b;
			char *label = max > 7 ? "big" : "small";
			return max * 100 + min * 10 + (int) strlen(label);
		}
	`)
	if ret != 953 {
		t.Errorf("ret = %d, want 953", ret)
	}
}

func TestTernaryShortCircuits(t *testing.T) {
	ret, _ := run(t, `
		int calls = 0;
		int bump(int v) { calls++; return v; }
		int main(void) {
			int x = 1 ? bump(3) : bump(4);
			return x * 10 + calls; // only one arm evaluated
		}
	`)
	if ret != 31 {
		t.Errorf("ret = %d, want 31", ret)
	}
}

func TestTernaryWithPointers(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int a = 3;
			int b = 4;
			int *p = a > b ? &a : &b;
			int *q = NULL;
			int *r = q != NULL ? q : &a;
			return *p * 10 + *r;
		}
	`)
	if ret != 43 {
		t.Errorf("ret = %d, want 43", ret)
	}
}

// compile is a helper exposing frontend errors to control-flow tests.
func compile(t *testing.T, src string) (interface{}, error) {
	t.Helper()
	return cminor.Frontend(src)
}

func TestEnums(t *testing.T) {
	ret, _ := run(t, `
		enum Color { RED, GREEN = 5, BLUE };
		enum { ANON_A = -2, ANON_B };
		int paint(int c) {
			switch (c) {
			case RED: return 1;
			case GREEN: return 2;
			case BLUE: return 3;
			default: return 0;
			}
		}
		int main(void) {
			enum Color c = BLUE;
			int neg = ANON_A + ANON_B; // -2 + -1
			return paint(RED) * 100 + paint(c) * 10 + paint(GREEN) + neg;
		}
	`)
	if ret != 129 { // 100 + 30 + 2 - 3
		t.Errorf("ret = %d, want 129", ret)
	}
}

func TestEnumDuplicateRejected(t *testing.T) {
	_, err := compile(t, `enum e { A, A }; int main(void) { return 0; }`)
	if err == nil {
		t.Error("duplicate enumerator accepted")
	}
}

package vm

import "rsti/internal/pa"

// WorkerState is the per-worker reusable hot-path state of a long-lived
// execution service: the call-frame pool and the keyed PA units with their
// warm PAC memoization caches. A Machine normally owns this state itself
// and discards it when the run ends; an engine worker that executes many
// runs back to back hands the same WorkerState to every Machine it builds,
// so steady-state serving allocates no frames and keeps the PAC cache warm
// across runs.
//
// A WorkerState is NOT safe for concurrent use: it must be owned by
// exactly one goroutine (the engine worker), and the Machines built from
// it must run sequentially. Results are bit-identical with or without
// reuse — the frame pool zeroes registers on reuse and the PAC cache can
// only skip recomputing, never change, a PAC (see pa.Unit).
type WorkerState struct {
	frames     []*frame
	argScratch []uint64
	units      map[unitKey]*pa.Unit
}

// unitKey identifies a PA unit by everything that determines its keys and
// layout; pa.Config has only comparable fields.
type unitKey struct {
	cfg  pa.Config
	seed uint64
}

// NewWorkerState returns an empty WorkerState.
func NewWorkerState() *WorkerState {
	return &WorkerState{units: make(map[unitKey]*pa.Unit)}
}

// unit returns the worker's PA unit for (cfg, seed), building it on first
// use. Key generation is deterministic, so reusing the unit (and its warm
// PAC cache) across runs changes no signed or authenticated value.
func (ws *WorkerState) unit(cfg pa.Config, seed uint64) *pa.Unit {
	k := unitKey{cfg: cfg, seed: seed}
	if u, ok := ws.units[k]; ok {
		return u
	}
	u := pa.NewUnit(cfg, pa.GenerateKeys(seed))
	ws.units[k] = u
	return u
}

package vm

import (
	"rsti/internal/mir"
	"rsti/internal/pa"
)

// WorkerState is the per-worker reusable hot-path state of a long-lived
// execution service: the call-frame pool, the keyed PA units with their
// warm PAC memoization caches, a resident machine slot, and a reusable
// output buffer. A Machine normally owns this state itself and discards
// it when the run ends; an engine worker that executes many runs back to
// back hands the same WorkerState to every Machine it builds, so
// steady-state serving allocates no frames and keeps the PAC cache warm
// across runs.
//
// A WorkerState is NOT safe for concurrent use: it must be owned by
// exactly one goroutine (the engine worker), and the Machines built from
// it must run sequentially. Results are bit-identical with or without
// reuse — the frame pool zeroes registers on reuse and the PAC cache can
// only skip recomputing, never change, a PAC (see pa.Unit).
type WorkerState struct {
	frames     []*frame
	argScratch []uint64
	units      map[unitKey]*pa.Unit

	// mach is the worker's resident machine: the last machine MachineFor
	// built, kept for Reset-based reuse when the next run wants the same
	// (image, config) shape. One slot, not a keyed cache — a machine pins
	// its full Memory (megabytes), and real serving traffic is either
	// monomorphic per worker or cheap to rebuild, exactly as cheap as the
	// per-run vm.New it replaces.
	mach    *Machine
	machKey machineKey

	// outBuf is the reusable output capture buffer, loaned out via
	// OutputBuffer and returned (possibly grown) via StowOutputBuffer.
	outBuf []byte
}

// machineKey is everything about an Options that shapes a constructed
// Machine and cannot be re-pointed on an existing one. MaxSteps, MaxDepth
// and Output are deliberately absent: they are plain per-run settings
// MachineFor re-applies on reuse.
type machineKey struct {
	img   *Image
	cfg   pa.Config
	seed  uint64
	heap  int
	stack int
	cost  CostModel
	tier  bool
	thr   int64
}

// unitKey identifies a PA unit by everything that determines its keys and
// layout; pa.Config has only comparable fields.
type unitKey struct {
	cfg  pa.Config
	seed uint64
}

// NewWorkerState returns an empty WorkerState.
func NewWorkerState() *WorkerState {
	return &WorkerState{units: make(map[unitKey]*pa.Unit)}
}

// unit returns the worker's PA unit for (cfg, seed), building it on first
// use. Key generation is deterministic, so reusing the unit (and its warm
// PAC cache) across runs changes no signed or authenticated value.
func (ws *WorkerState) unit(cfg pa.Config, seed uint64) *pa.Unit {
	k := unitKey{cfg: cfg, seed: seed}
	if u, ok := ws.units[k]; ok {
		return u
	}
	u := pa.NewUnit(cfg, pa.GenerateKeys(seed))
	ws.units[k] = u
	return u
}

// MachineFor returns a machine prepared to run prog under opts, reusing
// the worker's resident machine when the run shape matches: same shared
// image, PA config, key seed, memory sizes, cost model and tier setting.
// A match costs one Reset (no allocation — see Machine.Reset for the
// isolation argument); a mismatch builds a fresh machine exactly as
// vm.New would and installs it as the new resident. Requires opts.Image
// to be the shared image for prog — without one there is nothing to key
// reuse on and MachineFor just builds privately.
func (ws *WorkerState) MachineFor(prog *mir.Program, opts Options) *Machine {
	img := opts.Image
	if img == nil || img.prog != prog {
		opts.Worker = ws
		return New(prog, opts)
	}
	thr := opts.TierThreshold
	if opts.Tier && thr <= 0 {
		thr = DefaultTierThreshold
	}
	if !opts.Tier {
		thr = 0
	}
	k := machineKey{
		img:   img,
		cfg:   opts.PAConfig,
		seed:  opts.KeySeed,
		heap:  opts.HeapSize,
		stack: opts.StackSize,
		cost:  opts.Cost,
		tier:  opts.Tier,
		thr:   thr,
	}
	if m := ws.mach; m != nil && ws.machKey == k {
		m.maxSteps = opts.MaxSteps
		m.maxDepth = opts.MaxDepth
		m.SetOutput(opts.Output)
		m.Reset()
		return m
	}
	opts.Worker = ws
	m := New(prog, opts)
	ws.mach, ws.machKey = m, k
	return m
}

// OutputBuffer loans out the worker's reusable output buffer (length 0,
// warm capacity). Pair with StowOutputBuffer when the run's output has
// been consumed.
func (ws *WorkerState) OutputBuffer() []byte { return ws.outBuf[:0] }

// StowOutputBuffer returns a buffer obtained from OutputBuffer (possibly
// reallocated by appends) to the worker for the next run.
func (ws *WorkerState) StowOutputBuffer(b []byte) { ws.outBuf = b }

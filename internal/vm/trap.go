package vm

import (
	"errors"
	"fmt"

	"rsti/internal/cminor"
)

// TrapKind classifies why execution stopped abnormally.
type TrapKind uint8

const (
	// TrapAuthFailure: a pac authentication failed — RSTI detected a
	// corrupted or substituted pointer. This is the defense firing.
	TrapAuthFailure TrapKind = iota
	// TrapNonCanonical: a pointer with PAC/garbage top bits was
	// dereferenced or called — the hardware fault a flipped-PAC pointer
	// produces on use.
	TrapNonCanonical
	// TrapOutOfBounds: access to unmapped memory.
	TrapOutOfBounds
	// TrapBadCall: an indirect call through a value that is not a
	// function entry token.
	TrapBadCall
	// TrapDivideByZero: integer division by zero.
	TrapDivideByZero
	// TrapMaxSteps: the execution budget was exhausted.
	TrapMaxSteps
	// TrapStackOverflow: call depth or stack segment exhausted.
	TrapStackOverflow
	// TrapPPViolation: the pointer-to-pointer runtime library rejected a
	// CE tag or modifier lookup.
	TrapPPViolation
	// TrapCancelled: the run's context was cancelled or its deadline
	// expired; the interpreter stopped at the next cancellation
	// checkpoint. The trap's Cause carries the context error, so
	// errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) both work.
	TrapCancelled
)

var trapNames = map[TrapKind]string{
	TrapAuthFailure:   "pointer authentication failure",
	TrapNonCanonical:  "non-canonical pointer dereference",
	TrapOutOfBounds:   "out-of-bounds access",
	TrapBadCall:       "indirect call to a non-function",
	TrapDivideByZero:  "integer division by zero",
	TrapMaxSteps:      "execution budget exhausted",
	TrapStackOverflow: "stack overflow",
	TrapPPViolation:   "pointer-to-pointer metadata violation",
	TrapCancelled:     "execution cancelled",
}

func (k TrapKind) String() string {
	if s, ok := trapNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TrapKind(%d)", uint8(k))
}

// Trap is an abnormal termination. It satisfies error; callers distinguish
// RSTI detections (TrapAuthFailure, TrapNonCanonical, TrapPPViolation —
// see SecurityTrap) from plain crashes.
type Trap struct {
	Kind TrapKind
	Fn   string
	Pos  cminor.Pos
	Msg  string
	// Cause is the underlying error for traps that wrap one (today only
	// TrapCancelled, which carries the context's error). It is exposed
	// through Unwrap so errors.Is can see through the trap.
	Cause error
}

func (t *Trap) Error() string {
	return fmt.Sprintf("trap: %s in %s at %s: %s", t.Kind, t.Fn, t.Pos, t.Msg)
}

// Unwrap exposes the trap's cause (nil for most kinds).
func (t *Trap) Unwrap() error { return t.Cause }

// SecurityTrap reports whether the trap is a defense detection rather
// than an ordinary program fault: an authentication failure, a poisoned
// (non-canonical) pointer being used, or a pointer-to-pointer metadata
// violation.
func (t *Trap) SecurityTrap() bool {
	switch t.Kind {
	case TrapAuthFailure, TrapNonCanonical, TrapPPViolation:
		return true
	}
	return false
}

// AsTrap extracts a *Trap from an error chain, if one is present.
func AsTrap(err error) (*Trap, bool) {
	var t *Trap
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

package vm

import (
	"strings"
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
)

// run compiles src (uninstrumented) and executes it, returning main's exit
// value and everything printf produced.
func run(t *testing.T, src string) (int64, string) {
	t.Helper()
	f, err := cminor.Frontend(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	var out strings.Builder
	opts := DefaultOptions()
	opts.Output = &out
	m := New(prog, opts)
	ret, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\nprogram:\n%s", err, prog)
	}
	return ret, out.String()
}

func TestReturnConstant(t *testing.T) {
	ret, _ := run(t, "int main(void) { return 42; }")
	if ret != 42 {
		t.Errorf("ret = %d", ret)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"17 / 5", 3},
		{"17 % 5", 2},
		{"-7 + 3", -4},
		{"10 - 2 - 3", 5},
		{"1 << 4", 16},
		{"255 >> 4", 15},
		{"12 & 10", 8},
		{"12 | 10", 14},
		{"12 ^ 10", 6},
		{"~0 & 255", 255},
		{"5 > 3", 1},
		{"5 < 3", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"!0", 1},
		{"!7", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
	}
	for _, c := range cases {
		ret, _ := run(t, "int main(void) { return "+c.expr+"; }")
		if ret != c.want {
			t.Errorf("%s = %d, want %d", c.expr, ret, c.want)
		}
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	ret, _ := run(t, `
		int calls = 0;
		int bump(void) { calls = calls + 1; return 1; }
		int main(void) {
			int a = 0 && bump();
			int b = 1 || bump();
			return calls * 10 + a + b;
		}
	`)
	if ret != 1 { // bump never called; a=0, b=1
		t.Errorf("ret = %d, want 1", ret)
	}
}

func TestLocalsAndAssignment(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int x = 3;
			int y;
			y = x + 4;
			x += 2;
			y -= 1;
			return x * 100 + y;
		}
	`)
	if ret != 506 {
		t.Errorf("ret = %d, want 506", ret)
	}
}

func TestWhileLoop(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int i = 0;
			int sum = 0;
			while (i < 10) { sum += i; i++; }
			return sum;
		}
	`)
	if ret != 45 {
		t.Errorf("sum = %d", ret)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int sum = 0;
			for (int i = 0; i < 100; i++) {
				if (i % 2 == 0) continue;
				if (i > 10) break;
				sum += i;
			}
			return sum;
		}
	`)
	if ret != 25 { // 1+3+5+7+9
		t.Errorf("sum = %d, want 25", ret)
	}
}

func TestFunctionCalls(t *testing.T) {
	ret, _ := run(t, `
		int fib(int n) {
			if (n < 2) return n;
			return fib(n - 1) + fib(n - 2);
		}
		int main(void) { return fib(12); }
	`)
	if ret != 144 {
		t.Errorf("fib(12) = %d", ret)
	}
}

func TestPointersAndAddressOf(t *testing.T) {
	ret, _ := run(t, `
		void set(int *p, int v) { *p = v; }
		int main(void) {
			int x = 1;
			set(&x, 99);
			int *q = &x;
			*q += 1;
			return x;
		}
	`)
	if ret != 100 {
		t.Errorf("x = %d", ret)
	}
}

func TestMallocAndStructs(t *testing.T) {
	ret, _ := run(t, `
		struct node { int key; struct node *next; };
		int main(void) {
			struct node *head = NULL;
			for (int i = 1; i <= 5; i++) {
				struct node *n = (struct node*) malloc(sizeof(struct node));
				n->key = i;
				n->next = head;
				head = n;
			}
			int sum = 0;
			struct node *cur = head;
			while (cur != NULL) { sum += cur->key; cur = cur->next; }
			return sum;
		}
	`)
	if ret != 15 {
		t.Errorf("list sum = %d", ret)
	}
}

func TestFunctionPointers(t *testing.T) {
	ret, _ := run(t, `
		int twice(int x) { return 2 * x; }
		int thrice(int x) { return 3 * x; }
		int main(void) {
			int (*op)(int) = twice;
			int a = op(10);
			op = thrice;
			int b = op(10);
			return a + b;
		}
	`)
	if ret != 50 {
		t.Errorf("ret = %d", ret)
	}
}

func TestFunctionPointerInStruct(t *testing.T) {
	// The paper's Figure 6 example shape.
	ret, out := run(t, `
		int hello_func(void) { printf("Hello!"); return 7; }
		struct node { int key; int (*fp)(void); struct node *next; };
		int main(void) {
			struct node* ptr = (struct node*) malloc(sizeof(struct node));
			ptr->fp = hello_func;
			return ptr->fp();
		}
	`)
	if ret != 7 || out != "Hello!" {
		t.Errorf("ret = %d, out = %q", ret, out)
	}
}

func TestArrays(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int a[8];
			for (int i = 0; i < 8; i++) a[i] = i * i;
			int sum = 0;
			for (int i = 0; i < 8; i++) sum += a[i];
			return sum;
		}
	`)
	if ret != 140 {
		t.Errorf("sum = %d, want 140", ret)
	}
}

func TestPointerArithmetic(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			int a[4];
			a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
			int *p = (int*)a;
			p = p + 2;
			int v = *p;
			p--;
			long span = (p + 3) - p;
			return v + *p + (int)span;
		}
	`)
	if ret != 53 { // 30 + 20 + 3
		t.Errorf("ret = %d, want 53", ret)
	}
}

func TestGlobalsAndInit(t *testing.T) {
	ret, _ := run(t, `
		int counter = 5;
		char *name = "rsti";
		int main(void) {
			counter += 2;
			return counter + (int)strlen(name);
		}
	`)
	if ret != 11 {
		t.Errorf("ret = %d, want 11", ret)
	}
}

func TestPrintfFormats(t *testing.T) {
	_, out := run(t, `
		int main(void) {
			printf("d=%d x=%x c=%c s=%s pct=%%\n", -5, 255, 65, "ok");
			return 0;
		}
	`)
	want := "d=-5 x=ff c=A s=ok pct=%\n"
	if out != want {
		t.Errorf("printf output = %q, want %q", out, want)
	}
}

func TestStringBuiltins(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			char buf[32];
			strcpy((char*)buf, "hello world");
			char *found = strstr((char*)buf, "world");
			if (found == NULL) return 1;
			if (strcmp(found, "world") != 0) return 2;
			return (int)strlen((char*)buf);
		}
	`)
	if ret != 11 {
		t.Errorf("ret = %d, want 11", ret)
	}
}

func TestMemsetMemcpy(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			char a[16];
			char b[16];
			memset((void*)a, 7, 16);
			memcpy((void*)b, (void*)a, 16);
			int sum = 0;
			for (int i = 0; i < 16; i++) sum += b[i];
			return sum;
		}
	`)
	if ret != 112 {
		t.Errorf("ret = %d, want 112", ret)
	}
}

func TestExit(t *testing.T) {
	ret, _ := run(t, `
		void die(void) { exit(33); }
		int main(void) { die(); return 1; }
	`)
	if ret != 33 {
		t.Errorf("exit code = %d, want 33", ret)
	}
}

func TestCharSignExtension(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			char c = 200;
			int i = c;
			return i;
		}
	`)
	if ret != -56 {
		t.Errorf("char 200 sign-extended to %d, want -56", ret)
	}
}

func TestDoublePointer(t *testing.T) {
	ret, _ := run(t, `
		void reset(int **pp) { *pp = NULL; }
		int main(void) {
			int x = 4;
			int *p = &x;
			int **pp = &p;
			**pp = 9;
			reset(pp);
			if (p == NULL) return x;
			return 0;
		}
	`)
	if ret != 9 {
		t.Errorf("ret = %d, want 9", ret)
	}
}

func TestFloatArithmetic(t *testing.T) {
	ret, _ := run(t, `
		int main(void) {
			double a = 3;
			double b = 4;
			double c = a * a + b * b;
			if (c > 24.0) { if (c < 26.0) return 25; }
			return 0;
		}
	`)
	if ret != 25 {
		t.Errorf("ret = %d, want 25", ret)
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	f, err := cminor.Frontend("int main(void) { int z = 0; return 5 / z; }")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	_, err = m.Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapDivideByZero {
		t.Errorf("err = %v, want divide-by-zero trap", err)
	}
}

func TestWildPointerTraps(t *testing.T) {
	f, err := cminor.Frontend(`
		int main(void) {
			long bogus = 0x123456789;
			int *p = (int*)bogus;
			return *p;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	_, err = m.Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapOutOfBounds {
		t.Errorf("err = %v, want out-of-bounds trap", err)
	}
}

func TestInfiniteLoopHitsBudget(t *testing.T) {
	f, err := cminor.Frontend("int main(void) { while (1) { } return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxSteps = 10000
	m := New(prog, opts)
	_, err = m.Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapMaxSteps {
		t.Errorf("err = %v, want max-steps trap", err)
	}
}

func TestDeepRecursionTraps(t *testing.T) {
	f, err := cminor.Frontend(`
		int down(int n) { return down(n + 1); }
		int main(void) { return down(0); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	_, err = m.Run()
	tr, ok := AsTrap(err)
	if !ok || tr.Kind != TrapStackOverflow {
		t.Errorf("err = %v, want stack-overflow trap", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	f, err := cminor.Frontend(`
		int main(void) {
			int sum = 0;
			for (int i = 0; i < 100; i++) sum += i;
			return sum;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Instrs == 0 || m.Stats.Cycles == 0 {
		t.Error("no stats accumulated")
	}
	if m.Stats.Loads == 0 || m.Stats.Stores == 0 {
		t.Error("loads/stores not counted")
	}
	if m.Stats.PACOps() != 0 {
		t.Error("uninstrumented program executed PA instructions")
	}
	if m.Stats.Cycles <= m.Stats.Instrs {
		t.Error("cycle model appears to charge below 1 cycle per instruction")
	}
}

func TestHookRuns(t *testing.T) {
	f, err := cminor.Frontend(`
		int secret = 7;
		int main(void) {
			__hook(1);
			return secret;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	m.RegisterHook(1, func(m *Machine) error {
		addr, ok := m.GlobalAddr("secret")
		if !ok {
			t.Fatal("global secret not found")
		}
		return m.Mem.Poke(addr, 1234, 4)
	})
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 1234 {
		t.Errorf("hook write not visible: ret = %d", ret)
	}
}

func TestVarAddrFindsStackSlot(t *testing.T) {
	f, err := cminor.Frontend(`
		int main(void) {
			int target = 5;
			__hook(9);
			return target;
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	m.RegisterHook(9, func(m *Machine) error {
		addr, ok := m.VarAddr("main", "target")
		if !ok {
			t.Fatal("VarAddr failed")
		}
		return m.Mem.Poke(addr, 77, 4)
	})
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 77 {
		t.Errorf("ret = %d, want 77", ret)
	}
}

func TestRegisterExtern(t *testing.T) {
	f, err := cminor.Frontend(`
		extern long external_add(long a, long b);
		int main(void) { return (int) external_add(30, 12); }
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	m.RegisterExtern("external_add", func(m *Machine, args []uint64) (uint64, error) {
		return args[0] + args[1], nil
	})
	ret, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 42 {
		t.Errorf("ret = %d", ret)
	}
}

func TestUnknownExternErrors(t *testing.T) {
	f, err := cminor.Frontend(`
		extern void mystery(void);
		int main(void) { mystery(); return 0; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, DefaultOptions())
	if _, err := m.Run(); err == nil {
		t.Error("unknown extern did not error")
	}
}

func TestGlobalFunctionPointerTable(t *testing.T) {
	ret, _ := run(t, `
		int inc(int x) { return x + 1; }
		int dec(int x) { return x - 1; }
		struct handlers { int (*up)(int); int (*down)(int); };
		struct handlers h;
		int main(void) {
			h.up = inc;
			h.down = dec;
			return h.up(10) * 100 + h.down(10);
		}
	`)
	if ret != 1109 {
		t.Errorf("ret = %d, want 1109", ret)
	}
}

package vm

import "rsti/internal/mir"

// CostModel assigns a cycle cost to each executed instruction. The model
// substitutes for wall-clock measurement on the paper's Apple M1: the
// paper itself reports that RSTI overhead is driven by the number of
// instrumented loads/stores (Pearson 0.75–0.8), so a count-based cycle
// model reproduces the overhead *shape* faithfully. Only ratios between
// costs matter; the absolute scale is arbitrary.
type CostModel struct {
	ALU    int64 // arithmetic, compares, casts, address computation
	Mem    int64 // load/store
	Branch int64 // jumps and branches
	Call   int64 // call + return overhead
	PAC    int64 // effective amortized cost of one pac/aut/xpac. The raw
	//              latency on M1-class cores is ~4-5 cycles (the paper's
	//              7-XOR equivalence), but an out-of-order pipeline hides
	//              most of it behind surrounding work; a serial
	//              interpreter must fold that overlap into the per-op
	//              charge, calibrated at 2.
	PPCall int64 // one pointer-to-pointer runtime library call (inlined, but
	//              it hashes + probes the metadata store)
}

// DefaultCostModel is used by every reported experiment.
func DefaultCostModel() CostModel {
	return CostModel{ALU: 1, Mem: 4, Branch: 1, Call: 6, PAC: 2, PPCall: 12}
}

// Stats accumulates execution counts and modelled cycles.
type Stats struct {
	Cycles    int64
	Instrs    int64
	Loads     int64
	Stores    int64
	Calls     int64
	PacSigns  int64
	PacAuths  int64
	PacStrips int64
	PPOps     int64
}

// PACOps returns the total number of PA instructions executed.
func (s *Stats) PACOps() int64 { return s.PacSigns + s.PacAuths + s.PacStrips }

func (m *Machine) charge(op mir.Op) {
	c := &m.cost
	s := &m.Stats
	s.Instrs++
	switch op {
	case mir.Load:
		s.Loads++
		s.Cycles += c.Mem
	case mir.Store:
		s.Stores++
		s.Cycles += c.Mem
	case mir.CallOp:
		s.Calls++
		s.Cycles += c.Call
	case mir.Jmp, mir.Br:
		s.Cycles += c.Branch
	case mir.PacSign:
		s.PacSigns++
		s.Cycles += c.PAC
	case mir.PacAuth:
		s.PacAuths++
		s.Cycles += c.PAC
	case mir.PacStrip:
		s.PacStrips++
		s.Cycles += c.PAC
	case mir.PPAdd, mir.PPSign, mir.PPAuth, mir.PPAddTBI:
		s.PPOps++
		s.Cycles += c.PPCall
	default:
		s.Cycles += c.ALU
	}
}

package vm

import "rsti/internal/mir"

// CostModel assigns a cycle cost to each executed instruction. The model
// substitutes for wall-clock measurement on the paper's Apple M1: the
// paper itself reports that RSTI overhead is driven by the number of
// instrumented loads/stores (Pearson 0.75–0.8), so a count-based cycle
// model reproduces the overhead *shape* faithfully. Only ratios between
// costs matter; the absolute scale is arbitrary.
type CostModel struct {
	ALU    int64 // arithmetic, compares, casts, address computation
	Mem    int64 // load/store
	Branch int64 // jumps and branches
	Call   int64 // call + return overhead
	PAC    int64 // effective amortized cost of one pac/aut/xpac. The raw
	//              latency on M1-class cores is ~4-5 cycles (the paper's
	//              7-XOR equivalence), but an out-of-order pipeline hides
	//              most of it behind surrounding work; a serial
	//              interpreter must fold that overlap into the per-op
	//              charge, calibrated at 2.
	PPCall int64 // one pointer-to-pointer runtime library call (inlined, but
	//              it hashes + probes the metadata store)
}

// DefaultCostModel is used by every reported experiment.
func DefaultCostModel() CostModel {
	return CostModel{ALU: 1, Mem: 4, Branch: 1, Call: 6, PAC: 2, PPCall: 12}
}

// Stats accumulates execution counts and modelled cycles.
type Stats struct {
	Cycles    int64
	Instrs    int64
	Loads     int64
	Stores    int64
	Calls     int64
	PacSigns  int64
	PacAuths  int64
	PacStrips int64
	PPOps     int64

	// PAC memoization counters, copied from the machine's pa.Unit when a
	// run finishes. Host-side observability only: they never influence
	// modelled cycles or any reported number.
	PACCacheHits   int64
	PACCacheMisses int64

	// Superinstruction dispatch counters: executions of fused groups.
	// Host-side observability only — fused groups charge exactly the
	// per-op counts and cycles of their unfused twins. FusedInstrs is the
	// total number of instructions that executed inside some fused group
	// (2 per pair, 3 per aut+addr+access triple).
	FusedAuthLoads      int64
	FusedSignStores     int64
	FusedAuthStores     int64
	FusedAuthAddrLoads  int64
	FusedAuthAddrStores int64
	FusedInstrs         int64

	// ThreadedInstrs counts instructions executed by the direct-threaded
	// tier (tier 1) rather than the switch interpreter. Host-side
	// observability only: the tier charges bit-identical modelled numbers.
	ThreadedInstrs int64
}

// FusedShare returns the fraction of executed instructions dispatched
// inside fused superinstruction groups.
func (s *Stats) FusedShare() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.FusedInstrs) / float64(s.Instrs)
}

// PACOps returns the total number of PA instructions executed.
func (s *Stats) PACOps() int64 { return s.PacSigns + s.PacAuths + s.PacStrips }

// PACCacheHitRate returns the fraction of PAC computations served from
// the memoization cache (0 when no PAC was ever computed).
func (s *Stats) PACCacheHitRate() float64 {
	total := s.PACCacheHits + s.PACCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PACCacheHits) / float64(total)
}

// cycleTable flattens a CostModel into a per-opcode cycle charge so the
// interpreter's accounting is one indexed add instead of a switch.
func (c *CostModel) cycleTable() [mir.NumOps]int64 {
	var t [mir.NumOps]int64
	for op := mir.Op(0); op < mir.NumOps; op++ {
		switch op {
		case mir.Load, mir.Store:
			t[op] = c.Mem
		case mir.CallOp:
			t[op] = c.Call
		case mir.Jmp, mir.Br:
			t[op] = c.Branch
		case mir.PacSign, mir.PacAuth, mir.PacStrip:
			t[op] = c.PAC
		case mir.PPAdd, mir.PPSign, mir.PPAuth, mir.PPAddTBI:
			t[op] = c.PPCall
		default:
			t[op] = c.ALU
		}
	}
	return t
}

// Instruction classes: which Stats counter (if any) an opcode bumps.
// charge() used to resolve this with an 8-way switch on the hot path;
// flattening it into an index table plus per-machine counter pointers
// makes accounting three indexed adds with no branches, and gives the
// threaded tier a way to pre-aggregate a whole segment's class counts.
const (
	clNone = iota // ops without a dedicated counter (dumps into a scratch cell)
	clLoad
	clStore
	clCall
	clSign
	clAuth
	clStrip
	clPP
	numClasses
)

// classOf maps each opcode to its counter class.
var classOf = [mir.NumOps]uint8{
	mir.Load: clLoad, mir.Store: clStore, mir.CallOp: clCall,
	mir.PacSign: clSign, mir.PacAuth: clAuth, mir.PacStrip: clStrip,
	mir.PPAdd: clPP, mir.PPSign: clPP, mir.PPAuth: clPP, mir.PPAddTBI: clPP,
}

// initClassPtrs wires the per-opcode counter pointers into m.Stats. Ops
// with no counter share m.scratchCount so charge() stays branch-free.
func (m *Machine) initClassPtrs() {
	m.classByIdx = [numClasses]*int64{
		clNone:  &m.scratchCount,
		clLoad:  &m.Stats.Loads,
		clStore: &m.Stats.Stores,
		clCall:  &m.Stats.Calls,
		clSign:  &m.Stats.PacSigns,
		clAuth:  &m.Stats.PacAuths,
		clStrip: &m.Stats.PacStrips,
		clPP:    &m.Stats.PPOps,
	}
	for op := mir.Op(0); op < mir.NumOps; op++ {
		m.classPtr[op] = m.classByIdx[classOf[op]]
	}
}

func (m *Machine) charge(op mir.Op) {
	m.Stats.Instrs++
	m.Stats.Cycles += m.cycles[op]
	*m.classPtr[op]++
}

package vm

import "rsti/internal/mir"

// CostModel assigns a cycle cost to each executed instruction. The model
// substitutes for wall-clock measurement on the paper's Apple M1: the
// paper itself reports that RSTI overhead is driven by the number of
// instrumented loads/stores (Pearson 0.75–0.8), so a count-based cycle
// model reproduces the overhead *shape* faithfully. Only ratios between
// costs matter; the absolute scale is arbitrary.
type CostModel struct {
	ALU    int64 // arithmetic, compares, casts, address computation
	Mem    int64 // load/store
	Branch int64 // jumps and branches
	Call   int64 // call + return overhead
	PAC    int64 // effective amortized cost of one pac/aut/xpac. The raw
	//              latency on M1-class cores is ~4-5 cycles (the paper's
	//              7-XOR equivalence), but an out-of-order pipeline hides
	//              most of it behind surrounding work; a serial
	//              interpreter must fold that overlap into the per-op
	//              charge, calibrated at 2.
	PPCall int64 // one pointer-to-pointer runtime library call (inlined, but
	//              it hashes + probes the metadata store)
}

// DefaultCostModel is used by every reported experiment.
func DefaultCostModel() CostModel {
	return CostModel{ALU: 1, Mem: 4, Branch: 1, Call: 6, PAC: 2, PPCall: 12}
}

// Stats accumulates execution counts and modelled cycles.
type Stats struct {
	Cycles    int64
	Instrs    int64
	Loads     int64
	Stores    int64
	Calls     int64
	PacSigns  int64
	PacAuths  int64
	PacStrips int64
	PPOps     int64

	// PAC memoization counters, copied from the machine's pa.Unit when a
	// run finishes. Host-side observability only: they never influence
	// modelled cycles or any reported number.
	PACCacheHits   int64
	PACCacheMisses int64

	// Superinstruction dispatch counters: executions of fused aut+load /
	// pac+store pairs. Host-side observability only — fused pairs charge
	// exactly the per-op counts and cycles of their unfused twins.
	FusedAuthLoads  int64
	FusedSignStores int64
}

// PACOps returns the total number of PA instructions executed.
func (s *Stats) PACOps() int64 { return s.PacSigns + s.PacAuths + s.PacStrips }

// PACCacheHitRate returns the fraction of PAC computations served from
// the memoization cache (0 when no PAC was ever computed).
func (s *Stats) PACCacheHitRate() float64 {
	total := s.PACCacheHits + s.PACCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PACCacheHits) / float64(total)
}

// cycleTable flattens a CostModel into a per-opcode cycle charge so the
// interpreter's accounting is one indexed add instead of a switch.
func (c *CostModel) cycleTable() [mir.NumOps]int64 {
	var t [mir.NumOps]int64
	for op := mir.Op(0); op < mir.NumOps; op++ {
		switch op {
		case mir.Load, mir.Store:
			t[op] = c.Mem
		case mir.CallOp:
			t[op] = c.Call
		case mir.Jmp, mir.Br:
			t[op] = c.Branch
		case mir.PacSign, mir.PacAuth, mir.PacStrip:
			t[op] = c.PAC
		case mir.PPAdd, mir.PPSign, mir.PPAuth, mir.PPAddTBI:
			t[op] = c.PPCall
		default:
			t[op] = c.ALU
		}
	}
	return t
}

func (m *Machine) charge(op mir.Op) {
	s := &m.Stats
	s.Instrs++
	s.Cycles += m.cycles[op]
	switch op {
	case mir.Load:
		s.Loads++
	case mir.Store:
		s.Stores++
	case mir.CallOp:
		s.Calls++
	case mir.PacSign:
		s.PacSigns++
	case mir.PacAuth:
		s.PacAuths++
	case mir.PacStrip:
		s.PacStrips++
	case mir.PPAdd, mir.PPSign, mir.PPAuth, mir.PPAddTBI:
		s.PPOps++
	}
}

// Package vm executes mir programs under a modelled ARMv8.3 CPU: a flat
// 48-bit address space, a pa.Unit for the pac/aut/xpac instructions, a
// cycle cost model, and the attack hooks that let scenarios corrupt memory
// mid-run the way a real exploit's arbitrary write would.
//
// The VM traps at authentication time when a PAC check fails (ARMv8.6 FPAC
// semantics, which the paper's detection argument assumes), and on any
// dereference of a non-canonical pointer (what pre-FPAC hardware does when
// a flipped-PAC pointer is used).
package vm

import (
	"context"
	"fmt"
	"io"
	"math"

	"rsti/internal/ctypes"
	"rsti/internal/mir"
	"rsti/internal/pa"
)

// Options configures a Machine.
type Options struct {
	PAConfig  pa.Config
	KeySeed   uint64
	HeapSize  int
	StackSize int
	MaxSteps  int64
	MaxDepth  int
	Cost      CostModel
	Output    io.Writer

	// Worker, when non-nil, supplies per-worker reusable state (frame
	// pool, warm PA units) owned by a long-lived execution worker. The
	// machine must then run on that worker's goroutine. Nil keeps the
	// machine self-contained.
	Worker *WorkerState

	// Image, when non-nil and built from the same program, supplies the
	// shared predecoded execution image so concurrent machines skip
	// per-run predecoding. Nil (or a mismatched program) predecodes
	// privately.
	Image *Image

	// Tier enables the profile-guided direct-threaded execution tier:
	// functions whose observed instruction count crosses TierThreshold are
	// compiled to chained closures (see threaded.go). Every modelled
	// number stays bit-identical to the interpreter; only host dispatch
	// gets cheaper. The compiled bodies and profile live on the Image, so
	// concurrent machines share one promotion.
	Tier bool

	// TierThreshold overrides the promotion hotness threshold (modelled
	// instructions observed in a function before its body is compiled).
	// Zero means DefaultTierThreshold.
	TierThreshold int64
}

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options {
	return Options{
		PAConfig:  pa.DefaultConfig(),
		KeySeed:   0xC0FFEE,
		HeapSize:  1 << 22,
		StackSize: 1 << 20,
		MaxSteps:  1 << 30,
		MaxDepth:  512,
		Cost:      DefaultCostModel(),
		Output:    io.Discard,
	}
}

// Hook is an attack callback invoked at a __hook(id) site. It runs with
// full access to the machine — the model of an attacker holding an
// arbitrary read/write primitive at that program point.
type Hook func(m *Machine) error

// Machine executes one program instance.
type Machine struct {
	Prog *mir.Program
	Unit *pa.Unit
	Mem  *Memory

	Stats  Stats
	cost   CostModel
	cycles [mir.NumOps]int64 // per-opcode charge, flattened from cost

	// Branch-free per-opcode class counting: classPtr[op] points at the
	// Stats counter the opcode bumps (or scratchCount when it has none);
	// classByIdx is the same set indexed by class for the threaded tier's
	// batched segment accounting.
	classPtr     [mir.NumOps]*int64
	classByIdx   [numClasses]*int64
	scratchCount int64

	heapNext  uint64
	heapEnd   uint64
	stackNext uint64
	stackEnd  uint64

	out      io.Writer
	hooks    map[int64]Hook
	externs  map[string]func(*Machine, []uint64) (uint64, error)
	ppMods   map[uint16]ppEntry
	frames   []*frame
	steps    int64
	maxSteps int64
	maxDepth int

	// Hot-path machinery. ws holds the frame pool (recycled call frames,
	// so steady-state execution allocates nothing per call) and the
	// arg-marshalling scratch stack — per-machine by default, shared and
	// persistent when an engine worker supplies its WorkerState; img
	// holds the immutable execution image (predecoded instruction
	// metadata incl. fusion marks, function tokens, static data layout),
	// shared across machines when Options.Image supplies one.
	ws  *WorkerState
	img *Image

	// sites is the inline monomorphic cache for the fused
	// aut+(addr)+access superinstructions: one last-resolved memory
	// segment per static fused access (slot assigned by predecode). A
	// field access that keeps resolving into the same segment — the
	// steady state of every pointer-chasing loop — skips the chunk-table
	// walk and bounds-checks against the cached segment directly; a miss
	// falls back to the full resolver and re-trains the slot. Per-machine
	// mutable state sized by the image, allocated once at construction.
	sites []*segment

	// ctx, when non-nil, is polled at cancellation checkpoints in the
	// step loop (every ctxCheckInterval steps).
	ctx context.Context

	// pacHits0/pacMisses0 are the PA unit's cache counters at machine
	// construction, so Stats reports per-run deltas even when the unit
	// is a warm one shared by a WorkerState.
	pacHits0, pacMisses0 uint64

	// Threaded-tier state (threaded.go). tier is the image's shared
	// profile/promotion table, nil when the tier is off. tErr/tRet carry a
	// threaded body's trap or return value out of the closure chain (a
	// closure signals by storing here and returning nil). segBatched marks
	// that the currently-running segment pre-charged its whole cost, so a
	// trapping closure must refund the unexecuted suffix.
	tier          *tierState
	tierThreshold int64
	tErr          error
	tRet          uint64
	segBatched    bool

	exitCode *int64
}

// ctxCheckInterval is how many interpreted steps may pass between context
// cancellation checks. At ~100M modelled instrs/s a 1024-step interval
// bounds cancellation latency to ~10µs of host time while keeping the
// per-step cost of cancellation support to one branch on a local counter.
const ctxCheckInterval = 1024

type frame struct {
	fn   *mir.Func
	regs []uint64
	// vars records this frame's named stack slots in allocation order.
	// A slice beats a map here: it is appended to on every SlotVar alloca
	// (hot) and only ever searched by attack hooks via VarAddr (cold).
	vars []varSlot
	mark uint64 // stack watermark to restore on return
}

// varSlot is one named local's (VarInfo index, address) pair.
type varSlot struct {
	vid  int
	addr uint64
}

// extKind is a predecoded Load extension / Store narrowing mode.
type extKind uint8

const (
	extNone extKind = iota // use the loaded/stored bits as-is
	extS8                  // sign-extend from 8 bits
	extS16                 // sign-extend from 16 bits
	extS32                 // sign-extend from 32 bits
	extF32                 // float32 <-> float64 conversion
)

// fuseKind marks an instruction that dispatches its successors in the
// same interpreter switch arm (a superinstruction group). The mark sits
// on the group's first instruction; fuseLen gives the group size.
type fuseKind uint8

const (
	fuseNone          fuseKind = iota
	fuseAuthLoad               // aut ; load through the authenticated pointer
	fuseSignStore              // pac ; store of the signed value
	fuseAuthStore              // aut ; store through the authenticated pointer
	fuseAuthAddrLoad           // aut ; fieldaddr/indexaddr off it ; load
	fuseAuthAddrStore          // aut ; fieldaddr/indexaddr off it ; store
)

// fuseLen returns the number of instructions in a fused group (0 for an
// unfused instruction).
func fuseLen(k fuseKind) int {
	switch k {
	case fuseAuthLoad, fuseSignStore, fuseAuthStore:
		return 2
	case fuseAuthAddrLoad, fuseAuthAddrStore:
		return 3
	}
	return 0
}

// FuseCounts tallies the static fused groups predecode marked in one
// function (or, summed, one image).
type FuseCounts struct {
	AuthLoads      int
	SignStores     int
	AuthStores     int
	AuthAddrLoads  int
	AuthAddrStores int
}

func (c *FuseCounts) add(o FuseCounts) {
	c.AuthLoads += o.AuthLoads
	c.SignStores += o.SignStores
	c.AuthStores += o.AuthStores
	c.AuthAddrLoads += o.AuthAddrLoads
	c.AuthAddrStores += o.AuthAddrStores
}

// Total returns the number of marked groups.
func (c FuseCounts) Total() int {
	return c.AuthLoads + c.SignStores + c.AuthStores + c.AuthAddrLoads + c.AuthAddrStores
}

// decInstr is the predecoded per-instruction metadata: everything the
// interpreter would otherwise recompute from *ctypes.Type on every
// execution of the instruction. Fits in 16 bytes so the image arena packs
// four records per cache line.
type decInstr struct {
	aux  uint64   // Alloca: 8-byte-aligned slot size
	site uint32   // fused access: monomorphic segment-cache slot (on the load/store)
	size uint8    // Load/Store: access width in bytes
	ext  extKind  // Load: extension mode; Store: extF32 marks a float32 narrow
	fuse fuseKind // superinstruction mark on the pair's first instruction
}

// predecodeInto fills f's slice of the image arena (ops, one contiguous
// decInstr per instruction) and its block offset index (off,
// len(Blocks)+1 entries) and marks superinstruction groups (fusion never
// crosses a block boundary: adjacency is within one Instrs slice). Beyond
// the original aut+load / pac+store pairs it matches the sequences
// instrumentation actually emits on struct- and array-heavy code — the
// authenticated pointer is usually offset by a fieldaddr/indexaddr before
// the access, so the dominant shapes are aut;addr;load and aut;addr;store
// triples. Each fused group's memory access is additionally assigned a
// monomorphic segment-cache slot from *sites (on the access instruction's
// decInstr). Fusion changes host dispatch only — every modelled number
// (steps, cycles, per-op counts, trap attribution) is bit-identical to
// unfused execution.
func predecodeInto(f *mir.Func, ops []decInstr, off []int32, sites *uint32) (counts FuseCounts) {
	pos := int32(0)
	for bi, blk := range f.Blocks {
		off[bi] = pos
		ds := ops[pos : pos+int32(len(blk.Instrs))]
		pos += int32(len(blk.Instrs))
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			d := &ds[ii]
			switch in.Op {
			case mir.Load:
				d.size = uint8(loadSize(in.Ty))
				d.ext = decodeExt(in.Ty)
			case mir.Store:
				d.size = uint8(loadSize(in.Ty))
				if in.Ty != nil && in.Ty.Kind == ctypes.Float {
					d.ext = extF32
				}
			case mir.Alloca:
				d.aux = uint64((in.Ty.Size() + 7) &^ 7)
			}
		}
		site := func(ii int) {
			ds[ii].site = *sites
			*sites++
		}
		for ii := 0; ii+1 < len(blk.Instrs); ii++ {
			in, next := &blk.Instrs[ii], &blk.Instrs[ii+1]
			switch {
			case in.Op == mir.PacAuth && next.Op == mir.Load && next.A == in.Dst:
				ds[ii].fuse = fuseAuthLoad
				counts.AuthLoads++
				site(ii + 1)
			case in.Op == mir.PacAuth && next.Op == mir.Store && next.A == in.Dst:
				ds[ii].fuse = fuseAuthStore
				counts.AuthStores++
				site(ii + 1)
			case in.Op == mir.PacAuth && (next.Op == mir.FieldAddr || next.Op == mir.IndexAddr) &&
				next.A == in.Dst && ii+2 < len(blk.Instrs):
				third := &blk.Instrs[ii+2]
				switch {
				case third.Op == mir.Load && third.A == next.Dst:
					ds[ii].fuse = fuseAuthAddrLoad
					counts.AuthAddrLoads++
					site(ii + 2)
					ii++ // the addr instruction is claimed by this group
				case third.Op == mir.Store && third.A == next.Dst:
					ds[ii].fuse = fuseAuthAddrStore
					counts.AuthAddrStores++
					site(ii + 2)
					ii++
				}
			case in.Op == mir.PacSign && next.Op == mir.Store && next.B == in.Dst:
				ds[ii].fuse = fuseSignStore
				counts.SignStores++
				site(ii + 1)
			}
		}
	}
	off[len(f.Blocks)] = pos
	return counts
}

// predecode builds a standalone per-block view of f's decoded
// instructions. Image construction predecodes into the shared flat arena
// via predecodeInto; this wrapper keeps the historical per-block shape
// for tests that inspect a single function's marks.
func predecode(f *mir.Func) (blocks [][]decInstr, counts FuseCounts) {
	n := 0
	for _, blk := range f.Blocks {
		n += len(blk.Instrs)
	}
	ops := make([]decInstr, n)
	off := make([]int32, len(f.Blocks)+1)
	var sites uint32
	counts = predecodeInto(f, ops, off, &sites)
	blocks = make([][]decInstr, len(f.Blocks))
	for bi := range f.Blocks {
		blocks[bi] = ops[off[bi]:off[bi+1]]
	}
	return blocks, counts
}

// decodeExt classifies how a loaded value of type t widens to a register.
func decodeExt(t *ctypes.Type) extKind {
	if t == nil {
		return extNone
	}
	switch t.Kind {
	case ctypes.Float:
		return extF32
	case ctypes.Double:
		return extNone
	}
	switch t.Size() {
	case 1:
		return extS8
	case 2:
		return extS16
	case 4:
		return extS32
	}
	return extNone
}

// New builds a Machine for prog.
func New(prog *mir.Program, opts Options) *Machine {
	if opts.Output == nil {
		opts.Output = io.Discard
	}
	ws := opts.Worker
	if ws == nil {
		ws = NewWorkerState()
	}
	img := opts.Image
	if img == nil || img.prog != prog {
		img = NewImage(prog)
	}
	m := &Machine{
		Prog:     prog,
		Unit:     ws.unit(opts.PAConfig, opts.KeySeed),
		ws:       ws,
		img:      img,
		cost:     opts.Cost,
		out:      opts.Output,
		hooks:    make(map[int64]Hook),
		ppMods:   make(map[uint16]ppEntry),
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxDepth,
	}
	m.pacHits0, m.pacMisses0 = m.Unit.CacheStats()
	m.cycles = m.cost.cycleTable()
	m.initClassPtrs()
	if img.sites > 0 {
		m.sites = make([]*segment, img.sites)
	}
	if opts.Tier {
		m.tier = img.tierFor(opts.Cost)
		m.tierThreshold = opts.TierThreshold
		if m.tierThreshold <= 0 {
			m.tierThreshold = DefaultTierThreshold
		}
	}

	m.Mem = NewMemory(img.gsize+16, img.ssize+16, opts.HeapSize, opts.StackSize)
	for i, s := range prog.Strings {
		b, err := m.Mem.Bytes(img.stringAddr[i], len(s)+1)
		if err != nil {
			panic(err)
		}
		copy(b, s)
		b[len(s)] = 0
	}
	m.heapNext = HeapBase
	m.heapEnd = HeapBase + uint64(opts.HeapSize)
	m.stackNext = StackBase
	m.stackEnd = StackBase + uint64(opts.StackSize)
	return m
}

// SetContext installs a context whose cancellation the interpreter
// honours: the step loop polls it every ctxCheckInterval steps and stops
// with a TrapCancelled (whose Cause is ctx.Err()) once it is done. A nil
// or never-cancelled context costs one counter test per step.
func (m *Machine) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // not cancellable; skip polling entirely
	}
	m.ctx = ctx
}

// SetOutput redirects program output (nil restores the discard sink).
// Reused machines get a fresh per-run writer this way instead of being
// rebuilt around one.
func (m *Machine) SetOutput(w io.Writer) {
	if w == nil {
		w = io.Discard
	}
	m.out = w
}

// Reset returns the machine to its just-constructed state without
// allocating, so one machine can serve run after run of the same build:
// every memory byte the previous run wrote is zeroed (segments track a
// write watermark, so the wipe is proportional to what was actually
// dirtied, and an attack hook's far poke is wiped as surely as a bump
// allocation), string constants are restored, and all per-run counters,
// hooks, externs and scratch state are cleared — a recycled arena never
// leaks one run's register or memory contents into the next. The PA
// unit's memo cache is deliberately kept warm (it can only skip
// recomputing a PAC, never change one) and Stats re-bases on its
// counters, so the next run still reports per-run deltas. The fused
// superinstructions' monomorphic segment caches survive too: the memory
// layout is identical across runs of one machine, so a trained site stays
// correct. See WorkerState.MachineFor for the serving-side entry point
// and the AllocBudget tests for the zero-allocation contract.
func (m *Machine) Reset() {
	for i := range m.Mem.segs {
		s := &m.Mem.segs[i]
		if s.hi > 0 {
			clear(s.data[:s.hi])
			s.hi = 0
		}
	}
	for i, str := range m.Prog.Strings {
		b, err := m.Mem.Bytes(m.img.stringAddr[i], len(str)+1)
		if err != nil {
			panic(err)
		}
		copy(b, str)
		b[len(str)] = 0
	}
	m.Stats = Stats{}
	m.steps = 0
	m.scratchCount = 0
	m.heapNext = HeapBase
	m.stackNext = StackBase
	m.frames = m.frames[:0]
	m.exitCode = nil
	m.tErr, m.tRet, m.segBatched = nil, 0, false
	m.ctx = nil
	clear(m.hooks)
	clear(m.externs)
	clear(m.ppMods)
	m.pacHits0, m.pacMisses0 = m.Unit.CacheStats()
}

// monoLoad is the load half of the fused superinstructions' inline
// monomorphic site cache (see Machine.sites): a trained site answers with
// one bounds check against its cached segment; a miss resolves through
// the chunk table and re-trains. Values and error text are exactly
// Memory.Load's.
func (m *Machine) monoLoad(site uint32, addr uint64, n int) (uint64, error) {
	if s := m.sites[site]; s != nil && addr >= s.base && addr+uint64(n) <= s.base+uint64(len(s.data)) {
		return loadLE(s.data[addr-s.base:], n), nil
	}
	s, off, err := m.Mem.find(addr, n)
	if err != nil {
		return 0, err
	}
	m.sites[site] = s
	return loadLE(s.data[off:], n), nil
}

// monoStore is monoLoad's store half; it also advances the segment's
// write watermark the way Memory.Store does, so Reset wipes the write.
func (m *Machine) monoStore(site uint32, addr uint64, v uint64, n int) error {
	if s := m.sites[site]; s != nil && addr >= s.base && addr+uint64(n) <= s.base+uint64(len(s.data)) {
		off := int(addr - s.base)
		if end := off + n; end > s.hi {
			s.hi = end
		}
		storeLE(s.data[off:], v, n)
		return nil
	}
	s, off, err := m.Mem.find(addr, n)
	if err != nil {
		return err
	}
	m.sites[site] = s
	if end := off + n; end > s.hi {
		s.hi = end
	}
	storeLE(s.data[off:], v, n)
	return nil
}

// getFrame takes a frame from the pool (or allocates one) and prepares it
// for f: registers zeroed and sized, local-variable map emptied.
//
// Register files are sized from the image's max-regs watermark, not the
// callee's NumRegs: one frame allocation covers every function of the
// program, so steady-state frame reuse never reallocates regardless of
// which callee draws the frame. The watermark check still guards the
// pooled path — a WorkerState outlives one machine and may carry frames
// sized by a smaller program's image.
func (m *Machine) getFrame(f *mir.Func) *frame {
	if n := len(m.ws.frames); n > 0 {
		fr := m.ws.frames[n-1]
		m.ws.frames = m.ws.frames[:n-1]
		if cap(fr.regs) < f.NumRegs {
			fr.regs = make([]uint64, m.regWatermark(f))[:f.NumRegs]
		} else {
			fr.regs = fr.regs[:f.NumRegs]
			for i := range fr.regs {
				fr.regs[i] = 0
			}
		}
		fr.vars = fr.vars[:0]
		fr.fn = f
		fr.mark = m.stackNext
		return fr
	}
	return &frame{
		fn:   f,
		regs: make([]uint64, m.regWatermark(f))[:f.NumRegs],
		mark: m.stackNext,
	}
}

// regWatermark returns the register-file capacity a new frame is built
// with: the image watermark, floored by the immediate callee in case a
// stale image ever under-reports.
func (m *Machine) regWatermark(f *mir.Func) int {
	if m.img.maxRegs >= f.NumRegs {
		return m.img.maxRegs
	}
	return f.NumRegs
}

// RegisterHook installs an attack callback for __hook(id).
func (m *Machine) RegisterHook(id int64, h Hook) { m.hooks[id] = h }

// FuncToken returns the entry token of a function — what a code pointer
// to it looks like in memory.
func (m *Machine) FuncToken(name string) (uint64, bool) {
	t, ok := m.img.funcTok[name]
	return t, ok
}

// GlobalAddr returns the address of a global variable.
func (m *Machine) GlobalAddr(name string) (uint64, bool) {
	for i, g := range m.Prog.Globals {
		if g.Name == name {
			return m.img.globalAddr[i], true
		}
	}
	return 0, false
}

// VarAddr searches the live call stack, innermost first, for a local slot
// of the named variable in the named function. Attack hooks use it to
// locate stack targets the way a real exploit's relative overflow would.
func (m *Machine) VarAddr(fn, name string) (uint64, bool) {
	for i := len(m.frames) - 1; i >= 0; i-- {
		fr := m.frames[i]
		if fr.fn.Name != fn {
			continue
		}
		for _, vs := range fr.vars {
			if m.Prog.Vars[vs.vid].Name == name {
				return vs.addr, true
			}
		}
	}
	return 0, false
}

// syncPACStats copies the PA unit's memoization counters into Stats,
// relative to the counts at machine construction (a shared worker unit
// accumulates across runs; Stats always reports this run's share).
func (m *Machine) syncPACStats() {
	hits, misses := m.Unit.CacheStats()
	m.Stats.PACCacheHits = int64(hits - m.pacHits0)
	m.Stats.PACCacheMisses = int64(misses - m.pacMisses0)
}

// Run executes __init then main and returns main's exit value (or the
// value passed to exit()).
func (m *Machine) Run() (int64, error) {
	defer m.syncPACStats()
	if initFn, ok := m.Prog.Func(mir.InitFuncName); ok {
		if _, err := m.exec(initFn, nil); err != nil {
			if m.exitCode != nil {
				return *m.exitCode, nil
			}
			return 0, err
		}
	}
	mainFn, ok := m.Prog.Func("main")
	if !ok {
		return 0, fmt.Errorf("vm: program has no main")
	}
	// main's (zeroed) argument registers come off the shared scratch
	// stack: the callee copies them into its frame before anything else
	// pushes, so the watermark discipline holds and a steady-state run
	// stays allocation-free.
	base := len(m.ws.argScratch)
	for range mainFn.Params {
		m.ws.argScratch = append(m.ws.argScratch, 0)
	}
	ret, err := m.exec(mainFn, m.ws.argScratch[base:])
	m.ws.argScratch = m.ws.argScratch[:base]
	if m.exitCode != nil {
		return *m.exitCode, nil
	}
	if err != nil {
		return 0, err
	}
	return int64(ret), nil
}

// Call invokes a named function directly (used by tests).
func (m *Machine) Call(name string, args ...uint64) (uint64, error) {
	f, ok := m.Prog.Func(name)
	if !ok {
		return 0, fmt.Errorf("vm: no function %q", name)
	}
	defer m.syncPACStats()
	return m.exec(f, args)
}

type exitSentinel struct{ code int64 }

func (exitSentinel) Error() string { return "exit" }

func (m *Machine) trap(kind TrapKind, f *mir.Func, in *mir.Instr, format string, args ...interface{}) error {
	t := &Trap{Kind: kind, Msg: fmt.Sprintf(format, args...)}
	if f != nil {
		t.Fn = f.Name
	}
	if in != nil {
		t.Pos = in.Pos
	}
	return t
}

// canonical validates that ptr is dereferenceable and returns the address
// bits. A pointer with live PAC bits (or flipped error bits) faults, as on
// hardware.
func (m *Machine) canonical(ptr uint64, f *mir.Func, in *mir.Instr) (uint64, error) {
	if !m.Unit.IsCanonical(ptr) {
		return 0, m.trap(TrapNonCanonical, f, in, "pointer %#x has non-address bits set", ptr)
	}
	return m.Unit.Canonical(ptr), nil
}

// stepGate performs the per-instruction admission bookkeeping: the step
// counter, the step-budget trap and the cancellation checkpoint. The
// main loop and the fused superinstruction tails share it so a fused
// pair's accounting stays bit-identical to separate dispatch.
func (m *Machine) stepGate(f *mir.Func, in *mir.Instr) error {
	m.steps++
	if m.steps > m.maxSteps {
		return m.trap(TrapMaxSteps, f, in, "%d steps", m.steps)
	}
	if m.ctx != nil && m.steps%ctxCheckInterval == 0 {
		return m.cancelled(f, in)
	}
	return nil
}

// cancelled polls the machine's context at a cancellation checkpoint and
// converts a done context into the TrapCancelled attributed to in. It is
// the cold half of the step gate, outlined so the hot loop inlines.
func (m *Machine) cancelled(f *mir.Func, in *mir.Instr) error {
	cerr := m.ctx.Err()
	if cerr == nil {
		return nil
	}
	return &Trap{
		Kind:  TrapCancelled,
		Fn:    f.Name,
		Pos:   in.Pos,
		Msg:   fmt.Sprintf("%v after %d steps", cerr, m.steps),
		Cause: cerr,
	}
}

func (m *Machine) exec(f *mir.Func, args []uint64) (uint64, error) {
	if f.Extern {
		return m.builtin(f, args)
	}
	if len(m.frames) >= m.maxDepth {
		return 0, m.trap(TrapStackOverflow, f, nil, "call depth %d", len(m.frames))
	}
	var prof *funcProfile
	if m.tier != nil {
		prof = m.tier.prof[f]
	}
	fr := m.getFrame(f)
	copy(fr.regs, args)
	m.frames = append(m.frames, fr)
	defer func() {
		m.frames = m.frames[:len(m.frames)-1]
		m.stackNext = fr.mark
		m.ws.frames = append(m.ws.frames, fr)
	}()

	decoded := m.img.dec[f]
	blk := f.Blocks[0]
	dblk := decoded.block(0)
	if prof != nil {
		if tf := m.noteBlock(prof, f, blk); tf != nil {
			return m.runThreaded(tf, fr, 0)
		}
	}
	instrs := blk.Instrs
	regs := fr.regs
	ip := 0
	for {
		if ip >= len(instrs) {
			return 0, m.trap(TrapOutOfBounds, f, nil, "fell off block %s", blk.Name)
		}
		in := &instrs[ip]
		// The step gate, inlined: the budget test and the (usually-skipped)
		// cancellation checkpoint are the whole per-instruction admission
		// cost; the trap constructors stay in outlined cold paths.
		m.steps++
		if m.steps > m.maxSteps {
			return 0, m.trap(TrapMaxSteps, f, in, "%d steps", m.steps)
		}
		if m.ctx != nil && m.steps%ctxCheckInterval == 0 {
			if err := m.cancelled(f, in); err != nil {
				return 0, err
			}
		}
		m.Stats.Instrs++
		m.Stats.Cycles += m.cycles[in.Op]
		*m.classPtr[in.Op]++

		switch in.Op {
		case mir.Nop:

		case mir.Const:
			regs[in.Dst] = uint64(in.Imm)
		case mir.ConstF:
			regs[in.Dst] = uint64(in.Imm)
		case mir.StrConst:
			regs[in.Dst] = m.img.stringAddr[in.Imm]
		case mir.Alloca:
			size := dblk[ip].aux
			if m.stackNext+size > m.stackEnd {
				return 0, m.trap(TrapStackOverflow, f, in, "stack segment exhausted")
			}
			addr := m.stackNext
			m.stackNext += size
			// Zero the slot: C does not, but determinism is worth more
			// to a simulator than modelling uninitialized reads.
			if b, err := m.Mem.Bytes(addr, int(size)); err == nil {
				for i := range b {
					b[i] = 0
				}
			}
			regs[in.Dst] = addr
			if in.Slot.Kind == mir.SlotVar {
				fr.vars = append(fr.vars, varSlot{in.Slot.Var, addr})
			}
		case mir.GlobalAddr:
			regs[in.Dst] = m.img.globalAddr[in.Imm]
		case mir.FuncAddr:
			regs[in.Dst] = m.img.funcTok[in.Callee]

		case mir.Load:
			addr, err := m.canonical(regs[in.A], f, in)
			if err != nil {
				return 0, err
			}
			d := &dblk[ip]
			v, err := m.Mem.Load(addr, int(d.size))
			if err != nil {
				return 0, m.trap(TrapOutOfBounds, f, in, "%v", err)
			}
			regs[in.Dst] = extendDec(v, d.ext)
		case mir.Store:
			addr, err := m.canonical(regs[in.A], f, in)
			if err != nil {
				return 0, err
			}
			d := &dblk[ip]
			v := regs[in.B]
			if d.ext == extF32 {
				v = uint64(math.Float32bits(float32(math.Float64frombits(v))))
			}
			if err := m.Mem.Store(addr, v, int(d.size)); err != nil {
				return 0, m.trap(TrapOutOfBounds, f, in, "%v", err)
			}

		case mir.FieldAddr:
			regs[in.Dst] = regs[in.A] + uint64(in.Imm)
		case mir.IndexAddr:
			regs[in.Dst] = regs[in.A] + uint64(int64(regs[in.B])*in.Imm)

		case mir.BinInstr:
			v, err := m.binop(in, regs[in.A], regs[in.B], f)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case mir.CmpInstr:
			regs[in.Dst] = cmp(in.CmpSub, regs[in.A], regs[in.B], in.FromTy)

		case mir.CastOp:
			regs[in.Dst] = castValue(regs[in.A], in.FromTy, in.Ty)

		case mir.CallOp:
			var callee *mir.Func
			if in.Callee != "" {
				callee = m.Prog.ByName[in.Callee]
			} else {
				tok := regs[in.A]
				if !m.Unit.IsCanonical(tok) {
					return 0, m.trap(TrapNonCanonical, f, in, "indirect call through %#x with non-address bits", tok)
				}
				callee = m.img.tokFunc[m.Unit.Canonical(tok)]
				if callee == nil {
					return 0, m.trap(TrapBadCall, f, in, "%#x is not a function entry", tok)
				}
			}
			// Marshal arguments on the shared scratch stack: the callee
			// copies them into its own registers (or a builtin consumes
			// them) before this frame touches the stack again, so the
			// watermark discipline is safe under recursion.
			base := len(m.ws.argScratch)
			for _, r := range in.Args {
				m.ws.argScratch = append(m.ws.argScratch, regs[r])
			}
			ret, err := m.exec(callee, m.ws.argScratch[base:])
			m.ws.argScratch = m.ws.argScratch[:base]
			if err != nil {
				return 0, err
			}
			if in.Dst != mir.NoReg {
				regs[in.Dst] = ret
			}

		case mir.RetOp:
			if in.A == mir.NoReg {
				return 0, nil
			}
			return regs[in.A], nil

		case mir.Jmp:
			blk = f.Blocks[in.Targets[0]]
			dblk = decoded.block(blk.Index)
			if prof != nil {
				if tf := m.noteBlock(prof, f, blk); tf != nil {
					return m.runThreaded(tf, fr, blk.Index)
				}
			}
			instrs = blk.Instrs
			ip = 0
			continue
		case mir.Br:
			if regs[in.A] != 0 {
				blk = f.Blocks[in.Targets[0]]
			} else {
				blk = f.Blocks[in.Targets[1]]
			}
			dblk = decoded.block(blk.Index)
			if prof != nil {
				if tf := m.noteBlock(prof, f, blk); tf != nil {
					return m.runThreaded(tf, fr, blk.Index)
				}
			}
			instrs = blk.Instrs
			ip = 0
			continue

		case mir.PacSign:
			regs[in.Dst] = m.Unit.Sign(regs[in.A], pa.KeyID(in.Key), m.modifier(in, regs))
			if dblk[ip].fuse == fuseSignStore {
				// Fused pac+store superinstruction: dispatch the adjacent
				// store in the same switch arm. Accounting and trap
				// attribution are those of two separate instructions (a
				// memory fault names the store, not the sign).
				ip++
				in = &instrs[ip]
				if err := m.stepGate(f, in); err != nil {
					return 0, err
				}
				m.charge(mir.Store)
				m.Stats.FusedSignStores++
				m.Stats.FusedInstrs += 2
				addr, err := m.canonical(regs[in.A], f, in)
				if err != nil {
					return 0, err
				}
				d := &dblk[ip]
				sv := regs[in.B]
				if d.ext == extF32 {
					sv = uint64(math.Float32bits(float32(math.Float64frombits(sv))))
				}
				if err := m.monoStore(d.site, addr, sv, int(d.size)); err != nil {
					return 0, m.trap(TrapOutOfBounds, f, in, "%v", err)
				}
			}
		case mir.PacAuth:
			mod := m.modifier(in, regs)
			v, ok := m.Unit.Auth(regs[in.A], pa.KeyID(in.Key), mod)
			if !ok {
				return 0, m.trap(TrapAuthFailure, f, in, "aut failed on %#x (mod %#x)", regs[in.A], mod)
			}
			regs[in.Dst] = v
			// Fused superinstruction tails. An authentication failure above
			// traps naming the aut; each fused follower runs its own step
			// gate and charge, so accounting and trap attribution stay
			// bit-identical to separate dispatch (a memory fault names the
			// load/store, never the aut).
			switch dblk[ip].fuse {
			case fuseAuthLoad:
				ip++
				in = &instrs[ip]
				if err := m.stepGate(f, in); err != nil {
					return 0, err
				}
				m.charge(mir.Load)
				m.Stats.FusedAuthLoads++
				m.Stats.FusedInstrs += 2
				addr, err := m.canonical(regs[in.A], f, in)
				if err != nil {
					return 0, err
				}
				d := &dblk[ip]
				lv, err := m.monoLoad(d.site, addr, int(d.size))
				if err != nil {
					return 0, m.trap(TrapOutOfBounds, f, in, "%v", err)
				}
				regs[in.Dst] = extendDec(lv, d.ext)
			case fuseAuthStore:
				ip++
				in = &instrs[ip]
				if err := m.stepGate(f, in); err != nil {
					return 0, err
				}
				m.charge(mir.Store)
				m.Stats.FusedAuthStores++
				m.Stats.FusedInstrs += 2
				addr, err := m.canonical(regs[in.A], f, in)
				if err != nil {
					return 0, err
				}
				d := &dblk[ip]
				sv := regs[in.B]
				if d.ext == extF32 {
					sv = uint64(math.Float32bits(float32(math.Float64frombits(sv))))
				}
				if err := m.monoStore(d.site, addr, sv, int(d.size)); err != nil {
					return 0, m.trap(TrapOutOfBounds, f, in, "%v", err)
				}
			case fuseAuthAddrLoad, fuseAuthAddrStore:
				kind := dblk[ip].fuse
				// Address computation off the authenticated pointer.
				ip++
				in = &instrs[ip]
				if err := m.stepGate(f, in); err != nil {
					return 0, err
				}
				m.charge(in.Op)
				if in.Op == mir.FieldAddr {
					regs[in.Dst] = regs[in.A] + uint64(in.Imm)
				} else {
					regs[in.Dst] = regs[in.A] + uint64(int64(regs[in.B])*in.Imm)
				}
				// The access itself.
				ip++
				in = &instrs[ip]
				if err := m.stepGate(f, in); err != nil {
					return 0, err
				}
				m.charge(in.Op)
				m.Stats.FusedInstrs += 3
				addr, err := m.canonical(regs[in.A], f, in)
				if err != nil {
					return 0, err
				}
				d := &dblk[ip]
				if kind == fuseAuthAddrLoad {
					m.Stats.FusedAuthAddrLoads++
					lv, err := m.monoLoad(d.site, addr, int(d.size))
					if err != nil {
						return 0, m.trap(TrapOutOfBounds, f, in, "%v", err)
					}
					regs[in.Dst] = extendDec(lv, d.ext)
				} else {
					m.Stats.FusedAuthAddrStores++
					sv := regs[in.B]
					if d.ext == extF32 {
						sv = uint64(math.Float32bits(float32(math.Float64frombits(sv))))
					}
					if err := m.monoStore(d.site, addr, sv, int(d.size)); err != nil {
						return 0, m.trap(TrapOutOfBounds, f, in, "%v", err)
					}
				}
			}
		case mir.PacStrip:
			regs[in.Dst] = m.Unit.Strip(regs[in.A])

		case mir.PPAdd:
			// The metadata store is read-only: first registration wins,
			// and a conflicting re-registration is a violation.
			entry := ppEntry{mod: in.Mod, inner: uint16(in.Imm)}
			if old, ok := m.ppMods[in.CE]; ok && old != entry {
				return 0, m.trap(TrapPPViolation, f, in, "CE %d re-registered with a different FE", in.CE)
			}
			m.ppMods[in.CE] = entry
		case mir.PPAddTBI:
			regs[in.Dst] = m.Unit.SetTag(regs[in.A], byte(in.CE))
		case mir.PPSign:
			mod, _, err := m.ppResolve(in, regs, f)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = m.Unit.Sign(regs[in.B], pa.KeyID(in.Key), mod)
		case mir.PPAuth:
			mod, inner, err := m.ppResolve(in, regs, f)
			if err != nil {
				return 0, err
			}
			v, ok := m.Unit.Auth(regs[in.B], pa.KeyID(in.Key), mod)
			if !ok {
				return 0, m.trap(TrapAuthFailure, f, in, "pp_auth failed on %#x", regs[in.B])
			}
			// Multi-level indirection: the authenticated inner pointer is
			// itself a universal pointer one level down; plant the next
			// level's CE so further dereferences resolve their FE.
			if inner != 0 {
				v = m.Unit.SetTag(v, byte(inner))
			}
			regs[in.Dst] = v

		default:
			return 0, fmt.Errorf("vm: unknown op %s", in.Op)
		}
		ip++
	}
}

// modifier computes a PA modifier: the static part, XORed with the
// location register for RSTI-STL sites (B holds &p).
func (m *Machine) modifier(in *mir.Instr, regs []uint64) uint64 {
	mod := in.Mod
	if in.B != mir.NoReg {
		mod ^= regs[in.B]
	}
	return mod
}

// ppModifier resolves the modifier for a pointer-to-pointer access: the
// CE tag on the outer pointer (register A) selects the Full Equivalent
// modifier from the read-only store; an untagged outer pointer falls back
// to the static modifier (the declared pointee type). Under RSTI-STL the
// instruction carries Imm == 1 and the outer pointer's address — the
// location of the slot being accessed — is XORed in, mirroring the
// location binding of direct slot accesses.
func (m *Machine) ppResolve(in *mir.Instr, regs []uint64, f *mir.Func) (mod uint64, inner uint16, err error) {
	mod = in.Mod
	tag := m.Unit.Tag(regs[in.A])
	if tag != 0 {
		stored, ok := m.ppMods[uint16(tag)]
		if !ok {
			return 0, 0, m.trap(TrapPPViolation, f, in, "CE %d not registered", tag)
		}
		mod = stored.mod
		inner = stored.inner
	}
	if in.Imm == 1 {
		mod ^= m.Unit.Canonical(regs[in.A])
	}
	return mod, inner, nil
}

// ppEntry is one row of the read-only pointer-to-pointer metadata store:
// the Full Equivalent modifier for a CE, plus the CE of the next
// indirection level (0 when the FE bottoms out).
type ppEntry struct {
	mod   uint64
	inner uint16
}

func loadSize(t *ctypes.Type) int {
	if t == nil {
		return 8
	}
	s := t.Size()
	switch s {
	case 1, 2, 4, 8:
		return s
	default:
		return 8
	}
}

// extendDec applies a predecoded extension mode to a loaded value; it is
// the table-driven twin of extend.
func extendDec(v uint64, e extKind) uint64 {
	switch e {
	case extS8:
		return uint64(int64(int8(v)))
	case extS16:
		return uint64(int64(int16(v)))
	case extS32:
		return uint64(int64(int32(v)))
	case extF32:
		return math.Float64bits(float64(math.Float32frombits(uint32(v))))
	}
	return v
}

// extend sign-extends a loaded integer to 64 bits and widens float32.
func extend(v uint64, t *ctypes.Type) uint64 {
	if t == nil {
		return v
	}
	switch t.Kind {
	case ctypes.Float:
		return math.Float64bits(float64(math.Float32frombits(uint32(v))))
	case ctypes.Double:
		return v
	}
	switch t.Size() {
	case 1:
		return uint64(int64(int8(v)))
	case 2:
		return uint64(int64(int16(v)))
	case 4:
		return uint64(int64(int32(v)))
	}
	return v
}

func (m *Machine) binop(in *mir.Instr, a, b uint64, f *mir.Func) (uint64, error) {
	switch in.BinSub {
	case mir.Add:
		return a + b, nil
	case mir.Sub:
		return a - b, nil
	case mir.Mul:
		return uint64(int64(a) * int64(b)), nil
	case mir.Div:
		if b == 0 {
			return 0, m.trap(TrapDivideByZero, f, in, "division by zero")
		}
		return uint64(int64(a) / int64(b)), nil
	case mir.Rem:
		if b == 0 {
			return 0, m.trap(TrapDivideByZero, f, in, "remainder by zero")
		}
		return uint64(int64(a) % int64(b)), nil
	case mir.And:
		return a & b, nil
	case mir.Or:
		return a | b, nil
	case mir.Xor:
		return a ^ b, nil
	case mir.Shl:
		return a << (b & 63), nil
	case mir.Shr:
		return uint64(int64(a) >> (b & 63)), nil
	case mir.FAdd:
		return fop(a, b, func(x, y float64) float64 { return x + y }), nil
	case mir.FSub:
		return fop(a, b, func(x, y float64) float64 { return x - y }), nil
	case mir.FMul:
		return fop(a, b, func(x, y float64) float64 { return x * y }), nil
	case mir.FDiv:
		return fop(a, b, func(x, y float64) float64 { return x / y }), nil
	}
	return 0, fmt.Errorf("vm: unknown binop %d", in.BinSub)
}

func fop(a, b uint64, f func(x, y float64) float64) uint64 {
	return math.Float64bits(f(math.Float64frombits(a), math.Float64frombits(b)))
}

func cmp(sub mir.CmpSub, a, b uint64, operandTy *ctypes.Type) uint64 {
	var r bool
	if operandTy != nil && (operandTy.Kind == ctypes.Float || operandTy.Kind == ctypes.Double) {
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		switch sub {
		case mir.Eq:
			r = x == y
		case mir.Ne:
			r = x != y
		case mir.Lt:
			r = x < y
		case mir.Le:
			r = x <= y
		case mir.Gt:
			r = x > y
		case mir.Ge:
			r = x >= y
		}
	} else {
		x, y := int64(a), int64(b)
		switch sub {
		case mir.Eq:
			r = x == y
		case mir.Ne:
			r = x != y
		case mir.Lt:
			r = x < y
		case mir.Le:
			r = x <= y
		case mir.Gt:
			r = x > y
		case mir.Ge:
			r = x >= y
		}
	}
	if r {
		return 1
	}
	return 0
}

func castValue(v uint64, from, to *ctypes.Type) uint64 {
	if to == nil {
		return v
	}
	fromFloat := from != nil && (from.Kind == ctypes.Float || from.Kind == ctypes.Double)
	toFloat := to.Kind == ctypes.Float || to.Kind == ctypes.Double
	switch {
	case fromFloat && !toFloat:
		return extend(uint64(int64(math.Float64frombits(v))), to)
	case !fromFloat && toFloat:
		return math.Float64bits(float64(int64(v)))
	case fromFloat && toFloat:
		return v
	case to.IsInteger():
		return extend(v, to)
	default: // pointer casts and int<->pointer: bit-identical
		return v
	}
}

package vm

import (
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
	"rsti/internal/rsti"
	"rsti/internal/sti"
)

// allocBenchSrc is a pointer-chasing workload chosen for what it does NOT
// do on the host side: no printf (the formatting builtins allocate) and no
// exit() (the exit sentinel allocates). It still exercises everything the
// zero-allocation contract covers — struct field traffic through
// authenticated pointers (the fused superinstructions and their
// monomorphic site caches), bump allocation, calls deep enough to cycle
// the frame pool.
const allocBenchSrc = `
struct node { int v; struct node *next; };

int sum(struct node *p) {
	int s = 0;
	while (p != 0) {
		s = s + p->v;
		p = p->next;
	}
	return s;
}

int main(void) {
	struct node *head = 0;
	int i = 0;
	while (i < 64) {
		struct node *n = (struct node *)malloc(16);
		n->v = i;
		n->next = head;
		head = n;
		i = i + 1;
	}
	int r = 0;
	int k = 0;
	while (k < 200) {
		r = r + sum(head);
		k = k + 1;
	}
	return r & 255;
}
`

// allocBenchProg lowers and STC-instruments the allocation workload, so
// the measured run path includes pac/aut traffic and fused groups, not
// just plain arithmetic.
func allocBenchProg(t *testing.T) *mir.Program {
	t.Helper()
	f, err := cminor.Frontend(allocBenchSrc)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog, err := lower.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	inst, _, err := rsti.Instrument(prog, sti.Analyze(prog), sti.STC)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return inst
}

// residentMachine builds a machine the way a steady-state engine worker
// holds one: shared image, worker state, then one warmup run so every
// pool (frames, arg scratch, tier bodies) reaches capacity.
func residentMachine(t *testing.T, prog *mir.Program, tier bool) *Machine {
	t.Helper()
	opts := DefaultOptions()
	opts.Image = NewImage(prog)
	opts.Tier = tier
	opts.TierThreshold = testTierThreshold
	m := New(prog, opts)
	if _, err := m.Run(); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	return m
}

// measureAllocs reports the average heap allocations of one steady-state
// Reset+Run cycle and asserts every measured run reproduces the warmup
// run's exit value and modelled stats bit-for-bit.
func measureAllocs(t *testing.T, m *Machine) float64 {
	t.Helper()
	wantExit, wantStats := int64(-1), Stats{}
	m.Reset()
	if exit, err := m.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	} else {
		wantExit, wantStats = exit, modelled(m.Stats)
	}
	return testing.AllocsPerRun(10, func() {
		m.Reset()
		exit, err := m.Run()
		if err != nil {
			t.Fatalf("measured run: %v", err)
		}
		if exit != wantExit {
			t.Fatalf("measured run exit = %d, want %d", exit, wantExit)
		}
		if got := modelled(m.Stats); got != wantStats {
			t.Fatalf("measured run modelled stats diverged:\n got %+v\nwant %+v", got, wantStats)
		}
	})
}

// TestAllocBudgetInterpreter pins the tentpole contract on the switch
// interpreter: a steady-state Reset+Run of an instrumented workload
// performs zero heap allocations.
func TestAllocBudgetInterpreter(t *testing.T) {
	m := residentMachine(t, allocBenchProg(t), false)
	if n := measureAllocs(t, m); n != 0 {
		t.Fatalf("interpreter steady-state Run allocates %.1f times per run, want 0", n)
	}
}

// TestAllocBudgetTier pins the same contract on the direct-threaded tier:
// after the warmup run promotes the hot functions, executing the compiled
// closure chains allocates nothing.
func TestAllocBudgetTier(t *testing.T) {
	m := residentMachine(t, allocBenchProg(t), true)
	if ts := m.img.TierStats(); ts.Promotions == 0 {
		t.Fatalf("tier never promoted during warmup (threshold %d)", testTierThreshold)
	}
	if n := measureAllocs(t, m); n != 0 {
		t.Fatalf("tier steady-state Run allocates %.1f times per run, want 0", n)
	}
}

// TestAllocBudgetWorkerReuse pins the serving-side entry point: a
// WorkerState that keeps getting the same (program, options) shape hands
// back its resident machine, and the Reset+Run cycle it performs through
// MachineFor allocates nothing once warm.
func TestAllocBudgetWorkerReuse(t *testing.T) {
	prog := allocBenchProg(t)
	opts := DefaultOptions()
	opts.Image = NewImage(prog)
	ws := NewWorkerState()

	m := ws.MachineFor(prog, opts)
	if _, err := m.Run(); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	if again := ws.MachineFor(prog, opts); again != m {
		t.Fatalf("MachineFor rebuilt instead of reusing the resident machine")
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("second warmup run: %v", err)
	}
	n := testing.AllocsPerRun(10, func() {
		mm := ws.MachineFor(prog, opts)
		if _, err := mm.Run(); err != nil {
			t.Fatalf("measured run: %v", err)
		}
	})
	if n != 0 {
		t.Fatalf("worker-reuse steady-state MachineFor+Run allocates %.1f times per run, want 0", n)
	}

	// A different shape must NOT reuse: the resident slot is keyed on
	// everything that shapes a machine.
	bigger := opts
	bigger.HeapSize *= 2
	if other := ws.MachineFor(prog, bigger); other == m {
		t.Fatalf("MachineFor reused the resident machine across a config change")
	}
}

// poisonByte is the sentinel the recycling tests smear over released
// state. 0xA5 survives neither a correct zeroing nor a correct overwrite,
// so any byte of it visible after re-acquisition is a leak.
const poisonByte = 0xA5

const poisonWord = 0xA5A5A5A5A5A5A5A5

// TestFramePoisoning poisons every pooled frame between runs — registers,
// vars scratch, stack watermark — and requires the next run to be
// bit-identical to an unpoisoned one: frame recycling must never leak one
// run's register contents into the next (multi-tenant isolation).
func TestFramePoisoning(t *testing.T) {
	prog := allocBenchProg(t)
	m := residentMachine(t, prog, false)

	m.Reset()
	wantExit, err := m.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	wantStats := modelled(m.Stats)

	for round := 0; round < 3; round++ {
		for _, fr := range m.ws.frames {
			regs := fr.regs[:cap(fr.regs)]
			for i := range regs {
				regs[i] = poisonWord
			}
			vars := fr.vars[:cap(fr.vars)]
			for i := range vars {
				vars[i] = varSlot{vid: -1, addr: poisonWord}
			}
			fr.mark = poisonWord
			fr.fn = nil
		}
		m.Reset()
		exit, err := m.Run()
		if err != nil {
			t.Fatalf("round %d: run after frame poisoning: %v", round, err)
		}
		if exit != wantExit {
			t.Fatalf("round %d: exit = %d, want %d — poisoned frame state leaked", round, exit, wantExit)
		}
		if got := modelled(m.Stats); got != wantStats {
			t.Fatalf("round %d: modelled stats diverged after poisoning:\n got %+v\nwant %+v", round, got, wantStats)
		}
	}
}

// TestResetWipesPoisonedMemory models the nastiest tenant: an attack hook
// with an arbitrary-write primitive pokes sentinel bytes far outside the
// program's own allocations, then the machine is reset for the next run.
// Every poisoned byte must be gone — heap, stack and globals read back
// zero, string constants read back pristine — and the next run must be
// bit-identical to a clean one.
func TestResetWipesPoisonedMemory(t *testing.T) {
	prog := allocBenchProg(t)
	m := residentMachine(t, prog, false)

	m.Reset()
	wantExit, err := m.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	wantStats := modelled(m.Stats)

	// Poison through the attacker's own funnel (Poke routes through
	// Store, so the write watermark sees it), at addresses far past
	// anything the program touched.
	m.Reset()
	if _, err := m.Run(); err != nil {
		t.Fatalf("victim run: %v", err)
	}
	for _, addr := range []uint64{
		HeapBase + uint64(len(m.Mem.segs[2].data)) - 8, // last heap word
		StackBase + uint64(len(m.Mem.segs[3].data)) - 8,
		GlobalsBase,
	} {
		if err := m.Mem.Poke(addr, poisonWord, 8); err != nil {
			t.Fatalf("poke %#x: %v", addr, err)
		}
	}

	m.Reset()
	for si := range m.Mem.segs {
		s := &m.Mem.segs[si]
		if s.name == "strings" {
			continue // checked against the constants below
		}
		for off, b := range s.data {
			if b != 0 {
				t.Fatalf("segment %s byte %#x = %#x after Reset, want 0", s.name, s.base+uint64(off), b)
			}
		}
	}
	for i, str := range prog.Strings {
		b, err := m.Mem.Bytes(m.img.stringAddr[i], len(str)+1)
		if err != nil {
			t.Fatalf("string %d: %v", i, err)
		}
		if string(b[:len(str)]) != str || b[len(str)] != 0 {
			t.Fatalf("string constant %d corrupted after Reset: %q", i, b)
		}
	}

	exit, err := m.Run()
	if err != nil {
		t.Fatalf("run after poisoned Reset: %v", err)
	}
	if exit != wantExit {
		t.Fatalf("exit = %d, want %d — poisoned memory leaked across Reset", exit, wantExit)
	}
	if got := modelled(m.Stats); got != wantStats {
		t.Fatalf("modelled stats diverged after poisoned Reset:\n got %+v\nwant %+v", got, wantStats)
	}
}

// BenchmarkSteadyStateRun is the -benchmem face of the allocation budget:
// allocs/op must read 0 in the bench-smoke CI leg.
func BenchmarkSteadyStateRun(b *testing.B) {
	f, err := cminor.Frontend(allocBenchSrc)
	if err != nil {
		b.Fatalf("frontend: %v", err)
	}
	lowered, err := lower.Lower(f)
	if err != nil {
		b.Fatalf("lower: %v", err)
	}
	prog, _, err := rsti.Instrument(lowered, sti.Analyze(lowered), sti.STC)
	if err != nil {
		b.Fatalf("instrument: %v", err)
	}
	for _, tier := range []bool{false, true} {
		name := "interp"
		if tier {
			name = "tier"
		}
		b.Run(name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Image = NewImage(prog)
			opts.Tier = tier
			opts.TierThreshold = testTierThreshold
			m := New(prog, opts)
			if _, err := m.Run(); err != nil {
				b.Fatalf("warmup: %v", err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Reset()
				if _, err := m.Run(); err != nil {
					b.Fatalf("run: %v", err)
				}
			}
		})
	}
}

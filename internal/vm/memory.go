package vm

import "fmt"

// Segment bases of the VM's 48-bit virtual address space. The exact values
// are arbitrary but fixed, so experiments are reproducible and addresses
// recognizable in traces.
const (
	GlobalsBase = 0x0000_1000_0000
	StringsBase = 0x0000_2000_0000
	HeapBase    = 0x0000_4000_0000
	StackBase   = 0x0000_7000_0000 // grows upward frame by frame
	FuncBase    = 0x0000_F000_0000 // function entry tokens

	// FuncStride separates function tokens so that an off-by-small
	// corruption of a code pointer never lands on another valid entry.
	FuncStride = 16
)

// Memory is the VM's flat memory: a handful of segments, each a byte
// slice. Loads and stores are bounds-checked; the attack hooks use the
// unchecked Poke/Peek to model an attacker's arbitrary-write primitive.
type Memory struct {
	segs []segment
}

type segment struct {
	name string
	base uint64
	data []byte
}

// NewMemory builds the standard segment layout.
func NewMemory(globalsSize, stringsSize, heapSize, stackSize int) *Memory {
	return &Memory{segs: []segment{
		{"globals", GlobalsBase, make([]byte, globalsSize)},
		{"strings", StringsBase, make([]byte, stringsSize)},
		{"heap", HeapBase, make([]byte, heapSize)},
		{"stack", StackBase, make([]byte, stackSize)},
	}}
}

func (m *Memory) find(addr uint64, n int) (*segment, int, error) {
	for i := range m.segs {
		s := &m.segs[i]
		if addr >= s.base && addr+uint64(n) <= s.base+uint64(len(s.data)) {
			return s, int(addr - s.base), nil
		}
	}
	return nil, 0, fmt.Errorf("address %#x (+%d) is unmapped", addr, n)
}

// Load reads n bytes (1, 2, 4 or 8) little-endian.
func (m *Memory) Load(addr uint64, n int) (uint64, error) {
	s, off, err := m.find(addr, n)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(s.data[off+i])
	}
	return v, nil
}

// Store writes n bytes little-endian.
func (m *Memory) Store(addr uint64, v uint64, n int) error {
	s, off, err := m.find(addr, n)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s.data[off+i] = byte(v >> (8 * i))
	}
	return nil
}

// Bytes returns a mutable view of [addr, addr+n).
func (m *Memory) Bytes(addr uint64, n int) ([]byte, error) {
	s, off, err := m.find(addr, n)
	if err != nil {
		return nil, err
	}
	return s.data[off : off+n], nil
}

// CString reads a NUL-terminated string.
func (m *Memory) CString(addr uint64) (string, error) {
	s, off, err := m.find(addr, 1)
	if err != nil {
		return "", err
	}
	end := off
	for end < len(s.data) && s.data[end] != 0 {
		end++
	}
	if end == len(s.data) {
		return "", fmt.Errorf("unterminated string at %#x", addr)
	}
	return string(s.data[off:end]), nil
}

// Poke is the attacker's arbitrary write: unchecked by design (the checks
// still apply — it must land in a mapped segment — but no type, bounds or
// permission discipline applies, exactly like a buffer-overflow write).
func (m *Memory) Poke(addr uint64, v uint64, n int) error { return m.Store(addr, v, n) }

// Peek is the attacker's arbitrary read.
func (m *Memory) Peek(addr uint64, n int) (uint64, error) { return m.Load(addr, n) }

package vm

import (
	"encoding/binary"
	"fmt"
)

// Segment bases of the VM's 48-bit virtual address space. The exact values
// are arbitrary but fixed, so experiments are reproducible and addresses
// recognizable in traces.
const (
	GlobalsBase = 0x0000_1000_0000
	StringsBase = 0x0000_2000_0000
	HeapBase    = 0x0000_4000_0000
	StackBase   = 0x0000_7000_0000 // grows upward frame by frame
	FuncBase    = 0x0000_F000_0000 // function entry tokens

	// FuncStride separates function tokens so that an off-by-small
	// corruption of a code pointer never lands on another valid entry.
	FuncStride = 16
)

// chunkShift carves the address space into 256 MiB chunks for O(1)
// segment dispatch: every segment base is 256 MiB-aligned and no segment
// may span past the next base, so a chunk maps to at most one segment.
const chunkShift = 28

// Memory is the VM's flat memory: a handful of segments, each a byte
// slice. Loads and stores are bounds-checked; the attack hooks use the
// unchecked Poke/Peek to model an attacker's arbitrary-write primitive.
// Segment resolution is a shift and a table index, not a scan — the
// interpreter performs one find per modelled load/store.
type Memory struct {
	segs []segment
	// byChunk maps addr>>chunkShift to the owning segment (nil = unmapped).
	byChunk []*segment
}

type segment struct {
	name string
	base uint64
	data []byte
	// hi is the write watermark: one past the highest offset any Store or
	// Bytes view has touched since the last Reset. Store and Bytes are the
	// only mutation funnels (Poke routes through Store; attack hooks and
	// builtins use Bytes), so wiping data[:hi] on Machine.Reset restores a
	// provably pristine segment at cost proportional to the bytes actually
	// dirtied, not the segment size.
	hi int
}

// NewMemory builds the standard segment layout.
func NewMemory(globalsSize, stringsSize, heapSize, stackSize int) *Memory {
	m := &Memory{segs: []segment{
		{name: "globals", base: GlobalsBase, data: make([]byte, globalsSize)},
		{name: "strings", base: StringsBase, data: make([]byte, stringsSize)},
		{name: "heap", base: HeapBase, data: make([]byte, heapSize)},
		{name: "stack", base: StackBase, data: make([]byte, stackSize)},
	}}
	var top uint64
	for _, s := range m.segs {
		if end := s.base + uint64(len(s.data)); end > top {
			top = end
		}
	}
	m.byChunk = make([]*segment, top>>chunkShift+1)
	for i := range m.segs {
		s := &m.segs[i]
		if len(s.data) == 0 {
			continue
		}
		for c := s.base >> chunkShift; c <= (s.base+uint64(len(s.data))-1)>>chunkShift; c++ {
			m.byChunk[c] = s
		}
	}
	return m
}

func (m *Memory) find(addr uint64, n int) (*segment, int, error) {
	if c := addr >> chunkShift; c < uint64(len(m.byChunk)) {
		if s := m.byChunk[c]; s != nil && addr >= s.base && addr+uint64(n) <= s.base+uint64(len(s.data)) {
			return s, int(addr - s.base), nil
		}
	}
	return nil, 0, fmt.Errorf("address %#x (+%d) is unmapped", addr, n)
}

// Load reads n bytes (1, 2, 4 or 8) little-endian.
func (m *Memory) Load(addr uint64, n int) (uint64, error) {
	s, off, err := m.find(addr, n)
	if err != nil {
		return 0, err
	}
	return loadLE(s.data[off:], n), nil
}

// loadLE reads n little-endian bytes from b (bounds already checked).
func loadLE(b []byte, n int) uint64 {
	switch n {
	case 8:
		return binary.LittleEndian.Uint64(b)
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 1:
		return uint64(b[0])
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// storeLE writes n little-endian bytes of v into b (bounds already checked).
func storeLE(b []byte, v uint64, n int) {
	switch n {
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 1:
		b[0] = byte(v)
	default:
		for i := 0; i < n; i++ {
			b[i] = byte(v >> (8 * i))
		}
	}
}

// Store writes n bytes little-endian.
func (m *Memory) Store(addr uint64, v uint64, n int) error {
	s, off, err := m.find(addr, n)
	if err != nil {
		return err
	}
	if end := off + n; end > s.hi {
		s.hi = end
	}
	storeLE(s.data[off:], v, n)
	return nil
}

// Bytes returns a mutable view of [addr, addr+n).
func (m *Memory) Bytes(addr uint64, n int) ([]byte, error) {
	s, off, err := m.find(addr, n)
	if err != nil {
		return nil, err
	}
	if end := off + n; end > s.hi {
		s.hi = end
	}
	return s.data[off : off+n], nil
}

// CString reads a NUL-terminated string.
func (m *Memory) CString(addr uint64) (string, error) {
	s, off, err := m.find(addr, 1)
	if err != nil {
		return "", err
	}
	end := off
	for end < len(s.data) && s.data[end] != 0 {
		end++
	}
	if end == len(s.data) {
		return "", fmt.Errorf("unterminated string at %#x", addr)
	}
	return string(s.data[off:end]), nil
}

// Poke is the attacker's arbitrary write: unchecked by design (the checks
// still apply — it must land in a mapped segment — but no type, bounds or
// permission discipline applies, exactly like a buffer-overflow write).
func (m *Memory) Poke(addr uint64, v uint64, n int) error { return m.Store(addr, v, n) }

// Peek is the attacker's arbitrary read.
func (m *Memory) Peek(addr uint64, n int) (uint64, error) { return m.Load(addr, n) }

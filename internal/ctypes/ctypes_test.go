package ctypes

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int
	}{
		{CharType, 1}, {BoolType, 1}, {ShortType, 2}, {IntType, 4},
		{LongType, 8}, {FloatType, 4}, {DoubleType, 8},
		{PointerTo(IntType), 8}, {PointerTo(VoidType), 8},
		{ArrayOf(IntType, 10), 40},
		{ArrayOf(PointerTo(CharType), 3), 24},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("Size(%s) = %d, want %d", c.ty, got, c.size)
		}
	}
}

func TestStructLayoutAlignment(t *testing.T) {
	tb := NewTable()
	s, err := tb.CompleteStruct("node", []Field{
		{Name: "key", Type: IntType},
		{Name: "fp", Type: PointerTo(FuncOf(IntType, nil, false))},
		{Name: "next", Type: PointerTo(tb.DeclareStruct("node"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	// int at 0, pointer aligned to 8, pointer at 16, total 24.
	wantOffsets := []int{0, 8, 16}
	for i, f := range s.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if s.Size() != 24 {
		t.Errorf("struct size = %d, want 24", s.Size())
	}
	if s.Align() != 8 {
		t.Errorf("struct align = %d, want 8", s.Align())
	}
}

func TestStructTailPadding(t *testing.T) {
	tb := NewTable()
	s, err := tb.CompleteStruct("padded", []Field{
		{Name: "p", Type: PointerTo(VoidType)},
		{Name: "c", Type: CharType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 16 {
		t.Errorf("size with tail padding = %d, want 16", s.Size())
	}
}

func TestSelfReferentialStruct(t *testing.T) {
	tb := NewTable()
	fwd := tb.DeclareStruct("list")
	if !fwd.Incomplete {
		t.Fatal("forward declaration not incomplete")
	}
	done, err := tb.CompleteStruct("list", []Field{
		{Name: "next", Type: PointerTo(fwd)},
		{Name: "val", Type: IntType},
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != fwd {
		t.Error("CompleteStruct returned a different identity than DeclareStruct")
	}
	if done.Incomplete {
		t.Error("completed struct still incomplete")
	}
	if done.Fields[0].Type.Elem != done {
		t.Error("self-reference does not point back to the same type")
	}
}

func TestStructRedefinitionRejected(t *testing.T) {
	tb := NewTable()
	if _, err := tb.CompleteStruct("s", []Field{{Name: "a", Type: IntType}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CompleteStruct("s", []Field{{Name: "b", Type: IntType}}); err == nil {
		t.Error("redefinition accepted")
	}
}

func TestEqualNominalStructs(t *testing.T) {
	tb := NewTable()
	a, _ := tb.CompleteStruct("a", []Field{{Name: "x", Type: IntType}})
	b, _ := tb.CompleteStruct("b", []Field{{Name: "x", Type: IntType}})
	if a.Equal(b) {
		t.Error("structurally identical but differently named structs compare equal")
	}
	if !PointerTo(a).Equal(PointerTo(a)) {
		t.Error("pointer to same struct not equal")
	}
}

func TestEqualQualifiers(t *testing.T) {
	cp := PointerTo(Qualified(CharType)) // const char *
	p := PointerTo(CharType)             // char *
	if cp.Equal(p) {
		t.Error("const char* compares equal to char*")
	}
	if !cp.Unqualified().Equal(cp) {
		// top-level unqualify does not touch the pointee qualifier
		t.Error("Unqualified changed a type with no top-level qualifier")
	}
	qp := Qualified(p) // char * const
	if qp.Equal(p) {
		t.Error("char* const compares equal to char*")
	}
	if !qp.Unqualified().Equal(p) {
		t.Error("Unqualified(char* const) != char*")
	}
}

func TestQualifiedIdempotent(t *testing.T) {
	q := Qualified(IntType)
	if Qualified(q) != q {
		t.Error("Qualified of a const type allocated a new type")
	}
	if IntType.Const {
		t.Error("Qualified mutated the shared singleton")
	}
}

func TestPointerDepthAndBase(t *testing.T) {
	tb := NewTable()
	n := tb.DeclareStruct("node")
	ppp := PointerTo(PointerTo(PointerTo(n)))
	if d := ppp.PointerDepth(); d != 3 {
		t.Errorf("PointerDepth = %d, want 3", d)
	}
	if ppp.BaseType() != n {
		t.Errorf("BaseType = %s, want struct node", ppp.BaseType())
	}
	if d := IntType.PointerDepth(); d != 0 {
		t.Errorf("PointerDepth(int) = %d, want 0", d)
	}
}

func TestStringRendering(t *testing.T) {
	tb := NewTable()
	node := tb.DeclareStruct("node")
	cases := []struct {
		ty   *Type
		want string
	}{
		{IntType, "int"},
		{PointerTo(VoidType), "void*"},
		{PointerTo(Qualified(CharType)), "const char*"},
		{Qualified(PointerTo(CharType)), "char* const"}, // const pointer, C placement
		{PointerTo(PointerTo(node)), "struct node**"},
		{ArrayOf(IntType, 4), "int[4]"},
		{PointerTo(FuncOf(IntType, []*Type{PointerTo(VoidType)}, false)), "int(void*)*"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestTableInterningAndIDs(t *testing.T) {
	tb := NewTable()
	a := tb.Intern(PointerTo(IntType))
	b := tb.Intern(PointerTo(IntType))
	if a != b {
		t.Error("equal types interned to different representatives")
	}
	idA := tb.ID(PointerTo(IntType))
	idB := tb.ID(PointerTo(CharType))
	if idA == idB {
		t.Error("distinct types share an ID")
	}
	if tb.ByID(idA) != a {
		t.Error("ByID does not return the interned representative")
	}
	if tb.ID(PointerTo(IntType)) != idA {
		t.Error("ID is not stable")
	}
}

func TestIDsAreDense(t *testing.T) {
	tb := NewTable()
	types := []*Type{IntType, PointerTo(IntType), PointerTo(VoidType), CharType}
	for _, ty := range types {
		tb.ID(ty)
	}
	if tb.Len() != len(types) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(types))
	}
	for i := 0; i < tb.Len(); i++ {
		if tb.ID(tb.ByID(i)) != i {
			t.Errorf("ID(ByID(%d)) = %d", i, tb.ID(tb.ByID(i)))
		}
	}
}

func TestFuncTypeEquality(t *testing.T) {
	f1 := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	f2 := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	f3 := FuncOf(IntType, []*Type{PointerTo(CharType)}, true)
	f4 := FuncOf(VoidType, []*Type{PointerTo(CharType)}, false)
	if !f1.Equal(f2) {
		t.Error("identical function types not equal")
	}
	if f1.Equal(f3) {
		t.Error("variadic mismatch compares equal")
	}
	if f1.Equal(f4) {
		t.Error("return mismatch compares equal")
	}
}

func TestFieldByName(t *testing.T) {
	tb := NewTable()
	s, _ := tb.CompleteStruct("ctx", []Field{
		{Name: "send_file", Type: PointerTo(FuncOf(VoidType, []*Type{IntType}, false))},
	})
	if f, ok := s.FieldByName("send_file"); !ok || f.Name != "send_file" {
		t.Error("FieldByName failed on existing field")
	}
	if _, ok := s.FieldByName("missing"); ok {
		t.Error("FieldByName found a missing field")
	}
}

func TestIsPredicates(t *testing.T) {
	fp := PointerTo(FuncOf(VoidType, nil, false))
	if !fp.IsPointer() || !fp.IsFuncPointer() {
		t.Error("function pointer predicates wrong")
	}
	if PointerTo(IntType).IsFuncPointer() {
		t.Error("int* classified as function pointer")
	}
	if !IntType.IsInteger() || CharType.IsPointer() {
		t.Error("integer predicates wrong")
	}
	if !DoubleType.IsScalar() || ArrayOf(IntType, 2).IsScalar() {
		t.Error("scalar predicates wrong")
	}
}

// Property: Key is injective on a generated family of types — two types
// with equal keys are Equal, and Equal types have equal keys.
func TestKeyCanonicalProperty(t *testing.T) {
	tb := NewTable()
	node := tb.DeclareStruct("n")
	leaves := []*Type{VoidType, CharType, IntType, LongType, node, Qualified(CharType)}
	build := func(seed uint64) *Type {
		t := leaves[seed%uint64(len(leaves))]
		seed /= uint64(len(leaves))
		for i := 0; i < int(seed%4); i++ {
			t = PointerTo(t)
		}
		if seed%7 == 0 {
			t = Qualified(t)
		}
		return t
	}
	f := func(a, b uint64) bool {
		ta, tc := build(a), build(b)
		return (ta.Key() == tc.Key()) == ta.Equal(tc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct field offsets respect alignment and do not overlap.
func TestStructLayoutProperty(t *testing.T) {
	elems := []*Type{CharType, ShortType, IntType, LongType, PointerTo(VoidType)}
	n := 0
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 12 {
			picks = picks[:12]
		}
		tb := NewTable()
		fields := make([]Field, len(picks))
		for i, p := range picks {
			fields[i] = Field{Name: string(rune('a' + i)), Type: elems[int(p)%len(elems)]}
		}
		n++
		s, err := tb.CompleteStruct("s", fields)
		if err != nil {
			return false
		}
		end := 0
		for _, fl := range s.Fields {
			if fl.Offset%fl.Type.Align() != 0 {
				return false
			}
			if fl.Offset < end {
				return false
			}
			end = fl.Offset + fl.Type.Size()
		}
		return s.Size() >= end && s.Size()%s.Align() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package ctypes models the C type system that STI's "programmer's intent"
// is expressed in: basic types, pointers, arrays, functions, and composite
// (struct) types, together with const qualification — the paper's
// "permission" — and the structural facts (pointer depth, element types,
// field layout) that the analysis and the VM both need.
//
// Types are plain immutable values once built. A Table interns them and
// assigns the stable small integer IDs the instrumentation uses in PAC
// modifiers and in the pointer-to-pointer Full Equivalent metadata.
package ctypes

import (
	"fmt"
	"strings"
)

// Kind discriminates the type constructors.
type Kind uint8

const (
	Void Kind = iota
	Bool
	Char
	Short
	Int
	Long
	Float
	Double
	Pointer
	Array
	Struct
	Func
)

var kindNames = map[Kind]string{
	Void: "void", Bool: "_Bool", Char: "char", Short: "short", Int: "int",
	Long: "long", Float: "float", Double: "double",
}

// Field is one member of a composite type.
type Field struct {
	Name   string
	Type   *Type
	Offset int // byte offset within the struct
}

// Type is a C type. Exactly the fields relevant to its Kind are set.
// Types are immutable after construction; the shared leaves created by the
// constructors below may be referenced from many places.
type Type struct {
	Kind  Kind
	Const bool // the paper's "permission": const = read-only

	Elem *Type // Pointer, Array
	Len  int   // Array

	Name       string // Struct tag (nominal identity)
	Fields     []Field
	Incomplete bool // forward-declared struct whose fields are not known yet

	Ret      *Type   // Func
	Params   []*Type // Func
	Variadic bool    // Func
}

// Basic type singletons (unqualified).
var (
	VoidType   = &Type{Kind: Void}
	BoolType   = &Type{Kind: Bool}
	CharType   = &Type{Kind: Char}
	ShortType  = &Type{Kind: Short}
	IntType    = &Type{Kind: Int}
	LongType   = &Type{Kind: Long}
	FloatType  = &Type{Kind: Float}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns the type "elem *".
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns the type "elem[n]".
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncOf returns the function type ret(params...).
func FuncOf(ret *Type, params []*Type, variadic bool) *Type {
	return &Type{Kind: Func, Ret: ret, Params: params, Variadic: variadic}
}

// Qualified returns t with the const qualifier applied (a shallow copy; t
// itself is never mutated).
func Qualified(t *Type) *Type {
	if t.Const {
		return t
	}
	q := *t
	q.Const = true
	return &q
}

// Unqualified returns t without its top-level const qualifier.
func (t *Type) Unqualified() *Type {
	if !t.Const {
		return t
	}
	u := *t
	u.Const = false
	return &u
}

// Size returns the byte size under the model's LP64 layout (pointers and
// long are 8 bytes, int 4, short 2, char/bool 1, float 4, double 8).
func (t *Type) Size() int {
	switch t.Kind {
	case Void:
		return 1 // as GCC does for arithmetic on void*
	case Bool, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Long, Double, Pointer, Func:
		return 8
	case Array:
		return t.Len * t.Elem.Size()
	case Struct:
		if len(t.Fields) == 0 {
			return 0
		}
		last := t.Fields[len(t.Fields)-1]
		size := last.Offset + last.Type.Size()
		a := t.Align()
		return (size + a - 1) / a * a
	}
	panic(fmt.Sprintf("ctypes: Size of unknown kind %d", t.Kind))
}

// Align returns the natural alignment.
func (t *Type) Align() int {
	switch t.Kind {
	case Array:
		return t.Elem.Align()
	case Struct:
		a := 1
		for _, f := range t.Fields {
			if fa := f.Type.Align(); fa > a {
				a = fa
			}
		}
		return a
	default:
		return t.Size()
	}
}

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == Pointer }

// IsFuncPointer reports whether t is a pointer to a function.
func (t *Type) IsFuncPointer() bool { return t.Kind == Pointer && t.Elem.Kind == Func }

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Bool, Char, Short, Int, Long:
		return true
	}
	return false
}

// IsScalar reports whether t fits in a single VM register slot.
func (t *Type) IsScalar() bool {
	return t.IsInteger() || t.Kind == Pointer || t.Kind == Float || t.Kind == Double
}

// PointerDepth returns how many pointer layers wrap the base type:
// 0 for int, 1 for int*, 2 for int**, ...
func (t *Type) PointerDepth() int {
	d := 0
	for t.Kind == Pointer {
		d++
		t = t.Elem
	}
	return d
}

// BaseType strips all pointer layers: BaseType of int** is int.
func (t *Type) BaseType() *Type {
	for t.Kind == Pointer {
		t = t.Elem
	}
	return t
}

// FieldByName returns the field and true if the struct has it.
func (t *Type) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Equal reports type identity: structural for derived types, nominal for
// structs (as in C, two struct types are the same only if they are the
// same declaration).
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind || t.Const != o.Const {
		return false
	}
	switch t.Kind {
	case Pointer:
		return t.Elem.Equal(o.Elem)
	case Array:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	case Struct:
		return t.Name == o.Name
	case Func:
		if !t.Ret.Equal(o.Ret) || len(t.Params) != len(o.Params) || t.Variadic != o.Variadic {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Key returns a canonical string that is equal exactly for Equal types;
// the Table uses it for interning.
func (t *Type) Key() string {
	var b strings.Builder
	t.writeKey(&b)
	return b.String()
}

func (t *Type) writeKey(b *strings.Builder) {
	// A const-qualified pointer renders as "T* const" (C's placement),
	// keeping it distinct from "const T*" (pointer to const T) — the two
	// differ in Equal and must differ in Key.
	if t.Const && t.Kind != Pointer {
		b.WriteString("const ")
	}
	switch t.Kind {
	case Pointer:
		t.Elem.writeKey(b)
		b.WriteByte('*')
		if t.Const {
			b.WriteString(" const")
		}
	case Array:
		t.Elem.writeKey(b)
		fmt.Fprintf(b, "[%d]", t.Len)
	case Struct:
		b.WriteString("struct ")
		b.WriteString(t.Name)
	case Func:
		t.Ret.writeKey(b)
		b.WriteByte('(')
		for i, p := range t.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			p.writeKey(b)
		}
		if t.Variadic {
			b.WriteString(",...")
		}
		b.WriteByte(')')
	default:
		b.WriteString(kindNames[t.Kind])
	}
}

// String renders the type in C-like syntax.
func (t *Type) String() string { return t.Key() }

// Table interns types and assigns stable integer IDs, and owns the struct
// namespace (nominal struct identity requires a single registry).
type Table struct {
	structs map[string]*Type
	byKey   map[string]*Type
	ids     map[string]int
	ordered []*Type
}

// NewTable returns an empty type table.
func NewTable() *Table {
	return &Table{
		structs: make(map[string]*Type),
		byKey:   make(map[string]*Type),
		ids:     make(map[string]int),
	}
}

// DeclareStruct registers (or returns the existing) struct with the given
// tag. The returned type starts incomplete; call CompleteStruct to attach
// fields. This two-step protocol supports self-referential types such as
// struct node { struct node *next; }.
func (tb *Table) DeclareStruct(name string) *Type {
	if s, ok := tb.structs[name]; ok {
		return s
	}
	s := &Type{Kind: Struct, Name: name, Incomplete: true}
	tb.structs[name] = s
	tb.Intern(s)
	return s
}

// CompleteStruct lays out the fields of a declared struct with natural
// alignment and marks it complete. It returns an error if the struct was
// already completed with different fields.
func (tb *Table) CompleteStruct(name string, fields []Field) (*Type, error) {
	s, ok := tb.structs[name]
	if !ok {
		s = tb.DeclareStruct(name)
	}
	if !s.Incomplete {
		return nil, fmt.Errorf("ctypes: struct %s redefined", name)
	}
	off := 0
	laid := make([]Field, len(fields))
	for i, f := range fields {
		a := f.Type.Align()
		off = (off + a - 1) / a * a
		laid[i] = Field{Name: f.Name, Type: f.Type, Offset: off}
		off += f.Type.Size()
	}
	s.Fields = laid
	s.Incomplete = false
	return s, nil
}

// Struct returns the registered struct type, if any.
func (tb *Table) Struct(name string) (*Type, bool) {
	s, ok := tb.structs[name]
	return s, ok
}

// RenameStruct gives a registered struct a new tag, keeping the old name
// as an alias. The parser uses it to adopt a typedef's name for an
// anonymous struct ("typedef struct { ... } ctx;"), so diagnostics, debug
// metadata and analyses see "ctx" rather than a placeholder.
func (tb *Table) RenameStruct(old, new string) {
	s, ok := tb.structs[old]
	if !ok || new == "" || old == new {
		return
	}
	if _, taken := tb.structs[new]; taken {
		return
	}
	s.Name = new
	tb.structs[new] = s
}

// Intern canonicalizes t and assigns it an ID if it is new. Two Equal
// types intern to the same representative.
func (tb *Table) Intern(t *Type) *Type {
	k := t.Key()
	if c, ok := tb.byKey[k]; ok {
		return c
	}
	tb.byKey[k] = t
	tb.ids[k] = len(tb.ordered)
	tb.ordered = append(tb.ordered, t)
	return t
}

// ID returns the stable small integer ID for t, interning it if needed.
func (tb *Table) ID(t *Type) int {
	k := t.Key()
	if id, ok := tb.ids[k]; ok {
		return id
	}
	tb.Intern(t)
	return tb.ids[k]
}

// ByID returns the type with the given ID.
func (tb *Table) ByID(id int) *Type { return tb.ordered[id] }

// StructsByName returns a copy of the struct registry (tag → type), for
// serializers that must persist nominal identity. The Type pointers are
// shared with the table.
func (tb *Table) StructsByName() map[string]*Type {
	out := make(map[string]*Type, len(tb.structs))
	for k, v := range tb.structs {
		out[k] = v
	}
	return out
}

// RestoreTable rebuilds a Table from previously captured state: the
// struct registry and the interned types in their original ID order. The
// IDs a restored table assigns are exactly the captured ones — essential
// for deserialized programs, whose PAC modifiers embed type IDs — and
// types interned after restoration continue the sequence deterministically.
func RestoreTable(structs map[string]*Type, ordered []*Type) *Table {
	tb := NewTable()
	for k, v := range structs {
		tb.structs[k] = v
	}
	for _, t := range ordered {
		tb.Intern(t)
	}
	return tb
}

// Len returns the number of interned types.
func (tb *Table) Len() int { return len(tb.ordered) }

// All returns the interned types in ID order. The slice is shared; do not
// modify it.
func (tb *Table) All() []*Type { return tb.ordered }

// Attack synthesis: the generalization of the hand-written corruption
// variants. Instead of asserting a fixed list of tampers, the synthesizer
// derives candidate minimal tampers from the compiled program itself —
// same-class substitution, same-type cross-scope replay, raw-pointer
// overwrite, and corruption of an elidable local — predicts each one's
// detect/miss outcome per mechanism from the STI analysis (modifier
// equality plus location binding), and then *executes* every tamper
// through the VM to confirm the prediction. Every mechanism's blind spots
// are thereby machine-enumerated: a same-class replay is confirmed missed
// by everything below STL, a cross-scope replay confirmed missed by the
// type-only baseline, and the elidable-local corruption confirmed missed
// by all mechanisms because the freshly-stored rule the elision optimizer
// relies on overwrites the corruption before it can be read back.
package attack

import (
	"fmt"
	"sort"
	"strings"

	"rsti/internal/core"
	"rsti/internal/mir"
	"rsti/internal/opt"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// SynthOptions configures one synthesis pass.
type SynthOptions struct {
	// MaxPerFamily caps the tampers executed per family (the candidate
	// space is quadratic in globals). Zero means 3.
	MaxPerFamily int
	// MaxLiveProbes caps the STL liveness probes used to establish which
	// globals are authenticated after the hook site. Zero means 12.
	MaxLiveProbes int
	// StepBudget bounds each run's modelled steps (zero: VM default).
	StepBudget int64
	// Optimize selects the build the replay/raw tampers execute against.
	// The zero value inherits the process default (RSTI_OPT). The
	// elided-local family always runs both forced modes: its miss
	// guarantee is precisely an optimizer-safety claim.
	Optimize core.OptimizeMode
}

// synthMechs is the execution matrix; the five signing mechanisms after
// None are the ones predictions and coverage counters are keyed by.
var synthMechs = []sti.Mechanism{sti.None, sti.PARTS, sti.STWC, sti.STC, sti.Adaptive, sti.STL}

// SigningMechs lists the mechanisms that sign pointers — the keys of a
// SynthReport's coverage counters.
var SigningMechs = []sti.Mechanism{sti.PARTS, sti.STWC, sti.STC, sti.Adaptive, sti.STL}

// SynthTamper is one derived minimal corruption.
type SynthTamper struct {
	// Family is "replay-same-class", "replay-cross-scope",
	// "raw-overwrite" or "elided-local".
	Family string `json:"family"`
	// Src/Dst name the globals involved (Src empty for raw overwrites).
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Var names the corrupted local for the elided-local family.
	Var string `json:"var,omitempty"`
	// Predicted maps mechanism name to the analysis-derived expectation:
	// true = the mechanism must trap this corruption, false = it provably
	// cannot distinguish it.
	Predicted map[string]bool `json:"predicted"`
}

func (t SynthTamper) String() string {
	switch t.Family {
	case "raw-overwrite":
		return fmt.Sprintf("%s(%s)", t.Family, t.Dst)
	case "elided-local":
		return fmt.Sprintf("%s(%s)", t.Family, t.Var)
	default:
		return fmt.Sprintf("%s(%s->%s)", t.Family, t.Src, t.Dst)
	}
}

// SynthResult is one executed tamper with its observed outcomes.
type SynthResult struct {
	Tamper SynthTamper `json:"tamper"`
	// Detected maps mechanism name to the observed security-trap outcome.
	Detected map[string]bool `json:"detected"`
	// Confirmed reports that every mechanism behaved exactly as
	// predicted, detection was monotone along the lattice, and undetected
	// runs stayed clean and baseline-equivalent.
	Confirmed bool `json:"confirmed"`
	// Problems lists every violated expectation (empty when Confirmed).
	Problems []string `json:"problems,omitempty"`
}

// SynthReport is the full outcome of one synthesis pass.
type SynthReport struct {
	Tampers []SynthResult `json:"tampers"`
	// ConfirmedDetect / ConfirmedMiss count, per signing mechanism, the
	// executed-and-confirmed tampers the mechanism caught / provably
	// missed — the machine-enumerated coverage and blind-spot surface.
	ConfirmedDetect map[string]int `json:"confirmed_detect"`
	ConfirmedMiss   map[string]int `json:"confirmed_miss"`
	// Problems aggregates every tamper's violations plus pass-level
	// failures (e.g. no authenticated post-hook global to attack).
	Problems []string `json:"problems,omitempty"`
}

// Confirmed counts the fully confirmed tampers.
func (r *SynthReport) Confirmed() int {
	n := 0
	for _, t := range r.Tampers {
		if t.Confirmed {
			n++
		}
	}
	return n
}

// synthOutcome is the behavioral fingerprint compared across runs.
type synthOutcome struct {
	Detected bool
	Clean    bool
	TrapKind string
	Exit     int64
	Output   string
}

func (o synthOutcome) String() string {
	status := "clean"
	if !o.Clean {
		status = "trap:" + o.TrapKind
	}
	return fmt.Sprintf("exit=%d %s", o.Exit, status)
}

// globalCandidate is one global pointer slot the synthesizer may involve
// in a tamper.
type globalCandidate struct {
	Var  int // VarInfo index
	Name string
	RT   int // RSTI-type ID
}

// Synthesize derives, predicts and executes the tamper set for a compiled
// program. The returned error reports infrastructure failures only;
// violated predictions are Problems in the report.
func Synthesize(c *core.Compilation, o SynthOptions) (*SynthReport, error) {
	if o.MaxPerFamily <= 0 {
		o.MaxPerFamily = 3
	}
	if o.MaxLiveProbes <= 0 {
		o.MaxLiveProbes = 12
	}
	rep := &SynthReport{
		ConfirmedDetect: make(map[string]int),
		ConfirmedMiss:   make(map[string]int),
	}
	an := c.Analysis

	hookFn := findHookFn(c.Prog)
	if hookFn == "" {
		return nil, fmt.Errorf("attack: program has no __hook site to synthesize at")
	}

	// Candidate globals: every global pointer slot with an interned
	// RSTI-type, in declaration order for determinism.
	var cands []globalCandidate
	for i, v := range c.Prog.Vars {
		if v.Global && v.Type.IsPointer() && an.VarRT[i] >= 0 {
			cands = append(cands, globalCandidate{Var: i, Name: v.Name, RT: an.VarRT[i]})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Var < cands[j].Var })

	run := func(mech sti.Mechanism, hook vm.Hook, mode core.OptimizeMode) (synthOutcome, error) {
		cfg := core.RunConfig{StepBudget: o.StepBudget, Optimize: mode}
		if hook != nil {
			cfg.Hooks = map[int64]vm.Hook{1: hook}
		}
		res, err := c.Run(mech, cfg)
		if err != nil {
			return synthOutcome{}, err
		}
		out := synthOutcome{
			Detected: res.Detected(),
			Clean:    res.Err == nil,
			Exit:     res.Exit,
			Output:   res.Output,
		}
		if res.Trap != nil {
			out.TrapKind = res.Trap.Kind.String()
		}
		return out, nil
	}

	// Probe pass: record each candidate slot's value at the hook site on
	// the unprotected baseline. A non-zero canonical value means the slot
	// was stored (signed, under a signing mechanism) before the hook — a
	// usable replay source and a meaningful overwrite target.
	armed := make(map[string]bool)
	probe := func(m *vm.Machine) error {
		for _, g := range cands {
			addr, ok := m.GlobalAddr(g.Name)
			if !ok {
				continue
			}
			v, err := m.Mem.Peek(addr, 8)
			if err != nil {
				return err
			}
			if m.Unit.Canonical(v) != 0 {
				armed[g.Name] = true
			}
		}
		return nil
	}
	if _, err := run(sti.None, probe, o.Optimize); err != nil {
		return nil, fmt.Errorf("attack: synthesis probe: %w", err)
	}

	// Liveness pass: a tamper is only predictable when the victim slot is
	// authenticated after the hook on the execution path actually taken.
	// A raw overwrite under STL is the direct experiment: detection iff
	// some post-hook load authenticates the slot.
	live := make(map[string]bool)
	probes := 0
	for _, g := range cands {
		if !armed[g.Name] || probes >= o.MaxLiveProbes {
			continue
		}
		probes++
		out, err := run(sti.STL, rawOverwriteHook(g.Name), o.Optimize)
		if err != nil {
			return nil, fmt.Errorf("attack: liveness probe %s: %w", g.Name, err)
		}
		live[g.Name] = out.Detected
	}

	// Derive the tamper set.
	var tampers []tamperPlan
	tampers = append(tampers, rawTampers(cands, live, o.MaxPerFamily)...)
	tampers = append(tampers, replayTampers(c, cands, armed, live, o.MaxPerFamily)...)
	tampers = append(tampers, elidedTampers(c, hookFn, o.MaxPerFamily)...)
	if len(tampers) == 0 {
		rep.Problems = append(rep.Problems, "no executable tamper derived: no authenticated post-hook pointer slot")
		return rep, nil
	}

	// Benign references per (mechanism, optimize mode), computed lazily.
	type benignKey struct {
		mech sti.Mechanism
		mode core.OptimizeMode
	}
	benigns := make(map[benignKey]synthOutcome)
	benign := func(mech sti.Mechanism, mode core.OptimizeMode) (synthOutcome, error) {
		k := benignKey{mech, mode}
		if out, ok := benigns[k]; ok {
			return out, nil
		}
		out, err := run(mech, nil, mode)
		if err == nil {
			benigns[k] = out
		}
		return out, err
	}

	// Execute. The elided-local family runs both forced optimizer modes;
	// the others run the configured mode.
	for _, plan := range tampers {
		modes := []core.OptimizeMode{o.Optimize}
		if plan.BothOptModes {
			modes = []core.OptimizeMode{core.OptimizeOff, core.OptimizeOn}
		}
		result := SynthResult{
			Tamper:   plan.Tamper,
			Detected: make(map[string]bool),
		}
		for _, mode := range modes {
			outs := make(map[string]synthOutcome, len(synthMechs))
			for _, mech := range synthMechs {
				out, err := run(mech, plan.Hook, mode)
				if err != nil {
					return nil, fmt.Errorf("attack: %s under %s: %w", plan.Tamper, mech, err)
				}
				outs[mech.String()] = out
				result.Detected[mech.String()] = result.Detected[mech.String()] || out.Detected
			}
			checkTamper(&result, plan, outs, func(mech sti.Mechanism) (synthOutcome, error) {
				return benign(mech, mode)
			})
		}
		result.Confirmed = len(result.Problems) == 0
		if result.Confirmed {
			for _, mech := range SigningMechs {
				name := mech.String()
				if plan.Tamper.Predicted[name] {
					rep.ConfirmedDetect[name]++
				} else {
					rep.ConfirmedMiss[name]++
				}
			}
		}
		rep.Tampers = append(rep.Tampers, result)
		for _, p := range result.Problems {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: %s", plan.Tamper, p))
		}
	}
	return rep, nil
}

// tamperPlan couples a tamper with its executable hook.
type tamperPlan struct {
	Tamper SynthTamper
	Hook   vm.Hook
	// BenignEquivalent: undetected runs must reproduce the *benign*
	// outcome (the corruption is provably neutralized), not merely the
	// baseline's attacked outcome.
	BenignEquivalent bool
	// BothOptModes forces execution under optimizer off and on.
	BothOptModes bool
}

// checkTamper validates one mode's outcome matrix against the prediction,
// the detection-monotonicity lattice, and the clean-miss requirements.
func checkTamper(result *SynthResult, plan tamperPlan, outs map[string]synthOutcome, benign func(sti.Mechanism) (synthOutcome, error)) {
	addProblem := func(format string, args ...interface{}) {
		result.Problems = append(result.Problems, fmt.Sprintf(format, args...))
	}

	// Prediction: every signing mechanism must match; the baseline must
	// never security-trap.
	if outs["none"].Detected {
		addProblem("unprotected baseline security-trapped: %s", outs["none"])
	}
	for _, mech := range SigningMechs {
		name := mech.String()
		want := plan.Tamper.Predicted[name]
		if got := outs[name].Detected; got != want {
			addProblem("%s: predicted detect=%v, observed detect=%v (%s)", name, want, got, outs[name])
		}
	}

	// Monotone detection along STC => STWC => Adaptive => STL (and the
	// PARTS => STWC baseline edge).
	for _, ord := range [][2]string{
		{"rsti-stc", "rsti-stwc"},
		{"parts", "rsti-stwc"},
		{"rsti-stwc", "rsti-adaptive"},
		{"rsti-adaptive", "rsti-stl"},
	} {
		if outs[ord[0]].Detected && !outs[ord[1]].Detected {
			addProblem("detection not monotone: %s detected but %s did not", ord[0], ord[1])
		}
	}

	// An undetected corruption must not crash some other way, and must be
	// observationally equal to the reference: the baseline's attacked run
	// in general, the benign run when the tamper is provably neutralized.
	base := outs["none"]
	for _, mech := range synthMechs {
		name := mech.String()
		out := outs[name]
		if out.Detected {
			continue
		}
		if !out.Clean {
			addProblem("%s: non-security trap on undetected corruption: %s", name, out)
			continue
		}
		ref := base
		if plan.BenignEquivalent {
			b, err := benign(mech)
			if err != nil {
				addProblem("%s: benign reference failed: %v", name, err)
				continue
			}
			ref = b
		}
		if out.Exit != ref.Exit || out.Output != ref.Output {
			addProblem("%s: undetected corruption diverges from reference: %s vs %s", name, out, ref)
		}
	}
}

// findHookFn returns the name of the function containing a __hook call.
func findHookFn(p *mir.Program) string {
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if in.Op == mir.CallOp && in.Callee == "__hook" {
					return f.Name
				}
			}
		}
	}
	return ""
}

// rawTampers derives the raw-overwrite family: each live slot's signed
// value is replaced by its canonical (signature-stripped) address — the
// write an arbitrary-write attacker without the signing key can forge.
// Every signing mechanism must trap the next authentication.
func rawTampers(cands []globalCandidate, live map[string]bool, max int) []tamperPlan {
	var plans []tamperPlan
	for _, g := range cands {
		if !live[g.Name] || len(plans) >= max {
			continue
		}
		predicted := map[string]bool{"none": false}
		for _, mech := range SigningMechs {
			predicted[mech.String()] = true
		}
		plans = append(plans, tamperPlan{
			Tamper: SynthTamper{Family: "raw-overwrite", Dst: g.Name, Predicted: predicted},
			Hook:   rawOverwriteHook(g.Name),
		})
	}
	return plans
}

// replayTampers derives both replay families over the armed-source ×
// live-destination pairs. The prediction is uniform and purely static: a
// replayed signed value authenticates in the destination exactly when the
// two slots share a static modifier and neither binds its location.
func replayTampers(c *core.Compilation, cands []globalCandidate, armed, live map[string]bool, max int) []tamperPlan {
	an := c.Analysis
	nSame, nCross := 0, 0
	var plans []tamperPlan
	for _, src := range cands {
		for _, dst := range cands {
			if src.Var == dst.Var || !armed[src.Name] || !live[dst.Name] {
				continue
			}
			sameRT := src.RT == dst.RT
			sameTy := an.Types[src.RT].Type.Unqualified().Key() == an.Types[dst.RT].Type.Unqualified().Key()
			family := ""
			switch {
			case sameRT && nSame < max:
				family = "replay-same-class"
				nSame++
			case !sameRT && sameTy && nCross < max:
				family = "replay-cross-scope"
				nCross++
			default:
				continue
			}
			predicted := map[string]bool{"none": false}
			for _, mech := range SigningMechs {
				predicted[mech.String()] =
					an.Modifier(src.RT, mech) != an.Modifier(dst.RT, mech) ||
						an.UsesLocation(src.RT, mech) ||
						an.UsesLocation(dst.RT, mech)
			}
			plans = append(plans, tamperPlan{
				Tamper: SynthTamper{Family: family, Src: src.Name, Dst: dst.Name, Predicted: predicted},
				Hook:   replayValue(global(src.Name), global(dst.Name)),
			})
		}
	}
	return plans
}

// elidedTampers derives the elided-local family: corrupt a local pointer
// the PAC-elision optimizer certifies as freshly-stored. The freshness
// rule — every load preceded by a store after the most recent call, and
// corruption hooks only run inside calls — means the corrupted slot value
// is overwritten before the program can read it back, so the tamper is
// provably neutralized: every mechanism misses it AND the run reproduces
// the benign outcome bit-for-bit, under both optimizer modes. A weakened
// elision rule would surface here as an undetected divergence.
func elidedTampers(c *core.Compilation, hookFn string, max int) []tamperPlan {
	elidable := opt.ElidableVars(c.Prog, c.Analysis)
	predicted := map[string]bool{"none": false}
	for _, mech := range SigningMechs {
		predicted[mech.String()] = false
	}
	var plans []tamperPlan
	for i, v := range c.Prog.Vars {
		if len(plans) >= max {
			break
		}
		if v.DeclFn != hookFn || !elidable[i] || !v.Type.IsPointer() {
			continue
		}
		plans = append(plans, tamperPlan{
			Tamper:           SynthTamper{Family: "elided-local", Var: v.Name, Predicted: predicted},
			Hook:             elidedLocalHook(hookFn, v.Name),
			BenignEquivalent: true,
			BothOptModes:     true,
		})
	}
	return plans
}

// rawOverwriteHook strips the signature off a global slot's value.
func rawOverwriteHook(name string) vm.Hook {
	return func(m *vm.Machine) error {
		addr, ok := m.GlobalAddr(name)
		if !ok {
			return fmt.Errorf("attack: no global %q", name)
		}
		v, err := m.Mem.Peek(addr, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(addr, m.Unit.Canonical(v), 8)
	}
}

// elidedLocalHook corrupts a stack local's slot with a forged raw
// pointer (the current value's canonical address, skewed).
func elidedLocalHook(fn, name string) vm.Hook {
	return func(m *vm.Machine) error {
		addr, ok := m.VarAddr(fn, name)
		if !ok {
			return fmt.Errorf("attack: no live local %s.%s", fn, name)
		}
		v, err := m.Mem.Peek(addr, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(addr, m.Unit.Canonical(v)+0x40, 8)
	}
}

// Families lists the tamper families a report covered (sorted).
func (r *SynthReport) Families() []string {
	seen := make(map[string]bool)
	for _, t := range r.Tampers {
		seen[t.Tamper.Family] = true
	}
	fams := make([]string, 0, len(seen))
	for f := range seen {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	return fams
}

// Summary renders a one-line digest.
func (r *SynthReport) Summary() string {
	return fmt.Sprintf("%d tampers (%s), %d confirmed, %d problems",
		len(r.Tampers), strings.Join(r.Families(), ", "), r.Confirmed(), len(r.Problems))
}

package attack

import (
	"fmt"
	"strings"

	"rsti/internal/core"
	"rsti/internal/sti"
)

// CorruptedRef names the program entity the scenario corrupts, so the
// Table 1 "original scope-type information" column can be *measured* from
// the STI analysis rather than transcribed.
type CorruptedRef struct {
	// Struct/Field for composite members (c->send_chain, tif->tif_encoderow, ...).
	Struct, Field string
	// Global for globals (ServerName).
	Global string
}

// corruptedRefs maps scenario names to their corrupted entity. (Kept out
// of the Scenario literals so the attack definitions stay focused on the
// exploit mechanics.)
var corruptedRefs = map[string]CorruptedRef{
	"NEWTON CsCFI attack":     {Struct: "ngx_connection", Field: "send_chain"},
	"AOCR NGINX Attack 1":     {Struct: "ngx_task", Field: "handler"},
	"AOCR NGINX Attack 2":     {Struct: "ngx_log", Field: "handler"},
	"AOCR Apache Attack":      {Struct: "sed_eval", Field: "errfn"},
	"Control Jujutsu NGINX":   {Struct: "chain_ctx", Field: "output_filter"},
	"CVE-2015-8668 (libtiff)": {Struct: "tiff", Field: "tif_encoderow"},
	"CVE-2014-1912 (CPython)": {Struct: "PyTypeObject", Field: "tp_hash"},
	"COOP REC-G":              {Struct: "X", Field: "unref"},
	"COOP ML-G":               {Struct: "Student", Field: "decCourseCount"},
	"PittyPat COOP Attack":    {Struct: "Student", Field: "registration"},
	"DOP ProFTPd Attack":      {Global: "ServerName"},
	"NEWTON CPI Attack":       {Struct: "ngx_variable", Field: "get_handler"},
}

// MeasuredRSTIType compiles the victim and returns the analysis's view of
// the corrupted pointer's RSTI-type — the reproduced version of Table 1's
// "original scope-type information" column.
func (s *Scenario) MeasuredRSTIType() (*sti.RSTIType, error) {
	ref, ok := corruptedRefs[s.Name]
	if !ok {
		return nil, fmt.Errorf("attack: no corrupted-entity reference for %q", s.Name)
	}
	c, err := core.Compile(s.Source)
	if err != nil {
		return nil, err
	}
	an := c.Analysis
	if ref.Global != "" {
		for i, v := range c.Prog.Vars {
			if v.Global && v.Name == ref.Global {
				if id := an.VarRT[i]; id >= 0 {
					return an.Types[id], nil
				}
			}
		}
		return nil, fmt.Errorf("attack: global %q has no RSTI-type", ref.Global)
	}
	st, ok := c.Prog.Types.Struct(ref.Struct)
	if !ok {
		return nil, fmt.Errorf("attack: struct %q not in victim", ref.Struct)
	}
	for idx, f := range st.Fields {
		if f.Name == ref.Field {
			if id, ok := an.FieldRT[sti.FieldKey{Struct: ref.Struct, Field: idx}]; ok {
				return an.Types[id], nil
			}
		}
	}
	return nil, fmt.Errorf("attack: field %s.%s has no RSTI-type", ref.Struct, ref.Field)
}

// ScopeContains reports whether the measured scope includes the named
// function or composite.
func ScopeContains(rt *sti.RSTIType, name string) bool {
	for _, s := range rt.Scope {
		if s == name || strings.HasSuffix(s, " "+name) {
			return true
		}
	}
	return false
}

package attack

import (
	"strings"
	"testing"

	"rsti/internal/sti"
)

// TestTable1AllAttacksDetected is the headline security result: every
// attack in Table 1 succeeds on the uninstrumented baseline and is
// detected by every RSTI mechanism.
func TestTable1AllAttacksDetected(t *testing.T) {
	for _, s := range Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			base, err := s.Run(sti.None)
			if err != nil {
				t.Fatal(err)
			}
			if !base.Succeeded {
				t.Fatalf("attack does not work on the baseline: exit=%d err=%v", base.Exit, base.Err)
			}
			if base.Detected {
				t.Fatal("baseline reported a detection (it has no defense)")
			}
			for _, mech := range sti.RSTIMechanisms {
				out, err := s.Run(mech)
				if err != nil {
					t.Fatal(err)
				}
				if !out.Detected {
					t.Errorf("%s: attack not detected (exit=%d err=%v)", mech, out.Exit, out.Err)
				}
				if out.Succeeded {
					t.Errorf("%s: attack succeeded despite instrumentation", mech)
				}
			}
		})
	}
}

// TestTable1NoFalsePositives verifies every victim program runs benignly
// (unattacked) under every mechanism with its expected exit status.
func TestTable1NoFalsePositives(t *testing.T) {
	for _, s := range Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			for _, mech := range sti.Mechanisms {
				out, err := s.RunBenign(mech)
				if err != nil {
					t.Fatal(err)
				}
				if out.Err != nil {
					t.Errorf("%s: benign run trapped: %v", mech, out.Err)
					continue
				}
				if out.Exit != s.BenignExit {
					t.Errorf("%s: benign exit = %d, want %d", mech, out.Exit, s.BenignExit)
				}
			}
		})
	}
}

// TestPARTSComparison reproduces the paper's §6.1.2 comparison: PARTS
// misses exactly the attacks whose corrupted and original pointers share a
// basic type (the DOP ProFTPd and PittyPat examples among them) and
// catches the rest.
func TestPARTSComparison(t *testing.T) {
	missed := map[string]bool{}
	for _, s := range Scenarios() {
		out, err := s.Run(sti.PARTS)
		if err != nil {
			t.Fatal(err)
		}
		if out.Detected != s.PARTSDetects {
			t.Errorf("%s: PARTS detected=%v, expected %v (exit=%d err=%v)",
				s.Name, out.Detected, s.PARTSDetects, out.Exit, out.Err)
		}
		if !out.Detected {
			missed[s.Name] = true
			if !out.Succeeded {
				t.Errorf("%s: PARTS failed to detect yet the attack did not succeed", s.Name)
			}
		}
	}
	// The paper's two named PARTS bypasses must be among the misses.
	for _, name := range []string{"DOP ProFTPd Attack", "PittyPat COOP Attack"} {
		if !missed[name] {
			t.Errorf("%s: expected to bypass PARTS", name)
		}
	}
}

// TestScenarioMetadataComplete keeps the Table 1 rendering honest.
func TestScenarioMetadataComplete(t *testing.T) {
	seen := map[string]bool{}
	categories := map[string]int{}
	for _, s := range Scenarios() {
		if s.Name == "" || s.Corrupted == "" || s.Target == "" || s.OriginalInfo == "" {
			t.Errorf("scenario %q has empty metadata", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		categories[s.Category]++
	}
	if len(seen) != 12 {
		t.Errorf("scenario count = %d, want 12", len(seen))
	}
	if categories["control-flow hijacking"] != 10 || categories["data-oriented"] != 2 {
		t.Errorf("category split = %v, want 10 hijacking + 2 data-oriented", categories)
	}
}

// TestSTLDetectsEverythingSTWCDoes is a monotonicity check across the
// suite: STL's location binding is strictly stronger.
func TestSTLMonotonicity(t *testing.T) {
	for _, s := range Scenarios() {
		stwc, err := s.Run(sti.STWC)
		if err != nil {
			t.Fatal(err)
		}
		stl, err := s.Run(sti.STL)
		if err != nil {
			t.Fatal(err)
		}
		if stwc.Detected && !stl.Detected {
			t.Errorf("%s: STWC detects but STL does not", s.Name)
		}
	}
}

// TestMeasuredScopeTypeMatchesTable1 reproduces Table 1's "original
// scope-type information" column from the analysis itself: each corrupted
// pointer's measured RSTI-type must have the right basic type shape and a
// scope covering the functions the paper lists.
func TestMeasuredScopeTypeMatchesTable1(t *testing.T) {
	expectations := map[string]struct {
		typeContains string
		scopeHas     []string
	}{
		"NEWTON CsCFI attack":     {"(long)", []string{"ngx_http_write_filter", "ngx_connection"}},
		"AOCR NGINX Attack 1":     {"void(void*)", []string{"ngx_thread_pool_cycle", "ngx_task"}},
		"AOCR NGINX Attack 2":     {"void(char*)", []string{"ngx_log_set_levels", "ngx_log"}},
		"AOCR Apache Attack":      {"void(int)", []string{"sed_reset_eval", "eval_errf", "sed_eval"}},
		"Control Jujutsu NGINX":   {"int(void*)", []string{"ngx_output_chain", "chain_ctx"}},
		"CVE-2015-8668 (libtiff)": {"int(", []string{"_TIFFSetDefaultCompressionState", "TIFFWriteScanline", "tiff"}},
		"CVE-2014-1912 (CPython)": {"long(long)", []string{"inherit_slots", "PyObject_Hash", "PyTypeObject"}},
		"COOP REC-G":              {"void()", []string{"release", "X"}},
		"COOP ML-G":               {"void()", []string{"graduate_all", "Student"}},
		"PittyPat COOP Attack":    {"void()", []string{"main", "Student"}},
		"DOP ProFTPd Attack":      {"char*", []string{"core_display_file"}},
		"NEWTON CPI Attack":       {"void(char*)", []string{"ngx_http_get_indexed_variable", "ngx_variable"}},
	}
	for _, s := range Scenarios() {
		want, ok := expectations[s.Name]
		if !ok {
			t.Errorf("no expectation for %q", s.Name)
			continue
		}
		rt, err := s.MeasuredRSTIType()
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if !strings.Contains(rt.Type.Key(), want.typeContains) {
			t.Errorf("%s: measured type %s does not contain %q", s.Name, rt.Type, want.typeContains)
		}
		for _, fn := range want.scopeHas {
			if !ScopeContains(rt, fn) {
				t.Errorf("%s: measured scope %v missing %q", s.Name, rt.Scope, fn)
			}
		}
		// The DOP victim's corrupted pointer is const: permission R.
		if s.Name == "DOP ProFTPd Attack" && rt.Perm.String() != "R" {
			t.Errorf("DOP ProFTPd: permission %s, want R", rt.Perm)
		}
	}
}

// TestTable1UnderAdaptive runs the full attack matrix under the Adaptive
// extension: everything scope-type catches, Adaptive must catch too, with
// no false positives on the benign runs.
func TestTable1UnderAdaptive(t *testing.T) {
	for _, s := range Scenarios() {
		out, err := s.Run(sti.Adaptive)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Detected {
			t.Errorf("%s: Adaptive missed the attack (exit=%d err=%v)", s.Name, out.Exit, out.Err)
		}
		benign, err := s.RunBenign(sti.Adaptive)
		if err != nil {
			t.Fatal(err)
		}
		if benign.Err != nil {
			t.Errorf("%s: Adaptive false positive: %v", s.Name, benign.Err)
		} else if benign.Exit != s.BenignExit {
			t.Errorf("%s: Adaptive benign exit = %d, want %d", s.Name, benign.Exit, s.BenignExit)
		}
	}
}

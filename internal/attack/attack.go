// Package attack reproduces the paper's security evaluation (§6.1,
// Table 1): each published control-flow hijacking and data-oriented attack
// is rebuilt as a victim program in the cminor subset plus a corruption
// script that models the exploit's arbitrary-write primitive, and executed
// under every defense mechanism.
//
// Each scenario defines an observable attack goal (reaching an attacker
// payload, leaking through a substituted data pointer, bypassing a check).
// On the uninstrumented baseline the attack must succeed; under RSTI it
// must be detected. The PARTS baseline reproduces the paper's comparison:
// it misses the attacks whose corrupted and original pointers share a
// basic type (DOP ProFTPd, PittyPat COOP) and catches the rest.
package attack

import (
	"fmt"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// Scenario is one Table 1 row.
type Scenario struct {
	// Name and Category as printed in Table 1.
	Name     string
	Category string // "control-flow hijacking" or "data-oriented"
	// RealWorld distinguishes (R) real-software attacks from (S)
	// synthetic victim code.
	RealWorld bool

	// Table 1's scope-type columns.
	Corrupted     string
	Target        string
	OriginalInfo  string
	CorruptedInfo string

	// Source is the victim program.
	Source string
	// Corrupt performs the exploit's memory corruption; it runs at the
	// victim's __hook(1) site.
	Corrupt vm.Hook
	// SuccessExit is the exit status indicating the attack achieved its
	// goal (payload executed / data leaked / check bypassed).
	SuccessExit int64
	// BenignExit is the exit status of an unattacked run.
	BenignExit int64
	// PARTSDetects records whether the type-only baseline stops this
	// attack (false exactly when corrupted and original pointers share a
	// basic type).
	PARTSDetects bool
	// Externs the victim needs beyond the builtins.
	Externs map[string]func(*vm.Machine, []uint64) (uint64, error)
}

// Outcome is one (scenario, mechanism) result.
type Outcome struct {
	Scenario  *Scenario
	Mechanism sti.Mechanism
	Detected  bool // a security trap fired
	Succeeded bool // the attack reached its goal
	Exit      int64
	Err       error
}

// Run executes the scenario under one mechanism (attack enabled).
func (s *Scenario) Run(mech sti.Mechanism) (*Outcome, error) {
	c, err := core.Compile(s.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	res, err := c.Run(mech, core.RunConfig{
		Hooks:   map[int64]vm.Hook{1: s.Corrupt},
		Externs: s.Externs,
	})
	if err != nil {
		return nil, fmt.Errorf("%s under %s: %w", s.Name, mech, err)
	}
	return &Outcome{
		Scenario:  s,
		Mechanism: mech,
		Detected:  res.Detected(),
		Succeeded: res.Err == nil && res.Exit == s.SuccessExit,
		Exit:      res.Exit,
		Err:       res.Err,
	}, nil
}

// RunBenign executes the scenario without the corruption, verifying the
// victim behaves normally under the mechanism (no false positives).
func (s *Scenario) RunBenign(mech sti.Mechanism) (*Outcome, error) {
	c, err := core.Compile(s.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	res, err := c.Run(mech, core.RunConfig{Externs: s.Externs})
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Scenario:  s,
		Mechanism: mech,
		Detected:  res.Detected(),
		Succeeded: false,
		Exit:      res.Exit,
		Err:       res.Err,
	}, nil
}

// pokeFuncToken overwrites an 8-byte slot with a function's entry token —
// the classic control-flow hijack write.
func pokeFuncToken(globalOrVar func(m *vm.Machine) (uint64, bool), fn string) vm.Hook {
	return func(m *vm.Machine) error {
		addr, ok := globalOrVar(m)
		if !ok {
			return fmt.Errorf("attack: target slot not found")
		}
		tok, ok := m.FuncToken(fn)
		if !ok {
			return fmt.Errorf("attack: no function %q", fn)
		}
		return m.Mem.Poke(addr, tok, 8)
	}
}

// global returns an address resolver for a global variable.
func global(name string) func(m *vm.Machine) (uint64, bool) {
	return func(m *vm.Machine) (uint64, bool) { return m.GlobalAddr(name) }
}

// heapField resolves the address of a field within a heap object whose
// address is stored in a global pointer — the typical reach of a
// heap-overflow write.
func heapField(globalPtr string, fieldOffset uint64) func(m *vm.Machine) (uint64, bool) {
	return func(m *vm.Machine) (uint64, bool) {
		slot, ok := m.GlobalAddr(globalPtr)
		if !ok {
			return 0, false
		}
		obj, err := m.Mem.Peek(slot, 8)
		if err != nil {
			return 0, false
		}
		// The stored object pointer may carry a PAC; the attacker only
		// needs its address bits, which are in the clear.
		return m.Unit.Canonical(obj) + fieldOffset, true
	}
}

// replayValue copies the (signed) 8-byte value at src over dst — the
// pointer substitution / replay primitive.
func replayValue(src, dst func(m *vm.Machine) (uint64, bool)) vm.Hook {
	return func(m *vm.Machine) error {
		s, ok := src(m)
		if !ok {
			return fmt.Errorf("attack: replay source not found")
		}
		d, ok := dst(m)
		if !ok {
			return fmt.Errorf("attack: replay destination not found")
		}
		v, err := m.Mem.Peek(s, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(d, v, 8)
	}
}

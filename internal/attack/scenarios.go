package attack

import (
	"rsti/internal/vm"
)

// Scenarios returns the full Table 1 suite in the paper's order.
func Scenarios() []*Scenario {
	return []*Scenario{
		newtonCsCFI(),
		aocrNginx1(),
		aocrNginx2(),
		aocrApache(),
		controlJujutsu(),
		cveLibtiff(),
		cvePython(),
		coopRECG(),
		coopMLG(),
		pittypatCOOP(),
		dopProFTPd(),
		newtonCPI(),
	}
}

// pokeFlag returns an extern implementation that records its invocation in
// a victim global, so the victim can observe that hijacked control reached
// "library" code.
func pokeFlag(flagGlobal string) func(m *vm.Machine, args []uint64) (uint64, error) {
	return func(m *vm.Machine, args []uint64) (uint64, error) {
		addr, ok := m.GlobalAddr(flagGlobal)
		if !ok {
			return 0, nil
		}
		return 0, m.Mem.Poke(addr, 1, 4)
	}
}

// newtonCsCFI models the NEWTON attack on CsCFI: the NGINX connection's
// send_chain function pointer is overwritten with libc's malloc. The
// attack is observable because malloc returns a heap address where the
// legitimate filter returns 0.
func newtonCsCFI() *Scenario {
	return &Scenario{
		Name:          "NEWTON CsCFI attack",
		Category:      "control-flow hijacking",
		RealWorld:     true,
		Corrupted:     "c->send_chain",
		Target:        "malloc",
		OriginalInfo:  "type ngx_send_chain_pt, scope ngx_http_write_filter",
		CorruptedInfo: "type void* (size_t), scope libc",
		Source: `
			typedef struct { long (*send_chain)(long size); long buffered; } ngx_connection;
			ngx_connection *conn;
			long default_send_chain(long size) { return 0; }
			long ngx_http_write_filter(void) {
				__hook(1);
				long r = conn->send_chain(64);
				if (r > 1000000) return 99;
				return 0;
			}
			int main(void) {
				conn = (ngx_connection*) malloc(sizeof(ngx_connection));
				conn->send_chain = default_send_chain;
				return (int) ngx_http_write_filter();
			}
		`,
		Corrupt:      pokeFuncToken(heapField("conn", 0), "malloc"),
		SuccessExit:  99,
		BenignExit:   0,
		PARTSDetects: true, // the libc target carries no PAC at all
	}
}

// aocrNginx1 models AOCR's first NGINX attack: the thread-pool task
// handler is redirected to _IO_new_file_overflow in libc.
func aocrNginx1() *Scenario {
	return &Scenario{
		Name:          "AOCR NGINX Attack 1",
		Category:      "control-flow hijacking",
		RealWorld:     true,
		Corrupted:     "task->handler",
		Target:        "_IO_new_file_overflow",
		OriginalInfo:  "type void (*)(void*, ngx_log_t*), scope ngx_thread_pool_cycle",
		CorruptedInfo: "type int* (File*, int), scope libc",
		Source: `
			typedef struct { void (*handler)(void *data); void *data; } ngx_task;
			extern void _IO_new_file_overflow(void *f);
			ngx_task *task;
			int io_called = 0;
			int handled = 0;
			void task_handler(void *data) { handled = 1; }
			void ngx_thread_pool_cycle(void) {
				__hook(1);
				task->handler(task->data);
			}
			int main(void) {
				task = (ngx_task*) malloc(sizeof(ngx_task));
				task->handler = task_handler;
				task->data = NULL;
				ngx_thread_pool_cycle();
				if (io_called) return 99;
				return handled;
			}
		`,
		Corrupt:      pokeFuncToken(heapField("task", 0), "_IO_new_file_overflow"),
		SuccessExit:  99,
		BenignExit:   1,
		PARTSDetects: true,
		Externs: map[string]func(m *vm.Machine, args []uint64) (uint64, error){
			"_IO_new_file_overflow": pokeFlag("io_called"),
		},
	}
}

// aocrNginx2 models AOCR's second NGINX attack: the log writer pointer is
// replaced with ngx_master_process_cycle, an internal function of a
// different type and scope.
func aocrNginx2() *Scenario {
	return &Scenario{
		Name:          "AOCR NGINX Attack 2",
		Category:      "control-flow hijacking",
		RealWorld:     true,
		Corrupted:     "p = log->handler",
		Target:        "ngx_master_process_cycle",
		OriginalInfo:  "type ngx_log_writer_pt, scope ngx_log_set_levels",
		CorruptedInfo: "type void* (ngx_cycle_t*), scope main",
		Source: `
			typedef struct { void (*handler)(char *msg); int level; } ngx_log;
			ngx_log *logger;
			int cycled = 0;
			int written = 0;
			void writer(char *msg) { written = written + 1; }
			void ngx_master_process_cycle(char *unused) { cycled = 1; }
			void ngx_log_set_levels(void) {
				logger->handler = writer;
			}
			void ngx_log_error(char *msg) {
				__hook(1);
				logger->handler(msg);
			}
			int main(void) {
				logger = (ngx_log*) malloc(sizeof(ngx_log));
				ngx_log_set_levels();
				ngx_log_error("boot");
				if (cycled) return 99;
				return written;
			}
		`,
		Corrupt:      pokeFuncToken(heapField("logger", 0), "ngx_master_process_cycle"),
		SuccessExit:  99,
		BenignExit:   1,
		PARTSDetects: true,
	}
}

// aocrApache models AOCR's Apache attack on mod_sed: eval->errfn is
// pointed at ap_get_exec_line.
func aocrApache() *Scenario {
	return &Scenario{
		Name:          "AOCR Apache Attack",
		Category:      "control-flow hijacking",
		RealWorld:     true,
		Corrupted:     "eval->errfn",
		Target:        "ap_get_exec_line",
		OriginalInfo:  "type sed_err_fn_t, scope sed_reset_eval, eval_errf",
		CorruptedInfo: "type char* (apr_pool_t*, ...), scope set_bind_password",
		Source: `
			struct sed_eval { void (*errfn)(int code); int state; };
			struct sed_eval *ev;
			int exec_line = 0;
			int errors = 0;
			void sed_err(int code) { errors += code; }
			void ap_get_exec_line(int unused) { exec_line = 1; }
			void sed_reset_eval(void) { ev->errfn = sed_err; }
			void eval_errf(int code) {
				__hook(1);
				ev->errfn(code);
			}
			int main(void) {
				ev = (struct sed_eval*) malloc(sizeof(struct sed_eval));
				sed_reset_eval();
				eval_errf(3);
				if (exec_line) return 99;
				return errors;
			}
		`,
		Corrupt:      pokeFuncToken(heapField("ev", 0), "ap_get_exec_line"),
		SuccessExit:  99,
		BenignExit:   3,
		PARTSDetects: true,
	}
}

// controlJujutsu models the Control Jujutsu NGINX attack: the output
// chain filter pointer is redirected to ngx_execute_proc.
func controlJujutsu() *Scenario {
	return &Scenario{
		Name:          "Control Jujutsu NGINX",
		Category:      "control-flow hijacking",
		RealWorld:     true,
		Corrupted:     "ctx->output_filter",
		Target:        "ngx_execute_proc()",
		OriginalInfo:  "type ngx_output_chain_filter_pt, scope ngx_output_chain",
		CorruptedInfo: "type static void* (ngx_cycle_t*, void*), scope ngx_execute",
		Source: `
			typedef struct { int (*output_filter)(void *chain); void *ctx_data; } chain_ctx;
			chain_ctx *octx;
			int proc_executed = 0;
			int filtered = 0;
			int body_filter(void *chain) { filtered = 1; return 0; }
			int ngx_execute_proc(void *data) { proc_executed = 1; return 0; }
			int ngx_output_chain(void *chain) {
				__hook(1);
				return octx->output_filter(chain);
			}
			int main(void) {
				octx = (chain_ctx*) malloc(sizeof(chain_ctx));
				octx->output_filter = body_filter;
				ngx_output_chain(NULL);
				if (proc_executed) return 99;
				return filtered;
			}
		`,
		Corrupt:      pokeFuncToken(heapField("octx", 0), "ngx_execute_proc"),
		SuccessExit:  99,
		BenignExit:   1,
		PARTSDetects: true,
	}
}

// cveLibtiff is CVE-2015-8668 (the paper's Figure 1): a heap overflow
// reaches tif->tif_encoderow; the attacker installs an arbitrary code
// address, modeled as an attacker payload function.
func cveLibtiff() *Scenario {
	return &Scenario{
		Name:          "CVE-2015-8668 (libtiff)",
		Category:      "control-flow hijacking",
		RealWorld:     true,
		Corrupted:     "tif->tif_encoderow",
		Target:        "arbitrary pointer",
		OriginalInfo:  "type TIFFCodeMethod, scope _TIFFSetDefaultCompressionState, TIFFWriteScanline, TIFFOpen, main",
		CorruptedInfo: "attacker-chosen address",
		Source: `
			typedef struct tiff {
				int (*tif_encoderow)(struct tiff *t, char *buf, long size);
				long tif_scanlinesize;
			} TIFF;
			TIFF *out_tif;
			int payload_ran = 0;
			int _TIFFNoRowEncode(TIFF *t, char *buf, long size) { return (int) size; }
			int attacker_payload(TIFF *t, char *buf, long size) { payload_ran = 1; return 0; }
			void _TIFFSetDefaultCompressionState(TIFF *tif) {
				tif->tif_encoderow = _TIFFNoRowEncode;
			}
			TIFF *TIFFOpen(void) {
				TIFF *tif = (TIFF*) malloc(sizeof(TIFF));
				tif->tif_scanlinesize = 8;
				_TIFFSetDefaultCompressionState(tif);
				return tif;
			}
			int TIFFWriteScanline(TIFF *tif, char *buf) {
				__hook(1);
				int status = tif->tif_encoderow(tif, buf, tif->tif_scanlinesize);
				return status;
			}
			int main(void) {
				out_tif = TIFFOpen();
				char buf[16];
				int status = TIFFWriteScanline(out_tif, (char*)buf);
				if (payload_ran) return 99;
				return status;
			}
		`,
		Corrupt:      pokeFuncToken(heapField("out_tif", 0), "attacker_payload"),
		SuccessExit:  99,
		BenignExit:   8,
		PARTSDetects: true,
	}
}

// cvePython is CVE-2014-1912: a buffer overflow in CPython reaches a type
// object's tp_hash slot.
func cvePython() *Scenario {
	return &Scenario{
		Name:          "CVE-2014-1912 (CPython)",
		Category:      "control-flow hijacking",
		RealWorld:     true,
		Corrupted:     "tp->tp_hash",
		Target:        "arbitrary pointer",
		OriginalInfo:  "type hashfunc, scope inherit_slots, PyObject_Hash",
		CorruptedInfo: "attacker-chosen address",
		Source: `
			typedef struct { long (*tp_hash)(long obj); int tp_flags; } PyTypeObject;
			PyTypeObject *type_obj;
			int payload_ran = 0;
			long default_hash(long obj) { return obj * 31; }
			long attacker_payload(long obj) { payload_ran = 1; return 0; }
			void inherit_slots(PyTypeObject *tp) { tp->tp_hash = default_hash; }
			long PyObject_Hash(long obj) {
				__hook(1);
				return type_obj->tp_hash(obj);
			}
			int main(void) {
				type_obj = (PyTypeObject*) malloc(sizeof(PyTypeObject));
				inherit_slots(type_obj);
				long h = PyObject_Hash(3);
				if (payload_ran) return 99;
				return (int) h;
			}
		`,
		Corrupt:      pokeFuncToken(heapField("type_obj", 0), "attacker_payload"),
		SuccessExit:  99,
		BenignExit:   93,
		PARTSDetects: true,
	}
}

// coopRECG is the COOP recursion-gadget (synthetic victim code): a class X
// object's unref slot is replaced with a validly signed virtual-destructor
// pointer harvested from a class Z object. The function-pointer types
// match, so only scope information distinguishes them.
func coopRECG() *Scenario {
	return &Scenario{
		Name:          "COOP REC-G",
		Category:      "control-flow hijacking",
		RealWorld:     false,
		Corrupted:     "objB->unref",
		Target:        "virtual ~Z()",
		OriginalInfo:  "type class X, scope class Z",
		CorruptedInfo: "type class Z, scope class Z",
		Source: `
			struct X { void (*unref)(void); int refs; };
			struct Z { void (*dtor)(void); int zstate; };
			struct X *objB;
			struct Z *objZ;
			int x_unrefs = 0;
			int z_dtor_ran = 0;
			void x_unref(void) { x_unrefs = x_unrefs + 1; }
			void z_dtor(void) { z_dtor_ran = 1; }
			void release(struct X *o) {
				__hook(1);
				o->unref();
			}
			int main(void) {
				objB = (struct X*) malloc(sizeof(struct X));
				objZ = (struct Z*) malloc(sizeof(struct Z));
				objB->unref = x_unref;
				objZ->dtor = z_dtor;
				release(objB);
				if (z_dtor_ran) return 99;
				return x_unrefs;
			}
		`,
		Corrupt:      replayValue(heapField("objZ", 0), heapField("objB", 0)),
		SuccessExit:  99,
		BenignExit:   1,
		PARTSDetects: false, // both slots hold a void(*)(void): type-only PACs match
	}
}

// coopMLG is the COOP main-loop gadget (synthetic): a Student object's
// decCourseCount slot receives a Course destructor harvested from a Course
// object.
func coopMLG() *Scenario {
	return &Scenario{
		Name:          "COOP ML-G",
		Category:      "control-flow hijacking",
		RealWorld:     false,
		Corrupted:     "students[i]->decCourseCount()",
		Target:        "virtual ~Course()",
		OriginalInfo:  "type void*(), scope class Student, class Course",
		CorruptedInfo: "type class Course, scope class Course",
		Source: `
			struct Student { void (*decCourseCount)(void); int credits; };
			struct Course { void (*dtor)(void); int enrolled; };
			struct Student *student;
			struct Course *course;
			int decremented = 0;
			int course_destroyed = 0;
			void dec_course_count(void) { decremented = decremented + 1; }
			void course_dtor(void) { course_destroyed = 1; }
			void graduate_all(void) {
				__hook(1);
				student->decCourseCount();
			}
			int main(void) {
				student = (struct Student*) malloc(sizeof(struct Student));
				course = (struct Course*) malloc(sizeof(struct Course));
				student->decCourseCount = dec_course_count;
				course->dtor = course_dtor;
				graduate_all();
				if (course_destroyed) return 99;
				return decremented;
			}
		`,
		Corrupt:      replayValue(heapField("course", 0), heapField("student", 0)),
		SuccessExit:  99,
		BenignExit:   1,
		PARTSDetects: false,
	}
}

// pittypatCOOP is the PittyPat COOP variant (synthetic): a Teacher's
// registration pointer is replayed into a Student's registration slot —
// identical basic types, different composite scopes.
func pittypatCOOP() *Scenario {
	return &Scenario{
		Name:          "PittyPat COOP Attack",
		Category:      "control-flow hijacking",
		RealWorld:     false,
		Corrupted:     "member_2->registration",
		Target:        "member_1->registration",
		OriginalInfo:  "type void*(), scope main, class Student",
		CorruptedInfo: "type void*(), scope main, class Teacher",
		Source: `
			struct Student { void (*registration)(void); int id; };
			struct Teacher { void (*registration)(void); int id; };
			struct Student *member_2;
			struct Teacher *member_1;
			int student_registered = 0;
			int teacher_registered = 0;
			void student_reg(void) { student_registered = 1; }
			void teacher_reg(void) { teacher_registered = 1; }
			int main(void) {
				member_2 = (struct Student*) malloc(sizeof(struct Student));
				member_1 = (struct Teacher*) malloc(sizeof(struct Teacher));
				member_2->registration = student_reg;
				member_1->registration = teacher_reg;
				__hook(1);
				member_2->registration();
				if (teacher_registered) return 99;
				return student_registered;
			}
		`,
		Corrupt:      replayValue(heapField("member_1", 0), heapField("member_2", 0)),
		SuccessExit:  99,
		BenignExit:   1,
		PARTSDetects: false, // the paper singles PittyPat out as a PARTS bypass
	}
}

// dopProFTPd is the data-oriented programming attack on ProFTPd: load
// gadgets corrupt the const char* ServerName with the attacker-filled
// resp_buf — both are char pointers, so only RSTI's scope and permission
// information distinguishes them.
func dopProFTPd() *Scenario {
	return &Scenario{
		Name:          "DOP ProFTPd Attack",
		Category:      "data-oriented",
		RealWorld:     true,
		Corrupted:     "&ServerName",
		Target:        "resp_buf, ssl_ctx",
		OriginalInfo:  "type const char*, scope core_display_file",
		CorruptedInfo: "type char*, scope pr_response_send_raw",
		Source: `
			const char *ServerName;
			char *resp_buf;
			int pr_response_send_raw(void) {
				resp_buf = "LEAKED_KEY";
				return 0;
			}
			int core_display_file(void) {
				__hook(1);
				if (strcmp(ServerName, "LEAKED_KEY") == 0) return 99;
				return (int) strlen(ServerName);
			}
			int main(void) {
				ServerName = "ftp.example.org";
				pr_response_send_raw();
				return core_display_file();
			}
		`,
		Corrupt:      replayValue(global("resp_buf"), global("ServerName")),
		SuccessExit:  99,
		BenignExit:   15,
		PARTSDetects: false, // both are char pointers: the paper's explicit PARTS bypass
	}
}

// newtonCPI is the NEWTON attack on CPI: an NGINX variable's get_handler
// is redirected to libc's dlopen.
func newtonCPI() *Scenario {
	return &Scenario{
		Name:          "NEWTON CPI Attack",
		Category:      "data-oriented",
		RealWorld:     true,
		Corrupted:     "v[index].get_handler",
		Target:        "dlopen",
		OriginalInfo:  "type ngx_http_get_variable_pt, scope ngx_http_get_indexed_variable",
		CorruptedInfo: "type void* (const char*, int), scope ngx_load_module",
		Source: `
			extern void dlopen(char *path);
			typedef struct { void (*get_handler)(char *name); int index; } ngx_variable;
			ngx_variable *vars;
			int dlopened = 0;
			int handled = 0;
			void default_get(char *name) { handled = handled + 1; }
			void ngx_http_get_indexed_variable(int index) {
				__hook(1);
				ngx_variable *v = vars + index;
				v->get_handler("host");
			}
			int main(void) {
				vars = (ngx_variable*) malloc(4 * sizeof(ngx_variable));
				for (int i = 0; i < 4; i++) {
					ngx_variable *v = vars + i;
					v->get_handler = default_get;
					v->index = i;
				}
				ngx_http_get_indexed_variable(2);
				if (dlopened) return 99;
				return handled;
			}
		`,
		// Element 2's get_handler: element stride 16 bytes, field offset 0.
		Corrupt:      pokeFuncToken(heapField("vars", 2*16), "dlopen"),
		SuccessExit:  99,
		BenignExit:   1,
		PARTSDetects: true,
		Externs: map[string]func(m *vm.Machine, args []uint64) (uint64, error){
			"dlopen": pokeFlag("dlopened"),
		},
	}
}

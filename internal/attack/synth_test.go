package attack

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// TestSynthesizeSecuritySuite is the synthesizer's end-to-end contract on
// the workloads the dashboard measures: every derived tamper must execute
// to its predicted detect/miss outcome under every mechanism (Confirmed),
// all four tamper families must be represented, and every signing
// mechanism must show at least one confirmed detection AND one confirmed
// miss — the machine-enumerated blind-spot coverage the acceptance bar
// demands. STL's misses can only come from the elided-local family (its
// location binding defeats every replay), which is exactly why that
// family exists.
func TestSynthesizeSecuritySuite(t *testing.T) {
	for _, b := range workload.SecuritySuite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			c, err := core.Compile(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Synthesize(c, SynthOptions{Optimize: core.OptimizeOff})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Problems) > 0 {
				t.Fatalf("synthesis problems:\n%v", rep.Problems)
			}
			if len(rep.Tampers) == 0 {
				t.Fatal("no tampers derived")
			}
			if got := rep.Confirmed(); got != len(rep.Tampers) {
				t.Errorf("only %d/%d tampers confirmed", got, len(rep.Tampers))
			}
			if fams := rep.Families(); len(fams) != 4 {
				t.Errorf("families = %v, want all 4", fams)
			}
			for _, mech := range SigningMechs {
				if rep.ConfirmedDetect[mech.String()] == 0 {
					t.Errorf("%s: no confirmed detection", mech)
				}
				if rep.ConfirmedMiss[mech.String()] == 0 {
					t.Errorf("%s: no confirmed miss", mech)
				}
			}
		})
	}
}

// TestSynthesizeAdaptiveGradient pins the Adaptive mechanism's behavioral
// flip the suite was sized to expose: on sec-small (popular pool below
// the ECV threshold) Adaptive shares STWC's same-class replay blind spot;
// on sec-popular (above the threshold) it binds location and must detect
// the same family.
func TestSynthesizeAdaptiveGradient(t *testing.T) {
	sameClassMisses := make(map[string]int)
	for _, b := range workload.SecuritySuite() {
		if b.Name != "sec-small" && b.Name != "sec-popular" {
			continue
		}
		c, err := core.Compile(b.Source)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Synthesize(c, SynthOptions{Optimize: core.OptimizeOff})
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range rep.Tampers {
			if res.Tamper.Family != "replay-same-class" || !res.Confirmed {
				continue
			}
			if !res.Detected[sti.Adaptive.String()] {
				sameClassMisses[b.Name]++
			}
		}
	}
	if sameClassMisses["sec-small"] == 0 {
		t.Error("sec-small: Adaptive below the threshold should miss same-class replays like STWC")
	}
	if sameClassMisses["sec-popular"] != 0 {
		t.Errorf("sec-popular: Adaptive above the threshold missed %d same-class replays",
			sameClassMisses["sec-popular"])
	}
}

// TestSynthesizeRequiresHook documents the contract: synthesis needs a
// planted __hook(1) corruption site.
func TestSynthesizeRequiresHook(t *testing.T) {
	c, err := core.Compile("int main(void) { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(c, SynthOptions{}); err == nil {
		t.Fatal("synthesis on a hook-less program should error")
	}
}

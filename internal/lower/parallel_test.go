package lower

import (
	"fmt"
	"testing"

	"rsti/internal/cminor"
)

// parallelSrc has enough functions to occupy several workers and enough
// string literals — shared and function-private — to exercise the
// local-pool merge: the final pool order must match the serial encounter
// order (__init first, then function order).
const parallelSrc = `
char *g0 = "global-zero";
char *g1 = "shared";

int f0(void) { char *s = "f0-only"; char *t = "shared"; return 0; }
int f1(void) { char *s = "shared"; char *t = "f1-only"; return 1; }
int f2(void) { char *s = "f2-a"; char *t = "f2-b"; char *u = "global-zero"; return 2; }
int f3(int n) {
	char *s = "f3-loop";
	int i;
	int acc = 0;
	for (i = 0; i < n; i = i + 1) { acc = acc + i; }
	return acc;
}
int f4(void) { return 4; }
int f5(void) { char *s = "shared"; char *t = "f0-only"; return 5; }
int main(void) {
	char *banner = "main-banner";
	return f0() + f1() + f2() + f3(3) + f4() + f5();
}
`

func TestParallelLowerBitIdentical(t *testing.T) {
	f, err := cminor.Frontend(parallelSrc)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	serial, err := LowerWithOptions(f, Options{Workers: 1})
	if err != nil {
		t.Fatalf("serial lower: %v", err)
	}
	want := serial.String()
	wantPool := fmt.Sprintf("%q", serial.Strings)
	for _, workers := range []int{2, 4, 8} {
		f2, err := cminor.Frontend(parallelSrc)
		if err != nil {
			t.Fatalf("frontend: %v", err)
		}
		p, err := LowerWithOptions(f2, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := p.String(); got != want {
			t.Errorf("workers=%d: program differs from serial lowering\nserial:\n%s\nparallel:\n%s", workers, want, got)
		}
		if gotPool := fmt.Sprintf("%q", p.Strings); gotPool != wantPool {
			t.Errorf("workers=%d: string pool %s, want %s", workers, gotPool, wantPool)
		}
	}
}

func TestParallelLowerPoolOrderIsSerialEncounterOrder(t *testing.T) {
	f, err := cminor.Frontend(parallelSrc)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := LowerWithOptions(f, Options{Workers: 4})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	want := []string{
		"global-zero",  // __init: g0's initializer
		"shared",       // __init: g1's initializer
		"f0-only",      // f0 (dedup keeps first occurrences only)
		"f1-only",      // f1
		"f2-a", "f2-b", // f2 ("global-zero" dedups against __init)
		"f3-loop",     // f3
		"main-banner", // main ("shared"/"f0-only" in f5 dedup)
	}
	if len(p.Strings) != len(want) {
		t.Fatalf("pool = %q, want %q", p.Strings, want)
	}
	for i := range want {
		if p.Strings[i] != want[i] {
			t.Fatalf("pool[%d] = %q, want %q (pool %q)", i, p.Strings[i], want[i], p.Strings)
		}
	}
}

package lower

import (
	"strings"
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/ctypes"
	"rsti/internal/mir"
)

func mustLower(t *testing.T, src string) *mir.Program {
	t.Helper()
	f, err := cminor.Frontend(src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func countOps(f *mir.Func, op mir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestLowerProducesVerifiedIR(t *testing.T) {
	p := mustLower(t, `
		struct s { int a; struct s *next; };
		int g;
		int helper(int x) { return x + 1; }
		int main(void) {
			struct s *p = (struct s*) malloc(sizeof(struct s));
			p->a = helper(3);
			g = p->a;
			return g;
		}
	`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerAllocasHoistedToEntry(t *testing.T) {
	p := mustLower(t, `
		int main(void) {
			int total = 0;
			for (int i = 0; i < 4; i++) {
				int inner = i * 2;
				total += inner;
			}
			return total;
		}
	`)
	main, _ := p.Func("main")
	entryAllocas := 0
	for _, in := range main.Blocks[0].Instrs {
		if in.Op == mir.Alloca {
			entryAllocas++
		}
	}
	if got := countOps(main, mir.Alloca); got != entryAllocas {
		t.Errorf("allocas outside entry: total %d, entry %d", got, entryAllocas)
	}
	// total, i, inner = 3 slots.
	if entryAllocas != 3 {
		t.Errorf("entry allocas = %d, want 3", entryAllocas)
	}
}

func TestLowerSlotMetadata(t *testing.T) {
	p := mustLower(t, `
		struct node { int key; struct node *next; };
		int main(void) {
			struct node *n = (struct node*) malloc(sizeof(struct node));
			n->key = 5;
			n->next = NULL;
			return n->key;
		}
	`)
	main, _ := p.Func("main")
	var varStores, fieldStores int
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != mir.Store {
				continue
			}
			switch in.Slot.Kind {
			case mir.SlotVar:
				varStores++
			case mir.SlotField:
				fieldStores++
				if in.Slot.Struct.Name != "node" {
					t.Errorf("field store struct = %q", in.Slot.Struct.Name)
				}
			}
		}
	}
	if varStores == 0 || fieldStores != 2 {
		t.Errorf("varStores=%d fieldStores=%d, want >0 and 2", varStores, fieldStores)
	}
}

func TestLowerPointerArithmeticScaling(t *testing.T) {
	p := mustLower(t, `
		int main(void) {
			int a[4];
			int *q = (int*)a;
			q = q + 3;
			return 0;
		}
	`)
	main, _ := p.Func("main")
	// q + 3 must multiply by sizeof(int) = 4 somewhere.
	found := false
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == mir.Const && in.Imm == 4 && in.Ty == ctypes.LongType {
				found = true
			}
		}
	}
	if !found {
		t.Error("no sizeof scaling constant emitted for pointer arithmetic")
	}
}

func TestLowerStringsInterned(t *testing.T) {
	p := mustLower(t, `
		int main(void) {
			char *a = "dup";
			char *b = "dup";
			char *c = "other";
			return 0;
		}
	`)
	if len(p.Strings) != 2 {
		t.Errorf("string pool = %v, want 2 distinct entries", p.Strings)
	}
}

func TestLowerGlobalInitGoesToInitFunc(t *testing.T) {
	p := mustLower(t, `
		int seeded = 42;
		int main(void) { return seeded; }
	`)
	initFn, ok := p.Func(mir.InitFuncName)
	if !ok {
		t.Fatal("no __init")
	}
	if countOps(initFn, mir.Store) != 1 {
		t.Errorf("__init stores = %d, want 1", countOps(initFn, mir.Store))
	}
}

func TestLowerIndirectCall(t *testing.T) {
	p := mustLower(t, `
		int f(void) { return 1; }
		int main(void) {
			int (*fp)(void) = f;
			return fp();
		}
	`)
	main, _ := p.Func("main")
	indirect := 0
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == mir.CallOp && in.Callee == "" {
				indirect++
				if in.A == mir.NoReg {
					t.Error("indirect call without target register")
				}
			}
		}
	}
	if indirect != 1 {
		t.Errorf("indirect calls = %d, want 1", indirect)
	}
}

func TestLowerBreakOutsideLoopFails(t *testing.T) {
	f, err := cminor.Frontend(`int main(void) { break; return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(f); err == nil {
		t.Error("break outside a loop lowered without error")
	}
}

func TestLowerPrinterShowsDebugInfo(t *testing.T) {
	p := mustLower(t, `
		struct pair { int *left; int *right; };
		int main(void) {
			struct pair pr;
			int x = 1;
			pr.left = &x;
			return *pr.left;
		}
	`)
	out := p.String()
	for _, want := range []string{"!var(x)", "!field(pair.0)", "alloca", "fieldaddr"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed IR missing %q", want)
		}
	}
}

func TestLowerShortCircuitBlocks(t *testing.T) {
	p := mustLower(t, `
		int side(void) { return 1; }
		int main(void) { return (side() && side()) || side(); }
	`)
	main, _ := p.Func("main")
	if len(main.Blocks) < 5 {
		t.Errorf("short-circuit lowering produced only %d blocks", len(main.Blocks))
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLowerTernaryAndSwitchShapes(t *testing.T) {
	p := mustLower(t, `
		int pick(int k) {
			int v = k > 2 ? k * 2 : k + 100;
			switch (v) {
			case 6: return 1;
			case 101: case 102: return 2;
			default: return 3;
			}
		}
		int main(void) { return pick(3) + pick(1); }
	`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	pick, _ := p.Func("pick")
	// Ternary + switch dispatch need several blocks.
	if len(pick.Blocks) < 8 {
		t.Errorf("blocks = %d, expected the ternary+switch to fan out", len(pick.Blocks))
	}
}

func TestLowerDoWhileShape(t *testing.T) {
	p := mustLower(t, `
		int main(void) {
			int n = 0;
			do { n++; } while (n < 3);
			return n;
		}
	`)
	main, _ := p.Func("main")
	names := map[string]bool{}
	for _, b := range main.Blocks {
		names[b.Name] = true
	}
	for _, want := range []string{"do.body", "do.cond", "do.done"} {
		if !names[want] {
			t.Errorf("missing block %q", want)
		}
	}
}

func TestLowerFloatNegationAndCompound(t *testing.T) {
	p := mustLower(t, `
		int main(void) {
			double d = 1.5;
			d = -d;
			d *= 2.0;
			d /= 4.0;
			float f = (float) d;
			long l = (long) f;
			return (int) l;
		}
	`)
	main, _ := p.Func("main")
	fsubs, fmuls, fdivs := 0, 0, 0
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			switch {
			case b.Instrs[i].Op == mir.BinInstr && b.Instrs[i].BinSub == mir.FSub:
				fsubs++
			case b.Instrs[i].Op == mir.BinInstr && b.Instrs[i].BinSub == mir.FMul:
				fmuls++
			case b.Instrs[i].Op == mir.BinInstr && b.Instrs[i].BinSub == mir.FDiv:
				fdivs++
			}
		}
	}
	if fsubs == 0 || fmuls == 0 || fdivs == 0 {
		t.Errorf("float ops: fsub=%d fmul=%d fdiv=%d", fsubs, fmuls, fdivs)
	}
}

func TestLowerVariadicExternCall(t *testing.T) {
	p := mustLower(t, `
		int main(void) {
			printf("%d %d %d\n", 1, 2, 3);
			return 0;
		}
	`)
	main, _ := p.Func("main")
	found := false
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == mir.CallOp && in.Callee == "printf" {
				found = true
				if len(in.Args) != 4 {
					t.Errorf("printf args = %d, want 4", len(in.Args))
				}
			}
		}
	}
	if !found {
		t.Error("printf call missing")
	}
}

func TestLowerEnumSwitchUsesConstants(t *testing.T) {
	p := mustLower(t, `
		enum K { A = 7, B = 9 };
		int main(void) {
			int k = B;
			switch (k) {
			case A: return 1;
			case B: return 2;
			}
			return 0;
		}
	`)
	main, _ := p.Func("main")
	has7, has9 := false, false
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == mir.Const {
				switch b.Instrs[i].Imm {
				case 7:
					has7 = true
				case 9:
					has9 = true
				}
			}
		}
	}
	if !has7 || !has9 {
		t.Errorf("enum constants not lowered: 7=%v 9=%v", has7, has9)
	}
}

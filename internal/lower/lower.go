// Package lower translates the checked cminor AST into mir, the way Clang
// at -O0 lowers C to LLVM IR: every variable gets an alloca, every read is
// a load and every write a store, and every conversion is an explicit cast
// instruction. Memory instructions carry the Slot debug metadata (which
// variable or composite field is accessed) that the STI analysis keys on.
package lower

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"rsti/internal/cminor"
	"rsti/internal/ctypes"
	"rsti/internal/mir"
)

// Options controls how Lower runs. The zero value is the default
// configuration.
type Options struct {
	// Workers bounds the number of goroutines lowering function bodies.
	// 0 means GOMAXPROCS; 1 forces the serial path. Output is
	// bit-identical for every worker count: each function is lowered
	// into its own lowerer with a function-local string pool, and the
	// pools are merged into the program in function order afterwards,
	// reproducing the serial pool exactly.
	Workers int
}

// Lower converts a checked File into a mir.Program. The returned program
// passes mir.Verify.
func Lower(f *cminor.File) (*mir.Program, error) {
	return LowerWithOptions(f, Options{})
}

// LowerWithOptions is Lower with explicit concurrency control.
func LowerWithOptions(f *cminor.File, opts Options) (*mir.Program, error) {
	p := &mir.Program{
		ByName: make(map[string]*mir.Func),
		Types:  f.Types,
	}
	for _, s := range f.Syms {
		p.Vars = append(p.Vars, &mir.VarInfo{
			Name: s.Name, Type: s.Type, Global: s.Global, Param: s.Param, DeclFn: s.DeclFn,
		})
	}
	for _, g := range f.Globals {
		p.Globals = append(p.Globals, &mir.Global{Name: g.Name, Type: g.Type, Var: g.Sym.ID})
	}

	// Synthetic __init runs global initializers before main.
	initLw := &lowerer{prog: p, file: f}
	initFn := &mir.Func{Name: mir.InitFuncName, Ret: ctypes.VoidType}
	p.Funcs = append(p.Funcs, initFn)
	p.ByName[initFn.Name] = initFn
	initLw.beginFunc(initFn, nil)
	for gi, g := range f.Globals {
		if g.Init == nil {
			continue
		}
		v := initLw.expr(g.Init)
		addr := initLw.emitDst(mir.Instr{Op: mir.GlobalAddr, Imm: int64(gi), Ty: ctypes.PointerTo(g.Type), Pos: g.Pos,
			Slot: mir.Slot{Kind: mir.SlotVar, Var: g.Sym.ID}})
		initLw.emit(mir.Instr{Op: mir.Store, A: addr, B: v, Ty: g.Type, Pos: g.Pos,
			Slot: mir.Slot{Kind: mir.SlotVar, Var: g.Sym.ID}})
	}
	initLw.emit(mir.Instr{Op: mir.RetOp, A: mir.NoReg})
	initLw.endFunc()
	if initLw.err != nil {
		return nil, initLw.err
	}

	for _, fn := range f.Funcs {
		mf := &mir.Func{
			Name: fn.Name, Ret: fn.Ret, Variadic: fn.Variadic, Extern: fn.Body == nil,
		}
		for _, prm := range fn.Params {
			mf.Params = append(mf.Params, prm.Type)
			if prm.Sym != nil {
				mf.ParamVar = append(mf.ParamVar, prm.Sym.ID)
			} else {
				mf.ParamVar = append(mf.ParamVar, -1)
			}
		}
		p.Funcs = append(p.Funcs, mf)
		p.ByName[mf.Name] = mf
	}

	// Lower every function body. Bodies are independent — the only
	// program-level mutable state a body touches is the string pool,
	// which each lowerer keeps locally — so they fan out across a
	// bounded worker set. Funcs and ByName are fully built above and
	// only read from here on.
	type unit struct {
		fn *cminor.FuncDecl
		lw *lowerer
	}
	var units []unit
	for _, fn := range f.Funcs {
		if fn.Body != nil {
			units = append(units, unit{fn: fn, lw: &lowerer{prog: p, file: f}})
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	lowerOne := func(u unit) error {
		return u.lw.lowerFunc(u.fn, p.ByName[u.fn.Name])
	}
	if workers <= 1 {
		for _, u := range units {
			if err := lowerOne(u); err != nil {
				return nil, err
			}
		}
	} else {
		errs := make([]error, len(units))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(units) {
						return
					}
					errs[i] = lowerOne(units[i])
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Merge the function-local string pools into the program pool in
	// function order (__init first), rewriting each StrConst through the
	// local-index -> pool-index remap. Because AddString dedups in
	// insertion order, the resulting pool is exactly what the serial
	// single-pool lowering produced.
	mergeStrings(p, initLw, initFn)
	for _, u := range units {
		mergeStrings(p, u.lw, p.ByName[u.fn.Name])
	}

	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}

func mergeStrings(p *mir.Program, lw *lowerer, mf *mir.Func) {
	if len(lw.strs) == 0 {
		return
	}
	remap := make([]int, len(lw.strs))
	for i, s := range lw.strs {
		remap[i] = p.AddString(s)
	}
	for _, b := range mf.Blocks {
		for j := range b.Instrs {
			if b.Instrs[j].Op == mir.StrConst {
				b.Instrs[j].Imm = int64(remap[b.Instrs[j].Imm])
			}
		}
	}
}

type loopCtx struct {
	breakBlk, continueBlk int
}

type lowerer struct {
	prog *mir.Program
	file *cminor.File

	fn      *mir.Func
	cur     *mir.Block
	nextReg int
	slots   map[int]mir.Reg // VarSym.ID -> register holding the slot address
	loops   []loopCtx
	allocas []mir.Instr // hoisted to the entry block at endFunc
	err     error

	// Function-local string pool. StrConst Imm values index this pool
	// until mergeStrings rewrites them to program-pool indices; keeping
	// the pool local is what lets function bodies lower concurrently.
	strs   []string
	strMap map[string]int
}

func (lw *lowerer) addString(s string) int {
	if i, ok := lw.strMap[s]; ok {
		return i
	}
	if lw.strMap == nil {
		lw.strMap = make(map[string]int)
	}
	i := len(lw.strs)
	lw.strs = append(lw.strs, s)
	lw.strMap[s] = i
	return i
}

// emitAlloca hoists every alloca to the entry block, as Clang does at -O0:
// a declaration inside a loop must not grow the frame per iteration.
func (lw *lowerer) emitAlloca(in mir.Instr) mir.Reg {
	in.Dst = lw.reg()
	in.A, in.B = mir.NoReg, mir.NoReg
	lw.allocas = append(lw.allocas, in)
	return in.Dst
}

func (lw *lowerer) beginFunc(f *mir.Func, params []*cminor.Param) {
	lw.fn = f
	lw.nextReg = len(params)
	lw.slots = make(map[int]mir.Reg)
	lw.loops = nil
	lw.allocas = nil
	lw.cur = f.NewBlock("entry")
	for i, prm := range params {
		if prm.Sym == nil {
			continue
		}
		slot := lw.emitAlloca(mir.Instr{Op: mir.Alloca, Ty: prm.Type, Pos: prm.Pos,
			Slot: mir.Slot{Kind: mir.SlotVar, Var: prm.Sym.ID}})
		lw.slots[prm.Sym.ID] = slot
		lw.emit(mir.Instr{Op: mir.Store, A: slot, B: i, Ty: prm.Type, Pos: prm.Pos,
			Slot: mir.Slot{Kind: mir.SlotVar, Var: prm.Sym.ID}})
	}
}

func (lw *lowerer) endFunc() {
	entry := lw.fn.Blocks[0]
	entry.Instrs = append(append([]mir.Instr(nil), lw.allocas...), entry.Instrs...)
	if !lw.cur.Terminated() {
		if lw.fn.Ret.Kind == ctypes.Void {
			lw.emit(mir.Instr{Op: mir.RetOp, A: mir.NoReg})
		} else {
			z := lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: lw.fn.Ret})
			lw.emit(mir.Instr{Op: mir.RetOp, A: z})
		}
	}
	lw.fn.NumRegs = lw.nextReg
}

func (lw *lowerer) lowerFunc(fn *cminor.FuncDecl, mf *mir.Func) error {
	lw.beginFunc(mf, fn.Params)
	lw.block(fn.Body)
	lw.endFunc()
	return lw.err
}

func (lw *lowerer) fail(pos cminor.Pos, format string, args ...interface{}) {
	if lw.err == nil {
		lw.err = fmt.Errorf("lower: %s: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (lw *lowerer) reg() mir.Reg { r := lw.nextReg; lw.nextReg++; return r }

func (lw *lowerer) emit(in mir.Instr) {
	if in.Dst == 0 && in.Op != mir.Nop {
		// Dst zero is a valid register; instructions without a
		// destination must set NoReg explicitly. Normalize the common
		// zero-value mistake for instructions that never write.
		switch in.Op {
		case mir.Store, mir.RetOp, mir.Jmp, mir.Br, mir.PPAdd:
			in.Dst = mir.NoReg
		}
	}
	if in.A == 0 {
		switch in.Op {
		case mir.Const, mir.ConstF, mir.StrConst, mir.Alloca, mir.GlobalAddr, mir.FuncAddr, mir.Jmp, mir.PPAdd:
			in.A = mir.NoReg
		}
	}
	if in.B == 0 {
		// Only instructions that never read B are normalized; BinInstr,
		// CmpInstr, Store, PacSign/PacAuth (location) and the PP ops all
		// use B and must set it explicitly.
		switch in.Op {
		case mir.Const, mir.ConstF, mir.StrConst, mir.Alloca, mir.GlobalAddr, mir.FuncAddr,
			mir.Load, mir.FieldAddr, mir.CastOp, mir.RetOp, mir.Jmp,
			mir.PacStrip, mir.PPAddTBI, mir.PPAdd:
			in.B = mir.NoReg
		}
	}
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

func (lw *lowerer) emitDst(in mir.Instr) mir.Reg {
	in.Dst = lw.reg()
	lw.emit(in)
	return in.Dst
}

func (lw *lowerer) newBlock(name string) *mir.Block { return lw.fn.NewBlock(name) }

func (lw *lowerer) setBlock(b *mir.Block) { lw.cur = b }

func (lw *lowerer) jump(to *mir.Block) {
	if !lw.cur.Terminated() {
		lw.emit(mir.Instr{Op: mir.Jmp, Dst: mir.NoReg, A: mir.NoReg, B: mir.NoReg, Targets: [2]int{to.Index}})
	}
}

func (lw *lowerer) branch(cond mir.Reg, t, f *mir.Block) {
	if !lw.cur.Terminated() {
		lw.emit(mir.Instr{Op: mir.Br, Dst: mir.NoReg, A: cond, B: mir.NoReg, Targets: [2]int{t.Index, f.Index}})
	}
}

// ---------- Statements ----------

func (lw *lowerer) block(b *cminor.BlockStmt) {
	for _, s := range b.Stmts {
		lw.stmt(s)
	}
}

func (lw *lowerer) stmt(s cminor.Stmt) {
	switch st := s.(type) {
	case *cminor.BlockStmt:
		lw.block(st)
	case *cminor.DeclList:
		for _, d := range st.Decls {
			lw.stmt(d)
		}
	case *cminor.DeclStmt:
		d := st.Decl
		slot := lw.emitAlloca(mir.Instr{Op: mir.Alloca, Ty: d.Type, Pos: d.Pos,
			Slot: mir.Slot{Kind: mir.SlotVar, Var: d.Sym.ID}})
		lw.slots[d.Sym.ID] = slot
		if d.Init != nil {
			v := lw.expr(d.Init)
			lw.emit(mir.Instr{Op: mir.Store, A: slot, B: v, Ty: d.Type, Pos: d.Pos,
				Slot: mir.Slot{Kind: mir.SlotVar, Var: d.Sym.ID}})
		}
	case *cminor.ExprStmt:
		lw.expr(st.X)
	case *cminor.IfStmt:
		cond := lw.condition(st.Cond)
		thenB := lw.newBlock("if.then")
		var elseB *mir.Block
		done := lw.newBlock("if.done")
		if st.Else != nil {
			elseB = lw.newBlock("if.else")
			lw.branch(cond, thenB, elseB)
		} else {
			lw.branch(cond, thenB, done)
		}
		lw.setBlock(thenB)
		lw.stmt(st.Then)
		lw.jump(done)
		if st.Else != nil {
			lw.setBlock(elseB)
			lw.stmt(st.Else)
			lw.jump(done)
		}
		lw.setBlock(done)
	case *cminor.WhileStmt:
		head := lw.newBlock("while.head")
		body := lw.newBlock("while.body")
		done := lw.newBlock("while.done")
		lw.jump(head)
		lw.setBlock(head)
		cond := lw.condition(st.Cond)
		lw.branch(cond, body, done)
		lw.setBlock(body)
		lw.loops = append(lw.loops, loopCtx{breakBlk: done.Index, continueBlk: head.Index})
		lw.stmt(st.Body)
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.jump(head)
		lw.setBlock(done)
	case *cminor.DoWhileStmt:
		body := lw.newBlock("do.body")
		head := lw.newBlock("do.cond")
		done := lw.newBlock("do.done")
		lw.jump(body)
		lw.setBlock(body)
		lw.loops = append(lw.loops, loopCtx{breakBlk: done.Index, continueBlk: head.Index})
		lw.stmt(st.Body)
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.jump(head)
		lw.setBlock(head)
		cond := lw.condition(st.Cond)
		lw.branch(cond, body, done)
		lw.setBlock(done)
	case *cminor.SwitchStmt:
		lw.switchStmt(st)
	case *cminor.ForStmt:
		if st.Init != nil {
			lw.stmt(st.Init)
		}
		head := lw.newBlock("for.head")
		body := lw.newBlock("for.body")
		post := lw.newBlock("for.post")
		done := lw.newBlock("for.done")
		lw.jump(head)
		lw.setBlock(head)
		if st.Cond != nil {
			cond := lw.condition(st.Cond)
			lw.branch(cond, body, done)
		} else {
			lw.jump(body)
		}
		lw.setBlock(body)
		lw.loops = append(lw.loops, loopCtx{breakBlk: done.Index, continueBlk: post.Index})
		lw.stmt(st.Body)
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.jump(post)
		lw.setBlock(post)
		if st.Post != nil {
			lw.stmt(st.Post)
		}
		lw.jump(head)
		lw.setBlock(done)
	case *cminor.ReturnStmt:
		if st.X != nil {
			v := lw.expr(st.X)
			lw.emit(mir.Instr{Op: mir.RetOp, A: v, Pos: st.Pos})
		} else {
			lw.emit(mir.Instr{Op: mir.RetOp, A: mir.NoReg, Pos: st.Pos})
		}
		// Subsequent statements in this block are unreachable; give them
		// a fresh block so verification stays happy.
		lw.setBlock(lw.newBlock("dead"))
	case *cminor.BreakStmt:
		if len(lw.loops) == 0 {
			lw.fail(st.Pos, "break outside a loop")
			return
		}
		lw.emit(mir.Instr{Op: mir.Jmp, A: mir.NoReg, Dst: mir.NoReg, Targets: [2]int{lw.loops[len(lw.loops)-1].breakBlk}})
		lw.setBlock(lw.newBlock("dead"))
	case *cminor.ContinueStmt:
		if len(lw.loops) == 0 || lw.loops[len(lw.loops)-1].continueBlk < 0 {
			lw.fail(st.Pos, "continue outside a loop")
			return
		}
		lw.emit(mir.Instr{Op: mir.Jmp, A: mir.NoReg, Dst: mir.NoReg, Targets: [2]int{lw.loops[len(lw.loops)-1].continueBlk}})
		lw.setBlock(lw.newBlock("dead"))
	default:
		lw.fail(cminor.Pos{}, "unknown statement %T", s)
	}
}

// switchStmt lowers a C switch: a chain of equality tests dispatching to
// per-case blocks laid out in source order, so fallthrough is simply
// falling into the next block. break jumps to done.
func (lw *lowerer) switchStmt(st *cminor.SwitchStmt) {
	tag := lw.expr(st.Tag)
	done := lw.newBlock("switch.done")
	caseBlocks := make([]*mir.Block, len(st.Cases))
	for i := range st.Cases {
		caseBlocks[i] = lw.newBlock("switch.case")
	}
	// Dispatch chain.
	for i, cs := range st.Cases {
		if cs.IsDefault {
			continue
		}
		for _, v := range cs.Values {
			next := lw.newBlock("switch.test")
			cv := lw.emitDst(mir.Instr{Op: mir.Const, Imm: v, Ty: ctypes.LongType})
			eq := lw.emitDst(mir.Instr{Op: mir.CmpInstr, CmpSub: mir.Eq, A: tag, B: cv, Ty: ctypes.IntType})
			lw.branch(eq, caseBlocks[i], next)
			lw.setBlock(next)
		}
	}
	if st.Default >= 0 {
		lw.jump(caseBlocks[st.Default])
	} else {
		lw.jump(done)
	}
	// Case bodies with fallthrough.
	lw.loops = append(lw.loops, loopCtx{breakBlk: done.Index, continueBlk: lw.continueTarget()})
	for i, cs := range st.Cases {
		lw.setBlock(caseBlocks[i])
		for _, s := range cs.Body {
			lw.stmt(s)
		}
		if i+1 < len(caseBlocks) {
			lw.jump(caseBlocks[i+1]) // fallthrough
		} else {
			lw.jump(done)
		}
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.setBlock(done)
}

// continueTarget returns the innermost loop's continue block, or -1 when
// not inside a loop (a continue inside a bare switch is then an error the
// stmt lowering reports).
func (lw *lowerer) continueTarget() int {
	if len(lw.loops) == 0 {
		return -1
	}
	return lw.loops[len(lw.loops)-1].continueBlk
}

// condition lowers an expression used as a branch condition to a 0/1 reg.
func (lw *lowerer) condition(e cminor.Expr) mir.Reg {
	v := lw.expr(e)
	// Comparisons already produce 0/1; normalize everything else.
	if b, ok := e.(*cminor.Binary); ok {
		switch b.Op {
		case cminor.Eq, cminor.Ne, cminor.Lt, cminor.Le, cminor.Gt, cminor.Ge, cminor.LogAnd, cminor.LogOr:
			return v
		}
	}
	z := lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: ctypes.LongType})
	return lw.emitDst(mir.Instr{Op: mir.CmpInstr, CmpSub: mir.Ne, A: v, B: z, Ty: ctypes.IntType})
}

// ---------- Lvalues ----------

// place is an lvalue: an address register plus the debug Slot describing
// what lives there.
type place struct {
	addr mir.Reg
	slot mir.Slot
	ty   *ctypes.Type
}

func (lw *lowerer) address(e cminor.Expr) place {
	switch x := e.(type) {
	case *cminor.Ident:
		if x.Var == nil {
			lw.fail(x.Position(), "cannot take the place of function %s", x.Name)
			return place{addr: lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: ctypes.LongType})}
		}
		slot := mir.Slot{Kind: mir.SlotVar, Var: x.Var.ID}
		if x.Var.Global {
			gi := lw.globalIndex(x.Var)
			a := lw.emitDst(mir.Instr{Op: mir.GlobalAddr, Imm: int64(gi), Ty: ctypes.PointerTo(x.Var.Type), Slot: slot, Pos: x.Position()})
			return place{addr: a, slot: slot, ty: x.Var.Type}
		}
		r, ok := lw.slots[x.Var.ID]
		if !ok {
			lw.fail(x.Position(), "variable %s has no slot", x.Name)
			r = lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: ctypes.LongType})
		}
		return place{addr: r, slot: slot, ty: x.Var.Type}

	case *cminor.Unary:
		if x.Op != cminor.Deref {
			break
		}
		a := lw.expr(x.X)
		return place{addr: a, slot: mir.Slot{Kind: mir.SlotNone}, ty: x.Ty}

	case *cminor.Member:
		var base mir.Reg
		if x.Arrow {
			base = lw.expr(x.X)
		} else {
			base = lw.address(x.X).addr
		}
		fieldIdx := lw.fieldIndex(x.StructTy, x.Name)
		slot := mir.Slot{Kind: mir.SlotField, Struct: x.StructTy, Field: fieldIdx}
		a := lw.emitDst(mir.Instr{Op: mir.FieldAddr, A: base, Imm: int64(x.Field.Offset),
			Ty: ctypes.PointerTo(x.Field.Type), Slot: slot, Pos: x.Position()})
		return place{addr: a, slot: slot, ty: x.Field.Type}

	case *cminor.Index:
		base := lw.expr(x.X)
		idx := lw.expr(x.I)
		elem := x.Ty
		a := lw.emitDst(mir.Instr{Op: mir.IndexAddr, A: base, B: idx, Imm: int64(elem.Size()),
			Ty: ctypes.PointerTo(elem), Pos: x.Position()})
		return place{addr: a, slot: mir.Slot{Kind: mir.SlotElem}, ty: elem}
	}
	lw.fail(e.Position(), "expression is not an lvalue: %T", e)
	return place{addr: lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: ctypes.LongType})}
}

func (lw *lowerer) fieldIndex(st *ctypes.Type, name string) int {
	for i, f := range st.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

func (lw *lowerer) globalIndex(sym *cminor.VarSym) int {
	for i, g := range lw.prog.Globals {
		if g.Var == sym.ID {
			return i
		}
	}
	lw.fail(sym.DeclPos, "global %s not found", sym.Name)
	return 0
}

// ---------- Expressions ----------

func (lw *lowerer) expr(e cminor.Expr) mir.Reg {
	switch x := e.(type) {
	case *cminor.IntLit:
		return lw.emitDst(mir.Instr{Op: mir.Const, Imm: x.Val, Ty: x.Ty, Pos: x.Position()})
	case *cminor.CharLit:
		return lw.emitDst(mir.Instr{Op: mir.Const, Imm: int64(x.Val), Ty: x.Ty, Pos: x.Position()})
	case *cminor.FloatLit:
		return lw.emitDst(mir.Instr{Op: mir.ConstF, Imm: int64(math.Float64bits(x.Val)), Ty: x.Ty, Pos: x.Position()})
	case *cminor.NullLit:
		return lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: x.Ty, Pos: x.Position()})
	case *cminor.StrLit:
		idx := lw.addString(x.Val)
		return lw.emitDst(mir.Instr{Op: mir.StrConst, Imm: int64(idx), Ty: x.Ty, Pos: x.Position()})
	case *cminor.SizeofExpr:
		return lw.emitDst(mir.Instr{Op: mir.Const, Imm: int64(x.Of.Size()), Ty: x.Ty, Pos: x.Position()})

	case *cminor.Ident:
		if x.Fun != nil {
			return lw.emitDst(mir.Instr{Op: mir.FuncAddr, Callee: x.Fun.Name, Ty: x.Ty, Pos: x.Position()})
		}
		pl := lw.address(x)
		return lw.emitDst(mir.Instr{Op: mir.Load, A: pl.addr, Ty: x.Var.Type, Slot: pl.slot, Pos: x.Position()})

	case *cminor.Unary:
		switch x.Op {
		case cminor.Deref:
			a := lw.expr(x.X)
			return lw.emitDst(mir.Instr{Op: mir.Load, A: a, Ty: x.Ty, Slot: mir.Slot{Kind: mir.SlotNone}, Pos: x.Position()})
		case cminor.Addr:
			return lw.address(x.X).addr
		case cminor.Neg:
			v := lw.expr(x.X)
			if isFloat(x.Ty) {
				z := lw.emitDst(mir.Instr{Op: mir.ConstF, Imm: 0, Ty: x.Ty})
				return lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: mir.FSub, A: z, B: v, Ty: x.Ty, Pos: x.Position()})
			}
			z := lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: x.Ty})
			return lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: mir.Sub, A: z, B: v, Ty: x.Ty, Pos: x.Position()})
		case cminor.BitNot:
			v := lw.expr(x.X)
			m := lw.emitDst(mir.Instr{Op: mir.Const, Imm: -1, Ty: x.Ty})
			return lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: mir.Xor, A: v, B: m, Ty: x.Ty, Pos: x.Position()})
		case cminor.LogNot:
			v := lw.expr(x.X)
			z := lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: ctypes.LongType})
			return lw.emitDst(mir.Instr{Op: mir.CmpInstr, CmpSub: mir.Eq, A: v, B: z, Ty: ctypes.IntType, Pos: x.Position()})
		}

	case *cminor.Binary:
		return lw.binary(x)

	case *cminor.Assign:
		return lw.assign(x)

	case *cminor.IncDec:
		pl := lw.address(x.X)
		old := lw.emitDst(mir.Instr{Op: mir.Load, A: pl.addr, Ty: pl.ty, Slot: pl.slot, Pos: x.Position()})
		step := int64(1)
		if pl.ty.Kind == ctypes.Pointer {
			step = int64(pl.ty.Elem.Size())
		}
		if x.Decr {
			step = -step
		}
		d := lw.emitDst(mir.Instr{Op: mir.Const, Imm: step, Ty: ctypes.LongType})
		nv := lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: mir.Add, A: old, B: d, Ty: pl.ty, Pos: x.Position()})
		lw.emit(mir.Instr{Op: mir.Store, A: pl.addr, B: nv, Ty: pl.ty, Slot: pl.slot, Pos: x.Position()})
		return nv

	case *cminor.Cond:
		slot := lw.emitAlloca(mir.Instr{Op: mir.Alloca, Ty: x.Ty, Slot: mir.Slot{Kind: mir.SlotNone}, Pos: x.Position()})
		thenB := lw.newBlock("cond.then")
		elseB := lw.newBlock("cond.else")
		done := lw.newBlock("cond.done")
		c := lw.condition(x.C)
		lw.branch(c, thenB, elseB)
		lw.setBlock(thenB)
		av := lw.expr(x.A)
		lw.emit(mir.Instr{Op: mir.Store, A: slot, B: av, Ty: x.Ty})
		lw.jump(done)
		lw.setBlock(elseB)
		bv := lw.expr(x.B)
		lw.emit(mir.Instr{Op: mir.Store, A: slot, B: bv, Ty: x.Ty})
		lw.jump(done)
		lw.setBlock(done)
		return lw.emitDst(mir.Instr{Op: mir.Load, A: slot, Ty: x.Ty, Slot: mir.Slot{Kind: mir.SlotNone}})

	case *cminor.Call:
		return lw.call(x)

	case *cminor.Member, *cminor.Index:
		pl := lw.address(e)
		return lw.emitDst(mir.Instr{Op: mir.Load, A: pl.addr, Ty: pl.ty, Slot: pl.slot, Pos: e.Position()})

	case *cminor.Cast:
		from := x.X.Type()
		var v mir.Reg
		if from != nil && from.Kind == ctypes.Array {
			// Array decay: the value is the array's address.
			v = lw.address(x.X).addr
			from = ctypes.PointerTo(from.Elem)
		} else {
			v = lw.expr(x.X)
		}
		return lw.emitDst(mir.Instr{Op: mir.CastOp, A: v, FromTy: from, Ty: x.Ty, Pos: x.Position()})
	}
	lw.fail(e.Position(), "unknown expression %T", e)
	return lw.emitDst(mir.Instr{Op: mir.Const, Imm: 0, Ty: ctypes.IntType})
}

func isFloat(t *ctypes.Type) bool {
	return t != nil && (t.Kind == ctypes.Float || t.Kind == ctypes.Double)
}

func (lw *lowerer) binary(x *cminor.Binary) mir.Reg {
	switch x.Op {
	case cminor.LogAnd, cminor.LogOr:
		return lw.shortCircuit(x)
	}
	a := lw.expr(x.X)
	b := lw.expr(x.Y)
	xt, yt := x.X.Type(), x.Y.Type()

	// Pointer arithmetic scaling.
	if x.Op == cminor.Add || x.Op == cminor.Sub {
		if xt.Kind == ctypes.Pointer && yt.IsInteger() {
			b = lw.scale(b, xt.Elem.Size())
		} else if yt.Kind == ctypes.Pointer && xt.IsInteger() && x.Op == cminor.Add {
			a = lw.scale(a, yt.Elem.Size())
		}
	}

	fl := isFloat(xt) || isFloat(yt)
	switch x.Op {
	case cminor.Add, cminor.Sub, cminor.Mul, cminor.Div, cminor.Rem,
		cminor.And, cminor.Or, cminor.Xor, cminor.Shl, cminor.Shr:
		sub := map[cminor.BinOp]mir.BinSub{
			cminor.Add: mir.Add, cminor.Sub: mir.Sub, cminor.Mul: mir.Mul,
			cminor.Div: mir.Div, cminor.Rem: mir.Rem, cminor.And: mir.And,
			cminor.Or: mir.Or, cminor.Xor: mir.Xor, cminor.Shl: mir.Shl, cminor.Shr: mir.Shr,
		}[x.Op]
		if fl {
			switch x.Op {
			case cminor.Add:
				sub = mir.FAdd
			case cminor.Sub:
				sub = mir.FSub
			case cminor.Mul:
				sub = mir.FMul
			case cminor.Div:
				sub = mir.FDiv
			}
		}
		r := lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: sub, A: a, B: b, Ty: x.Ty, Pos: x.Position()})
		// Pointer difference divides by the element size.
		if x.Op == cminor.Sub && xt.Kind == ctypes.Pointer && yt.Kind == ctypes.Pointer {
			sz := lw.emitDst(mir.Instr{Op: mir.Const, Imm: int64(xt.Elem.Size()), Ty: ctypes.LongType})
			r = lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: mir.Div, A: r, B: sz, Ty: ctypes.LongType})
		}
		return r
	case cminor.Eq, cminor.Ne, cminor.Lt, cminor.Le, cminor.Gt, cminor.Ge:
		sub := map[cminor.BinOp]mir.CmpSub{
			cminor.Eq: mir.Eq, cminor.Ne: mir.Ne, cminor.Lt: mir.Lt,
			cminor.Le: mir.Le, cminor.Gt: mir.Gt, cminor.Ge: mir.Ge,
		}[x.Op]
		// FromTy records the operand type so the VM picks float compare.
		return lw.emitDst(mir.Instr{Op: mir.CmpInstr, CmpSub: sub, A: a, B: b, Ty: ctypes.IntType, FromTy: xt, Pos: x.Position()})
	}
	lw.fail(x.Position(), "unknown binary op %d", x.Op)
	return a
}

func (lw *lowerer) scale(r mir.Reg, size int) mir.Reg {
	if size == 1 {
		return r
	}
	s := lw.emitDst(mir.Instr{Op: mir.Const, Imm: int64(size), Ty: ctypes.LongType})
	return lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: mir.Mul, A: r, B: s, Ty: ctypes.LongType})
}

// shortCircuit lowers && and || with control flow, storing the result in a
// dedicated stack slot (the -O0 idiom that avoids SSA phis).
func (lw *lowerer) shortCircuit(x *cminor.Binary) mir.Reg {
	slot := lw.emitAlloca(mir.Instr{Op: mir.Alloca, Ty: ctypes.IntType, Slot: mir.Slot{Kind: mir.SlotNone}, Pos: x.Position()})
	evalY := lw.newBlock("sc.rhs")
	short := lw.newBlock("sc.short")
	done := lw.newBlock("sc.done")

	condX := lw.condition(x.X)
	if x.Op == cminor.LogAnd {
		lw.branch(condX, evalY, short)
	} else {
		lw.branch(condX, short, evalY)
	}

	lw.setBlock(evalY)
	condY := lw.condition(x.Y)
	lw.emit(mir.Instr{Op: mir.Store, A: slot, B: condY, Ty: ctypes.IntType})
	lw.jump(done)

	lw.setBlock(short)
	imm := int64(0)
	if x.Op == cminor.LogOr {
		imm = 1
	}
	c := lw.emitDst(mir.Instr{Op: mir.Const, Imm: imm, Ty: ctypes.IntType})
	lw.emit(mir.Instr{Op: mir.Store, A: slot, B: c, Ty: ctypes.IntType})
	lw.jump(done)

	lw.setBlock(done)
	return lw.emitDst(mir.Instr{Op: mir.Load, A: slot, Ty: ctypes.IntType, Slot: mir.Slot{Kind: mir.SlotNone}})
}

func (lw *lowerer) assign(x *cminor.Assign) mir.Reg {
	v := lw.expr(x.RHS)
	pl := lw.address(x.LHS)
	if x.Op != cminor.ASSIGN {
		old := lw.emitDst(mir.Instr{Op: mir.Load, A: pl.addr, Ty: pl.ty, Slot: pl.slot, Pos: x.Position()})
		if pl.ty.Kind == ctypes.Pointer {
			v = lw.scale(v, pl.ty.Elem.Size())
		}
		sub, ok := map[cminor.TokKind]mir.BinSub{
			cminor.PLUSEQ: mir.Add, cminor.MINUSEQ: mir.Sub,
			cminor.STAREQ: mir.Mul, cminor.SLASHEQ: mir.Div, cminor.PCTEQ: mir.Rem,
			cminor.AMPEQ: mir.And, cminor.PIPEEQ: mir.Or, cminor.CARETEQ: mir.Xor,
			cminor.SHLEQ: mir.Shl, cminor.SHREQ: mir.Shr,
		}[x.Op]
		if !ok {
			lw.fail(x.Position(), "unknown compound assignment %v", x.Op)
		}
		if isFloat(pl.ty) {
			switch sub {
			case mir.Add:
				sub = mir.FAdd
			case mir.Sub:
				sub = mir.FSub
			case mir.Mul:
				sub = mir.FMul
			case mir.Div:
				sub = mir.FDiv
			}
		}
		v = lw.emitDst(mir.Instr{Op: mir.BinInstr, BinSub: sub, A: old, B: v, Ty: pl.ty, Pos: x.Position()})
	}
	lw.emit(mir.Instr{Op: mir.Store, A: pl.addr, B: v, Ty: pl.ty, Slot: pl.slot, Pos: x.Position()})
	return v
}

func (lw *lowerer) call(x *cminor.Call) mir.Reg {
	args := make([]mir.Reg, len(x.Args))
	for i, a := range x.Args {
		args[i] = lw.expr(a)
	}
	in := mir.Instr{Op: mir.CallOp, Args: args, Ty: x.Ty, Pos: x.Position(), A: mir.NoReg, B: mir.NoReg}
	if id, ok := x.Fun.(*cminor.Ident); ok && id.Fun != nil {
		in.Callee = id.Fun.Name
	} else {
		in.A = lw.expr(x.Fun)
	}
	if x.Ty.Kind == ctypes.Void {
		in.Dst = mir.NoReg
		lw.emit(in)
		return mir.NoReg
	}
	return lw.emitDst(in)
}

package cminor

import "testing"

// FuzzFrontend is a native fuzz target over the whole frontend; under
// plain `go test` it exercises the seed corpus below, and `go test
// -fuzz=FuzzFrontend ./internal/cminor` explores further. The invariant is
// absence of panics: every input yields a File or an error.
func FuzzFrontend(f *testing.F) {
	seeds := []string{
		"",
		"int main(void) { return 0; }",
		"struct s { int a; struct s *next; };",
		"typedef struct { void (*fp)(int); } t; int main(void) { t *x = (t*) malloc(8); return 0; }",
		"enum e { A, B = 2 }; int main(void) { switch (A) { case B: break; } return A; }",
		"int f(int **pp) { return **pp; }",
		"int main(void) { for (int i = 0; i < 3; i++) { do { i++; } while (0); } return 0; }",
		"int main(void) { return 1 ? 2 : 3; }",
		"char *s = \"str\\n\"; int main(void) { return (int) strlen(s); }",
		"int main(void) { int a[2][2]; a[1][1] = 4; return a[1][1]; }",
		"int main(void) { /* unterminated",
		"int main(void) { return ((((((1)))))); }",
		"void f(void); void f(void) { }",
		"int x = ; int main(void) { return 0; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		_, _ = Frontend(src)
	})
}

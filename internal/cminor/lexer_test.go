package cminor

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	ks := make([]TokKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("int main(void) { return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{KwInt, IDENT, LPAREN, KwVoid, RPAREN, LBRACE, KwReturn, INTLIT, SEMI, RBRACE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "-> ++ -- == != <= >= && || += -= ... << >> | ^ ~"
	want := []TokKind{ARROW, INC, DEC, EQ, NE, LE, GE, ANDAND, OROR, PLUSEQ, MINUSEQ, ELLIPSIS, SHL, SHR, PIPE, CARET, TILDE, EOF}
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "42": 42, "123456789": 123456789,
		"0x10": 16, "0xff": 255, "0xDEAD": 0xDEAD, "100L": 100, "7UL": 7,
	}
	for src, want := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != INTLIT || toks[0].Val != want {
			t.Errorf("%q lexed to %v (val %d), want %d", src, toks[0].Kind, toks[0].Val, want)
		}
	}
}

func TestLexCharAndString(t *testing.T) {
	toks, err := Lex(`'a' '\n' '\0' "hello\tworld" ""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 'a' || toks[1].Val != '\n' || toks[2].Val != 0 {
		t.Errorf("char literals: %v", toks[:3])
	}
	if toks[3].Text != "hello\tworld" {
		t.Errorf("string literal = %q", toks[3].Text)
	}
	if toks[4].Kind != STRLIT || toks[4].Text != "" {
		t.Errorf("empty string literal = %v", toks[4])
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("int /* a block\ncomment */ x; // line comment\nchar y;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{KwInt, IDENT, SEMI, KwChar, IDENT, SEMI, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{"@", "'unterminated", `"unterminated`, "/* unterminated", "'\\q'", "0x"}
	for _, src := range bad {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("error lacks position: %v", err)
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("iffy structx returning")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if toks[i].Kind != IDENT {
			t.Errorf("%q lexed as %s, want identifier", toks[i].Text, toks[i].Kind)
		}
	}
}

package cminor

import (
	"strings"
	"testing"
)

// expectCheckError compiles src and demands a semantic error mentioning
// the fragment.
func expectCheckError(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := Frontend(src)
	if err == nil {
		t.Fatalf("no error for %q", fragment)
	}
	if fragment != "" && !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q", err.Error(), fragment)
	}
}

func TestCheckerRejections(t *testing.T) {
	cases := []struct {
		name, src, fragment string
	}{
		{"undeclared", `int main(void) { return nope; }`, "undeclared"},
		{"call-non-function", `int main(void) { int x = 1; return x(); }`, "not a function"},
		{"deref-non-pointer", `int main(void) { int x = 1; return *x; }`, "dereference"},
		{"member-of-non-struct", `int main(void) { int x = 1; return x.field; }`, "non-struct"},
		{"missing-field", `
			struct s { int a; };
			int main(void) { struct s v; return v.b; }`, "no field"},
		{"arrow-on-value", `
			struct s { int a; };
			int main(void) { struct s v; return v->a; }`, "->"},
		{"wrong-arg-count", `
			int f(int a, int b) { return a + b; }
			int main(void) { return f(1); }`, "number of arguments"},
		{"too-many-args", `
			int f(int a) { return a; }
			int main(void) { return f(1, 2); }`, "number of arguments"},
		{"return-value-from-void", `
			void f(void) { return 3; }
			int main(void) { return 0; }`, "void function"},
		{"missing-return-value", `
			int f(void) { return; }
			int main(void) { return 0; }`, "without value"},
		{"assign-to-rvalue", `int main(void) { 3 = 4; return 0; }`, "non-lvalue"},
		{"addr-of-rvalue", `int main(void) { int *p = &3; return 0; }`, "non-lvalue"},
		{"const-assign", `
			int main(void) { const int x = 1; x = 2; return x; }`, "const"},
		{"const-pointee-write", `
			int main(void) {
				const char *s = "ro";
				*s = 'x';
				return 0;
			}`, "const"},
		{"incompatible-pointer", `
			int main(void) { int *p = 0; char *q = 0; p = q; return 0; }`, "explicit cast"},
		{"switch-float-tag", `
			int main(void) { double d = 1.0; switch (d) { case 1: return 1; } return 0; }`, "integer"},
		{"incompatible-ternary", `
			struct a { int x; };
			struct b { int y; };
			int main(void) {
				struct a *pa = 0;
				struct b *pb = 0;
				void *v = 1 ? pa : pb;
				return 0;
			}`, "ternary"},
		{"incomplete-struct-use", `
			struct fwd;
			int main(void) { struct fwd *p = 0; return p->x; }`, "incomplete"},
		{"pointer-mod-compound", `
			int main(void) { int x = 1; int *p = &x; p *= 2; return 0; }`, "compound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			expectCheckError(t, c.src, c.fragment)
		})
	}
}

func TestCheckerAccepts(t *testing.T) {
	good := []string{
		// NULL converts to any pointer.
		`int main(void) { int *p = NULL; char *q = NULL; void (*f)(void) = NULL; return 0; }`,
		// 0 literal as null pointer constant.
		`int main(void) { int *p = 0; return p == 0; }`,
		// void* converts implicitly both ways.
		`int main(void) { int *p = malloc(4); void *v = p; int *q = v; return 0; }`,
		// Adding const to the pointee is fine.
		`long take(const char *s);
		 long take(const char *s) { return strlen(s); }
		 int main(void) { char *m = "x"; return (int) take(m); }`,
		// Integer widening and narrowing.
		`int main(void) { char c = 300; long l = c; int i = (int) l; return i & 1; }`,
		// sizeof both forms.
		`struct s { long a; long b; };
		 int main(void) { long t = sizeof(struct s) + sizeof(int); int x = 0; return (int)(t + sizeof(x)); }`,
		// Variadic printf with mixed args.
		`int main(void) { printf("%s %d %c", "a", 1, 'x'); return 0; }`,
	}
	for i, src := range good {
		if _, err := Frontend(src); err != nil {
			t.Errorf("program %d rejected: %v", i, err)
		}
	}
}

func TestCheckerFunctionRedefinition(t *testing.T) {
	expectCheckError(t, `
		int f(void) { return 1; }
		int f(void) { return 2; }
		int main(void) { return f(); }
	`, "redefined")
	// A prototype followed by a body is fine.
	if _, err := Frontend(`
		int f(void);
		int f(void) { return 1; }
		int main(void) { return f(); }
	`); err != nil {
		t.Errorf("prototype+definition rejected: %v", err)
	}
}

func TestCheckerGlobalRedeclaration(t *testing.T) {
	expectCheckError(t, `
		int g;
		int g;
		int main(void) { return g; }
	`, "redeclared")
}

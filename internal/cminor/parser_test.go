package cminor

import (
	"testing"

	"rsti/internal/ctypes"
)

func mustFrontend(t *testing.T, src string) *File {
	t.Helper()
	f, err := Frontend(src)
	if err != nil {
		t.Fatalf("Frontend: %v", err)
	}
	return f
}

func TestParseMinimalMain(t *testing.T) {
	f := mustFrontend(t, "int main(void) { return 0; }")
	fn, ok := f.FuncByName("main")
	if !ok {
		t.Fatal("no main")
	}
	if fn.Ret != ctypes.IntType || len(fn.Params) != 0 {
		t.Errorf("main signature wrong: %s %d params", fn.Ret, len(fn.Params))
	}
	if len(fn.Body.Stmts) != 1 {
		t.Fatalf("body stmts = %d", len(fn.Body.Stmts))
	}
	ret, ok := fn.Body.Stmts[0].(*ReturnStmt)
	if !ok {
		t.Fatalf("stmt is %T", fn.Body.Stmts[0])
	}
	if lit, ok := ret.X.(*IntLit); !ok || lit.Val != 0 {
		t.Errorf("return value: %#v", ret.X)
	}
}

func TestParseStructWithSelfReference(t *testing.T) {
	// The composite-type example from the paper's Figure 6.
	f := mustFrontend(t, `
		struct node {
			int key;
			int (*fp)();
			struct node *next;
		};
		int main(void) { return 0; }
	`)
	st, ok := f.Types.Struct("node")
	if !ok {
		t.Fatal("struct node not registered")
	}
	if len(st.Fields) != 3 {
		t.Fatalf("fields = %d", len(st.Fields))
	}
	fp, _ := st.FieldByName("fp")
	if !fp.Type.IsFuncPointer() {
		t.Errorf("fp type = %s, want function pointer", fp.Type)
	}
	next, _ := st.FieldByName("next")
	if next.Type.Kind != ctypes.Pointer || next.Type.Elem != st {
		t.Errorf("next type = %s", next.Type)
	}
}

func TestParseTypedefStruct(t *testing.T) {
	// The typedef'd ctx struct from the paper's Figure 5.
	f := mustFrontend(t, `
		typedef struct { void (*send_file)(int x); } ctx;
		int main(void) {
			ctx* c = (ctx*) malloc(8);
			return 0;
		}
	`)
	td, ok := f.Typedefs["ctx"]
	if !ok {
		t.Fatal("typedef ctx missing")
	}
	if td.Kind != ctypes.Struct {
		t.Fatalf("ctx is %s", td)
	}
	if _, ok := td.FieldByName("send_file"); !ok {
		t.Error("send_file field missing")
	}
}

func TestParseFunctionPointerDeclarator(t *testing.T) {
	f := mustFrontend(t, `
		int add(int a, int b) { return a + b; }
		int main(void) {
			int (*op)(int, int) = add;
			return op(2, 3);
		}
	`)
	fn, _ := f.FuncByName("main")
	ds := fn.Body.Stmts[0].(*DeclStmt)
	ty := ds.Decl.Type
	if !ty.IsFuncPointer() {
		t.Fatalf("op type = %s", ty)
	}
	if len(ty.Elem.Params) != 2 || ty.Elem.Ret != ctypes.IntType {
		t.Errorf("op signature = %s", ty.Elem)
	}
}

func TestParseMultiDeclarators(t *testing.T) {
	// Figure 8's "void *p1, *p2;" shape.
	f := mustFrontend(t, `
		void foo(void) {
			void *p1, *p2;
			int *p3;
			p1 = (void*) p3;
			p2 = p1;
		}
	`)
	fn, _ := f.FuncByName("foo")
	dl, ok := fn.Body.Stmts[0].(*DeclList)
	if !ok {
		t.Fatalf("multi-decl lowered to %T", fn.Body.Stmts[0])
	}
	if len(dl.Decls) != 2 {
		t.Fatalf("decls = %d", len(dl.Decls))
	}
	for _, s := range dl.Decls {
		d := s.Decl
		if !d.Type.Equal(ctypes.PointerTo(ctypes.VoidType)) {
			t.Errorf("%s type = %s, want void*", d.Name, d.Type)
		}
	}
}

func TestParseConstPermissions(t *testing.T) {
	f := mustFrontend(t, `
		int main(void) {
			const void *cp = malloc(1);
			const char *s = "x";
			char * const pc = 0;
			return 0;
		}
	`)
	fn, _ := f.FuncByName("main")
	d0 := fn.Body.Stmts[0].(*DeclStmt).Decl
	if d0.Type.Kind != ctypes.Pointer || !d0.Type.Elem.Const {
		t.Errorf("cp type = %s, want pointer to const void", d0.Type)
	}
	d2 := fn.Body.Stmts[2].(*DeclStmt).Decl
	if !d2.Type.Const || d2.Type.Kind != ctypes.Pointer {
		t.Errorf("pc type = %s, want const pointer", d2.Type)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustFrontend(t, `
		int collatz(int n) {
			int steps = 0;
			while (n != 1) {
				if (n % 2 == 0) { n = n / 2; }
				else { n = 3 * n + 1; }
				steps++;
			}
			for (int i = 0; i < 3; i++) {
				steps += 1;
				if (steps > 100) break;
				continue;
			}
			return steps;
		}
	`)
	if _, ok := f.FuncByName("collatz"); !ok {
		t.Fatal("collatz missing")
	}
}

func TestParseFigure1LibtiffShape(t *testing.T) {
	// Abstracted control-flow hijack victim from the paper's Figure 1.
	mustFrontend(t, `
		typedef struct tiff {
			int (*tif_encoderow)(struct tiff *t, char *buf, long size);
			long tif_scanlinesize;
		} TIFF;
		extern int _TIFFNoRowEncode(TIFF *t, char *buf, long size);
		void _TIFFSetDefaultCompressionState(TIFF* tif) {
			tif->tif_encoderow = _TIFFNoRowEncode;
		}
		int TIFFWriteScanline(TIFF* tif, char* buf) {
			int status = tif->tif_encoderow(tif, buf, tif->tif_scanlinesize);
			return status;
		}
	`)
}

func TestParseFigure2GhttpdShape(t *testing.T) {
	mustFrontend(t, `
		extern void log_request(char *msg);
		int serveconnection(int sockfd) {
			char *ptr = "GET /index.html";
			if (strstr(ptr, "/..")) { return 1; }
			log_request(ptr);
			if (strstr(ptr, "cgi-bin")) { return 2; }
			return 0;
		}
	`)
}

func TestParseFigure7DoublePointerShape(t *testing.T) {
	f := mustFrontend(t, `
		struct node { int key; };
		void foo1(struct node** pp1) { }
		void foo2(void** pp2) { }
		int main(void) {
			struct node* p = (struct node*) malloc(sizeof(struct node));
			foo1(&p);
			foo2((void**) &p);
			return 0;
		}
	`)
	fn, _ := f.FuncByName("foo2")
	if d := fn.Params[0].Type.PointerDepth(); d != 2 {
		t.Errorf("pp2 pointer depth = %d, want 2", d)
	}
}

func TestParseSizeof(t *testing.T) {
	f := mustFrontend(t, `
		struct node { int key; struct node *next; };
		int main(void) {
			long a = sizeof(struct node);
			long b = sizeof(int);
			int x = 7;
			long c = sizeof(x);
			return 0;
		}
	`)
	fn, _ := f.FuncByName("main")
	a := fn.Body.Stmts[0].(*DeclStmt).Decl.Init
	// the initializer may be wrapped in an implicit cast
	for {
		if c, ok := a.(*Cast); ok {
			a = c.X
			continue
		}
		break
	}
	sz, ok := a.(*SizeofExpr)
	if !ok {
		t.Fatalf("init is %T", a)
	}
	if sz.Of.Size() != 16 {
		t.Errorf("sizeof(struct node) = %d, want 16", sz.Of.Size())
	}
}

func TestParseGlobals(t *testing.T) {
	f := mustFrontend(t, `
		int counter = 3;
		char *banner = "hi";
		void (*handler)(int);
		int main(void) { counter = counter + 1; return counter; }
	`)
	if len(f.Globals) != 3 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	if !f.Globals[2].Type.IsFuncPointer() {
		t.Errorf("handler type = %s", f.Globals[2].Type)
	}
	for _, g := range f.Globals {
		if g.Sym == nil || !g.Sym.Global {
			t.Errorf("global %s has no global symbol", g.Name)
		}
	}
}

func TestParseExternFunctions(t *testing.T) {
	f := mustFrontend(t, `
		extern void external_sink(void *p);
		int main(void) {
			external_sink(malloc(4));
			return 0;
		}
	`)
	fn, ok := f.FuncByName("external_sink")
	if !ok {
		t.Fatal("extern not recorded")
	}
	if !fn.Extern || fn.Body != nil {
		t.Error("extern function mis-flagged")
	}
	// builtins registered too
	if _, ok := f.FuncByName("malloc"); !ok {
		t.Error("malloc builtin not registered")
	}
}

func TestParseVariadicDeclaration(t *testing.T) {
	f := mustFrontend(t, `
		extern int logf2(const char *fmt, ...);
		int main(void) { logf2("x %d", 1); return 0; }
	`)
	fn, _ := f.FuncByName("logf2")
	if !fn.Variadic {
		t.Error("variadic flag lost")
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	bad := []string{
		"int main(void) { return 0 }",               // missing semi
		"int main(void) { x = 1; return 0; }",       // undeclared
		"struct s { int a; }; struct s { int b; };", // redefinition
		"int f() { int x; int x; return 0; }" + "",  // shadow in same scope is OK in C? we allow; use a real error:
	}
	for _, src := range bad[:3] {
		if _, err := Frontend(src); err == nil {
			t.Errorf("Frontend(%q) succeeded, want error", src)
		}
	}
}

func TestCheckRejectsConstAssignment(t *testing.T) {
	_, err := Frontend(`
		int main(void) {
			const int x = 3;
			x = 4;
			return 0;
		}
	`)
	if err == nil {
		t.Error("assignment to const accepted")
	}
}

func TestCheckRejectsIncompatiblePointerAssignment(t *testing.T) {
	_, err := Frontend(`
		int main(void) {
			int *p = 0;
			char *q = 0;
			p = q;
			return 0;
		}
	`)
	if err == nil {
		t.Error("int* = char* without a cast accepted")
	}
}

func TestCheckInsertsImplicitCasts(t *testing.T) {
	f := mustFrontend(t, `
		struct node { int key; };
		int main(void) {
			struct node *p = malloc(sizeof(struct node));
			return 0;
		}
	`)
	fn, _ := f.FuncByName("main")
	init := fn.Body.Stmts[0].(*DeclStmt).Decl.Init
	cast, ok := init.(*Cast)
	if !ok {
		t.Fatalf("malloc initializer not wrapped in a cast: %T", init)
	}
	if !cast.Implicit {
		t.Error("cast not marked implicit")
	}
	if cast.Ty.Key() != "struct node*" {
		t.Errorf("cast target = %s", cast.Ty)
	}
}

func TestCheckIndirectCallThroughMember(t *testing.T) {
	f := mustFrontend(t, `
		struct ops { int (*run)(int); };
		int twice(int x) { return x * 2; }
		int main(void) {
			struct ops o;
			o.run = twice;
			return o.run(21);
		}
	`)
	fn, _ := f.FuncByName("main")
	ret := fn.Body.Stmts[2].(*ReturnStmt)
	call, ok := ret.X.(*Call)
	if !ok {
		t.Fatalf("return is %T", ret.X)
	}
	if _, ok := call.Fun.(*Member); !ok {
		t.Errorf("callee is %T, want Member", call.Fun)
	}
	if call.Ty != ctypes.IntType {
		t.Errorf("call type = %s", call.Ty)
	}
}

func TestCheckPointerArithmetic(t *testing.T) {
	f := mustFrontend(t, `
		int sum(int *a, int n) {
			int s = 0;
			for (int i = 0; i < n; i++) { s += a[i]; }
			int *end = a + n;
			long span = end - a;
			return s;
		}
	`)
	fn, _ := f.FuncByName("sum")
	_ = fn
}

func TestCheckAddressOfAndDeref(t *testing.T) {
	f := mustFrontend(t, `
		int main(void) {
			int x = 5;
			int *p = &x;
			int **pp = &p;
			**pp = 6;
			return *p;
		}
	`)
	fn, _ := f.FuncByName("main")
	pp := fn.Body.Stmts[2].(*DeclStmt).Decl
	if pp.Type.PointerDepth() != 2 {
		t.Errorf("pp depth = %d", pp.Type.PointerDepth())
	}
}

func TestCheckStringArgsToBuiltins(t *testing.T) {
	mustFrontend(t, `
		int main(void) {
			printf("hello %d\n", 42);
			puts("done");
			return 0;
		}
	`)
}

func TestVarSymIDsAreDense(t *testing.T) {
	f := mustFrontend(t, `
		int g1;
		char *g2;
		void foo(int a) { int b = a; }
		int main(void) { int c = 1; foo(c); return 0; }
	`)
	for i, s := range f.Syms {
		if s.ID != i {
			t.Errorf("sym %s ID = %d, want %d", s.Name, s.ID, i)
		}
	}
	// globals flagged, locals carry their function
	if !f.Syms[0].Global || f.Syms[0].Name != "g1" {
		t.Error("g1 not first global")
	}
	var foundB bool
	for _, s := range f.Syms {
		if s.Name == "b" {
			foundB = true
			if s.DeclFn != "foo" || s.Global || s.Param {
				t.Errorf("b sym wrong: %+v", s)
			}
		}
	}
	if !foundB {
		t.Error("local b not in Syms")
	}
}

func TestBlockScopeShadowing(t *testing.T) {
	f := mustFrontend(t, `
		int main(void) {
			int x = 1;
			{
				int x = 2;
				x = 3;
			}
			return x;
		}
	`)
	fn, _ := f.FuncByName("main")
	outer := fn.Body.Stmts[0].(*DeclStmt).Decl.Sym
	inner := fn.Body.Stmts[1].(*BlockStmt).Stmts[0].(*DeclStmt).Decl.Sym
	if outer == inner || outer.ID == inner.ID {
		t.Error("shadowed variable shares a symbol with the outer one")
	}
	ret := fn.Body.Stmts[2].(*ReturnStmt).X.(*Ident)
	if ret.Var != outer {
		t.Error("return x resolved to the inner symbol")
	}
}

func TestStaticAndInlineIgnored(t *testing.T) {
	f := mustFrontend(t, `
		static int counter;
		static int bump(void) { counter++; return counter; }
		inline int twice(int x) { return 2 * x; }
		static inline int both(void) { return 1; }
		int main(void) { return bump() + twice(2) + both(); }
	`)
	for _, name := range []string{"bump", "twice", "both"} {
		if _, ok := f.FuncByName(name); !ok {
			t.Errorf("function %s lost", name)
		}
	}
}

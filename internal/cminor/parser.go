package cminor

import (
	"fmt"
	"strings"

	"rsti/internal/ctypes"
)

// Parser is a recursive-descent parser for the cminor C subset. It owns
// the ctypes.Table for the translation unit so that struct and typedef
// names resolve during parsing (the classic "lexer hack" need: telling a
// cast "(node*)x" apart from an expression requires knowing that node is a
// type name).
type Parser struct {
	toks     []Token
	pos      int
	types    *ctypes.Table
	typedefs map[string]*ctypes.Type
	enums    map[string]int64 // enumerator name -> constant value
	file     *File
}

// Parse lexes and parses src into a File. The result is not yet checked;
// call Check (or use Frontend) to resolve names and types.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{
		toks:     toks,
		types:    ctypes.NewTable(),
		typedefs: make(map[string]*ctypes.Type),
		enums:    make(map[string]int64),
	}
	p.file = &File{Types: p.types, Typedefs: p.typedefs, Enums: p.enums}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

// Frontend parses and checks src, returning a fully typed File.
func Frontend(src string) (*File, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(f); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return &SyntaxError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isTypeStart reports whether the token at offset n begins a type.
func (p *Parser) isTypeStart(n int) bool {
	t := p.peek(n)
	switch t.Kind {
	case KwVoid, KwBool, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwUnsigned, KwSigned, KwConst, KwStruct, KwEnum:
		return true
	case IDENT:
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

func (p *Parser) parseFile() error {
	for !p.at(EOF) {
		if err := p.parseTopLevel(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) parseTopLevel() error {
	switch {
	case p.at(KwTypedef):
		return p.parseTypedef()
	case p.at(KwStruct) && p.peek(1).Kind == IDENT && p.peek(2).Kind == SEMI:
		// Forward declaration: "struct X;".
		p.next()
		p.types.DeclareStruct(p.next().Text)
		p.next() // ;
		return nil
	case p.at(KwStruct) && p.peek(1).Kind == IDENT && p.peek(2).Kind == LBRACE:
		_, err := p.parseStructDef()
		if err != nil {
			return err
		}
		_, err = p.expect(SEMI)
		return err
	case p.at(KwEnum):
		return p.parseEnum()
	case p.at(KwExtern):
		p.next()
		return p.parseDeclaration(true)
	case p.at(KwStatic), p.at(KwInline):
		// Linkage and inlining hints carry no semantics in a single
		// translation unit; accept and ignore them.
		for p.at(KwStatic) || p.at(KwInline) {
			p.next()
		}
		return p.parseDeclaration(false)
	default:
		return p.parseDeclaration(false)
	}
}

// parseEnum handles "enum [Tag] { A, B = 5, C };". Enumerators become int
// constants; the enum type itself collapses to int, as C guarantees its
// underlying representation here.
func (p *Parser) parseEnum() error {
	p.next() // enum
	if p.at(IDENT) {
		p.next() // optional tag, unused beyond syntax
	}
	if _, err := p.expect(LBRACE); err != nil {
		return err
	}
	next := int64(0)
	for !p.at(RBRACE) {
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if p.accept(ASSIGN) {
			neg := p.accept(MINUS)
			lit, err := p.expect(INTLIT)
			if err != nil {
				return err
			}
			next = lit.Val
			if neg {
				next = -next
			}
		}
		if _, dup := p.enums[nameTok.Text]; dup {
			return p.errorf("enumerator %q redefined", nameTok.Text)
		}
		p.enums[nameTok.Text] = next
		next++
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return err
	}
	_, err := p.expect(SEMI)
	return err
}

// parseStructDef parses "struct NAME { fields }" (without the trailing
// semicolon) and returns the completed type.
func (p *Parser) parseStructDef() (*ctypes.Type, error) {
	pos := p.cur().Pos
	p.next() // struct
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	p.types.DeclareStruct(nameTok.Text)
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	var fields []ctypes.Field
	for !p.at(RBRACE) {
		base, err := p.parseDeclSpecifiers()
		if err != nil {
			return nil, err
		}
		for {
			name, ty, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			if name == "" {
				return nil, p.errorf("struct field missing a name")
			}
			fields = append(fields, ctypes.Field{Name: name, Type: ty})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	p.next() // }
	st, err := p.types.CompleteStruct(nameTok.Text, fields)
	if err != nil {
		return nil, &SyntaxError{Pos: pos, Msg: err.Error()}
	}
	p.file.Structs = append(p.file.Structs, &StructDecl{Pos: pos, Name: nameTok.Text, Type: st})
	return st, nil
}

// parseTypedef handles "typedef struct {…} name;", "typedef struct X {…}
// name;" and "typedef type name;".
func (p *Parser) parseTypedef() error {
	p.next() // typedef
	var base *ctypes.Type
	var err error
	if p.at(KwStruct) && (p.peek(1).Kind == LBRACE || p.peek(2).Kind == LBRACE) {
		if p.peek(1).Kind == LBRACE {
			// Anonymous struct: give it the typedef's name once known.
			// Parse the body into a placeholder tag derived from the
			// upcoming typedef name, which we must peek: instead, parse
			// fields into a list first.
			base, err = p.parseAnonStructBody()
		} else {
			base, err = p.parseStructDef()
		}
		if err != nil {
			return err
		}
	} else {
		base, err = p.parseDeclSpecifiers()
		if err != nil {
			return err
		}
	}
	name, ty, err := p.parseDeclarator(base)
	if err != nil {
		return err
	}
	if name == "" {
		return p.errorf("typedef missing a name")
	}
	// If the base was an anonymous struct placeholder, adopt the typedef
	// name as its tag so diagnostics and analyses name it like C does.
	if base.Kind == ctypes.Struct && strings.HasPrefix(base.Name, "__anon") {
		p.types.RenameStruct(base.Name, name)
	}
	p.typedefs[name] = ty
	_, err2 := p.expect(SEMI)
	return err2
}

// anonStructCount names anonymous typedef structs uniquely per parser.
func (p *Parser) parseAnonStructBody() (*ctypes.Type, error) {
	pos := p.cur().Pos
	p.next() // struct
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	var fields []ctypes.Field
	for !p.at(RBRACE) {
		base, err := p.parseDeclSpecifiers()
		if err != nil {
			return nil, err
		}
		for {
			name, ty, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			if name == "" {
				return nil, p.errorf("struct field missing a name")
			}
			fields = append(fields, ctypes.Field{Name: name, Type: ty})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	p.next() // }
	tag := fmt.Sprintf("__anon%d", len(p.file.Structs))
	st, err := p.types.CompleteStruct(tag, fields)
	if err != nil {
		return nil, &SyntaxError{Pos: pos, Msg: err.Error()}
	}
	p.file.Structs = append(p.file.Structs, &StructDecl{Pos: pos, Name: tag, Type: st})
	return st, nil
}

// parseDeclSpecifiers parses the base type of a declaration:
// [const] (void|_Bool|char|short|int|long|float|double|struct X|typedef-name) [const]
func (p *Parser) parseDeclSpecifiers() (*ctypes.Type, error) {
	konst := false
	for p.accept(KwConst) {
		konst = true
	}
	var base *ctypes.Type
	t := p.cur()
	switch t.Kind {
	case KwVoid:
		p.next()
		base = ctypes.VoidType
	case KwBool:
		p.next()
		base = ctypes.BoolType
	case KwChar:
		p.next()
		base = ctypes.CharType
	case KwShort:
		p.next()
		base = ctypes.ShortType
	case KwInt:
		p.next()
		base = ctypes.IntType
	case KwLong:
		p.next()
		p.accept(KwLong) // long long
		p.accept(KwInt)  // long int
		base = ctypes.LongType
	case KwFloat:
		p.next()
		base = ctypes.FloatType
	case KwDouble:
		p.next()
		base = ctypes.DoubleType
	case KwUnsigned, KwSigned:
		// The model collapses signedness; consume the specifier and any
		// following width keyword.
		p.next()
		switch p.cur().Kind {
		case KwChar:
			p.next()
			base = ctypes.CharType
		case KwShort:
			p.next()
			base = ctypes.ShortType
		case KwLong:
			p.next()
			p.accept(KwLong)
			base = ctypes.LongType
		case KwInt:
			p.next()
			base = ctypes.IntType
		default:
			base = ctypes.IntType
		}
	case KwEnum:
		p.next()
		if p.at(IDENT) {
			p.next()
		}
		base = ctypes.IntType
	case KwStruct:
		p.next()
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		base = p.types.DeclareStruct(nameTok.Text)
	case IDENT:
		td, ok := p.typedefs[t.Text]
		if !ok {
			return nil, p.errorf("unknown type name %q", t.Text)
		}
		p.next()
		base = td
	default:
		return nil, p.errorf("expected a type, found %s", t)
	}
	for p.accept(KwConst) {
		konst = true
	}
	if konst {
		base = ctypes.Qualified(base)
	}
	return base, nil
}

// parseDeclarator parses a C declarator over the given base type and
// returns the declared name ("" for abstract declarators) and the full
// type. Handles pointers (with const), parenthesized declarators
// (function pointers), arrays, and function parameter lists.
func (p *Parser) parseDeclarator(base *ctypes.Type) (string, *ctypes.Type, error) {
	// Pointer prefix: each * wraps the type; "* const" qualifies the
	// pointer itself.
	for p.accept(STAR) {
		base = ctypes.PointerTo(base)
		if p.accept(KwConst) {
			base = ctypes.Qualified(base)
		}
	}

	// Direct declarator.
	var name string
	// inner delays application of a parenthesized declarator's wrapping
	// until the suffixes of the outer one are known, which is exactly how
	// C declarator precedence works: in int (*fp)(int), the (int) suffix
	// applies to the inner "*fp".
	var inner func(*ctypes.Type) (string, *ctypes.Type, error)

	switch {
	case p.at(IDENT):
		name = p.next().Text
	case p.at(LPAREN) && (p.peek(1).Kind == STAR || p.peek(1).Kind == IDENT):
		p.next() // (
		save := p.pos
		// Could be a parenthesized declarator or, in an abstract context,
		// a parameter list. Heuristic: '*' or IDENT')' means declarator.
		if p.at(STAR) || (p.at(IDENT) && p.peek(1).Kind == RPAREN) {
			pp := p.pos
			_ = pp
			innerToks := true
			_ = innerToks
			inner = nil
			// Parse the inner declarator against a placeholder; we will
			// re-apply it after suffixes.
			innerName, innerWrap, err := p.parseDeclaratorDeferred()
			if err != nil {
				return "", nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return "", nil, err
			}
			name = innerName
			inner = innerWrap
		} else {
			p.pos = save - 1 // rewind; treat as abstract declarator with suffix
		}
	}

	// Suffixes: arrays and parameter lists, applied outside-in.
	ty := base
	var suffixes []func(*ctypes.Type) (*ctypes.Type, error)
	for {
		if p.accept(LBRACK) {
			lenTok, err := p.expect(INTLIT)
			if err != nil {
				return "", nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return "", nil, err
			}
			n := int(lenTok.Val)
			suffixes = append(suffixes, func(t *ctypes.Type) (*ctypes.Type, error) {
				return ctypes.ArrayOf(t, n), nil
			})
			continue
		}
		if p.accept(LPAREN) {
			params, variadic, err := p.parseParamTypes()
			if err != nil {
				return "", nil, err
			}
			suffixes = append(suffixes, func(t *ctypes.Type) (*ctypes.Type, error) {
				return ctypes.FuncOf(t, params, variadic), nil
			})
			continue
		}
		break
	}
	// Array/function suffixes bind inner-first in C: char *argv[3] is an
	// array of pointers; the suffix list applies left to right with the
	// *last* suffix innermost relative to... in practice our subset only
	// nests one suffix level plus a parenthesized declarator, so apply in
	// reverse order around the base.
	for i := len(suffixes) - 1; i >= 0; i-- {
		var err error
		ty, err = suffixes[i](ty)
		if err != nil {
			return "", nil, err
		}
	}
	if inner != nil {
		return inner(ty)
	}
	return name, ty, nil
}

// parseDeclaratorDeferred parses a declarator but defers applying its
// wrapping until the surrounding declarator's suffixes are known. It
// returns the declared name and a function that, given the type built by
// the *outer* context (base + outer suffixes), produces the final type.
func (p *Parser) parseDeclaratorDeferred() (string, func(*ctypes.Type) (string, *ctypes.Type, error), error) {
	stars := 0
	konst := false
	for p.accept(STAR) {
		stars++
		if p.accept(KwConst) {
			konst = true
		}
	}
	var name string
	if p.at(IDENT) {
		name = p.next().Text
	}
	// Inner array dimensions: "(*tab[2])(void)" declares an array of
	// function pointers — the array binds inside the parens, outside the
	// pointer stars.
	var dims []int
	for p.at(LBRACK) {
		p.next()
		lenTok, err := p.expect(INTLIT)
		if err != nil {
			return "", nil, err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return "", nil, err
		}
		dims = append(dims, int(lenTok.Val))
	}
	wrap := func(t *ctypes.Type) (string, *ctypes.Type, error) {
		for i := 0; i < stars; i++ {
			t = ctypes.PointerTo(t)
		}
		if konst {
			t = ctypes.Qualified(t)
		}
		for i := len(dims) - 1; i >= 0; i-- {
			t = ctypes.ArrayOf(t, dims[i])
		}
		return name, t, nil
	}
	return name, wrap, nil
}

// parseParamTypes parses a parameter type list after '(' and consumes ')'.
func (p *Parser) parseParamTypes() ([]*ctypes.Type, bool, error) {
	if p.accept(RPAREN) {
		return nil, false, nil
	}
	if p.at(KwVoid) && p.peek(1).Kind == RPAREN {
		p.next()
		p.next()
		return nil, false, nil
	}
	var params []*ctypes.Type
	variadic := false
	for {
		if p.accept(ELLIPSIS) {
			variadic = true
			break
		}
		base, err := p.parseDeclSpecifiers()
		if err != nil {
			return nil, false, err
		}
		_, ty, err := p.parseDeclarator(base)
		if err != nil {
			return nil, false, err
		}
		params = append(params, ty)
		if !p.accept(COMMA) {
			break
		}
	}
	_, err := p.expect(RPAREN)
	return params, variadic, err
}

// parseParams parses a named parameter list after '(' and consumes ')'.
func (p *Parser) parseParams() ([]*Param, bool, error) {
	if p.accept(RPAREN) {
		return nil, false, nil
	}
	if p.at(KwVoid) && p.peek(1).Kind == RPAREN {
		p.next()
		p.next()
		return nil, false, nil
	}
	var params []*Param
	variadic := false
	for {
		if p.accept(ELLIPSIS) {
			variadic = true
			break
		}
		pos := p.cur().Pos
		base, err := p.parseDeclSpecifiers()
		if err != nil {
			return nil, false, err
		}
		name, ty, err := p.parseDeclarator(base)
		if err != nil {
			return nil, false, err
		}
		params = append(params, &Param{Pos: pos, Name: name, Type: ty})
		if !p.accept(COMMA) {
			break
		}
	}
	_, err := p.expect(RPAREN)
	return params, variadic, err
}

// parseDeclaration parses a function definition, function declaration, or
// global variable declaration.
func (p *Parser) parseDeclaration(extern bool) error {
	pos := p.cur().Pos
	base, err := p.parseDeclSpecifiers()
	if err != nil {
		return err
	}

	// Function definition/declaration: [*...] NAME ( params ) { body } | ;
	// Distinguish from variables by the token after the declarator name,
	// looking through pointer stars so that "int *f(void) {...}" is a
	// function with a pointer return type. The stars are only consumed on
	// the function path; the variable path re-parses them per declarator
	// (so "int *a, b;" keeps its C meaning).
	save := p.pos
	fnBase := base
	for p.accept(STAR) {
		fnBase = ctypes.PointerTo(fnBase)
		if p.accept(KwConst) {
			fnBase = ctypes.Qualified(fnBase)
		}
	}
	if !(p.at(IDENT) && p.peek(1).Kind == LPAREN) {
		p.pos = save // not a function: rewind the stars
	} else {
		base = fnBase
	}
	if p.at(IDENT) && p.peek(1).Kind == LPAREN {
		name := p.next().Text
		p.next() // (
		params, variadic, err := p.parseParams()
		if err != nil {
			return err
		}
		fn := &FuncDecl{Pos: pos, Name: name, Ret: base, Params: params, Variadic: variadic, Extern: extern}
		if p.accept(SEMI) {
			fn.Extern = true // a body-less declaration is external
			p.file.Funcs = append(p.file.Funcs, fn)
			return nil
		}
		body, err := p.parseBlock()
		if err != nil {
			return err
		}
		if extern {
			return &SyntaxError{Pos: pos, Msg: "extern function cannot have a body"}
		}
		fn.Body = body
		p.file.Funcs = append(p.file.Funcs, fn)
		return nil
	}

	// Global variables, possibly a comma-separated list. A declarator
	// that yields a pointer return with parens (function pointers) is
	// still a variable.
	for {
		name, ty, err := p.parseDeclarator(base)
		if err != nil {
			return err
		}
		if name == "" {
			return p.errorf("declaration missing a name")
		}
		if ty.Kind == ctypes.Func {
			// Function declarator without preceding IDENT( pattern, e.g.
			// a prototype with a pointer return: treat as declaration.
			fn := &FuncDecl{Pos: pos, Name: name, Ret: ty.Ret, Extern: true}
			for _, pt := range ty.Params {
				fn.Params = append(fn.Params, &Param{Type: pt})
			}
			fn.Variadic = ty.Variadic
			p.file.Funcs = append(p.file.Funcs, fn)
		} else {
			vd := &VarDecl{Pos: pos, Name: name, Type: ty}
			if p.accept(ASSIGN) {
				init, err := p.parseAssignExpr()
				if err != nil {
					return err
				}
				vd.Init = init
			}
			p.file.Globals = append(p.file.Globals, vd)
		}
		if !p.accept(COMMA) {
			break
		}
	}
	_, err = p.expect(SEMI)
	return err
}

// ---------- Statements ----------

func (p *Parser) parseBlock() (*BlockStmt, error) {
	pos := p.cur().Pos
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: pos}
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.next() // }
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case LBRACE:
		return p.parseBlock()
	case SEMI:
		p.next()
		return nil, nil
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwDo:
		return p.parseDoWhile()
	case KwSwitch:
		return p.parseSwitch()
	case KwFor:
		return p.parseFor()
	case KwReturn:
		pos := p.next().Pos
		if p.accept(SEMI) {
			return &ReturnStmt{Pos: pos}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos, X: x}, nil
	case KwBreak:
		pos := p.next().Pos
		_, err := p.expect(SEMI)
		return &BreakStmt{Pos: pos}, err
	case KwContinue:
		pos := p.next().Pos
		_, err := p.expect(SEMI)
		return &ContinueStmt{Pos: pos}, err
	}

	if p.isTypeStart(0) && !p.isCastAhead() {
		return p.parseDeclStmtList()
	}

	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

// isCastAhead disambiguates a statement that begins with a type name: a
// declaration, unless it is really an expression. Since expressions cannot
// begin with a bare type in this subset, a type start always means a
// declaration; this hook exists for clarity and future extension.
func (p *Parser) isCastAhead() bool { return false }

// parseDeclStmtList parses "type declarator [= init] (, declarator [=
// init])* ;" and returns a BlockStmt when more than one variable is
// declared (the block does not open a new C scope here; the checker treats
// DeclStmt lists linearly).
func (p *Parser) parseDeclStmtList() (Stmt, error) {
	pos := p.cur().Pos
	base, err := p.parseDeclSpecifiers()
	if err != nil {
		return nil, err
	}
	var decls []*DeclStmt
	for {
		name, ty, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errorf("declaration missing a name")
		}
		vd := &VarDecl{Pos: pos, Name: name, Type: ty}
		if p.accept(ASSIGN) {
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		decls = append(decls, &DeclStmt{Decl: vd})
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &DeclList{Pos: pos, Decls: decls}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	var els Stmt
	if p.accept(KwElse) {
		els, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.next().Pos // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	pos := p.next().Pos // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	pos := p.next().Pos // switch
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Pos: pos, Tag: tag, Default: -1}
	for !p.at(RBRACE) {
		if p.at(EOF) {
			return nil, p.errorf("unterminated switch")
		}
		cs := SwitchCase{Pos: p.cur().Pos}
		switch {
		case p.accept(KwCase):
			for {
				neg := p.accept(MINUS)
				var v int64
				switch {
				case p.at(INTLIT), p.at(CHARLIT):
					v = p.next().Val
				case p.at(IDENT):
					ev, ok := p.enums[p.cur().Text]
					if !ok {
						return nil, p.errorf("case label %q is not a constant", p.cur().Text)
					}
					p.next()
					v = ev
				default:
					return nil, p.errorf("expected a constant case label, found %s", p.cur())
				}
				if neg {
					v = -v
				}
				cs.Values = append(cs.Values, v)
				if _, err := p.expect(COLON); err != nil {
					return nil, err
				}
				// Adjacent "case a: case b:" labels share one body.
				if !p.accept(KwCase) {
					break
				}
			}
		case p.accept(KwDefault):
			cs.IsDefault = true
			if _, err := p.expect(COLON); err != nil {
				return nil, err
			}
			sw.Default = len(sw.Cases)
		default:
			return nil, p.errorf("expected case or default in switch, found %s", p.cur())
		}
		for !p.at(KwCase) && !p.at(KwDefault) && !p.at(RBRACE) {
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if st != nil {
				cs.Body = append(cs.Body, st)
			}
		}
		sw.Cases = append(sw.Cases, cs)
	}
	p.next() // }
	return sw, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.next().Pos // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var init Stmt
	var err error
	if !p.accept(SEMI) {
		if p.isTypeStart(0) {
			init, err = p.parseDeclStmtList()
			if err != nil {
				return nil, err
			}
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
			init = &ExprStmt{X: x}
		}
	}
	var cond Expr
	if !p.at(SEMI) {
		cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	var post Stmt
	if !p.at(RPAREN) {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		post = &ExprStmt{X: x}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}, nil
}

// ---------- Expressions ----------

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, PCTEQ, AMPEQ, PIPEEQ, CARETEQ, SHLEQ, SHREQ:
		op := p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		a := &Assign{Op: op.Kind, LHS: lhs, RHS: rhs}
		a.Pos = op.Pos
		return a, nil
	}
	return lhs, nil
}

type binLevel struct {
	toks []TokKind
	ops  []BinOp
}

var binLevels = []binLevel{
	{[]TokKind{OROR}, []BinOp{LogOr}},
	{[]TokKind{ANDAND}, []BinOp{LogAnd}},
	{[]TokKind{PIPE}, []BinOp{Or}},
	{[]TokKind{CARET}, []BinOp{Xor}},
	{[]TokKind{AMP}, []BinOp{And}},
	{[]TokKind{EQ, NE}, []BinOp{Eq, Ne}},
	{[]TokKind{LT, LE, GT, GE}, []BinOp{Lt, Le, Gt, Ge}},
	{[]TokKind{SHL, SHR}, []BinOp{Shl, Shr}},
	{[]TokKind{PLUS, MINUS}, []BinOp{Add, Sub}},
	{[]TokKind{STAR, SLASH, PERCENT}, []BinOp{Mul, Div, Rem}},
}

// parseConditional parses the ternary c ? a : b (right associative).
func (p *Parser) parseConditional() (Expr, error) {
	c, err := p.parseLogOr()
	if err != nil {
		return nil, err
	}
	if !p.at(QUESTION) {
		return c, nil
	}
	pos := p.next().Pos
	a, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	b, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	e := &Cond{C: c, A: a, B: b}
	e.Pos = pos
	return e, nil
}

func (p *Parser) parseLogOr() (Expr, error) { return p.parseBinary(0) }

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	lv := binLevels[level]
	for {
		matched := false
		for i, tk := range lv.toks {
			if p.at(tk) {
				pos := p.next().Pos
				rhs, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				b := &Binary{Op: lv.ops[i], X: lhs, Y: rhs}
				b.Pos = pos
				lhs = b
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	pos := p.cur().Pos
	mk := func(op UnaryOp) (Expr, error) {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: op, X: x}
		u.Pos = pos
		return u, nil
	}
	switch p.cur().Kind {
	case STAR:
		return mk(Deref)
	case AMP:
		return mk(Addr)
	case MINUS:
		return mk(Neg)
	case NOT:
		return mk(LogNot)
	case TILDE:
		return mk(BitNot)
	case INC, DEC:
		decr := p.cur().Kind == DEC
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		id := &IncDec{X: x, Decr: decr}
		id.Pos = pos
		return id, nil
	case KwSizeof:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		var ty *ctypes.Type
		if p.isTypeStart(0) {
			base, err := p.parseDeclSpecifiers()
			if err != nil {
				return nil, err
			}
			_, t, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			ty = t
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			// sizeof expr resolves to the checked type later; record the
			// expression via a placeholder wrapper the checker folds.
			s := &SizeofExpr{}
			s.Pos = pos
			s.Of = nil
			// Keep the operand for the checker by expressing sizeof(e)
			// as sizeof over e's checked type via a Cast-like trick: the
			// checker needs the expression, so store it.
			sz := &sizeofOfExpr{SizeofExpr: s, operand: x}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return sz, nil
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		s := &SizeofExpr{Of: ty}
		s.Pos = pos
		return s, nil
	case LPAREN:
		// Cast: '(' type ')' unary.
		if p.isTypeStart(1) {
			p.next() // (
			base, err := p.parseDeclSpecifiers()
			if err != nil {
				return nil, err
			}
			_, ty, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			c := &Cast{X: x}
			c.Pos = pos
			c.Ty = ty
			return c, nil
		}
	}
	return p.parsePostfix()
}

// sizeofOfExpr is a SizeofExpr whose operand type is not yet known; the
// checker replaces Of with the operand's checked type.
type sizeofOfExpr struct {
	*SizeofExpr
	operand Expr
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.cur().Pos
		switch p.cur().Kind {
		case LPAREN:
			p.next()
			var args []Expr
			for !p.at(RPAREN) {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			c := &Call{Fun: x, Args: args}
			c.Pos = pos
			x = c
		case LBRACK:
			p.next()
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			idx := &Index{X: x, I: i}
			idx.Pos = pos
			x = idx
		case DOT, ARROW:
			arrow := p.cur().Kind == ARROW
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			m := &Member{X: x, Name: name.Text, Arrow: arrow}
			m.Pos = pos
			x = m
		case INC, DEC:
			decr := p.cur().Kind == DEC
			p.next()
			id := &IncDec{X: x, Decr: decr}
			id.Pos = pos
			x = id
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		e := &IntLit{Val: t.Val}
		e.Pos = t.Pos
		return e, nil
	case FLOATLIT:
		p.next()
		e := &FloatLit{Val: t.Fval}
		e.Pos = t.Pos
		return e, nil
	case CHARLIT:
		p.next()
		e := &CharLit{Val: byte(t.Val)}
		e.Pos = t.Pos
		return e, nil
	case STRLIT:
		p.next()
		e := &StrLit{Val: t.Text}
		e.Pos = t.Pos
		return e, nil
	case KwNull:
		p.next()
		e := &NullLit{}
		e.Pos = t.Pos
		return e, nil
	case IDENT:
		p.next()
		if v, ok := p.enums[t.Text]; ok {
			e := &IntLit{Val: v}
			e.Pos = t.Pos
			return e, nil
		}
		e := &Ident{Name: t.Text}
		e.Pos = t.Pos
		return e, nil
	case LPAREN:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RPAREN)
		return x, err
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}

package cminor

import (
	"fmt"

	"rsti/internal/ctypes"
)

// Builtins are the library functions the VM implements natively. They are
// registered as extern declarations when a program uses them without
// declaring them, mirroring how the paper's programs link against libc:
// extern code is uninstrumented, so RSTI strips PACs at these boundaries.
var Builtins = []*FuncDecl{
	{Name: "malloc", Ret: ctypes.PointerTo(ctypes.VoidType), Params: []*Param{{Name: "size", Type: ctypes.LongType}}, Extern: true},
	{Name: "free", Ret: ctypes.VoidType, Params: []*Param{{Name: "p", Type: ctypes.PointerTo(ctypes.VoidType)}}, Extern: true},
	{Name: "printf", Ret: ctypes.IntType, Params: []*Param{{Name: "fmt", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}}, Variadic: true, Extern: true},
	{Name: "puts", Ret: ctypes.IntType, Params: []*Param{{Name: "s", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}}, Extern: true},
	{Name: "exit", Ret: ctypes.VoidType, Params: []*Param{{Name: "code", Type: ctypes.IntType}}, Extern: true},
	{Name: "strlen", Ret: ctypes.LongType, Params: []*Param{{Name: "s", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}}, Extern: true},
	{Name: "strcmp", Ret: ctypes.IntType, Params: []*Param{{Name: "a", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}, {Name: "b", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}}, Extern: true},
	{Name: "strcpy", Ret: ctypes.PointerTo(ctypes.CharType), Params: []*Param{{Name: "dst", Type: ctypes.PointerTo(ctypes.CharType)}, {Name: "src", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}}, Extern: true},
	{Name: "strstr", Ret: ctypes.PointerTo(ctypes.CharType), Params: []*Param{{Name: "hay", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}, {Name: "needle", Type: ctypes.PointerTo(ctypes.Qualified(ctypes.CharType))}}, Extern: true},
	{Name: "memset", Ret: ctypes.PointerTo(ctypes.VoidType), Params: []*Param{{Name: "p", Type: ctypes.PointerTo(ctypes.VoidType)}, {Name: "c", Type: ctypes.IntType}, {Name: "n", Type: ctypes.LongType}}, Extern: true},
	{Name: "memcpy", Ret: ctypes.PointerTo(ctypes.VoidType), Params: []*Param{{Name: "dst", Type: ctypes.PointerTo(ctypes.VoidType)}, {Name: "src", Type: ctypes.PointerTo(ctypes.VoidType)}, {Name: "n", Type: ctypes.LongType}}, Extern: true},
	// __hook(id) is the scripted corruption point: the VM invokes any
	// attack callback registered under id, modelling the memory-unsafe
	// write a real exploit would obtain from a buffer overflow.
	{Name: "__hook", Ret: ctypes.VoidType, Params: []*Param{{Name: "id", Type: ctypes.IntType}}, Extern: true},
}

// CheckError is a semantic error with its source position.
type CheckError struct {
	Pos Pos
	Msg string
}

func (e *CheckError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type checker struct {
	file    *File
	funcs   map[string]*FuncDecl
	globals map[string]*VarSym
	scopes  []map[string]*VarSym
	curFn   *FuncDecl
	nextID  int
	errs    []error
}

// Check resolves names, types every expression, inserts implicit pointer
// casts, and assigns dense IDs to every declared variable. The File is
// updated in place; File.Syms lists every variable in ID order.
func Check(f *File) error {
	c := &checker{
		file:    f,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*VarSym),
	}
	for _, fn := range f.Funcs {
		if prev, dup := c.funcs[fn.Name]; dup {
			// A body may complete an earlier extern declaration.
			if prev.Body == nil && fn.Body != nil {
				c.funcs[fn.Name] = fn
				continue
			}
			if fn.Body == nil {
				continue
			}
			c.errorf(fn.Pos, "function %s redefined", fn.Name)
			continue
		}
		c.funcs[fn.Name] = fn
	}
	for _, b := range Builtins {
		if _, ok := c.funcs[b.Name]; !ok {
			c.funcs[b.Name] = b
			f.Funcs = append(f.Funcs, b)
		}
	}

	for _, g := range f.Globals {
		if _, dup := c.globals[g.Name]; dup {
			c.errorf(g.Pos, "global %s redeclared", g.Name)
			continue
		}
		sym := &VarSym{Name: g.Name, Type: g.Type, Global: true, DeclPos: g.Pos, ID: c.nextID}
		c.nextID++
		g.Sym = sym
		c.globals[g.Name] = sym
		f.Syms = append(f.Syms, sym)
		if g.Init != nil {
			g.Init = c.checkInit(g.Init, g.Type)
		}
	}

	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		c.checkFunc(fn)
	}
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

func (c *checker) errorf(pos Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, &CheckError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*VarSym)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, sym *VarSym) {
	c.scopes[len(c.scopes)-1][name] = sym
	c.file.Syms = append(c.file.Syms, sym)
}

func (c *checker) lookup(name string) (*VarSym, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	s, ok := c.globals[name]
	return s, ok
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.curFn = fn
	c.push()
	for _, p := range fn.Params {
		sym := &VarSym{Name: p.Name, Type: p.Type, Param: true, DeclFn: fn.Name, DeclPos: p.Pos, ID: c.nextID}
		c.nextID++
		p.Sym = sym
		c.declare(p.Name, sym)
	}
	c.checkBlock(fn.Body)
	c.pop()
	c.curFn = nil
}

func (c *checker) checkBlock(b *BlockStmt) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		c.checkBlock(st)
	case *DeclList:
		for _, d := range st.Decls {
			c.checkStmt(d)
		}
	case *DeclStmt:
		d := st.Decl
		sym := &VarSym{Name: d.Name, Type: d.Type, DeclFn: c.curFn.Name, DeclPos: d.Pos, ID: c.nextID}
		c.nextID++
		d.Sym = sym
		if d.Init != nil {
			d.Init = c.checkInit(d.Init, d.Type)
		}
		c.declare(d.Name, sym)
	case *ExprStmt:
		st.X = c.checkExpr(st.X)
	case *IfStmt:
		st.Cond = c.checkExpr(st.Cond)
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *WhileStmt:
		st.Cond = c.checkExpr(st.Cond)
		c.checkStmt(st.Body)
	case *DoWhileStmt:
		c.checkStmt(st.Body)
		st.Cond = c.checkExpr(st.Cond)
	case *SwitchStmt:
		st.Tag = c.checkExpr(st.Tag)
		if t := st.Tag.Type(); t != nil && !t.IsInteger() {
			c.errorf(st.Pos, "switch tag must be an integer, got %s", t)
		}
		seen := map[int64]bool{}
		for i := range st.Cases {
			for _, v := range st.Cases[i].Values {
				if seen[v] {
					c.errorf(st.Cases[i].Pos, "duplicate case value %d", v)
				}
				seen[v] = true
			}
			c.push()
			for _, s2 := range st.Cases[i].Body {
				c.checkStmt(s2)
			}
			c.pop()
		}
	case *ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			st.Cond = c.checkExpr(st.Cond)
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.checkStmt(st.Body)
		c.pop()
	case *ReturnStmt:
		if st.X != nil {
			st.X = c.checkExpr(st.X)
			if c.curFn.Ret.Kind == ctypes.Void {
				c.errorf(st.Pos, "return with value in void function %s", c.curFn.Name)
			} else {
				st.X = c.convert(st.X, c.curFn.Ret, st.Pos)
			}
		} else if c.curFn.Ret.Kind != ctypes.Void {
			c.errorf(st.Pos, "return without value in non-void function %s", c.curFn.Name)
		}
	case *BreakStmt, *ContinueStmt:
		// Loop nesting is validated by the lowerer, which knows targets.
	}
}

// checkInit checks an initializer against the declared type.
func (c *checker) checkInit(e Expr, want *ctypes.Type) Expr {
	e = c.checkExpr(e)
	return c.convert(e, want, e.Position())
}

// convert checks assignability of e to type want, inserting an implicit
// Cast node where C would convert silently. Every pointer conversion —
// explicit or implicit — is thereby visible to the STI analysis as a cast
// edge, matching the paper's "explicitly done by the programmer or by the
// compiler".
func (c *checker) convert(e Expr, want *ctypes.Type, pos Pos) Expr {
	got := e.Type()
	if got == nil {
		return e
	}
	if got.Equal(want) {
		return e
	}
	mkCast := func() Expr {
		cast := &Cast{X: e, Implicit: true}
		cast.Pos = pos
		cast.Ty = want
		return cast
	}
	switch {
	case got.IsInteger() && want.IsInteger():
		return mkCast()
	case (got.Kind == ctypes.Float || got.Kind == ctypes.Double) && (want.Kind == ctypes.Float || want.Kind == ctypes.Double),
		got.IsInteger() && (want.Kind == ctypes.Float || want.Kind == ctypes.Double),
		(got.Kind == ctypes.Float || got.Kind == ctypes.Double) && want.IsInteger():
		return mkCast()
	case got.Kind == ctypes.Pointer && want.Kind == ctypes.Pointer:
		gu, wu := got.Unqualified(), want.Unqualified()
		if gu.Elem.Equal(wu.Elem) {
			return mkCast() // only qualifier differs
		}
		// void* converts implicitly in C; adding const to the pointee is
		// fine; everything else needs an explicit cast.
		if gu.Elem.Kind == ctypes.Void || wu.Elem.Kind == ctypes.Void {
			return mkCast()
		}
		if gu.Elem.Unqualified().Equal(wu.Elem.Unqualified()) {
			return mkCast()
		}
		c.errorf(pos, "cannot implicitly convert %s to %s (explicit cast required)", got, want)
		return e
	case isNull(e) && want.Kind == ctypes.Pointer:
		return mkCast()
	case got.IsInteger() && want.Kind == ctypes.Pointer:
		// Allow the literal 0 as a null pointer constant.
		if il, ok := e.(*IntLit); ok && il.Val == 0 {
			return mkCast()
		}
		c.errorf(pos, "cannot implicitly convert %s to %s", got, want)
		return e
	case got.Kind == ctypes.Array && want.Kind == ctypes.Pointer && got.Elem.Equal(want.Elem):
		return mkCast() // array decay
	}
	c.errorf(pos, "cannot convert %s to %s", got, want)
	return e
}

func isNull(e Expr) bool {
	_, ok := e.(*NullLit)
	return ok
}

// decay converts array-typed expressions to pointers, as C does in rvalue
// contexts.
func decay(e Expr) Expr {
	t := e.Type()
	if t != nil && t.Kind == ctypes.Array {
		cast := &Cast{X: e, Implicit: true}
		cast.Pos = e.Position()
		cast.Ty = ctypes.PointerTo(t.Elem)
		return cast
	}
	return e
}

func (c *checker) checkExpr(e Expr) Expr {
	switch x := e.(type) {
	case *IntLit:
		if x.Ty == nil {
			if x.Val > 0x7FFFFFFF || x.Val < -0x80000000 {
				x.Ty = ctypes.LongType
			} else {
				x.Ty = ctypes.IntType
			}
		}
	case *FloatLit:
		x.Ty = ctypes.DoubleType
	case *CharLit:
		x.Ty = ctypes.CharType
	case *StrLit:
		x.Ty = ctypes.PointerTo(ctypes.CharType)
	case *NullLit:
		x.Ty = ctypes.PointerTo(ctypes.VoidType)
	case *Ident:
		if sym, ok := c.lookup(x.Name); ok {
			x.Var = sym
			x.Ty = sym.Type
			if sym.DeclFn == "" && !sym.Global {
				// defensive: should not happen
				c.errorf(x.Pos, "internal: variable %s has no home", x.Name)
			}
			break
		}
		if fn, ok := c.funcs[x.Name]; ok {
			x.Fun = fn
			x.Ty = ctypes.PointerTo(fn.Signature())
			break
		}
		c.errorf(x.Pos, "undeclared identifier %q", x.Name)
		x.Ty = ctypes.IntType
	case *Unary:
		x.X = c.checkExpr(x.X)
		switch x.Op {
		case Deref:
			x.X = decay(x.X)
			t := x.X.Type()
			if t.Kind != ctypes.Pointer {
				c.errorf(x.Pos, "cannot dereference non-pointer %s", t)
				x.Ty = ctypes.IntType
			} else {
				x.Ty = t.Elem
			}
		case Addr:
			if !isLvalue(x.X) {
				c.errorf(x.Pos, "cannot take address of a non-lvalue")
			}
			x.Ty = ctypes.PointerTo(x.X.Type())
		case Neg, BitNot:
			if !x.X.Type().IsInteger() && x.X.Type().Kind != ctypes.Float && x.X.Type().Kind != ctypes.Double {
				c.errorf(x.Pos, "unary operator on non-arithmetic type %s", x.X.Type())
			}
			x.Ty = x.X.Type()
		case LogNot:
			x.Ty = ctypes.IntType
		}
	case *Binary:
		x.X = decay(c.checkExpr(x.X))
		x.Y = decay(c.checkExpr(x.Y))
		x.Ty = c.binaryType(x)
	case *Assign:
		x.LHS = c.checkExpr(x.LHS)
		x.RHS = decay(c.checkExpr(x.RHS))
		if !isLvalue(x.LHS) {
			c.errorf(x.Pos, "assignment to non-lvalue")
		}
		lt := x.LHS.Type()
		if lt.Const {
			c.errorf(x.Pos, "assignment to const %s", lt)
		}
		if x.Op == ASSIGN {
			x.RHS = c.convert(x.RHS, lt.Unqualified(), x.Pos)
		} else if lt.Kind == ctypes.Pointer {
			// Only += and -= make sense on pointers.
			if x.Op != PLUSEQ && x.Op != MINUSEQ {
				c.errorf(x.Pos, "invalid compound assignment %s on pointer", x.Op)
			}
			if !x.RHS.Type().IsInteger() {
				c.errorf(x.Pos, "pointer compound assignment needs an integer, got %s", x.RHS.Type())
			}
		} else {
			x.RHS = c.convert(x.RHS, lt.Unqualified(), x.Pos)
		}
		x.Ty = lt
	case *IncDec:
		x.X = c.checkExpr(x.X)
		if !isLvalue(x.X) {
			c.errorf(x.Pos, "++/-- on non-lvalue")
		}
		t := x.X.Type()
		if !t.IsInteger() && t.Kind != ctypes.Pointer {
			c.errorf(x.Pos, "++/-- on %s", t)
		}
		if t.Const {
			c.errorf(x.Pos, "++/-- on const %s", t)
		}
		x.Ty = t
	case *Cond:
		x.C = c.checkExpr(x.C)
		x.A = decay(c.checkExpr(x.A))
		x.B = decay(c.checkExpr(x.B))
		at, bt := x.A.Type(), x.B.Type()
		switch {
		case at == nil || bt == nil:
			x.Ty = ctypes.IntType
		case at.Equal(bt):
			x.Ty = at
		case at.IsInteger() && bt.IsInteger():
			x.Ty = ctypes.LongType
			x.A = c.convert(x.A, ctypes.LongType, x.Pos)
			x.B = c.convert(x.B, ctypes.LongType, x.Pos)
		case at.Kind == ctypes.Pointer && isNull(x.B):
			x.B = c.convert(x.B, at, x.Pos)
			x.Ty = at
		case bt.Kind == ctypes.Pointer && isNull(x.A):
			x.A = c.convert(x.A, bt, x.Pos)
			x.Ty = bt
		case at.Kind == ctypes.Pointer && bt.Kind == ctypes.Pointer &&
			at.Unqualified().Equal(bt.Unqualified()):
			x.Ty = at.Unqualified()
		default:
			c.errorf(x.Pos, "incompatible ternary arms: %s vs %s", at, bt)
			x.Ty = at
		}
	case *Call:
		return c.checkCall(x)
	case *Member:
		x.X = c.checkExpr(x.X)
		xt := x.X.Type()
		var st *ctypes.Type
		if x.Arrow {
			if xt.Kind != ctypes.Pointer || xt.Elem.Unqualified().Kind != ctypes.Struct {
				c.errorf(x.Pos, "-> on non-struct-pointer %s", xt)
				x.Ty = ctypes.IntType
				return x
			}
			st = xt.Elem.Unqualified()
		} else {
			if xt.Unqualified().Kind != ctypes.Struct {
				c.errorf(x.Pos, ". on non-struct %s", xt)
				x.Ty = ctypes.IntType
				return x
			}
			st = xt.Unqualified()
		}
		if st.Incomplete {
			c.errorf(x.Pos, "use of incomplete struct %s", st.Name)
			x.Ty = ctypes.IntType
			return x
		}
		f, ok := st.FieldByName(x.Name)
		if !ok {
			c.errorf(x.Pos, "struct %s has no field %q", st.Name, x.Name)
			x.Ty = ctypes.IntType
			return x
		}
		x.Field = f
		x.StructTy = st
		x.Ty = f.Type
	case *Index:
		x.X = decay(c.checkExpr(x.X))
		x.I = c.checkExpr(x.I)
		xt := x.X.Type()
		if xt.Kind != ctypes.Pointer {
			c.errorf(x.Pos, "indexing non-pointer %s", xt)
			x.Ty = ctypes.IntType
			return x
		}
		if !x.I.Type().IsInteger() {
			c.errorf(x.Pos, "index must be an integer, got %s", x.I.Type())
		}
		x.Ty = xt.Elem
	case *Cast:
		x.X = decay(c.checkExpr(x.X))
		// Any scalar-to-scalar cast is permitted, as in C.
		from, to := x.X.Type(), x.Ty
		if from != nil && !from.IsScalar() && !from.Equal(to) {
			c.errorf(x.Pos, "invalid cast from %s", from)
		}
	case *sizeofOfExpr:
		op := c.checkExpr(x.operand)
		s := &SizeofExpr{Of: op.Type()}
		s.Pos = x.Position()
		s.Ty = ctypes.LongType
		return s
	case *SizeofExpr:
		x.Ty = ctypes.LongType
	}
	return e
}

func (c *checker) binaryType(x *Binary) *ctypes.Type {
	xt, yt := x.X.Type(), x.Y.Type()
	switch x.Op {
	case Eq, Ne, Lt, Le, Gt, Ge, LogAnd, LogOr:
		return ctypes.IntType
	case Add:
		if xt.Kind == ctypes.Pointer && yt.IsInteger() {
			return xt
		}
		if yt.Kind == ctypes.Pointer && xt.IsInteger() {
			return yt
		}
	case Sub:
		if xt.Kind == ctypes.Pointer && yt.IsInteger() {
			return xt
		}
		if xt.Kind == ctypes.Pointer && yt.Kind == ctypes.Pointer {
			return ctypes.LongType
		}
	}
	if xt.Kind == ctypes.Pointer || yt.Kind == ctypes.Pointer {
		if x.Op != Add && x.Op != Sub {
			c.errorf(x.Pos, "invalid pointer operands to binary operator")
		}
		if xt.Kind == ctypes.Pointer {
			return xt
		}
		return yt
	}
	// Usual arithmetic conversions, collapsed: the wider side wins.
	if xt.Kind == ctypes.Double || yt.Kind == ctypes.Double {
		return ctypes.DoubleType
	}
	if xt.Kind == ctypes.Float || yt.Kind == ctypes.Float {
		return ctypes.FloatType
	}
	if xt.Kind == ctypes.Long || yt.Kind == ctypes.Long {
		return ctypes.LongType
	}
	return ctypes.IntType
}

func (c *checker) checkCall(x *Call) Expr {
	// Resolve the callee: a direct function name, or any expression of
	// function-pointer type (an indirect call).
	x.Fun = c.checkExpr(x.Fun)
	var sig *ctypes.Type
	ft := x.Fun.Type()
	switch {
	case ft != nil && ft.Kind == ctypes.Pointer && ft.Elem.Kind == ctypes.Func:
		sig = ft.Elem
	case ft != nil && ft.Kind == ctypes.Func:
		sig = ft
	default:
		c.errorf(x.Pos, "called object is not a function (type %s)", ft)
		x.Ty = ctypes.IntType
		return x
	}
	for i := range x.Args {
		x.Args[i] = decay(c.checkExpr(x.Args[i]))
	}
	if len(x.Args) < len(sig.Params) || (len(x.Args) > len(sig.Params) && !sig.Variadic) {
		c.errorf(x.Pos, "wrong number of arguments: got %d, want %d", len(x.Args), len(sig.Params))
	}
	for i := 0; i < len(sig.Params) && i < len(x.Args); i++ {
		x.Args[i] = c.convert(x.Args[i], sig.Params[i], x.Args[i].Position())
	}
	x.Ty = sig.Ret
	return x
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x.Var != nil
	case *Unary:
		return x.Op == Deref
	case *Member:
		if x.Arrow {
			return true
		}
		return isLvalue(x.X)
	case *Index:
		return true
	}
	return false
}

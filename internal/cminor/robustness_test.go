package cminor

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestFrontendNeverPanics feeds pseudo-random byte soup and token soup to
// the frontend: every input must produce either a File or an error, never
// a panic. (The corpus is seeded by testing/quick; determinism comes from
// its fixed default source.)
func TestFrontendNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("frontend panicked on %q: %v", raw, r)
			}
		}()
		_, _ = Frontend(string(raw))
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFrontendNeverPanicsOnTokenSoup builds inputs from valid token
// spellings, which reach much deeper into the parser than raw bytes.
func TestFrontendNeverPanicsOnTokenSoup(t *testing.T) {
	words := []string{
		"int", "char", "void", "struct", "s", "x", "*", "(", ")", "{", "}",
		"[", "]", ";", ",", "=", "+", "-", "if", "else", "while", "for",
		"return", "break", "switch", "case", "default", ":", "?", "1", "0",
		"main", "const", "typedef", "extern", "do", "&&", "->", ".", "...",
		"sizeof", "NULL", "\"str\"", "'c'", "&", "42",
	}
	f := func(picks []uint16) bool {
		if len(picks) > 200 {
			picks = picks[:200]
		}
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(words[int(p)%len(words)])
			b.WriteByte(' ')
		}
		src := b.String()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("frontend panicked on %q: %v", src, r)
			}
		}()
		_, _ = Frontend(src)
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestFrontendNeverPanicsOnTruncations truncates a valid program at every
// byte offset; each prefix must fail (or parse) gracefully.
func TestFrontendNeverPanicsOnTruncations(t *testing.T) {
	src := `
		typedef struct { void (*send_file)(int x); } ctx;
		struct node { int key; struct node *next; };
		int work(struct node **pp, const char *tag) {
			switch ((*pp)->key) {
			case 1: return 1;
			default: break;
			}
			for (int i = 0; i < 3; i++) {
				(*pp)->key += i > 1 ? i : -i;
			}
			return (int) strlen(tag);
		}
		int main(void) {
			struct node *n = (struct node*) malloc(sizeof(struct node));
			n->key = 1;
			return work(&n, "t");
		}
	`
	for i := 0; i <= len(src); i++ {
		prefix := src[:i]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			_, _ = Frontend(prefix)
		}()
	}
}

package cminor

import (
	"rsti/internal/ctypes"
)

// File is a parsed translation unit.
type File struct {
	Structs  []*StructDecl
	Globals  []*VarDecl
	Funcs    []*FuncDecl
	Types    *ctypes.Table
	Typedefs map[string]*ctypes.Type
	// Enums maps enumerator names to their constant values.
	Enums map[string]int64
	// Syms lists every declared variable (globals, parameters, locals) in
	// declaration order after checking; VarSym.ID indexes into it.
	Syms []*VarSym
}

// FuncByName returns the function with the given name, if any.
func (f *File) FuncByName(name string) (*FuncDecl, bool) {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn, true
		}
	}
	return nil, false
}

// StructDecl is a completed struct definition.
type StructDecl struct {
	Pos  Pos
	Name string
	Type *ctypes.Type
}

// VarDecl declares one variable (global, local, or parameter) with an
// optional initializer. The checker assigns each declared variable a
// program-unique Sym.
type VarDecl struct {
	Pos  Pos
	Name string
	Type *ctypes.Type
	Init Expr // may be nil
	Sym  *VarSym
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type *ctypes.Type
	Sym  *VarSym
}

// FuncDecl is a function definition, or an extern declaration when Body is
// nil. Extern functions model the paper's uninstrumented external
// libraries.
type FuncDecl struct {
	Pos      Pos
	Name     string
	Ret      *ctypes.Type
	Params   []*Param
	Variadic bool
	Extern   bool
	Body     *BlockStmt // nil for extern declarations
}

// Signature returns the ctypes function type of the declaration.
func (f *FuncDecl) Signature() *ctypes.Type {
	params := make([]*ctypes.Type, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Type
	}
	return ctypes.FuncOf(f.Ret, params, f.Variadic)
}

// VarSym is the canonical symbol for a declared variable. Every use site
// (Ident) resolves to exactly one VarSym; the STI analysis keys its
// per-variable facts on it.
type VarSym struct {
	Name    string
	Type    *ctypes.Type
	Global  bool
	Param   bool
	DeclFn  string // defining function ("" for globals)
	DeclPos Pos
	ID      int // dense program-unique index assigned by the checker
}

// ---------- Statements ----------

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is a brace-enclosed statement list. Per the paper (§4.4),
// compound statements do not constitute a new STI scope, but they do open
// a C name scope, which the checker honors.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// DeclList groups the declarations of one multi-declarator statement
// ("void *p1, *p2;"). Unlike a block it does not open a scope.
type DeclList struct {
	Pos   Pos
	Decls []*DeclStmt
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is a for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// DoWhileStmt is a do { body } while (cond); loop.
type DoWhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// SwitchStmt is a C switch over an integer expression. Cases hold
// constant values; Default may be -1 when absent. Fallthrough follows C
// semantics (each case falls into the next unless it breaks).
type SwitchStmt struct {
	Pos     Pos
	Tag     Expr
	Cases   []SwitchCase
	Default int // index into Cases order where default sits, -1 if none
}

// SwitchCase is one case (or default) arm: its constant values (empty for
// default) and the statements until the next label.
type SwitchCase struct {
	Pos       Pos
	Values    []int64
	IsDefault bool
	Body      []Stmt
}

// ReturnStmt returns X (which may be nil).
type ReturnStmt struct {
	Pos Pos
	X   Expr
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*DeclList) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*SwitchStmt) stmt()   {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// ---------- Expressions ----------

// Expr is an expression node. Type() is valid after checking.
type Expr interface {
	Position() Pos
	Type() *ctypes.Type
	expr()
}

type exprBase struct {
	Pos Pos
	Ty  *ctypes.Type
}

func (b *exprBase) Position() Pos          { return b.Pos }
func (b *exprBase) Type() *ctypes.Type     { return b.Ty }
func (b *exprBase) expr()                  {}
func (b *exprBase) setType(t *ctypes.Type) { b.Ty = t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating-point literal (typed double, as in C).
type FloatLit struct {
	exprBase
	Val float64
}

// CharLit is a character literal.
type CharLit struct {
	exprBase
	Val byte
}

// StrLit is a string literal; it evaluates to a char* into read-only data.
type StrLit struct {
	exprBase
	Val string
}

// NullLit is the NULL constant.
type NullLit struct {
	exprBase
}

// Ident is a use of a variable or function name. After checking exactly
// one of Var/Fun is set.
type Ident struct {
	exprBase
	Name string
	Var  *VarSym
	Fun  *FuncDecl
}

// UnaryOp enumerates unary operators.
type UnaryOp uint8

const (
	Deref  UnaryOp = iota // *x
	Addr                  // &x
	Neg                   // -x
	LogNot                // !x
	BitNot                // ~x
)

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And // bitwise
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	LogAnd
	LogOr
)

// Binary is a binary operation (including pointer arithmetic).
type Binary struct {
	exprBase
	Op   BinOp
	X, Y Expr
}

// Assign is an assignment expression: LHS = RHS, or the compound forms
// += and -=.
type Assign struct {
	exprBase
	Op  TokKind // ASSIGN, PLUSEQ, MINUSEQ
	LHS Expr
	RHS Expr
}

// IncDec is a postfix or prefix ++/--.
type IncDec struct {
	exprBase
	X    Expr
	Decr bool
}

// Call invokes Fun (an Ident naming a function, or any expression of
// function-pointer type) with Args.
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Member is x.Name (Arrow false) or x->Name (Arrow true). After checking,
// Field holds the resolved struct field and StructTy the owning composite
// type — the fact the paper's field-sensitive analysis (§4.7.4) consumes.
type Member struct {
	exprBase
	X        Expr
	Name     string
	Arrow    bool
	Field    ctypes.Field
	StructTy *ctypes.Type
}

// Index is x[i].
type Index struct {
	exprBase
	X, I Expr
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	exprBase
	C, A, B Expr
}

// Cast is an explicit or checker-inserted implicit conversion. Implicit
// pointer conversions (void* to T*, NULL to T*) are materialized as Cast
// nodes so the STI analysis sees every type-compatibility edge the
// compiler would see in the IR's bitcasts.
type Cast struct {
	exprBase
	X        Expr
	Implicit bool
}

// SizeofExpr is sizeof(type) or sizeof expr; it is folded to a constant by
// the checker.
type SizeofExpr struct {
	exprBase
	Of *ctypes.Type
}

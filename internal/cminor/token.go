// Package cminor implements the C-subset frontend that substitutes for
// Clang in this reproduction: a lexer, a recursive-descent parser producing
// an AST, and a type checker that resolves names and annotates every
// expression with its ctypes.Type.
//
// The subset covers what the paper's examples, attacks, and workloads need:
//
//   - struct definitions (including self-referential ones), typedefs
//   - global and local variable declarations with const qualifiers,
//     pointers of any depth, fixed-size arrays, and function pointers
//   - function definitions; "extern" declarations mark uninstrumented
//     external library functions (the paper's PAC-stripping boundary)
//   - enums (enumerators become int constants)
//   - statements: blocks, if/else, while, do-while, for, switch (with
//     fallthrough, multi-labels, enum/char case constants), return,
//     break, continue, expression statements, declarations with
//     initializers
//   - expressions: assignment (including compound operators), the ternary
//     conditional, logical/relational/arithmetic operators, unary
//   - & - ! ~, casts, calls (direct and through function pointers),
//     member access (. and ->), indexing, sizeof, string / int / float /
//     char literals
//   - the builtins malloc, free, and printf, plus __hook(n), the scripted
//     corruption point the attack scenarios use to model a memory-unsafe
//     write primitive
package cminor

import "fmt"

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TokKind enumerates token kinds.
type TokKind uint8

const (
	EOF TokKind = iota
	IDENT
	INTLIT
	FLOATLIT
	CHARLIT
	STRLIT

	// Keywords
	KwVoid
	KwBool
	KwChar
	KwShort
	KwInt
	KwLong
	KwFloat
	KwDouble
	KwUnsigned
	KwSigned
	KwConst
	KwStruct
	KwTypedef
	KwExtern
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwSizeof
	KwNull
	KwSwitch
	KwCase
	KwDefault
	KwDo
	KwEnum
	KwStatic
	KwInline

	// Punctuation and operators
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	DOT      // .
	ARROW    // ->
	STAR     // *
	AMP      // &
	PLUS     // +
	MINUS    // -
	SLASH    // /
	PERCENT  // %
	ASSIGN   // =
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	PCTEQ    // %=
	AMPEQ    // &=
	PIPEEQ   // |=
	CARETEQ  // ^=
	SHLEQ    // <<=
	SHREQ    // >>=
	EQ       // ==
	NE       // !=
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	ANDAND   // &&
	OROR     // ||
	NOT      // !
	TILDE    // ~
	INC      // ++
	DEC      // --
	ELLIPSIS // ...
	PIPE     // |
	CARET    // ^
	SHL      // <<
	SHR      // >>
	QUESTION // ?
	COLON    // :
)

var kindNames2 = map[TokKind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer literal", FLOATLIT: "float literal",
	CHARLIT: "char literal", STRLIT: "string literal",
	KwVoid: "void", KwBool: "_Bool", KwChar: "char", KwShort: "short",
	KwInt: "int", KwLong: "long", KwFloat: "float", KwDouble: "double",
	KwUnsigned: "unsigned", KwSigned: "signed", KwConst: "const",
	KwStruct: "struct", KwTypedef: "typedef", KwExtern: "extern",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwSizeof: "sizeof", KwNull: "NULL",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default", KwDo: "do",
	KwEnum:   "enum",
	QUESTION: "?", COLON: ":",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", SEMI: ";", COMMA: ",", DOT: ".",
	ARROW: "->", STAR: "*", AMP: "&", PLUS: "+", MINUS: "-",
	SLASH: "/", PERCENT: "%", ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=",
	STAREQ: "*=", SLASHEQ: "/=", PCTEQ: "%=", AMPEQ: "&=", PIPEEQ: "|=",
	CARETEQ: "^=", SHLEQ: "<<=", SHREQ: ">>=",
	EQ: "==", NE: "!=", LT: "<", GT: ">", LE: "<=", GE: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!", TILDE: "~", INC: "++", DEC: "--",
	ELLIPSIS: "...", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
}

func (k TokKind) String() string {
	if s, ok := kindNames2[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"void": KwVoid, "_Bool": KwBool, "char": KwChar, "short": KwShort,
	"int": KwInt, "long": KwLong, "float": KwFloat, "double": KwDouble,
	"unsigned": KwUnsigned, "signed": KwSigned, "const": KwConst,
	"struct": KwStruct, "typedef": KwTypedef, "extern": KwExtern,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"sizeof": KwSizeof, "NULL": KwNull,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault, "do": KwDo,
	"enum": KwEnum, "static": KwStatic, "inline": KwInline,
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string  // identifier text or string literal contents
	Val  int64   // integer / char literal value
	Fval float64 // float literal value
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INTLIT, CHARLIT:
		return fmt.Sprintf("%d", t.Val)
	case STRLIT:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// SyntaxError is a lexing or parsing failure with its source position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByte2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{lx.line, lx.col} }

func (lx *Lexer) errorf(pos Pos, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for {
		// Skip whitespace.
		for lx.off < len(lx.src) {
			c := lx.peekByte()
			if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				lx.advance()
				continue
			}
			break
		}
		// Skip comments.
		if lx.peekByte() == '/' && lx.peekByte2() == '/' {
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
			continue
		}
		if lx.peekByte() == '/' && lx.peekByte2() == '*' {
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByte2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return Token{}, lx.errorf(start, "unterminated block comment")
			}
			continue
		}
		break
	}

	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}

	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdent(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: text}, nil

	case isDigit(c):
		return lx.lexNumber(pos)

	case c == '\'':
		return lx.lexChar(pos)

	case c == '"':
		return lx.lexString(pos)
	}

	// Operators and punctuation.
	two := func(kind TokKind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	one := func(kind TokKind) (Token, error) {
		lx.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	d := lx.peekByte2()
	switch c {
	case '(':
		return one(LPAREN)
	case ')':
		return one(RPAREN)
	case '{':
		return one(LBRACE)
	case '}':
		return one(RBRACE)
	case '[':
		return one(LBRACK)
	case ']':
		return one(RBRACK)
	case ';':
		return one(SEMI)
	case ',':
		return one(COMMA)
	case '.':
		if d == '.' && lx.off+2 < len(lx.src) && lx.src[lx.off+2] == '.' {
			lx.advance()
			lx.advance()
			lx.advance()
			return Token{Kind: ELLIPSIS, Pos: pos}, nil
		}
		return one(DOT)
	case '*':
		if d == '=' {
			return two(STAREQ)
		}
		return one(STAR)
	case '/':
		if d == '=' {
			return two(SLASHEQ)
		}
		return one(SLASH)
	case '%':
		if d == '=' {
			return two(PCTEQ)
		}
		return one(PERCENT)
	case '~':
		return one(TILDE)
	case '?':
		return one(QUESTION)
	case ':':
		return one(COLON)
	case '^':
		if d == '=' {
			return two(CARETEQ)
		}
		return one(CARET)
	case '+':
		if d == '+' {
			return two(INC)
		}
		if d == '=' {
			return two(PLUSEQ)
		}
		return one(PLUS)
	case '-':
		if d == '-' {
			return two(DEC)
		}
		if d == '=' {
			return two(MINUSEQ)
		}
		if d == '>' {
			return two(ARROW)
		}
		return one(MINUS)
	case '=':
		if d == '=' {
			return two(EQ)
		}
		return one(ASSIGN)
	case '!':
		if d == '=' {
			return two(NE)
		}
		return one(NOT)
	case '<':
		if d == '=' {
			return two(LE)
		}
		if d == '<' {
			if lx.off+2 < len(lx.src) && lx.src[lx.off+2] == '=' {
				lx.advance()
				lx.advance()
				lx.advance()
				return Token{Kind: SHLEQ, Pos: pos}, nil
			}
			return two(SHL)
		}
		return one(LT)
	case '>':
		if d == '=' {
			return two(GE)
		}
		if d == '>' {
			if lx.off+2 < len(lx.src) && lx.src[lx.off+2] == '=' {
				lx.advance()
				lx.advance()
				lx.advance()
				return Token{Kind: SHREQ, Pos: pos}, nil
			}
			return two(SHR)
		}
		return one(GT)
	case '&':
		if d == '&' {
			return two(ANDAND)
		}
		if d == '=' {
			return two(AMPEQ)
		}
		return one(AMP)
	case '|':
		if d == '|' {
			return two(OROR)
		}
		if d == '=' {
			return two(PIPEEQ)
		}
		return one(PIPE)
	}
	return Token{}, lx.errorf(pos, "unexpected character %q", string(c))
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	if lx.peekByte() == '0' && (lx.peekByte2() == 'x' || lx.peekByte2() == 'X') {
		lx.advance()
		lx.advance()
		hs := lx.off
		for lx.off < len(lx.src) && isHexDigit(lx.peekByte()) {
			lx.advance()
		}
		if lx.off == hs {
			return Token{}, lx.errorf(pos, "malformed hex literal")
		}
		var v int64
		for _, ch := range []byte(lx.src[hs:lx.off]) {
			v <<= 4
			switch {
			case isDigit(ch):
				v |= int64(ch - '0')
			case ch >= 'a':
				v |= int64(ch-'a') + 10
			default:
				v |= int64(ch-'A') + 10
			}
		}
		return Token{Kind: INTLIT, Pos: pos, Val: v, Text: lx.src[start:lx.off]}, nil
	}
	for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
		lx.advance()
	}
	// Float literal: digits '.' digits.
	if lx.peekByte() == '.' && isDigit(lx.peekByte2()) {
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		var fv float64
		frac := false
		scale := 0.1
		for _, ch := range []byte(lx.src[start:lx.off]) {
			if ch == '.' {
				frac = true
				continue
			}
			if frac {
				fv += float64(ch-'0') * scale
				scale /= 10
			} else {
				fv = fv*10 + float64(ch-'0')
			}
		}
		return Token{Kind: FLOATLIT, Pos: pos, Fval: fv, Text: lx.src[start:lx.off]}, nil
	}
	var v int64
	for _, ch := range []byte(lx.src[start:lx.off]) {
		v = v*10 + int64(ch-'0')
	}
	// Consume any integer suffixes (L, UL, ...) without effect.
	for lx.off < len(lx.src) && (lx.peekByte() == 'l' || lx.peekByte() == 'L' || lx.peekByte() == 'u' || lx.peekByte() == 'U') {
		lx.advance()
	}
	return Token{Kind: INTLIT, Pos: pos, Val: v, Text: lx.src[start:lx.off]}, nil
}

func (lx *Lexer) escape(pos Pos) (byte, error) {
	lx.advance() // backslash
	if lx.off >= len(lx.src) {
		return 0, lx.errorf(pos, "unterminated escape")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	}
	return 0, lx.errorf(pos, "unknown escape \\%c", c)
}

func (lx *Lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, lx.errorf(pos, "unterminated char literal")
	}
	var v byte
	var err error
	if lx.peekByte() == '\\' {
		v, err = lx.escape(pos)
		if err != nil {
			return Token{}, err
		}
	} else {
		v = lx.advance()
	}
	if lx.off >= len(lx.src) || lx.peekByte() != '\'' {
		return Token{}, lx.errorf(pos, "unterminated char literal")
	}
	lx.advance()
	return Token{Kind: CHARLIT, Pos: pos, Val: int64(v)}, nil
}

func (lx *Lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var buf []byte
	for {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errorf(pos, "unterminated string literal")
		}
		if lx.peekByte() == '"' {
			lx.advance()
			return Token{Kind: STRLIT, Pos: pos, Text: string(buf)}, nil
		}
		if lx.peekByte() == '\\' {
			c, err := lx.escape(pos)
			if err != nil {
				return Token{}, err
			}
			buf = append(buf, c)
			continue
		}
		buf = append(buf, lx.advance())
	}
}

package workload

// PACDense returns the PAC-dense microbenchmark used by the trajectory
// harness: a pointer-chasing kernel whose hot loop is dominated by
// instrumented loads and stores, so almost every dispatched instruction
// sits next to a pac/aut. That is the worst case for interpreter dispatch
// overhead and therefore the best case for measuring the sign/store and
// auth/load superinstruction fast path.
func PACDense() *Benchmark {
	return Generate(Config{
		Name: "pac-dense", Suite: "micro",
		Structs: 4, PtrVars: 32, ColdFns: 2, CastRate: 10,
		Iters: 4000, ChainLen: 32,
		DerefOps: 16, CallOps: 1, CastOps: 2, ArithOps: 1,
		Seed: hashName("pac-dense"),
	})
}

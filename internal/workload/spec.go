package workload

import "fmt"

// specMix is a benchmark's hot-loop instruction mix: the pointer intensity
// that, per the paper's own correlation analysis (§6.3.2: overhead tracks
// instrumented load/stores at Pearson 0.75–0.8), determines its overhead.
// The mixes are chosen so the qualitative Figure 9/10 pattern holds:
// pointer-chasing benchmarks (perlbench, xalancbmk, omnetpp, povray,
// dealII) high, numeric kernels (lbm, libquantum, namd, imagick) low.
type specMix struct {
	deref, call, cast, arith, flt int
}

var spec2006Mix = map[string]specMix{
	"perlbench":  {12, 3, 6, 2, 0},
	"bzip2":      {3, 0, 1, 24, 0},
	"mcf":        {8, 0, 2, 8, 0},
	"milc":       {3, 0, 1, 12, 24},
	"namd":       {1, 0, 0, 8, 40},
	"gobmk":      {6, 1, 2, 10, 0},
	"dealII":     {10, 2, 4, 6, 4},
	"soplex":     {7, 1, 3, 8, 6},
	"povray":     {12, 2, 6, 4, 6},
	"hmmer":      {4, 0, 1, 20, 0},
	"libquantum": {1, 0, 0, 30, 0},
	"sjeng":      {4, 1, 1, 14, 0},
	"h264ref":    {5, 0, 1, 18, 0},
	"lbm":        {1, 0, 0, 6, 60},
	"omnetpp":    {10, 2, 5, 4, 0},
	"astar":      {5, 1, 1, 10, 0},
	"sphinx3":    {3, 0, 1, 10, 20},
	"xalancbmk":  {12, 3, 6, 2, 0},
}

// spec2006Table3 is the paper's published Table 3, used both as generator
// input (NT, NV) and as the reference columns in the reproduction report.
var spec2006Table3 = map[string]Table3Row{
	"perlbench":  {NT: 155, RTSTC: 318, RTSTWC: 722, NV: 2939, ECVSTC: 198, ECVSTWC: 82, ECTSTC: 33, ECTSTWC: 1},
	"bzip2":      {NT: 25, RTSTC: 31, RTSTWC: 55, NV: 122, ECVSTC: 32, ECVSTWC: 13, ECTSTC: 7, ECTSTWC: 1},
	"mcf":        {NT: 12, RTSTC: 35, RTSTWC: 40, NV: 95, ECVSTC: 9, ECVSTWC: 8, ECTSTC: 2, ECTSTWC: 1},
	"milc":       {NT: 55, RTSTC: 154, RTSTWC: 195, NV: 440, ECVSTC: 54, ECVSTWC: 18, ECTSTC: 18, ECTSTWC: 1},
	"namd":       {NT: 30, RTSTC: 73, RTSTWC: 100, NV: 230, ECVSTC: 23, ECVSTWC: 23, ECTSTC: 10, ECTSTWC: 1},
	"gobmk":      {NT: 120, RTSTC: 216, RTSTWC: 417, NV: 1057, ECVSTC: 111, ECVSTWC: 46, ECTSTC: 25, ECTSTWC: 1},
	"dealII":     {NT: 2546, RTSTC: 4528, RTSTWC: 8878, NV: 21018, ECVSTC: 676, ECVSTWC: 44, ECTSTC: 192, ECTSTWC: 1},
	"soplex":     {NT: 129, RTSTC: 970, RTSTWC: 1690, NV: 3399, ECVSTC: 137, ECVSTWC: 27, ECTSTC: 66, ECTSTWC: 1},
	"povray":     {NT: 282, RTSTC: 620, RTSTWC: 1446, NV: 3791, ECVSTC: 229, ECVSTWC: 25, ECTSTC: 76, ECTSTWC: 1},
	"hmmer":      {NT: 90, RTSTC: 198, RTSTWC: 405, NV: 973, ECVSTC: 56, ECVSTWC: 24, ECTSTC: 16, ECTSTWC: 1},
	"libquantum": {NT: 13, RTSTC: 33, RTSTWC: 44, NV: 58, ECVSTC: 9, ECVSTWC: 4, ECTSTC: 5, ECTSTWC: 1},
	"sjeng":      {NT: 29, RTSTC: 47, RTSTWC: 73, NV: 130, ECVSTC: 19, ECVSTWC: 9, ECTSTC: 7, ECTSTWC: 1},
	"h264ref":    {NT: 116, RTSTC: 252, RTSTWC: 354, NV: 727, ECVSTC: 48, ECVSTWC: 23, ECTSTC: 15, ECTSTWC: 1},
	"lbm":        {NT: 14, RTSTC: 14, RTSTWC: 20, NV: 33, ECVSTC: 12, ECVSTWC: 7, ECTSTC: 4, ECTSTWC: 1},
	"omnetpp":    {NT: 255, RTSTC: 558, RTSTWC: 1241, NV: 2458, ECVSTC: 94, ECVSTWC: 26, ECTSTC: 31, ECTSTWC: 1},
	"astar":      {NT: 36, RTSTC: 59, RTSTWC: 98, NV: 156, ECVSTC: 18, ECVSTWC: 11, ECTSTC: 12, ECTSTWC: 1},
	"sphinx3":    {NT: 88, RTSTC: 188, RTSTWC: 321, NV: 686, ECVSTC: 36, ECVSTWC: 20, ECTSTC: 12, ECTSTWC: 1},
	"xalancbmk":  {NT: 2558, RTSTC: 7503, RTSTWC: 14073, NV: 32097, ECVSTC: 603, ECVSTWC: 122, ECTSTC: 206, ECTSTWC: 1},
}

// spec2006Order fixes the row order of Table 3.
var spec2006Order = []string{
	"perlbench", "bzip2", "mcf", "milc", "namd", "gobmk", "dealII",
	"soplex", "povray", "hmmer", "libquantum", "sjeng", "h264ref", "lbm",
	"omnetpp", "astar", "sphinx3", "xalancbmk",
}

// SPEC2006Names lists the benchmark names in table order.
func SPEC2006Names() []string { return spec2006Order }

// SPEC2006Perf returns the execution-sized SPEC CPU2006 suite used for
// the Figure 9/10 overhead measurements: full per-benchmark hot-loop
// mixes over a compact static structure.
func SPEC2006Perf() []*Benchmark {
	var out []*Benchmark
	for _, name := range spec2006Order {
		mix := spec2006Mix[name]
		b := Generate(Config{
			Name: name, Suite: "SPEC2006",
			Structs: 8, PtrVars: 48, ColdFns: 6, CastRate: 25,
			Iters: 2500, ChainLen: 24,
			DerefOps: mix.deref, CallOps: mix.call, CastOps: mix.cast,
			ArithOps: mix.arith, FloatOps: mix.flt,
			Seed: hashName(name),
		})
		b.PaperTable3 = spec2006Table3[name]
		out = append(out, b)
	}
	return out
}

// SPEC2006Static returns the analysis-sized SPEC CPU2006 suite used for
// the Table 3 reproduction: the generator is parameterized with the
// paper's own NT and NV counts so the equivalence-class statistics are
// computed over a pointer population of the published size and shape.
// (These programs are large; they are analyzed, not executed.)
func SPEC2006Static() []*Benchmark {
	var out []*Benchmark
	// The published suite-wide pointer-to-pointer census (7,489 sites, 25
	// special across all of SPEC2006) is distributed over the benchmarks
	// proportionally to their pointer population.
	totalNV := 0
	for _, row := range spec2006Table3 {
		totalNV += row.NV
	}
	for _, name := range spec2006Order {
		row := spec2006Table3[name]
		mix := spec2006Mix[name]
		structs := row.NT * 3 / 4 // the rest of NT comes from scalar pointer types
		if structs < 1 {
			structs = 1
		}
		ppPlain := row.NV * 6800 / totalNV
		ppSpecial := row.NV * 25 / totalNV
		vars := row.NV - 3*structs - row.ECVSTWC - row.ECVSTC - ppPlain - ppSpecial
		if vars < 8 {
			vars = 8
		}
		b := Generate(Config{
			Name: name, Suite: "SPEC2006",
			Structs: structs, PtrVars: vars, ColdFns: maxInt(4, vars/8),
			CastRate:    20 + mix.cast*10,
			Popular:     row.ECVSTWC,
			SharedCasts: row.ECVSTC,
			PPPlain:     ppPlain,
			PPSpecial:   ppSpecial,
			Iters:       1, ChainLen: 2,
			DerefOps: 1, ArithOps: 1,
			Seed: hashName(name),
		})
		b.PaperNT = row.NT
		b.PaperNV = row.NV
		b.PaperTable3 = row
		out = append(out, b)
	}
	return out
}

// spec2017 lists the Figure 9 benchmarks: the int-rate/speed pairs first,
// then the float set, as the figure's x-axis does.
var spec2017Order = []string{
	"500.perlbench_r", "505.mcf_r", "520.omnetpp_r", "523.xalancbmk_r",
	"531.deepsjeng_r", "541.leela_r", "557.xz_r",
	"600.perlbench_s", "605.mcf_s", "620.omnetpp_s", "623.xalancbmk_s",
	"631.deepsjeng_s", "641.leela_s", "657.xz_s",
	"508.namd_r", "510.parsret_r", "511.povray_r", "519.lbm_r",
	"538.imagick_r", "544.nab_r", "619.lbm_s", "638.imagick_s", "644.nab_s",
}

var spec2017Mix = map[string]specMix{
	"perlbench": {13, 3, 6, 2, 0},
	"mcf":       {8, 0, 2, 8, 0},
	"omnetpp":   {10, 2, 5, 4, 0},
	"xalancbmk": {13, 3, 6, 2, 0},
	"deepsjeng": {4, 1, 1, 16, 0},
	"leela":     {5, 1, 1, 12, 0},
	"xz":        {3, 0, 1, 22, 0},
	"namd":      {1, 0, 0, 8, 40},
	"parsret":   {5, 1, 2, 8, 10},
	"povray":    {12, 2, 6, 4, 6},
	"lbm":       {1, 0, 0, 6, 60},
	"imagick":   {1, 0, 0, 8, 44},
	"nab":       {2, 0, 1, 8, 30},
}

// SPEC2017Names lists the Figure 9 benchmark names in order.
func SPEC2017Names() []string { return spec2017Order }

// SPEC2017 returns the execution-sized SPEC CPU2017 suite. The _r (rate)
// and _s (speed) builds of a benchmark share the instruction mix and
// differ in iteration count, as the real suites differ in input size.
func SPEC2017() []*Benchmark {
	var out []*Benchmark
	for _, full := range spec2017Order {
		base := full[4 : len(full)-2] // strip "NNN." and "_r"/"_s"
		mix, ok := spec2017Mix[base]
		if !ok {
			panic(fmt.Sprintf("workload: no mix for %q", base))
		}
		iters := 2500
		if full[len(full)-1] == 's' {
			iters = 3500
		}
		out = append(out, Generate(Config{
			Name: full, Suite: "SPEC2017",
			Structs: 8, PtrVars: 48, ColdFns: 6, CastRate: 25,
			Iters: iters, ChainLen: 24,
			DerefOps: mix.deref, CallOps: mix.call, CastOps: mix.cast,
			ArithOps: mix.arith, FloatOps: mix.flt,
			Seed: hashName(full),
		}))
	}
	return out
}

func hashName(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package workload

// NGINX: a request-processing server loop in the shape the paper
// stress-tests with wrk — parse a request line, walk a phase-handler chain
// of function pointers, build a buffer chain, write a response. Heavier on
// data pointers and indirect calls than the numeric suites, which is why
// the paper measures it near the SPEC overheads (5.98% / 3.93% / 12.76%).
const nginxSource = `
	struct ngx_buf { char *pos; char *last; struct ngx_buf *next; int size; };
	struct ngx_request {
		char *uri;
		char *method;
		int status;
		struct ngx_buf *out;
		int (*phase_handler)(struct ngx_request *r);
		int (*write_handler)(struct ngx_request *r);
	};

	int requests_ok;
	int requests_rejected;
	long bytes_out;

	int ngx_http_static_handler(struct ngx_request *r) {
		if (strstr(r->uri, "..") != NULL) {
			r->status = 403;
			return 1;
		}
		r->status = 200;
		return 0;
	}

	int ngx_http_write_filter(struct ngx_request *r) {
		struct ngx_buf *b = r->out;
		long n = 0;
		while (b != NULL) {
			n += (long) b->size;
			b = b->next;
		}
		bytes_out += n;
		return 0;
	}

	struct ngx_buf *mkbuf(int size) {
		struct ngx_buf *b = (struct ngx_buf*) malloc(sizeof(struct ngx_buf));
		b->size = size;
		b->pos = "x";
		b->last = b->pos;
		b->next = NULL;
		return b;
	}

	long checksum(char *s, int rounds) {
		long h = 5381;
		long n = (long) strlen(s);
		for (int r = 0; r < rounds; r++) {
			for (long i = 0; i < n; i++) {
				h = h * 33 + i;
				h = h ^ (h >> 13);
			}
		}
		return h;
	}

	void ngx_http_process_request(struct ngx_request *r) {
		bytes_out += checksum(r->uri, 2) & 1;
		if (r->phase_handler(r) != 0) {
			requests_rejected++;
			return;
		}
		struct ngx_buf *head = mkbuf(128);
		head->next = mkbuf(512);
		head->next->next = mkbuf(64);
		r->out = head;
		r->write_handler(r);
		requests_ok++;
	}

	char *pick_uri(int i) {
		int k = i % 5;
		if (k == 0) return "/index.html";
		if (k == 1) return "/api/v1/status";
		if (k == 2) return "/static/logo.png";
		if (k == 3) return "/../etc/passwd";
		return "/health";
	}

	int main(void) {
		requests_ok = 0;
		requests_rejected = 0;
		bytes_out = 0;
		for (int i = 0; i < 1200; i++) {
			struct ngx_request *r = (struct ngx_request*) malloc(sizeof(struct ngx_request));
			r->uri = pick_uri(i);
			r->method = "GET";
			r->status = 0;
			r->out = NULL;
			r->phase_handler = ngx_http_static_handler;
			r->write_handler = ngx_http_write_filter;
			ngx_http_process_request(r);
		}
		if (requests_rejected == 0) return 1;
		if (bytes_out == 0) return 2;
		return (int)((requests_ok + requests_rejected) & 127);
	}
`

// NGINX returns the web-server workload.
func NGINX() *Benchmark {
	return &Benchmark{Suite: "NGINX", Name: "nginx", Source: nginxSource}
}

// AllSuites returns every execution-sized benchmark grouped by suite, in
// the order Figure 9 reports them.
func AllSuites() map[string][]*Benchmark {
	return map[string][]*Benchmark{
		"SPEC2017": SPEC2017(),
		"SPEC2006": SPEC2006Perf(),
		"nbench":   NBench(),
		"CPython":  CPython(),
		"NGINX":    {NGINX()},
	}
}

// SuiteOrder fixes the reporting order of the suites.
var SuiteOrder = []string{"SPEC2017", "SPEC2006", "nbench", "CPython", "NGINX"}

package workload

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
)

// TestAllBenchmarksCompileAndRunBaseline compiles and executes every
// execution-sized benchmark uninstrumented.
func TestAllBenchmarksCompileAndRunBaseline(t *testing.T) {
	for suite, benches := range AllSuites() {
		for _, b := range benches {
			t.Run(suite+"/"+b.Name, func(t *testing.T) {
				c, err := core.Compile(b.Source)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				res, err := c.Run(sti.None, core.RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Err != nil {
					t.Fatalf("baseline run failed: %v", res.Err)
				}
			})
		}
	}
}

// TestBenchmarksSoundUnderAllMechanisms runs a representative benchmark
// from each suite under every mechanism and demands identical results.
func TestBenchmarksSoundUnderAllMechanisms(t *testing.T) {
	if testing.Short() {
		t.Skip("long soundness sweep")
	}
	picks := []*Benchmark{
		SPEC2017()[0],      // perlbench_r: pointer-heavy
		SPEC2006Perf()[13], // lbm: float-heavy
		NBench()[7],        // huffman: tree pointers
		CPython()[4],       // object-dispatch
		NGINX(),
	}
	for _, b := range picks {
		t.Run(b.Suite+"/"+b.Name, func(t *testing.T) {
			c, err := core.Compile(b.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var want int64
			for i, mech := range sti.Mechanisms {
				res, err := c.Run(mech, core.RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Err != nil {
					t.Fatalf("%s: %v", mech, res.Err)
				}
				if i == 0 {
					want = res.Exit
				} else if res.Exit != want {
					t.Errorf("%s: exit = %d, baseline = %d", mech, res.Exit, want)
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "x", Suite: "t", Structs: 4, PtrVars: 20, ColdFns: 3,
		CastRate: 30, Iters: 10, ChainLen: 4, DerefOps: 3, ArithOps: 2, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Source != b.Source {
		t.Error("generator is not deterministic")
	}
	cfg.Seed = 43
	c := Generate(cfg)
	if c.Source == a.Source {
		t.Error("seed has no effect")
	}
}

func TestSuiteShapes(t *testing.T) {
	if n := len(SPEC2006Perf()); n != 18 {
		t.Errorf("SPEC2006 = %d benchmarks, want 18", n)
	}
	if n := len(SPEC2017()); n != 23 {
		t.Errorf("SPEC2017 = %d benchmarks, want 23", n)
	}
	if n := len(NBench()); n != 10 {
		t.Errorf("nbench = %d benchmarks, want 10", n)
	}
	if n := len(CPython()); n != 8 {
		t.Errorf("CPython = %d benchmarks, want 8", n)
	}
	if n := len(SPEC2006Static()); n != 18 {
		t.Errorf("SPEC2006Static = %d, want 18", n)
	}
	for _, b := range SPEC2006Static() {
		if b.PaperNT == 0 || b.PaperNV == 0 {
			t.Errorf("%s: missing paper parameters", b.Name)
		}
	}
}

// TestStaticSuiteApproachesPaperCounts verifies the analysis-sized
// SPEC2006 programs land near the paper's published NT and NV (they
// parameterize the generator, so the analysis should recover numbers in
// the same range).
func TestStaticSuiteApproachesPaperCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes large generated programs")
	}
	for _, b := range SPEC2006Static()[:6] { // a prefix keeps the test fast
		c, err := core.Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		st := c.Analysis.Equivalence()
		// Within a factor-of-two band of the published counts.
		if st.NV < b.PaperNV/2 || st.NV > b.PaperNV*2 {
			t.Errorf("%s: NV = %d, paper %d (outside 2x band)", b.Name, st.NV, b.PaperNV)
		}
		if st.NT < b.PaperNT/2 || st.NT > b.PaperNT*2 {
			t.Errorf("%s: NT = %d, paper %d (outside 2x band)", b.Name, st.NT, b.PaperNT)
		}
		// Structural invariants of Table 3 hold by construction.
		if st.RTSTC > st.RTSTWC {
			t.Errorf("%s: RT(STC)=%d exceeds RT(STWC)=%d", b.Name, st.RTSTC, st.RTSTWC)
		}
		if st.LargestECTSTWC != 1 {
			t.Errorf("%s: ECT(STWC) = %d, must be 1", b.Name, st.LargestECTSTWC)
		}
		if st.RTSTWC < st.NT {
			t.Errorf("%s: RT(STWC)=%d below NT=%d — RSTI must refine types", b.Name, st.RTSTWC, st.NT)
		}
	}
}

// TestPointerIntensityOrdering checks the suites' relative overheads have
// the right coarse ordering: nbench lowest.
func TestPointerIntensityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks under instrumentation")
	}
	overhead := func(b *Benchmark) float64 {
		c, err := core.Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		base, err := c.Run(sti.None, core.RunConfig{})
		if err != nil || base.Err != nil {
			t.Fatalf("%s: %v %v", b.Name, err, base.Err)
		}
		prot, err := c.Run(sti.STWC, core.RunConfig{})
		if err != nil || prot.Err != nil {
			t.Fatalf("%s: %v %v", b.Name, err, prot.Err)
		}
		return core.Overhead(base, prot)
	}
	nb := overhead(NBench()[0])     // numeric sort: near zero
	perl := overhead(SPEC2017()[0]) // perlbench: pointer heavy
	if nb >= perl {
		t.Errorf("nbench numeric-sort overhead %.3f >= perlbench %.3f", nb, perl)
	}
}

package workload

// SecuritySuite returns the hook-enabled workloads the security dashboard
// measures and the attack synthesizer attacks. Each plants a __hook(1)
// corruption site between the pointer population's signing stores and a
// post_check() that authenticates them, so synthesized tampers face real
// post-hook authentication; the three configurations straddle the
// Adaptive mechanism's ECV threshold and STC's cast-merging so every
// mechanism's blind spot is represented:
//
//   - sec-small:   popular pool below the Adaptive threshold — Adaptive
//     behaves like STWC and shares its same-class replay blind spot.
//   - sec-popular: popular pool above the threshold (the paper's
//     xalancbmk shape) — Adaptive binds location and closes it.
//   - sec-cast:    cast-heavy population — STC's merged classes widen
//     the replay surface relative to STWC.
//
// The suite is execution-sized (tiny iteration counts): every datapoint
// in SECURITY_RESULTS.json is recomputed by running these programs.
func SecuritySuite() []*Benchmark {
	base := Config{
		Suite: "security",
		Iters: 20, ChainLen: 6,
		DerefOps: 2, CallOps: 1, ArithOps: 1,
		HookMain: true,
	}
	small := base
	small.Name = "sec-small"
	small.Structs, small.PtrVars, small.ColdFns = 4, 24, 4
	small.Popular, small.IsoPool, small.SharedCasts = 8, 4, 4
	small.CastRate, small.Seed = 20, hashName(small.Name)

	popular := base
	popular.Name = "sec-popular"
	popular.Structs, popular.PtrVars, popular.ColdFns = 4, 24, 4
	popular.Popular, popular.IsoPool, popular.SharedCasts = 24, 4, 4
	popular.CastRate, popular.Seed = 20, hashName(popular.Name)

	cast := base
	cast.Name = "sec-cast"
	cast.Structs, cast.PtrVars, cast.ColdFns = 6, 36, 6
	cast.Popular, cast.IsoPool, cast.SharedCasts = 8, 6, 10
	cast.CastRate, cast.Seed = 60, hashName(cast.Name)

	return []*Benchmark{Generate(small), Generate(popular), Generate(cast)}
}

// Package workload provides the benchmark programs the performance
// evaluation runs: deterministic synthetic substitutes for SPEC CPU2006,
// SPEC CPU2017, nbench, the CPython PyTorch benchmarks, and NGINX.
//
// Real SPEC sources are licensed and enormous; what the paper's overhead
// numbers actually depend on is (a) each benchmark's pointer structure —
// how many types, variables and casts the STI analysis sees (Table 3
// reports exactly these counts) — and (b) each benchmark's dynamic density
// of pointer loads/stores relative to plain computation, which the paper
// shows correlates with overhead at Pearson 0.75–0.8. The generator
// therefore reproduces both: the SPEC2006 generators take the paper's own
// published NT (types) and NV (pointer variables) as inputs, and every
// benchmark has a pointer-intensity knob that sets the hot loop's mix of
// pointer chasing, indirect calls, casts and arithmetic.
//
// Everything is seeded and deterministic: the same Benchmark always
// generates byte-identical source.
package workload

import (
	"fmt"
	"strings"

	"rsti/internal/sti"
)

// Benchmark is one runnable workload.
type Benchmark struct {
	Suite string // "SPEC2006", "SPEC2017", "nbench", "CPython", "NGINX"
	Name  string
	// Source is the program text (generated or hand-written).
	Source string
	// PaperNT / PaperNV are the published Table 3 inputs when the
	// generator was parameterized from the paper (SPEC2006 only).
	PaperNT, PaperNV int
	// PaperTable3 holds the paper's published Table 3 row for side-by-side
	// reporting (zero for suites the paper doesn't tabulate).
	PaperTable3 Table3Row
}

// Table3Row mirrors the columns of the paper's Table 3.
type Table3Row struct {
	NT, RTSTC, RTSTWC, NV            int
	ECVSTC, ECVSTWC, ECTSTC, ECTSTWC int
}

// PaperGeomeans records the paper's reported geometric-mean overheads per
// suite (Figure 9, §6.3.2) for STWC, STC and STL, in percent.
var PaperGeomeans = map[string]map[sti.Mechanism]float64{
	"SPEC2017": {sti.STWC: 6.86, sti.STC: 3.17, sti.STL: 12.70},
	"SPEC2006": {sti.STWC: 8.42, sti.STC: 5.36, sti.STL: 21.47},
	"nbench":   {sti.STWC: 1.54, sti.STC: 0.52, sti.STL: 2.78},
	"CPython":  {sti.STWC: 5.01, sti.STC: 3.44, sti.STL: 10.80},
	"NGINX":    {sti.STWC: 5.98, sti.STC: 3.93, sti.STL: 12.76},
	"all":      {sti.STWC: 5.29, sti.STC: 2.97, sti.STL: 11.12},
}

// PaperPARTSNbench is PARTS' published nbench mean overhead (percent).
const PaperPARTSNbench = 19.5

// Config parameterizes the synthetic program generator.
type Config struct {
	Name  string
	Suite string

	// Static structure (drives Table 3-style statistics).
	Structs  int // distinct composite types with pointer fields
	PtrVars  int // total pointer variables to declare across functions
	ColdFns  int // functions holding the cold pointer population
	CastRate int // percent of cold vars initialized through a void* cast

	// Equivalence-class shaping (Table 3 targets).
	Popular     int // same-type globals read from one function: sets the largest ECV under STWC
	SharedCasts int // cold vars cast into one shared void*: sets the largest ECV under STC
	// Pointer-to-pointer site population (§6.2.2 census).
	PPPlain   int // T** uses that keep their type (no CE/FE needed)
	PPSpecial int // T** cast to void** and passed (CE/FE sites)

	// Dynamic hot loop (drives overhead).
	Iters    int // hot loop iterations
	ChainLen int // linked-structure length walked per iteration
	DerefOps int // pointer loads/stores per iteration in the hot worker
	CallOps  int // indirect calls per iteration
	ArithOps int // plain integer ops per iteration (dilutes overhead)
	FloatOps int // float ops per iteration (numeric benchmarks)
	CastOps  int // hot-path void* casts per iteration

	// Security-suite shaping (attack synthesis; zero for the performance
	// suites, whose generated source must stay byte-identical).
	//
	// HookMain plants a __hook(1) corruption site in main after the cold
	// population signs its pointers, followed by a post_check() that
	// authenticates the popular pool, the iso pool and the roots — the
	// post-hook loads a synthesized tamper must survive. It also declares
	// a freshly-stored local pointer in main (re-stored after the hook),
	// the elidable-local shape whose corruption every mechanism provably
	// misses.
	HookMain bool
	// IsoPool emits char* globals each read from its own function:
	// same basic type as the popular pool but disjoint scopes, so every
	// iso global is its own RSTI-type — the same-type cross-scope replay
	// population (PARTS misses it, STWC catches it).
	IsoPool int

	Seed uint64
}

// rng is splitmix64: tiny, seedable, deterministic.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generate renders the benchmark program for a config.
func Generate(cfg Config) *Benchmark {
	if cfg.Structs < 1 {
		cfg.Structs = 1
	}
	if cfg.ChainLen < 1 {
		cfg.ChainLen = 1
	}
	if cfg.ColdFns < 1 {
		cfg.ColdFns = 1
	}
	r := &rng{s: cfg.Seed ^ 0xbadc0ffee}
	var b strings.Builder

	// --- Composite types: each node type has a self-typed chain link, a
	// cross-type peer pointer (forming a ring of types), and an
	// indirect-call slot (the shape of Figure 6).
	for i := 0; i < cfg.Structs; i++ {
		fmt.Fprintf(&b, "struct T%d { long val; struct T%d *next; struct T%d *peer; long (*fn)(long); };\n",
			i, i, (i+1)%cfg.Structs)
	}

	// --- Indirect call targets.
	b.WriteString("long op_add(long x) { return x + 3; }\n")
	b.WriteString("long op_mul(long x) { return x * 5; }\n")
	b.WriteString("long op_mix(long x) { return (x << 1) ^ (x >> 3); }\n")

	// --- Global roots: one chain head per struct type.
	for i := 0; i < cfg.Structs; i++ {
		fmt.Fprintf(&b, "struct T%d *root%d;\n", i, i)
	}
	b.WriteString("long acc;\n")

	// --- Setup: build each type's chain on the heap.
	b.WriteString("void setup(void) {\n")
	for i := 0; i < cfg.Structs; i++ {
		fmt.Fprintf(&b, "\troot%d = (struct T%d*) malloc(sizeof(struct T%d));\n", i, i, i)
		fmt.Fprintf(&b, "\troot%d->val = %d;\n", i, i+1)
		fmt.Fprintf(&b, "\troot%d->fn = op_%s;\n", i, []string{"add", "mul", "mix"}[i%3])
		fmt.Fprintf(&b, "\troot%d->next = NULL;\n", i)
	}
	// Link the peer ring.
	for i := 0; i < cfg.Structs; i++ {
		fmt.Fprintf(&b, "\troot%d->peer = root%d;\n", i, (i+1)%cfg.Structs)
	}
	// Extend type 0's chain to ChainLen nodes.
	fmt.Fprintf(&b, "\tstruct T0 *tail = root0;\n")
	fmt.Fprintf(&b, "\tfor (int i = 1; i < %d; i++) {\n", cfg.ChainLen)
	b.WriteString("\t\tstruct T0 *n = (struct T0*) malloc(sizeof(struct T0));\n")
	b.WriteString("\t\tn->val = (long) i;\n")
	b.WriteString("\t\tn->fn = op_add;\n")
	b.WriteString("\t\tn->next = NULL;\n")
	b.WriteString("\t\tn->peer = root0->peer;\n")
	b.WriteString("\t\ttail->next = n;\n")
	b.WriteString("\t\ttail = n;\n")
	b.WriteString("\t}\n")
	b.WriteString("}\n")

	// --- Cold pointer population: functions declaring the pointer
	// variables (and casts) that give the program its Table 3 footprint.
	// Each is called once so its scope information is realistic.
	// Popular pool: same-type globals all read from one function — they
	// intern to a single RSTI-type whose member count is the program's
	// largest ECV under STWC (Table 3's ECV column).
	if cfg.Popular > 0 {
		for i := 0; i < cfg.Popular; i++ {
			fmt.Fprintf(&b, "char *pop%d;\n", i)
		}
		b.WriteString("long popular_reader(void) {\n\tlong sum = 0;\n")
		for i := 0; i < cfg.Popular; i++ {
			fmt.Fprintf(&b, "\tpop%d = \"p%d\";\n", i, i%10)
			fmt.Fprintf(&b, "\tif (pop%d != NULL) sum += 1;\n", i)
		}
		b.WriteString("\treturn sum;\n}\n")
	}
	// Iso pool: one reader function per global, so each global's scope
	// set is distinct and each interns its own RSTI-type despite the
	// shared basic type.
	for i := 0; i < cfg.IsoPool; i++ {
		fmt.Fprintf(&b, "char *iso%d;\n", i)
		fmt.Fprintf(&b, "long iso_reader_%d(void) {\n\tiso%d = \"i%d\";\n\tif (iso%d != NULL) return 1;\n\treturn 0;\n}\n",
			i, i, i%10, i)
	}
	// Shared-cast pool: cold struct pointers all cast into one void*
	// global; STC merges them into one class, whose size becomes the
	// largest ECV under STC.
	if cfg.SharedCasts > 0 {
		b.WriteString("void *shared_sink;\n")
		b.WriteString("long shared_caster(void) {\n\tlong sum = 0;\n")
		for i := 0; i < cfg.SharedCasts; i++ {
			st := r.intn(cfg.Structs)
			fmt.Fprintf(&b, "\tstruct T%d *sc%d = NULL;\n", st, i)
			fmt.Fprintf(&b, "\tshared_sink = (void*) sc%d;\n", i)
			fmt.Fprintf(&b, "\tif (shared_sink == NULL) sum += 1;\n")
		}
		b.WriteString("\treturn sum;\n}\n")
	}
	// Pointer-to-pointer population (§6.2.2): plain T** uses keep their
	// type; special sites cast to void** and pass onward, which is the
	// case the CE/FE machinery exists for.
	if cfg.PPPlain > 0 || cfg.PPSpecial > 0 {
		// Spread the pointer-to-pointer population across the type ring
		// and across many driver functions so no single escaped class
		// dominates the equivalence statistics.
		// Enough type diversity that no escaped class outgrows the
		// benchmark's published largest ECV, but no more (extra T**
		// helper types would distort NT).
		ecv := cfg.Popular
		if ecv < 8 {
			ecv = 8
		}
		ppTypes := cfg.PPPlain/(ecv/2+1) + 1
		if ppTypes > cfg.Structs {
			ppTypes = cfg.Structs
		}
		if cfg.PPPlain > 0 && ppTypes > cfg.PPPlain {
			ppTypes = cfg.PPPlain
		}
		for t := 0; t < ppTypes; t++ {
			fmt.Fprintf(&b, "void pp_keep_%d(struct T%d **pp) { if (*pp != NULL) { *pp = NULL; } }\n", t, t)
		}
		b.WriteString("void pp_universal(void **pp) { if (*pp != NULL) { } }\n")
		perDriver := 8
		drivers := (cfg.PPPlain + cfg.PPSpecial + perDriver - 1) / perDriver
		emittedPlain, emittedSpecial := 0, 0
		for d := 0; d < drivers; d++ {
			fmt.Fprintf(&b, "long pp_drive_%d(void) {\n\tlong sum = 0;\n", d)
			for v := 0; v < perDriver; v++ {
				if emittedPlain < cfg.PPPlain {
					t := emittedPlain % ppTypes
					fmt.Fprintf(&b, "\tstruct T%d *ppv%d = NULL;\n", t, v)
					fmt.Fprintf(&b, "\tpp_keep_%d(&ppv%d);\n", t, v)
					emittedPlain++
				} else if emittedSpecial < cfg.PPSpecial {
					st := r.intn(cfg.Structs)
					fmt.Fprintf(&b, "\tstruct T%d *ppu%d = NULL;\n", st, v)
					fmt.Fprintf(&b, "\tpp_universal((void**) &ppu%d);\n", v)
					emittedSpecial++
				}
			}
			b.WriteString("\treturn sum;\n}\n")
		}
		b.WriteString("long pp_drive(void) {\n\tlong sum = 0;\n")
		for d := 0; d < drivers; d++ {
			fmt.Fprintf(&b, "\tsum += pp_drive_%d();\n", d)
		}
		b.WriteString("\treturn sum;\n}\n")
	}

	perFn := cfg.PtrVars / cfg.ColdFns
	if perFn < 1 {
		perFn = 1
	}
	declared := 0
	coldCount := 0
	for f := 0; f < cfg.ColdFns && declared < cfg.PtrVars; f++ {
		fmt.Fprintf(&b, "long cold_%d(void) {\n", f)
		b.WriteString("\tlong sum = 0;\n")
		// Each cold function concentrates on one or two struct types, as
		// real functions do; same-typed same-scope variables then share
		// an RSTI-type, keeping RT near the published NV/4 shape.
		fnTypes := [2]int{r.intn(cfg.Structs), r.intn(cfg.Structs)}
		for v := 0; v < perFn && declared < cfg.PtrVars; v++ {
			st := fnTypes[v%2]
			switch {
			case r.intn(100) < cfg.CastRate:
				// A cast-connected pair: void* alias of a struct
				// pointer. NULL initialization keeps the pair isolated,
				// so STC merging reflects the cast structure rather than
				// collapsing everything reachable from the roots.
				fmt.Fprintf(&b, "\tstruct T%d *p%d = NULL;\n", st, v)
				fmt.Fprintf(&b, "\tvoid *q%d = (void*) p%d;\n", v, v)
				fmt.Fprintf(&b, "\tif (q%d == NULL) sum += 1;\n", v)
				declared += 2
			case r.intn(3) == 0:
				fmt.Fprintf(&b, "\tchar *s%d = \"cold%d\";\n", v, r.intn(50))
				fmt.Fprintf(&b, "\tsum += (long) strlen(s%d);\n", v)
				declared++
			case r.intn(3) == 1:
				fmt.Fprintf(&b, "\tconst char *c%d = \"ro%d\";\n", v, r.intn(50))
				fmt.Fprintf(&b, "\tsum += (long) strlen(c%d);\n", v)
				declared++
			default:
				fmt.Fprintf(&b, "\tstruct T%d *p%d = NULL;\n", st, v)
				fmt.Fprintf(&b, "\tif (p%d == NULL) sum += %d;\n", v, v+1)
				declared++
			}
		}
		b.WriteString("\treturn sum;\n}\n")
		coldCount++
	}

	// --- Hot worker: the loop body whose instruction mix sets the
	// overhead. DerefOps pointer-chases, CallOps indirect calls, CastOps
	// universal-pointer round trips, ArithOps/FloatOps plain computation.
	b.WriteString("long work(struct T0 *start, long x) {\n")
	b.WriteString("\tstruct T0 *cur = start;\n")
	b.WriteString("\tlong s = x;\n")
	for d := 0; d < cfg.DerefOps; d++ {
		b.WriteString("\tif (cur->next != NULL) cur = cur->next;\n")
		b.WriteString("\ts += cur->val;\n")
	}
	for c := 0; c < cfg.CallOps; c++ {
		b.WriteString("\ts = cur->fn(s);\n")
	}
	for c := 0; c < cfg.CastOps; c++ {
		fmt.Fprintf(&b, "\tvoid *v%d = (void*) cur;\n", c)
		fmt.Fprintf(&b, "\tcur = (struct T0*) v%d;\n", c)
	}
	for a := 0; a < cfg.ArithOps; a++ {
		fmt.Fprintf(&b, "\ts = (s * 33) + %d;\n", a+1)
		b.WriteString("\ts = s ^ (s >> 7);\n")
	}
	if cfg.FloatOps > 0 {
		b.WriteString("\tdouble f = 1.5;\n")
		for a := 0; a < cfg.FloatOps; a++ {
			b.WriteString("\tf = f * 1.000001 + 0.25;\n")
		}
		b.WriteString("\tif (f > 2.0) s += 1;\n")
	}
	b.WriteString("\treturn s;\n}\n")

	// --- Post-hook authentication section: every load below runs after
	// the __hook(1) corruption site, so a tamper on any of these slots
	// faces the mechanism's authentication.
	if cfg.HookMain {
		b.WriteString("long post_check(void) {\n\tlong sum = 0;\n")
		for i := 0; i < cfg.Popular; i++ {
			fmt.Fprintf(&b, "\tif (pop%d != NULL) sum += 1;\n", i)
		}
		for i := 0; i < cfg.IsoPool; i++ {
			fmt.Fprintf(&b, "\tif (iso%d != NULL) sum += 1;\n", i)
		}
		for i := 0; i < cfg.Structs; i++ {
			fmt.Fprintf(&b, "\tif (root%d->val > 0) sum += 1;\n", i)
		}
		b.WriteString("\treturn sum;\n}\n")
	}

	// --- Main: setup, cold population, hot loop.
	b.WriteString("int main(void) {\n")
	b.WriteString("\tsetup();\n")
	b.WriteString("\tacc = 0;\n")
	if cfg.Popular > 0 {
		b.WriteString("\tacc += popular_reader();\n")
	}
	if cfg.SharedCasts > 0 {
		b.WriteString("\tacc += shared_caster();\n")
	}
	if cfg.PPPlain > 0 || cfg.PPSpecial > 0 {
		b.WriteString("\tacc += pp_drive();\n")
	}
	for f := 0; f < coldCount; f++ {
		fmt.Fprintf(&b, "\tacc += cold_%d();\n", f)
	}
	for i := 0; i < cfg.IsoPool; i++ {
		fmt.Fprintf(&b, "\tacc += iso_reader_%d();\n", i)
	}
	if cfg.HookMain {
		// fresh is the elidable-local shape: a never-address-taken local
		// pointer whose every load follows a store after the most recent
		// call. The re-store after __hook(1) means a corruption of its
		// slot is overwritten before it can be read back — the property
		// the elision optimizer's safety argument rests on, which the
		// attack synthesizer confirms by executing the corruption.
		b.WriteString("\tstruct T0 *fresh = root0;\n")
		b.WriteString("\tif (fresh != NULL) acc += 1;\n")
		b.WriteString("\t__hook(1);\n")
		b.WriteString("\tfresh = root0;\n")
		b.WriteString("\tif (fresh != NULL) acc += 1;\n")
		b.WriteString("\tacc += post_check();\n")
	}
	fmt.Fprintf(&b, "\tfor (int it = 0; it < %d; it++) {\n", cfg.Iters)
	b.WriteString("\t\tacc = work(root0, acc);\n")
	b.WriteString("\t}\n")
	b.WriteString("\treturn (int)(acc & 127);\n")
	b.WriteString("}\n")

	return &Benchmark{
		Suite:  cfg.Suite,
		Name:   cfg.Name,
		Source: b.String(),
	}
}

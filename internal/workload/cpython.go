package workload

// The CPython PyTorch suite: eight programs modelling what running the
// PyTorch benchmark scripts under CPython 3.9 exercises — an interpreter
// whose every object operation dispatches through type-object function
// pointer slots (pointer-heavy), wrapped around numeric tensor kernels
// (compute-heavy). The blend lands the suite between nbench and SPEC in
// pointer intensity, as in the paper (5.01% / 3.44% / 10.80%).

const pyObjectPrelude = `
	struct PyTypeObject;
	struct PyObject { struct PyTypeObject *ob_type; long ob_ival; double ob_fval; struct PyObject *next; };
	struct PyTypeObject {
		long (*tp_hash)(struct PyObject *o);
		struct PyObject* (*tp_add)(struct PyObject *a, struct PyObject *b);
		int tp_flags;
	};
	struct PyTypeObject *int_type;
	struct PyObject *freelist;

	long int_hash(struct PyObject *o) { return o->ob_ival * 31; }
	struct PyObject *alloc_obj(long v) {
		struct PyObject *o;
		if (freelist != NULL) {
			o = freelist;
			freelist = o->next;
		} else {
			o = (struct PyObject*) malloc(sizeof(struct PyObject));
		}
		o->ob_type = int_type;
		o->ob_ival = v;
		o->ob_fval = (double) v;
		o->next = NULL;
		return o;
	}
	void release_obj(struct PyObject *o) {
		o->next = freelist;
		freelist = o;
	}
	struct PyObject *int_add(struct PyObject *a, struct PyObject *b) {
		return alloc_obj(a->ob_ival + b->ob_ival);
	}
	void py_init(void) {
		int_type = (struct PyTypeObject*) malloc(sizeof(struct PyTypeObject));
		int_type->tp_hash = int_hash;
		int_type->tp_add = int_add;
		int_type->tp_flags = 1;
		freelist = NULL;
	}
`

var cpythonPrograms = []struct {
	name string
	src  string
}{
	{"tensor-add", pyObjectPrelude + `
		double ta[256];
		double tb[256];
		double tc[256];
		int main(void) {
			py_init();
			for (int i = 0; i < 256; i++) { ta[i] = (double) i; tb[i] = (double)(256 - i); }
			long acc = 0;
			for (int step = 0; step < 400; step++) {
				struct PyObject *sa = alloc_obj((long) step);
				struct PyObject *sb = alloc_obj(2);
				struct PyObject *r = sa->ob_type->tp_add(sa, sb);
				for (int i = 0; i < 256; i++) tc[i] = ta[i] + tb[i];
				acc += r->ob_ival;
				release_obj(sa); release_obj(sb); release_obj(r);
			}
			if (tc[0] > 0.0) acc += 1;
			return (int)(acc & 127);
		}
	`},
	{"matmul-small", pyObjectPrelude + `
		double A[12][12];
		double B[12][12];
		double C[12][12];
		int main(void) {
			py_init();
			for (int i = 0; i < 12; i++) {
				for (int j = 0; j < 12; j++) { A[i][j] = (double)(i + j); B[i][j] = (double)(i - j); }
			}
			long acc = 0;
			for (int step = 0; step < 120; step++) {
				struct PyObject *op = alloc_obj((long) step);
				acc += op->ob_type->tp_hash(op);
				for (int i = 0; i < 12; i++) {
					for (int j = 0; j < 12; j++) {
						double s = 0.0;
						for (int k = 0; k < 12; k++) s += A[i][k] * B[k][j];
						C[i][j] = s;
					}
				}
				release_obj(op);
			}
			if (C[1][1] < 10000.0) acc += 1;
			return (int)(acc & 127);
		}
	`},
	{"relu", pyObjectPrelude + `
		double t[512];
		int main(void) {
			py_init();
			long acc = 0;
			for (int step = 0; step < 500; step++) {
				struct PyObject *o = alloc_obj((long) step);
				for (int i = 0; i < 512; i++) {
					double v = (double)((i * 7 + step) % 31) - 15.0;
					if (v < 0.0) v = 0.0;
					t[i] = v;
				}
				acc += o->ob_type->tp_hash(o);
				release_obj(o);
			}
			if (t[0] >= 0.0) acc += 1;
			return (int)(acc & 127);
		}
	`},
	{"softmax", pyObjectPrelude + `
		double logits[128];
		double probs[128];
		double texp(double x) { return 1.0 + x + x * x / 2.0 + x * x * x / 6.0; }
		int main(void) {
			py_init();
			long acc = 0;
			for (int step = 0; step < 350; step++) {
				struct PyObject *o = alloc_obj((long) step);
				double sum = 0.0;
				for (int i = 0; i < 128; i++) {
					logits[i] = ((double)((i + step) % 9)) / 9.0;
					probs[i] = texp(logits[i]);
					sum += probs[i];
				}
				for (int i = 0; i < 128; i++) probs[i] = probs[i] / sum;
				acc += o->ob_type->tp_hash(o);
				release_obj(o);
			}
			return (int)(acc & 127);
		}
	`},
	{"object-dispatch", pyObjectPrelude + `
		int main(void) {
			py_init();
			long acc = 0;
			struct PyObject *x = alloc_obj(1);
			for (int step = 0; step < 700; step++) {
				struct PyObject *y = alloc_obj((long)(step & 7));
				struct PyObject *z = x->ob_type->tp_add(x, y);
				acc += z->ob_type->tp_hash(z);
				long w = acc;
				for (int k = 0; k < 24; k++) { w = w * 33 + k; w = w ^ (w >> 11); }
				acc ^= w & 1;
				release_obj(y);
				release_obj(x);
				x = z;
				if (x->ob_ival > 100000) { x->ob_ival = 1; }
			}
			return (int)(acc & 127);
		}
	`},
	{"attr-lookup", pyObjectPrelude + `
		struct dict_entry { char *key; struct PyObject *value; };
		struct dict_entry table[16];
		struct PyObject *lookup(char *key) {
			for (int i = 0; i < 16; i++) {
				if (table[i].key != NULL) {
					if (strcmp(table[i].key, key) == 0) return table[i].value;
				}
			}
			return NULL;
		}
		int main(void) {
			py_init();
			table[0].key = "forward"; table[0].value = alloc_obj(10);
			table[1].key = "backward"; table[1].value = alloc_obj(20);
			table[2].key = "weight"; table[2].value = alloc_obj(30);
			table[3].key = "bias"; table[3].value = alloc_obj(40);
			long acc = 0;
			for (int step = 0; step < 400; step++) {
				struct PyObject *f = lookup("forward");
				struct PyObject *w = lookup("weight");
				if (f != NULL) { if (w != NULL) acc += f->ob_ival + w->ob_ival; }
			}
			return (int)(acc & 127);
		}
	`},
	{"list-ops", pyObjectPrelude + `
		int main(void) {
			py_init();
			struct PyObject *head = NULL;
			long acc = 0;
			for (int step = 0; step < 250; step++) {
				struct PyObject *o = alloc_obj((long) step);
				o->next = head;
				head = o;
				if ((step & 7) == 7) {
					long sum = 0;
					struct PyObject *c = head;
					while (c != NULL) { sum += c->ob_ival; c = c->next; }
					acc ^= sum;
					while (head != NULL) {
						struct PyObject *n = head->next;
						release_obj(head);
						head = n;
					}
				}
			}
			return (int)(acc & 127);
		}
	`},
	{"autograd-graph", pyObjectPrelude + `
		struct GradNode { double grad; struct GradNode *inputs[2]; void (*backward)(struct GradNode *n); };
		void add_backward(struct GradNode *n) {
			if (n->inputs[0] != NULL) n->inputs[0]->grad += n->grad;
			if (n->inputs[1] != NULL) n->inputs[1]->grad += n->grad;
		}
		struct GradNode *mknode(struct GradNode *a, struct GradNode *b) {
			struct GradNode *n = (struct GradNode*) malloc(sizeof(struct GradNode));
			n->grad = 0.0;
			n->inputs[0] = a;
			n->inputs[1] = b;
			n->backward = add_backward;
			return n;
		}
		int main(void) {
			py_init();
			long acc = 0;
			for (int step = 0; step < 90; step++) {
				struct GradNode *leaf1 = mknode(NULL, NULL);
				struct GradNode *leaf2 = mknode(NULL, NULL);
				struct GradNode *cur = mknode(leaf1, leaf2);
				for (int d = 0; d < 6; d++) cur = mknode(cur, leaf1);
				cur->grad = 1.0;
				struct GradNode *walk = cur;
				while (walk != NULL) {
					walk->backward(walk);
					walk = walk->inputs[0];
				}
				if (leaf1->grad > 0.0) acc += 1;
			}
			return (int)(acc & 127);
		}
	`},
}

// CPython returns the CPython-PyTorch suite.
func CPython() []*Benchmark {
	var out []*Benchmark
	for _, p := range cpythonPrograms {
		out = append(out, &Benchmark{Suite: "CPython", Name: p.name, Source: p.src})
	}
	return out
}

package workload

// The nbench suite: hand-written mini-C ports of the ten BYTEmark kernels'
// inner shapes. nbench is the least pointer-intensive suite in the paper
// (RSTI overheads 1.54% / 0.52% / 2.78%); most kernels here are pure
// computation, with Huffman's tree construction as the pointer-heavy
// outlier — matching the original workload's character.

var nbenchPrograms = []struct {
	name string
	src  string
}{
	{"numeric-sort", `
		int a[256];
		void fill(void) {
			long seed = 11;
			for (int i = 0; i < 256; i++) {
				seed = seed * 6364136223846793005 + 1442695040888963407;
				a[i] = (int)((seed >> 33) & 1023);
			}
		}
		void shellsort(void) {
			for (int gap = 128; gap > 0; gap = gap / 2) {
				for (int i = gap; i < 256; i++) {
					int t = a[i];
					int j = i;
					while (j >= gap) {
						if (a[j - gap] > t) { a[j] = a[j - gap]; j -= gap; }
						else break;
					}
					a[j] = t;
				}
			}
		}
		int main(void) {
			int checksum = 0;
			for (int rep = 0; rep < 30; rep++) {
				fill();
				shellsort();
				checksum ^= a[0] + a[255];
			}
			return checksum & 127;
		}
	`},
	{"string-sort", `
		char *names[16];
		void setup(void) {
			names[0] = "pear"; names[1] = "apple"; names[2] = "quince"; names[3] = "fig";
			names[4] = "olive"; names[5] = "date"; names[6] = "mango"; names[7] = "kiwi";
			names[8] = "plum"; names[9] = "grape"; names[10] = "lime"; names[11] = "melon";
			names[12] = "peach"; names[13] = "cherry"; names[14] = "banana"; names[15] = "lemon";
		}
		void sortnames(void) {
			for (int i = 0; i < 16; i++) {
				for (int j = i + 1; j < 16; j++) {
					if (strcmp(names[i], names[j]) > 0) {
						char *t = names[i];
						names[i] = names[j];
						names[j] = t;
					}
				}
			}
		}
		int main(void) {
			int acc = 0;
			for (int rep = 0; rep < 60; rep++) {
				setup();
				sortnames();
				acc += (int) strlen(names[0]);
			}
			return acc & 127;
		}
	`},
	{"bitfield", `
		long field[64];
		void setbits(int start, int len) {
			for (int i = start; i < start + len; i++) {
				field[(i / 64) % 64] |= (long)1 << (i % 63);
			}
		}
		void clearbits(int start, int len) {
			for (int i = start; i < start + len; i++) {
				field[(i / 64) % 64] &= ~((long)1 << (i % 63));
			}
		}
		int popcount(void) {
			int n = 0;
			for (int w = 0; w < 64; w++) {
				long x = field[w];
				while (x != 0) { n += (int)(x & 1); x = x >> 1; }
			}
			return n;
		}
		int main(void) {
			for (int rep = 0; rep < 40; rep++) {
				setbits(rep * 7, 60);
				clearbits(rep * 3, 30);
			}
			return popcount() & 127;
		}
	`},
	{"fp-emulation", `
		long fadd(long a, long b) { return a + b; }
		long fmul(long a, long b) { return (a >> 8) * (b >> 8); }
		long fdiv(long a, long b) { if (b == 0) return 0; return (a << 8) / (b >> 8); }
		int main(void) {
			long acc = 1 << 16;
			for (int i = 1; i < 4000; i++) {
				acc = fadd(acc, i << 8);
				acc = fmul(acc, (3 << 8) + 1);
				acc = fdiv(acc, (2 << 8) + 1);
			}
			return (int)(acc & 127);
		}
	`},
	{"fourier", `
		double tsin(double x) {
			double x2 = x * x;
			return x * (1.0 - x2 / 6.0 + (x2 * x2) / 120.0);
		}
		double tcos(double x) {
			double x2 = x * x;
			return 1.0 - x2 / 2.0 + (x2 * x2) / 24.0;
		}
		int main(void) {
			double acc = 0.0;
			for (int k = 1; k < 800; k++) {
				double x = ((double) k) / 800.0;
				acc += tsin(x) * tcos(x / 2.0);
			}
			if (acc > 100.0) return 1;
			return (int)(acc);
		}
	`},
	{"assignment", `
		int cost[8][8];
		int taken[8];
		void fill(void) {
			long seed = 7;
			for (int i = 0; i < 8; i++) {
				for (int j = 0; j < 8; j++) {
					seed = seed * 25214903917 + 11;
					cost[i][j] = (int)((seed >> 16) & 255);
				}
			}
		}
		int assign(void) {
			int total = 0;
			for (int i = 0; i < 8; i++) taken[i] = 0;
			for (int i = 0; i < 8; i++) {
				int best = -1;
				int bestc = 1000000;
				for (int j = 0; j < 8; j++) {
					if (!taken[j]) { if (cost[i][j] < bestc) { bestc = cost[i][j]; best = j; } }
				}
				taken[best] = 1;
				total += bestc;
			}
			return total;
		}
		int main(void) {
			int acc = 0;
			for (int rep = 0; rep < 120; rep++) {
				fill();
				acc ^= assign();
			}
			return acc & 127;
		}
	`},
	{"idea-cipher", `
		int mulmod(int a, int b) { return (a * b) % 65537; }
		int main(void) {
			int x0 = 101; int x1 = 202; int x2 = 303; int x3 = 404;
			for (int round = 0; round < 3000; round++) {
				int k = (round * 2654435761) & 65535;
				x0 = mulmod(x0 + 1, k + 1);
				x1 = (x1 + k) & 65535;
				x2 = x2 ^ x0;
				x3 = mulmod(x3 + 1, (k ^ x2) + 1);
				int t = x1; x1 = x2; x2 = t;
			}
			return (x0 ^ x1 ^ x2 ^ x3) & 127;
		}
	`},
	{"huffman", `
		struct hnode { int weight; int symbol; struct hnode *left; struct hnode *right; };
		struct hnode *heap[32];
		int heapn;
		void push(struct hnode *n) {
			heap[heapn] = n;
			heapn++;
			int i = heapn - 1;
			while (i > 0) {
				int p = (i - 1) / 2;
				if (heap[p]->weight > heap[i]->weight) {
					struct hnode *t = heap[p]; heap[p] = heap[i]; heap[i] = t;
					i = p;
				} else break;
			}
		}
		struct hnode *pop(void) {
			struct hnode *top = heap[0];
			heapn--;
			heap[0] = heap[heapn];
			int i = 0;
			while (1) {
				int l = 2 * i + 1;
				int r = 2 * i + 2;
				int s = i;
				if (l < heapn) { if (heap[l]->weight < heap[s]->weight) s = l; }
				if (r < heapn) { if (heap[r]->weight < heap[s]->weight) s = r; }
				if (s == i) break;
				struct hnode *t = heap[s]; heap[s] = heap[i]; heap[i] = t;
				i = s;
			}
			return top;
		}
		int depthsum(struct hnode *n, int d) {
			if (n->left == NULL) return d * n->weight;
			return depthsum(n->left, d + 1) + depthsum(n->right, d + 1);
		}
		int main(void) {
			int acc = 0;
			for (int rep = 0; rep < 25; rep++) {
				heapn = 0;
				for (int s = 0; s < 12; s++) {
					struct hnode *n = (struct hnode*) malloc(sizeof(struct hnode));
					n->weight = ((s * 37 + rep * 11) % 40) + 1;
					n->symbol = s;
					n->left = NULL;
					n->right = NULL;
					push(n);
				}
				while (heapn > 1) {
					struct hnode *a = pop();
					struct hnode *b = pop();
					struct hnode *m = (struct hnode*) malloc(sizeof(struct hnode));
					m->weight = a->weight + b->weight;
					m->symbol = -1;
					m->left = a;
					m->right = b;
					push(m);
				}
				acc += depthsum(pop(), 0);
			}
			return acc & 127;
		}
	`},
	{"neural-net", `
		double w1[8][8];
		double w2[8][8];
		double layer[8];
		double hidden[8];
		double sigmoid(double x) {
			double e = 1.0 + x + x * x / 2.0 + x * x * x / 6.0;
			return e / (1.0 + e);
		}
		int main(void) {
			for (int i = 0; i < 8; i++) {
				layer[i] = ((double)(i + 1)) / 8.0;
				for (int j = 0; j < 8; j++) {
					w1[i][j] = ((double)((i * 8 + j) % 5)) / 5.0;
					w2[i][j] = ((double)((i * 3 + j) % 7)) / 7.0;
				}
			}
			double out = 0.0;
			for (int epoch = 0; epoch < 150; epoch++) {
				for (int h = 0; h < 8; h++) {
					double s = 0.0;
					for (int i = 0; i < 8; i++) s += layer[i] * w1[i][h];
					hidden[h] = sigmoid(s);
				}
				out = 0.0;
				for (int h = 0; h < 8; h++) {
					double s = 0.0;
					for (int i = 0; i < 8; i++) s += hidden[i] * w2[i][h];
					out += sigmoid(s);
				}
				for (int i = 0; i < 8; i++) layer[i] = layer[i] * 0.9 + hidden[i] * 0.1;
			}
			if (out > 2.0) return 42;
			return 7;
		}
	`},
	{"lu-decomposition", `
		double m[8][8];
		int main(void) {
			int checksum = 0;
			for (int rep = 0; rep < 80; rep++) {
				for (int i = 0; i < 8; i++) {
					for (int j = 0; j < 8; j++) {
						m[i][j] = (double)(((i * 13 + j * 7 + rep) % 17) + 1);
					}
				}
				for (int k = 0; k < 8; k++) {
					for (int i = k + 1; i < 8; i++) {
						double f = m[i][k] / m[k][k];
						for (int j = k; j < 8; j++) m[i][j] -= f * m[k][j];
					}
				}
				double trace = 0.0;
				for (int i = 0; i < 8; i++) trace += m[i][i];
				if (trace > 0.0) checksum += 1;
			}
			return checksum & 127;
		}
	`},
}

// NBench returns the ten-kernel nbench suite.
func NBench() []*Benchmark {
	var out []*Benchmark
	for _, p := range nbenchPrograms {
		out = append(out, &Benchmark{Suite: "nbench", Name: p.name, Source: p.src})
	}
	return out
}

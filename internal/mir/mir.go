// Package mir defines the mid-level IR the RSTI pipeline operates on. It
// plays the role LLVM IR plays in the paper: a register machine with
// explicit allocas, loads, stores, GEPs, bitcasts and calls, where every
// memory access carries the debug metadata (variable identity, composite
// type, field) that the STI analysis consumes — the analogue of the
// llvm.dbg.declare / DILocalVariable / DIDerivedType / DICompositeType
// chain shown in the paper's Figure 4.
//
// The instrumentation pass (package rsti) inserts PacSign/PacAuth/PacStrip
// and the pointer-to-pointer runtime calls (PPAdd/PPSign/PPAuth/PPAddTBI)
// into this IR; the VM (package vm) executes it.
package mir

import (
	"fmt"
	"strings"

	"rsti/internal/cminor"
	"rsti/internal/ctypes"
)

// Reg is a virtual register index within a function. NoReg means unused.
type Reg = int

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op enumerates instruction opcodes.
type Op uint8

const (
	Nop Op = iota

	Const      // Dst = Imm
	ConstF     // Dst = float64 bits in Imm
	StrConst   // Dst = address of string literal Imm
	Alloca     // Dst = address of a fresh stack slot for Ty (Var set)
	GlobalAddr // Dst = address of global #Imm
	FuncAddr   // Dst = entry token of function Callee

	Load  // Dst = *(A) as Ty; Slot describes the accessed location
	Store // *(A) = B as Ty; Slot describes the accessed location

	FieldAddr // Dst = A + Imm (field byte offset); Slot has struct/field
	IndexAddr // Dst = A + B*Imm (element byte size)

	BinInstr // Dst = A <BinSub> B
	CmpInstr // Dst = A <CmpSub> B (0/1)
	CastOp   // Dst = conv(A) from FromTy to Ty

	CallOp // Dst = Callee(Args...) or (*A)(Args...) when Callee == ""
	RetOp  // return A (NoReg for void)
	Jmp    // goto Targets[0]
	Br     // if A != 0 goto Targets[0] else Targets[1]

	// RSTI instrumentation (inserted by package rsti, executed by the VM's
	// pa.Unit):
	PacSign  // Dst = pac(A, Key, Mod [^ *LocReg when B != NoReg: B holds &p])
	PacAuth  // Dst = aut(A, Key, Mod [^ B]); VM traps on failure
	PacStrip // Dst = xpac(A)

	// Pointer-to-pointer runtime library (paper §4.7.7):
	PPAdd    // register CE -> FE modifier mapping (Imm = CE)
	PPSign   // Dst = pp_sign(A): sign inner pointer with FE modifier of CE Imm
	PPAuth   // Dst = pp_auth(A): authenticate via the CE tag on A's top byte
	PPAddTBI // Dst = A with CE tag Imm placed in the TBI byte

	// NumOps is the number of opcodes; interpreters size per-op dispatch
	// tables with it.
	NumOps
)

var opNames = map[Op]string{
	Nop: "nop", Const: "const", ConstF: "constf", StrConst: "str",
	Alloca: "alloca", GlobalAddr: "gaddr", FuncAddr: "faddr",
	Load: "load", Store: "store", FieldAddr: "fieldaddr", IndexAddr: "indexaddr",
	BinInstr: "bin", CmpInstr: "cmp", CastOp: "cast", CallOp: "call",
	RetOp: "ret", Jmp: "jmp", Br: "br",
	PacSign: "pac", PacAuth: "aut", PacStrip: "xpac",
	PPAdd: "pp_add", PPSign: "pp_sign", PPAuth: "pp_auth", PPAddTBI: "pp_add_tbi",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// BinSub is the arithmetic subcode of BinInstr.
type BinSub uint8

const (
	Add BinSub = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	FAdd
	FSub
	FMul
	FDiv
)

var binNames = [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr", "fadd", "fsub", "fmul", "fdiv"}

func (b BinSub) String() string { return binNames[b] }

// CmpSub is the comparison subcode of CmpInstr.
type CmpSub uint8

const (
	Eq CmpSub = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

func (c CmpSub) String() string { return cmpNames[c] }

// SlotKind classifies the storage a Load/Store accesses, which determines
// whose RSTI-type protects the access.
type SlotKind uint8

const (
	SlotNone  SlotKind = iota // not a named location (e.g. raw pointer deref)
	SlotVar                   // a named variable's slot (Var valid)
	SlotField                 // a composite member (Struct/Field valid)
	SlotElem                  // an indexed element of an array/buffer
)

// Slot is the debug-metadata reference carried by memory instructions.
type Slot struct {
	Kind   SlotKind
	Var    int          // VarInfo index for SlotVar
	Struct *ctypes.Type // composite type for SlotField
	Field  int          // field index within Struct
}

// Instr is one IR instruction. A single fat struct keeps the interpreter
// simple and allocation-free.
type Instr struct {
	Op      Op
	Dst     Reg
	A, B    Reg
	Imm     int64
	Ty      *ctypes.Type
	FromTy  *ctypes.Type // CastOp source type
	BinSub  BinSub
	CmpSub  CmpSub
	Slot    Slot
	Callee  string
	Args    []Reg
	Targets [2]int
	// Instrumentation fields:
	Mod uint64 // static PAC modifier
	Key uint8  // pa.KeyID
	CE  uint16 // pointer-to-pointer compact equivalent tag
	Pos cminor.Pos
}

// Block is a basic block: straight-line instructions ended by a
// terminator (RetOp, Jmp or Br).
type Block struct {
	Index  int
	Name   string
	Instrs []Instr
}

// Terminated reports whether the block already ends in a terminator.
func (b *Block) Terminated() bool {
	if len(b.Instrs) == 0 {
		return false
	}
	switch b.Instrs[len(b.Instrs)-1].Op {
	case RetOp, Jmp, Br:
		return true
	}
	return false
}

// VarInfo is the per-variable debug metadata: the DILocalVariable /
// DIGlobalVariable analogue. STI reads type, const-ness and the declaring
// function from here; scope sets are computed from use sites.
type VarInfo struct {
	Name   string
	Type   *ctypes.Type
	Global bool
	Param  bool
	DeclFn string // "" for globals
}

// Global is a module-level variable; its initializer runs in the synthetic
// "__init" function before main.
type Global struct {
	Name string
	Type *ctypes.Type
	Var  int // VarInfo index
}

// Func is a function body (or an extern stub when Extern is true).
type Func struct {
	Name     string
	Ret      *ctypes.Type
	Params   []*ctypes.Type
	ParamVar []int // VarInfo per parameter
	Variadic bool
	Extern   bool
	Blocks   []*Block
	NumRegs  int
}

// NewBlock appends a fresh block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Index: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Program is a lowered translation unit.
type Program struct {
	Funcs   []*Func
	ByName  map[string]*Func
	Globals []*Global
	Vars    []*VarInfo
	Strings []string
	Types   *ctypes.Table
}

// InitFuncName is the synthetic function that runs global initializers.
const InitFuncName = "__init"

// AddString interns a string literal and returns its pool index.
func (p *Program) AddString(s string) int {
	for i, t := range p.Strings {
		if t == s {
			return i
		}
	}
	p.Strings = append(p.Strings, s)
	return len(p.Strings) - 1
}

// Func returns the function with the given name.
func (p *Program) Func(name string) (*Func, bool) {
	f, ok := p.ByName[name]
	return f, ok
}

// ---------- Printing ----------

// String renders the program in a readable assembly-like syntax, used by
// golden tests and the rstic -dump flag.
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s : %s\n", g.Name, g.Type)
	}
	for _, f := range p.Funcs {
		if f.Extern {
			fmt.Fprintf(&b, "extern func %s\n", f.Name)
			continue
		}
		b.WriteString(f.String(p))
	}
	return b.String()
}

// String renders one function.
func (f *Func) String(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, t := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "r%d: %s", i, t)
	}
	fmt.Fprintf(&b, ") -> %s {\n", f.Ret)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:  ; #%d\n", blk.Name, blk.Index)
		for _, in := range blk.Instrs {
			b.WriteString("  ")
			b.WriteString(in.format(p))
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func (in *Instr) format(p *Program) string {
	r := func(x Reg) string {
		if x == NoReg {
			return "_"
		}
		return fmt.Sprintf("r%d", x)
	}
	slot := ""
	switch in.Slot.Kind {
	case SlotVar:
		if p != nil && in.Slot.Var < len(p.Vars) {
			slot = fmt.Sprintf(" !var(%s)", p.Vars[in.Slot.Var].Name)
		} else {
			slot = fmt.Sprintf(" !var(#%d)", in.Slot.Var)
		}
	case SlotField:
		slot = fmt.Sprintf(" !field(%s.%d)", in.Slot.Struct.Name, in.Slot.Field)
	case SlotElem:
		slot = " !elem"
	}
	switch in.Op {
	case Const:
		return fmt.Sprintf("%s = const %d : %s", r(in.Dst), in.Imm, in.Ty)
	case ConstF:
		return fmt.Sprintf("%s = constf %#x : %s", r(in.Dst), uint64(in.Imm), in.Ty)
	case StrConst:
		s := ""
		if p != nil && int(in.Imm) < len(p.Strings) {
			s = fmt.Sprintf(" %q", p.Strings[in.Imm])
		}
		return fmt.Sprintf("%s = str #%d%s", r(in.Dst), in.Imm, s)
	case Alloca:
		return fmt.Sprintf("%s = alloca %s%s", r(in.Dst), in.Ty, slot)
	case GlobalAddr:
		return fmt.Sprintf("%s = gaddr #%d%s", r(in.Dst), in.Imm, slot)
	case FuncAddr:
		return fmt.Sprintf("%s = faddr %s", r(in.Dst), in.Callee)
	case Load:
		return fmt.Sprintf("%s = load %s [%s]%s", r(in.Dst), in.Ty, r(in.A), slot)
	case Store:
		return fmt.Sprintf("store %s [%s] = %s%s", in.Ty, r(in.A), r(in.B), slot)
	case FieldAddr:
		return fmt.Sprintf("%s = fieldaddr %s + %d%s", r(in.Dst), r(in.A), in.Imm, slot)
	case IndexAddr:
		return fmt.Sprintf("%s = indexaddr %s + %s*%d", r(in.Dst), r(in.A), r(in.B), in.Imm)
	case BinInstr:
		return fmt.Sprintf("%s = %s %s, %s", r(in.Dst), in.BinSub, r(in.A), r(in.B))
	case CmpInstr:
		return fmt.Sprintf("%s = cmp.%s %s, %s", r(in.Dst), in.CmpSub, r(in.A), r(in.B))
	case CastOp:
		return fmt.Sprintf("%s = cast %s : %s -> %s", r(in.Dst), r(in.A), in.FromTy, in.Ty)
	case CallOp:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = r(a)
		}
		callee := in.Callee
		if callee == "" {
			callee = "(*" + r(in.A) + ")"
		}
		return fmt.Sprintf("%s = call %s(%s)", r(in.Dst), callee, strings.Join(args, ", "))
	case RetOp:
		return fmt.Sprintf("ret %s", r(in.A))
	case Jmp:
		return fmt.Sprintf("jmp #%d", in.Targets[0])
	case Br:
		return fmt.Sprintf("br %s #%d #%d", r(in.A), in.Targets[0], in.Targets[1])
	case PacSign:
		return fmt.Sprintf("%s = pac %s key=%d mod=%#x loc=%s", r(in.Dst), r(in.A), in.Key, in.Mod, r(in.B))
	case PacAuth:
		return fmt.Sprintf("%s = aut %s key=%d mod=%#x loc=%s", r(in.Dst), r(in.A), in.Key, in.Mod, r(in.B))
	case PacStrip:
		return fmt.Sprintf("%s = xpac %s", r(in.Dst), r(in.A))
	case PPAdd:
		return fmt.Sprintf("pp_add ce=%d mod=%#x", in.CE, in.Mod)
	case PPSign:
		return fmt.Sprintf("%s = pp_sign %s ce=%d", r(in.Dst), r(in.A), in.CE)
	case PPAuth:
		return fmt.Sprintf("%s = pp_auth %s", r(in.Dst), r(in.A))
	case PPAddTBI:
		return fmt.Sprintf("%s = pp_add_tbi %s ce=%d", r(in.Dst), r(in.A), in.CE)
	case Nop:
		return "nop"
	}
	return in.Op.String()
}

// Verify checks structural invariants: every block terminated, branch
// targets in range, register indices within NumRegs. It returns the first
// violation.
func (p *Program) Verify() error {
	for _, f := range p.Funcs {
		if f.Extern {
			continue
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("mir: func %s has no blocks", f.Name)
		}
		for _, blk := range f.Blocks {
			if !blk.Terminated() {
				return fmt.Errorf("mir: %s block %s not terminated", f.Name, blk.Name)
			}
			for i, in := range blk.Instrs {
				for _, r := range []Reg{in.Dst, in.A, in.B} {
					if r != NoReg && (r < 0 || r >= f.NumRegs) {
						return fmt.Errorf("mir: %s %s#%d register r%d out of range", f.Name, blk.Name, i, r)
					}
				}
				for _, r := range in.Args {
					if r < 0 || r >= f.NumRegs {
						return fmt.Errorf("mir: %s %s#%d arg register r%d out of range", f.Name, blk.Name, i, r)
					}
				}
				switch in.Op {
				case Jmp:
					if in.Targets[0] < 0 || in.Targets[0] >= len(f.Blocks) {
						return fmt.Errorf("mir: %s jmp target out of range", f.Name)
					}
				case Br:
					for _, t := range in.Targets {
						if t < 0 || t >= len(f.Blocks) {
							return fmt.Errorf("mir: %s br target out of range", f.Name)
						}
					}
				case CallOp:
					if in.Callee != "" {
						if _, ok := p.ByName[in.Callee]; !ok {
							return fmt.Errorf("mir: %s calls unknown function %q", f.Name, in.Callee)
						}
					}
				}
				if term := i < len(blk.Instrs)-1; term {
					switch in.Op {
					case RetOp, Jmp, Br:
						return fmt.Errorf("mir: %s block %s has a terminator mid-block", f.Name, blk.Name)
					}
				}
			}
		}
	}
	return nil
}

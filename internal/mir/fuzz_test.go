package mir_test

// The codec fuzz target lives in an external test package so the seed
// corpus can be built through the real pipeline (cminor → lower), which
// package mir itself cannot import.

import (
	"bytes"
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
)

// codecSeedSrcs cover the artifact format's interesting shapes: interned
// pointer chains, self-referential structs (the encoder's cycle
// handling), cast bridges (shared types under distinct names), string
// literals, and function pointers.
var codecSeedSrcs = []string{
	`int main(void) { return 42; }`,
	`
struct node { int v; struct node *next; };
struct node n0;
struct node *head;
int main(void) {
	head = &n0;
	head->v = 7;
	return head->v;
}`,
	`
struct A { int x; };
struct B { long y; };
char *s;
int helper(int v) { return v + 1; }
int (*fp)(int);
int main(void) {
	struct A a;
	void *bridge;
	s = "hello";
	bridge = (void*) &a;
	fp = helper;
	if (bridge != NULL && s != NULL) return fp(40);
	return 0;
}`,
}

// artifactOf runs src through the pipeline and encodes the lowered
// program.
func artifactOf(tb testing.TB, src string) []byte {
	tb.Helper()
	f, err := cminor.Frontend(src)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := lower.Lower(f)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mir.EncodeProgram(&buf, p); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzMIRCodec fuzzes the gob artifact codec behind the disk compile
// cache. For any input bytes, DecodeProgram must either reject them with
// an error (never panic — corrupted and truncated artifacts are routine
// cache states) or produce a program whose re-encoding is a fixpoint:
// encode(decode(art)) must decode again to a bit-identical artifact,
// with the interned type table restored in its original ID order — PAC
// modifiers embed interned type IDs, so a permuted table would silently
// change every signed pointer's modifier. Under plain `go test` it
// replays the seed corpus; CI runs a `-fuzz` smoke leg.
func FuzzMIRCodec(f *testing.F) {
	for _, src := range codecSeedSrcs {
		art := artifactOf(f, src)
		f.Add(art)
		// Deterministic damage seeds: truncation at both ends and a flipped
		// byte inside the gob stream.
		f.Add(art[:len(art)/2])
		f.Add(art[:1])
		flipped := append([]byte(nil), art...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := mir.DecodeProgram(bytes.NewReader(data))
		if err != nil {
			return // rejection (without panic) is the correct damage path
		}
		var art1 bytes.Buffer
		if err := mir.EncodeProgram(&art1, p1); err != nil {
			t.Fatalf("re-encoding a decoded program failed: %v", err)
		}
		p2, err := mir.DecodeProgram(bytes.NewReader(art1.Bytes()))
		if err != nil {
			t.Fatalf("decoding a re-encoded program failed: %v", err)
		}
		var art2 bytes.Buffer
		if err := mir.EncodeProgram(&art2, p2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(art1.Bytes(), art2.Bytes()) {
			t.Fatal("codec round trip is not a fixpoint: re-encoded artifacts differ")
		}

		// Type-table ID order: the restored interned table must list the
		// same types at the same IDs after a round trip (DecodeProgram
		// always restores a table, so both sides are non-nil).
		t1, t2 := p1.Types.All(), p2.Types.All()
		if len(t1) != len(t2) {
			t.Fatalf("interned table length changed: %d -> %d", len(t1), len(t2))
		}
		for i := range t1 {
			if t1[i].Key() != t2[i].Key() {
				t.Fatalf("interned table entry %d changed: %q -> %q", i, t1[i].Key(), t2[i].Key())
			}
		}
	})
}

// TestCodecRejectsDamage pins the rejection paths the fuzz seeds encode:
// truncated prefixes, bit flips, version skew and ragged internal tables
// must all surface as decode errors, never as a silently wrong program.
func TestCodecRejectsDamage(t *testing.T) {
	art := artifactOf(t, codecSeedSrcs[1])
	if _, err := mir.DecodeProgram(bytes.NewReader(art)); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}
	for _, cut := range []int{0, 1, len(art) / 2, len(art) - 1} {
		if _, err := mir.DecodeProgram(bytes.NewReader(art[:cut])); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", cut)
		}
	}
	// Flipping any byte must never yield a verified program that encodes
	// differently from some valid artifact while claiming success with
	// corrupted instruction indices; decode may succeed only if the flip
	// landed somewhere semantically inert, so just require: no panic, and
	// on success the program still verifies (DecodeProgram guarantees it).
	for off := 0; off < len(art); off += 17 {
		damaged := append([]byte(nil), art...)
		damaged[off] ^= 0x01
		p, err := mir.DecodeProgram(bytes.NewReader(damaged))
		if err == nil && p == nil {
			t.Fatalf("flip at %d: nil program without error", off)
		}
	}
}

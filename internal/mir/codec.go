// Binary serialization of a lowered Program — the on-disk artifact
// format behind the compile cache's persistent second level. The format
// flattens the pointer-shaped IR into index-linked tables: every
// *ctypes.Type reachable from the program becomes one entry in a type
// table (cycles through self-referential structs terminate because an
// index is assigned before the entry's children are encoded), and
// instructions refer to types, functions and blocks by index.
//
// Fidelity requirements, in decreasing order of subtlety:
//
//   - The ctypes.Table must restore with its original ID order: PAC
//     modifiers embed interned type IDs, so a permuted table would change
//     every signed pointer's modifier and break bit-identical replay.
//   - Struct nominal identity must survive: two mentions of "struct s"
//     decode to one *Type, via the restored struct registry.
//   - Field offsets are stored, not recomputed, so layout is exactly what
//     the encoder saw.
//
// The container is gob over flat DTO structs — no interfaces, no
// pointers, so decoding cannot be driven into unexpected types by a
// corrupted artifact; structural damage surfaces as a decode error or a
// Verify failure, which the cache treats as a miss.
package mir

import (
	"encoding/gob"
	"fmt"
	"io"

	"rsti/internal/cminor"
	"rsti/internal/ctypes"
)

// CodecVersion identifies the artifact layout. Bump on any change to the
// DTOs below; decoders reject other versions so a stale artifact can
// never be misinterpreted.
const CodecVersion = 1

const noIdx = -1

type typeDTO struct {
	Kind       uint8
	Const      bool
	Elem       int
	Len        int
	Name       string
	Incomplete bool
	FieldNames []string
	FieldTypes []int
	FieldOffs  []int
	Ret        int
	Params     []int
	Variadic   bool
}

type slotDTO struct {
	Kind   uint8
	Var    int
	Struct int
	Field  int
}

type instrDTO struct {
	Op      uint8
	Dst     int
	A, B    int
	Imm     int64
	Ty      int
	FromTy  int
	BinSub  uint8
	CmpSub  uint8
	Slot    slotDTO
	Callee  string
	Args    []int
	Targets [2]int
	Mod     uint64
	Key     uint8
	CE      uint16
	PosLine int
	PosCol  int
}

type blockDTO struct {
	Index  int
	Name   string
	Instrs []instrDTO
}

type funcDTO struct {
	Name     string
	Ret      int
	Params   []int
	ParamVar []int
	Variadic bool
	Extern   bool
	Blocks   []blockDTO
	NumRegs  int
}

type varDTO struct {
	Name   string
	Type   int
	Global bool
	Param  bool
	DeclFn string
}

type globalDTO struct {
	Name string
	Type int
	Var  int
}

type programDTO struct {
	Version     int
	Types       []typeDTO
	StructNames []string
	StructTypes []int
	Ordered     []int // interned-table contents in ID order
	Funcs       []funcDTO
	Globals     []globalDTO
	Vars        []varDTO
	Strings     []string
}

// typeEncoder flattens the reachable type graph without mutating the
// program's shared ctypes.Table (encoding a live, possibly still-building
// Compilation must be side-effect free).
type typeEncoder struct {
	idx  map[*ctypes.Type]int
	dtos []typeDTO
}

func (e *typeEncoder) encode(t *ctypes.Type) int {
	if t == nil {
		return noIdx
	}
	if i, ok := e.idx[t]; ok {
		return i
	}
	// Reserve the index before descending: self-referential structs
	// (struct node { struct node *next; }) cycle back here and find it.
	i := len(e.dtos)
	e.idx[t] = i
	e.dtos = append(e.dtos, typeDTO{})
	d := typeDTO{
		Kind:       uint8(t.Kind),
		Const:      t.Const,
		Len:        t.Len,
		Name:       t.Name,
		Incomplete: t.Incomplete,
		Variadic:   t.Variadic,
		Elem:       e.encode(t.Elem),
		Ret:        e.encode(t.Ret),
	}
	for _, f := range t.Fields {
		d.FieldNames = append(d.FieldNames, f.Name)
		d.FieldTypes = append(d.FieldTypes, e.encode(f.Type))
		d.FieldOffs = append(d.FieldOffs, f.Offset)
	}
	for _, p := range t.Params {
		d.Params = append(d.Params, e.encode(p))
	}
	e.dtos[i] = d
	return i
}

// EncodeProgram writes p to w in the versioned artifact format.
func EncodeProgram(w io.Writer, p *Program) error {
	enc := &typeEncoder{idx: make(map[*ctypes.Type]int)}
	dto := programDTO{Version: CodecVersion, Strings: p.Strings}

	// The interned table first, in ID order, so the restored table assigns
	// identical IDs; then the struct registry, sorted for determinism.
	if p.Types != nil {
		for _, t := range p.Types.All() {
			dto.Ordered = append(dto.Ordered, enc.encode(t))
		}
		structs := p.Types.StructsByName()
		names := make([]string, 0, len(structs))
		for n := range structs {
			names = append(names, n)
		}
		sortStrings(names)
		for _, n := range names {
			dto.StructNames = append(dto.StructNames, n)
			dto.StructTypes = append(dto.StructTypes, enc.encode(structs[n]))
		}
	}

	for _, v := range p.Vars {
		dto.Vars = append(dto.Vars, varDTO{
			Name: v.Name, Type: enc.encode(v.Type),
			Global: v.Global, Param: v.Param, DeclFn: v.DeclFn,
		})
	}
	for _, g := range p.Globals {
		dto.Globals = append(dto.Globals, globalDTO{
			Name: g.Name, Type: enc.encode(g.Type), Var: g.Var,
		})
	}
	for _, f := range p.Funcs {
		fd := funcDTO{
			Name: f.Name, Ret: enc.encode(f.Ret), Variadic: f.Variadic,
			Extern: f.Extern, NumRegs: f.NumRegs, ParamVar: f.ParamVar,
		}
		for _, pt := range f.Params {
			fd.Params = append(fd.Params, enc.encode(pt))
		}
		for _, b := range f.Blocks {
			bd := blockDTO{Index: b.Index, Name: b.Name}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				bd.Instrs = append(bd.Instrs, instrDTO{
					Op: uint8(in.Op), Dst: in.Dst, A: in.A, B: in.B,
					Imm: in.Imm, Ty: enc.encode(in.Ty), FromTy: enc.encode(in.FromTy),
					BinSub: uint8(in.BinSub), CmpSub: uint8(in.CmpSub),
					Slot: slotDTO{
						Kind: uint8(in.Slot.Kind), Var: in.Slot.Var,
						Struct: enc.encode(in.Slot.Struct), Field: in.Slot.Field,
					},
					Callee: in.Callee, Args: in.Args, Targets: in.Targets,
					Mod: in.Mod, Key: in.Key, CE: in.CE,
					PosLine: in.Pos.Line, PosCol: in.Pos.Col,
				})
			}
			fd.Blocks = append(fd.Blocks, bd)
		}
		dto.Funcs = append(dto.Funcs, fd)
	}
	dto.Types = enc.dtos
	return gob.NewEncoder(w).Encode(&dto)
}

// DecodeProgram reads a Program previously written by EncodeProgram. A
// version mismatch or structurally damaged payload returns an error; the
// decoded program additionally passes Verify before being returned.
func DecodeProgram(r io.Reader) (*Program, error) {
	var dto programDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("mir: decoding program artifact: %w", err)
	}
	if dto.Version != CodecVersion {
		return nil, fmt.Errorf("mir: artifact version %d, want %d", dto.Version, CodecVersion)
	}

	// Materialize the type graph: skeletons first, then links, so cycles
	// resolve without ordering constraints.
	ts := make([]*ctypes.Type, len(dto.Types))
	for i := range ts {
		ts[i] = &ctypes.Type{}
	}
	at := func(i int) (*ctypes.Type, error) {
		if i == noIdx {
			return nil, nil
		}
		if i < 0 || i >= len(ts) {
			return nil, fmt.Errorf("mir: type index %d out of range", i)
		}
		return ts[i], nil
	}
	for i, d := range dto.Types {
		t := ts[i]
		t.Kind = ctypes.Kind(d.Kind)
		t.Const = d.Const
		t.Len = d.Len
		t.Name = d.Name
		t.Incomplete = d.Incomplete
		t.Variadic = d.Variadic
		var err error
		if t.Elem, err = at(d.Elem); err != nil {
			return nil, err
		}
		if t.Ret, err = at(d.Ret); err != nil {
			return nil, err
		}
		if len(d.FieldTypes) != len(d.FieldNames) || len(d.FieldOffs) != len(d.FieldNames) {
			return nil, fmt.Errorf("mir: type %d has ragged field tables", i)
		}
		for j := range d.FieldNames {
			ft, err := at(d.FieldTypes[j])
			if err != nil {
				return nil, err
			}
			t.Fields = append(t.Fields, ctypes.Field{
				Name: d.FieldNames[j], Type: ft, Offset: d.FieldOffs[j],
			})
		}
		for _, pi := range d.Params {
			pt, err := at(pi)
			if err != nil {
				return nil, err
			}
			t.Params = append(t.Params, pt)
		}
	}

	if len(dto.StructNames) != len(dto.StructTypes) {
		return nil, fmt.Errorf("mir: ragged struct registry")
	}
	structs := make(map[string]*ctypes.Type, len(dto.StructNames))
	for i, n := range dto.StructNames {
		st, err := at(dto.StructTypes[i])
		if err != nil || st == nil {
			return nil, fmt.Errorf("mir: struct %q resolves to no type", n)
		}
		structs[n] = st
	}
	ordered := make([]*ctypes.Type, 0, len(dto.Ordered))
	for _, i := range dto.Ordered {
		t, err := at(i)
		if err != nil || t == nil {
			return nil, fmt.Errorf("mir: interned table entry resolves to no type")
		}
		ordered = append(ordered, t)
	}

	p := &Program{
		ByName:  make(map[string]*Func, len(dto.Funcs)),
		Strings: dto.Strings,
		Types:   ctypes.RestoreTable(structs, ordered),
	}
	for _, d := range dto.Vars {
		vt, err := at(d.Type)
		if err != nil {
			return nil, err
		}
		p.Vars = append(p.Vars, &VarInfo{
			Name: d.Name, Type: vt, Global: d.Global, Param: d.Param, DeclFn: d.DeclFn,
		})
	}
	for _, d := range dto.Globals {
		gt, err := at(d.Type)
		if err != nil {
			return nil, err
		}
		p.Globals = append(p.Globals, &Global{Name: d.Name, Type: gt, Var: d.Var})
	}
	for _, fd := range dto.Funcs {
		ret, err := at(fd.Ret)
		if err != nil {
			return nil, err
		}
		f := &Func{
			Name: fd.Name, Ret: ret, ParamVar: fd.ParamVar,
			Variadic: fd.Variadic, Extern: fd.Extern, NumRegs: fd.NumRegs,
		}
		for _, pi := range fd.Params {
			pt, err := at(pi)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, pt)
		}
		for _, bd := range fd.Blocks {
			b := &Block{Index: bd.Index, Name: bd.Name}
			for _, id := range bd.Instrs {
				ty, err := at(id.Ty)
				if err != nil {
					return nil, err
				}
				fty, err := at(id.FromTy)
				if err != nil {
					return nil, err
				}
				sty, err := at(id.Slot.Struct)
				if err != nil {
					return nil, err
				}
				b.Instrs = append(b.Instrs, Instr{
					Op: Op(id.Op), Dst: id.Dst, A: id.A, B: id.B,
					Imm: id.Imm, Ty: ty, FromTy: fty,
					BinSub: BinSub(id.BinSub), CmpSub: CmpSub(id.CmpSub),
					Slot: Slot{
						Kind: SlotKind(id.Slot.Kind), Var: id.Slot.Var,
						Struct: sty, Field: id.Slot.Field,
					},
					Callee: id.Callee, Args: id.Args, Targets: id.Targets,
					Mod: id.Mod, Key: id.Key, CE: id.CE,
					Pos: cminor.Pos{Line: id.PosLine, Col: id.PosCol},
				})
			}
			f.Blocks = append(f.Blocks, b)
		}
		p.Funcs = append(p.Funcs, f)
		p.ByName[f.Name] = f
	}
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("mir: decoded program fails verification: %w", err)
	}
	return p, nil
}

// sortStrings is sort.Strings without dragging package sort into the hot
// import graph for this one call.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

package mir

import (
	"testing"

	"rsti/internal/ctypes"
)

// cloneProgram is tinyProgram plus a second function, a second block and
// a call with arguments, so the arena layout (multiple blocks and Args
// slices packed into shared backing arrays) is actually exercised.
func cloneProgram() *Program {
	p := &Program{ByName: make(map[string]*Func), Types: ctypes.NewTable()}

	g := &Func{Name: "callee", Ret: ctypes.IntType, NumRegs: 2,
		Params: []*ctypes.Type{ctypes.IntType}, ParamVar: []int{-1}}
	gb := g.NewBlock("entry")
	gb.Instrs = []Instr{
		{Op: Const, Dst: 1, A: NoReg, B: NoReg, Imm: 1, Ty: ctypes.IntType},
		{Op: BinInstr, BinSub: Add, Dst: 0, A: 0, B: 1, Ty: ctypes.IntType},
		{Op: RetOp, Dst: NoReg, A: 0, B: NoReg},
	}
	p.Funcs = append(p.Funcs, g)
	p.ByName[g.Name] = g

	f := &Func{Name: "main", Ret: ctypes.IntType, NumRegs: 3}
	b0 := f.NewBlock("entry")
	b0.Instrs = []Instr{
		{Op: Const, Dst: 0, A: NoReg, B: NoReg, Imm: 20, Ty: ctypes.IntType},
		{Op: Const, Dst: 1, A: NoReg, B: NoReg, Imm: 21, Ty: ctypes.IntType},
		{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg, Targets: [2]int{1}},
	}
	b1 := f.NewBlock("exit")
	b1.Instrs = []Instr{
		{Op: CallOp, Dst: 2, A: NoReg, B: NoReg, Callee: "callee",
			Args: []Reg{0, 1}, Ty: ctypes.IntType},
		{Op: RetOp, Dst: NoReg, A: 2, B: NoReg},
	}
	p.Funcs = append(p.Funcs, f)
	p.ByName[f.Name] = f
	return p
}

// TestCloneSharesNoMutableState mutates every mutable part of a clone —
// instruction fields, call Args, appended instructions — and checks that
// neither the source nor a sibling clone observes any of it. This is the
// contract that lets per-mechanism builds instrument clones of one
// lowering concurrently.
func TestCloneSharesNoMutableState(t *testing.T) {
	src := cloneProgram()
	before := src.String()
	a, b := src.Clone(), src.Clone()

	if err := a.Verify(); err != nil {
		t.Fatalf("clone fails verification: %v", err)
	}
	if a.String() != before {
		t.Fatal("clone does not render identically to its source")
	}

	am := a.ByName["main"]
	// Field mutation.
	am.Blocks[0].Instrs[0].Imm = 999
	// Args mutation: writing through the cloned Args slice must not show
	// through the source's backing array.
	am.Blocks[1].Instrs[0].Args[0] = 2
	// Growth: appending into a block must not bleed into the arena region
	// backing the next block or another function.
	am.Blocks[0].Instrs = append(am.Blocks[0].Instrs,
		Instr{Op: RetOp, Dst: NoReg, A: 0, B: NoReg})

	if src.String() != before {
		t.Fatal("mutating a clone changed the source program")
	}
	if b.String() != before {
		t.Fatal("mutating one clone changed a sibling clone")
	}

	// The source's Args backing really is independent.
	if got := src.ByName["main"].Blocks[1].Instrs[0].Args[0]; got != 0 {
		t.Fatalf("source call arg = %d after clone mutation, want 0", got)
	}
}

// TestCloneShellSkeleton: CloneShell must reproduce the function/block
// skeleton exactly — order, indices, register counts — with no
// instructions, so an instrumentation pass can walk source and shell in
// lockstep.
func TestCloneShellSkeleton(t *testing.T) {
	src := cloneProgram()
	sh := src.CloneShell()

	if len(sh.Funcs) != len(src.Funcs) {
		t.Fatalf("shell has %d funcs, want %d", len(sh.Funcs), len(src.Funcs))
	}
	for i, f := range src.Funcs {
		g := sh.Funcs[i]
		if g == f {
			t.Fatalf("func %d shared with source", i)
		}
		if g.Name != f.Name || g.NumRegs != f.NumRegs || len(g.Blocks) != len(f.Blocks) {
			t.Fatalf("func %d skeleton mismatch: %+v vs %+v", i, g, f)
		}
		if sh.ByName[f.Name] != g {
			t.Fatalf("ByName[%q] not wired to the shell's func", f.Name)
		}
		for j, blk := range f.Blocks {
			sb := g.Blocks[j]
			if sb == blk {
				t.Fatalf("block %s.%d shared with source", f.Name, j)
			}
			if sb.Index != blk.Index || sb.Name != blk.Name {
				t.Fatalf("block %s.%d skeleton mismatch", f.Name, j)
			}
			if sb.Instrs != nil {
				t.Fatalf("block %s.%d carries instructions", f.Name, j)
			}
		}
	}
}

package mir

// Clone deep-copies the program's mutable structure (functions, blocks,
// instructions) so an instrumentation pass can rewrite one copy per
// mechanism from a single lowering. Immutable metadata (VarInfo, Globals,
// types, the string pool) is shared.
func (p *Program) Clone() *Program {
	q := &Program{
		ByName:  make(map[string]*Func, len(p.ByName)),
		Globals: p.Globals,
		Vars:    p.Vars,
		Strings: append([]string(nil), p.Strings...),
		Types:   p.Types,
	}
	for _, f := range p.Funcs {
		nf := &Func{
			Name:     f.Name,
			Ret:      f.Ret,
			Params:   f.Params,
			ParamVar: f.ParamVar,
			Variadic: f.Variadic,
			Extern:   f.Extern,
			NumRegs:  f.NumRegs,
		}
		for _, b := range f.Blocks {
			nb := &Block{Index: b.Index, Name: b.Name, Instrs: make([]Instr, len(b.Instrs))}
			copy(nb.Instrs, b.Instrs)
			for i := range nb.Instrs {
				if nb.Instrs[i].Args != nil {
					nb.Instrs[i].Args = append([]Reg(nil), nb.Instrs[i].Args...)
				}
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		q.Funcs = append(q.Funcs, nf)
		q.ByName[nf.Name] = nf
	}
	return q
}

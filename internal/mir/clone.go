package mir

// Clone deep-copies the program's mutable structure (functions, blocks,
// instructions) so an instrumentation pass can rewrite one copy per
// mechanism from a single lowering. Immutable metadata (VarInfo, Globals,
// types, the string pool) is shared.
//
// Each function's instructions are copied into one arena sized from the
// source (two allocations per function — instructions and call-argument
// registers — instead of one per block plus one per call). Block and Args
// slices are capacity-capped into their arenas, so appending to one can
// never bleed into a neighbour: a clone shares no mutable state with its
// source or with sibling clones, which is what lets per-mechanism builds
// instrument clones of the same lowering concurrently.
func (p *Program) Clone() *Program {
	q := &Program{
		ByName:  make(map[string]*Func, len(p.ByName)),
		Globals: p.Globals,
		Vars:    p.Vars,
		Strings: append([]string(nil), p.Strings...),
		Types:   p.Types,
	}
	q.Funcs = make([]*Func, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		nf := &Func{
			Name:     f.Name,
			Ret:      f.Ret,
			Params:   f.Params,
			ParamVar: f.ParamVar,
			Variadic: f.Variadic,
			Extern:   f.Extern,
			NumRegs:  f.NumRegs,
		}
		var nInstrs, nArgs int
		for _, b := range f.Blocks {
			nInstrs += len(b.Instrs)
			for i := range b.Instrs {
				nArgs += len(b.Instrs[i].Args)
			}
		}
		instrArena := make([]Instr, nInstrs)
		argArena := make([]Reg, nArgs)
		iOff, aOff := 0, 0
		nf.Blocks = make([]*Block, 0, len(f.Blocks))
		for _, b := range f.Blocks {
			instrs := instrArena[iOff : iOff+len(b.Instrs) : iOff+len(b.Instrs)]
			iOff += len(b.Instrs)
			copy(instrs, b.Instrs)
			for i := range instrs {
				if n := len(instrs[i].Args); n > 0 {
					args := argArena[aOff : aOff+n : aOff+n]
					aOff += n
					copy(args, instrs[i].Args)
					instrs[i].Args = args
				}
			}
			nf.Blocks = append(nf.Blocks, &Block{Index: b.Index, Name: b.Name, Instrs: instrs})
		}
		q.Funcs = append(q.Funcs, nf)
		q.ByName[nf.Name] = nf
	}
	return q
}

// CloneShell copies the program's function and block skeleton but no
// instructions: Funcs and Blocks are fresh, every Block.Instrs is nil.
// An instrumentation pass that re-emits every instruction anyway (package
// rsti) starts from a shell and never pays for copying instruction arrays
// it would immediately discard. Func order, block order/indices and
// register counts match the source, so source and shell can be walked in
// lockstep.
func (p *Program) CloneShell() *Program {
	q := &Program{
		ByName:  make(map[string]*Func, len(p.ByName)),
		Globals: p.Globals,
		Vars:    p.Vars,
		Strings: append([]string(nil), p.Strings...),
		Types:   p.Types,
	}
	q.Funcs = make([]*Func, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		nf := &Func{
			Name:     f.Name,
			Ret:      f.Ret,
			Params:   f.Params,
			ParamVar: f.ParamVar,
			Variadic: f.Variadic,
			Extern:   f.Extern,
			NumRegs:  f.NumRegs,
		}
		nf.Blocks = make([]*Block, 0, len(f.Blocks))
		for _, b := range f.Blocks {
			nf.Blocks = append(nf.Blocks, &Block{Index: b.Index, Name: b.Name})
		}
		q.Funcs = append(q.Funcs, nf)
		q.ByName[nf.Name] = nf
	}
	return q
}

package mir

import (
	"strings"
	"testing"

	"rsti/internal/ctypes"
)

// tinyProgram builds a small valid program by hand.
func tinyProgram() *Program {
	p := &Program{ByName: make(map[string]*Func), Types: ctypes.NewTable()}
	f := &Func{Name: "main", Ret: ctypes.IntType, NumRegs: 2}
	b := f.NewBlock("entry")
	b.Instrs = []Instr{
		{Op: Const, Dst: 0, A: NoReg, B: NoReg, Imm: 41, Ty: ctypes.IntType},
		{Op: Const, Dst: 1, A: NoReg, B: NoReg, Imm: 1, Ty: ctypes.IntType},
		{Op: BinInstr, BinSub: Add, Dst: 0, A: 0, B: 1, Ty: ctypes.IntType},
		{Op: RetOp, Dst: NoReg, A: 0, B: NoReg},
	}
	p.Funcs = append(p.Funcs, f)
	p.ByName["main"] = f
	return p
}

func TestVerifyAcceptsValidProgram(t *testing.T) {
	if err := tinyProgram().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsUnterminatedBlock(t *testing.T) {
	p := tinyProgram()
	f := p.ByName["main"]
	f.Blocks[0].Instrs = f.Blocks[0].Instrs[:2] // drop the terminator
	if err := p.Verify(); err == nil {
		t.Error("unterminated block accepted")
	}
}

func TestVerifyRejectsOutOfRangeRegister(t *testing.T) {
	p := tinyProgram()
	f := p.ByName["main"]
	f.Blocks[0].Instrs[2].B = 99
	if err := p.Verify(); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestVerifyRejectsBadBranchTarget(t *testing.T) {
	p := tinyProgram()
	f := p.ByName["main"]
	f.Blocks[0].Instrs[3] = Instr{Op: Jmp, Dst: NoReg, A: NoReg, B: NoReg, Targets: [2]int{7}}
	if err := p.Verify(); err == nil {
		t.Error("jump to a missing block accepted")
	}
}

func TestVerifyRejectsMidBlockTerminator(t *testing.T) {
	p := tinyProgram()
	f := p.ByName["main"]
	f.Blocks[0].Instrs[1] = Instr{Op: RetOp, Dst: NoReg, A: 0, B: NoReg}
	if err := p.Verify(); err == nil {
		t.Error("mid-block terminator accepted")
	}
}

func TestVerifyRejectsUnknownCallee(t *testing.T) {
	p := tinyProgram()
	f := p.ByName["main"]
	f.Blocks[0].Instrs[2] = Instr{Op: CallOp, Dst: 0, A: NoReg, B: NoReg, Callee: "ghost"}
	if err := p.Verify(); err == nil {
		t.Error("call to an unknown function accepted")
	}
}

func TestCloneIsDeepForInstructions(t *testing.T) {
	p := tinyProgram()
	q := p.Clone()
	q.ByName["main"].Blocks[0].Instrs[0].Imm = 999
	if p.ByName["main"].Blocks[0].Instrs[0].Imm != 41 {
		t.Error("clone shares instruction storage with the original")
	}
	// Args slices must not be shared either.
	p2 := tinyProgram()
	p2.ByName["main"].Blocks[0].Instrs[2] = Instr{
		Op: CallOp, Dst: 0, A: NoReg, B: NoReg, Callee: "main", Args: []Reg{0, 1},
	}
	q2 := p2.Clone()
	q2.ByName["main"].Blocks[0].Instrs[2].Args[0] = 1
	if p2.ByName["main"].Blocks[0].Instrs[2].Args[0] != 0 {
		t.Error("clone shares call-argument slices")
	}
}

func TestCloneVerifies(t *testing.T) {
	if err := tinyProgram().Clone().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAddStringInterns(t *testing.T) {
	p := tinyProgram()
	a := p.AddString("x")
	b := p.AddString("y")
	c := p.AddString("x")
	if a != c || a == b {
		t.Errorf("interning broken: %d %d %d", a, b, c)
	}
}

func TestTerminatedDetection(t *testing.T) {
	b := &Block{}
	if b.Terminated() {
		t.Error("empty block reported terminated")
	}
	b.Instrs = append(b.Instrs, Instr{Op: Const})
	if b.Terminated() {
		t.Error("const-terminated block reported terminated")
	}
	b.Instrs = append(b.Instrs, Instr{Op: Br})
	if !b.Terminated() {
		t.Error("br-ended block not terminated")
	}
}

func TestInstructionFormatting(t *testing.T) {
	p := tinyProgram()
	out := p.String()
	for _, want := range []string{"func main", "const 41", "add r0, r1", "ret r0"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed program missing %q:\n%s", want, out)
		}
	}
	// Instrumentation ops format without a program context too.
	in := Instr{Op: PacSign, Dst: 3, A: 2, B: NoReg, Mod: 0xabc, Key: 2}
	if s := in.format(nil); !strings.Contains(s, "pac") || !strings.Contains(s, "0xabc") {
		t.Errorf("pac formatting: %q", s)
	}
	pp := Instr{Op: PPAuth, Dst: 1, A: 0, B: 2}
	if s := pp.format(nil); !strings.Contains(s, "pp_auth") {
		t.Errorf("pp_auth formatting: %q", s)
	}
}

func TestOpAndSubcodeStrings(t *testing.T) {
	if Load.String() != "load" || PacAuth.String() != "aut" {
		t.Error("op names wrong")
	}
	if Add.String() != "add" || FDiv.String() != "fdiv" {
		t.Error("binsub names wrong")
	}
	if Eq.String() != "eq" || Ge.String() != "ge" {
		t.Error("cmpsub names wrong")
	}
	if Op(200).String() == "" {
		t.Error("unknown op has empty name")
	}
}

// TestFormatAllOps drives the printer across every opcode so dumped IR
// stays readable as the instruction set evolves.
func TestFormatAllOps(t *testing.T) {
	p := tinyProgram()
	p.AddString("lit")
	st := ctypes.NewTable()
	node, _ := st.CompleteStruct("n", []ctypes.Field{{Name: "f", Type: ctypes.PointerTo(ctypes.IntType)}})
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Nop}, "nop"},
		{Instr{Op: ConstF, Dst: 0, Imm: 42, Ty: ctypes.DoubleType}, "constf"},
		{Instr{Op: StrConst, Dst: 0, Imm: 0}, `"lit"`},
		{Instr{Op: Alloca, Dst: 0, Ty: ctypes.IntType}, "alloca int"},
		{Instr{Op: GlobalAddr, Dst: 0, Imm: 1}, "gaddr #1"},
		{Instr{Op: FuncAddr, Dst: 0, Callee: "main"}, "faddr main"},
		{Instr{Op: Load, Dst: 0, A: 1, Ty: ctypes.IntType, Slot: Slot{Kind: SlotVar, Var: 99}}, "load int"},
		{Instr{Op: Store, A: 0, B: 1, Ty: ctypes.IntType, Slot: Slot{Kind: SlotElem}}, "!elem"},
		{Instr{Op: FieldAddr, Dst: 0, A: 1, Imm: 8, Slot: Slot{Kind: SlotField, Struct: node, Field: 0}}, "fieldaddr"},
		{Instr{Op: IndexAddr, Dst: 0, A: 1, B: 0, Imm: 4}, "indexaddr"},
		{Instr{Op: CmpInstr, CmpSub: Le, Dst: 0, A: 0, B: 1}, "cmp.le"},
		{Instr{Op: CastOp, Dst: 0, A: 1, FromTy: ctypes.IntType, Ty: ctypes.LongType}, "cast"},
		{Instr{Op: CallOp, Dst: 0, A: 1, Args: []Reg{0}}, "(*r1)"},
		{Instr{Op: RetOp, A: NoReg}, "ret _"},
		{Instr{Op: Jmp, Targets: [2]int{3}}, "jmp #3"},
		{Instr{Op: Br, A: 0, Targets: [2]int{1, 2}}, "br r0 #1 #2"},
		{Instr{Op: PacStrip, Dst: 0, A: 1}, "xpac"},
		{Instr{Op: PPAdd, CE: 4, Mod: 0x9}, "pp_add ce=4"},
		{Instr{Op: PPSign, Dst: 0, A: 1, B: 0, CE: 4}, "pp_sign"},
		{Instr{Op: PPAddTBI, Dst: 0, A: 1, CE: 4}, "pp_add_tbi"},
	}
	for _, c := range cases {
		got := c.in.format(p)
		if !strings.Contains(got, c.want) {
			t.Errorf("format(%v) = %q, want substring %q", c.in.Op, got, c.want)
		}
	}
	// Unknown slot var index prints the raw index instead of panicking.
	out := (&Instr{Op: Load, Dst: 0, A: 1, Ty: ctypes.IntType, Slot: Slot{Kind: SlotVar, Var: 99}}).format(p)
	if !strings.Contains(out, "#99") {
		t.Errorf("out-of-range var formatted as %q", out)
	}
}

// TestProgramStringIncludesExterns keeps extern stubs visible in dumps.
func TestProgramStringIncludesExterns(t *testing.T) {
	p := tinyProgram()
	p.Funcs = append(p.Funcs, &Func{Name: "libc_thing", Extern: true})
	p.ByName["libc_thing"] = p.Funcs[len(p.Funcs)-1]
	p.Globals = append(p.Globals, &Global{Name: "g", Type: ctypes.IntType})
	out := p.String()
	if !strings.Contains(out, "extern func libc_thing") {
		t.Error("extern missing from dump")
	}
	if !strings.Contains(out, "global g : int") {
		t.Error("global missing from dump")
	}
}

package rsti_test

import (
	"sync"
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/mir"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// parallelCorpus builds a few generated programs large and varied enough
// that the parallel fan-out actually schedules functions across workers.
func parallelCorpus(t *testing.T) []*mir.Program {
	t.Helper()
	var progs []*mir.Program
	for i, cfg := range []workload.Config{
		{Name: "par-small", Suite: "t", Structs: 2, PtrVars: 8, ColdFns: 2,
			CastRate: 20, Iters: 4, ChainLen: 3, DerefOps: 2, Seed: 11},
		{Name: "par-casts", Suite: "t", Structs: 5, PtrVars: 30, ColdFns: 6,
			CastRate: 60, Popular: 10, SharedCasts: 8, Iters: 6, ChainLen: 5,
			DerefOps: 4, CallOps: 2, CastOps: 2, Seed: 23},
		{Name: "par-pp", Suite: "t", Structs: 4, PtrVars: 24, ColdFns: 8,
			CastRate: 30, PPPlain: 4, PPSpecial: 2, Iters: 5, ChainLen: 4,
			DerefOps: 3, ArithOps: 3, FloatOps: 2, Seed: 37},
	} {
		b := workload.Generate(cfg)
		f, err := cminor.Parse(b.Source)
		if err != nil {
			t.Fatalf("corpus %d: parse: %v", i, err)
		}
		if err := cminor.Check(f); err != nil {
			t.Fatalf("corpus %d: check: %v", i, err)
		}
		p, err := lower.Lower(f)
		if err != nil {
			t.Fatalf("corpus %d: lower: %v", i, err)
		}
		progs = append(progs, p)
	}
	return progs
}

// TestParallelInstrumentBitIdentical is the determinism contract for the
// parallel fan-out: for every mechanism, instrumenting with many workers
// must produce output bit-identical to the serial path — same rendered
// program, same stats. Worker count and goroutine scheduling must be
// invisible in the result.
func TestParallelInstrumentBitIdentical(t *testing.T) {
	mechs := append(append([]sti.Mechanism{}, sti.Mechanisms...), sti.Adaptive)
	for ci, prog := range parallelCorpus(t) {
		an := sti.Analyze(prog)
		for _, mech := range mechs {
			serial, sstats, err := rsti.InstrumentWithOptions(prog, an, mech, rsti.Options{Workers: 1})
			if err != nil {
				t.Fatalf("corpus %d %s serial: %v", ci, mech, err)
			}
			for _, workers := range []int{2, 4, 8} {
				par, pstats, err := rsti.InstrumentWithOptions(prog, an, mech, rsti.Options{Workers: workers})
				if err != nil {
					t.Fatalf("corpus %d %s workers=%d: %v", ci, mech, workers, err)
				}
				if got, want := par.String(), serial.String(); got != want {
					t.Fatalf("corpus %d %s: workers=%d output differs from serial", ci, mech, workers)
				}
				if *pstats != *sstats {
					t.Fatalf("corpus %d %s workers=%d stats = %+v, serial %+v", ci, mech, workers, *pstats, *sstats)
				}
			}
		}
	}
}

// TestInstrumentLeavesSourceUntouched: the pass reads the source program
// and shares its Analysis, so instrumenting repeatedly — serially or
// concurrently across mechanisms — must never perturb the source or the
// outputs.
func TestInstrumentLeavesSourceUntouched(t *testing.T) {
	prog := parallelCorpus(t)[1]
	an := sti.Analyze(prog)
	before := prog.String()

	mechs := append(append([]sti.Mechanism{}, sti.Mechanisms...), sti.Adaptive)
	want := make([]string, len(mechs))
	for i, mech := range mechs {
		out, _, err := rsti.Instrument(prog, an, mech)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		want[i] = out.String()
	}
	if prog.String() != before {
		t.Fatal("serial instrumentation mutated the source program")
	}

	// All mechanisms at once, several rounds: same outputs, same source.
	var wg sync.WaitGroup
	got := make([][]string, 4)
	for round := range got {
		got[round] = make([]string, len(mechs))
		for i, mech := range mechs {
			wg.Add(1)
			go func(round, i int, mech sti.Mechanism) {
				defer wg.Done()
				out, _, err := rsti.Instrument(prog, an, mech)
				if err != nil {
					t.Errorf("round %d %s: %v", round, mech, err)
					return
				}
				got[round][i] = out.String()
			}(round, i, mech)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for round := range got {
		for i := range mechs {
			if got[round][i] != want[i] {
				t.Fatalf("round %d %s: concurrent output differs from serial", round, mechs[i])
			}
		}
	}
	if prog.String() != before {
		t.Fatal("concurrent instrumentation mutated the source program")
	}
}

package rsti_test

import (
	"fmt"
	"strings"
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// bigClassSrc builds a program with one large equivalence class (many
// same-typed function-pointer globals used from one function) and one
// small class, plus __hook sites to replay within each.
func bigClassSrc() string {
	var b strings.Builder
	b.WriteString("int red(void) { return 1; }\n")
	b.WriteString("int blue(void) { return 2; }\n")
	// Large class: well above sti.AdaptiveECVThreshold members.
	n := sti.AdaptiveECVThreshold + 8
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "int (*big%d)(void);\n", i)
	}
	// Small class: two members.
	b.WriteString("int (*smalla)(void);\nint (*smallb)(void);\n")
	b.WriteString("void setup_all(void) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tbig%d = red;\n", i)
	}
	b.WriteString("}\n")
	b.WriteString("int read_all(void) {\n\tint s = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\ts += big%d();\n", i)
	}
	b.WriteString("\treturn s;\n}\n")
	b.WriteString(`
		int use_small(void) {
			smalla = red;
			smallb = blue;
			__hook(2);
			return smalla();
		}
		int main(void) {
			setup_all();
			int s = read_all();
			__hook(1);
			s += read_all();
			s += use_small();
			return s & 127;
		}
	`)
	return b.String()
}

func replayHook(src, dst string) vm.Hook {
	return func(m *vm.Machine) error {
		s, _ := m.GlobalAddr(src)
		d, _ := m.GlobalAddr(dst)
		v, err := m.Mem.Peek(s, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(d, v, 8)
	}
}

// TestAdaptiveDetectsReplayInLargeClass: the Adaptive mechanism binds
// location for the large class, so replaying big1's signed value into
// big0 is detected — where STWC accepts it.
func TestAdaptiveDetectsReplayInLargeClass(t *testing.T) {
	c, err := core.Compile(bigClassSrc())
	if err != nil {
		t.Fatal(err)
	}
	hooks := map[int64]vm.Hook{1: replayHook("big1", "big0")}

	stwc, err := c.Run(sti.STWC, core.RunConfig{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if stwc.Detected() {
		t.Fatal("STWC detected a same-RSTI-type replay — modifiers are wrong")
	}
	adaptive, err := c.Run(sti.Adaptive, core.RunConfig{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if !adaptive.Detected() {
		t.Errorf("Adaptive missed the replay in a %d-member class (exit=%d err=%v)",
			sti.AdaptiveECVThreshold+8, adaptive.Exit, adaptive.Err)
	}
	stl, err := c.Run(sti.STL, core.RunConfig{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if !stl.Detected() {
		t.Error("STL missed the replay")
	}
}

// TestAdaptiveAcceptsReplayInSmallClass: for the two-member class the
// Adaptive mechanism deliberately stays at scope-type protection, so the
// replay succeeds there (that is the cost/benefit trade the paper's §7
// proposes).
func TestAdaptiveAcceptsReplayInSmallClass(t *testing.T) {
	c, err := core.Compile(bigClassSrc())
	if err != nil {
		t.Fatal(err)
	}
	hooks := map[int64]vm.Hook{2: replayHook("smallb", "smalla")}
	adaptive, err := c.Run(sti.Adaptive, core.RunConfig{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Detected() {
		t.Error("Adaptive bound location for a small class — threshold not applied")
	}
	if adaptive.Err != nil {
		t.Fatalf("benign-path trap: %v", adaptive.Err)
	}
}

// TestAdaptiveSoundAndBetween: Adaptive runs every soundness program
// correctly and costs between STWC and STL.
func TestAdaptiveSoundAndBetween(t *testing.T) {
	for _, tc := range soundnessPrograms {
		c, err := core.Compile(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := c.Run(sti.Adaptive, core.RunConfig{Externs: externs()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Errorf("%s: Adaptive trapped on benign program: %v", tc.name, res.Err)
			continue
		}
		if res.Exit != tc.want {
			t.Errorf("%s: Adaptive exit = %d, want %d", tc.name, res.Exit, tc.want)
		}
	}

	c, err := core.Compile(bigClassSrc())
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[sti.Mechanism]int64{}
	for _, mech := range []sti.Mechanism{sti.STWC, sti.Adaptive, sti.STL} {
		res, err := c.Run(mech, core.RunConfig{})
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v %v", mech, err, res.Err)
		}
		cycles[mech] = res.Stats.Cycles
	}
	if !(cycles[sti.STWC] <= cycles[sti.Adaptive] && cycles[sti.Adaptive] <= cycles[sti.STL]) {
		t.Errorf("cycles not ordered STWC(%d) <= Adaptive(%d) <= STL(%d)",
			cycles[sti.STWC], cycles[sti.Adaptive], cycles[sti.STL])
	}
}

// TestAdaptiveOnAttackSuite: Adaptive detects everything the Table 1
// matrix throws at it (the attacks corrupt with raw values or replay
// across RSTI-types, both caught by scope-type alone).
func TestAdaptiveParsesAndRoundTrips(t *testing.T) {
	m, ok := sti.ParseMechanism("rsti-adaptive")
	if !ok || m != sti.Adaptive {
		t.Fatal("rsti-adaptive does not parse")
	}
	if sti.Adaptive.String() != "rsti-adaptive" {
		t.Fatalf("String = %q", sti.Adaptive.String())
	}
}

package rsti_test

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
	"rsti/internal/workload"
)

// TestDifferentialRandomPrograms is a differential fuzz over the whole
// pipeline: randomly configured generated programs must behave
// identically under every mechanism — any divergence (false trap, wrong
// value) is an instrumentation soundness bug. The generator is seeded, so
// failures reproduce exactly.
func TestDifferentialRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep")
	}
	rng := uint64(0x5EED)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	mechs := append(append([]sti.Mechanism{}, sti.Mechanisms...), sti.Adaptive)
	for trial := 0; trial < 24; trial++ {
		cfg := workload.Config{
			Name:        "diff",
			Suite:       "fuzz",
			Structs:     1 + next(6),
			PtrVars:     4 + next(40),
			ColdFns:     1 + next(5),
			CastRate:    next(100),
			Popular:     next(30),
			SharedCasts: next(20),
			PPPlain:     next(6),
			PPSpecial:   next(4),
			Iters:       1 + next(40),
			ChainLen:    1 + next(10),
			DerefOps:    next(6),
			CallOps:     next(3),
			CastOps:     next(3),
			ArithOps:    next(6),
			FloatOps:    next(6),
			Seed:        rng,
		}
		b := workload.Generate(cfg)
		c, err := core.Compile(b.Source)
		if err != nil {
			t.Fatalf("trial %d (cfg %+v): compile: %v", trial, cfg, err)
		}
		var want int64
		for i, mech := range mechs {
			res, err := c.Run(mech, core.RunConfig{})
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, mech, err)
			}
			if res.Err != nil {
				t.Fatalf("trial %d (cfg %+v): %s trapped: %v", trial, cfg, mech, res.Err)
			}
			if i == 0 {
				want = res.Exit
			} else if res.Exit != want {
				t.Fatalf("trial %d: %s exit %d != baseline %d", trial, mech, res.Exit, want)
			}
		}
	}
}

// TestTable1UnderAdaptive: the Adaptive extension must stop the entire
// attack suite too (the attacks corrupt with raw values or cross-class
// replays, which scope-type alone catches).
func TestTable1UnderAdaptive(t *testing.T) {
	// Import cycle: the attack package lives elsewhere; this file only
	// checks a representative corruption under Adaptive.
	src := `
		int ok(void) { return 1; }
		int evil(void) { return 66; }
		int (*h)(void);
		int main(void) { h = ok; __hook(1); return h(); }
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(sti.Adaptive, core.RunConfig{Hooks: map[int64]vm.Hook{1: func(m *vm.Machine) error {
		addr, _ := m.GlobalAddr("h")
		tok, _ := m.FuncToken("evil")
		return m.Mem.Poke(addr, tok, 8)
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Errorf("Adaptive missed the hijack: exit=%d err=%v", res.Exit, res.Err)
	}
}

package rsti_test

import (
	"strings"
	"testing"

	"rsti/internal/core"
	"rsti/internal/mir"
	"rsti/internal/sti"
)

// countIROps counts instructions of the given op in one function of the
// instrumented build.
func countIROps(t *testing.T, c *core.Compilation, mech sti.Mechanism, fn string, op mir.Op) int {
	t.Helper()
	b, err := c.Build(mech)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := b.Prog.Func(fn)
	if !ok {
		t.Fatalf("no function %s", fn)
	}
	n := 0
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			if blk.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

// TestFigure5InstrumentationShape pins the per-mechanism instrumentation
// of the paper's Figure 5 program: STC must instrument strictly less than
// STWC at the cast-crossing call sites (Figure 5b's empty foo2 vs 5a's
// auth/sign pairs), and the baseline must instrument nothing.
func TestFigure5InstrumentationShape(t *testing.T) {
	src := `
		typedef struct { void (*send_file)(int x); } ctx;
		void foo(ctx *c) { }
		void bar(ctx *c) { }
		void foo2(void* v_ctx) {
			foo((ctx*) v_ctx);
			bar((ctx*) v_ctx);
		}
		int main(void) {
			ctx* c = (ctx*) malloc(sizeof(ctx));
			const void* v_const = malloc(1);
			foo2((void*) c);
			return 0;
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	for _, op := range []mir.Op{mir.PacSign, mir.PacAuth} {
		if n := countIROps(t, c, sti.None, "foo2", op); n != 0 {
			t.Errorf("baseline foo2 has %d %s ops", n, op)
		}
	}

	// foo2 passes v_ctx across casts into foo/bar: STWC re-signs there,
	// STC's merging removes the pairs — the Figure 5a vs 5b contrast.
	stwcSigns := countIROps(t, c, sti.STWC, "foo2", mir.PacSign)
	stcSigns := countIROps(t, c, sti.STC, "foo2", mir.PacSign)
	if !(stcSigns < stwcSigns) {
		t.Errorf("foo2 signs: STC=%d not below STWC=%d", stcSigns, stwcSigns)
	}
	stwcAuths := countIROps(t, c, sti.STWC, "foo2", mir.PacAuth)
	stcAuths := countIROps(t, c, sti.STC, "foo2", mir.PacAuth)
	if !(stcAuths < stwcAuths) {
		t.Errorf("foo2 auths: STC=%d not below STWC=%d", stcAuths, stwcAuths)
	}

	// main signs c's malloc result into its slot under every mechanism
	// (Figure 5's line-14 sign).
	for _, mech := range sti.RSTIMechanisms {
		if n := countIROps(t, c, mech, "main", mir.PacSign); n == 0 {
			t.Errorf("%s: main has no pac instructions", mech)
		}
	}
}

// TestInstrumentedIRVerifies: every mechanism's output must pass the IR
// verifier for a program exercising all instrumentation paths.
func TestInstrumentedIRVerifies(t *testing.T) {
	src := `
		struct node { int key; struct node *next; int (*fp)(int); };
		int inc(int x) { return x + 1; }
		void through(void **pp) { if (*pp != NULL) { *pp = NULL; } }
		int main(void) {
			struct node *n = (struct node*) malloc(sizeof(struct node));
			n->key = 1;
			n->next = NULL;
			n->fp = inc;
			int r = n->fp(n->key);
			void *v = (void*) n;
			struct node *back = (struct node*) v;
			through((void**) &back);
			return r + (back == NULL);
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range append(append([]sti.Mechanism{}, sti.Mechanisms...), sti.Adaptive) {
		b, err := c.Build(mech)
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if err := b.Prog.Verify(); err != nil {
			t.Errorf("%s: %v", mech, err)
		}
	}
}

// TestDumpShowsMechanismDifferences: the printed IR is the debugging
// surface; the location operand must appear for STL but not STWC.
func TestDumpShowsMechanismDifferences(t *testing.T) {
	src := `
		int (*h)(void);
		int f(void) { return 1; }
		int main(void) { h = f; return h(); }
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	stwcB, _ := c.Build(sti.STWC)
	stlB, _ := c.Build(sti.STL)
	stwc, stl := stwcB.Prog.String(), stlB.Prog.String()
	if !strings.Contains(stwc, " = pac ") || !strings.Contains(stwc, " = aut ") {
		t.Error("STWC dump missing PA ops")
	}
	// STL pac/aut carry a location register (loc=rN); STWC prints loc=_.
	if !strings.Contains(stl, "loc=r") {
		t.Error("STL dump shows no location operands")
	}
	for _, line := range strings.Split(stwc, "\n") {
		if strings.Contains(line, " = pac ") && strings.Contains(line, "loc=r") {
			t.Errorf("STWC pac carries a location: %q", line)
		}
	}
}

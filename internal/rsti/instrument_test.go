package rsti_test

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// soundnessPrograms exercise every pointer-relevant language feature. Each
// must produce the same exit value under every mechanism: instrumentation
// must never change the behaviour of an uncorrupted program.
var soundnessPrograms = []struct {
	name string
	src  string
	want int64
}{
	{"scalars", `int main(void) { int x = 3; int y = x * 13; return y + 3; }`, 42},
	{"pointer-roundtrip", `
		int main(void) {
			int x = 5;
			int *p = &x;
			*p = 7;
			int *q = p;
			return *q;
		}`, 7},
	{"linked-list", `
		struct node { int key; struct node *next; };
		int main(void) {
			struct node *head = NULL;
			for (int i = 1; i <= 10; i++) {
				struct node *n = (struct node*) malloc(sizeof(struct node));
				n->key = i;
				n->next = head;
				head = n;
			}
			int sum = 0;
			for (struct node *c = head; c != NULL; c = c->next) sum += c->key;
			return sum;
		}`, 55},
	{"function-pointers", `
		int twice(int x) { return 2 * x; }
		int thrice(int x) { return 3 * x; }
		int apply(int (*f)(int), int v) { return f(v); }
		int main(void) {
			int (*op)(int) = twice;
			int a = apply(op, 10);
			op = thrice;
			return a + apply(op, 10);
		}`, 50},
	{"struct-function-pointer", `
		int hello(void) { return 7; }
		struct node { int key; int (*fp)(void); };
		int main(void) {
			struct node *ptr = (struct node*) malloc(sizeof(struct node));
			ptr->fp = hello;
			return ptr->fp();
		}`, 7},
	{"casts", `
		struct a { int x; };
		int main(void) {
			struct a *pa = (struct a*) malloc(sizeof(struct a));
			pa->x = 9;
			void *v = (void*) pa;
			struct a *back = (struct a*) v;
			return back->x;
		}`, 9},
	{"figure5", `
		typedef struct { int (*send_file)(int x); } ctx;
		int sent = 0;
		int record(int x) { sent += x; return sent; }
		int foo(ctx *c) { return c->send_file(1); }
		int bar(ctx *c) { return c->send_file(2); }
		int foo2(void* v_ctx) {
			foo((ctx*) v_ctx);
			bar((ctx*) v_ctx);
			return sent;
		}
		int main(void) {
			ctx* c = (ctx*) malloc(sizeof(ctx));
			c->send_file = record;
			return foo2((void*) c);
		}`, 3},
	{"double-pointer-plain", `
		void swap(int **a, int **b) {
			int *t = *a;
			*a = *b;
			*b = t;
		}
		int main(void) {
			int x = 1; int y = 2;
			int *px = &x; int *py = &y;
			swap(&px, &py);
			return *px * 10 + *py;
		}`, 21},
	{"double-pointer-universal", `
		struct node { int key; };
		void clear(void** pp) { *pp = NULL; }
		int peek(void** pp) { if (*pp == NULL) return 1; return 0; }
		int main(void) {
			struct node* p = (struct node*) malloc(sizeof(struct node));
			p->key = 5;
			if (peek((void**)&p)) return 100;
			clear((void**)&p);
			if (p == NULL) return 11;
			return 200;
		}`, 11},
	{"pointer-arithmetic", `
		int main(void) {
			int a[8];
			for (int i = 0; i < 8; i++) a[i] = i;
			int *p = (int*)a;
			int sum = 0;
			for (int i = 0; i < 8; i++) { sum += *p; p++; }
			return sum;
		}`, 28},
	{"array-of-pointers", `
		int one(void) { return 1; }
		int two(void) { return 2; }
		int main(void) {
			int (*tab[2])(void);
			tab[0] = one;
			tab[1] = two;
			return tab[0]() * 10 + tab[1]();
		}`, 12},
	{"globals", `
		char *banner = "rsti";
		int (*handler)(int);
		int inc(int x) { return x + 1; }
		int main(void) {
			handler = inc;
			return handler((int)strlen(banner));
		}`, 5},
	{"string-ops", `
		int main(void) {
			char buf[32];
			strcpy((char*)buf, "hello");
			char *w = strstr((char*)buf, "llo");
			if (w == NULL) return 1;
			return (int)strlen(w);
		}`, 3},
	{"const-pointers", `
		int main(void) {
			const char *msg = "ro";
			const void *cp = malloc(1);
			if (cp == NULL) return 1;
			return (int)strlen(msg);
		}`, 2},
	{"extern-boundary", `
		extern long external_len(char *s);
		int main(void) {
			char *s = "boundary";
			return (int) external_len(s);
		}`, 8},
	{"recursion-with-pointers", `
		int depth(struct n *p);
		struct n { struct n *next; };
		int depth(struct n *p) {
			if (p == NULL) return 0;
			return 1 + depth(p->next);
		}
		int main(void) {
			struct n *head = NULL;
			for (int i = 0; i < 6; i++) {
				struct n *x = (struct n*) malloc(sizeof(struct n));
				x->next = head;
				head = x;
			}
			return depth(head);
		}`, 6},
	{"returned-pointers", `
		int *pick(int *a, int *b, int which) {
			if (which) return a;
			return b;
		}
		int main(void) {
			int x = 3; int y = 4;
			int *p = pick(&x, &y, 1);
			int *q = pick(&x, &y, 0);
			return *p * 10 + *q;
		}`, 34},
	{"null-checks", `
		int main(void) {
			int *p = NULL;
			if (p == NULL) p = (int*) malloc(4);
			*p = 6;
			if (p != NULL) return *p;
			return 0;
		}`, 6},
	{"ternary-pointers", `
		int main(void) {
			int a = 3;
			int b = 4;
			int *sel = a > b ? &a : &b;
			char *tag = *sel == 4 ? "four" : "other";
			return *sel * 10 + (int) strlen(tag);
		}`, 44},
	{"switch-dispatch", `
		int h1(void) { return 1; }
		int h2(void) { return 2; }
		int dispatch(int k) {
			int (*f)(void) = NULL;
			switch (k) {
			case 1: f = h1; break;
			case 2: f = h2; break;
			default: return -1;
			}
			return f();
		}
		int main(void) {
			return dispatch(1) * 10 + dispatch(2);
		}`, 12},
	{"triple-indirection", `
		// §4.7.7: "the mechanism can support any level of indirection" —
		// a struct node*** travels through void*** and the inner chain
		// still authenticates.
		struct node { int key; };
		int deep_probe(void ***ppp) {
			if (**ppp != NULL) { **ppp = NULL; return 1; }
			return 0;
		}
		int main(void) {
			struct node *p = (struct node*) malloc(sizeof(struct node));
			p->key = 3;
			struct node **pp = &p;
			struct node ***ppp = &pp;
			int cleared = deep_probe((void***) ppp);
			if (p == NULL) return cleared + 10;
			return 0;
		}`, 11},
	{"do-while-list", `
		struct n { int v; struct n *next; };
		int main(void) {
			struct n *head = NULL;
			int i = 0;
			do {
				struct n *x = (struct n*) malloc(sizeof(struct n));
				x->v = i;
				x->next = head;
				head = x;
				i++;
			} while (i < 4);
			int s = 0;
			do { s += head->v; head = head->next; } while (head != NULL);
			return s;
		}`, 6},
}

func externs() map[string]func(*vm.Machine, []uint64) (uint64, error) {
	return map[string]func(*vm.Machine, []uint64) (uint64, error){
		"external_len": func(m *vm.Machine, args []uint64) (uint64, error) {
			// An uninstrumented library routine: it sees raw pointers
			// only (PACs stripped at the boundary).
			if !m.Unit.IsCanonical(args[0]) {
				return 0, &vm.Trap{Kind: vm.TrapNonCanonical, Fn: "external_len", Msg: "received a signed pointer"}
			}
			s, err := m.Mem.CString(args[0])
			if err != nil {
				return 0, err
			}
			return uint64(len(s)), nil
		},
	}
}

func TestSoundnessAcrossMechanisms(t *testing.T) {
	for _, tc := range soundnessPrograms {
		t.Run(tc.name, func(t *testing.T) {
			c, err := core.Compile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, mech := range sti.Mechanisms {
				res, err := c.Run(mech, core.RunConfig{Externs: externs()})
				if err != nil {
					t.Fatalf("%s: %v", mech, err)
				}
				if res.Err != nil {
					b, _ := c.Build(mech)
					t.Fatalf("%s: trapped on benign program: %v\n%s", mech, res.Err, b.Prog)
				}
				if res.Exit != tc.want {
					t.Errorf("%s: exit = %d, want %d", mech, res.Exit, tc.want)
				}
			}
		})
	}
}

func TestInstrumentationCostOrdering(t *testing.T) {
	// Dynamic PA-op counts must order STC <= STWC <= STL on a
	// cast-and-call-heavy workload, the relationship behind Figure 9.
	src := `
		typedef struct { int (*fp)(int); int v; } obj;
		int f1(int x) { return x + 1; }
		int use(obj *o) { return o->fp(o->v); }
		int pass(void *vo) { return use((obj*)vo); }
		int main(void) {
			obj *o = (obj*) malloc(sizeof(obj));
			o->fp = f1;
			o->v = 1;
			int sum = 0;
			for (int i = 0; i < 200; i++) {
				sum += pass((void*)o);
			}
			return sum & 127;
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[sti.Mechanism]int64{}
	cycles := map[sti.Mechanism]int64{}
	for _, mech := range sti.Mechanisms {
		res, err := c.Run(mech, core.RunConfig{})
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v / %v", mech, err, res.Err)
		}
		ops[mech] = res.Stats.PACOps() + res.Stats.PPOps
		cycles[mech] = res.Stats.Cycles
	}
	if ops[sti.None] != 0 {
		t.Errorf("baseline executed %d PA ops", ops[sti.None])
	}
	if !(ops[sti.STC] <= ops[sti.STWC]) {
		t.Errorf("PA ops: STC=%d > STWC=%d", ops[sti.STC], ops[sti.STWC])
	}
	if !(ops[sti.STWC] <= ops[sti.STL]) {
		t.Errorf("PA ops: STWC=%d > STL=%d", ops[sti.STWC], ops[sti.STL])
	}
	if ops[sti.STC] == 0 || ops[sti.STL] == 0 {
		t.Error("protected runs executed no PA ops")
	}
	if !(cycles[sti.None] < cycles[sti.STC]) {
		t.Errorf("cycles: baseline %d not below STC %d", cycles[sti.None], cycles[sti.STC])
	}
	// STWC must actually pay for the cast re-signing STC avoids.
	if ops[sti.STC] == ops[sti.STWC] {
		t.Error("STWC and STC executed identical PA ops on a cast-heavy workload")
	}
}

// corruptGlobalPointer is a scenario where an attacker's arbitrary write
// replaces a global function pointer with the address of another function.
const hijackSrc = `
	int benign(void) { return 1; }
	int target(void) { return 666; }
	int (*handler)(void);
	int main(void) {
		handler = benign;
		__hook(1);
		return handler();
	}
`

func hijackHook(t *testing.T) vm.Hook {
	return func(m *vm.Machine) error {
		addr, ok := m.GlobalAddr("handler")
		if !ok {
			t.Fatal("handler global missing")
		}
		tok, ok := m.FuncToken("target")
		if !ok {
			t.Fatal("target token missing")
		}
		return m.Mem.Poke(addr, tok, 8)
	}
}

func TestHijackSucceedsWithoutDefense(t *testing.T) {
	c, err := core.Compile(hijackSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(sti.None, core.RunConfig{Hooks: map[int64]vm.Hook{1: hijackHook(t)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("baseline trapped: %v", res.Err)
	}
	if res.Exit != 666 {
		t.Errorf("attack did not succeed on baseline: exit = %d", res.Exit)
	}
}

func TestHijackDetectedByAllRSTIMechanisms(t *testing.T) {
	c, err := core.Compile(hijackSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range sti.RSTIMechanisms {
		res, err := c.Run(mech, core.RunConfig{Hooks: map[int64]vm.Hook{1: hijackHook(t)}})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("%s: corruption not detected (exit %d, err %v)", mech, res.Exit, res.Err)
		}
	}
}

func TestReplayWithinEquivalenceClass(t *testing.T) {
	// Two pointers with the same RSTI-type: substituting one signed value
	// for the other is the replay the paper concedes STWC/STC cannot
	// detect — and STL can, thanks to the location modifier.
	src := `
		int red(void) { return 1; }
		int blue(void) { return 2; }
		int (*ha)(void);
		int (*hb)(void);
		int main(void) {
			ha = red;
			hb = blue;
			__hook(1);
			return ha();
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	replay := func(m *vm.Machine) error {
		// Copy hb's (validly signed) in-memory value over ha's.
		src, _ := m.GlobalAddr("hb")
		dst, _ := m.GlobalAddr("ha")
		v, err := m.Mem.Peek(src, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(dst, v, 8)
	}
	hooks := map[int64]vm.Hook{1: replay}

	for _, tc := range []struct {
		mech     sti.Mechanism
		detected bool
		exit     int64
	}{
		{sti.None, false, 2},  // replay trivially works
		{sti.PARTS, false, 2}, // same basic type: PARTS accepts
		{sti.STWC, false, 2},  // same scope-type: accepted (paper §6.1/§7)
		{sti.STC, false, 2},
		{sti.STL, true, 0}, // location differs: detected
	} {
		res, err := c.Run(tc.mech, core.RunConfig{Hooks: hooks})
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected() != tc.detected {
			t.Errorf("%s: detected = %v, want %v (err %v)", tc.mech, res.Detected(), tc.detected, res.Err)
		}
		if !tc.detected && res.Exit != tc.exit {
			t.Errorf("%s: exit = %d, want %d", tc.mech, res.Exit, tc.exit)
		}
	}
}

func TestCrossScopeSubstitutionDetectedBySTWCNotPARTS(t *testing.T) {
	// Two char* pointers in different scopes: PARTS (type-only) accepts
	// the substitution, RSTI's scope-aware modifiers reject it. This is
	// the DOP-ProFTPd-shaped distinction of §6.1.2.
	src := `
		char *alpha;
		char *omega;
		void seta(void) { alpha = "aaaa"; }
		void seto(void) { omega = "zzzz"; }
		int reader(void) { return (int) strlen(alpha); }
		int main(void) {
			seta();
			seto();
			__hook(1);
			return reader();
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	substitute := func(m *vm.Machine) error {
		src, _ := m.GlobalAddr("omega")
		dst, _ := m.GlobalAddr("alpha")
		v, err := m.Mem.Peek(src, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(dst, v, 8)
	}
	hooks := map[int64]vm.Hook{1: substitute}

	parts, err := c.Run(sti.PARTS, core.RunConfig{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if parts.Detected() {
		t.Error("PARTS detected a same-type substitution — its modifier must be type-only")
	}
	for _, mech := range sti.RSTIMechanisms {
		res, err := c.Run(mech, core.RunConfig{Hooks: hooks})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("%s: cross-scope substitution not detected", mech)
		}
	}
}

func TestArbitraryWriteToDataPointerDetected(t *testing.T) {
	// A data-oriented corruption: point a char* at attacker-chosen bytes.
	src := `
		char *cmdline;
		int check(void) {
			if (strstr(cmdline, "/..") != NULL) return 1;
			return 0;
		}
		int main(void) {
			cmdline = "GET /index.html";
			__hook(1);
			return check();
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(m *vm.Machine) error {
		addr, _ := m.GlobalAddr("cmdline")
		// Redirect to some other mapped memory (the heap base).
		return m.Mem.Poke(addr, vm.HeapBase, 8)
	}
	hooks := map[int64]vm.Hook{1: corrupt}

	base, err := c.Run(sti.None, core.RunConfig{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if base.Err != nil {
		t.Fatalf("baseline trapped: %v", base.Err)
	}
	for _, mech := range sti.RSTIMechanisms {
		res, err := c.Run(mech, core.RunConfig{Hooks: hooks})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("%s: data pointer corruption not detected", mech)
		}
	}
}

func TestInstrumentStatsPopulated(t *testing.T) {
	c, err := core.Compile(soundnessPrograms[2].src) // linked list
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Build(sti.STWC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.Signs == 0 || b.Stats.Auths == 0 {
		t.Errorf("no instrumentation recorded: %+v", b.Stats)
	}
	if b.Stats.Total() < b.Stats.Signs+b.Stats.Auths {
		t.Error("Total undercounts")
	}
	none, err := c.Build(sti.None)
	if err != nil {
		t.Fatal(err)
	}
	if none.Stats.Total() != 0 {
		t.Error("baseline build reports instrumentation")
	}
}

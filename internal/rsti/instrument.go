// Package rsti implements the runtime half of the paper: the
// instrumentation pass that turns an analyzed mir program into a protected
// one by inserting pac/aut/xpac instructions and the pointer-to-pointer
// runtime library calls.
//
// # Enforcement model
//
// The pass maintains the paper's invariant that "all pointers in a program
// always have a PAC on them" (§4.7.1): a pointer value is signed with the
// RSTI-type modifier of the slot it lives in, both in memory and while it
// flows through registers, and is authenticated at its use sites:
//
//   - dereference (the address operand of a load/store, the base of field
//     or index address computation) — the paper's on-load authentication;
//   - pointer arithmetic and (mixed) comparisons;
//   - indirect call targets;
//   - conversion points, where a value signed for one RSTI-type flows
//     into a slot or parameter of a different RSTI-type: the pass emits
//     the aut-then-pac re-signing pair of the paper's Figure 5a. Under
//     STC, merged classes make these pairs vanish (Figure 5b); under STL,
//     the location in the modifier makes every flow a conversion
//     (Figure 5c), which is exactly why STL instruments the most and STC
//     the least.
//
// Pointer values are passed to non-address-taken functions pre-signed with
// the callee parameter's RSTI-type (the caller-side re-signing the paper
// shows at call sites); address-taken functions — which can be reached
// through arbitrary function pointers — and all functions under STL (whose
// parameter modifiers depend on callee stack addresses) receive raw
// arguments and sign them in their own prologue. Arguments to extern
// (uninstrumented library) functions are authenticated at the boundary,
// per the paper's §7: "If a pointer is passed directly to the external
// library, then the pointer will be authenticated first".
package rsti

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rsti/internal/ctypes"
	"rsti/internal/mir"
	"rsti/internal/pa"
	"rsti/internal/sti"
)

// instrumentCount counts real instrumentation passes process-wide (the
// sti.None clone shortcut is excluded: it inserts nothing). It mirrors
// vm.PredecodeCount one pipeline stage earlier: cold-restart tests pin it
// flat to prove a daemon reloading persisted artifact sections never
// re-instruments, and the service surfaces it under /v1/metrics so the
// zero-instrumentation contract is observable over the wire.
var instrumentCount atomic.Int64

// InstrumentCount returns the number of instrumentation passes run so far
// in this process.
func InstrumentCount() int64 { return instrumentCount.Load() }

// Stats counts the instrumentation the pass inserted (static site counts,
// not dynamic executions — the VM's Stats counts executions).
type Stats struct {
	Signs           int // pac instructions inserted
	Auths           int // aut instructions inserted
	Strips          int // xpac instructions at extern boundaries
	ConvPairs       int // aut+pac re-signing pairs (cast / argument conversions)
	PPAdds          int
	PPSigns         int
	PPAuths         int
	PPTags          int // pp_add_tbi insertions
	ProtectedLoads  int // pointer loads now carrying a signed value
	ProtectedStores int // pointer stores now carrying a signed value
	ElidedSigns     int // pac sites skipped for optimizer-elided slots
	ElidedAuths     int // aut sites skipped for optimizer-elided slots
}

// Total returns the total number of inserted PA and pp instructions.
func (s *Stats) Total() int {
	return s.Signs + s.Auths + s.Strips + s.PPAdds + s.PPSigns + s.PPAuths + s.PPTags
}

// add accumulates o into s. Every field is a plain count, so merging
// per-worker stats by summation is order-independent: the merged totals
// are bit-identical regardless of how functions were scheduled.
func (s *Stats) add(o *Stats) {
	s.Signs += o.Signs
	s.Auths += o.Auths
	s.Strips += o.Strips
	s.ConvPairs += o.ConvPairs
	s.PPAdds += o.PPAdds
	s.PPSigns += o.PPSigns
	s.PPAuths += o.PPAuths
	s.PPTags += o.PPTags
	s.ProtectedLoads += o.ProtectedLoads
	s.ProtectedStores += o.ProtectedStores
	s.ElidedSigns += o.ElidedSigns
	s.ElidedAuths += o.ElidedAuths
}

// Options tunes the instrumentation pass, mainly for ablation studies.
type Options struct {
	// DisablePP turns off the pointer-to-pointer CE/FE machinery: no
	// tags are planted and universal double-pointer dereferences fall
	// back to their static (declared) type's modifier. The Figure 7
	// pattern — struct node** cast to void** — then false-positives,
	// which is exactly the ablation demonstrating why §4.7.7 exists.
	DisablePP bool
	// Workers bounds the per-function instrumentation fan-out. Zero means
	// GOMAXPROCS; 1 forces the serial path. Output is bit-identical at
	// every worker count: functions are rewritten independently (register
	// numbering is per-function) and stats merge commutatively.
	Workers int
	// Elide, indexed by VarInfo position, marks variables whose slots skip
	// PAC protection entirely (opt.ElidableVars proves the slot can never
	// hand attacker-corrupted bits to the program). Elided slots hold raw
	// values: stores authenticate incoming signed values instead of
	// re-signing, loads produce raw registers, and both caller and callee
	// parameter sites consult the same set so conventions stay aligned.
	// Nil (the default) disables elision.
	Elide []bool
}

// Instrument clones prog and protects the clone under the given mechanism.
// sti.None returns an untouched clone (the baseline build).
func Instrument(prog *mir.Program, an *sti.Analysis, mech sti.Mechanism) (*mir.Program, *Stats, error) {
	return InstrumentWithOptions(prog, an, mech, Options{})
}

// InstrumentWithOptions is Instrument with pass options.
//
// Functions are instrumented concurrently by a bounded worker set (see
// Options.Workers): each mir.Func is independent — register numbering is
// function-local, the shared Analysis is internally synchronized, and the
// raw-argument convention is precomputed — so the protected program is
// bit-identical to a serial pass regardless of scheduling.
func InstrumentWithOptions(prog *mir.Program, an *sti.Analysis, mech sti.Mechanism, opts Options) (*mir.Program, *Stats, error) {
	stats := &Stats{}
	if mech == sti.None {
		return prog.Clone(), stats, nil
	}
	instrumentCount.Add(1)
	// The pass re-emits every instruction into fresh arenas, so the
	// protected program starts as a skeleton: cloning the source
	// instruction arrays only to discard them would double the copy cost.
	// The source program is never mutated (instructions are rewritten as
	// stack copies; call Args are copied into per-function arenas before
	// the first write).
	out := prog.CloneShell()
	raw := rawConventionFuncs(prog, an, mech)
	type unit struct{ src, dst *mir.Func }
	units := make([]unit, 0, len(out.Funcs))
	for i, fn := range out.Funcs {
		if !fn.Extern {
			units = append(units, unit{src: prog.Funcs[i], dst: fn})
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	if workers <= 1 {
		ins := &inserter{prog: out, an: an, mech: mech, stats: stats, opts: opts, rawConvention: raw}
		for _, u := range units {
			if err := ins.instrumentFunc(u.dst, u.src); err != nil {
				return nil, nil, err
			}
		}
	} else {
		// Work-stealing fan-out: workers pull function indices from a
		// shared counter, so a function-sized straggler cannot idle the
		// pool. Per-worker stats and caches avoid all cross-worker
		// synchronization except the Analysis' own lock; the first error
		// by function order wins, keeping failures deterministic too.
		var (
			next  atomic.Int64
			wg    sync.WaitGroup
			errs  = make([]error, len(units))
			parts = make([]Stats, workers)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ins := &inserter{prog: out, an: an, mech: mech, stats: &parts[w], opts: opts, rawConvention: raw}
				for {
					i := int(next.Add(1)) - 1
					if i >= len(units) {
						return
					}
					errs[i] = ins.instrumentFunc(units[i].dst, units[i].src)
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		for w := range parts {
			stats.add(&parts[w])
		}
	}

	if err := out.Verify(); err != nil {
		return nil, nil, fmt.Errorf("rsti: instrumented program fails verification: %w", err)
	}
	return out, stats, nil
}

// rawConventionFuncs decides which functions receive raw (unsigned)
// pointer arguments: everything under STL (parameter modifiers embed
// callee stack addresses the caller cannot know), and any function whose
// address is taken, since indirect callers cannot know the parameter
// RSTI-types.
func rawConventionFuncs(prog *mir.Program, an *sti.Analysis, mech sti.Mechanism) map[string]bool {
	raw := make(map[string]bool)
	if mech == sti.STL {
		for _, f := range prog.Funcs {
			raw[f.Name] = true
		}
		return raw
	}
	for _, f := range prog.Funcs {
		if f.Extern {
			continue
		}
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				if blk.Instrs[i].Op == mir.FuncAddr {
					raw[blk.Instrs[i].Callee] = true
				}
			}
		}
		// Under Adaptive, a location-bound parameter's modifier depends
		// on the callee's stack address, which callers cannot know:
		// those functions take raw arguments and sign in the prologue.
		if mech == sti.Adaptive {
			for i, pv := range f.ParamVar {
				if pv < 0 || i >= len(f.Params) || !f.Params[i].IsPointer() {
					continue
				}
				if id := an.VarRT[pv]; id >= 0 && an.UsesLocation(id, mech) {
					raw[f.Name] = true
					break
				}
			}
		}
	}
	return raw
}

// sigKind classifies a register's protection state.
type sigKind uint8

const (
	sigRaw sigKind = iota
	sigSigned
	sigSignedPP
)

// signature is the pass's static knowledge about one register.
type signature struct {
	kind  sigKind
	class int     // enforcement class (mechanism-mapped RSTI-type)
	mod   uint64  // static modifier
	loc   mir.Reg // STL location register (slot address), else NoReg
	outer mir.Reg // pp: the tagged outer pointer register
}

func rawSig() signature { return signature{kind: sigRaw, loc: mir.NoReg, outer: mir.NoReg} }

type inserter struct {
	prog  *mir.Program
	an    *sti.Analysis
	mech  sti.Mechanism
	stats *Stats

	rawConvention map[string]bool
	opts          Options

	fn  *mir.Func
	sig []signature
	out []mir.Instr

	// Memoization of Analysis lookups. Modifier resolution hashes an
	// interned key string on every call; a function body revisits the same
	// few slots and types thousands of times, so these per-inserter maps
	// (never shared across workers) turn the steady state into map hits.
	// Keys are stable *ctypes.Type pointers from the analyzed program.
	slotMods map[slotKey]slotMod
	escMods  map[*ctypes.Type]uint64
	feMods   map[*ctypes.Type]uint64

	// Reused scratch storage (per worker): the signature buffer, the
	// instruction accumulator shared by every block of a function, and the
	// block boundary list. Final per-function storage is one exact-size
	// arena, so the steady-state pass allocates once per function.
	sigBuf    []signature
	scratch   []mir.Instr
	blockEnds []int
	argArena  []mir.Reg // per-function call-argument storage (exact-size)
}

// slotKey identifies a slot-modifier lookup: the Slot identity plus the
// accessed type (the defensive EscapedType fallbacks key on it).
type slotKey struct {
	kind  mir.SlotKind
	v     int
	strct *ctypes.Type
	field int
	ty    *ctypes.Type
}

// slotMod is a cached SlotModifier result (location register excluded:
// it is per-access state layered on top by slotSig).
type slotMod struct {
	class  int
	mod    uint64
	useLoc bool
	ok     bool
}

func (ins *inserter) newReg() mir.Reg {
	r := ins.fn.NumRegs
	ins.fn.NumRegs++
	ins.sig = append(ins.sig, rawSig())
	return r
}

func (ins *inserter) emit(in mir.Instr) { ins.out = append(ins.out, in) }

func (ins *inserter) setSig(r mir.Reg, s signature) {
	for r >= len(ins.sig) {
		ins.sig = append(ins.sig, rawSig())
	}
	ins.sig[r] = s
}

func (ins *inserter) sigOf(r mir.Reg) signature {
	if r == mir.NoReg || r >= len(ins.sig) {
		return rawSig()
	}
	return ins.sig[r]
}

// elided reports whether slot belongs to an optimizer-elided variable
// (see Options.Elide). Elided slots carry raw values by convention.
func (ins *inserter) elided(slot mir.Slot) bool {
	return slot.Kind == mir.SlotVar && slot.Var >= 0 &&
		slot.Var < len(ins.opts.Elide) && ins.opts.Elide[slot.Var]
}

// slotSig computes the signature a value stored in the given slot carries.
func (ins *inserter) slotSig(slot mir.Slot, ty *ctypes.Type, addr mir.Reg) (signature, bool) {
	if ins.elided(slot) {
		return rawSig(), false
	}
	key := slotKey{kind: slot.Kind, v: slot.Var, strct: slot.Struct, field: slot.Field, ty: ty}
	sm, hit := ins.slotMods[key]
	if !hit {
		sm.class, sm.mod, sm.useLoc, sm.ok = ins.an.SlotModifier(slot, ty, ins.mech)
		if ins.slotMods == nil {
			ins.slotMods = make(map[slotKey]slotMod)
		}
		ins.slotMods[key] = sm
	}
	if !sm.ok {
		return rawSig(), false
	}
	loc := mir.NoReg
	if sm.useLoc {
		loc = addr
	}
	return signature{kind: sigSigned, class: sm.class, mod: sm.mod, loc: loc, outer: mir.NoReg}, true
}

// escapedModifier memoizes the escaped-type fallback modifier for a
// pointer type (the universal double-pointer dereference path).
func (ins *inserter) escapedModifier(ty *ctypes.Type) uint64 {
	if m, ok := ins.escMods[ty]; ok {
		return m
	}
	m := ins.an.Modifier(ins.an.EscapedType(ty).ID, ins.mech)
	if ins.escMods == nil {
		ins.escMods = make(map[*ctypes.Type]uint64)
	}
	ins.escMods[ty] = m
	return m
}

// feModifier memoizes FEModifierFor per FE inner type.
func (ins *inserter) feModifier(fe *ctypes.Type) uint64 {
	if m, ok := ins.feMods[fe]; ok {
		return m
	}
	m := ins.an.FEModifierFor(fe, ins.mech)
	if ins.feMods == nil {
		ins.feMods = make(map[*ctypes.Type]uint64)
	}
	ins.feMods[fe] = m
	return m
}

// auth emits an aut (or pp_auth) making reg raw, returning the raw reg.
func (ins *inserter) auth(reg mir.Reg) mir.Reg {
	s := ins.sigOf(reg)
	switch s.kind {
	case sigRaw:
		return reg
	case sigSignedPP:
		dst := ins.newReg()
		imm := int64(0)
		if ins.mech == sti.STL {
			imm = 1
		}
		ins.emit(mir.Instr{Op: mir.PPAuth, Dst: dst, A: s.outer, B: reg, Mod: s.mod, Key: uint8(pa.KeyDA), Imm: imm})
		ins.stats.PPAuths++
		ins.setSig(dst, rawSig())
		return dst
	default:
		dst := ins.newReg()
		ins.emit(mir.Instr{Op: mir.PacAuth, Dst: dst, A: reg, B: s.loc, Mod: s.mod, Key: uint8(pa.KeyDA)})
		ins.stats.Auths++
		ins.setSig(dst, rawSig())
		return dst
	}
}

// signAs converts reg to carry the target signature, inserting aut/pac as
// needed, and returns the register holding the converted value.
func (ins *inserter) signAs(reg mir.Reg, want signature) mir.Reg {
	s := ins.sigOf(reg)
	if want.kind == sigRaw {
		return ins.auth(reg)
	}
	if s.kind == sigSigned && want.kind == sigSigned &&
		s.class == want.class && s.loc == want.loc {
		return reg // already carries the right PAC
	}
	raw := reg
	if s.kind != sigRaw {
		raw = ins.auth(reg)
		ins.stats.ConvPairs++
	}
	dst := ins.newReg()
	ins.emit(mir.Instr{Op: mir.PacSign, Dst: dst, A: raw, B: want.loc, Mod: want.mod, Key: uint8(pa.KeyDA)})
	ins.stats.Signs++
	ins.setSig(dst, want)
	return dst
}

// universalPPDeref reports whether an anonymous memory access through addr
// is a universal double-pointer dereference, whose inner pointer's
// modifier must come from the CE/FE machinery. Named slots (variables,
// fields) never qualify: their Slot metadata identifies the RSTI-type
// statically, even though the *address* of a char* variable is itself a
// char**.
func (ins *inserter) universalPPDeref(fo *sti.FuncOrigins, in *mir.Instr) bool {
	if in.Slot.Kind != mir.SlotNone {
		return false
	}
	if in.Ty == nil || !in.Ty.IsPointer() {
		return false
	}
	addr := in.A
	if addr == mir.NoReg || fo == nil || addr >= len(fo.Regs) {
		return false
	}
	o := fo.Regs[addr]
	if o.Kind == sti.OriginSlotAddr || o.Kind == sti.OriginNone {
		return false
	}
	return o.Ty != nil && sti.IsUniversalMultiPointer(o.Ty)
}

// maybeTagPP plants the Compact Equivalent tag (and registers the FE
// chain) on a value that is a multi-level pointer cast to a universal
// multi-pointer — at the point it escapes into a call or a store, so any
// later dereference can resolve the original type (§4.7.7). Returns the
// (possibly re-tagged) register.
func (ins *inserter) maybeTagPP(arg mir.Reg, fo *sti.FuncOrigins) mir.Reg {
	if ins.opts.DisablePP || fo == nil || arg == mir.NoReg || arg >= len(fo.Regs) {
		return arg
	}
	o := fo.Regs[arg]
	if !(o.Casted && o.CastFrom != nil && o.CastFrom.PointerDepth() >= 2 &&
		sti.IsUniversalMultiPointer(o.Ty) &&
		!o.CastFrom.Elem.Unqualified().Equal(o.Ty.Elem.Unqualified())) {
		return arg
	}
	ce, ok := ins.an.CEOf(o.CastFrom.Elem)
	if !ok {
		return arg
	}
	// Register the FE chain: one entry per indirection level, each linked
	// to the next level's CE so that pp_auth can re-tag as it peels.
	fe := o.CastFrom.Elem
	for level := ce; level != 0; {
		inner := ins.an.CEInner(level)
		feMod := ins.feModifier(fe)
		ins.emit(mir.Instr{Op: mir.PPAdd, Dst: mir.NoReg, A: mir.NoReg, B: mir.NoReg,
			CE: level, Mod: feMod, Imm: int64(inner)})
		ins.stats.PPAdds++
		level = inner
		if fe.IsPointer() {
			fe = fe.Elem
		}
	}
	tagged := ins.newReg()
	ins.emit(mir.Instr{Op: mir.PPAddTBI, Dst: tagged, A: arg, B: mir.NoReg, CE: ce})
	ins.stats.PPTags++
	ins.setSig(tagged, ins.sigOf(arg))
	return tagged
}

// instrumentFunc protects dst by re-emitting src's instructions plus the
// inserted PA ops. src is read-only: instructions are rewritten as stack
// copies, and call Args are copied into dst's argument arena before any
// register rewrite touches them.
func (ins *inserter) instrumentFunc(fn, src *mir.Func) error {
	ins.fn = fn
	if cap(ins.sigBuf) < fn.NumRegs {
		ins.sigBuf = make([]signature, fn.NumRegs+fn.NumRegs/2)
	}
	ins.sig = ins.sigBuf[:fn.NumRegs]
	for i := range ins.sig {
		ins.sig[i] = rawSig()
	}
	fo := ins.an.Origins[fn.Name]

	// Parameter registers arrive pre-signed under the signed-args
	// convention.
	if !ins.rawConvention[fn.Name] {
		for i, pv := range fn.ParamVar {
			if pv < 0 || i >= len(fn.Params) || !fn.Params[i].IsPointer() {
				continue
			}
			if s, ok := ins.slotSig(mir.Slot{Kind: mir.SlotVar, Var: pv}, fn.Params[i], mir.NoReg); ok {
				// Location is not part of caller-side signing; under the
				// signed convention mech != STL, so loc is NoReg anyway.
				ins.setSig(i, s)
			}
		}
	}

	// One exact-size argument arena per function: call-site Args are
	// copied here before rewriting, keeping src untouched without a
	// per-call allocation.
	nArgs := 0
	for _, blk := range src.Blocks {
		for i := range blk.Instrs {
			nArgs += len(blk.Instrs[i].Args)
		}
	}
	ins.argArena = make([]mir.Reg, 0, nArgs)

	// Emit every block into one reused scratch accumulator, recording
	// block boundaries, then copy into a single exact-size arena the
	// blocks subslice (capacity-capped, so blocks stay independent). The
	// steady state allocates one instruction backing array per function
	// instead of a 2x-capacity guess per block.
	ins.out = ins.scratch[:0]
	ins.blockEnds = ins.blockEnds[:0]
	for _, blk := range src.Blocks {
		for idx := range blk.Instrs {
			in := blk.Instrs[idx] // copy
			ins.instr(&in, fo)
		}
		ins.blockEnds = append(ins.blockEnds, len(ins.out))
	}
	arena := make([]mir.Instr, len(ins.out))
	copy(arena, ins.out)
	start := 0
	for i, blk := range fn.Blocks {
		end := ins.blockEnds[i]
		blk.Instrs = arena[start:end:end]
		start = end
	}
	ins.scratch = ins.out[:0]

	// Retain grown buffers for the next function this worker handles.
	if cap(ins.sig) > cap(ins.sigBuf) {
		ins.sigBuf = ins.sig
	}
	return nil
}

// instr rewrites one instruction, emitting it (plus any inserted PA ops)
// into ins.out.
func (ins *inserter) instr(in *mir.Instr, fo *sti.FuncOrigins) {
	switch in.Op {
	case mir.Load:
		isPP := ins.universalPPDeref(fo, in)
		outerRaw := ins.auth(in.A) // dereference authentication
		in.A = outerRaw
		ins.emit(*in)
		if in.Ty != nil && in.Ty.IsPointer() {
			if isPP {
				ins.stats.ProtectedLoads++
				fallback := ins.escapedModifier(in.Ty)
				ins.setSig(in.Dst, signature{kind: sigSignedPP, mod: fallback, outer: outerRaw, loc: mir.NoReg})
			} else if ins.elided(in.Slot) {
				// The slot holds a raw value; the auth a signed load would
				// have required at the consuming site is gone.
				ins.stats.ElidedAuths++
				ins.setSig(in.Dst, rawSig())
			} else {
				ins.stats.ProtectedLoads++
				if s, ok := ins.slotSig(in.Slot, in.Ty, outerRaw); ok {
					ins.setSig(in.Dst, s)
				}
			}
		} else if in.Dst != mir.NoReg {
			ins.setSig(in.Dst, rawSig())
		}

	case mir.Store:
		isPP := ins.universalPPDeref(fo, in)
		outerRaw := ins.auth(in.A)
		in.A = outerRaw
		if in.Ty != nil && in.Ty.IsPointer() {
			if isPP {
				ins.stats.ProtectedStores++
				raw := ins.auth(in.B)
				dst := ins.newReg()
				imm := int64(0)
				if ins.mech == sti.STL {
					imm = 1
				}
				fallback := ins.escapedModifier(in.Ty)
				ins.emit(mir.Instr{Op: mir.PPSign, Dst: dst, A: outerRaw, B: raw, Mod: fallback, Key: uint8(pa.KeyDA), Imm: imm})
				ins.stats.PPSigns++
				in.B = dst
			} else if ins.elided(in.Slot) {
				// Elided slots hold raw values: authenticate anything
				// signed instead of (re-)signing it for the slot.
				ins.stats.ElidedSigns++
				in.B = ins.auth(in.B)
			} else {
				ins.stats.ProtectedStores++
				if want, ok := ins.slotSig(in.Slot, in.Ty, outerRaw); ok {
					in.B = ins.maybeTagPP(in.B, fo)
					in.B = ins.signAs(in.B, want)
				}
			}
		}
		ins.emit(*in)

	case mir.FieldAddr, mir.IndexAddr:
		in.A = ins.auth(in.A)
		if in.Op == mir.IndexAddr {
			in.B = ins.auth(in.B)
		}
		ins.emit(*in)
		ins.setSig(in.Dst, rawSig())

	case mir.BinInstr:
		in.A = ins.auth(in.A)
		in.B = ins.auth(in.B)
		ins.emit(*in)
		ins.setSig(in.Dst, rawSig())

	case mir.CmpInstr:
		sa, sb := ins.sigOf(in.A), ins.sigOf(in.B)
		eqish := in.CmpSub == mir.Eq || in.CmpSub == mir.Ne
		if eqish && sa.kind == sigSigned && sb.kind == sigSigned &&
			sa.class == sb.class && sa.loc == sb.loc {
			// Equal addresses signed identically produce equal PACs: the
			// comparison is valid on the signed values, no aut needed.
		} else {
			in.A = ins.auth(in.A)
			in.B = ins.auth(in.B)
		}
		ins.emit(*in)
		ins.setSig(in.Dst, rawSig())

	case mir.CastOp:
		// Pointer bitcasts carry the signature through; the re-signing
		// cost appears at the consuming slot or call (Figure 5a's pairs).
		ins.emit(*in)
		if in.Dst != mir.NoReg {
			if in.Ty != nil && in.Ty.IsPointer() && in.FromTy != nil && in.FromTy.IsPointer() {
				ins.setSig(in.Dst, ins.sigOf(in.A))
			} else {
				// Non-pointer casts need raw input semantics only when
				// the value is consumed arithmetically; int<->pointer
				// casts keep bits, so keep the signature for ptr->int?
				// No: an integer is freely computable, so authenticate.
				if s := ins.sigOf(in.A); s.kind != sigRaw {
					// Rewrite: authenticate before converting.
					ins.out = ins.out[:len(ins.out)-1]
					in.A = ins.auth(in.A)
					ins.emit(*in)
				}
				ins.setSig(in.Dst, rawSig())
			}
		}

	case mir.CallOp:
		ins.call(in, fo)

	case mir.RetOp:
		if in.A != mir.NoReg {
			in.A = ins.auth(in.A)
		}
		ins.emit(*in)

	case mir.Br:
		in.A = ins.auth(in.A)
		ins.emit(*in)

	default:
		ins.emit(*in)
		if in.Dst != mir.NoReg {
			ins.setSig(in.Dst, rawSig())
		}
	}
}

func (ins *inserter) call(in *mir.Instr, fo *sti.FuncOrigins) {
	var callee *mir.Func
	if in.Callee != "" {
		callee = ins.prog.ByName[in.Callee]
	} else {
		in.A = ins.auth(in.A) // indirect target must be raw for the token check
	}

	// Detach Args from the (read-only) source program before rewriting.
	// The arena was sized in instrumentFunc, so this never reallocates.
	if len(in.Args) > 0 {
		base := len(ins.argArena)
		ins.argArena = append(ins.argArena, in.Args...)
		in.Args = ins.argArena[base : base+len(in.Args) : base+len(in.Args)]
	}

	for i, arg := range in.Args {
		// Pointer-to-pointer tagging: a double pointer cast to a
		// universal multi-pointer crossing a call boundary gets its
		// Compact Equivalent tag and FE registration (§4.7.7).
		if tagged := ins.maybeTagPP(arg, fo); tagged != arg {
			in.Args[i] = tagged
			arg = tagged
		}

		switch {
		case callee != nil && callee.Extern:
			// Uninstrumented library boundary. Per §7 ("If a pointer is
			// passed directly to the external library, then the pointer
			// will be authenticated first"), the PAC is verified and
			// removed, so corruption is caught even when the only
			// consumer is library code; xpac-only stripping would let it
			// through silently.
			in.Args[i] = ins.auth(arg)
		case callee != nil && !ins.rawConvention[callee.Name]:
			// Signed-args convention: deliver the parameter's PAC.
			if i < len(callee.ParamVar) && callee.ParamVar[i] >= 0 && i < len(callee.Params) && callee.Params[i].IsPointer() {
				want, ok := ins.slotSig(mir.Slot{Kind: mir.SlotVar, Var: callee.ParamVar[i]}, callee.Params[i], mir.NoReg)
				if ok {
					in.Args[i] = ins.signAs(arg, want)
					continue
				}
			}
			in.Args[i] = ins.auth(arg)
		default:
			// Raw-args convention (address-taken callees, indirect calls,
			// STL): the callee prologue signs.
			in.Args[i] = ins.auth(arg)
		}
	}
	ins.emit(*in)
	if in.Dst != mir.NoReg {
		ins.setSig(in.Dst, rawSig()) // pointer returns are normalized to raw
	}
}

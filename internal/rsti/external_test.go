package rsti_test

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// The paper's §7 "Handling external code": a pointer passed *directly* to
// an uninstrumented library is authenticated at the boundary and works;
// but a composite object whose fields hold protected pointers (a linked
// list node) cannot be traversed by the library, because the embedded
// pointers are signed and the library performs no authentication. These
// tests pin both halves of that documented behaviour.
const externalListSrc = `
	struct node { struct node *next; int v; };
	extern long external_walk(struct node *head);
	int main(void) {
		struct node *a = (struct node*) malloc(sizeof(struct node));
		struct node *b = (struct node*) malloc(sizeof(struct node));
		a->v = 1;
		a->next = b;
		b->v = 2;
		b->next = NULL;
		return (int) external_walk(a);
	}
`

// externalWalk is the uninstrumented library routine: it follows next
// pointers with raw loads, faulting on any non-canonical address — what
// real library code would do with a signed pointer.
func externalWalk(m *vm.Machine, args []uint64) (uint64, error) {
	cur := args[0]
	var sum uint64
	for cur != 0 {
		if !m.Unit.IsCanonical(cur) {
			return 0, &vm.Trap{Kind: vm.TrapNonCanonical, Fn: "external_walk",
				Msg: "library dereferenced a signed pointer"}
		}
		v, err := m.Mem.Peek(cur+8, 4)
		if err != nil {
			return 0, err
		}
		sum += v
		next, err := m.Mem.Peek(cur, 8)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return sum, nil
}

func TestExternalDirectPointerWorks(t *testing.T) {
	// The head pointer itself is authenticated at the call boundary, so
	// the library receives a raw, usable address under every mechanism.
	c, err := core.Compile(externalListSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(sti.None, core.RunConfig{
		Externs: map[string]func(*vm.Machine, []uint64) (uint64, error){"external_walk": externalWalk},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Exit != 3 {
		t.Fatalf("baseline: exit=%d err=%v", res.Exit, res.Err)
	}
}

func TestExternalCompositeTraversalLimitation(t *testing.T) {
	// Under RSTI the embedded next pointer is signed; the library's raw
	// traversal hits a non-canonical address — the exact incompatibility
	// the paper concedes ("the external library could be compiled with
	// RSTI if needed").
	c, err := core.Compile(externalListSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range sti.RSTIMechanisms {
		res, err := c.Run(mech, core.RunConfig{
			Externs: map[string]func(*vm.Machine, []uint64) (uint64, error){"external_walk": externalWalk},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err == nil {
			t.Errorf("%s: library traversed signed composite pointers — the boundary model is broken", mech)
			continue
		}
		tr, ok := vm.AsTrap(res.Err)
		if !ok || tr.Kind != vm.TrapNonCanonical {
			t.Errorf("%s: unexpected failure %v", mech, res.Err)
		}
	}
}

// TestExternalRSTIAwareLibraryWorks: the paper's remedy — compile the
// library with RSTI — modelled by a library that authenticates embedded
// pointers with the correct RSTI modifier before following them.
func TestExternalRSTIAwareLibraryWorks(t *testing.T) {
	c, err := core.Compile(externalListSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The "recompiled" library knows the next field's modifier.
	var fieldMod uint64
	an := c.Analysis
	for fk, id := range an.FieldRT {
		if fk.Struct == "node" && fk.Field == 0 {
			fieldMod = an.Modifier(id, sti.STWC)
		}
	}
	if fieldMod == 0 {
		t.Fatal("node.next modifier not found")
	}
	aware := func(m *vm.Machine, args []uint64) (uint64, error) {
		cur := args[0]
		var sum uint64
		for cur != 0 {
			v, err := m.Mem.Peek(cur+8, 4)
			if err != nil {
				return 0, err
			}
			sum += v
			next, err := m.Mem.Peek(cur, 8)
			if err != nil {
				return 0, err
			}
			if next != 0 {
				authed, ok := m.Unit.Auth(next, 2 /* KeyDA */, fieldMod)
				if !ok {
					return 0, &vm.Trap{Kind: vm.TrapAuthFailure, Fn: "external_walk", Msg: "bad next"}
				}
				next = authed
			}
			cur = next
		}
		return sum, nil
	}
	res, err := c.Run(sti.STWC, core.RunConfig{
		Externs: map[string]func(*vm.Machine, []uint64) (uint64, error){"external_walk": aware},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.Exit != 3 {
		t.Errorf("RSTI-aware library failed: exit=%d err=%v", res.Exit, res.Err)
	}
}

package rsti_test

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// inheritanceSrc models C++ inheritance the way the paper's §4.7.5
// describes LLVM lowering it: a derived object whose first member is the
// base, accessed through base-class pointers via bitcasts.
const inheritanceSrc = `
	struct Base { int (*vcall)(void); int tag; };
	struct Child { struct Base base; int extra; };

	int base_impl(void) { return 10; }
	int child_impl(void) { return 20; }
	int attacker_impl(void) { return 666; }

	struct Child *obj;

	int invoke(struct Base *b) {
		__hook(1);
		return b->vcall();
	}

	int main(void) {
		obj = (struct Child*) malloc(sizeof(struct Child));
		obj->base.vcall = child_impl;
		obj->base.tag = 1;
		obj->extra = 7;
		// The inheritance bitcast: Child* used as Base*.
		struct Base *as_base = (struct Base*) obj;
		return invoke(as_base);
	}
`

// TestInheritancePunningSound: the upcast and the virtual-style call work
// under every mechanism (type punning handled per §4.7.5).
func TestInheritancePunningSound(t *testing.T) {
	c, err := core.Compile(inheritanceSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range append(append([]sti.Mechanism{}, sti.Mechanisms...), sti.Adaptive) {
		res, err := c.Run(mech, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Errorf("%s: benign inheritance trapped: %v", mech, res.Err)
			continue
		}
		if res.Exit != 20 {
			t.Errorf("%s: exit = %d, want 20", mech, res.Exit)
		}
	}
}

// TestInheritanceVtableHijackDetected: overwriting the "vtable slot"
// (base.vcall) through the heap is the COOP-style corruption; RSTI's
// field-sensitive RSTI-types catch it.
func TestInheritanceVtableHijackDetected(t *testing.T) {
	c, err := core.Compile(inheritanceSrc)
	if err != nil {
		t.Fatal(err)
	}
	hijack := map[int64]vm.Hook{1: func(m *vm.Machine) error {
		slot, _ := m.GlobalAddr("obj")
		objAddr, err := m.Mem.Peek(slot, 8)
		if err != nil {
			return err
		}
		tok, _ := m.FuncToken("attacker_impl")
		return m.Mem.Poke(m.Unit.Canonical(objAddr), tok, 8)
	}}

	base, err := c.Run(sti.None, core.RunConfig{Hooks: hijack})
	if err != nil {
		t.Fatal(err)
	}
	if base.Exit != 666 {
		t.Fatalf("baseline hijack failed: exit=%d err=%v", base.Exit, base.Err)
	}
	for _, mech := range sti.RSTIMechanisms {
		res, err := c.Run(mech, core.RunConfig{Hooks: hijack})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Detected() {
			t.Errorf("%s: vtable-style hijack undetected", mech)
		}
	}
}

// TestCastPunningRoundTrip: the paper's type-punning case — two pointers
// viewing one allocation as different types via casts — stays sound, and
// STC merges the two views while STWC keeps them distinct.
func TestCastPunningRoundTrip(t *testing.T) {
	src := `
		struct words { long lo; long hi; };
		struct halves { int a; int b; int c; int d; };
		int main(void) {
			struct words *w = (struct words*) malloc(sizeof(struct words));
			w->lo = 0x0000000200000001;
			w->hi = 0;
			struct halves *h = (struct halves*) w;
			return h->a * 10 + h->b;
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range sti.Mechanisms {
		res, err := c.Run(mech, core.RunConfig{})
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v %v", mech, err, res.Err)
		}
		if res.Exit != 12 {
			t.Errorf("%s: exit = %d, want 12", mech, res.Exit)
		}
	}
	// Analysis view: the punning cast merges under STC only.
	an := c.Analysis
	var wRT, hRT int = -1, -1
	for i, v := range c.Prog.Vars {
		switch v.Name {
		case "w":
			wRT = an.VarRT[i]
		case "h":
			hRT = an.VarRT[i]
		}
	}
	if wRT < 0 || hRT < 0 {
		t.Fatal("vars not found")
	}
	if an.ClassOf(wRT, sti.STWC) == an.ClassOf(hRT, sti.STWC) {
		t.Error("STWC merged the punned views")
	}
	if an.ClassOf(wRT, sti.STC) != an.ClassOf(hRT, sti.STC) {
		t.Error("STC did not merge the punned views")
	}
}

// TestStoredUniversalDoublePointer: a T** cast to void** and *stored* in a
// struct (not just passed) must still dereference correctly later — the
// "stored in another struct" case of §4.7.7, which requires the CE tag to
// travel through memory.
func TestStoredUniversalDoublePointer(t *testing.T) {
	src := `
		struct node { int key; };
		struct bag { void **slot; int id; };
		int use_bag(struct bag *b) {
			if (*b->slot != NULL) {
				*b->slot = NULL;
				return 1;
			}
			return 0;
		}
		int main(void) {
			struct node *p = (struct node*) malloc(sizeof(struct node));
			p->key = 9;
			struct bag *b = (struct bag*) malloc(sizeof(struct bag));
			b->slot = (void**) &p;
			b->id = 1;
			int cleared = use_bag(b);
			if (p == NULL) return cleared + 10;
			return 0;
		}
	`
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range append(append([]sti.Mechanism{}, sti.Mechanisms...), sti.Adaptive) {
		res, err := c.Run(mech, core.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Errorf("%s: stored-pp pattern trapped: %v", mech, res.Err)
			continue
		}
		if res.Exit != 11 {
			t.Errorf("%s: exit = %d, want 11", mech, res.Exit)
		}
	}
}

package engine

import (
	"context"
	"sync"
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// TestPredecodeSharedAcrossRunsAndWorkers pins the shared-image contract:
// after a build's image is warm, any number of direct Program runs and
// pooled engine submissions — across optimizer modes — execute without a
// single additional predecode pass. Run under -race this also exercises
// the immutability of the shared image from concurrent machines.
func TestPredecodeSharedAcrossRunsAndWorkers(t *testing.T) {
	c := compile(t, quickSrc)
	mechs := []sti.Mechanism{sti.STWC, sti.STL}
	modes := []core.OptimizeMode{core.OptimizeOff, core.OptimizeOn}

	// Warm-up: one image per (mechanism, optimized) build.
	for _, mech := range mechs {
		for _, mode := range modes {
			if _, err := c.Run(mech, core.RunConfig{Optimize: mode}); err != nil {
				t.Fatalf("warm-up %s: %v", mech, err)
			}
		}
	}

	e := New(Config{Workers: 4})
	defer e.Close()

	base := vm.PredecodeCount()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				mech := mechs[(g+r)%len(mechs)]
				cfg := core.RunConfig{Optimize: modes[r%len(modes)]}
				var err error
				if g%2 == 0 {
					_, err = c.Run(mech, cfg)
				} else {
					_, err = e.Submit(context.Background(), Job{Comp: c, Mech: mech, Cfg: cfg})
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := vm.PredecodeCount(); got != base {
		t.Errorf("%d extra predecode passes after warm-up; runs must share the build image", got-base)
	}
}

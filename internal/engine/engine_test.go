package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// spinSrc runs long enough (hundreds of millions of steps) that a test
// can reliably cancel it mid-run.
const spinSrc = `
int main(void) {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 100000000; i = i + 1) { acc = acc + i; }
    return acc & 127;
}
`

// quickSrc is a small pointer workload with a deterministic exit.
const quickSrc = `
int g;
int main(void) {
    int *p; int i;
    p = &g;
    for (i = 0; i < 100; i = i + 1) { *p = *p + i; }
    return *p & 127;
}
`

// hookSrc calls the attack hook once, which tests abuse to block or
// panic mid-run.
const hookSrc = `
int main(void) { __hook(1); return 7; }
`

func compile(t *testing.T, src string) *core.Compilation {
	t.Helper()
	c, err := core.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func TestSubmitBasic(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	c := compile(t, quickSrc)

	want, err := c.Run(sti.STWC, core.RunConfig{})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	res, err := e.Submit(context.Background(), Job{Comp: c, Mech: sti.STWC})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Exit != want.Exit || res.Stats.Cycles != want.Stats.Cycles {
		t.Errorf("engine run differs: exit %d/%d cycles %d/%d",
			res.Exit, want.Exit, res.Stats.Cycles, want.Stats.Cycles)
	}
	st := e.Stats()
	if st.Completed != 1 || st.Instrs != want.Stats.Instrs {
		t.Errorf("stats = %+v, want 1 completed, %d instrs", st, want.Stats.Instrs)
	}
}

// TestBitIdenticalAcrossWorkers runs the same program many times across
// warm workers and checks every reported number matches a cold
// single-threaded run: worker-state reuse must be invisible.
func TestBitIdenticalAcrossWorkers(t *testing.T) {
	e := New(Config{Workers: 4, QueueDepth: 64})
	defer e.Close()
	c := compile(t, quickSrc)
	want, err := c.Run(sti.STL, core.RunConfig{})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Submit(context.Background(), Job{Comp: c, Mech: sti.STL})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			if res.Exit != want.Exit || res.Stats != want.Stats {
				// Stats includes PAC cache hit/miss counters, which ARE
				// allowed to differ on warm workers — compare the
				// modelled fields only.
				if res.Stats.Cycles != want.Stats.Cycles ||
					res.Stats.Instrs != want.Stats.Instrs ||
					res.Stats.PacSigns != want.Stats.PacSigns ||
					res.Stats.PacAuths != want.Stats.PacAuths ||
					res.Exit != want.Exit {
					t.Errorf("run differs: exit %d cycles %d vs %d",
						res.Exit, res.Stats.Cycles, want.Stats.Cycles)
				}
			}
		}()
	}
	wg.Wait()
}

func TestCancellationMidRun(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	c := compile(t, spinSrc)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := e.Submit(ctx, Job{Comp: c, Mech: sti.None})
	// The run is stopped by the interpreter checkpoint, so it comes back
	// as a RunResult with a cancellation trap — not a transport error.
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit: %v", err)
		}
		return
	}
	if res.Trap == nil || res.Trap.Kind != vm.TrapCancelled {
		t.Fatalf("want cancellation trap, got %+v", res)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("errors.Is(res.Err, context.Canceled) = false; err = %v", res.Err)
	}
	if e.Stats().Cancelled != 1 {
		t.Errorf("stats.Cancelled = %d, want 1", e.Stats().Cancelled)
	}
}

func TestDeadlineMidRun(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	c := compile(t, spinSrc)

	res, err := e.Submit(context.Background(), Job{
		Comp: c, Mech: sti.None,
		Cfg: core.RunConfig{Timeout: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Trap == nil || res.Trap.Kind != vm.TrapCancelled {
		t.Fatalf("want cancellation trap, got exit=%d err=%v", res.Exit, res.Err)
	}
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(res.Err, DeadlineExceeded) = false; err = %v", res.Err)
	}
}

// TestQueueFullBackpressure fills the single worker with a blocked run
// and the queue with a waiting one, then verifies TrySubmit sheds load
// and Submit blocks until capacity frees.
func TestQueueFullBackpressure(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close()
	c := compile(t, hookSrc)

	gate := make(chan struct{})
	started := make(chan struct{})
	blockJob := Job{Comp: c, Mech: sti.None, Cfg: core.RunConfig{
		Hooks: map[int64]vm.Hook{1: func(m *vm.Machine) error {
			close(started)
			<-gate
			return nil
		}},
	}}
	quick := Job{Comp: c, Mech: sti.None, Cfg: core.RunConfig{
		Hooks: map[int64]vm.Hook{1: func(m *vm.Machine) error { return nil }},
	}}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); e.Submit(context.Background(), blockJob) }()
	<-started // worker is now parked in the hook

	// Fill the queue.
	wg.Add(1)
	go func() { defer wg.Done(); e.Submit(context.Background(), quick) }()
	waitFor(t, func() bool { return e.Stats().Queued == 1 })

	if _, err := e.TrySubmit(context.Background(), quick); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit = %v, want ErrQueueFull", err)
	}
	if e.Stats().Rejected != 1 {
		t.Errorf("stats.Rejected = %d, want 1", e.Stats().Rejected)
	}

	// A blocking Submit with a short context times out instead of
	// queueing.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := e.Submit(ctx, quick); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Submit = %v, want DeadlineExceeded", err)
	}

	// Free the worker; everything drains.
	close(gate)
	wg.Wait()
	if st := e.Stats(); st.Completed != 2 {
		t.Errorf("stats.Completed = %d, want 2", st.Completed)
	}
}

// TestPanicIsolation submits a run whose hook panics and verifies the
// submitter gets ErrPanic, the worker survives, and subsequent runs on
// the same (rebuilt) worker are correct.
func TestPanicIsolation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Close()
	c := compile(t, hookSrc)

	poison := Job{Comp: c, Mech: sti.STWC, Cfg: core.RunConfig{
		Hooks: map[int64]vm.Hook{1: func(m *vm.Machine) error { panic("poisoned run") }},
	}}
	if _, err := e.Submit(context.Background(), poison); !errors.Is(err, ErrPanic) {
		t.Fatalf("poisoned submit = %v, want ErrPanic", err)
	}
	if st := e.Stats(); st.Panicked != 1 {
		t.Errorf("stats.Panicked = %d, want 1", st.Panicked)
	}

	// The engine must keep serving correct results afterwards.
	cq := compile(t, quickSrc)
	want, _ := cq.Run(sti.STWC, core.RunConfig{})
	res, err := e.Submit(context.Background(), Job{Comp: cq, Mech: sti.STWC})
	if err != nil {
		t.Fatalf("post-panic submit: %v", err)
	}
	if res.Exit != want.Exit || res.Stats.Cycles != want.Stats.Cycles {
		t.Errorf("post-panic run differs: exit %d/%d", res.Exit, want.Exit)
	}
}

func TestSubmitFunc(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Close()
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for i := 1; i <= 10; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			err := e.SubmitFunc(context.Background(), func(ctx context.Context) error {
				mu.Lock()
				total += n
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Errorf("SubmitFunc: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if total != 55 {
		t.Errorf("total = %d, want 55", total)
	}
}

func TestCloseRejectsAndCancels(t *testing.T) {
	e := New(Config{Workers: 1})
	c := compile(t, spinSrc)

	done := make(chan error, 1)
	go func() {
		res, err := e.Submit(context.Background(), Job{Comp: c, Mech: sti.None})
		if err != nil {
			done <- err
			return
		}
		done <- res.Err
	}()
	waitFor(t, func() bool { return e.Stats().Running == 1 })
	e.Close()

	select {
	case err := <-done:
		// Either the shutdown cancelled the in-flight run (cancellation
		// trap) or the submitter observed the close.
		if err == nil {
			t.Fatalf("long run finished cleanly despite Close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submit did not return after Close")
	}

	if _, err := e.Submit(context.Background(), Job{Comp: c, Mech: sti.None}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// Package engine is the concurrent execution service behind rsti.Engine
// and cmd/rstid: a long-lived, sharded pool of VM workers serving runs of
// compiled programs in the paper's compile-once/run-many shape (§6.6's
// server workloads).
//
// Each worker owns a vm.WorkerState — a call-frame pool and warm PAC
// memoization caches — that successive runs on that worker reuse, so
// steady-state serving allocates no frames and keeps PAC hit rates high
// across requests. Jobs enter through a bounded queue: Submit applies
// backpressure by blocking (until the job is accepted, the caller's
// context is done, or the engine closes), TrySubmit fails fast with
// ErrQueueFull. A run that panics poisons only its worker's reusable
// state, which is discarded and rebuilt; the engine itself keeps serving.
//
// Reported numbers are unaffected by the engine: a run's cycles, trap
// outcome and equivalence statistics are bit-identical to the same run
// executed single-threaded, because every job gets its own vm.Machine and
// worker-state reuse is observable only through host-side cache counters.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// Engine errors, matched with errors.Is.
var (
	// ErrQueueFull is returned by TrySubmit when the job queue is at
	// capacity (the fail-fast face of backpressure).
	ErrQueueFull = errors.New("engine: queue full")
	// ErrClosed is returned for jobs submitted to (or stranded in) a
	// closed engine.
	ErrClosed = errors.New("engine: closed")
	// ErrPanic wraps a panic recovered from a run; the submitter gets it
	// as the job error while the engine keeps serving.
	ErrPanic = errors.New("engine: run panicked")
)

// Config sizes an Engine.
type Config struct {
	// Workers is the number of VM workers (goroutines with their own
	// reusable machine state). Zero means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-yet-running jobs.
	// Zero means 4×Workers.
	QueueDepth int
}

// Job is one execution request: a compiled program, the mechanism to
// enforce, and the run configuration.
type Job struct {
	Comp *core.Compilation
	Mech sti.Mechanism
	Cfg  core.RunConfig
}

// Stats is a point-in-time snapshot of the engine's aggregate counters,
// shaped for a /metrics endpoint.
type Stats struct {
	Workers int `json:"workers"`
	// Queued and Running are gauges: jobs waiting in the queue and jobs
	// currently executing on a worker.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Submitted counts accepted jobs; Rejected counts TrySubmit calls
	// refused with ErrQueueFull.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	// Completed counts finished jobs (clean exits and trapped runs
	// alike); Trapped the subset that ended in a machine trap other than
	// cancellation; Cancelled the subset stopped by context cancellation
	// or deadline; Panicked the runs that panicked and were isolated.
	Completed int64 `json:"completed"`
	Trapped   int64 `json:"trapped"`
	Cancelled int64 `json:"cancelled"`
	Panicked  int64 `json:"panicked"`
	// Aggregate modelled execution volume and the PAC memoization
	// counters summed over all completed runs. ThreadedInstrs is the
	// subset of Instrs retired by the direct-threaded tier — it tells an
	// operator how much of the serving volume runs promoted code without
	// affecting any modelled number.
	Instrs         int64 `json:"instrs"`
	ThreadedInstrs int64 `json:"threaded_instrs"`
	Cycles         int64 `json:"cycles"`
	PACCacheHits   int64 `json:"pac_cache_hits"`
	PACCacheMisses int64 `json:"pac_cache_misses"`
	// UptimeSeconds is the wall-clock age of the engine.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// PACCacheHitRate is the fraction of PAC computations served from worker
// caches (0 when none ran).
func (s Stats) PACCacheHitRate() float64 {
	total := s.PACCacheHits + s.PACCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PACCacheHits) / float64(total)
}

// InstrsPerSec is the engine-lifetime aggregate modelled instruction
// throughput (modelled instrs per host second).
func (s Stats) InstrsPerSec() float64 {
	if s.UptimeSeconds <= 0 {
		return 0
	}
	return float64(s.Instrs) / s.UptimeSeconds
}

// taskResult pairs a run's outcome with its transport error.
type taskResult struct {
	res *core.RunResult
	err error
}

// task is one queued unit of work. do runs on a worker goroutine with
// that worker's reusable state; res is buffered so the worker never
// blocks delivering to a departed submitter.
type task struct {
	ctx context.Context
	do  func(ctx context.Context, ws *vm.WorkerState) (*core.RunResult, error)
	res chan taskResult
}

// Engine is the concurrent execution service. Create with New, submit
// with Submit/TrySubmit, snapshot with Stats, shut down with Close.
type Engine struct {
	cfg   Config
	queue chan *task
	start time.Time

	// root is cancelled by Close so in-flight runs stop at their next
	// interpreter checkpoint instead of finishing at leisure.
	root     context.Context
	stopRoot context.CancelFunc
	wg       sync.WaitGroup

	running   atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	trapped   atomic.Int64
	cancelled atomic.Int64
	panicked  atomic.Int64
	instrs    atomic.Int64
	threaded  atomic.Int64
	cycles    atomic.Int64
	pacHits   atomic.Int64
	pacMisses atomic.Int64
}

// New starts an engine with cfg.Workers workers.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	root, stop := context.WithCancel(context.Background())
	e := &Engine{
		cfg:      cfg,
		queue:    make(chan *task, cfg.QueueDepth),
		start:    time.Now(),
		root:     root,
		stopRoot: stop,
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Close stops the engine: no new jobs are accepted, in-flight runs are
// cancelled at their next checkpoint, and queued-but-unstarted jobs fail
// with ErrClosed. Close blocks until every worker has exited. It is safe
// to call once; an Engine is not reusable after Close.
func (e *Engine) Close() {
	e.stopRoot()
	e.wg.Wait()
	// Fail any submitters still parked in the queue (their wait select
	// also watches e.root, so this drain is belt and braces for tasks
	// dequeued by nobody).
	for {
		select {
		case t := <-e.queue:
			t.res <- taskResult{nil, ErrClosed}
		default:
			return
		}
	}
}

// Submit enqueues a run and waits for its result, blocking while the
// queue is full — the backpressure face of admission. It returns early
// with ctx.Err() if the caller's context ends first, or ErrClosed if the
// engine shuts down. The returned RunResult is exactly what
// core.RunContext produces, including a *core.TrapError for trapped runs.
func (e *Engine) Submit(ctx context.Context, job Job) (*core.RunResult, error) {
	return e.dispatch(ctx, e.runTask(job), true)
}

// TrySubmit is Submit without the blocking: a full queue fails
// immediately with ErrQueueFull so the caller can shed load.
func (e *Engine) TrySubmit(ctx context.Context, job Job) (*core.RunResult, error) {
	return e.dispatch(ctx, e.runTask(job), false)
}

// SubmitFunc runs an arbitrary function on an engine worker — the escape
// hatch the evaluation sweeps use to push compile-side work (Table 3
// static analysis) through the same bounded worker pool as executions.
// fn observes cancellation through its ctx argument.
func (e *Engine) SubmitFunc(ctx context.Context, fn func(ctx context.Context) error) error {
	_, err := e.dispatch(ctx, func(runCtx context.Context, _ *vm.WorkerState) (*core.RunResult, error) {
		return nil, fn(runCtx)
	}, true)
	return err
}

// runTask adapts a Job into a task body that charges the engine's
// aggregate counters.
func (e *Engine) runTask(job Job) func(context.Context, *vm.WorkerState) (*core.RunResult, error) {
	return func(ctx context.Context, ws *vm.WorkerState) (*core.RunResult, error) {
		cfg := job.Cfg
		cfg.Worker = ws
		res, err := job.Comp.RunContext(ctx, job.Mech, cfg)
		if res != nil {
			e.instrs.Add(res.Stats.Instrs)
			e.threaded.Add(res.Stats.ThreadedInstrs)
			e.cycles.Add(res.Stats.Cycles)
			e.pacHits.Add(res.Stats.PACCacheHits)
			e.pacMisses.Add(res.Stats.PACCacheMisses)
			if res.Trap != nil {
				if res.Trap.Kind == vm.TrapCancelled {
					e.cancelled.Add(1)
				} else {
					e.trapped.Add(1)
				}
			}
		}
		return res, err
	}
}

// dispatch enqueues t's work and waits for the worker's reply.
func (e *Engine) dispatch(ctx context.Context, do func(context.Context, *vm.WorkerState) (*core.RunResult, error), block bool) (*core.RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.root.Err(); err != nil {
		return nil, ErrClosed
	}
	t := &task{ctx: ctx, do: do, res: make(chan taskResult, 1)}
	// Count the admission BEFORE the queue send and roll it back on the
	// paths where the job was never accepted. The moment the send
	// succeeds a worker may dequeue, run, and count the job completed;
	// charging submitted only afterwards let a concurrent Stats snapshot
	// observe Completed > Submitted. A transient overcount in the other
	// direction (an attempt that is rolled back) keeps the invariant
	// Completed + Panicked ≤ Submitted true at every instant.
	e.submitted.Add(1)
	if block {
		select {
		case e.queue <- t:
		case <-ctx.Done():
			e.submitted.Add(-1)
			return nil, ctx.Err()
		case <-e.root.Done():
			e.submitted.Add(-1)
			return nil, ErrClosed
		}
	} else {
		select {
		case e.queue <- t:
		default:
			e.submitted.Add(-1)
			e.rejected.Add(1)
			return nil, ErrQueueFull
		}
	}
	select {
	case r := <-t.res:
		return r.res, r.err
	case <-ctx.Done():
		// The worker (or Close's drain) still delivers into the buffered
		// channel; nobody blocks on our departure.
		return nil, ctx.Err()
	case <-e.root.Done():
		// Prefer a result that raced with shutdown.
		select {
		case r := <-t.res:
			return r.res, r.err
		default:
			return nil, ErrClosed
		}
	}
}

// worker is one shard of the pool: a goroutine owning a WorkerState that
// executes queued tasks until the engine closes.
func (e *Engine) worker() {
	defer e.wg.Done()
	ws := vm.NewWorkerState()
	for {
		select {
		case <-e.root.Done():
			return
		case t := <-e.queue:
			e.running.Add(1)
			res, err := e.execute(t, &ws)
			e.running.Add(-1)
			if !errors.Is(err, ErrPanic) {
				e.completed.Add(1)
			}
			t.res <- taskResult{res, err}
		}
	}
}

// execute runs one task with panic isolation: a panicking run is
// converted into an ErrPanic job error, and the worker's reusable state —
// whose pools may be mid-mutation — is discarded and rebuilt, so the
// poison cannot leak into later runs.
func (e *Engine) execute(t *task, ws **vm.WorkerState) (res *core.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panicked.Add(1)
			*ws = vm.NewWorkerState()
			res, err = nil, fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	// Runs must stop when either the submitter's context ends or the
	// engine closes; derive a context cancelled by both.
	runCtx, cancel := context.WithCancel(t.ctx)
	defer cancel()
	stop := context.AfterFunc(e.root, cancel)
	defer stop()
	return t.do(runCtx, *ws)
}

// Stats snapshots the aggregate counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:        e.cfg.Workers,
		Queued:         len(e.queue),
		Running:        int(e.running.Load()),
		Submitted:      e.submitted.Load(),
		Rejected:       e.rejected.Load(),
		Completed:      e.completed.Load(),
		Trapped:        e.trapped.Load(),
		Cancelled:      e.cancelled.Load(),
		Panicked:       e.panicked.Load(),
		Instrs:         e.instrs.Load(),
		ThreadedInstrs: e.threaded.Load(),
		Cycles:         e.cycles.Load(),
		PACCacheHits:   e.pacHits.Load(),
		PACCacheMisses: e.pacMisses.Load(),
		UptimeSeconds:  time.Since(e.start).Seconds(),
	}
}

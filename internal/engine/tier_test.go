package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// hotSrc executes enough modelled steps that its functions cross a
// lowered promotion threshold many times over within one run.
const hotSrc = `
int g;
int work(int n) {
    int s; int i;
    s = 0;
    for (i = 0; i < n; i = i + 1) { g = g + i; s = s + g; }
    return s;
}
int main(void) {
    int s; int i;
    s = 0;
    for (i = 0; i < 200; i = i + 1) { s = s + work(300); }
    return s & 127;
}
`

// zeroHostSide strips the host-side observability counters so two stats
// snapshots can be compared on the modelled numbers only.
func zeroHostSide(s vm.Stats) vm.Stats {
	s.PACCacheHits, s.PACCacheMisses = 0, 0
	s.FusedAuthLoads, s.FusedSignStores, s.FusedAuthStores = 0, 0, 0
	s.FusedAuthAddrLoads, s.FusedAuthAddrStores, s.FusedInstrs = 0, 0, 0
	s.ThreadedInstrs = 0
	return s
}

// TestTierExactlyOnceAcrossWorkers floods the pool with tier-on jobs for
// one program: every result — including runs racing the promotion
// itself — must be bit-identical to the direct tier-off reference, and
// the build's shared tier image must have compiled each promoted
// function exactly once however many workers crossed the threshold
// together. Run under -race in CI.
func TestTierExactlyOnceAcrossWorkers(t *testing.T) {
	c := compile(t, hotSrc)
	ref, err := c.Run(sti.STWC, core.RunConfig{Optimize: core.OptimizeOff, Tier: core.TierOff})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if ref.Err != nil {
		t.Fatalf("reference run trapped: %v", ref.Err)
	}

	tierOpts := vm.DefaultOptions()
	tierOpts.TierThreshold = 256
	cfg := core.RunConfig{Optimize: core.OptimizeOff, Tier: core.TierOn, Options: tierOpts}

	e := New(Config{Workers: 8})
	defer e.Close()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				res, err := e.Submit(context.Background(), Job{Comp: c, Mech: sti.STWC, Cfg: cfg})
				if err != nil {
					errs <- fmt.Sprintf("worker stream %d run %d: %v", g, r, err)
					return
				}
				if res.Err != nil {
					errs <- fmt.Sprintf("worker stream %d run %d trapped: %v", g, r, res.Err)
					continue
				}
				if res.Exit != ref.Exit || res.Output != ref.Output {
					errs <- fmt.Sprintf("worker stream %d run %d: exit/output diverge from reference", g, r)
				}
				if zeroHostSide(res.Stats) != zeroHostSide(ref.Stats) {
					errs <- fmt.Sprintf("worker stream %d run %d: modelled stats diverge:\n tiered %+v\n ref    %+v",
						g, r, zeroHostSide(res.Stats), zeroHostSide(ref.Stats))
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	b, err := c.BuildMode(sti.STWC, false)
	if err != nil {
		t.Fatal(err)
	}
	ts := b.ImageFor(true).TierStats()
	if ts.Promotions == 0 {
		t.Error("no function promoted under contention")
	}
	if ts.Promotions != ts.CompiledFuncs {
		t.Errorf("promotions %d != compiled funcs %d: a function compiled more than once",
			ts.Promotions, ts.CompiledFuncs)
	}
	if st := e.Stats(); st.ThreadedInstrs == 0 {
		t.Error("engine aggregated no threaded instructions from tiered runs")
	}
}

package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
)

// TestStatsAccountingUnderContention hammers the engine's admission
// paths — TrySubmit shedding into a tiny queue, Submit-carried panics
// being isolated — from many goroutines while a sampler continuously
// snapshots Stats. It pins down two properties:
//
//  1. Instantaneous consistency: no snapshot may ever show more
//     completed-or-panicked jobs than submitted ones (the ordering bug
//     this test was written against: submitted was charged only after
//     the queue send, so a fast worker could finish the job first).
//  2. Quiescent exactness: once everything drains, every counter equals
//     the ground truth the submitters tracked locally.
func TestStatsAccountingUnderContention(t *testing.T) {
	comp, err := core.Compile(`int main(void) { return 7; }`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 2, QueueDepth: 1})
	defer e.Close()

	const (
		goroutines = 8
		perG       = 60
		panicsPerG = 5
	)
	var accepted, rejected, panicked atomic.Int64
	var wg sync.WaitGroup

	// Sampler: Stats must be internally consistent at every instant.
	stop := make(chan struct{})
	samplerDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				samplerDone <- nil
				return
			default:
			}
			s := e.Stats()
			if s.Completed+s.Panicked > s.Submitted {
				samplerDone <- errors.New("snapshot shows more finished than submitted jobs")
				return
			}
			if s.Running < 0 || s.Running > s.Workers {
				samplerDone <- errors.New("running gauge out of range")
				return
			}
			runtime.Gosched()
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := e.TrySubmit(context.Background(), Job{Comp: comp, Mech: sti.STWC})
				switch {
				case err == nil:
					accepted.Add(1)
					if res.Exit != 7 {
						t.Errorf("exit = %d, want 7", res.Exit)
					}
				case errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				default:
					t.Errorf("TrySubmit: %v", err)
				}
			}
			for i := 0; i < panicsPerG; i++ {
				err := e.SubmitFunc(context.Background(), func(context.Context) error {
					panic("stats hammer")
				})
				if !errors.Is(err, ErrPanic) {
					t.Errorf("panicking job returned %v, want ErrPanic", err)
					continue
				}
				accepted.Add(1)
				panicked.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-samplerDone; err != nil {
		t.Fatal(err)
	}

	// Everything has drained (every submitter got its reply), so the
	// counters must now match the ground truth exactly.
	s := e.Stats()
	if s.Submitted != accepted.Load() {
		t.Errorf("Submitted = %d, want %d", s.Submitted, accepted.Load())
	}
	if s.Rejected != rejected.Load() {
		t.Errorf("Rejected = %d, want %d", s.Rejected, rejected.Load())
	}
	if s.Panicked != panicked.Load() {
		t.Errorf("Panicked = %d, want %d", s.Panicked, panicked.Load())
	}
	if want := accepted.Load() - panicked.Load(); s.Completed != want {
		t.Errorf("Completed = %d, want %d", s.Completed, want)
	}
	if s.Queued != 0 || s.Running != 0 {
		t.Errorf("gauges not drained: queued=%d running=%d", s.Queued, s.Running)
	}
	if s.Rejected == 0 {
		t.Log("note: queue never filled; rejection path unexercised this run")
	}
	// The engine must still be serving after the panic storm.
	res, err := e.Submit(context.Background(), Job{Comp: comp, Mech: sti.None})
	if err != nil || res.Exit != 7 {
		t.Fatalf("engine unhealthy after hammer: res=%+v err=%v", res, err)
	}
}

// TestStatsSubmitRollbackOnCancel: a Submit that gives up while parked
// on a full queue must not leave a phantom admission in Submitted.
func TestStatsSubmitRollbackOnCancel(t *testing.T) {
	comp, err := core.Compile(`int main(void) { long s = 0; for (long i = 0; i < 100000; i++) { s += i; } return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Close()

	// Occupy the worker and fill the queue.
	block := make(chan struct{})
	release := make(chan struct{})
	go e.SubmitFunc(context.Background(), func(context.Context) error {
		close(block)
		<-release
		return nil
	})
	<-block
	go e.Submit(context.Background(), Job{Comp: comp, Mech: sti.None}) // sits in the queue

	// Wait until the queue slot is taken, then park a Submit on it and
	// cancel it.
	for e.Stats().Queued == 0 {
		runtime.Gosched()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Submit(ctx, Job{Comp: comp, Mech: sti.None}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parked Submit returned %v, want context.Canceled", err)
	}
	close(release)

	// Drain, then check: exactly two jobs were ever admitted (the
	// blocker and the queued one), the cancelled attempt was rolled
	// back.
	for {
		s := e.Stats()
		if s.Completed == 2 {
			if s.Submitted != 2 {
				t.Fatalf("Submitted = %d after rollback, want 2", s.Submitted)
			}
			return
		}
		runtime.Gosched()
	}
}

// Disk level of the compile cache: content-addressed artifact files that
// survive daemon restarts and travel between cluster peers. An artifact
// stores the lowered base program plus one instrumented-program section
// per standard build flavor (see artifact.go for the format); reload
// skips the whole frontend (parse, typecheck, lower), every
// instrumentation pass, and every predecode, so a cold-started daemon
// serves its first run bit-identically to the process that wrote the
// artifact — same type-table IDs, same PAC modifiers, same modelled
// numbers — with zero instrumentation latency.
//
// Files are named <sha256-of-source-hex>.rsti and written via
// write-to-temp + atomic rename, so a crashed writer can never leave a
// half-written artifact under the content-addressed name, and two
// processes sharing one directory (two daemons, or a daemon restarting
// over a live sibling) converge on identical bytes without coordination:
// whoever renames last wins, and both renames carry the same
// content-addressed payload. Any validation failure — bad magic,
// checksum mismatch, codec version skew, a program that fails Verify —
// is treated as a miss: the source recompiles and the artifact is
// rewritten. Corruption can cost a compile, never correctness.
package compilecache

import (
	"encoding/hex"
	"os"
	"path/filepath"

	"rsti/internal/core"
)

var artifactMagic = [8]byte{'R', 'S', 'T', 'I', 'A', 'R', 'T', 2}

const artifactExt = ".rsti"

func (c *Cache) artifactPath(k key) string {
	return filepath.Join(c.cfg.Dir, hex.EncodeToString(k[:])+artifactExt)
}

// sweepTemps removes leftover tmp-*.rsti files from a previous writer that
// crashed between CreateTemp and the atomic rename. Each leftover is a
// half-written artifact that will never be completed, so it is deleted and
// counted as a DiskError. Called from New before the cache is shared, so
// the stats field is written without the lock. If another live process is
// mid-write, sweeping its temp file merely fails that writer's rename —
// which it already counts and survives — so the sweep can cost a compile,
// never correctness.
func (c *Cache) sweepTemps() {
	leftovers, err := filepath.Glob(filepath.Join(c.cfg.Dir, "tmp-*"+artifactExt))
	if err != nil {
		return // only a malformed pattern can fail; ours is fixed
	}
	for _, p := range leftovers {
		if os.Remove(p) == nil {
			c.stats.DiskErrors++
		}
	}
}

// loadDisk tries to reconstitute the compilation for k from its artifact
// file. It returns (nil, false) for any failure — missing file, damaged
// artifact, version skew — after counting it appropriately; the caller
// falls back to compiling. A successful load of an artifact this instance
// never wrote is additionally counted as a DiskAdoption: the artifact was
// produced by another process (an earlier daemon, a sibling sharing the
// directory, or a peer fetch persisted before a restart) and this
// instance is inheriting its instrumentation work.
func (c *Cache) loadDisk(k key) (*core.Compilation, bool) {
	raw, err := os.ReadFile(c.artifactPath(k))
	if err != nil {
		return nil, false // not on disk: the common cold-cache case, not an error
	}
	comp, err := decodeArtifact(raw)
	c.mu.Lock()
	if err != nil {
		c.stats.DiskErrors++
	} else {
		c.stats.DiskHits++
		if !c.written[k] {
			c.stats.DiskAdoptions++
		}
	}
	c.mu.Unlock()
	return comp, err == nil
}

// storeDisk encodes comp (building any not-yet-built flavor sections) and
// writes its artifact. Failures are counted, not returned: persistence is
// an optimization, and the in-memory entry the caller just inserted
// already serves this process.
func (c *Cache) storeDisk(k key, comp *core.Compilation) {
	buf, err := EncodeArtifact(comp)
	if err != nil {
		c.diskError()
		return
	}
	c.writeArtifact(k, buf)
}

// writeArtifact lands pre-encoded artifact bytes (a fresh local encode or
// a checksum-verified peer transfer) under k's content-addressed name via
// write-to-temp + atomic rename. Concurrent writers — racing goroutines,
// or separate processes sharing the directory — are idempotent: every
// writer renames a complete file holding the same deterministic content,
// so a reader never observes a torn artifact and the last rename simply
// replaces equal bytes.
func (c *Cache) writeArtifact(k key, buf []byte) {
	final := c.artifactPath(k)
	tmp, err := os.CreateTemp(c.cfg.Dir, "tmp-*"+artifactExt)
	if err != nil {
		c.diskError()
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.diskError()
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		c.diskError()
		return
	}
	c.mu.Lock()
	c.stats.DiskWrites++
	c.written[k] = true
	c.mu.Unlock()
}

func (c *Cache) diskError() {
	c.mu.Lock()
	c.stats.DiskErrors++
	c.mu.Unlock()
}

// Disk level of the compile cache: content-addressed artifact files that
// survive daemon restarts. An artifact stores the lowered mir.Program in
// the versioned codec format; reload skips the whole frontend (parse,
// typecheck, lower) and reruns only the deterministic STI analysis, so a
// cold-started daemon serves warm compile hits bit-identically to the
// process that wrote the artifact — same type-table IDs, same PAC
// modifiers, same modelled numbers.
//
// Artifact layout (all integrity-checked on load):
//
//	offset  size  contents
//	0       8     magic "RSTIART\x01" (format version in the last byte)
//	8       32    sha256 of the payload
//	40      —     payload: gob programDTO (mir.EncodeProgram)
//
// Files are named <sha256-of-source-hex>.rsti and written via
// write-to-temp + atomic rename, so a crashed writer can never leave a
// half-written artifact under the content-addressed name. Any validation
// failure — bad magic, checksum mismatch, codec version skew, a program
// that fails Verify — is treated as a miss: the source recompiles and the
// artifact is rewritten. Corruption can cost a compile, never correctness.
package compilecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"rsti/internal/core"
	"rsti/internal/mir"
)

var artifactMagic = [8]byte{'R', 'S', 'T', 'I', 'A', 'R', 'T', 1}

const artifactExt = ".rsti"

func (c *Cache) artifactPath(k key) string {
	return filepath.Join(c.cfg.Dir, hex.EncodeToString(k[:])+artifactExt)
}

// sweepTemps removes leftover tmp-*.rsti files from a previous writer that
// crashed between CreateTemp and the atomic rename. Each leftover is a
// half-written artifact that will never be completed, so it is deleted and
// counted as a DiskError. Called from New before the cache is shared, so
// the stats field is written without the lock. If another live process is
// mid-write, sweeping its temp file merely fails that writer's rename —
// which it already counts and survives — so the sweep can cost a compile,
// never correctness.
func (c *Cache) sweepTemps() {
	leftovers, err := filepath.Glob(filepath.Join(c.cfg.Dir, "tmp-*"+artifactExt))
	if err != nil {
		return // only a malformed pattern can fail; ours is fixed
	}
	for _, p := range leftovers {
		if os.Remove(p) == nil {
			c.stats.DiskErrors++
		}
	}
}

// loadDisk tries to reconstitute the compilation for k from its artifact
// file. It returns (nil, false) for any failure — missing file, damaged
// artifact, version skew — after counting it appropriately; the caller
// falls back to compiling.
func (c *Cache) loadDisk(k key) (*core.Compilation, bool) {
	raw, err := os.ReadFile(c.artifactPath(k))
	if err != nil {
		return nil, false // not on disk: the common cold-cache case, not an error
	}
	comp, err := decodeArtifact(raw)
	c.mu.Lock()
	if err != nil {
		c.stats.DiskErrors++
	} else {
		c.stats.DiskHits++
	}
	c.mu.Unlock()
	return comp, err == nil
}

func decodeArtifact(raw []byte) (*core.Compilation, error) {
	if len(raw) < 40 || [8]byte(raw[:8]) != artifactMagic {
		return nil, fmt.Errorf("compilecache: bad artifact header")
	}
	payload := raw[40:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], raw[8:40]) {
		return nil, fmt.Errorf("compilecache: artifact checksum mismatch")
	}
	prog, err := mir.DecodeProgram(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	return core.FromProgram(prog)
}

// storeDisk writes the artifact for k. Failures are counted, not
// returned: persistence is an optimization, and the in-memory entry the
// caller just inserted already serves this process.
func (c *Cache) storeDisk(k key, comp *core.Compilation) {
	var payload bytes.Buffer
	if err := mir.EncodeProgram(&payload, comp.Prog); err != nil {
		c.diskError()
		return
	}
	sum := sha256.Sum256(payload.Bytes())
	buf := make([]byte, 0, 40+payload.Len())
	buf = append(buf, artifactMagic[:]...)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload.Bytes()...)

	final := c.artifactPath(k)
	tmp, err := os.CreateTemp(c.cfg.Dir, "tmp-*"+artifactExt)
	if err != nil {
		c.diskError()
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.diskError()
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		c.diskError()
		return
	}
	c.mu.Lock()
	c.stats.DiskWrites++
	c.mu.Unlock()
}

func (c *Cache) diskError() {
	c.mu.Lock()
	c.stats.DiskErrors++
	c.mu.Unlock()
}

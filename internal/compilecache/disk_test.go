package compilecache

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
)

const diskSrc = `
struct pair { int a; int b; };
int sum(struct pair *p) { return p->a + p->b; }
int main() {
	struct pair p;
	p.a = 11; p.b = 31;
	printf("sum=%d\n", sum(&p));
	return sum(&p);
}
`

// countingCache returns a disk-backed cache whose compile invocations are
// counted — the observable for "served from disk without recompiling".
func countingCache(dir string, n *atomic.Int64) *Cache {
	return New(Config{Dir: dir, Compile: func(src string) (*core.Compilation, error) {
		n.Add(1)
		return core.Compile(src)
	}})
}

// TestDiskLevelSurvivesRestart is the cold-restart contract: a second
// cache instance (a restarted daemon) over the same directory serves the
// program from disk with zero compile invocations, and the reloaded
// compilation replays bit-identically.
func TestDiskLevelSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	var compiles1 atomic.Int64
	c1 := countingCache(dir, &compiles1)
	orig, err := c1.Get(diskSrc)
	if err != nil {
		t.Fatalf("first Get: %v", err)
	}
	if got := compiles1.Load(); got != 1 {
		t.Fatalf("first instance compiled %d times, want 1", got)
	}
	if s := c1.Stats(); s.DiskWrites != 1 || s.DiskHits != 0 {
		t.Fatalf("first instance disk stats: %+v, want 1 write, 0 hits", s)
	}

	// "Restart": a fresh cache, same directory, empty memory level.
	var compiles2 atomic.Int64
	c2 := countingCache(dir, &compiles2)
	reload, err := c2.Get(diskSrc)
	if err != nil {
		t.Fatalf("post-restart Get: %v", err)
	}
	if got := compiles2.Load(); got != 0 {
		t.Fatalf("restarted instance compiled %d times, want 0 (disk hit)", got)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.DiskWrites != 0 || s.Misses != 1 {
		t.Fatalf("restarted instance stats: %+v, want 1 disk hit, 0 writes, 1 miss", s)
	}

	// Bit-identical replay across the restart, for every mechanism.
	for _, mech := range sti.Mechanisms {
		a, err := orig.Run(mech, core.RunConfig{})
		if err != nil {
			t.Fatalf("%v: original run: %v", mech, err)
		}
		b, err := reload.Run(mech, core.RunConfig{})
		if err != nil {
			t.Fatalf("%v: reloaded run: %v", mech, err)
		}
		if a.Exit != b.Exit || a.Output != b.Output || a.Stats != b.Stats {
			t.Errorf("%v: reloaded run diverged: orig (exit %d, %q, %+v) vs reload (exit %d, %q, %+v)",
				mech, a.Exit, a.Output, a.Stats, b.Exit, b.Output, b.Stats)
		}
	}

	// The second Get on the restarted instance is a plain memory hit.
	if _, err := c2.Get(diskSrc); err != nil {
		t.Fatalf("memory-hit Get: %v", err)
	}
	if s := c2.Stats(); s.Hits != 1 || s.DiskHits != 1 {
		t.Fatalf("after memory hit: %+v, want 1 hit, 1 disk hit", s)
	}
}

// TestDiskCorruptionFallsBackToCompile damages the artifact in each
// interesting way and verifies the cache recompiles (counting a
// DiskError) instead of failing or serving garbage.
func TestDiskCorruptionFallsBackToCompile(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:20] },
		"bad magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped byte":  func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
		"version skew":  func(b []byte) []byte { b[7] = 99; return b },
		"empty payload": func(b []byte) []byte { return b[:0] },
	}
	for name, corrupt := range corruptions {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			dir := t.TempDir()
			var compiles atomic.Int64
			c1 := countingCache(dir, &compiles)
			if _, err := c1.Get(diskSrc); err != nil {
				t.Fatalf("seed Get: %v", err)
			}

			k := sha256.Sum256([]byte(diskSrc))
			path := c1.artifactPath(k)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading artifact: %v", err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatalf("corrupting artifact: %v", err)
			}

			var compiles2 atomic.Int64
			c2 := countingCache(dir, &compiles2)
			if _, err := c2.Get(diskSrc); err != nil {
				t.Fatalf("Get over corrupted artifact: %v", err)
			}
			if got := compiles2.Load(); got != 1 {
				t.Errorf("compiled %d times, want 1 (fallback)", got)
			}
			s := c2.Stats()
			if s.DiskErrors != 1 {
				t.Errorf("DiskErrors = %d, want 1; stats %+v", s.DiskErrors, s)
			}
			// The fallback compile rewrote a good artifact: a third
			// instance gets a clean disk hit again.
			var compiles3 atomic.Int64
			c3 := countingCache(dir, &compiles3)
			if _, err := c3.Get(diskSrc); err != nil {
				t.Fatalf("Get after repair: %v", err)
			}
			if got := compiles3.Load(); got != 0 {
				t.Errorf("post-repair instance compiled %d times, want 0", got)
			}
		})
	}
}

// TestDiskRepairPaths is the table of disk-level self-repair scenarios:
// each case damages the persistent level in one specific way, then
// verifies a fresh cache instance counts the damage under DiskErrors,
// still answers the Get correctly, and — where repair is possible —
// leaves the directory healthy enough that a third instance gets a clean
// disk hit with zero compiles. The unwritable-directory case runs as
// root, where permission bits are ignored, so it provokes the failure by
// pointing Dir at an existing regular file instead.
func TestDiskRepairPaths(t *testing.T) {
	type want struct {
		compiles, diskErrors, diskHits, diskWrites int64
	}
	cases := []struct {
		name string
		// breakFS damages the seeded directory (dir holds one good
		// artifact at path) and returns the Dir for the second instance.
		breakFS func(t *testing.T, dir, artifact string) string
		want    want
		// repairCompiles is what a third instance over the same Dir must
		// compile: 0 when the second instance repaired the disk level, 1
		// when the Dir stays unusable.
		repairCompiles int64
	}{
		{
			name: "truncated_header",
			breakFS: func(t *testing.T, dir, artifact string) string {
				raw, err := os.ReadFile(artifact)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(artifact, raw[:8], 0o644); err != nil {
					t.Fatal(err)
				}
				return dir
			},
			want:           want{compiles: 1, diskErrors: 1, diskHits: 0, diskWrites: 1},
			repairCompiles: 0,
		},
		{
			name: "checksum_mismatch",
			breakFS: func(t *testing.T, dir, artifact string) string {
				raw, err := os.ReadFile(artifact)
				if err != nil {
					t.Fatal(err)
				}
				raw[45] ^= 0xff // inside the payload: header intact, sha256 now wrong
				if err := os.WriteFile(artifact, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				return dir
			},
			want:           want{compiles: 1, diskErrors: 1, diskHits: 0, diskWrites: 1},
			repairCompiles: 0,
		},
		{
			name: "leftover_temp_file",
			breakFS: func(t *testing.T, dir, artifact string) string {
				// A crashed writer's half-written temp; the good artifact
				// stays intact, so the Get itself is a disk hit.
				p := filepath.Join(dir, "tmp-orphan.rsti")
				if err := os.WriteFile(p, []byte("half-written artifact"), 0o644); err != nil {
					t.Fatal(err)
				}
				return dir
			},
			want:           want{compiles: 0, diskErrors: 1, diskHits: 1, diskWrites: 0},
			repairCompiles: 0,
		},
		{
			name: "unwritable_dir",
			breakFS: func(t *testing.T, dir, artifact string) string {
				p := filepath.Join(t.TempDir(), "not-a-dir")
				if err := os.WriteFile(p, []byte("occupied"), 0o644); err != nil {
					t.Fatal(err)
				}
				return p // MkdirAll over a regular file fails on any uid
			},
			want:           want{compiles: 1, diskErrors: 1, diskHits: 0, diskWrites: 0},
			repairCompiles: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var seed atomic.Int64
			c1 := countingCache(dir, &seed)
			if _, err := c1.Get(diskSrc); err != nil {
				t.Fatalf("seed Get: %v", err)
			}
			k := sha256.Sum256([]byte(diskSrc))
			dir2 := tc.breakFS(t, dir, c1.artifactPath(k))

			var compiles atomic.Int64
			c2 := countingCache(dir2, &compiles)
			if _, err := c2.Get(diskSrc); err != nil {
				t.Fatalf("Get over damaged disk level: %v", err)
			}
			s := c2.Stats()
			got := want{compiles: compiles.Load(), diskErrors: s.DiskErrors, diskHits: s.DiskHits, diskWrites: s.DiskWrites}
			if got != tc.want {
				t.Errorf("after damage: %+v, want %+v", got, tc.want)
			}

			// No temp files may survive an instance's lifetime, whatever
			// the damage was.
			if dir2 == dir {
				if temps, _ := filepath.Glob(filepath.Join(dir, "tmp-*.rsti")); len(temps) != 0 {
					t.Errorf("temp files left behind: %v", temps)
				}
			}

			var repair atomic.Int64
			c3 := countingCache(dir2, &repair)
			if _, err := c3.Get(diskSrc); err != nil {
				t.Fatalf("Get after repair: %v", err)
			}
			if got := repair.Load(); got != tc.repairCompiles {
				t.Errorf("post-repair instance compiled %d times, want %d", got, tc.repairCompiles)
			}
		})
	}
}

// TestDiskLevelDisabledWithoutDir pins the default: no Dir, no files.
func TestDiskLevelDisabledWithoutDir(t *testing.T) {
	var compiles atomic.Int64
	c := New(Config{Compile: func(src string) (*core.Compilation, error) {
		compiles.Add(1)
		return core.Compile(src)
	}})
	if _, err := c.Get(diskSrc); err != nil {
		t.Fatalf("Get: %v", err)
	}
	s := c.Stats()
	if s.DiskHits != 0 || s.DiskWrites != 0 || s.DiskErrors != 0 {
		t.Fatalf("memory-only cache touched disk counters: %+v", s)
	}
}

// TestDiskArtifactNaming pins the content-addressed layout other tools
// (cache inspection, CI) rely on: <sha256(source)>.rsti directly in Dir.
func TestDiskArtifactNaming(t *testing.T) {
	dir := t.TempDir()
	var compiles atomic.Int64
	c := countingCache(dir, &compiles)
	if _, err := c.Get(diskSrc); err != nil {
		t.Fatalf("Get: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 1 {
		t.Fatalf("artifact dir has %d entries, want 1", len(ents))
	}
	k := sha256.Sum256([]byte(diskSrc))
	want := filepath.Base(c.artifactPath(k))
	if ents[0].Name() != want {
		t.Fatalf("artifact named %q, want %q", ents[0].Name(), want)
	}
}

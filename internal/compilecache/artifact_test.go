package compilecache

import (
	"bytes"
	"crypto/sha256"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"rsti/internal/core"
	"rsti/internal/mir"
	"rsti/internal/rsti"
	"rsti/internal/vm"
)

const artifactSrc = `
struct node { int v; struct node *next; };
int walk(struct node *n) {
	int s = 0;
	while (n != 0) { s = s + n->v; n = n->next; }
	return s;
}
int main() {
	struct node a; struct node b;
	a.v = 7; a.next = &b;
	b.v = 35; b.next = 0;
	printf("walk=%d\n", walk(&a));
	return walk(&a);
}
`

// runMatrix executes comp across the full standard flavor matrix at both
// execution tiers and returns the observable outcome of every cell.
type matrixCell struct {
	flavor core.BuildFlavor
	tier   bool
	exit   int64
	output string
	stats  vm.Stats
}

func runMatrix(t *testing.T, comp *core.Compilation) []matrixCell {
	t.Helper()
	var cells []matrixCell
	for _, fl := range core.StandardFlavors() {
		for _, tier := range []bool{false, true} {
			cfg := core.RunConfig{Optimize: core.OptimizeOff, Tier: core.TierOff}
			if fl.Optimized {
				cfg.Optimize = core.OptimizeOn
			}
			if tier {
				cfg.Tier = core.TierOn
			}
			res, err := comp.Run(fl.Mech, cfg)
			if err != nil {
				t.Fatalf("%v opt=%v tier=%v: run: %v", fl.Mech, fl.Optimized, tier, err)
			}
			cells = append(cells, matrixCell{
				flavor: fl, tier: tier,
				exit: res.Exit, output: res.Output, stats: res.Stats,
			})
		}
	}
	return cells
}

// TestArtifactReloadSkipsInstrumentationAndPredecode is the version-2
// cold-start contract: reloading an artifact runs zero instrumentation
// passes (every flavor section seeds its build cell), and executing the
// full {mechanism} x {optimizer} x {tier} matrix afterwards runs zero
// additional predecodes (both tier images were materialized at load
// time, off the request path).
func TestArtifactReloadSkipsInstrumentationAndPredecode(t *testing.T) {
	dir := t.TempDir()

	var compiles1 atomic.Int64
	c1 := countingCache(dir, &compiles1)
	orig, err := c1.Get(artifactSrc)
	if err != nil {
		t.Fatalf("first Get: %v", err)
	}
	want := runMatrix(t, orig)

	// "Restart": fresh cache over the same directory.
	var compiles2 atomic.Int64
	c2 := countingCache(dir, &compiles2)
	instBefore := rsti.InstrumentCount()
	reload, err := c2.Get(artifactSrc)
	if err != nil {
		t.Fatalf("post-restart Get: %v", err)
	}
	if got := compiles2.Load(); got != 0 {
		t.Fatalf("restarted instance compiled %d times, want 0", got)
	}
	if got := rsti.InstrumentCount(); got != instBefore {
		t.Fatalf("artifact load ran %d instrumentation passes, want 0", got-instBefore)
	}

	predecodeBefore := vm.PredecodeCount()
	got := runMatrix(t, reload)
	if n := vm.PredecodeCount(); n != predecodeBefore {
		t.Fatalf("post-load matrix ran %d predecodes, want 0 (images eager at load)", n-predecodeBefore)
	}
	if n := rsti.InstrumentCount(); n != instBefore {
		t.Fatalf("post-load matrix ran %d instrumentation passes, want 0", n-instBefore)
	}

	// Golden-matrix cross-check: every cell bit-identical to the process
	// that wrote the artifact.
	if len(got) != len(want) {
		t.Fatalf("matrix size %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.exit != w.exit || g.output != w.output || g.stats != w.stats {
			t.Fatalf("%v opt=%v tier=%v: reload diverged:\n  orig  exit=%d stats=%+v\n  reload exit=%d stats=%+v",
				w.flavor.Mech, w.flavor.Optimized, w.tier, w.exit, w.stats, g.exit, g.stats)
		}
	}
}

// TestArtifactDeterministicEncoding: two independent compilations of the
// same source encode to identical artifact bytes — the property that
// makes concurrent multi-process writers idempotent and lets peers verify
// transfers by checksum alone.
func TestArtifactDeterministicEncoding(t *testing.T) {
	encode := func() []byte {
		comp, err := core.Compile(artifactSrc)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		buf, err := EncodeArtifact(comp)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("independent encodes differ: %d vs %d bytes, sha %x vs %x",
			len(a), len(b), sha256.Sum256(a), sha256.Sum256(b))
	}
}

// TestArtifactV1Decode: a legacy base-only artifact (magic version 1)
// still loads — builds then materialize lazily, exactly the pre-upgrade
// behaviour — so a cache directory written by an older daemon keeps
// serving across the upgrade.
func TestArtifactV1Decode(t *testing.T) {
	comp, err := core.Compile(artifactSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var payload bytes.Buffer
	if err := mir.EncodeProgram(&payload, comp.Prog); err != nil {
		t.Fatalf("encode base: %v", err)
	}
	v1magic := artifactMagic
	v1magic[7] = 1
	sum := sha256.Sum256(payload.Bytes())
	raw := append(append(v1magic[:], sum[:]...), payload.Bytes()...)

	dir := t.TempDir()
	var compiles atomic.Int64
	c := countingCache(dir, &compiles)
	k := sha256.Sum256([]byte(artifactSrc))
	if err := os.WriteFile(c.artifactPath(k), raw, 0o644); err != nil {
		t.Fatalf("write v1 artifact: %v", err)
	}

	reload, err := c.Get(artifactSrc)
	if err != nil {
		t.Fatalf("Get over v1 artifact: %v", err)
	}
	if got := compiles.Load(); got != 0 {
		t.Fatalf("v1 artifact load compiled %d times, want 0", got)
	}
	// Lazy builds still replay bit-identically.
	wantRes, err := comp.Run(0, core.RunConfig{Optimize: core.OptimizeOff, Tier: core.TierOff})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	gotRes, err := reload.Run(0, core.RunConfig{Optimize: core.OptimizeOff, Tier: core.TierOff})
	if err != nil {
		t.Fatalf("v1 reload run: %v", err)
	}
	if gotRes.Exit != wantRes.Exit || gotRes.Stats != wantRes.Stats {
		t.Fatalf("v1 reload diverged: exit %d vs %d, stats %+v vs %+v",
			gotRes.Exit, wantRes.Exit, gotRes.Stats, wantRes.Stats)
	}
}

// TestArtifactBadPayloadFallsBack: an artifact whose checksum is valid
// but whose payload is garbage (truncated gob) is a decode error, counted
// as a DiskError, and the source recompiles — corruption costs a
// compile, never correctness.
func TestArtifactBadPayloadFallsBack(t *testing.T) {
	dir := t.TempDir()
	var compiles1 atomic.Int64
	c1 := countingCache(dir, &compiles1)
	if _, err := c1.Get(artifactSrc); err != nil {
		t.Fatalf("first Get: %v", err)
	}

	k := sha256.Sum256([]byte(artifactSrc))
	path := c1.artifactPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	// Truncate the gob payload and re-stamp a valid checksum: the damage
	// must be caught by the decoder, not the integrity check.
	payload := raw[40 : len(raw)-len(raw)/3]
	sum := sha256.Sum256(payload)
	bad := append(append(append([]byte{}, raw[:8]...), sum[:]...), payload...)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatalf("write damaged artifact: %v", err)
	}

	var compiles2 atomic.Int64
	c2 := countingCache(dir, &compiles2)
	if _, err := c2.Get(artifactSrc); err != nil {
		t.Fatalf("Get over damaged artifact: %v", err)
	}
	if got := compiles2.Load(); got != 1 {
		t.Fatalf("damaged artifact: compiled %d times, want 1 (fallback)", got)
	}
	s := c2.Stats()
	if s.DiskErrors != 1 || s.DiskHits != 0 {
		t.Fatalf("damaged artifact stats: %+v, want 1 disk error, 0 hits", s)
	}
	// The fallback rewrote a valid artifact.
	if raw2, err := os.ReadFile(path); err != nil || len(raw2) < 40 || [8]byte(raw2[:8]) != artifactMagic {
		t.Fatalf("fallback did not rewrite a valid artifact (err=%v)", err)
	}
}

// TestDiskAdoptionCounting: loading an artifact this instance wrote is a
// plain DiskHit; loading one produced by another process additionally
// counts as a DiskAdoption — the stat that makes cross-process sharing
// visible in /v1/metrics.
func TestDiskAdoptionCounting(t *testing.T) {
	dir := t.TempDir()

	var compiles1 atomic.Int64
	writer := countingCache(dir, &compiles1)
	if _, err := writer.Get(artifactSrc); err != nil {
		t.Fatalf("writer Get: %v", err)
	}
	if s := writer.Stats(); s.DiskAdoptions != 0 {
		t.Fatalf("writer stats: %+v, want 0 adoptions (it wrote the artifact)", s)
	}

	var compiles2 atomic.Int64
	reader := countingCache(dir, &compiles2)
	if _, err := reader.Get(artifactSrc); err != nil {
		t.Fatalf("reader Get: %v", err)
	}
	s := reader.Stats()
	if s.DiskHits != 1 || s.DiskAdoptions != 1 {
		t.Fatalf("reader stats: %+v, want 1 disk hit counted as 1 adoption", s)
	}
	if got := compiles2.Load(); got != 0 {
		t.Fatalf("reader compiled %d times, want 0", got)
	}
}

// TestConcurrentWritersSharedDir is the multi-process hardening contract:
// two Cache instances over one directory (modelling two daemons, or a
// daemon restarting over a live sibling), hammered concurrently on the
// same sources, must not corrupt the artifact files or mis-serve any
// request. Every surviving artifact must decode, and because encoding is
// deterministic, whichever writer renamed last left the same bytes.
func TestConcurrentWritersSharedDir(t *testing.T) {
	dir := t.TempDir()
	var compilesA, compilesB atomic.Int64
	a := countingCache(dir, &compilesA)
	b := countingCache(dir, &compilesB)

	sources := []string{artifactSrc, diskSrc}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*workers*len(sources))
	for i := 0; i < workers; i++ {
		for _, src := range sources {
			for _, c := range []*Cache{a, b} {
				wg.Add(1)
				go func(c *Cache, src string) {
					defer wg.Done()
					comp, err := c.Get(src)
					if err != nil {
						errs <- err
						return
					}
					res, err := comp.Run(0, core.RunConfig{Optimize: core.OptimizeOff, Tier: core.TierOff})
					if err != nil {
						errs <- err
						return
					}
					if res.Exit != 42 {
						return // sum/walk both exit 42; mismatch caught below
					}
				}(c, src)
			}
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Get/Run: %v", err)
	}

	// Per-instance singleflight held: at most one compile per source per
	// instance, regardless of the shared directory.
	if got := compilesA.Load(); got > int64(len(sources)) {
		t.Fatalf("instance A compiled %d times, want <= %d", got, len(sources))
	}
	if got := compilesB.Load(); got > int64(len(sources)) {
		t.Fatalf("instance B compiled %d times, want <= %d", got, len(sources))
	}

	// No half-written files left behind, and every artifact decodes.
	for _, src := range sources {
		k := sha256.Sum256([]byte(src))
		raw, err := os.ReadFile(a.artifactPath(k))
		if err != nil {
			t.Fatalf("artifact for source missing after concurrent writers: %v", err)
		}
		if _, err := decodeArtifact(raw); err != nil {
			t.Fatalf("artifact corrupt after concurrent writers: %v", err)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.DiskErrors != 0 || sb.DiskErrors != 0 {
		t.Fatalf("disk errors under concurrent writers: A=%+v B=%+v", sa, sb)
	}
}

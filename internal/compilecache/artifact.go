// Artifact codec, format version 2: the persistent (and peer-transferable)
// form of a compiled program *including its instrumented builds*.
//
// Version 1 stored only the lowered base program, so a cold-started daemon
// skipped the frontend but still paid one instrumentation pass per
// (mechanism, optimizer) flavor — and one predecode per image — before
// serving its first run. Version 2 stores one section per flavor of the
// standard build matrix (core.StandardFlavors): each section carries the
// fully instrumented (and, for optimized flavors, optimizer-processed)
// program plus its instrumentation and optimizer statistics. Reload seeds
// every per-flavor build cell and predecodes both execution-tier images
// off the request path, so the first run after a cold restart costs zero
// instrumentation passes and zero predecodes — the PAC-it-up/PACTight
// deployment argument (instrumentation as the dominant cost) amortized
// once per *cluster* rather than once per process.
//
// Artifact layout (all integrity-checked on load):
//
//	offset  size  contents
//	0       8     magic "RSTIART\x02" (format version in the last byte)
//	8       32    sha256 of the payload
//	40      —     payload: gob artifactDTO (base program + flavor sections)
//
// Sections are self-contained mir.EncodeProgram payloads: the modifier
// values PAC enforcement keys on are baked into the instrumented
// instructions, so a section replays bit-identically without re-running
// the STI analysis. Version-1 artifacts (magic "RSTIART\x01") still
// decode — base program only, builds materialize lazily as before — so a
// directory written by an older daemon keeps serving across the upgrade.
package compilecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"sync"

	"rsti/internal/core"
	"rsti/internal/mir"
	"rsti/internal/opt"
	"rsti/internal/rsti"
	"rsti/internal/sti"
)

// sectionDTO is one persisted build flavor: the instrumented program and
// the statistics the Build carries alongside it.
type sectionDTO struct {
	Mech      string
	Optimized bool
	Prog      []byte // mir.EncodeProgram payload
	IStats    rsti.Stats
	OptStats  *opt.Stats
}

// artifactDTO is the gob payload of a version-2 artifact.
type artifactDTO struct {
	Version  int
	Base     []byte // mir.EncodeProgram payload of the un-instrumented program
	Sections []sectionDTO
}

// EncodeArtifact serializes comp as a version-2 artifact: header,
// checksum, base program, and one section per standard build flavor. The
// flavor builds are materialized first (concurrently, through the
// compilation's per-flavor once-cells, so flavors already built for
// serving are reused and flavors built here are reused by later runs).
// This is the cluster's one-time instrumentation cost: every peer that
// adopts the artifact — and every future cold restart over it — skips
// these passes entirely.
func EncodeArtifact(comp *core.Compilation) ([]byte, error) {
	flavors := core.StandardFlavors()
	builds := make([]*core.Build, len(flavors))
	errs := make([]error, len(flavors))
	var wg sync.WaitGroup
	for i, fl := range flavors {
		wg.Add(1)
		go func(i int, fl core.BuildFlavor) {
			defer wg.Done()
			builds[i], errs[i] = comp.BuildMode(fl.Mech, fl.Optimized)
		}(i, fl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("compilecache: building %s artifact section: %w", flavors[i].Mech, err)
		}
	}

	dto := artifactDTO{Version: 2}
	var base bytes.Buffer
	if err := mir.EncodeProgram(&base, comp.Prog); err != nil {
		return nil, err
	}
	dto.Base = base.Bytes()
	for i, fl := range flavors {
		var prog bytes.Buffer
		if err := mir.EncodeProgram(&prog, builds[i].Prog); err != nil {
			return nil, err
		}
		sec := sectionDTO{
			Mech:      fl.Mech.String(),
			Optimized: fl.Optimized,
			Prog:      prog.Bytes(),
			OptStats:  builds[i].OptStats,
		}
		if builds[i].Stats != nil {
			sec.IStats = *builds[i].Stats
		}
		dto.Sections = append(dto.Sections, sec)
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&dto); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload.Bytes())
	buf := make([]byte, 0, 40+payload.Len())
	buf = append(buf, artifactMagic[:]...)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload.Bytes()...)
	return buf, nil
}

// decodeArtifact reconstitutes a compilation from artifact bytes,
// accepting both format versions. Any validation failure — bad magic,
// checksum mismatch, codec version skew, a section program that fails
// Verify — is an error; the caller treats it as a cache miss and
// recompiles, so damage can cost a compile, never correctness.
func decodeArtifact(raw []byte) (*core.Compilation, error) {
	if len(raw) < 40 {
		return nil, fmt.Errorf("compilecache: bad artifact header")
	}
	magic := [8]byte(raw[:8])
	v1 := magic
	v1[7] = 1
	if magic != artifactMagic && magic != v1 {
		return nil, fmt.Errorf("compilecache: bad artifact header")
	}
	payload := raw[40:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], raw[8:40]) {
		return nil, fmt.Errorf("compilecache: artifact checksum mismatch")
	}
	if magic == v1 {
		// Legacy base-only artifact: builds materialize lazily.
		prog, err := mir.DecodeProgram(bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		return core.FromProgram(prog)
	}

	var dto artifactDTO
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&dto); err != nil {
		return nil, fmt.Errorf("compilecache: decoding artifact payload: %w", err)
	}
	if dto.Version != 2 {
		return nil, fmt.Errorf("compilecache: artifact payload version %d, want 2", dto.Version)
	}
	prog, err := mir.DecodeProgram(bytes.NewReader(dto.Base))
	if err != nil {
		return nil, err
	}
	comp, err := core.FromProgram(prog)
	if err != nil {
		return nil, err
	}
	for _, sec := range dto.Sections {
		mech, ok := sti.ParseMechanism(sec.Mech)
		if !ok {
			return nil, fmt.Errorf("compilecache: artifact section for unknown mechanism %q", sec.Mech)
		}
		sprog, err := mir.DecodeProgram(bytes.NewReader(sec.Prog))
		if err != nil {
			return nil, fmt.Errorf("compilecache: %s section: %w", sec.Mech, err)
		}
		istats := sec.IStats
		b := &core.Build{
			Mechanism: mech,
			Prog:      sprog,
			Stats:     &istats,
			Optimized: sec.Optimized,
			OptStats:  sec.OptStats,
		}
		comp.SeedBuild(mech, sec.Optimized, b)
		// Predecode both execution-tier image cells now, while the artifact
		// is loading, so the first run at either tier finds its shared
		// image ready: cold-start cost lives here, off the request path.
		b.ImageFor(false)
		b.ImageFor(true)
	}
	return comp, nil
}

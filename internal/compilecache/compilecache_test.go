package compilecache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rsti/internal/core"
)

// program returns a distinct well-formed source per n so the cache sees
// genuinely different content hashes.
func program(n int) string {
	return fmt.Sprintf("int main() { int x; x = %d; return x; }", n)
}

func TestGetCompilesOnceAndHits(t *testing.T) {
	c := New(Config{})
	var calls atomic.Int64
	c.compile = func(src string) (*core.Compilation, error) {
		calls.Add(1)
		return core.Compile(src)
	}
	src := program(1)
	first, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("repeat Get returned a different Compilation")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", s.HitRate())
	}
}

func TestSingleflightDedupesConcurrentGets(t *testing.T) {
	c := New(Config{})
	var calls atomic.Int64
	release := make(chan struct{})
	c.compile = func(src string) (*core.Compilation, error) {
		calls.Add(1)
		<-release // hold the flight open so every other Get must join it
		return core.Compile(src)
	}
	src := program(2)
	const waiters = 8
	results := make([]*core.Compilation, waiters)
	var started, wg sync.WaitGroup
	started.Add(waiters)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			comp, err := c.Get(src)
			if err != nil {
				t.Error(err)
			}
			results[i] = comp
		}(i)
	}
	started.Wait()
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compile ran %d times for %d concurrent Gets, want 1", n, waiters)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different Compilation", i)
		}
	}
	if s := c.Stats(); s.Dedups != waiters-1 {
		t.Fatalf("dedups = %d, want %d", s.Dedups, waiters-1)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(Config{})
	fail := errors.New("transient")
	var calls atomic.Int64
	c.compile = func(src string) (*core.Compilation, error) {
		if calls.Add(1) == 1 {
			return nil, fail
		}
		return core.Compile(src)
	}
	src := program(3)
	if _, err := c.Get(src); !errors.Is(err, fail) {
		t.Fatalf("first Get error = %v, want %v", err, fail)
	}
	if c.Len() != 0 {
		t.Fatal("failed compile was stored")
	}
	if _, err := c.Get(src); err != nil {
		t.Fatalf("retry after error failed: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("compile ran %d times, want 2 (error not cached)", n)
	}
}

// TestEntryCapBoundsChurn drives many distinct programs through a small
// cache and proves the footprint stays bounded the whole way.
func TestEntryCapBoundsChurn(t *testing.T) {
	const cap = 4
	c := New(Config{MaxEntries: cap})
	for i := 0; i < 10*cap; i++ {
		if _, err := c.Get(program(i)); err != nil {
			t.Fatal(err)
		}
		if n := c.Len(); n > cap {
			t.Fatalf("after %d inserts cache holds %d entries, cap %d", i+1, n, cap)
		}
	}
	s := c.Stats()
	if s.Entries != cap {
		t.Fatalf("entries = %d, want %d", s.Entries, cap)
	}
	if want := int64(10*cap - cap); s.Evictions != want {
		t.Fatalf("evictions = %d, want %d", s.Evictions, want)
	}
}

func TestByteCapBoundsChurn(t *testing.T) {
	// Pick a byte cap that fits a couple of tiny programs but not many.
	probe := New(Config{})
	comp, err := probe.Get(program(0))
	if err != nil {
		t.Fatal(err)
	}
	one := estimateSize(program(0), comp)
	c := New(Config{MaxBytes: 3 * one})
	for i := 0; i < 12; i++ {
		if _, err := c.Get(program(i)); err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.Bytes > 3*one+one {
			t.Fatalf("bytes = %d beyond cap %d (+1 entry slack)", s.Bytes, 3*one)
		}
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatal("byte cap never evicted")
	}
}

func TestLRUEvictsColdestFirst(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	a, b, d := program(100), program(101), program(102)
	if _, err := c.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(b); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes the coldest, then insert d to force eviction.
	if _, err := c.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(d); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if _, err := c.Get(a); err != nil { // must still be cached
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != before.Hits+1 {
		t.Fatal("recently used entry was evicted instead of coldest")
	}
	if _, err := c.Get(b); err != nil { // evicted: recompiles (a miss)
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != before.Misses+1 {
		t.Fatal("coldest entry survived eviction")
	}
}

func TestUnlimitedWhenNegative(t *testing.T) {
	c := New(Config{MaxEntries: -1, MaxBytes: -1})
	for i := 0; i < DefaultMaxEntries/32; i++ {
		if _, err := c.Get(program(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("unlimited cache evicted %d entries", s.Evictions)
	}
}

// TestConcurrentChurnStaysBounded hammers a small cache from several
// goroutines with overlapping keys; run under -race this also checks the
// locking.
func TestConcurrentChurnStaysBounded(t *testing.T) {
	const cap = 8
	c := New(Config{MaxEntries: cap})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := c.Get(program((g*17 + i) % 24)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > cap {
		t.Fatalf("cache holds %d entries, cap %d", n, cap)
	}
	s := c.Stats()
	if s.Hits+s.Misses+s.Dedups != 4*40 {
		t.Fatalf("counter sum = %d, want %d", s.Hits+s.Misses+s.Dedups, 4*40)
	}
}

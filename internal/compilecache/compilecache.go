// Package compilecache is a shared, content-addressed cache of compiled
// programs. Compilation is deterministic — the same source always yields
// the same analysis — so any two callers presenting identical source text
// can share one *core.Compilation: the eval sweeps re-walk the same 18
// SPEC2006 programs per measurement, rstid sees bursts of identical
// /compile requests, and the public rsti API wants repeat compiles of a
// hot source to be free.
//
// The cache is keyed by the sha256 of the source text, deduplicates
// concurrent compiles of the same source (singleflight: one compile runs,
// the rest wait for its result), and is LRU-bounded by both entry count
// and an estimate of retained bytes so a churning workload cannot grow
// host memory without bound. Failed compiles are handed to every waiter
// of the flight that produced them but are never stored: error entries
// would spend capacity on programs nobody can run.
package compilecache

import (
	"container/list"
	"crypto/sha256"
	"os"
	"sync"
	"unsafe"

	"rsti/internal/core"
	"rsti/internal/mir"
)

// Defaults bound the cache when Config leaves a limit zero. 256 entries /
// 64 MiB comfortably hold the full evaluation suite (18 workloads plus
// attack scenarios, ~1 MiB retained) while capping a pathological
// all-distinct workload.
const (
	DefaultMaxEntries = 256
	DefaultMaxBytes   = 64 << 20
)

// Config bounds a Cache. Zero values take the package defaults; negative
// values mean unlimited.
type Config struct {
	// MaxEntries caps the number of cached compilations.
	MaxEntries int
	// MaxBytes caps the estimated retained size across all entries.
	MaxBytes int64
	// Dir, when non-empty, enables the persistent second level: every
	// successful compile is written there as a content-addressed artifact
	// (see disk.go for the format), and a miss checks the directory before
	// compiling. Artifacts survive restarts and may be shared between
	// processes — the content-addressed name plus atomic rename makes
	// concurrent writers idempotent.
	Dir string
	// Compile overrides how a missing entry is produced (nil means
	// core.Compile). The service layer uses this to route compiles through
	// its engine pool so compilation concurrency is bounded alongside run
	// concurrency; tests use it to count invocations.
	Compile func(string) (*core.Compilation, error)
}

func (cfg Config) maxEntries() int {
	if cfg.MaxEntries == 0 {
		return DefaultMaxEntries
	}
	return cfg.MaxEntries
}

func (cfg Config) maxBytes() int64 {
	if cfg.MaxBytes == 0 {
		return DefaultMaxBytes
	}
	return cfg.MaxBytes
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts Get calls answered from a stored entry.
	Hits int64 `json:"hits"`
	// Misses counts Get calls that started a compile.
	Misses int64 `json:"misses"`
	// Dedups counts Get calls that joined another caller's in-flight
	// compile instead of starting their own.
	Dedups int64 `json:"dedups"`
	// Evictions counts entries dropped to stay within the configured
	// bounds.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes are the current footprint.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Disk-level counters (all zero when Config.Dir is unset). DiskHits
	// counts misses answered by reloading an artifact instead of
	// compiling; DiskWrites counts artifacts persisted; DiskErrors counts
	// damaged or unwritable artifacts (each such miss fell back to a
	// compile, so correctness is unaffected).
	DiskHits   int64 `json:"disk_hits,omitempty"`
	DiskWrites int64 `json:"disk_writes,omitempty"`
	DiskErrors int64 `json:"disk_errors,omitempty"`
}

// HitRate is hits / (hits + misses), 0 when the cache is untouched.
// In-flight joins count as neither: they are a concurrency dedup, not a
// storage outcome.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type key [sha256.Size]byte

type entry struct {
	c    *core.Compilation
	size int64
	elem *list.Element // value is the key, for reverse lookup on evict
}

type flight struct {
	done chan struct{}
	c    *core.Compilation
	err  error
}

// Cache is safe for concurrent use. The zero value is not usable; call
// New.
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	entries map[key]*entry
	lru     *list.List // front = most recently used
	flights map[key]*flight
	bytes   int64
	stats   Stats

	// compile is core.Compile, injectable so tests can count invocations
	// and stall flights.
	compile func(string) (*core.Compilation, error)
}

// New returns an empty cache bounded by cfg. When cfg.Dir is set it is
// created if needed and swept of leftover temp files from crashed
// writers; if creation fails the cache degrades to memory-only (counted
// under DiskErrors rather than failing startup — the daemon is still
// fully functional without persistence).
func New(cfg Config) *Cache {
	c := &Cache{
		cfg:     cfg,
		entries: make(map[key]*entry),
		lru:     list.New(),
		flights: make(map[key]*flight),
		compile: core.Compile,
	}
	if cfg.Compile != nil {
		c.compile = cfg.Compile
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			c.cfg.Dir = ""
			c.stats.DiskErrors++
		} else {
			c.sweepTemps()
		}
	}
	return c
}

// Get returns the compilation of src, compiling it on first sight. Any
// number of concurrent Gets for the same source run exactly one compile;
// the rest block until it finishes and share the result. A compile error
// is returned to every waiter but not cached, so a later Get retries.
func (c *Cache) Get(src string) (*core.Compilation, error) {
	k := key(sha256.Sum256([]byte(src)))

	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
		c.mu.Unlock()
		return e.c, nil
	}
	if f, ok := c.flights[k]; ok {
		c.stats.Dedups++
		c.mu.Unlock()
		<-f.done
		return f.c, f.err
	}
	c.stats.Misses++
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	// Inside the flight — concurrent Gets for the same source dedupe onto
	// this path whether it is answered from disk or by compiling.
	fromDisk := false
	if c.cfg.Dir != "" {
		f.c, fromDisk = c.loadDisk(k)
	}
	if !fromDisk {
		f.c, f.err = c.compile(src)
	}
	close(f.done)

	c.mu.Lock()
	delete(c.flights, k)
	if f.err == nil {
		c.insert(k, src, f.c)
	}
	c.mu.Unlock()
	if f.err == nil && !fromDisk && c.cfg.Dir != "" {
		c.storeDisk(k, f.c)
	}
	return f.c, f.err
}

// insert stores a freshly compiled entry at the LRU front and evicts from
// the back until the cache is within bounds again. The entry being
// inserted is never evicted, even if it alone exceeds MaxBytes — the
// caller already paid for it, and pinning it keeps Get-after-miss
// coherent.
func (c *Cache) insert(k key, src string, comp *core.Compilation) {
	e := &entry{c: comp, size: estimateSize(src, comp)}
	e.elem = c.lru.PushFront(k)
	c.entries[k] = e
	c.bytes += e.size
	maxE, maxB := c.cfg.maxEntries(), c.cfg.maxBytes()
	for c.lru.Len() > 1 &&
		((maxE >= 0 && c.lru.Len() > maxE) || (maxB >= 0 && c.bytes > maxB)) {
		back := c.lru.Back()
		bk := back.Value.(key)
		c.lru.Remove(back)
		c.bytes -= c.entries[bk].size
		delete(c.entries, bk)
		c.stats.Evictions++
	}
}

// estimateSize approximates what a cached compilation pins in memory: the
// source text plus the lowered instruction stream (the dominant retained
// structure; the analysis tables are small by comparison). It must be
// cheap — it runs under the cache lock — and stable, so eviction order is
// deterministic for a deterministic workload.
func estimateSize(src string, comp *core.Compilation) int64 {
	size := int64(len(src))
	const instrSize = int64(unsafe.Sizeof(mir.Instr{}))
	for _, f := range comp.Prog.Funcs {
		for _, b := range f.Blocks {
			size += int64(len(b.Instrs)) * instrSize
		}
	}
	return size
}

// Stats returns a snapshot of the counters and current footprint.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	return s
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

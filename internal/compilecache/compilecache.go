// Package compilecache is a shared, content-addressed cache of compiled
// programs. Compilation is deterministic — the same source always yields
// the same analysis — so any two callers presenting identical source text
// can share one *core.Compilation: the eval sweeps re-walk the same 18
// SPEC2006 programs per measurement, rstid sees bursts of identical
// /compile requests, and the public rsti API wants repeat compiles of a
// hot source to be free.
//
// The cache is keyed by the sha256 of the source text, deduplicates
// concurrent compiles of the same source (singleflight: one compile runs,
// the rest wait for its result), and is LRU-bounded by both entry count
// and an estimate of retained bytes so a churning workload cannot grow
// host memory without bound. Failed compiles are handed to every waiter
// of the flight that produced them but are never stored: error entries
// would spend capacity on programs nobody can run.
package compilecache

import (
	"container/list"
	"crypto/sha256"
	"os"
	"sync"
	"unsafe"

	"rsti/internal/core"
	"rsti/internal/mir"
)

// Defaults bound the cache when Config leaves a limit zero. 256 entries /
// 64 MiB comfortably hold the full evaluation suite (18 workloads plus
// attack scenarios, ~1 MiB retained) while capping a pathological
// all-distinct workload.
const (
	DefaultMaxEntries = 256
	DefaultMaxBytes   = 64 << 20
)

// Config bounds a Cache. Zero values take the package defaults; negative
// values mean unlimited.
type Config struct {
	// MaxEntries caps the number of cached compilations.
	MaxEntries int
	// MaxBytes caps the estimated retained size across all entries.
	MaxBytes int64
	// Dir, when non-empty, enables the persistent second level: every
	// successful compile is written there as a content-addressed artifact
	// (see disk.go for the format), and a miss checks the directory before
	// compiling. Artifacts survive restarts and may be shared between
	// processes — the content-addressed name plus atomic rename makes
	// concurrent writers idempotent.
	Dir string
	// Compile overrides how a missing entry is produced (nil means
	// core.Compile). The service layer uses this to route compiles through
	// its engine pool so compilation concurrency is bounded alongside run
	// concurrency; tests use it to count invocations.
	Compile func(string) (*core.Compilation, error)
	// Fetch, when non-nil, is consulted on a miss after the disk level and
	// before compiling: the cluster router uses it to pull the encoded
	// artifact from the consistent-hash owner of the source. The contract:
	// (bytes, nil) is a peer artifact (checksum-verified here, then
	// adopted into the memory and disk levels); (nil, nil) means no fetch
	// applies — this node owns the source, or no cluster is configured —
	// and is not counted; (nil, err) means a fetch was attempted and
	// failed (counted under PeerErrors) and the miss falls back to a local
	// compile, so an unreachable owner degrades to single-node behaviour,
	// never to an error.
	Fetch func(src string) ([]byte, error)
}

func (cfg Config) maxEntries() int {
	if cfg.MaxEntries == 0 {
		return DefaultMaxEntries
	}
	return cfg.MaxEntries
}

func (cfg Config) maxBytes() int64 {
	if cfg.MaxBytes == 0 {
		return DefaultMaxBytes
	}
	return cfg.MaxBytes
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts Get calls answered from a stored entry.
	Hits int64 `json:"hits"`
	// Misses counts Get calls that started a compile.
	Misses int64 `json:"misses"`
	// Dedups counts Get calls that joined another caller's in-flight
	// compile instead of starting their own.
	Dedups int64 `json:"dedups"`
	// Evictions counts entries dropped to stay within the configured
	// bounds.
	Evictions int64 `json:"evictions"`
	// Entries and Bytes are the current footprint.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Compiles counts misses that actually ran a local compile — misses
	// answered by the disk level or a peer fetch are excluded. Across a
	// cluster, the sum of every peer's Compiles for one source is exactly
	// 1: that is the cross-node singleflight contract.
	Compiles int64 `json:"compiles,omitempty"`
	// Disk-level counters (all zero when Config.Dir is unset). DiskHits
	// counts misses answered by reloading an artifact instead of
	// compiling; DiskWrites counts artifacts persisted; DiskErrors counts
	// damaged or unwritable artifacts (each such miss fell back to a
	// compile, so correctness is unaffected). DiskAdoptions counts the
	// subset of DiskHits whose artifact this instance never wrote — work
	// inherited from another process sharing the directory.
	DiskHits      int64 `json:"disk_hits,omitempty"`
	DiskWrites    int64 `json:"disk_writes,omitempty"`
	DiskErrors    int64 `json:"disk_errors,omitempty"`
	DiskAdoptions int64 `json:"disk_adoptions,omitempty"`
	// Peer-level counters (all zero when Config.Fetch is unset). PeerHits
	// counts misses answered by an artifact fetched from the cluster
	// owner; PeerErrors counts attempted fetches that failed or returned
	// a damaged artifact (each fell back to a local compile).
	PeerHits   int64 `json:"peer_hits,omitempty"`
	PeerErrors int64 `json:"peer_errors,omitempty"`
}

// NoteHit records a lookup answered by a cache layered above this one
// (the service's program-handle table). Counting those hits here keeps
// Hits+Misses equal to the total compile lookups the process served, so
// metrics-derived share rates describe request traffic, not just the
// fraction that fell through to this level.
func (c *Cache) NoteHit() {
	c.mu.Lock()
	c.stats.Hits++
	c.mu.Unlock()
}

// ClusterShareRate is the fraction of storage misses the logical cluster
// cache answered without a local compile — via the persistent disk level
// or a peer fetch. 0 when the cache never missed.
func (s Stats) ClusterShareRate() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.DiskHits+s.PeerHits) / float64(s.Misses)
}

// HitRate is hits / (hits + misses), 0 when the cache is untouched.
// In-flight joins count as neither: they are a concurrency dedup, not a
// storage outcome.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type key [sha256.Size]byte

type entry struct {
	c    *core.Compilation
	size int64
	elem *list.Element // value is the key, for reverse lookup on evict
}

type flight struct {
	done chan struct{}
	c    *core.Compilation
	err  error
}

// Cache is safe for concurrent use. The zero value is not usable; call
// New.
type Cache struct {
	mu      sync.Mutex
	cfg     Config
	entries map[key]*entry
	lru     *list.List // front = most recently used
	flights map[key]*flight
	bytes   int64
	stats   Stats

	// written records which artifact files this instance has produced, so
	// a disk hit on a file some *other* process wrote is distinguishable
	// (DiskAdoptions) from reloading our own work after eviction.
	written map[key]bool

	// compile is core.Compile, injectable so tests can count invocations
	// and stall flights.
	compile func(string) (*core.Compilation, error)
}

// New returns an empty cache bounded by cfg. When cfg.Dir is set it is
// created if needed and swept of leftover temp files from crashed
// writers; if creation fails the cache degrades to memory-only (counted
// under DiskErrors rather than failing startup — the daemon is still
// fully functional without persistence).
func New(cfg Config) *Cache {
	c := &Cache{
		cfg:     cfg,
		entries: make(map[key]*entry),
		lru:     list.New(),
		flights: make(map[key]*flight),
		written: make(map[key]bool),
		compile: core.Compile,
	}
	if cfg.Compile != nil {
		c.compile = cfg.Compile
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			c.cfg.Dir = ""
			c.stats.DiskErrors++
		} else {
			c.sweepTemps()
		}
	}
	return c
}

// Get returns the compilation of src, compiling it on first sight. Any
// number of concurrent Gets for the same source run exactly one compile;
// the rest block until it finishes and share the result. A compile error
// is returned to every waiter but not cached, so a later Get retries.
// When Config.Fetch is set, a miss that the disk level cannot answer may
// be filled by a peer artifact instead of a local compile.
func (c *Cache) Get(src string) (*core.Compilation, error) {
	return c.get(src, true)
}

// GetLocal is Get without the peer-fetch hook: a storage miss goes
// straight from the disk level to a local compile. The cluster's
// peer-artifact endpoint serves requests through this path, so two peers
// with momentarily divergent ring views can never forward a source back
// and forth — the forwarded request terminates at one hop. A GetLocal
// that joins an in-flight Get (or vice versa) shares that flight's
// result; the first arrival decides whether the flight may fetch.
func (c *Cache) GetLocal(src string) (*core.Compilation, error) {
	return c.get(src, false)
}

func (c *Cache) get(src string, allowFetch bool) (*core.Compilation, error) {
	k := key(sha256.Sum256([]byte(src)))

	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.lru.MoveToFront(e.elem)
		c.stats.Hits++
		c.mu.Unlock()
		return e.c, nil
	}
	if f, ok := c.flights[k]; ok {
		c.stats.Dedups++
		c.mu.Unlock()
		<-f.done
		return f.c, f.err
	}
	c.stats.Misses++
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	// Inside the flight — concurrent Gets for the same source dedupe onto
	// this path whether it is answered from disk, from a peer, or by
	// compiling.
	fromDisk, fromPeer := false, false
	if c.cfg.Dir != "" {
		f.c, fromDisk = c.loadDisk(k)
	}
	if !fromDisk && allowFetch && c.cfg.Fetch != nil {
		f.c, fromPeer = c.fetchPeer(k, src)
	}
	if !fromDisk && !fromPeer {
		c.mu.Lock()
		c.stats.Compiles++
		c.mu.Unlock()
		f.c, f.err = c.compile(src)
	}
	close(f.done)

	c.mu.Lock()
	delete(c.flights, k)
	if f.err == nil {
		c.insert(k, src, f.c)
	}
	c.mu.Unlock()
	if f.err == nil && !fromDisk && !fromPeer && c.cfg.Dir != "" {
		c.storeDisk(k, f.c)
	}
	return f.c, f.err
}

// fetchPeer asks the configured Fetch hook for a peer artifact and, on
// success, adopts it: the decoded compilation fills this flight, and the
// verified bytes land in the local disk level so warm instrumented images
// propagate through the ring — the next restart (or a sibling process)
// reloads them without contacting anyone.
func (c *Cache) fetchPeer(k key, src string) (*core.Compilation, bool) {
	raw, err := c.cfg.Fetch(src)
	if err == nil && raw == nil {
		return nil, false // no fetch applies (local owner); not counted
	}
	if err == nil {
		var comp *core.Compilation
		if comp, err = decodeArtifact(raw); err == nil {
			c.mu.Lock()
			c.stats.PeerHits++
			c.mu.Unlock()
			if c.cfg.Dir != "" {
				c.writeArtifact(k, raw)
			}
			return comp, true
		}
	}
	c.mu.Lock()
	c.stats.PeerErrors++
	c.mu.Unlock()
	return nil, false
}

// Artifact returns the encoded artifact bytes for src, compiling (and
// persisting, when the disk level is enabled) on first sight — the owner
// side of a peer transfer. The fast path reuses the artifact file the
// compile just wrote; a memory-only cache encodes on demand. Peer-fetch
// is never consulted: the artifact endpoint must terminate forwarding.
func (c *Cache) Artifact(src string) ([]byte, error) {
	comp, err := c.GetLocal(src)
	if err != nil {
		return nil, err
	}
	if c.cfg.Dir != "" {
		k := key(sha256.Sum256([]byte(src)))
		if raw, err := os.ReadFile(c.artifactPath(k)); err == nil &&
			len(raw) >= 40 && [8]byte(raw[:8]) == artifactMagic {
			return raw, nil
		}
	}
	return EncodeArtifact(comp)
}

// insert stores a freshly compiled entry at the LRU front and evicts from
// the back until the cache is within bounds again. The entry being
// inserted is never evicted, even if it alone exceeds MaxBytes — the
// caller already paid for it, and pinning it keeps Get-after-miss
// coherent.
func (c *Cache) insert(k key, src string, comp *core.Compilation) {
	e := &entry{c: comp, size: estimateSize(src, comp)}
	e.elem = c.lru.PushFront(k)
	c.entries[k] = e
	c.bytes += e.size
	maxE, maxB := c.cfg.maxEntries(), c.cfg.maxBytes()
	for c.lru.Len() > 1 &&
		((maxE >= 0 && c.lru.Len() > maxE) || (maxB >= 0 && c.bytes > maxB)) {
		back := c.lru.Back()
		bk := back.Value.(key)
		c.lru.Remove(back)
		c.bytes -= c.entries[bk].size
		delete(c.entries, bk)
		c.stats.Evictions++
	}
}

// estimateSize approximates what a cached compilation pins in memory: the
// source text plus the lowered instruction stream (the dominant retained
// structure; the analysis tables are small by comparison). It must be
// cheap — it runs under the cache lock — and stable, so eviction order is
// deterministic for a deterministic workload.
func estimateSize(src string, comp *core.Compilation) int64 {
	size := int64(len(src))
	const instrSize = int64(unsafe.Sizeof(mir.Instr{}))
	for _, f := range comp.Prog.Funcs {
		for _, b := range f.Blocks {
			size += int64(len(b.Instrs)) * instrSize
		}
	}
	return size
}

// Stats returns a snapshot of the counters and current footprint.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	return s
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

package qarma

// Fast path: the cipher state stays packed in one uint64 for the whole
// permutation instead of being exploded into a [16]byte cell array every
// round. Every non-trivial step of QARMA-64 is either
//
//   - a XOR of key/tweak/constant material, which is native on uint64, or
//   - GF(2)-linear in the 64 state bits (ShuffleCells is a nibble
//     permutation, MixColumns XORs rotated nibbles, the tweak LFSR XORs
//     bits within a nibble), or
//   - the nibble-wise S-box, which respects byte boundaries (two cells per
//     byte).
//
// Linear steps therefore collapse into eight 256-entry uint64 tables (one
// per state byte, XOR-combined), and the S-box into one 256-entry byte
// table applied per byte. Adjacent linear steps are fused: a full forward
// round's ShuffleCells+MixColumns is one table, and the entire
// pseudo-reflector (τ, M, key, τ⁻¹) is one table plus a pre-shuffled key
// XOR. The tables are built once at package init by probing the reference
// cell implementation, so the fast path is correct by construction against
// the same code the published test vectors validate.
//
// The per-round tweaks T_0..T_r are computed once per block and reused by
// the backward rounds (encryption's backward half replays the forward
// tweak schedule in reverse), halving tweak-schedule work.

// linTable is one fused GF(2)-linear step: out = ⨁_i t[i][byte_i(in)].
type linTable [8][256]uint64

var (
	// sBox8/sBoxInv8 apply σ1/σ1⁻¹ to both nibbles of a byte.
	sBox8, sBoxInv8 [256]byte

	linFwdFull linTable // MixColumns ∘ ShuffleCells (full forward round)
	linBwdFull linTable // ShuffleCells⁻¹ ∘ MixColumns (full backward round)
	linReflect linTable // τ⁻¹ ∘ MixColumns ∘ τ (pseudo-reflector core)
	linTweakF  linTable // forward tweak update (h permutation + ω LFSR)
)

func init() {
	for v := 0; v < 256; v++ {
		sBox8[v] = sigma1[v>>4]<<4 | sigma1[v&0xF]
		sBoxInv8[v] = sigma1Inv[v>>4]<<4 | sigma1Inv[v&0xF]
	}
	linFwdFull = buildLinear(func(c *cells) {
		shuffle(c, &tau)
		mixColumns(c)
	})
	linBwdFull = buildLinear(func(c *cells) {
		mixColumns(c)
		shuffle(c, &tauInv)
	})
	linReflect = buildLinear(func(c *cells) {
		shuffle(c, &tau)
		mixColumns(c)
		shuffle(c, &tauInv)
	})
	linTweakF = buildLinear(forwardTweakUpdate)
}

// buildLinear tabulates a GF(2)-linear cell transform byte-by-byte using
// the reference implementation as the oracle: f(x) = ⨁_i f(byte_i(x)).
func buildLinear(f func(*cells)) linTable {
	var t linTable
	for pos := 0; pos < 8; pos++ {
		for v := 0; v < 256; v++ {
			c := toCells(uint64(v) << (8 * pos))
			f(&c)
			t[pos][v] = fromCells(&c)
		}
	}
	return t
}

func applyLin(t *linTable, x uint64) uint64 {
	return t[0][byte(x)] ^
		t[1][byte(x>>8)] ^
		t[2][byte(x>>16)] ^
		t[3][byte(x>>24)] ^
		t[4][byte(x>>32)] ^
		t[5][byte(x>>40)] ^
		t[6][byte(x>>48)] ^
		t[7][byte(x>>56)]
}

func subBytes64(t *[256]byte, x uint64) uint64 {
	return uint64(t[byte(x)]) |
		uint64(t[byte(x>>8)])<<8 |
		uint64(t[byte(x>>16)])<<16 |
		uint64(t[byte(x>>24)])<<24 |
		uint64(t[byte(x>>32)])<<32 |
		uint64(t[byte(x>>40)])<<40 |
		uint64(t[byte(x>>48)])<<48 |
		uint64(t[byte(x>>56)])<<56
}

// Encrypt enciphers the 64-bit plaintext under the 64-bit tweak. It
// allocates nothing and is bit-identical to the reference permutation
// (see TestFastMatchesReference).
func (c *Cipher) Encrypt(plaintext, tweak uint64) uint64 {
	// Tweak schedule T_0..T_r, shared by the forward and backward halves.
	var tw [len(roundConstants) + 1]uint64
	tw[0] = tweak
	for i := 1; i <= c.rounds; i++ {
		tw[i] = applyLin(&linTweakF, tw[i-1])
	}

	is := plaintext ^ c.pw0

	// Forward rounds with k0: round 0 is short (no linear layer).
	is ^= c.fwdTK[0] ^ tw[0]
	is = subBytes64(&sBox8, is)
	for i := 1; i < c.rounds; i++ {
		is ^= c.fwdTK[i] ^ tw[i]
		is = applyLin(&linFwdFull, is)
		is = subBytes64(&sBox8, is)
	}

	// Central construction: full forward round keyed by w1, the
	// pseudo-reflector (one fused linear pass + pre-shuffled key), one
	// full backward round keyed by w0.
	is ^= c.pw1 ^ tw[c.rounds]
	is = applyLin(&linFwdFull, is)
	is = subBytes64(&sBox8, is)

	is = applyLin(&linReflect, is) ^ c.reflectK

	is = subBytes64(&sBoxInv8, is)
	is = applyLin(&linBwdFull, is)
	is ^= c.pw0 ^ tw[c.rounds]

	// Backward rounds with k0 ⊕ α, replaying the forward tweaks.
	for i := c.rounds - 1; i >= 1; i-- {
		is = subBytes64(&sBoxInv8, is)
		is = applyLin(&linBwdFull, is)
		is ^= c.bwdTK[i] ^ tw[i]
	}
	is = subBytes64(&sBoxInv8, is)
	is ^= c.bwdTK[0] ^ tw[0]

	return is ^ c.pw1
}

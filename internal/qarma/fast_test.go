package qarma

import "testing"

// splitmix64 gives the differential tests a deterministic random stream.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// TestFastMatchesPublishedVectors pins the fast path directly to the
// QARMA paper's Table 5 vectors (the reference path has its own copy of
// this check in qarma_test.go).
func TestFastMatchesPublishedVectors(t *testing.T) {
	for _, tv := range publishedVectors {
		c := New(tvW0, tvK0, tv.rounds)
		if got := c.Encrypt(tvP, tvT); got != tv.want {
			t.Errorf("r=%d: Encrypt = %#016x, want %#016x", tv.rounds, got, tv.want)
		}
	}
}

// TestFastMatchesReference differentially tests the packed fast path
// against the reference cell implementation over 10k random
// (key, tweak, plaintext) triples across every supported round count.
func TestFastMatchesReference(t *testing.T) {
	seed := uint64(0xD1FFE7E57)
	for rounds := 1; rounds <= len(roundConstants); rounds++ {
		for i := 0; i < 10000/len(roundConstants); i++ {
			w0 := splitmix64(&seed)
			k0 := splitmix64(&seed)
			p := splitmix64(&seed)
			tw := splitmix64(&seed)
			c := New(w0, k0, rounds)
			fast, ref := c.Encrypt(p, tw), c.encryptRef(p, tw)
			if fast != ref {
				t.Fatalf("r=%d key=(%#x,%#x) p=%#x t=%#x: fast %#016x != ref %#016x",
					rounds, w0, k0, p, tw, fast, ref)
			}
		}
	}
}

// TestFastDecryptRoundTrip checks Decrypt (which stays on the reference
// path) inverts the fast Encrypt.
func TestFastDecryptRoundTrip(t *testing.T) {
	seed := uint64(42)
	c := New(tvW0, tvK0, StandardRounds)
	for i := 0; i < 2000; i++ {
		p := splitmix64(&seed)
		tw := splitmix64(&seed)
		if got := c.Decrypt(c.Encrypt(p, tw), tw); got != p {
			t.Fatalf("Decrypt(Encrypt(%#x, %#x)) = %#x", p, tw, got)
		}
	}
}

func TestEncryptZeroAlloc(t *testing.T) {
	c := New(tvW0, tvK0, StandardRounds)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Encrypt(0xDEADBEEF, tvT)
	})
	if allocs != 0 {
		t.Errorf("Encrypt allocates %.1f objects per op, want 0", allocs)
	}
}

func BenchmarkEncryptRef(b *testing.B) {
	c := New(tvW0, tvK0, StandardRounds)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = c.encryptRef(uint64(i), tvT)
	}
	_ = sink
}

package qarma

import (
	"testing"
	"testing/quick"
)

// The test vectors from R. Avanzi, "The QARMA Block Cipher Family",
// IACR ToSC 2017(1), Table 5 (QARMA-64, S-box σ1).
const (
	tvW0 = 0x84be85ce9804e94b
	tvK0 = 0xec2802d4e0a488e9
	tvT  = 0x477d469dec0b8762
	tvP  = 0xfb623599da6e8127
)

var publishedVectors = []struct {
	rounds int
	want   uint64
}{
	{5, 0x544b0ab95bda7c3a},
	{6, 0xa512dd1e4e3ec582},
	{7, 0xedf67ff370a483f2},
}

func TestPublishedVectors(t *testing.T) {
	for _, tv := range publishedVectors {
		c := New(tvW0, tvK0, tv.rounds)
		got := c.Encrypt(tvP, tvT)
		if got != tv.want {
			t.Errorf("r=%d: Encrypt = %#016x, want %#016x", tv.rounds, got, tv.want)
		}
	}
}

func TestDecryptInvertsPublishedVectors(t *testing.T) {
	for _, tv := range publishedVectors {
		c := New(tvW0, tvK0, tv.rounds)
		got := c.Decrypt(tv.want, tvT)
		if got != tvP {
			t.Errorf("r=%d: Decrypt = %#016x, want %#016x", tv.rounds, got, uint64(tvP))
		}
	}
}

func TestEncryptDecryptRoundTripProperty(t *testing.T) {
	for _, rounds := range []int{5, 6, 7} {
		c := New(0x0123456789abcdef, 0xfedcba9876543210, rounds)
		f := func(p, tw uint64) bool {
			return c.Decrypt(c.Encrypt(p, tw), tw) == p
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("r=%d: %v", rounds, err)
		}
	}
}

func TestEncryptIsPermutationPerTweak(t *testing.T) {
	c := New(1, 2, StandardRounds)
	f := func(a, b, tw uint64) bool {
		if a == b {
			return true
		}
		return c.Encrypt(a, tw) != c.Encrypt(b, tw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTweakChangesCiphertext(t *testing.T) {
	c := New(tvW0, tvK0, StandardRounds)
	f := func(p, t1, t2 uint64) bool {
		if t1 == t2 {
			return true
		}
		return c.Encrypt(p, t1) != c.Encrypt(p, t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyChangesCiphertext(t *testing.T) {
	a := New(tvW0, tvK0, StandardRounds)
	b := New(tvW0, tvK0^1, StandardRounds)
	if a.Encrypt(tvP, tvT) == b.Encrypt(tvP, tvT) {
		t.Error("ciphertexts collide across distinct keys on the probe input")
	}
}

func TestNewPanicsOnBadRounds(t *testing.T) {
	for _, r := range []int{0, -1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(rounds=%d) did not panic", r)
				}
			}()
			New(1, 2, r)
		}()
	}
}

func TestCellConversionRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		c := toCells(x)
		return fromCells(&c) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixColumnsIsInvolution(t *testing.T) {
	f := func(x uint64) bool {
		c := toCells(x)
		mixColumns(&c)
		mixColumns(&c)
		return fromCells(&c) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLFSRInverse(t *testing.T) {
	for x := byte(0); x < 16; x++ {
		if got := lfsrBackward(lfsrForward(x)); got != x {
			t.Errorf("lfsrBackward(lfsrForward(%#x)) = %#x", x, got)
		}
	}
}

func TestTweakUpdateInverse(t *testing.T) {
	f := func(x uint64) bool {
		c := toCells(x)
		forwardTweakUpdate(&c)
		backwardTweakUpdate(&c)
		return fromCells(&c) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleInverse(t *testing.T) {
	f := func(x uint64) bool {
		c := toCells(x)
		shuffle(&c, &tau)
		shuffle(&c, &tauInv)
		return fromCells(&c) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSboxInverse(t *testing.T) {
	for x := byte(0); x < 16; x++ {
		if sigma1Inv[sigma1[x]] != x {
			t.Errorf("σ1⁻¹(σ1(%#x)) != %#x", x, x)
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := New(tvW0, tvK0, StandardRounds)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = c.Encrypt(uint64(i), tvT)
	}
	_ = sink
}

// TestAvalancheProperty: flipping any single plaintext bit should flip
// close to half of the ciphertext bits on average — the diffusion a PAC's
// unforgeability rests on.
func TestAvalancheProperty(t *testing.T) {
	c := New(tvW0, tvK0, StandardRounds)
	totalFlips := 0
	samples := 0
	for i := 0; i < 16; i++ {
		p := uint64(i) * 0x9E3779B97F4A7C15
		base := c.Encrypt(p, tvT)
		for bit := 0; bit < 64; bit += 7 {
			flipped := c.Encrypt(p^(1<<uint(bit)), tvT)
			d := base ^ flipped
			n := 0
			for ; d != 0; d &= d - 1 {
				n++
			}
			totalFlips += n
			samples++
		}
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average = %.1f output bits per input bit, want ~32", avg)
	}
}

// TestTweakAvalanche: the modifier (tweak) must diffuse just as strongly —
// this is what makes one RSTI-type's PAC useless for another's.
func TestTweakAvalanche(t *testing.T) {
	c := New(tvW0, tvK0, StandardRounds)
	totalFlips := 0
	samples := 0
	base := c.Encrypt(tvP, tvT)
	for bit := 0; bit < 64; bit++ {
		flipped := c.Encrypt(tvP, tvT^(1<<uint(bit)))
		d := base ^ flipped
		n := 0
		for ; d != 0; d &= d - 1 {
			n++
		}
		totalFlips += n
		samples++
	}
	avg := float64(totalFlips) / float64(samples)
	if avg < 24 || avg > 40 {
		t.Errorf("tweak avalanche average = %.1f, want ~32", avg)
	}
}

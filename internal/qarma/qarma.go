// Package qarma implements the QARMA-64 tweakable block cipher.
//
// QARMA is the cipher specified by ARM as the reference Pointer
// Authentication Code (PAC) algorithm for ARMv8.3-A (QARMA5, i.e. QARMA-64
// with r = 5 forward rounds, is the architected default; Apple silicon uses
// an unpublished variant with the same interface). RSTI only needs the
// cipher as a keyed pseudo-random function from (pointer, 64-bit modifier,
// 128-bit key) to a PAC, which is exactly QARMA's (plaintext, tweak, key)
// interface.
//
// The implementation follows R. Avanzi, "The QARMA Block Cipher Family",
// IACR ToSC 2017(1), using the σ1 S-box and the M4,2 = circ(0, ρ¹, ρ², ρ¹)
// diffusion matrix, and is validated against the test vectors published in
// that paper (see qarma_test.go).
package qarma

// Cipher is a QARMA-64 instance with a fixed 128-bit key (w0 ‖ k0) and a
// fixed number of forward rounds. It is safe for concurrent use: all state
// computed at construction time is read-only afterwards.
type Cipher struct {
	rounds int

	// Expanded key material, kept in cell form to avoid re-expansion on
	// every block. The cell-form schedule feeds the reference permutation
	// (encryptRef, Decrypt); the packed schedule below feeds the table-
	// driven fast path that Encrypt uses.
	w0, w1, k0, k1, k0a cells

	// Packed (uint64) key schedule for the fast path: whitening keys, the
	// per-round tweakeys key ⊕ c_i precombined at construction, and the
	// reflector key pre-shuffled through τ⁻¹ so the whole pseudo-reflector
	// collapses to one linear pass plus one XOR.
	pw0, pw1 uint64
	fwdTK    [len(roundConstants)]uint64 // k0 ⊕ c_i
	bwdTK    [len(roundConstants)]uint64 // (k0 ⊕ α) ⊕ c_i
	reflectK uint64                      // τ⁻¹(k1)
}

// cells is the 64-bit state as 16 four-bit cells; cell 0 holds the most
// significant nibble.
type cells [16]byte

// StandardRounds is the round count architected for ARMv8.3 PAC (QARMA5).
const StandardRounds = 5

// alpha is the reflector constant α from the QARMA specification.
const alpha = 0xC0AC29B7C97C50DD

// roundConstants are the constants c0..c7, derived from the digits of π.
var roundConstants = [8]uint64{
	0x0000000000000000,
	0x13198A2E03707344,
	0xA4093822299F31D0,
	0x082EFA98EC4E6C89,
	0x452821E638D01377,
	0xBE5466CF34E90C6C,
	0x3F84D5B5B5470917,
	0x9216D5D98979FB1B,
}

// sigma1 is the recommended QARMA S-box σ1 and its inverse.
var (
	sigma1    = [16]byte{10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4}
	sigma1Inv = invertPermutation(sigma1)
)

// tau is the MIDORI cell shuffle used by QARMA, with its inverse.
var (
	tau    = [16]byte{0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2}
	tauInv = invertPermutation(tau)
)

// hPerm is the tweak-cell permutation h, with its inverse.
var (
	hPerm    = [16]byte{6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11}
	hPermInv = invertPermutation(hPerm)
)

// lfsrCells are the tweak cells to which the ω LFSR is applied on each
// tweak update.
var lfsrCells = [7]int{0, 1, 3, 4, 8, 11, 13}

func invertPermutation(p [16]byte) [16]byte {
	var inv [16]byte
	for i, v := range p {
		inv[v] = byte(i)
	}
	return inv
}

// New returns a QARMA-64 cipher for the 128-bit key (w0, k0) with the given
// number of forward rounds (5, 6 or 7 are the variants analysed in the
// QARMA paper; ARMv8.3 architects 5).
func New(w0, k0 uint64, rounds int) *Cipher {
	if rounds < 1 || rounds > len(roundConstants) {
		panic("qarma: round count out of range")
	}
	c := &Cipher{rounds: rounds}
	c.w0 = toCells(w0)
	// w1 = o(w0) = (w0 >>> 1) ⊕ (w0 >> 63)
	w1 := ((w0 >> 1) | (w0 << 63)) ^ (w0 >> 63)
	c.w1 = toCells(w1)
	c.k0 = toCells(k0)
	// The reflector adds its key after the central MixColumns, which is
	// equivalent to the specification's k1 = M4,2·k0 added before it
	// (M is linear), so the stored reflector key is k0 itself.
	c.k1 = c.k0
	c.k0a = toCells(k0 ^ alpha)

	// Packed schedule for the fast path.
	c.pw0 = w0
	c.pw1 = w1
	for i := 0; i < rounds; i++ {
		c.fwdTK[i] = k0 ^ roundConstants[i]
		c.bwdTK[i] = (k0 ^ alpha) ^ roundConstants[i]
	}
	rk := c.k1
	shuffle(&rk, &tauInv)
	c.reflectK = fromCells(&rk)
	return c
}

// encryptRef is the reference (cell-array) implementation of the QARMA
// forward permutation. Encrypt (fast.go) is the production path; this one
// follows the specification step by step and serves as the correctness
// oracle the fast path is differentially tested against.
func (c *Cipher) encryptRef(plaintext, tweak uint64) uint64 {
	is := toCells(plaintext)
	t := toCells(tweak)

	xorCells(&is, &c.w0)

	// Forward rounds with the core key k0.
	for i := 0; i < c.rounds; i++ {
		c.forwardRound(&is, &c.k0, &t, roundConstants[i], i != 0)
		forwardTweakUpdate(&t)
	}

	// Central construction: one full forward round keyed by w1, the
	// pseudo-reflector keyed by k1, one full backward round keyed by w0.
	c.forwardRound(&is, &c.w1, &t, 0, true)
	pseudoReflect(&is, &c.k1)
	c.backwardRound(&is, &c.w0, &t, 0, true)

	// Backward rounds with k0 ⊕ α, mirroring the forward tweak schedule.
	for i := c.rounds - 1; i >= 0; i-- {
		backwardTweakUpdate(&t)
		c.backwardRound(&is, &c.k0a, &t, roundConstants[i], i != 0)
	}

	xorCells(&is, &c.w1)
	return fromCells(&is)
}

// Decrypt inverts Encrypt. RSTI itself never decrypts PACs, but decryption
// is the natural correctness oracle for the cipher, so it is provided and
// property-tested.
func (c *Cipher) Decrypt(ciphertext, tweak uint64) uint64 {
	is := toCells(ciphertext)

	xorCells(&is, &c.w1)

	// Undo the backward rounds: encryption ran them for i = r-1..0 with
	// tweaks T_{r-1}..T_0, so the inverse runs i = 0..r-1 with T_0..T_{r-1}.
	t := toCells(tweak) // T_0
	for i := 0; i < c.rounds; i++ {
		c.invBackwardRound(&is, &c.k0a, &t, roundConstants[i], i != 0)
		forwardTweakUpdate(&t)
	}
	// t is now T_r, the tweak used by the central rounds.

	c.invBackwardRound(&is, &c.w0, &t, 0, true)
	pseudoReflectInv(&is, &c.k1)
	c.invForwardRound(&is, &c.w1, &t, 0, true)

	// Undo the forward rounds, replaying tweaks T_{r-1}..T_0.
	for i := c.rounds - 1; i >= 0; i-- {
		backwardTweakUpdate(&t)
		c.invForwardRound(&is, &c.k0, &t, roundConstants[i], i != 0)
	}

	xorCells(&is, &c.w0)
	return fromCells(&is)
}

// forwardRound applies one QARMA forward round: add tweakey, then (full
// rounds only) ShuffleCells and MixColumns, then SubCells.
func (c *Cipher) forwardRound(is, key, tweak *cells, rc uint64, full bool) {
	addTweakey(is, key, tweak, rc)
	if full {
		shuffle(is, &tau)
		mixColumns(is)
	}
	subCells(is, &sigma1)
}

// invForwardRound inverts forwardRound.
func (c *Cipher) invForwardRound(is, key, tweak *cells, rc uint64, full bool) {
	subCells(is, &sigma1Inv)
	if full {
		mixColumns(is) // M4,2 is an involution
		shuffle(is, &tauInv)
	}
	addTweakey(is, key, tweak, rc)
}

// backwardRound is the mirror image of forwardRound: SubCells⁻¹, then (full
// rounds only) MixColumns and ShuffleCells⁻¹, then add tweakey.
func (c *Cipher) backwardRound(is, key, tweak *cells, rc uint64, full bool) {
	subCells(is, &sigma1Inv)
	if full {
		mixColumns(is)
		shuffle(is, &tauInv)
	}
	addTweakey(is, key, tweak, rc)
}

// invBackwardRound inverts backwardRound.
func (c *Cipher) invBackwardRound(is, key, tweak *cells, rc uint64, full bool) {
	addTweakey(is, key, tweak, rc)
	if full {
		shuffle(is, &tau)
		mixColumns(is)
	}
	subCells(is, &sigma1)
}

// pseudoReflect is the QARMA central permutation: ShuffleCells, MixColumns
// by the involutive central matrix Q = M4,2 with the key k1 added between,
// then ShuffleCells⁻¹.
func pseudoReflect(is, k1 *cells) {
	shuffle(is, &tau)
	mixColumns(is)
	xorCells(is, k1)
	shuffle(is, &tauInv)
}

// pseudoReflectInv inverts pseudoReflect (the key addition and the
// involutive MixColumns do not commute, so the reflector is not its own
// inverse).
func pseudoReflectInv(is, k1 *cells) {
	shuffle(is, &tau)
	xorCells(is, k1)
	mixColumns(is)
	shuffle(is, &tauInv)
}

func addTweakey(is, key, tweak *cells, rc uint64) {
	r := toCells(rc)
	for i := range is {
		is[i] ^= key[i] ^ tweak[i] ^ r[i]
	}
}

func subCells(is *cells, box *[16]byte) {
	for i := range is {
		is[i] = box[is[i]]
	}
}

func shuffle(is *cells, perm *[16]byte) {
	var out cells
	for i := range out {
		out[i] = is[perm[i]]
	}
	*is = out
}

// rotNibble rotates a 4-bit cell left by n.
func rotNibble(x byte, n int) byte {
	return ((x << n) | (x >> (4 - n))) & 0xF
}

// mixColumns multiplies the state by M4,2 = circ(0, ρ¹, ρ², ρ¹). The state
// is a 4×4 cell matrix in row-major order; columns are cell sets
// {c, c+4, c+8, c+12}.
func mixColumns(is *cells) {
	exp := [4]int{0, 1, 2, 1}
	var out cells
	for col := 0; col < 4; col++ {
		for row := 0; row < 4; row++ {
			var acc byte
			for j := 0; j < 4; j++ {
				e := exp[(j-row+4)%4]
				if e == 0 && (j-row+4)%4 == 0 {
					continue // the zero entry of the circulant
				}
				acc ^= rotNibble(is[4*j+col], e)
			}
			out[4*row+col] = acc
		}
	}
	*is = out
}

// forwardTweakUpdate advances the tweak by one round: permute cells with h,
// then clock the ω LFSR on the designated cells.
func forwardTweakUpdate(t *cells) {
	shuffle(t, &hPerm)
	for _, i := range lfsrCells {
		t[i] = lfsrForward(t[i])
	}
}

// backwardTweakUpdate inverts forwardTweakUpdate.
func backwardTweakUpdate(t *cells) {
	for _, i := range lfsrCells {
		t[i] = lfsrBackward(t[i])
	}
	shuffle(t, &hPermInv)
}

// lfsrForward maps cell (b3 b2 b1 b0) to (b0⊕b1, b3, b2, b1).
func lfsrForward(x byte) byte {
	return ((x<<3)^(x<<2))&0x8 | x>>1
}

// lfsrBackward inverts lfsrForward.
func lfsrBackward(x byte) byte {
	b0 := (x >> 3) ^ x&1
	return (x<<1)&0xE | b0&1
}

func toCells(x uint64) cells {
	var c cells
	for i := 0; i < 16; i++ {
		c[i] = byte(x>>(60-4*i)) & 0xF
	}
	return c
}

func fromCells(c *cells) uint64 {
	var x uint64
	for i := 0; i < 16; i++ {
		x |= uint64(c[i]) << (60 - 4*i)
	}
	return x
}

func xorCells(dst, src *cells) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

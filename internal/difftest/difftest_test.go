package difftest

import (
	"fmt"
	"strings"
	"testing"

	"rsti"
)

// TestGeneratorDeterministic: one Config must always render to the same
// bytes — the property seed-replay depends on.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		cfg := ConfigForSeed(seed)
		if a, b := Generate(cfg), Generate(cfg); a != b {
			t.Fatalf("seed %d: two renders differ", seed)
		}
	}
}

// TestGeneratorAlwaysCompiles: every generated program must pass the
// frontend — the generator's well-typed-by-construction promise.
func TestGeneratorAlwaysCompiles(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		src := Generate(ConfigForSeed(seed))
		if _, err := rsti.Compile(src); err != nil {
			t.Fatalf("seed %d: %v\n--- source ---\n%s", seed, err, src)
		}
	}
}

// TestGeneratorEmitsAttackSurface: the globals the attack variants poke
// must always be present.
func TestGeneratorEmitsAttackSurface(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		src := Generate(ConfigForSeed(seed))
		for _, want := range []string{"slotA", "slotB", "slotC", "fp_slot", "__hook(1)"} {
			if !strings.Contains(src, want) {
				t.Fatalf("seed %d: generated program lacks %q", seed, want)
			}
		}
	}
}

// TestOracleSynthesisSoak: the attack-synthesis soak — 500 seeds (25
// under -short) through the oracle with the hand-written attack variants
// AND the machine-derived tamper set enabled, demanding zero
// divergences. Every seed's program gets its own synthesized same-class
// substitutions, cross-scope replays and raw overwrites, each executed
// under every mechanism against its analysis-derived prediction, so this
// soak is the standing proof that the detect/miss predictions stay sound
// across the generator's whole configuration space. Seeds are sharded
// into parallel subtests so multi-core hosts split the wall-clock.
func TestOracleSynthesisSoak(t *testing.T) {
	seeds := uint64(500)
	if testing.Short() {
		seeds = 25
	}
	const shard = 50
	opt := Options{Attacks: true, Synthesis: true}
	for lo := uint64(1); lo <= seeds; lo += shard {
		lo, hi := lo, lo+shard-1
		if hi > seeds {
			hi = seeds
		}
		t.Run(fmt.Sprintf("seeds-%d-%d", lo, hi), func(t *testing.T) {
			t.Parallel()
			for seed := lo; seed <= hi; seed++ {
				rep, err := Check(ConfigForSeed(seed), opt)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, d := range rep.Divergences {
					t.Errorf("%s", d)
				}
				if t.Failed() {
					t.Fatalf("seed %d diverged; source:\n%s", seed, rep.Source)
				}
			}
		})
	}
}

// TestOracleBenignSweep: the full oracle (benign + engine + attacks)
// over a block of seeds must find zero divergences. This is the
// standing gate every future pipeline change runs under `go test`.
func TestOracleBenignSweep(t *testing.T) {
	n := uint64(40)
	if testing.Short() {
		n = 8
	}
	opt := Options{Attacks: true, EngineWorkers: 2}
	for seed := uint64(1); seed <= n; seed++ {
		rep, err := Check(ConfigForSeed(seed), opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range rep.Divergences {
			t.Errorf("%s", d)
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged; source:\n%s", seed, rep.Source)
		}
	}
}

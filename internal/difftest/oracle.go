package difftest

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"rsti"
	"rsti/internal/attack"
	"rsti/internal/core"
	"rsti/internal/vm"
)

// Options configures one oracle Check.
type Options struct {
	// StepBudget caps each run's modelled steps (a generated program
	// exhausting it is itself a divergence: the generator promises
	// termination). Zero means DefaultStepBudget.
	StepBudget int64
	// Attacks enables the corruption-injected variants.
	Attacks bool
	// EngineWorkers sizes the engine pool the cross-mechanism runs are
	// re-executed on. Zero disables the engine cross-check.
	EngineWorkers int
	// Optimizer forces the PAC elision optimizer on or off for every
	// phase (benign, engine, attacks). The zero value inherits the
	// process default (RSTI_OPT). Independent of this, Check always runs
	// the dedicated optimizer phase comparing forced-on against
	// forced-off benign executions.
	Optimizer OptimizerMode
	// Tier forces the direct-threaded execution tier on or off for every
	// phase the same way (TierOn also lowers the promotion threshold so
	// the short generated programs actually compile). The zero value
	// inherits the process default (RSTI_TIER). Independent of this,
	// Check always runs the dedicated tier phase comparing forced-on
	// against forced-off executions.
	Tier TierMode
	// Synthesis enables the attack-synthesis phase: instead of (only) the
	// generator's hand-written corruption variants, tampers are derived
	// from the compiled program itself by attack.Synthesize — same-class
	// substitutions, cross-scope replays, raw overwrites — executed under
	// every mechanism, and every violated detect/miss prediction or
	// lattice break becomes a divergence.
	Synthesis bool
}

// OptimizerMode selects the optimizer configuration the oracle's phases
// run under.
type OptimizerMode uint8

const (
	// OptimizerInherit follows the process default (RSTI_OPT).
	OptimizerInherit OptimizerMode = iota
	// OptimizerOn forces the optimized build in every phase — the
	// configuration the optimizer soak uses so the full attack matrix is
	// exercised against optimized programs.
	OptimizerOn
	// OptimizerOff forces unoptimized builds.
	OptimizerOff
)

// TierMode selects the execution-tier configuration the oracle's phases
// run under.
type TierMode uint8

const (
	// TierInherit follows the process default (RSTI_TIER).
	TierInherit TierMode = iota
	// TierOn forces the direct-threaded tier in every phase — the
	// configuration the tier soak uses so the full attack matrix is
	// exercised against threaded execution.
	TierOn
	// TierOff forces pure switch-interpreter execution.
	TierOff
)

// tierPromoteThreshold is the promotion hotness the tier-forcing paths
// run with: low enough that the short generated programs cross it and
// execute compiled threaded bodies, rather than the tier trivially
// passing by never promoting anything.
const tierPromoteThreshold = 256

// tierVMOptions is the VM configuration for tier-forced runs: the
// defaults, except the lowered promotion threshold.
func tierVMOptions() vm.Options {
	o := vm.DefaultOptions()
	o.TierThreshold = tierPromoteThreshold
	return o
}

// modeOpts translates the modes into run options (nil for inherit).
func (o Options) modeOpts() []rsti.RunOption {
	var opts []rsti.RunOption
	switch o.Optimizer {
	case OptimizerOn:
		opts = append(opts, rsti.WithOptimizer(true))
	case OptimizerOff:
		opts = append(opts, rsti.WithOptimizer(false))
	}
	switch o.Tier {
	case TierOn:
		opts = append(opts, rsti.WithOptions(tierVMOptions()), rsti.WithTier(true))
	case TierOff:
		opts = append(opts, rsti.WithTier(false))
	}
	return opts
}

// DefaultStepBudget bounds one generated-program run. The largest
// generated program executes well under a million modelled steps;
// anything beyond this is a runaway loop.
const DefaultStepBudget = 4 << 20

// Divergence is one oracle violation: an observable difference between
// mechanisms (or between the direct and engine execution paths) that the
// pipeline's semantics forbid.
type Divergence struct {
	Seed      uint64
	Phase     string // "compile", "benign", "engine", "optimizer", "tier", "attack:<variant>", "synth:<family>"
	Mechanism string
	Detail    string
}

func (d Divergence) String() string {
	return fmt.Sprintf("seed=%d phase=%s mech=%s: %s", d.Seed, d.Phase, d.Mechanism, d.Detail)
}

// Report is the outcome of one Check.
type Report struct {
	Cfg         Config
	Source      string
	Divergences []Divergence
}

// OK reports a divergence-free check.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

func (r *Report) add(phase, mech, format string, args ...interface{}) {
	r.Divergences = append(r.Divergences, Divergence{
		Seed: r.Cfg.Seed, Phase: phase, Mechanism: mech,
		Detail: fmt.Sprintf(format, args...),
	})
}

// outcome is the behavioral fingerprint of one run: everything two
// equivalent executions must agree on.
type outcome struct {
	Exit     int64
	Output   string
	Clean    bool
	TrapKind string
	Security bool
	// The modelled-execution portion of vm.Stats. PAC cache hit/miss
	// counters are deliberately excluded: worker-state reuse warms them
	// without affecting any reported number.
	Cycles, Instrs, Loads, Stores, Calls int64
	PacSigns, PacAuths, PacStrips, PPOps int64
}

func outcomeOf(res *rsti.Result) outcome {
	o := outcome{
		Exit:   res.Exit,
		Output: res.Output,
		Clean:  res.Err == nil,
		Cycles: res.Stats.Cycles, Instrs: res.Stats.Instrs,
		Loads: res.Stats.Loads, Stores: res.Stats.Stores, Calls: res.Stats.Calls,
		PacSigns: res.Stats.PacSigns, PacAuths: res.Stats.PacAuths,
		PacStrips: res.Stats.PacStrips, PPOps: res.Stats.PPOps,
	}
	if res.Trap != nil {
		o.TrapKind = res.Trap.Kind.String()
		o.Security = res.Trap.SecurityTrap()
	}
	return o
}

// summary renders the caller-facing portion of an outcome for messages.
func (o outcome) summary() string {
	status := "clean"
	if !o.Clean {
		status = "trap:" + o.TrapKind
	}
	out := o.Output
	if len(out) > 80 {
		out = out[:80] + "..."
	}
	return fmt.Sprintf("exit=%d %s output=%q", o.Exit, status, strings.ReplaceAll(out, "\n", "\\n"))
}

// benignMechs are the mechanisms every benign run is compared across.
var benignMechs = []rsti.Mechanism{rsti.None, rsti.PARTS, rsti.STWC, rsti.STC, rsti.STL, rsti.Adaptive}

// engineMechs are the four protection modes re-executed through the
// engine pool and required to be bit-identical with the direct path.
var engineMechs = []rsti.Mechanism{rsti.None, rsti.STWC, rsti.STC, rsti.STL}

// attackMechs are the mechanisms each corruption variant runs under.
var attackMechs = []rsti.Mechanism{rsti.None, rsti.PARTS, rsti.STWC, rsti.STC, rsti.STL, rsti.Adaptive}

// optimizerMechs are the protected mechanisms whose optimized builds are
// checked for observation-equivalence against their unoptimized twins.
var optimizerMechs = []rsti.Mechanism{rsti.STWC, rsti.STC, rsti.STL, rsti.Adaptive}

// tierMechs are the mechanisms whose direct-threaded executions are
// checked bit-identical against the switch interpreter.
var tierMechs = []rsti.Mechanism{rsti.None, rsti.STWC, rsti.STC, rsti.STL}

// Check generates cfg's program and runs the full differential oracle:
//
//  1. Benign equivalence — the program must exit cleanly with identical
//     exit status and output under every mechanism.
//  2. Engine equivalence — re-running each protection mode on the
//     engine worker pool must reproduce the direct Program.Run outcome
//     bit-for-bit (exit, output, trap, modelled cycle counts).
//  3. Optimizer equivalence — each protected mechanism's
//     PAC-elision-optimized build must reproduce the unoptimized build's
//     benign exit and output exactly, and may only ever execute fewer
//     PAC ops, instructions and cycles. This phase always runs with both
//     configurations forced, regardless of Options.Optimizer.
//  4. Tier equivalence — each mechanism's run with the direct-threaded
//     execution tier forced on (with a promotion threshold low enough
//     that the generated program's functions actually compile) must
//     reproduce the tier-off run's full outcome bit-for-bit: exit,
//     output, trap kind, and every modelled counter including cycles.
//     This phase always runs with both configurations forced,
//     regardless of Options.Tier.
//  5. Attack gradient — each injected corruption must be caught
//     according to the mechanisms' guarantees, detection must be
//     monotone in mechanism strictness (STC ⇒ STWC ⇒ Adaptive ⇒ STL,
//     PARTS ⇒ STWC), the unprotected baseline must never security-trap,
//     and a mechanism that does NOT detect must behave exactly like the
//     baseline's attacked run.
//  6. Attack synthesis (Options.Synthesis) — tampers derived from the
//     compiled program by attack.Synthesize run under every mechanism
//     against their analysis-predicted detect/miss outcomes; any
//     misprediction, monotonicity break or unclean miss is a
//     divergence.
//
// The returned error reports infrastructure failures only; semantic
// violations are Divergences in the Report.
func Check(cfg Config, opt Options) (*Report, error) {
	cfg = cfg.normalize()
	if opt.StepBudget <= 0 {
		opt.StepBudget = DefaultStepBudget
	}
	rep := &Report{Cfg: cfg, Source: Generate(cfg)}

	p, err := rsti.Compile(rep.Source)
	if err != nil {
		// A generated program failing to compile is a generator (or
		// frontend) bug, not an infrastructure failure: report it as a
		// divergence so soak runs surface it with the seed attached.
		rep.add("compile", "-", "generated program does not compile: %v", err)
		return rep, nil
	}

	budget := rsti.WithStepBudget(opt.StepBudget)
	runOpts := append([]rsti.RunOption{budget}, opt.modeOpts()...)

	// Phase 1: benign cross-mechanism equivalence.
	direct := make(map[rsti.Mechanism]outcome, len(benignMechs))
	for _, mech := range benignMechs {
		res, err := p.Run(mech, runOpts...)
		if err != nil {
			return nil, fmt.Errorf("benign %s: %w", mech, err)
		}
		o := outcomeOf(res)
		direct[mech] = o
		if !o.Clean {
			rep.add("benign", mech.String(), "benign run trapped: %s", o.summary())
		}
	}
	base := direct[rsti.None]
	for _, mech := range benignMechs[1:] {
		o := direct[mech]
		if o.Exit != base.Exit || o.Output != base.Output {
			rep.add("benign", mech.String(), "diverges from baseline: %s vs none %s",
				o.summary(), base.summary())
		}
	}

	// Phase 2: engine-path equivalence.
	if opt.EngineWorkers > 0 {
		eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: opt.EngineWorkers})
		for _, mech := range engineMechs {
			res, err := eng.Submit(context.Background(), mech, runOpts...)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("engine %s: %w", mech, err)
			}
			if got, want := outcomeOf(res), direct[mech]; got != want {
				rep.add("engine", mech.String(), "engine result differs from direct run: %+v vs %+v", got, want)
			}
		}
		eng.Close()
	}

	// Phase 3: optimizer equivalence — forced-on vs forced-off builds of
	// every protected mechanism must be observation-equivalent on the
	// benign run, and optimization must never add executed work.
	for _, mech := range optimizerMechs {
		off, err := p.Run(mech, budget, rsti.WithOptimizer(false))
		if err != nil {
			return nil, fmt.Errorf("optimizer off %s: %w", mech, err)
		}
		on, err := p.Run(mech, budget, rsti.WithOptimizer(true))
		if err != nil {
			return nil, fmt.Errorf("optimizer on %s: %w", mech, err)
		}
		oOff, oOn := outcomeOf(off), outcomeOf(on)
		if !oOff.Clean || !oOn.Clean {
			rep.add("optimizer", mech.String(), "benign run trapped: off=%s on=%s",
				oOff.summary(), oOn.summary())
			continue
		}
		if oOn.Exit != oOff.Exit || oOn.Output != oOff.Output {
			rep.add("optimizer", mech.String(), "optimized build diverges: on=%s off=%s",
				oOn.summary(), oOff.summary())
		}
		if on.Stats.PACOps() > off.Stats.PACOps() {
			rep.add("optimizer", mech.String(), "optimizer increased PAC ops: %d > %d",
				on.Stats.PACOps(), off.Stats.PACOps())
		}
		if oOn.Instrs > oOff.Instrs || oOn.Cycles > oOff.Cycles {
			rep.add("optimizer", mech.String(), "optimizer increased work: instrs %d vs %d, cycles %d vs %d",
				oOn.Instrs, oOff.Instrs, oOn.Cycles, oOff.Cycles)
		}
	}

	// Phase 4: tier equivalence — the direct-threaded tier must be an
	// observationally invisible host-speed change. Both sides force the
	// tier explicitly so the phase is meaningful whatever RSTI_TIER says.
	optMode := opt
	optMode.Tier = TierInherit // tier is what this phase varies
	for _, mech := range tierMechs {
		off, err := p.Run(mech, append([]rsti.RunOption{budget, rsti.WithTier(false)}, optMode.modeOpts()...)...)
		if err != nil {
			return nil, fmt.Errorf("tier off %s: %w", mech, err)
		}
		on, err := p.Run(mech, append([]rsti.RunOption{budget, rsti.WithOptions(tierVMOptions()), rsti.WithTier(true)}, optMode.modeOpts()...)...)
		if err != nil {
			return nil, fmt.Errorf("tier on %s: %w", mech, err)
		}
		if got, want := outcomeOf(on), outcomeOf(off); got != want {
			rep.add("tier", mech.String(), "threaded tier diverges from interpreter: %+v vs %+v", got, want)
		}
	}

	// Phase 5: the attack gradient.
	if opt.Attacks {
		for _, v := range variants(cfg) {
			checkAttack(rep, p, v, opt)
		}
	}

	// Phase 6: attack synthesis — the machine-derived tamper set replaces
	// trust in the hand-written variant list. Every generated program
	// carries a __hook(1) site, so synthesis always has a corruption
	// point; its internal confirmation already enforces prediction match,
	// detection monotonicity and baseline-equivalence of undetected runs,
	// so any problem it reports is a semantic divergence here.
	if opt.Synthesis {
		c, err := core.Compile(rep.Source)
		if err != nil {
			return nil, fmt.Errorf("synthesis compile: %w", err)
		}
		mode := core.OptimizeDefault
		switch opt.Optimizer {
		case OptimizerOn:
			mode = core.OptimizeOn
		case OptimizerOff:
			mode = core.OptimizeOff
		}
		synth, err := attack.Synthesize(c, attack.SynthOptions{
			StepBudget: opt.StepBudget,
			Optimize:   mode,
		})
		if err != nil {
			return nil, fmt.Errorf("synthesis: %w", err)
		}
		for _, res := range synth.Tampers {
			for _, problem := range res.Problems {
				rep.add("synth:"+res.Tamper.Family, "-", "%s: %s", res.Tamper, problem)
			}
		}
		if len(synth.Tampers) == 0 {
			// Pass-level problems (e.g. no authenticated slot to attack).
			for _, problem := range synth.Problems {
				rep.add("synth", "-", "%s", problem)
			}
		}
	}
	return rep, nil
}

// checkAttack runs one corruption variant under every mechanism and
// enforces the detection guarantees.
func checkAttack(rep *Report, p *rsti.Program, v attackVariant, opt Options) {
	phase := "attack:" + v.Name
	det := make(map[string]bool, len(attackMechs))
	outs := make(map[string]outcome, len(attackMechs))
	for _, mech := range attackMechs {
		runOpts := append([]rsti.RunOption{rsti.WithStepBudget(opt.StepBudget), rsti.WithHook(1, v.Hook)}, opt.modeOpts()...)
		res, err := p.Run(mech, runOpts...)
		if err != nil {
			rep.add(phase, mech.String(), "infrastructure error: %v", err)
			return
		}
		o := outcomeOf(res)
		det[mech.String()] = res.Detected()
		outs[mech.String()] = o

		switch {
		case res.Detected():
			// A detection must surface as a typed security TrapError.
			var te *rsti.TrapError
			if !errors.As(res.Err, &te) || !te.SecurityTrap() {
				rep.add(phase, mech.String(), "detection without a security TrapError: %v", res.Err)
			}
		case !o.Clean:
			// Undetected runs must not crash some other way: the
			// corrupted values still reference mapped memory.
			rep.add(phase, mech.String(), "non-security trap on attacked run: %s", o.summary())
		}
	}

	// The unprotected baseline never detects anything.
	if det["none"] {
		rep.add(phase, "none", "baseline security-trapped: %s", outs["none"].summary())
	}

	// Monotone detection in mechanism strictness.
	for _, ord := range [][2]string{
		{"rsti-stc", "rsti-stwc"},
		{"parts", "rsti-stwc"},
		{"rsti-stwc", "rsti-adaptive"},
		{"rsti-adaptive", "rsti-stl"},
	} {
		if det[ord[0]] && !det[ord[1]] {
			rep.add(phase, ord[1], "detection not monotone: %s detected but %s did not", ord[0], ord[1])
		}
	}

	// Per-variant guarantees.
	for _, mech := range v.MustDetect {
		if !det[mech] {
			rep.add(phase, mech, "guaranteed detection missed: %s", outs[mech].summary())
		}
	}
	for _, mech := range v.MustMiss {
		if det[mech] {
			rep.add(phase, mech, "mechanism cannot distinguish this corruption but trapped: %s", outs[mech].summary())
		}
	}

	// A mechanism that lets the corruption through must behave exactly
	// like the unprotected baseline's attacked run.
	base := outs["none"]
	for mech, o := range outs {
		if mech == "none" || det[mech] || !o.Clean {
			continue
		}
		if o.Exit != base.Exit || o.Output != base.Output {
			rep.add(phase, mech, "undetected attack diverges from baseline: %s vs none %s",
				o.summary(), base.summary())
		}
	}
}

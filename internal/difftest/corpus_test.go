package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusDir is the repository-level corpus location (tests run with the
// package directory as cwd).
var corpusDir = filepath.Join("..", "..", "testdata", "difftest")

// TestCorpusRegressions replays every committed seed in
// testdata/difftest/seeds.txt through the full oracle — the permanent
// home for seeds of previously fixed divergences.
func TestCorpusRegressions(t *testing.T) {
	seeds, err := ReadSeeds(filepath.Join(corpusDir, "seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty regression corpus")
	}
	opt := Options{Attacks: true, EngineWorkers: 1}
	for _, seed := range seeds {
		rep, err := Check(ConfigForSeed(seed), opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range rep.Divergences {
			t.Errorf("%s", d)
		}
	}
}

// TestSaveFailureAndMinimize exercises the persistence and minimization
// machinery against a synthetic divergence (a report constructed by
// hand — the healthy pipeline has no real one to use).
func TestSaveFailureAndMinimize(t *testing.T) {
	dir := t.TempDir()
	cfg := ConfigForSeed(99)
	rep := &Report{Cfg: cfg, Source: Generate(cfg)}
	rep.add("benign", "rsti-stwc", "synthetic divergence for the persistence test")

	paths, err := SaveFailure(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("SaveFailure wrote %d files, want 3 (.c, .txt, .json)", len(paths))
	}
	src, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != rep.Source {
		t.Error("saved source differs from report source")
	}
	meta, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replay: go run ./cmd/rstifuzz -seed 99", "synthetic divergence"} {
		if !strings.Contains(string(meta), want) {
			t.Errorf("metadata lacks %q:\n%s", want, meta)
		}
	}

	// The JSON sidecar must round-trip the exact Config, so a persisted
	// failure regenerates the byte-identical program under `go test`.
	records, err := LoadFailures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("LoadFailures found %d records, want 1", len(records))
	}
	if records[0].Config != cfg {
		t.Errorf("sidecar config %+v, want %+v", records[0].Config, cfg)
	}
	if len(records[0].Divergences) != 1 || !strings.Contains(records[0].Divergences[0], "synthetic divergence") {
		t.Errorf("sidecar divergences: %v", records[0].Divergences)
	}

	// Minimize on a healthy config is the identity (no divergence to
	// preserve) and must not loop or error.
	min, minRep, err := Minimize(cfg, Options{EngineWorkers: 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if minRep == nil || !minRep.OK() {
		t.Fatalf("healthy config reported divergences: %+v", minRep)
	}
	if min != cfg.normalize() {
		t.Errorf("healthy config was mutated by Minimize: %+v -> %+v", cfg.normalize(), min)
	}
}

// TestPersistedFailures replays every committed failure reproduction in
// testdata/difftest/failures/*.json through the full oracle under plain
// `go test` — no rstifuzz invocation needed. A healthy corpus has none
// (soak failures are only committed while a divergence is being fixed,
// and this test keeps failing until it is); a corrupt sidecar fails
// loudly rather than silently skipping the reproduction.
func TestPersistedFailures(t *testing.T) {
	records, err := LoadFailures(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Skip("no persisted failures (healthy corpus)")
	}
	opt := Options{Attacks: true, Synthesis: true, EngineWorkers: 1}
	for _, fr := range records {
		rep, err := Check(fr.Config, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", fr.Config.Seed, err)
		}
		for _, d := range rep.Divergences {
			t.Errorf("%s", d)
		}
		if t.Failed() {
			t.Fatalf("persisted failure seed %d still diverges (originally: %v)",
				fr.Config.Seed, fr.Divergences)
		}
	}
}

// TestReadSeedsRejectsGarbage: corpus parse errors must be loud, not
// silently skipped.
func TestReadSeedsRejectsGarbage(t *testing.T) {
	p := filepath.Join(t.TempDir(), "seeds.txt")
	if err := os.WriteFile(p, []byte("1\nnot-a-seed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSeeds(p); err == nil {
		t.Fatal("garbage seed accepted")
	}
	if err := os.WriteFile(p, []byte("# only comments\n\n  5 \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	seeds, err := ReadSeeds(p)
	if err != nil || len(seeds) != 1 || seeds[0] != 5 {
		t.Fatalf("ReadSeeds = %v, %v; want [5]", seeds, err)
	}
}

package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusDir is the repository-level corpus location (tests run with the
// package directory as cwd).
var corpusDir = filepath.Join("..", "..", "testdata", "difftest")

// TestCorpusRegressions replays every committed seed in
// testdata/difftest/seeds.txt through the full oracle — the permanent
// home for seeds of previously fixed divergences.
func TestCorpusRegressions(t *testing.T) {
	seeds, err := ReadSeeds(filepath.Join(corpusDir, "seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("empty regression corpus")
	}
	opt := Options{Attacks: true, EngineWorkers: 1}
	for _, seed := range seeds {
		rep, err := Check(ConfigForSeed(seed), opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range rep.Divergences {
			t.Errorf("%s", d)
		}
	}
}

// TestSaveFailureAndMinimize exercises the persistence and minimization
// machinery against a synthetic divergence (a report constructed by
// hand — the healthy pipeline has no real one to use).
func TestSaveFailureAndMinimize(t *testing.T) {
	dir := t.TempDir()
	cfg := ConfigForSeed(99)
	rep := &Report{Cfg: cfg, Source: Generate(cfg)}
	rep.add("benign", "rsti-stwc", "synthetic divergence for the persistence test")

	paths, err := SaveFailure(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("SaveFailure wrote %d files, want 2", len(paths))
	}
	src, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != rep.Source {
		t.Error("saved source differs from report source")
	}
	meta, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"replay: go run ./cmd/rstifuzz -seed 99", "synthetic divergence"} {
		if !strings.Contains(string(meta), want) {
			t.Errorf("metadata lacks %q:\n%s", want, meta)
		}
	}

	// Minimize on a healthy config is the identity (no divergence to
	// preserve) and must not loop or error.
	min, minRep, err := Minimize(cfg, Options{EngineWorkers: 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if minRep == nil || !minRep.OK() {
		t.Fatalf("healthy config reported divergences: %+v", minRep)
	}
	if min != cfg.normalize() {
		t.Errorf("healthy config was mutated by Minimize: %+v -> %+v", cfg.normalize(), min)
	}
}

// TestReadSeedsRejectsGarbage: corpus parse errors must be loud, not
// silently skipped.
func TestReadSeedsRejectsGarbage(t *testing.T) {
	p := filepath.Join(t.TempDir(), "seeds.txt")
	if err := os.WriteFile(p, []byte("1\nnot-a-seed\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSeeds(p); err == nil {
		t.Fatal("garbage seed accepted")
	}
	if err := os.WriteFile(p, []byte("# only comments\n\n  5 \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	seeds, err := ReadSeeds(p)
	if err != nil || len(seeds) != 1 || seeds[0] != 5 {
		t.Fatalf("ReadSeeds = %v, %v; want [5]", seeds, err)
	}
}

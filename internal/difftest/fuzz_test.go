package difftest

import (
	"context"
	"testing"

	"rsti"
)

// FuzzDifferential is the native full-pipeline fuzz target: each input
// seed expands into a generated program that must survive the complete
// differential oracle — benign cross-mechanism equivalence, engine-path
// bit-identity, and the attack-detection gradient. Under plain `go
// test` it replays the seed corpus; `go test -fuzz=FuzzDifferential
// ./internal/difftest` explores further (CI runs a 30s smoke of this).
func FuzzDifferential(f *testing.F) {
	for seed := uint64(1); seed <= 12; seed++ {
		f.Add(seed)
	}
	// Seeds chosen to pin down each generator extreme: minimal and
	// maximal knobs, cast bridge on/off, single-struct programs.
	f.Add(uint64(0))
	f.Add(uint64(0xDEADBEEF))
	f.Add(uint64(1 << 40))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rep, err := Check(ConfigForSeed(seed), Options{Attacks: true, EngineWorkers: 1})
		if err != nil {
			t.Fatalf("seed %d: infrastructure: %v", seed, err)
		}
		if !rep.OK() {
			for _, d := range rep.Divergences {
				t.Errorf("%s", d)
			}
			t.Fatalf("seed %d diverged; replay: go run ./cmd/rstifuzz -seed %d -n 1\nsource:\n%s",
				seed, seed, rep.Source)
		}
	})
}

// FuzzDifferentialSource extends the internal/cminor frontend fuzz
// seeds into full-pipeline fuzzing over arbitrary source text. For
// hand-written or mutated sources the cross-mechanism guarantee does
// not hold in general (a type-confused but C-legal program may
// legitimately trap only under RSTI), so the invariants here are the
// unconditional ones:
//
//   - the pipeline never panics on input that compiles,
//   - each mechanism is deterministic (two runs, identical outcome),
//   - the engine path reproduces the direct path bit-for-bit.
func FuzzDifferentialSource(f *testing.F) {
	seeds := []string{
		"int main(void) { return 0; }",
		"struct s { int a; struct s *next; };",
		"typedef struct { void (*fp)(int); } t; int main(void) { t *x = (t*) malloc(8); return 0; }",
		"enum e { A, B = 2 }; int main(void) { switch (A) { case B: break; } return A; }",
		"int f(int **pp) { return **pp; }",
		"int main(void) { for (int i = 0; i < 3; i++) { do { i++; } while (0); } return 0; }",
		"char *s = \"str\\n\"; int main(void) { return (int) strlen(s); }",
		"int main(void) { int a[2][2]; a[1][1] = 4; return a[1][1]; }",
		// Full-pipeline shapes the frontend seeds lack: signing stores,
		// indirect calls, and a pointer round-trip.
		"int ok(void){return 1;} int (*h)(void); int main(void){ h = ok; return h(); }",
		"struct n { long v; struct n *p; }; int main(void){ struct n *a = (struct n*) malloc(16); a->v = 7; void *q = (void*) a; struct n *b = (struct n*) q; return (int) b->v; }",
		Generate(ConfigForSeed(1)),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		p, err := rsti.Compile(src)
		if err != nil {
			return // frontend rejection is FuzzFrontend's domain
		}
		const budget = 1 << 16
		for _, mech := range []rsti.Mechanism{rsti.None, rsti.STWC, rsti.STC, rsti.STL} {
			r1, err1 := p.Run(mech, rsti.WithStepBudget(budget))
			r2, err2 := p.Run(mech, rsti.WithStepBudget(budget))
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: nondeterministic infrastructure error: %v vs %v", mech, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if o1, o2 := outcomeOf(r1), outcomeOf(r2); o1 != o2 {
				t.Fatalf("%s: nondeterministic run: %+v vs %+v\nsource:\n%s", mech, o1, o2, src)
			}
		}
		eng := rsti.NewEngine(p, rsti.EngineConfig{Workers: 1})
		defer eng.Close()
		for _, mech := range []rsti.Mechanism{rsti.None, rsti.STWC} {
			direct, derr := p.Run(mech, rsti.WithStepBudget(budget))
			pooled, perr := eng.Submit(context.Background(), mech, rsti.WithStepBudget(budget))
			if (derr == nil) != (perr == nil) {
				t.Fatalf("%s: engine/direct error mismatch: %v vs %v", mech, derr, perr)
			}
			if derr != nil {
				continue
			}
			if od, op := outcomeOf(direct), outcomeOf(pooled); od != op {
				t.Fatalf("%s: engine diverges from direct: %+v vs %+v\nsource:\n%s", mech, od, op, src)
			}
		}
	})
}

package difftest

import (
	"fmt"

	"rsti/internal/vm"
)

// An attackVariant is one corruption injected at the generated program's
// __hook(1) site, modelling an exploit's arbitrary-write primitive the
// way internal/attack's Table 1 scenarios do. Each variant carries the
// detection expectations the mechanisms' guarantees imply; expectations
// the analysis cannot promise for every program shape are left nil.
type attackVariant struct {
	Name string
	Hook vm.Hook
	// MustDetect lists mechanism names (sti.Mechanism.String) that are
	// guaranteed to trap this corruption on every generated program.
	MustDetect []string
	// MustMiss lists mechanisms guaranteed NOT to trap it — the
	// paper's detection gradient (a same-class replay shares the STWC
	// modifier, so only STL's location binding can catch it).
	MustMiss []string
}

// variants returns the corruption set for a generated program. All four
// rely only on names Generate always emits (slotA, slotB, slotC,
// fp_slot, f0..fN-1).
func variants(cfg Config) []attackVariant {
	cfg = cfg.normalize()
	out := []attackVariant{
		{
			// The classic control-flow hijack: overwrite the global
			// function pointer with a different function's raw entry
			// token. The token carries no PAC, so every signing
			// mechanism — PARTS included — must trap the post-hook
			// call; the baseline happily calls the substituted target.
			Name:       "raw-fp",
			Hook:       rawFPHook(cfg.Targets),
			MustDetect: []string{"parts", "rsti-stwc", "rsti-stc", "rsti-stl", "rsti-adaptive"},
		},
		{
			// A raw data-pointer overwrite: slotA is pointed at slotB's
			// object using the canonical (unsigned) address an
			// arbitrary-write attacker would forge.
			Name:       "raw-data",
			Hook:       rawDataHook(),
			MustDetect: []string{"parts", "rsti-stwc", "rsti-stc", "rsti-stl", "rsti-adaptive"},
		},
		{
			// The pointer-substitution replay inside one equivalence
			// class: slotB's correctly signed value is copied over
			// slotA. slotA and slotB share basic type, scope and
			// permission by construction, so STWC/STC authenticate the
			// replayed value with the very modifier it was signed under
			// — only STL's &p binding distinguishes the slots. This is
			// the STL ⊋ STWC guarantee the paper argues.
			Name:       "replay-same-class",
			Hook:       replayHook("slotB", "slotA"),
			MustDetect: []string{"rsti-stl"},
			MustMiss:   []string{"parts", "rsti-stwc", "rsti-stc"},
		},
	}
	if cfg.SlotCDistinct() {
		// A cross-type replay: slotC's signed value (a different
		// RSTI-type: different struct, different scope) over slotA.
		// STWC's per-triple classes must catch it; STC may legitimately
		// miss it when a cast bridge merged the two types — exactly the
		// STWC ⊋ STC gap — so STC carries no expectation here beyond
		// the monotonicity the oracle always enforces.
		out = append(out, attackVariant{
			Name:       "replay-cross-type",
			Hook:       replayHook("slotC", "slotA"),
			MustDetect: []string{"rsti-stwc", "rsti-stl", "rsti-adaptive"},
		})
	}
	return out
}

// rawFPHook overwrites fp_slot with the entry token of some function
// other than the one currently installed.
func rawFPHook(targets int) vm.Hook {
	return func(m *vm.Machine) error {
		addr, ok := m.GlobalAddr("fp_slot")
		if !ok {
			return fmt.Errorf("difftest: no global fp_slot")
		}
		cur, err := m.Mem.Peek(addr, 8)
		if err != nil {
			return err
		}
		for i := 0; i < targets; i++ {
			tok, ok := m.FuncToken(fmt.Sprintf("f%d", i))
			if !ok {
				break
			}
			if tok != m.Unit.Canonical(cur) {
				return m.Mem.Poke(addr, tok, 8)
			}
		}
		return fmt.Errorf("difftest: no substitute function token found")
	}
}

// rawDataHook points slotA at slotB's heap object via the canonical
// address (no PAC), the raw-write data attack.
func rawDataHook() vm.Hook {
	return func(m *vm.Machine) error {
		src, ok := m.GlobalAddr("slotB")
		if !ok {
			return fmt.Errorf("difftest: no global slotB")
		}
		dst, ok := m.GlobalAddr("slotA")
		if !ok {
			return fmt.Errorf("difftest: no global slotA")
		}
		v, err := m.Mem.Peek(src, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(dst, m.Unit.Canonical(v), 8)
	}
}

// replayHook copies the (possibly signed) 8-byte value stored in global
// src over global dst — the substitution/replay primitive.
func replayHook(src, dst string) vm.Hook {
	return func(m *vm.Machine) error {
		s, ok := m.GlobalAddr(src)
		if !ok {
			return fmt.Errorf("difftest: no global %s", src)
		}
		d, ok := m.GlobalAddr(dst)
		if !ok {
			return fmt.Errorf("difftest: no global %s", dst)
		}
		v, err := m.Mem.Peek(s, 8)
		if err != nil {
			return err
		}
		return m.Mem.Poke(d, v, 8)
	}
}

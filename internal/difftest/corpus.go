package difftest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Corpus layout (testdata/difftest/ at the repository root):
//
//	seeds.txt        committed regression seeds, one decimal seed per
//	                 line ('#' comments allowed); replayed by
//	                 TestCorpusRegressions and `rstifuzz -replay`.
//	failures/        divergence reproductions written by soak runs:
//	                 seed-<N>.c (the minimized source), seed-<N>.txt
//	                 (config, divergences, replay command) and
//	                 seed-<N>.json (the machine-readable minimized
//	                 Config TestPersistedFailures replays under plain
//	                 `go test`). Never committed while the pipeline is
//	                 healthy; a committed failure keeps failing the test
//	                 suite until the divergence is fixed.

// ReadSeeds parses a seeds.txt-style corpus file.
func ReadSeeds(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var seeds []uint64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad seed %q: %w", path, line, err)
		}
		seeds = append(seeds, n)
	}
	return seeds, sc.Err()
}

// FailureRecord is the machine-readable seed-<N>.json sidecar of a
// persisted failure: the exact (minimized) Config the oracle diverged on
// plus the divergence lines observed when it was saved. The Config — not
// the source — is the reproduction: Generate is deterministic, so
// replaying the Config regenerates the byte-identical program.
type FailureRecord struct {
	Config      Config   `json:"config"`
	Divergences []string `json:"divergences"`
}

// SaveFailure persists a diverging report under dir/failures: the
// (minimized) source as seed-<N>.c, a replay description as seed-<N>.txt
// and the machine-readable FailureRecord as seed-<N>.json — the file
// TestPersistedFailures replays under plain `go test`. It returns the
// written paths.
func SaveFailure(dir string, rep *Report) ([]string, error) {
	fdir := filepath.Join(dir, "failures")
	if err := os.MkdirAll(fdir, 0o755); err != nil {
		return nil, err
	}
	cPath := filepath.Join(fdir, fmt.Sprintf("seed-%d.c", rep.Cfg.Seed))
	tPath := filepath.Join(fdir, fmt.Sprintf("seed-%d.txt", rep.Cfg.Seed))
	jPath := filepath.Join(fdir, fmt.Sprintf("seed-%d.json", rep.Cfg.Seed))
	if err := os.WriteFile(cPath, []byte(rep.Source), 0o644); err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "replay: go run ./cmd/rstifuzz -seed %d -n 1\n", rep.Cfg.Seed)
	fmt.Fprintf(&b, "config: %+v\n", rep.Cfg)
	fmt.Fprintf(&b, "divergences (%d):\n", len(rep.Divergences))
	for _, d := range rep.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if err := os.WriteFile(tPath, []byte(b.String()), 0o644); err != nil {
		return nil, err
	}
	fr := FailureRecord{Config: rep.Cfg}
	for _, d := range rep.Divergences {
		fr.Divergences = append(fr.Divergences, d.String())
	}
	data, err := json.MarshalIndent(fr, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(jPath, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return []string{cPath, tPath, jPath}, nil
}

// LoadFailures reads every seed-<N>.json sidecar under dir/failures. A
// missing failures directory is an empty (healthy) corpus; a sidecar
// that fails to parse is an error — a reproduction that cannot replay
// must be loud.
func LoadFailures(dir string) ([]FailureRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "failures", "seed-*.json"))
	if err != nil {
		return nil, err
	}
	var out []FailureRecord
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var fr FailureRecord
		if err := json.Unmarshal(data, &fr); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, fr)
	}
	return out, nil
}

// Minimize greedily shrinks a diverging Config while the oracle still
// reports a divergence, so saved reproductions are as small as the
// divergence allows. It re-checks at most budget candidates and returns
// the smallest still-diverging config with its report. The Seed is held
// fixed — the statement mix it selects is usually what matters.
func Minimize(cfg Config, opt Options, budget int) (Config, *Report, error) {
	cfg = cfg.normalize()
	cur, err := Check(cfg, opt)
	if err != nil {
		return cfg, nil, err
	}
	if cur.OK() {
		return cfg, cur, nil // nothing to minimize
	}
	diverges := func(c Config) (*Report, bool) {
		if budget <= 0 {
			return nil, false
		}
		budget--
		rep, err := Check(c, opt)
		if err != nil || rep.OK() {
			return nil, false
		}
		return rep, true
	}
	for changed := true; changed && budget > 0; {
		changed = false
		for _, cand := range shrinkSteps(cfg) {
			if rep, ok := diverges(cand); ok {
				cfg, cur, changed = cand, rep, true
				break
			}
		}
	}
	return cfg, cur, nil
}

// shrinkSteps proposes configs strictly smaller than c, most aggressive
// first.
func shrinkSteps(c Config) []Config {
	var out []Config
	shrinkInt := func(set func(*Config, int), cur, min int) {
		for _, v := range []int{min, cur / 2, cur - 1} {
			if v >= min && v < cur {
				n := c
				set(&n, v)
				out = append(out, n)
			}
		}
	}
	shrinkInt(func(n *Config, v int) { n.Iters = v }, c.Iters, 1)
	shrinkInt(func(n *Config, v int) { n.Stmts = v }, c.Stmts, 1)
	shrinkInt(func(n *Config, v int) { n.ChainLen = v }, c.ChainLen, 1)
	shrinkInt(func(n *Config, v int) { n.Helpers = v }, c.Helpers, 0)
	shrinkInt(func(n *Config, v int) { n.Structs = v }, c.Structs, 1)
	shrinkInt(func(n *Config, v int) { n.Targets = v }, c.Targets, 2)
	for _, clear := range []func(*Config){
		func(n *Config) { n.UseSwitch = false },
		func(n *Config) { n.Escapes = false },
		func(n *Config) { n.CastBridge = false },
	} {
		n := c
		clear(&n)
		if n != c {
			out = append(out, n)
		}
	}
	return out
}

// Package difftest is the standing correctness gate for the RSTI
// pipeline: a seeded random program generator for the cminor C subset
// plus a differential oracle that executes each generated program under
// every protection mechanism — through both the public Program.Run path
// and the concurrent engine pool — and flags any divergence.
//
// The paper's claim is behavioral: benign programs must run identically
// under NoProtection, RSTI-STWC, RSTI-STC and RSTI-STL, while injected
// pointer corruptions must trap according to each mechanism's guarantee
// (STL's equivalence class of one catches replays that STWC's and STC's
// merged classes may miss). The oracle checks exactly that, so every
// fast path, cache and worker pool added by later performance work is
// re-validated against the semantics it must preserve.
//
// Entry points: Generate (deterministic source for a Config),
// ConfigForSeed (derive a Config from one seed), Check (the oracle).
// cmd/rstifuzz drives long soak runs; FuzzDifferential is the native
// go-fuzz target.
package difftest

import (
	"fmt"
	"strings"
)

// Config parameterizes one generated program. Every field is derived
// deterministically from a seed by ConfigForSeed, but the knobs are
// exported so failures minimize (see Minimize) and replay exactly.
type Config struct {
	// Seed drives every random choice the generator makes.
	Seed uint64

	// Structs is the number of composite node types (1..4). Every
	// struct starts with a `long v` field so cross-type pointer replays
	// stay memory-safe under the unprotected baseline.
	Structs int
	// Targets is the number of indirect-call target functions (2..5).
	Targets int
	// Helpers is the number of helper functions taking pointer
	// parameters — the scope diversity of the STI analysis (0..4).
	Helpers int
	// Iters bounds the hot loop (1..24); ChainLen the linked chain
	// walked by it (1..6).
	Iters    int
	ChainLen int
	// Stmts is the number of random statements emitted into the hot
	// loop body (1..10).
	Stmts int
	// CastBridge, when true, links the first two struct types through a
	// void* round-trip, giving STC a cast edge to merge — the knob that
	// separates STC's detection from STWC's.
	CastBridge bool
	// Escapes, when true, passes &local into a helper (scoped escape).
	Escapes bool
	// UseSwitch adds a switch statement over the loop counter.
	UseSwitch bool
}

// ConfigForSeed expands one 64-bit seed into a full Config using
// splitmix64, the same deterministic expansion the CLI and fuzz targets
// use, so a reported seed is a complete reproduction recipe.
func ConfigForSeed(seed uint64) Config {
	r := rng{s: seed ^ 0xD1FF7E57}
	return Config{
		Seed:       seed,
		Structs:    1 + r.intn(4),
		Targets:    2 + r.intn(4),
		Helpers:    r.intn(5),
		Iters:      1 + r.intn(24),
		ChainLen:   1 + r.intn(6),
		Stmts:      1 + r.intn(10),
		CastBridge: r.intn(2) == 1,
		Escapes:    r.intn(2) == 1,
		UseSwitch:  r.intn(2) == 1,
	}
}

// normalize clamps a (possibly minimized or fuzz-mutated) Config into
// the generator's supported ranges.
func (c Config) normalize() Config {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	c.Structs = clamp(c.Structs, 1, 4)
	c.Targets = clamp(c.Targets, 2, 5)
	c.Helpers = clamp(c.Helpers, 0, 4)
	c.Iters = clamp(c.Iters, 1, 24)
	c.ChainLen = clamp(c.ChainLen, 1, 6)
	c.Stmts = clamp(c.Stmts, 1, 10)
	return c
}

// SlotCDistinct reports whether slotC's struct type is distinct from
// slotA/slotB's (requires at least two struct types). The oracle's
// cross-type replay expectations only apply when it is.
func (c Config) SlotCDistinct() bool { return c.normalize().Structs >= 2 }

// rng is splitmix64: tiny, seedable, deterministic (the same generator
// the workload package uses).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generate renders cfg into cminor source. The output is deterministic
// (same Config, same bytes), always type-checks, always terminates, and
// never traps on a benign run: loops are bounded, divisions are
// guarded, every dereference goes through an initialized pointer, and
// no pointer value is printed or cast to an integer (which would make
// output PAC-dependent).
//
// The program always declares the attack surface the oracle's injected
// corruptions rely on:
//
//	struct S0 *slotA, *slotB;   // same RSTI-type: the replay gradient
//	struct S1 *slotC;           // a cross-type replay source
//	long (*fp_slot)(long);      // the classic control-flow hijack slot
//
// slotA and slotB are used symmetrically in every function that touches
// either, so they intern to one RSTI-type: a same-class replay between
// them must pass STWC/STC (one shared modifier) and trap under STL (the
// modifier binds &slotA). main's __hook(1) site fires after the slots
// are populated and before they are read, so a corruption injected
// there is always exercised.
func Generate(cfg Config) string {
	cfg = cfg.normalize()
	r := &rng{s: cfg.Seed ^ 0x5EEDFACE}
	var b strings.Builder

	// Composite types: a self chain, a cross-type peer (ring), and an
	// indirect-call slot. `long v` is first in every type so a replayed
	// cross-type pointer still reads a mapped long under NoProtection.
	slotCTy := (1) % cfg.Structs // slotC's type: distinct from S0 when possible
	for i := 0; i < cfg.Structs; i++ {
		fmt.Fprintf(&b, "struct S%d { long v; struct S%d *next; struct S%d *peer; long (*op)(long); };\n",
			i, i, (i+1)%cfg.Structs)
	}
	b.WriteString("\n")

	// Indirect-call targets with small random bodies.
	for i := 0; i < cfg.Targets; i++ {
		fmt.Fprintf(&b, "long f%d(long x) { return %s; }\n", i, genArith(r, "x", 2))
	}
	b.WriteString("\n")

	// Globals: the attack surface plus an accumulator and scalars.
	b.WriteString("long acc;\n")
	fmt.Fprintf(&b, "long g0 = %d;\n", 1+r.intn(9))
	fmt.Fprintf(&b, "long g1 = %d;\n", 1+r.intn(9))
	b.WriteString("struct S0 *slotA;\n")
	b.WriteString("struct S0 *slotB;\n")
	fmt.Fprintf(&b, "struct S%d *slotC;\n", slotCTy)
	b.WriteString("long (*fp_slot)(long);\n\n")

	// Helpers: pointer parameters diversify scopes; escape0 receives
	// &local when cfg.Escapes is set.
	helperTy := make([]int, cfg.Helpers)
	for h := 0; h < cfg.Helpers; h++ {
		st := r.intn(cfg.Structs)
		helperTy[h] = st
		fmt.Fprintf(&b, "long helper%d(struct S%d *p, long k) {\n", h, st)
		fmt.Fprintf(&b, "\tif (p != NULL) { acc += p->v + %d; }\n", r.intn(7))
		fmt.Fprintf(&b, "\treturn %s;\n}\n", genArith(r, "k", 1+r.intn(2)))
	}
	if cfg.Escapes {
		b.WriteString("long escape0(long *q) { *q = *q + 5; return *q ^ 3; }\n")
	}
	b.WriteString("\n")

	// setup: allocate and link everything the rest of the program
	// dereferences, so no benign run can fault.
	b.WriteString("void setup(void) {\n")
	b.WriteString("\tslotA = (struct S0*) malloc(sizeof(struct S0));\n")
	b.WriteString("\tslotB = (struct S0*) malloc(sizeof(struct S0));\n")
	fmt.Fprintf(&b, "\tslotC = (struct S%d*) malloc(sizeof(struct S%d));\n", slotCTy, slotCTy)
	fmt.Fprintf(&b, "\tslotA->v = %d; slotA->next = NULL; slotA->peer = NULL;\n", 10+r.intn(90))
	fmt.Fprintf(&b, "\tslotB->v = %d; slotB->next = NULL; slotB->peer = NULL;\n", 10+r.intn(90))
	fmt.Fprintf(&b, "\tslotC->v = %d; slotC->next = NULL; slotC->peer = NULL;\n", 10+r.intn(90))
	fmt.Fprintf(&b, "\tslotA->op = f%d;\n", r.intn(cfg.Targets))
	fmt.Fprintf(&b, "\tslotB->op = f%d;\n", r.intn(cfg.Targets))
	fmt.Fprintf(&b, "\tslotC->op = f%d;\n", r.intn(cfg.Targets))
	fmt.Fprintf(&b, "\tfp_slot = f%d;\n", r.intn(cfg.Targets))
	// Extend slotA's chain; keep the tail NULL so walks must be guarded.
	fmt.Fprintf(&b, "\tstruct S0 *tail = slotA;\n")
	fmt.Fprintf(&b, "\tfor (long i = 1; i < %d; i++) {\n", cfg.ChainLen+1)
	b.WriteString("\t\tstruct S0 *n = (struct S0*) malloc(sizeof(struct S0));\n")
	fmt.Fprintf(&b, "\t\tn->v = i * %d + %d;\n", 1+r.intn(5), r.intn(9))
	fmt.Fprintf(&b, "\t\tn->op = f%d;\n", r.intn(cfg.Targets))
	b.WriteString("\t\tn->next = NULL; n->peer = NULL;\n")
	b.WriteString("\t\ttail->next = n;\n")
	b.WriteString("\t\ttail = n;\n")
	b.WriteString("\t}\n")
	if cfg.CastBridge {
		// A void*-mediated bridge between S0* and the slotC type: the
		// cast edge STC's union-find merges and STWC keeps apart.
		b.WriteString("\tvoid *bridge = (void*) slotA;\n")
		fmt.Fprintf(&b, "\tstruct S%d *bridged = (struct S%d*) bridge;\n", slotCTy, slotCTy)
		b.WriteString("\tif (bridged != NULL) { acc += 1; }\n")
	}
	b.WriteString("}\n\n")

	// hot: the randomized bounded loop over the generated statement mix.
	// slotA and slotB are referenced symmetrically so they stay in one
	// equivalence class.
	b.WriteString("long hot(void) {\n")
	b.WriteString("\tlong sum = 0;\n")
	b.WriteString("\tstruct S0 *p = slotA;\n")
	if cfg.Escapes {
		b.WriteString("\tlong loc = 1;\n")
	}
	fmt.Fprintf(&b, "\tfor (long i = 0; i < %d; i++) {\n", cfg.Iters)
	for s := 0; s < cfg.Stmts; s++ {
		b.WriteString("\t\t" + genStmt(r, cfg) + "\n")
	}
	// Re-root the walk so p is never NULL at the loop head.
	b.WriteString("\t\tif ((i & 3) == 0) { p = slotB; } else if (p->next != NULL) { p = p->next; } else { p = slotA; }\n")
	if cfg.UseSwitch {
		b.WriteString("\t\tswitch (i & 3) {\n")
		fmt.Fprintf(&b, "\t\tcase 0: sum += %d; break;\n", 1+r.intn(9))
		fmt.Fprintf(&b, "\t\tcase 1: case 2: sum ^= %d; break;\n", 1+r.intn(9))
		b.WriteString("\t\tdefault: sum -= 1;\n")
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")
	b.WriteString("\treturn sum;\n}\n\n")

	// main: setup, pre-hook computation, the injection site, then the
	// post-hook reads that exercise whatever the hook corrupted.
	b.WriteString("int main(void) {\n")
	b.WriteString("\tsetup();\n")
	b.WriteString("\tlong pre = hot();\n")
	b.WriteString("\tprintf(\"pre=%d acc=%d\\n\", pre, acc);\n")
	b.WriteString("\t__hook(1);\n")
	b.WriteString("\tlong post = 0;\n")
	b.WriteString("\tpost += slotA->v;\n")
	b.WriteString("\tpost += slotB->v;\n")
	b.WriteString("\tpost += slotC->v;\n")
	b.WriteString("\tpost += fp_slot(pre & 15);\n")
	b.WriteString("\tpost += slotA->op(3) + slotB->op(4);\n")
	for h := 0; h < cfg.Helpers; h++ {
		// Helpers over S0 get both slots — always the pair, so slotA and
		// slotB keep symmetric use sites; others are exercised with NULL.
		if helperTy[h] == 0 {
			fmt.Fprintf(&b, "\tpost += helper%d(slotA, %d) + helper%d(slotB, %d);\n", h, r.intn(9), h, r.intn(9))
		} else {
			fmt.Fprintf(&b, "\tpost += helper%d(NULL, %d);\n", h, r.intn(9))
		}
	}
	b.WriteString("\tprintf(\"post=%d\\n\", post);\n")
	b.WriteString("\treturn (int)((pre + post + acc) & 63);\n")
	b.WriteString("}\n")
	return b.String()
}

// genArith builds a small side-effect-free integer expression over v.
func genArith(r *rng, v string, depth int) string {
	if depth <= 0 {
		switch r.intn(3) {
		case 0:
			return v
		case 1:
			return fmt.Sprintf("%d", 1+r.intn(13))
		default:
			return fmt.Sprintf("(%s >> %d)", v, 1+r.intn(3))
		}
	}
	a := genArith(r, v, depth-1)
	c := genArith(r, v, depth-1)
	switch r.intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, c)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, c)
	case 2:
		return fmt.Sprintf("(%s * %d)", a, 1+r.intn(7))
	case 3:
		return fmt.Sprintf("(%s ^ %s)", a, c)
	case 4:
		// Guarded division: the denominator is always positive.
		return fmt.Sprintf("(%s / ((%s & 7) + 1))", a, c)
	default:
		return fmt.Sprintf("(%s | %s)", a, c)
	}
}

// genStmt emits one hot-loop statement. Every choice only reads
// initialized state and writes sum/acc/locals, so the loop body is
// benign under every mechanism.
func genStmt(r *rng, cfg Config) string {
	choices := 7
	if cfg.Escapes {
		choices = 8
	}
	switch r.intn(choices) {
	case 0:
		return fmt.Sprintf("sum += p->v * (i + %d);", 1+r.intn(5))
	case 1:
		return fmt.Sprintf("sum ^= p->op(i + %d);", r.intn(4))
	case 2:
		// void* round trip on a live pointer.
		return "{ void *tmp = (void*) p; struct S0 *rp = (struct S0*) tmp; sum += rp->v; }"
	case 3:
		return fmt.Sprintf("sum += %s;", genArith(r, "i", 2))
	case 4:
		return fmt.Sprintf("acc += (i * %d) / ((i & 3) + 1);", 1+r.intn(9))
	case 5:
		return fmt.Sprintf("sum += (i & 1) ? g0 + %d : g1;", r.intn(5))
	case 6:
		return fmt.Sprintf("if (slotB->v > %d) { sum += slotA->v; } else { sum += slotB->v; }", r.intn(60))
	default:
		return "loc = i + 1; sum += escape0(&loc);"
	}
}

// Package opt implements the safety-preserving PAC elision optimizer: an
// MIR-level pass run between instrumentation (package rsti) and VM
// predecode (package vm) that removes provably redundant pac/aut traffic
// without weakening any of the paper's detection guarantees.
//
// Two cooperating analyses implement the paper's §4.5 observation that
// real overhead lives in the number of *executed* PA instructions:
//
//  1. Local-pointer elision (ElidableVars): a pointer variable whose
//     address is never taken, that never escapes, and whose every load is
//     freshly stored since the last call on all paths, skips sign+auth
//     entirely. The attacker of the paper's threat model writes memory
//     only while a call is in flight (the __hook sites and everything a
//     callee can reach), so a slot that is always re-written between any
//     call and its next read can never hand a corrupted value to the
//     program — eliding its PAC chain is observation-equivalent for
//     benign runs and for every attack. The set is computed once per
//     program (it is mechanism-independent) and applied *inside* the
//     instrumenter, so caller and callee conventions stay consistent.
//
//  2. Redundant-authentication elimination (Optimize): a PacAuth whose
//     operand provably holds pac(raw, key, mod[, loc]) for an already
//     known raw register — because a PacSign or an earlier PacAuth with
//     the same key, modifier and location register reaches it on all
//     paths with no intervening call or redefinition — must succeed and
//     produce that known raw value, so the instruction is deleted and its
//     uses renamed. Availability is a forward dataflow (intersection
//     meet), which subsumes the dominator/same-block formulation: a fact
//     generated in a dominating block with no kill on any path is
//     available at the dominated use.
//
// Per-mechanism gating falls out of the fact key rather than special
// cases:
//
//	mechanism   modifier shape          redundancy matches on
//	---------   ---------------------   ---------------------------------
//	none        (no PAC ops)            pass is a no-op
//	parts       basic type              (src, key, mod)
//	rsti-stwc   type+scope              (src, key, mod)
//	rsti-stc    merged type+scope       (src, key, mod)
//	rsti-stl    type+scope ^ &p         (src, key, mod, loc reg) — the
//	                                    location register is part of the
//	                                    key, so only exact-slot matches
//	                                    (same address register, same
//	                                    modifier) ever coalesce
//	adaptive    per-class: stwc or stl  follows its base mechanism: keys
//	                                    carry loc only where the class
//	                                    binds location
//
// Both passes assume a well-typed program (no out-of-bounds writes that
// alias unrelated stack slots) — the same assumption the paper's LLVM
// pipeline makes at -O2. Attack-injected corruption is *not* excluded by
// this assumption: hooks fire at call sites, and both analyses kill every
// fact at calls.
package opt

// Stats reports what the optimizer removed (static counts; the VM's
// Stats counts dynamic executions).
type Stats struct {
	// ElidableVars is the number of variables the local-pointer analysis
	// proved safe to leave unsigned (program-wide, mechanism-independent).
	ElidableVars int
	// RedundantAuths is the number of PacAuth instructions deleted by the
	// availability pass.
	RedundantAuths int
	// ForwardedLoads is how many of those deletions were enabled by
	// store-to-load forwarding through a non-address-taken slot (the
	// sign → store → load → auth chain).
	ForwardedLoads int
	// SkippedFuncs counts functions the pass refused to touch because a
	// structural invariant it relies on (textually single-assignment
	// registers) did not hold. Zero in practice; defensive.
	SkippedFuncs int
}

// add accumulates o into s.
func (s *Stats) add(o *Stats) {
	s.ElidableVars += o.ElidableVars
	s.RedundantAuths += o.RedundantAuths
	s.ForwardedLoads += o.ForwardedLoads
	s.SkippedFuncs += o.SkippedFuncs
}

package opt

import (
	"rsti/internal/mir"
	"rsti/internal/sti"
)

// ElidableVars computes the set of variables whose PAC protection can be
// skipped entirely (indexed by VarInfo position). A variable qualifies
// when every way an attacker could make its slot's content observable is
// structurally impossible:
//
//   - it is a local, single-level pointer (globals are writable by any
//     callee; multi-level pointers participate in the CE/FE tagging that
//     signing sites plant, so eliding them would drop tags);
//   - its address is never taken (sti's escape analysis), so no aliasing
//     store or external write can reach the slot outside attack hooks;
//   - every load of it is "freshly stored": on all paths from function
//     entry, a direct store to the variable happens after the most recent
//     call. Attack hooks run only inside calls, so a corrupted slot value
//     is always overwritten before the program can read it back.
//
// The result is mechanism-independent: the criterion speaks only about
// the program's memory behaviour, never about modifiers. It must be
// applied inside the instrumenter (rsti.Options.Elide) so that parameter
// passing and prologue signing agree across call boundaries.
func ElidableVars(prog *mir.Program, an *sti.Analysis) []bool {
	elide := make([]bool, len(prog.Vars))
	for v, info := range prog.Vars {
		elide[v] = !info.Global &&
			info.Type != nil && info.Type.IsPointer() && info.Type.PointerDepth() < 2 &&
			v < len(an.AddrTakenVars) && !an.AddrTakenVars[v]
	}
	for _, fn := range prog.Funcs {
		if !fn.Extern {
			disqualifyTagged(fn, an, elide)
			disqualifyStale(fn, elide)
		}
	}
	return elide
}

// disqualifyTagged clears elide[v] when a value stored to v might carry a
// pointer-to-pointer CE tag (a multi-level pointer cast to a universal
// multi-pointer). The instrumenter plants tags at signing sites; an elided
// slot skips the site, the copy loses its tag, and a later pp_auth through
// it would trap spuriously. Slot types with pointer depth >= 2 are already
// excluded by the candidate filter; this catches deep-typed *values*
// flowing into shallow-typed slots.
func disqualifyTagged(fn *mir.Func, an *sti.Analysis, elide []bool) {
	fo := an.Origins[fn.Name]
	for _, blk := range fn.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op != mir.Store || in.Slot.Kind != mir.SlotVar {
				continue
			}
			v := in.Slot.Var
			if v < 0 || v >= len(elide) || !elide[v] {
				continue
			}
			if fo == nil || in.B < 0 || in.B >= len(fo.Regs) {
				elide[v] = false
				continue
			}
			o := fo.Regs[in.B]
			if (o.Ty != nil && o.Ty.PointerDepth() >= 2) ||
				(o.Casted && o.CastFrom != nil && o.CastFrom.PointerDepth() >= 2) {
				elide[v] = false
			}
		}
	}
}

// disqualifyStale clears elide[v] for every candidate that fn loads at a
// point where it is not definitely freshly stored since the last call.
// Forward dataflow over the set of freshly-stored variables: stores to a
// named slot add it, calls clear everything (the attack window), and the
// meet over block predecessors is intersection.
func disqualifyStale(fn *mir.Func, elide []bool) {
	n := len(fn.Blocks)
	preds := make([][]int, n)
	for _, blk := range fn.Blocks {
		if len(blk.Instrs) == 0 {
			continue
		}
		t := &blk.Instrs[len(blk.Instrs)-1]
		switch t.Op {
		case mir.Jmp:
			preds[t.Targets[0]] = append(preds[t.Targets[0]], blk.Index)
		case mir.Br:
			preds[t.Targets[0]] = append(preds[t.Targets[0]], blk.Index)
			preds[t.Targets[1]] = append(preds[t.Targets[1]], blk.Index)
		}
	}

	// out[b] is the set of definitely-fresh vars at block exit; nil means
	// "not yet computed" (⊤ for the intersection meet). The entry block
	// starts empty: function entry follows a call, so nothing is fresh.
	out := make([]map[int]bool, n)
	blockIn := func(bi int) map[int]bool {
		if bi == 0 {
			return map[int]bool{}
		}
		var in map[int]bool
		seeded := false
		for _, p := range preds[bi] {
			if out[p] == nil {
				continue // unknown predecessor: optimistic, refined later
			}
			if !seeded {
				in = make(map[int]bool, len(out[p]))
				for v := range out[p] {
					in[v] = true
				}
				seeded = true
				continue
			}
			for v := range in {
				if !out[p][v] {
					delete(in, v)
				}
			}
		}
		if !seeded {
			return map[int]bool{}
		}
		return in
	}
	transfer := func(state map[int]bool, in *mir.Instr) {
		switch in.Op {
		case mir.Store:
			if in.Slot.Kind == mir.SlotVar {
				state[in.Slot.Var] = true
			}
		case mir.CallOp:
			for v := range state {
				delete(state, v)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for bi := 0; bi < n; bi++ {
			state := blockIn(bi)
			for ii := range fn.Blocks[bi].Instrs {
				transfer(state, &fn.Blocks[bi].Instrs[ii])
			}
			if !sameSet(out[bi], state) {
				out[bi] = state
				changed = true
			}
		}
	}

	// Verification walk: replay each block from its fixpoint entry state
	// and disqualify any candidate loaded while stale.
	for bi := 0; bi < n; bi++ {
		state := blockIn(bi)
		for ii := range fn.Blocks[bi].Instrs {
			in := &fn.Blocks[bi].Instrs[ii]
			if in.Op == mir.Load && in.Slot.Kind == mir.SlotVar {
				if v := in.Slot.Var; v >= 0 && v < len(elide) && elide[v] && !state[v] {
					elide[v] = false
				}
			}
			transfer(state, in)
		}
	}
}

func sameSet(a, b map[int]bool) bool {
	if a == nil || len(a) != len(b) {
		return a == nil && b == nil
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

package opt

import (
	"rsti/internal/mir"
	"rsti/internal/sti"
)

// factKey identifies one algebraic PAC fact: "the value in register src
// is pac(raw, key, mod ^ [loc])" for a known raw register. The location
// register is part of the key, which is exactly the per-mechanism gating
// table in the package comment: under STL every slot access carries its
// address register, so only exact-slot matches coalesce; mechanisms
// without location binding carry NoReg and match on (src, key, mod).
type factKey struct {
	src mir.Reg
	key uint8
	mod uint64
	loc mir.Reg
}

// state is the dataflow lattice value: available PAC facts plus, for
// store-to-load forwarding, the register last stored to each
// non-address-taken named slot.
type state struct {
	facts map[factKey]mir.Reg // fact -> register holding the raw value
	slots map[int]mir.Reg     // VarInfo index -> register last stored
	// forwarded marks facts that exist only because of store-to-load
	// forwarding — attribution metadata for Stats, never part of the
	// lattice value (equal ignores it; intersect keeps it best-effort).
	forwarded map[factKey]bool
}

func newState() *state {
	return &state{facts: map[factKey]mir.Reg{}, slots: map[int]mir.Reg{}}
}

func (s *state) clone() *state {
	c := &state{
		facts: make(map[factKey]mir.Reg, len(s.facts)),
		slots: make(map[int]mir.Reg, len(s.slots)),
	}
	for k, v := range s.facts {
		c.facts[k] = v
	}
	for k, v := range s.slots {
		c.slots[k] = v
	}
	if s.forwarded != nil {
		c.forwarded = make(map[factKey]bool, len(s.forwarded))
		for k := range s.forwarded {
			c.forwarded[k] = true
		}
	}
	return c
}

// intersect keeps only the facts present (with equal values) in both.
func (s *state) intersect(o *state) {
	for k, v := range s.facts {
		if ov, ok := o.facts[k]; !ok || ov != v {
			delete(s.facts, k)
		}
	}
	for k, v := range s.slots {
		if ov, ok := o.slots[k]; !ok || ov != v {
			delete(s.slots, k)
		}
	}
}

func (s *state) equal(o *state) bool {
	if o == nil || len(s.facts) != len(o.facts) || len(s.slots) != len(o.slots) {
		return false
	}
	for k, v := range s.facts {
		if ov, ok := o.facts[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range s.slots {
		if ov, ok := o.slots[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// clear drops everything — the transfer of a call instruction. Register
// facts would actually survive a call (callees and attack hooks can
// touch memory, never this frame's registers), but dropping them keeps
// the pass inside the paper's "no intervening write/escape/call"
// formulation and keeps every elision argument local to a call-free
// region.
func (s *state) clear() {
	for k := range s.facts {
		delete(s.facts, k)
	}
	for k := range s.slots {
		delete(s.slots, k)
	}
}

// killDef removes every fact involving register d, which is about to be
// redefined (loop back-edges re-execute defining instructions).
func (s *state) killDef(d mir.Reg) {
	for k, v := range s.facts {
		if k.src == d || k.loc == d || v == d {
			delete(s.facts, k)
		}
	}
	for k, v := range s.slots {
		if v == d {
			delete(s.slots, k)
		}
	}
}

// Optimize runs redundant-authentication elimination over an instrumented
// program in place and reports what it removed. The mechanism selects the
// gating documented in the package comment; it changes no pass decision
// directly — STL/Adaptive restrictions are enforced by the location
// register embedded in each fact key.
func Optimize(prog *mir.Program, mech sti.Mechanism) *Stats {
	stats := &Stats{}
	if mech == sti.None {
		return stats
	}
	addrTaken := addrTakenVars(prog)
	for _, fn := range prog.Funcs {
		if fn.Extern {
			continue
		}
		var fs Stats
		optimizeFunc(fn, addrTaken, &fs)
		stats.add(&fs)
	}
	return stats
}

// addrTakenVars recomputes the address-taken variable set from the
// instrumented program: a variable is forwardable only if no slot address
// of it ever escapes into data flow (stores of an Alloca/GlobalAddr
// result, casts, arithmetic, calls). This is deliberately recomputed here
// rather than taken from sti.Analysis so the pass stays sound against the
// program it actually rewrites.
func addrTakenVars(prog *mir.Program) []bool {
	taken := make([]bool, len(prog.Vars))
	for _, fn := range prog.Funcs {
		if fn.Extern {
			continue
		}
		// slotOf maps a register holding a named slot address to its var.
		slotOf := map[mir.Reg]int{}
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case mir.Alloca:
					if in.Slot.Kind == mir.SlotVar {
						slotOf[in.Dst] = in.Slot.Var
					}
				case mir.GlobalAddr:
					if in.Slot.Kind == mir.SlotVar {
						slotOf[in.Dst] = in.Slot.Var
					}
				}
			}
		}
		mark := func(r mir.Reg) {
			if v, ok := slotOf[r]; ok {
				taken[v] = true
			}
		}
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case mir.Load:
					// Using the slot address as the access target is the
					// normal pattern, not an escape.
				case mir.Store:
					mark(in.B) // storing the address escapes it
				case mir.CallOp:
					for _, a := range in.Args {
						mark(a)
					}
					mark(in.A)
				case mir.PacSign, mir.PacAuth:
					// A is the value being signed; B is the location
					// operand (normal use, not an escape).
					mark(in.A)
				case mir.FieldAddr, mir.IndexAddr, mir.BinInstr, mir.CmpInstr,
					mir.CastOp, mir.RetOp, mir.PacStrip, mir.PPSign, mir.PPAuth, mir.PPAddTBI:
					mark(in.A)
					mark(in.B)
				}
			}
		}
	}
	return taken
}

// optimizeFunc analyzes and rewrites one function.
func optimizeFunc(fn *mir.Func, addrTaken []bool, stats *Stats) {
	// Structural precondition: registers are textually single-assignment
	// (the lowerer and instrumenter allocate monotonically). defPos also
	// feeds the use-before-def guard: a register used textually before its
	// definition (only reachable through a back edge) must never be
	// renamed away, since its earlier uses are emitted before the rewrite
	// reaches the definition.
	defPos := make(map[mir.Reg]int)
	pos := 0
	for _, blk := range fn.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if d := in.Dst; d != mir.NoReg && writesDst(in.Op) {
				if _, dup := defPos[d]; dup {
					stats.SkippedFuncs++
					return
				}
				defPos[d] = pos
			}
			pos++
		}
	}
	noElide := make(map[mir.Reg]bool)
	pos = 0
	for _, blk := range fn.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			forEachUse(in, func(r mir.Reg) {
				if dp, ok := defPos[r]; ok && pos < dp {
					noElide[r] = true
				}
			})
			pos++
		}
	}

	n := len(fn.Blocks)
	preds := make([][]int, n)
	for _, blk := range fn.Blocks {
		if len(blk.Instrs) == 0 {
			continue
		}
		t := &blk.Instrs[len(blk.Instrs)-1]
		switch t.Op {
		case mir.Jmp:
			preds[t.Targets[0]] = append(preds[t.Targets[0]], blk.Index)
		case mir.Br:
			preds[t.Targets[0]] = append(preds[t.Targets[0]], blk.Index)
			preds[t.Targets[1]] = append(preds[t.Targets[1]], blk.Index)
		}
	}

	// Availability fixpoint on the original program. nil out = ⊤; the
	// entry block starts with nothing available. The first computed value
	// of any block overestimates (intersection over the computed subset of
	// predecessors), and iteration only shrinks it, so this terminates.
	out := make([]*state, n)
	blockIn := func(bi int) *state {
		if bi == 0 {
			return newState()
		}
		var in *state
		for _, p := range preds[bi] {
			if out[p] == nil {
				continue
			}
			if in == nil {
				in = out[p].clone()
			} else {
				in.intersect(out[p])
			}
		}
		if in == nil {
			return newState()
		}
		return in
	}
	for changed := true; changed; {
		changed = false
		for bi := 0; bi < n; bi++ {
			st := blockIn(bi)
			for i := range fn.Blocks[bi].Instrs {
				transfer(st, &fn.Blocks[bi].Instrs[i], addrTaken, nil)
			}
			if out[bi] == nil || !st.equal(out[bi]) {
				out[bi] = st
				changed = true
			}
		}
	}

	// Rewrite walk. subst maps deleted PacAuth destinations to the
	// equal-valued register that replaces them; pinned registers are ones
	// already emitted as a replacement, whose definitions must stay.
	subst := make(map[mir.Reg]mir.Reg)
	pinned := make(map[mir.Reg]bool)
	resolve := func(r mir.Reg) mir.Reg {
		if s, ok := subst[r]; ok {
			return s
		}
		return r
	}
	for bi := 0; bi < n; bi++ {
		blk := fn.Blocks[bi]
		st := blockIn(bi)
		kept := blk.Instrs[:0]
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			substUses(in, resolve)
			if in.Op == mir.PacAuth && !noElide[in.Dst] {
				k := factKey{src: in.A, key: in.Key, mod: in.Mod, loc: in.B}
				if raw, ok := st.facts[k]; ok {
					raw = resolve(raw)
					// Never remove the definition a previous rename
					// points at.
					if !pinned[in.Dst] {
						subst[in.Dst] = raw
						pinned[raw] = true
						stats.RedundantAuths++
						if st.forwarded[k] {
							stats.ForwardedLoads++
						}
						// The fact the deleted auth would generate is
						// already present (that is why it is deletable);
						// no state update needed beyond the transfer of
						// a no-op.
						continue
					}
				}
			}
			transfer(st, in, addrTaken, subst)
			kept = append(kept, *in)
		}
		blk.Instrs = kept
	}
}

// transfer updates st across one instruction. When subst is non-nil the
// walk is the rewrite pass: instruction operands have already been
// renamed, so generated facts are keyed on live registers.
func transfer(st *state, in *mir.Instr, addrTaken []bool, subst map[mir.Reg]mir.Reg) {
	if in.Dst != mir.NoReg && writesDst(in.Op) {
		st.killDef(in.Dst)
	}
	switch in.Op {
	case mir.CallOp:
		st.clear()
	case mir.PacSign:
		// Dst = pac(A): authenticating Dst with the same key/mod/loc
		// yields A again.
		st.addFact(factKey{src: in.Dst, key: in.Key, mod: in.Mod, loc: in.B}, in.A, false)
	case mir.PacAuth:
		// Dst = aut(A): A holds pac(Dst) under this key/mod/loc.
		st.addFact(factKey{src: in.A, key: in.Key, mod: in.Mod, loc: in.B}, in.Dst, false)
	case mir.Store:
		if v := in.Slot.Var; in.Slot.Kind == mir.SlotVar && v >= 0 && v < len(addrTaken) && !addrTaken[v] {
			st.slots[v] = in.B
		}
	case mir.Load:
		if v := in.Slot.Var; in.Slot.Kind == mir.SlotVar && v >= 0 && v < len(addrTaken) && !addrTaken[v] {
			if src, ok := st.slots[v]; ok {
				// Store-to-load forwarding: the loaded register holds
				// bit-for-bit the stored one (no aliasing write can touch
				// a non-address-taken slot, and calls cleared st). Every
				// PAC fact about the stored register transfers.
				for k, raw := range st.facts {
					if k.src == src {
						nk := k
						nk.src = in.Dst
						st.addFact(nk, raw, true)
					}
				}
			}
		}
	}
}

// addFact records a fact; forwarded marks facts created by store-to-load
// forwarding (for Stats attribution only).
func (s *state) addFact(k factKey, raw mir.Reg, fwd bool) {
	s.facts[k] = raw
	if fwd {
		if s.forwarded == nil {
			s.forwarded = map[factKey]bool{}
		}
		s.forwarded[k] = true
	} else if s.forwarded != nil {
		delete(s.forwarded, k)
	}
}

// writesDst reports whether op's Dst field is a register definition.
func writesDst(op mir.Op) bool {
	switch op {
	case mir.Store, mir.RetOp, mir.Jmp, mir.Br, mir.PPAdd, mir.Nop:
		return false
	}
	return true
}

// forEachUse invokes f on every register operand in that is read (never
// the Dst definition), respecting per-op operand semantics.
func forEachUse(in *mir.Instr, f func(mir.Reg)) {
	use := func(r mir.Reg) {
		if r != mir.NoReg {
			f(r)
		}
	}
	switch in.Op {
	case mir.Load, mir.FieldAddr, mir.CastOp, mir.RetOp, mir.Br, mir.PacStrip, mir.PPAddTBI:
		use(in.A)
	case mir.Store, mir.IndexAddr, mir.BinInstr, mir.CmpInstr,
		mir.PacSign, mir.PacAuth, mir.PPSign, mir.PPAuth:
		use(in.A)
		use(in.B)
	case mir.CallOp:
		if in.Callee == "" {
			use(in.A)
		}
		for _, a := range in.Args {
			use(a)
		}
	}
}

// substUses rewrites every read operand of in through resolve.
func substUses(in *mir.Instr, resolve func(mir.Reg) mir.Reg) {
	sub := func(r mir.Reg) mir.Reg {
		if r == mir.NoReg {
			return r
		}
		return resolve(r)
	}
	switch in.Op {
	case mir.Load, mir.FieldAddr, mir.CastOp, mir.RetOp, mir.Br, mir.PacStrip, mir.PPAddTBI:
		in.A = sub(in.A)
	case mir.Store, mir.IndexAddr, mir.BinInstr, mir.CmpInstr,
		mir.PacSign, mir.PacAuth, mir.PPSign, mir.PPAuth:
		in.A = sub(in.A)
		in.B = sub(in.B)
	case mir.CallOp:
		if in.Callee == "" {
			in.A = sub(in.A)
		}
		for i, a := range in.Args {
			in.Args[i] = sub(a)
		}
	}
}

package opt

import (
	"rsti/internal/ctypes"
	"rsti/internal/mir"
	"rsti/internal/sti"
)

// RefineElide narrows a mechanism-independent elide set (ElidableVars) for
// one mechanism so that elision can only ever REMOVE dynamic PA operations.
//
// Elision makes a slot carry raw values. That is free where values are
// consumed raw (dereferences, arithmetic, compares against raw), but at a
// boundary where a raw value flows into signed storage — or a signed value
// flows into an elided slot — the instrumenter must insert a pac (resp.
// aut). The baseline only got that boundary for free when the two storage
// units shared a signature class (signAs's "already carries the right PAC"
// case), which is exactly what STC's merged classes make common. So: a
// candidate is dropped when it exchanges pointer values with a non-elided
// signed unit of the SAME class. Location-mixed signatures (STL's useLoc)
// never match across distinct units — the location register differs — so
// such couplings stay elidable.
//
// Dropping a candidate turns it back into a signed unit, which can create
// new same-class couplings for its neighbours; the check iterates to a
// fixpoint. The result never adds candidates, so every safety property of
// the base set is preserved.
func RefineElide(prog *mir.Program, an *sti.Analysis, base []bool, mech sti.Mechanism) []bool {
	elide := append([]bool(nil), base...)
	any := false
	for _, e := range elide {
		if e {
			any = true
			break
		}
	}
	if !any {
		return elide
	}

	sigs := make(map[unitKey]unitSig)
	sigOf := func(u unitKey) unitSig {
		s, ok := sigs[u]
		if !ok {
			slot := mir.Slot{Kind: u.kind, Var: u.v, Struct: u.strct, Field: u.field}
			s.class, _, s.useLoc, s.ok = an.SlotModifier(slot, u.ty, mech)
			sigs[u] = s
		}
		return s
	}

	edges := make(map[[2]unitKey]bool)
	for _, fn := range prog.Funcs {
		if !fn.Extern {
			collectCouplings(prog, fn, edges)
		}
	}

	isElided := func(u unitKey) bool {
		return u.kind == mir.SlotVar && u.v >= 0 && u.v < len(elide) && elide[u.v]
	}
	for changed := true; changed; {
		changed = false
		for e := range edges {
			for _, d := range [2][2]unitKey{{e[0], e[1]}, {e[1], e[0]}} {
				x, y := d[0], d[1]
				if !isElided(x) || isElided(y) {
					continue
				}
				xs, ys := sigOf(x), sigOf(y)
				if !xs.ok || xs.useLoc || !ys.ok || ys.useLoc {
					continue
				}
				if xs.class == ys.class {
					elide[x.v] = false
					changed = true
				}
			}
		}
	}
	return elide
}

// unitKey identifies one signed storage unit the way the instrumenter's
// slot-signature cache does: the slot identity plus the access type.
type unitKey struct {
	kind  mir.SlotKind
	v     int
	strct *ctypes.Type
	field int
	ty    *ctypes.Type
}

type unitSig struct {
	class  int
	useLoc bool
	ok     bool
}

// collectCouplings records every value flow between storage units in fn:
// a load's (or pointer parameter's) unit reaches another unit through a
// store, an equality compare, or a direct-call argument binding. Registers
// are textually single-assignment, so an origin never changes; pointer
// bitcasts carry origins through (they carry signatures through in the
// instrumenter). Cast chains may reference later definitions across
// blocks, hence the fixpoint.
func collectCouplings(prog *mir.Program, fn *mir.Func, edges map[[2]unitKey]bool) {
	origin := make(map[mir.Reg]unitKey)
	for i, pv := range fn.ParamVar {
		if pv >= 0 && i < len(fn.Params) && fn.Params[i] != nil && fn.Params[i].IsPointer() {
			origin[mir.Reg(i)] = unitKey{kind: mir.SlotVar, v: pv, ty: fn.Params[i]}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range fn.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case mir.Load:
					if in.Ty != nil && in.Ty.IsPointer() {
						if _, seen := origin[in.Dst]; !seen {
							origin[in.Dst] = unitOf(in)
							changed = true
						}
					}
				case mir.CastOp:
					if in.Dst != mir.NoReg && in.Ty != nil && in.Ty.IsPointer() &&
						in.FromTy != nil && in.FromTy.IsPointer() {
						if o, ok := origin[in.A]; ok {
							if _, seen := origin[in.Dst]; !seen {
								origin[in.Dst] = o
								changed = true
							}
						}
					}
				}
			}
		}
	}

	addEdge := func(a, b unitKey) {
		if a == b {
			// A unit copied onto itself is free in both modes: the baseline
			// signature matches, and raw-to-raw needs no op.
			return
		}
		edges[[2]unitKey{a, b}] = true
	}
	for _, blk := range fn.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case mir.Store:
				if in.Ty != nil && in.Ty.IsPointer() {
					if o, ok := origin[in.B]; ok {
						addEdge(o, unitOf(in))
					}
				}
			case mir.CmpInstr:
				if in.CmpSub == mir.Eq || in.CmpSub == mir.Ne {
					oa, oka := origin[in.A]
					ob, okb := origin[in.B]
					if oka && okb {
						addEdge(oa, ob)
					}
				}
			case mir.CallOp:
				if in.Callee == "" {
					continue // indirect: raw-args convention, auth both modes
				}
				callee := prog.ByName[in.Callee]
				if callee == nil || callee.Extern {
					continue // extern boundary auths in both modes
				}
				for ai, arg := range in.Args {
					o, ok := origin[arg]
					if !ok || ai >= len(callee.ParamVar) || callee.ParamVar[ai] < 0 ||
						ai >= len(callee.Params) || callee.Params[ai] == nil ||
						!callee.Params[ai].IsPointer() {
						continue
					}
					addEdge(o, unitKey{kind: mir.SlotVar, v: callee.ParamVar[ai], ty: callee.Params[ai]})
				}
			}
		}
	}
}

func unitOf(in *mir.Instr) unitKey {
	return unitKey{kind: in.Slot.Kind, v: in.Slot.Var, strct: in.Slot.Struct, field: in.Slot.Field, ty: in.Ty}
}

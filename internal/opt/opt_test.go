package opt_test

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/opt"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

var protectedMechs = []sti.Mechanism{sti.STWC, sti.STC, sti.STL, sti.Adaptive}

// TestOptimizedRunsEquivalent runs every static workload under every
// protected mechanism with the optimizer forced on and off: exits and
// outputs must be bit-identical, and the optimized run may never execute
// more PAC ops, instructions or cycles.
func TestOptimizedRunsEquivalent(t *testing.T) {
	// SPEC2017 is included because its perlbench kernel exposed the STC
	// boundary regression the coupling refinement (RefineElide) fixes:
	// merged classes make cross-slot signature sharing nearly free, so a
	// partially-elided copy chain used to ADD sign/auth ops.
	ws := append(workload.SPEC2006Static(), workload.SPEC2017()...)
	for _, w := range ws {
		c, err := core.Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, mech := range protectedMechs {
			off, err := c.Run(mech, core.RunConfig{Optimize: core.OptimizeOff})
			if err != nil {
				t.Fatalf("%s/%s off: %v", w.Name, mech, err)
			}
			on, err := c.Run(mech, core.RunConfig{Optimize: core.OptimizeOn})
			if err != nil {
				t.Fatalf("%s/%s on: %v", w.Name, mech, err)
			}
			if off.Err != nil || on.Err != nil {
				t.Fatalf("%s/%s: benign run trapped: off=%v on=%v", w.Name, mech, off.Err, on.Err)
			}
			if off.Exit != on.Exit {
				t.Errorf("%s/%s: exit diverged: off=%d on=%d", w.Name, mech, off.Exit, on.Exit)
			}
			if off.Output != on.Output {
				t.Errorf("%s/%s: output diverged (%d vs %d bytes)", w.Name, mech, len(off.Output), len(on.Output))
			}
			if on.Stats.PACOps() > off.Stats.PACOps() {
				t.Errorf("%s/%s: optimizer increased PAC ops: %d > %d", w.Name, mech, on.Stats.PACOps(), off.Stats.PACOps())
			}
			if on.Stats.Instrs > off.Stats.Instrs {
				t.Errorf("%s/%s: optimizer increased instructions: %d > %d", w.Name, mech, on.Stats.Instrs, off.Stats.Instrs)
			}
			if on.Stats.Cycles > off.Stats.Cycles {
				t.Errorf("%s/%s: optimizer increased cycles: %d > %d", w.Name, mech, on.Stats.Cycles, off.Stats.Cycles)
			}
			t.Logf("%s/%s: pac off=%d on=%d fusedAL=%d fusedSS=%d",
				w.Name, mech, off.Stats.PACOps(), on.Stats.PACOps(),
				on.Stats.FusedAuthLoads, on.Stats.FusedSignStores)
		}
	}
}

// TestOptStatsPopulated asserts the optimizer actually removes work on a
// PAC-heavy workload — guarding against a silently vacuous pass.
func TestOptStatsPopulated(t *testing.T) {
	src := workload.SPEC2006Static()[1].Source
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.BuildMode(sti.STWC, true)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Optimized || b.OptStats == nil {
		t.Fatalf("optimized build not marked: %+v", b)
	}
	if b.OptStats.SkippedFuncs != 0 {
		t.Errorf("optimizer skipped %d functions (single-assignment invariant broken?)", b.OptStats.SkippedFuncs)
	}
	if b.OptStats.ElidableVars == 0 && b.OptStats.RedundantAuths == 0 {
		t.Errorf("optimizer removed nothing on a PAC-heavy workload: %+v", b.OptStats)
	}
	base, err := c.BuildMode(sti.STWC, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats.Total() >= base.Stats.Total() && b.OptStats.RedundantAuths == 0 {
		t.Errorf("optimized build emitted %d PA ops, baseline %d, and no auths were deleted",
			b.Stats.Total(), base.Stats.Total())
	}
}

// TestElidableVarsMechanismIndependent pins the design invariant that the
// elide set depends only on the program.
func TestElidableVarsMechanismIndependent(t *testing.T) {
	src := workload.SPEC2006Static()[0].Source
	c, err := core.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	set := opt.ElidableVars(c.Prog, c.Analysis)
	n := 0
	for _, e := range set {
		if e {
			n++
		}
	}
	t.Logf("elidable vars: %d/%d", n, len(set))
	for i := 0; i < 3; i++ {
		again := opt.ElidableVars(c.Prog, c.Analysis)
		if len(again) != len(set) {
			t.Fatalf("non-deterministic length")
		}
		for v := range set {
			if set[v] != again[v] {
				t.Fatalf("non-deterministic elide decision for var %d", v)
			}
		}
	}
}

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"rsti/internal/core"
)

// Error kinds — the wire vocabulary of the /v1 envelope. Frontend kinds
// (parse, typecheck, compile) map 1:1 from the PR 2 typed error taxonomy
// (core.ErrParse / core.ErrTypeCheck); the rest classify protocol and
// admission failures.
const (
	KindBadRequest   = "bad_request"
	KindParse        = "parse"
	KindTypecheck    = "typecheck"
	KindCompile      = "compile"
	KindNotFound     = "not_found"
	KindUnauthorized = "unauthorized"
	KindForbidden    = "forbidden"
	KindRateLimited  = "rate_limited"
	KindQueueFull    = "queue_full"
	KindShutdown     = "shutting_down"
	KindInternal     = "internal"
)

// apiError is the uniform /v1 error envelope body: every error response
// from every versioned endpoint is {"error": {"kind", "message",
// "trap"?}}. Legacy unversioned routes keep their historical flat shape
// ({"error": msg}, plus a top-level "kind" on compile failures) so
// pre-/v1 clients never see a surprise.
type apiError struct {
	Kind    string    `json:"kind"`
	Message string    `json:"message"`
	Trap    *trapJSON `json:"trap,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// legacyKey marks a request that arrived on a deprecated unversioned
// route; error rendering keys off it.
type legacyKeyType struct{}

var legacyKey legacyKeyType

func isLegacy(r *http.Request) bool {
	v, _ := r.Context().Value(legacyKey).(bool)
	return v
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError renders a protocol failure in the shape the route's
// generation expects: the nested /v1 envelope, or the legacy flat form.
func writeError(w http.ResponseWriter, r *http.Request, status int, kind, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if isLegacy(r) {
		body := map[string]string{"error": msg}
		// The legacy compile-failure contract carried the taxonomy kind at
		// the top level; preserve it for exactly those kinds.
		switch kind {
		case KindParse, KindTypecheck, KindCompile:
			body["kind"] = kind
		}
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, status, errorEnvelope{Error: apiError{Kind: kind, Message: msg}})
}

// compileErrorKind classifies a frontend failure via the typed sentinels.
func compileErrorKind(err error) string {
	switch {
	case errors.Is(err, core.ErrParse):
		return KindParse
	case errors.Is(err, core.ErrTypeCheck):
		return KindTypecheck
	}
	return KindCompile
}

// writeCompileError maps the typed compile errors onto a structured 422.
func writeCompileError(w http.ResponseWriter, r *http.Request, err error) {
	writeError(w, r, http.StatusUnprocessableEntity, compileErrorKind(err), "%s", err.Error())
}

// runCancelled reports whether a run's error means cancellation (client
// gone or deadline hit) rather than a program outcome.
func runCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

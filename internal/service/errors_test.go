package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rsti/internal/vm"
)

// TestErrorTaxonomyOverHTTP drives the library's typed error taxonomy
// through the daemon's wire classification in one table: compile
// sentinels become 422s with a machine-readable kind, protocol mistakes
// become 4xx statuses, and execution outcomes (traps, budget, deadline)
// ride inside a 200 with a structured trap — never a bare message to
// regex.
func TestErrorTaxonomyOverHTTP(t *testing.T) {
	ts, _ := startServer(t)

	t.Run("compile-classification", func(t *testing.T) {
		cases := []struct {
			name   string
			source string
			status int
			kind   string // the envelope's error.kind
		}{
			{"parse", "int main(void) { return 0 }", 422, KindParse},
			{"typecheck", "int main(void) { return nosuch; }", 422, KindTypecheck},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				var we wireError
				code := post(t, ts.URL+"/v1/compile", compileRequest{Source: tc.source}, &we)
				if code != tc.status {
					t.Fatalf("status %d, want %d", code, tc.status)
				}
				if we.Error.Kind != tc.kind {
					t.Errorf("kind = %q, want %q", we.Error.Kind, tc.kind)
				}
				if we.Error.Message == "" {
					t.Error("422 envelope carries no message")
				}
			})
		}
	})

	t.Run("protocol-classification", func(t *testing.T) {
		cases := []struct {
			name   string
			req    runRequest
			status int
			kind   string
		}{
			{"unknown-program", runRequest{Program: "feedbead", Mechanism: "rsti-stl"}, 404, KindNotFound},
			{"unknown-mechanism", runRequest{Source: victimSrc, Mechanism: "rop"}, 400, KindBadRequest},
			{"program-and-source", runRequest{Program: "x", Source: victimSrc}, 400, KindBadRequest},
			{"neither", runRequest{Mechanism: "rsti-stwc"}, 400, KindBadRequest},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				var we wireError
				if code := post(t, ts.URL+"/v1/run", tc.req, &we); code != tc.status {
					t.Errorf("status %d, want %d", code, tc.status)
				}
				if we.Error.Kind != tc.kind {
					t.Errorf("kind = %q, want %q", we.Error.Kind, tc.kind)
				}
			})
		}
	})

	// Execution outcomes: the trap taxonomy must survive the JSON
	// round-trip with its kind intact.
	t.Run("outcome-classification", func(t *testing.T) {
		cases := []struct {
			name      string
			req       runRequest
			trapKind  string
			cancelled bool
			detected  bool
		}{
			{
				name:     "step-budget",
				req:      runRequest{Source: victimSrc, StepBudget: 50},
				trapKind: vm.TrapMaxSteps.String(),
			},
			{
				name:      "deadline",
				req:       runRequest{Source: spinSrc, TimeoutMS: 20},
				trapKind:  vm.TrapCancelled.String(),
				cancelled: true,
			},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				var run runResponse
				if code := post(t, ts.URL+"/v1/run", tc.req, &run); code != 200 {
					t.Fatalf("status %d, want 200 (outcomes ride inside success)", code)
				}
				if run.Trap == nil {
					t.Fatalf("no trap in response: %+v", run)
				}
				if run.Trap.Kind != tc.trapKind {
					t.Errorf("trap kind = %q, want %q", run.Trap.Kind, tc.trapKind)
				}
				if run.Cancelled != tc.cancelled {
					t.Errorf("cancelled = %v, want %v", run.Cancelled, tc.cancelled)
				}
				if run.Detected != tc.detected {
					t.Errorf("detected = %v, want %v", run.Detected, tc.detected)
				}
				if run.Error == "" {
					t.Error("trapped run carries no error text")
				}
			})
		}
	})

	// A closed engine's sentinel maps to 503, the shutting-down status.
	t.Run("engine-closed", func(t *testing.T) {
		srv := New(Config{Workers: 1, Queue: 1})
		hts := httptest.NewServer(srv)
		defer hts.Close()
		srv.Close()
		var we wireError
		if code := post(t, hts.URL+"/v1/run", runRequest{Source: victimSrc}, &we); code != 503 {
			t.Errorf("run on closed engine: status %d, want 503", code)
		}
		if we.Error.Kind != KindShutdown {
			t.Errorf("closed-engine kind = %q, want %q", we.Error.Kind, KindShutdown)
		}
	})
}

// TestEnvelopeParity proves, endpoint by endpoint, that a /v1 route and
// its deprecated unversioned alias classify the same failure identically
// — same status, same kind, same message — differing only in shape: /v1
// nests {"error": {"kind", "message"}}, legacy keeps the historical flat
// {"error": msg} (plus top-level "kind" for compile failures). Legacy
// responses must also carry the Deprecation header and a successor Link.
func TestEnvelopeParity(t *testing.T) {
	ts, _ := startServer(t)

	type probe struct {
		name     string
		method   string
		v1       string // versioned path
		legacy   string // deprecated alias
		body     any
		status   int
		kind     string
		flatKind bool // legacy body carries top-level "kind" (compile taxonomy)
	}
	probes := []probe{
		{
			name: "compile-parse", method: "POST", v1: "/v1/compile", legacy: "/compile",
			body:   compileRequest{Source: "int main(void) { return 0 }"},
			status: 422, kind: KindParse, flatKind: true,
		},
		{
			name: "compile-typecheck", method: "POST", v1: "/v1/compile", legacy: "/compile",
			body:   compileRequest{Source: "int main(void) { return nosuch; }"},
			status: 422, kind: KindTypecheck, flatKind: true,
		},
		{
			name: "compile-missing-source", method: "POST", v1: "/v1/compile", legacy: "/compile",
			body:   compileRequest{},
			status: 400, kind: KindBadRequest,
		},
		{
			name: "run-unknown-program", method: "POST", v1: "/v1/run", legacy: "/run",
			body:   runRequest{Program: "feedbead"},
			status: 404, kind: KindNotFound,
		},
		{
			name: "run-unknown-mechanism", method: "POST", v1: "/v1/run", legacy: "/run",
			body:   runRequest{Source: victimSrc, Mechanism: "rop"},
			status: 400, kind: KindBadRequest,
		},
		{
			name: "run-bad-optimizer", method: "POST", v1: "/v1/run", legacy: "/run",
			body:   runRequest{Source: victimSrc, Optimizer: "fast"},
			status: 400, kind: KindBadRequest,
		},
		{
			name: "run-bad-tier", method: "POST", v1: "/v1/run", legacy: "/run",
			body:   runRequest{Source: victimSrc, Tier: "warp"},
			status: 400, kind: KindBadRequest,
		},
		{
			name: "attack-unknown-scenario", method: "POST", v1: "/v1/attack", legacy: "/attack",
			body:   attackRequest{Scenario: "nope"},
			status: 404, kind: KindNotFound,
		},
	}

	fire := func(t *testing.T, path string, p probe) (*http.Response, map[string]json.RawMessage) {
		t.Helper()
		data, _ := json.Marshal(p.body)
		req, err := http.NewRequest(p.method, ts.URL+path, strings.NewReader(string(data)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decoding body: %v", path, err)
		}
		return resp, body
	}

	for _, p := range probes {
		t.Run(p.name, func(t *testing.T) {
			v1Resp, v1Body := fire(t, p.v1, p)
			legResp, legBody := fire(t, p.legacy, p)

			if v1Resp.StatusCode != p.status || legResp.StatusCode != p.status {
				t.Fatalf("status: v1 %d, legacy %d, want %d",
					v1Resp.StatusCode, legResp.StatusCode, p.status)
			}

			// /v1: nested envelope with kind + message.
			var env apiError
			if err := json.Unmarshal(v1Body["error"], &env); err != nil {
				t.Fatalf("v1 error is not an envelope object: %s", v1Body["error"])
			}
			if env.Kind != p.kind || env.Message == "" {
				t.Errorf("v1 envelope = %+v, want kind %q", env, p.kind)
			}

			// Legacy: flat string error, same message text.
			var flatMsg string
			if err := json.Unmarshal(legBody["error"], &flatMsg); err != nil {
				t.Fatalf("legacy error is not a flat string: %s", legBody["error"])
			}
			if flatMsg != env.Message {
				t.Errorf("message parity: v1 %q vs legacy %q", env.Message, flatMsg)
			}
			if p.flatKind {
				var k string
				if err := json.Unmarshal(legBody["kind"], &k); err != nil || k != p.kind {
					t.Errorf("legacy top-level kind = %s, want %q", legBody["kind"], p.kind)
				}
			} else if _, present := legBody["kind"]; present {
				t.Errorf("legacy body unexpectedly carries kind: %v", legBody)
			}

			// Deprecation marking on the legacy generation only.
			if legResp.Header.Get("Deprecation") != "true" {
				t.Error("legacy response missing Deprecation header")
			}
			if link := legResp.Header.Get("Link"); !strings.Contains(link, p.v1) {
				t.Errorf("legacy Link header %q does not point at %s", link, p.v1)
			}
			if v1Resp.Header.Get("Deprecation") != "" {
				t.Error("v1 response carries a Deprecation header")
			}
		})
	}
}

// TestLegacySuccessParity: the deprecated aliases serve identical success
// payloads (same program handles, same run numbers) — deprecation changes
// headers and error shape only.
func TestLegacySuccessParity(t *testing.T) {
	ts, _ := startServer(t)

	var v1 compileResponse
	if code := post(t, ts.URL+"/v1/compile", compileRequest{Source: victimSrc}, &v1); code != 200 {
		t.Fatalf("v1 compile: status %d", code)
	}
	var leg compileResponse
	if code := post(t, ts.URL+"/compile", compileRequest{Source: victimSrc}, &leg); code != 200 {
		t.Fatalf("legacy compile: status %d", code)
	}
	if leg.Program != v1.Program || !leg.Cached {
		t.Errorf("legacy compile diverged: %+v vs %+v", leg, v1)
	}

	var a, b runResponse
	post(t, ts.URL+"/v1/run", runRequest{Program: v1.Program, Mechanism: "rsti-stc"}, &a)
	post(t, ts.URL+"/run", runRequest{Program: v1.Program, Mechanism: "rsti-stc"}, &b)
	if a.Exit != b.Exit || a.Cycles != b.Cycles || a.Instrs != b.Instrs {
		t.Errorf("legacy run diverged: %+v vs %+v", b, a)
	}
}

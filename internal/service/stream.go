package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"rsti/internal/core"
	"rsti/internal/engine"
)

// Streaming runs: POST /v1/run/stream takes the same body as /v1/run and
// answers with a Server-Sent Events stream —
//
//	event: output            (repeated; data is a JSON string chunk)
//	event: result            (terminal; data is the runResponse JSON)
//
// Output is delivered as the interpreter produces it, not as one final
// flush: every printf lands in the stream sink, is forwarded to the
// response and flushed. The run is driven by the request context, so a
// client that disconnects mid-run cancels it at the interpreter's next
// cancellation checkpoint (the run reports TrapCancelled); output
// truncation (the byte cap) is reported on the terminal result event,
// exactly as the buffered endpoint reports it.
//
// Request validation failures behave like /v1/run — a JSON error
// envelope with an HTTP status. Only once the request is admitted does
// the response commit to text/event-stream.

// streamCap is the default output byte cap for streamed runs when the
// request leaves max_output_bytes zero — same default as buffered runs.
const streamCap = core.DefaultMaxOutputBytes

// streamSink is the io.Writer handed to the VM for a streamed run. The
// interpreter goroutine writes; the handler goroutine receives. After the
// client is gone (done closed) writes turn into drops so the worker never
// blocks on an abandoned stream while it coasts to its cancellation
// checkpoint.
type streamSink struct {
	ch   chan []byte
	done <-chan struct{}

	mu        sync.Mutex
	remaining int
	truncated bool
}

func newStreamSink(done <-chan struct{}, capBytes int) *streamSink {
	if capBytes <= 0 {
		capBytes = streamCap
	}
	return &streamSink{
		ch:        make(chan []byte, 64),
		done:      done,
		remaining: capBytes,
	}
}

// Write forwards p to the stream, enforcing the byte cap (core's capture
// is bypassed when an explicit Output writer is set, so the cap lives
// here). It never returns an error: a full or abandoned stream drops
// bytes rather than failing the run — mirroring the buffered endpoint,
// where truncation is reported, not fatal.
func (sk *streamSink) Write(p []byte) (int, error) {
	n := len(p)
	sk.mu.Lock()
	if sk.remaining <= 0 {
		if n > 0 {
			sk.truncated = true
		}
		sk.mu.Unlock()
		return n, nil
	}
	if n > sk.remaining {
		sk.truncated = true
		p = p[:sk.remaining]
	}
	sk.remaining -= len(p)
	sk.mu.Unlock()

	buf := make([]byte, len(p))
	copy(buf, p)
	select {
	case sk.ch <- buf:
	case <-sk.done:
	}
	return n, nil
}

func (sk *streamSink) wasTruncated() bool {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return sk.truncated
}

// sseEvent writes one SSE event and flushes it to the client.
func sseEvent(w http.ResponseWriter, f http.Flusher, event string, data any) {
	raw, err := json.Marshal(data)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
	f.Flush()
}

func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !decode(w, r, &req) {
		return
	}
	mech, ok := parseMech(w, r, req.Mechanism)
	if !ok {
		return
	}
	key, c, ok := s.resolve(w, r, req.Program, req.Source)
	if !ok {
		return
	}
	cfg, ok := s.runConfig(w, r, &req)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, KindInternal,
			"response writer does not support streaming")
		return
	}

	ctx := r.Context()
	sink := newStreamSink(ctx.Done(), cfg.MaxOutputBytes)
	cfg.Output = sink
	cfg.MaxOutputBytes = 0 // the sink owns the cap

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// The engine drives the run with the request context: client gone →
	// run cancelled at the next interpreter checkpoint. The goroutine
	// closes the sink channel when the run finishes so the drain loop
	// below terminates after forwarding every produced chunk.
	type outcome struct {
		res *core.RunResult
		err error
	}
	resc := make(chan outcome, 1)
	go func() {
		defer close(sink.ch)
		var o outcome
		if req.NoWait {
			o.res, o.err = s.eng.TrySubmit(ctx, engine.Job{Comp: c, Mech: mech, Cfg: cfg})
		} else {
			o.res, o.err = s.eng.Submit(ctx, engine.Job{Comp: c, Mech: mech, Cfg: cfg})
		}
		resc <- o
	}()

	for chunk := range sink.ch {
		select {
		case <-ctx.Done():
			// Client gone: stop writing, let the run observe cancellation.
		default:
			sseEvent(w, flusher, "output", string(chunk))
		}
	}
	o := <-resc
	if o.err != nil {
		// Admission failed after the stream committed (queue full under
		// no_wait, shutdown): the envelope rides as the terminal event.
		kind := KindInternal
		switch {
		case errors.Is(o.err, engine.ErrQueueFull):
			kind = KindQueueFull
		case errors.Is(o.err, engine.ErrClosed):
			kind = KindShutdown
		case ctx.Err() != nil:
			kind = KindShutdown
		}
		sseEvent(w, flusher, "error", apiError{Kind: kind, Message: o.err.Error()})
		return
	}
	s.recordPACOps(mech, o.res)
	out := runResponse{
		Program:         key,
		Mechanism:       mech.String(),
		Exit:            o.res.Exit,
		Cycles:          o.res.Stats.Cycles,
		Instrs:          o.res.Stats.Instrs,
		OutputTruncated: sink.wasTruncated(),
		Detected:        o.res.Detected(),
		Trap:            trapWire(o.res.Trap),
	}
	if o.res.Err != nil {
		out.Error = o.res.Err.Error()
		out.Cancelled = runCancelled(o.res.Err)
	}
	sseEvent(w, flusher, "result", out)
}

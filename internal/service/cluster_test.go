package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"

	"rsti/internal/cluster"
	"rsti/internal/compilecache"
)

const clusterSrc = `
struct box { int v; };
int open(struct box *b) { return b->v * 3; }
int main() {
	struct box b;
	b.v = 14;
	printf("open=%d\n", open(&b));
	return open(&b);
}
`

// testPeer is one in-process cluster node: a Server bound to a real TCP
// listener (peers must reach each other over HTTP, so httptest's
// handler-only mode is not enough — the URL must exist before the Server
// is built).
type testPeer struct {
	url string
	srv *Server
}

// startCluster boots n peers with real listeners, each with its own
// cache directory, wired into one ring. Heartbeats are disabled
// (negative interval): tests drive health deterministically.
func startCluster(t *testing.T, n int, secret string) []*testPeer {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	peers := make([]*testPeer, n)
	for i := range peers {
		s := New(Config{
			Workers:           2,
			CacheDir:          filepath.Join(t.TempDir(), fmt.Sprintf("peer%d", i)),
			Self:              urls[i],
			Peers:             urls,
			PeerSecret:        secret,
			HeartbeatInterval: -1,
		})
		hs := &http.Server{Handler: s}
		go hs.Serve(listeners[i])
		t.Cleanup(func() { hs.Close(); s.Close() })
		peers[i] = &testPeer{url: urls[i], srv: s}
	}
	return peers
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, out
}

// TestClusterSingleCompileAcrossPeers is the cross-node singleflight
// contract: a concurrent burst of one source against every peer runs
// exactly one compile cluster-wide — each node's local flight coalesces
// its own duplicates, non-owners fetch from the owner, and the owner's
// flight serializes the fetches onto the single compile.
func TestClusterSingleCompileAcrossPeers(t *testing.T) {
	peers := startCluster(t, 3, "smoke-secret")

	const burst = 4 // per peer
	var wg sync.WaitGroup
	errs := make(chan string, 3*burst)
	for _, p := range peers {
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, body := postJSON(t, url+"/v1/compile", map[string]string{"source": clusterSrc})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("%s: status %d: %s", url, resp.StatusCode, body)
				}
			}(p.url)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	var compiles, peerHits int64
	for _, p := range peers {
		s := p.srv.CacheStats()
		compiles += s.Compiles
		peerHits += s.PeerHits
	}
	if compiles != 1 {
		for _, p := range peers {
			t.Logf("%s: %+v", p.url, p.srv.CacheStats())
		}
		t.Fatalf("cluster ran %d compiles for one source, want exactly 1", compiles)
	}
	if peerHits != 2 {
		t.Fatalf("cluster recorded %d peer hits, want 2 (both non-owners)", peerHits)
	}
}

// TestClusterBitIdenticalAcrossPeers: the modelled numbers a peer serves
// from a fetched artifact are bit-identical to the owner's locally
// compiled ones, across every mechanism, optimizer setting and execution
// tier.
func TestClusterBitIdenticalAcrossPeers(t *testing.T) {
	peers := startCluster(t, 3, "smoke-secret")

	type key struct{ mech, opt, tier string }
	type nums struct {
		exit           int64
		cycles, instrs int64
		output         string
	}
	results := make([]map[key]nums, len(peers))
	for i, p := range peers {
		results[i] = make(map[key]nums)
		for _, mech := range []string{"none", "parts", "rsti-stwc", "rsti-stc", "rsti-stl", "rsti-adaptive"} {
			for _, opt := range []string{"off", "on"} {
				for _, tier := range []string{"off", "on"} {
					resp, body := postJSON(t, p.url+"/v1/run", map[string]any{
						"source": clusterSrc, "mechanism": mech,
						"optimizer": opt, "tier": tier,
					})
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("%s %s/%s/%s: status %d: %s", p.url, mech, opt, tier, resp.StatusCode, body)
					}
					var rr runResponse
					if err := json.Unmarshal(body, &rr); err != nil {
						t.Fatalf("unmarshal run response: %v", err)
					}
					if rr.Error != "" {
						t.Fatalf("%s %s/%s/%s: run error: %s", p.url, mech, opt, tier, rr.Error)
					}
					results[i][key{mech, opt, tier}] = nums{rr.Exit, rr.Cycles, rr.Instrs, rr.Output}
				}
			}
		}
	}
	var compiles int64
	for _, p := range peers {
		compiles += p.srv.CacheStats().Compiles
	}
	if compiles != 1 {
		t.Fatalf("matrix drove %d compiles, want 1 (the whole matrix rides one artifact)", compiles)
	}
	for i := 1; i < len(results); i++ {
		for k, want := range results[0] {
			if got := results[i][k]; got != want {
				t.Fatalf("peer %d diverged from peer 0 at %+v:\n  peer0 %+v\n  peer%d %+v",
					i, k, want, i, got)
			}
		}
	}
}

// TestClusterOwnerDownFallsBackLocally: with the owner dead, a non-owner
// still serves the source — by compiling locally — and the response is
// a success, not an error. Graceful degradation is the contract: a peer
// failure may cost a duplicate compile, never availability.
func TestClusterOwnerDownFallsBackLocally(t *testing.T) {
	peers := startCluster(t, 3, "smoke-secret")

	// Find a source owned by a peer other than peers[2] (the node we'll
	// drive), then kill the owner.
	driver := peers[2]
	var src, ownerURL string
	for i := 0; ; i++ {
		s := fmt.Sprintf("int main() { return %d; }", 100+i)
		if o := driver.srv.Router().Owner(s); o != driver.url {
			src, ownerURL = s, o
			break
		}
	}
	for _, p := range peers {
		if p.url == ownerURL {
			p.srv.Close() // engine down: peer endpoints answer 503
		}
	}

	resp, body := postJSON(t, driver.url+"/v1/compile", map[string]string{"source": src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile with dead owner: status %d: %s", resp.StatusCode, body)
	}
	s := driver.srv.CacheStats()
	if s.Compiles != 1 || s.PeerErrors != 1 {
		t.Fatalf("driver stats %+v, want 1 local compile after 1 peer error", s)
	}
	rs := driver.srv.Router().Stats()
	if rs.ForwardErrors != 1 {
		t.Fatalf("router stats %+v, want 1 forward error", rs)
	}
}

// TestClusterPeerSecretEnforced: peer endpoints reject a missing or
// wrong shared secret, and the public surface is unaffected.
func TestClusterPeerSecretEnforced(t *testing.T) {
	peers := startCluster(t, 2, "right-key")
	target := peers[0].url

	for _, wrong := range []string{"", "wrong-key"} {
		req, _ := http.NewRequest(http.MethodPost, target+cluster.PeerArtifactPath,
			bytes.NewReader([]byte(`{"source":"int main() { return 0; }"}`)))
		req.Header.Set("Content-Type", "application/json")
		if wrong != "" {
			req.Header.Set(cluster.PeerKeyHeader, wrong)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("peer request: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("secret %q: status %d, want 403", wrong, resp.StatusCode)
		}
	}
	resp, body := postJSON(t, target+"/v1/compile", map[string]string{"source": clusterSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("public compile: status %d: %s", resp.StatusCode, body)
	}
}

// TestClusterMetricsAndHealth: /v1/metrics carries the cluster block
// (ring size, forward counters, peer table) and the instrumentation
// counter, and /v1/healthz summarizes ring membership.
func TestClusterMetricsAndHealth(t *testing.T) {
	peers := startCluster(t, 3, "smoke-secret")
	// Drive one source through a non-owner so forward counters move.
	var driver *testPeer
	for _, p := range peers {
		if p.srv.Router().Owner(clusterSrc) != p.url {
			driver = p
			break
		}
	}
	if resp, body := postJSON(t, driver.url+"/v1/compile", map[string]string{"source": clusterSrc}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(driver.url + "/v1/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var m struct {
		CompileCache compilecache.Stats `json:"compile_cache"`
		Cluster      *cluster.Stats     `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if m.Cluster == nil {
		t.Fatal("metrics missing cluster block")
	}
	if m.Cluster.RingSize != 3 || len(m.Cluster.Peers) != 2 {
		t.Fatalf("cluster block %+v, want ring of 3 with 2 peer rows", m.Cluster)
	}
	if m.Cluster.ForwardHits != 1 || m.CompileCache.PeerHits != 1 {
		t.Fatalf("forward/peer counters not recorded: cluster %+v cache %+v", m.Cluster, m.CompileCache)
	}

	hresp, err := http.Get(driver.url + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hb, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if want := "ok ring=3 peers=2 down=0\n"; string(hb) != want {
		t.Fatalf("healthz = %q, want %q", hb, want)
	}
}

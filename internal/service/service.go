// Package service is the rstid daemon's HTTP layer: a versioned /v1 API
// over the concurrent execution engine, in the paper's
// compile-once/run-many server shape (§6.6). Programs are compiled (and
// STI-analyzed) once, cached by source hash — in memory and, when
// configured, in a disk-backed artifact store that survives restarts —
// and then served for any number of protected runs, streamed runs, and
// attack experiments by a bounded pool of VM workers.
//
// The surface (see docs/API.md for the full reference):
//
//	POST /v1/compile     {"source": "..."}
//	POST /v1/run         {"program" | "source", "mechanism", ...}
//	POST /v1/run/stream  same body; SSE response (output/result events)
//	POST /v1/attack      {"scenario", "mechanism", "benign"?}
//	GET  /v1/attacks     Table 1 scenario catalogue
//	GET  /v1/metrics     engine + cache + tier + PAC-op + security counters
//	GET  /v1/healthz     liveness
//
// Every /v1 error response uses one envelope: {"error": {"kind",
// "message", "trap"?}}. The pre-versioning routes (/compile, /run,
// /attack, /attacks, /metrics, /healthz) remain as deprecated aliases —
// flat error shape, Deprecation header — so old clients keep working.
//
// Execution outcomes (traps, budget exhaustion, deadline) are reported
// inside a 200 response; protocol failures (unknown program, bad
// mechanism, full queue, auth) use HTTP status codes.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"rsti/internal/attack"
	"rsti/internal/cluster"
	"rsti/internal/compilecache"
	"rsti/internal/core"
	"rsti/internal/engine"
	"rsti/internal/report"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// maxSourceBytes bounds accepted request bodies; DefaultMaxPrograms
// bounds the compiled-program handle table (FIFO eviction).
const (
	maxSourceBytes     = 1 << 20
	DefaultMaxPrograms = 128
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the VM worker pool size (0 = GOMAXPROCS).
	Workers int
	// Queue is the job queue depth (0 = 4×workers).
	Queue int
	// CacheDir, when non-empty, enables the persistent compile-cache
	// level: compiled artifacts are written there and a restarted server
	// pointed at the same directory serves warm compile hits without
	// recompiling, bit-identically.
	CacheDir string
	// Tenants, when non-empty, switches the costly endpoints (compile,
	// run, run/stream, attack) to API-key auth with per-tenant rate and
	// step-budget quotas. Empty means open mode: no keys, no quotas.
	Tenants []Tenant
	// MaxPrograms bounds the program handle table (0 = DefaultMaxPrograms).
	MaxPrograms int
	// SecurityResults, when non-empty, points at the SECURITY_RESULTS.json
	// trajectory written by `rstibench -secjson`; /v1/metrics then carries
	// the latest datapoint's security summary so an operator sees the
	// served build's replay surface next to its runtime counters.
	SecurityResults string

	// Self, when non-empty alongside Peers, enables cluster mode: this
	// node joins a consistent-hash ring with its peers, compiles only the
	// sources it owns, and adopts peer artifacts for the rest (see
	// internal/cluster). Self is this node's advertised base URL as peers
	// reach it, e.g. "http://10.0.0.1:8080".
	Self string
	// Peers are the fleet's base URLs. Self may be included (every node
	// can share one flag value); it is filtered out.
	Peers []string
	// PeerSecret, when non-empty, is required (via the X-RSTI-Peer-Key
	// header) on the peer endpoints and attached to outgoing peer
	// requests. Leave empty only on trusted networks.
	PeerSecret string
	// HeartbeatInterval is the peer-health probe period; 0 means 2s.
	// Negative disables the background loop (tests drive ProbeNow).
	HeartbeatInterval time.Duration
}

// Server wires the HTTP surface to one shared engine, the shared
// compilation cache (content-addressed, singleflight-deduped, optionally
// disk-backed) and a bounded handle table mapping the sha256 program
// handles we mint back to their compilations. Compiles are routed through
// the engine pool too, so compilation concurrency is bounded alongside
// run concurrency and a burst of distinct sources cannot starve the host.
type Server struct {
	eng    *engine.Engine
	cache  *compilecache.Cache
	auth   *auth
	mux    *http.ServeMux
	router *cluster.Router // nil outside cluster mode

	peerSecret string

	maxPrograms     int
	securityResults string

	mu       sync.Mutex
	programs map[string]*core.Compilation
	order    []string // insertion order for FIFO eviction

	scenarios map[string]*attack.Scenario

	// pacMu guards the per-mechanism dynamic PAC-op accumulators served
	// under /v1/metrics: every completed run adds its executed
	// sign/auth/strip counts and fused-dispatch counts for its mechanism.
	pacMu  sync.Mutex
	pacOps map[string]*pacOpMetrics
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxPrograms <= 0 {
		cfg.MaxPrograms = DefaultMaxPrograms
	}
	s := &Server{
		eng:             engine.New(engine.Config{Workers: cfg.Workers, QueueDepth: cfg.Queue}),
		auth:            newAuth(cfg.Tenants),
		mux:             http.NewServeMux(),
		peerSecret:      cfg.PeerSecret,
		maxPrograms:     cfg.MaxPrograms,
		securityResults: cfg.SecurityResults,
		programs:        make(map[string]*core.Compilation),
		scenarios:       make(map[string]*attack.Scenario),
		pacOps:          make(map[string]*pacOpMetrics),
	}
	if cfg.Self != "" && len(cfg.Peers) > 0 {
		interval := cfg.HeartbeatInterval
		if interval == 0 {
			interval = 2 * time.Second
		} else if interval < 0 {
			interval = 0 // tests drive health with ProbeNow
		}
		// Config.Self is non-empty, so cluster.New cannot fail.
		s.router, _ = cluster.New(cluster.Config{
			Self:              cfg.Self,
			Peers:             cfg.Peers,
			Secret:            cfg.PeerSecret,
			HeartbeatInterval: interval,
		})
	}
	// Compiles run inside the engine pool: identical sources still
	// coalesce onto one flight in the cache, and that one flight occupies
	// one bounded worker slot instead of an unbounded goroutine. The
	// background context is deliberate — a singleflight result is shared
	// by every waiter, so no single requester's disconnect may abort it.
	cacheCfg := compilecache.Config{
		MaxEntries: cfg.MaxPrograms,
		Dir:        cfg.CacheDir,
		Compile: func(src string) (*core.Compilation, error) {
			var c *core.Compilation
			var cerr error
			if err := s.eng.SubmitFunc(context.Background(), func(context.Context) error {
				c, cerr = core.Compile(src)
				return nil
			}); err != nil {
				return nil, err
			}
			return c, cerr
		},
	}
	if s.router != nil {
		// In cluster mode a miss first asks the ring owner for its
		// finished artifact; only self-owned sources (or owner failures)
		// compile here. This is what makes the fleet pay each program's
		// instrumentation once.
		cacheCfg.Fetch = s.router.FetchArtifact
	}
	s.cache = compilecache.New(cacheCfg)
	for _, sc := range attack.Scenarios() {
		s.scenarios[sc.Name] = sc
	}
	s.routes()
	return s
}

// routes mounts the /v1 surface and its deprecated unversioned aliases.
func (s *Server) routes() {
	v1 := []struct {
		pattern string
		h       http.HandlerFunc
		guarded bool // costly endpoints sit behind tenant auth
	}{
		{"POST /v1/compile", s.handleCompile, true},
		{"POST /v1/run", s.handleRun, true},
		{"POST /v1/run/stream", s.handleRunStream, true},
		{"POST /v1/attack", s.handleAttack, true},
		{"GET /v1/attacks", s.handleAttackList, false},
		{"GET /v1/metrics", s.handleMetrics, false},
		{"GET /v1/healthz", s.handleHealthz, false},
	}
	// The peer surface mounts only in cluster mode, guarded by the shared
	// secret rather than tenant auth: peers are infrastructure, not
	// tenants, and the artifact endpoint must work when tenant auth is on.
	if s.router != nil {
		s.mux.HandleFunc("POST "+cluster.PeerArtifactPath, s.peerGuard(s.handlePeerArtifact))
		s.mux.HandleFunc("GET "+cluster.PeerHealthPath, s.peerGuard(s.handlePeerHealth))
	}
	for _, rt := range v1 {
		h := rt.h
		if rt.guarded {
			h = s.guarded(h)
		}
		s.mux.HandleFunc(rt.pattern, h)
	}
	// Deprecated aliases: same handlers, legacy error shape, Deprecation
	// header pointing at the successor. (run/stream never existed
	// unversioned, so it has no alias.)
	legacy := []struct {
		pattern   string
		successor string
		h         http.HandlerFunc
		guarded   bool
	}{
		{"POST /compile", "/v1/compile", s.handleCompile, true},
		{"POST /run", "/v1/run", s.handleRun, true},
		{"POST /attack", "/v1/attack", s.handleAttack, true},
		{"GET /attacks", "/v1/attacks", s.handleAttackList, false},
		{"GET /metrics", "/v1/metrics", s.handleMetrics, false},
		{"GET /healthz", "/v1/healthz", s.handleHealthz, false},
	}
	for _, rt := range legacy {
		h := rt.h
		if rt.guarded {
			h = s.guarded(h)
		}
		s.mux.HandleFunc(rt.pattern, s.deprecated(rt.successor, h))
	}
}

// deprecated wraps a handler as a legacy alias: responses carry the
// Deprecation header (RFC 8594 style) and a Link to the successor route,
// and errors render in the historical flat shape.
func (s *Server) deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r.WithContext(context.WithValue(r.Context(), legacyKey, true)))
	}
}

// tenantKey carries the admitted tenant (nil in open mode) to handlers.
type tenantKeyType struct{}

var tenantKey tenantKeyType

func requestTenant(r *http.Request) *tenantState {
	t, _ := r.Context().Value(tenantKey).(*tenantState)
	return t
}

// guarded wraps a handler with tenant admission: API-key auth and rate
// limiting, enforced before any body decoding or engine contact.
func (s *Server) guarded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.auth.admit(w, r)
		if !ok {
			return
		}
		if t != nil {
			r = r.WithContext(context.WithValue(r.Context(), tenantKey, t))
		}
		h(w, r)
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close shuts the engine down: in-flight runs are cancelled at their next
// interpreter checkpoint. Call http.Server.Shutdown first to drain
// in-flight requests gracefully (see cmd/rstid).
func (s *Server) Close() {
	if s.router != nil {
		s.router.Stop()
	}
	s.eng.Close()
}

// Router exposes the cluster router (nil outside cluster mode) for the
// load harness and integration tests.
func (s *Server) Router() *cluster.Router { return s.router }

// Engine exposes the underlying engine (load harness and tests).
func (s *Server) Engine() *engine.Engine { return s.eng }

// CacheStats snapshots the compile cache (integration tests assert disk
// hits across restarts).
func (s *Server) CacheStats() compilecache.Stats { return s.cache.Stats() }

// pacOpMetrics accumulates the dynamic PA-instruction counters of every
// run served under one mechanism, including the superinstruction
// dispatches (fused pairs execute the same modelled ops; the fused
// counters measure how many dispatches the host saved).
type pacOpMetrics struct {
	Runs                int64 `json:"runs"`
	PacSigns            int64 `json:"pac_signs"`
	PacAuths            int64 `json:"pac_auths"`
	PacStrips           int64 `json:"pac_strips"`
	FusedAuthLoads      int64 `json:"fused_auth_loads"`
	FusedSignStores     int64 `json:"fused_sign_stores"`
	FusedAuthStores     int64 `json:"fused_auth_stores"`
	FusedAuthAddrLoads  int64 `json:"fused_auth_addr_loads"`
	FusedAuthAddrStores int64 `json:"fused_auth_addr_stores"`
	FusedInstrs         int64 `json:"fused_instrs"`
}

// recordPACOps folds one run's executed PAC-op counters into the
// mechanism's accumulator.
func (s *Server) recordPACOps(mech sti.Mechanism, res *core.RunResult) {
	if res == nil {
		return
	}
	s.pacMu.Lock()
	defer s.pacMu.Unlock()
	m := s.pacOps[mech.String()]
	if m == nil {
		m = &pacOpMetrics{}
		s.pacOps[mech.String()] = m
	}
	m.Runs++
	m.PacSigns += res.Stats.PacSigns
	m.PacAuths += res.Stats.PacAuths
	m.PacStrips += res.Stats.PacStrips
	m.FusedAuthLoads += res.Stats.FusedAuthLoads
	m.FusedSignStores += res.Stats.FusedSignStores
	m.FusedAuthStores += res.Stats.FusedAuthStores
	m.FusedAuthAddrLoads += res.Stats.FusedAuthAddrLoads
	m.FusedAuthAddrStores += res.Stats.FusedAuthAddrStores
	m.FusedInstrs += res.Stats.FusedInstrs
}

// pacOpsSnapshot copies the accumulators for the metrics endpoints.
func (s *Server) pacOpsSnapshot() map[string]pacOpMetrics {
	s.pacMu.Lock()
	defer s.pacMu.Unlock()
	out := make(map[string]pacOpMetrics, len(s.pacOps))
	for k, v := range s.pacOps {
		out[k] = *v
	}
	return out
}

// compile returns the cached compilation for src, compiling and caching
// on first sight. The hash doubles as the program handle. Cached reports
// whether the handle table already knew the program.
func (s *Server) compile(src string) (string, *core.Compilation, bool, error) {
	sum := sha256.Sum256([]byte(src))
	key := hex.EncodeToString(sum[:])
	s.mu.Lock()
	if c, ok := s.programs[key]; ok {
		s.mu.Unlock()
		// The handle table is a cache level above the compile cache; count
		// the hit there so metrics lookups reflect request traffic.
		s.cache.NoteHit()
		return key, c, true, nil
	}
	s.mu.Unlock()
	// Compile outside the lock, through the shared cache: a burst of
	// racing duplicates coalesces onto one compile (singleflight), a
	// source recently evicted from the handle table is still answered
	// from memory, and a source compiled by an earlier daemon run is
	// answered from the disk level.
	c, err := s.cache.Get(src)
	if err != nil {
		return "", nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if have, ok := s.programs[key]; ok {
		return key, have, true, nil
	}
	if len(s.order) >= s.maxPrograms {
		delete(s.programs, s.order[0])
		s.order = s.order[1:]
	}
	s.programs[key] = c
	s.order = append(s.order, key)
	return key, c, false, nil
}

func (s *Server) lookup(key string) (*core.Compilation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.programs[key]
	return c, ok
}

// decode parses the request body into v, bounding its size.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxSourceBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeError(w, r, http.StatusBadRequest, KindBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

type compileRequest struct {
	Source string `json:"source"`
}

type compileResponse struct {
	Program     string         `json:"program"`
	Cached      bool           `json:"cached"`
	Equivalence sti.EquivStats `json:"equivalence"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		writeError(w, r, http.StatusBadRequest, KindBadRequest, "missing source")
		return
	}
	key, c, cached, err := s.compile(req.Source)
	if err != nil {
		writeCompileFailure(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, compileResponse{
		Program:     key,
		Cached:      cached,
		Equivalence: c.Analysis.Equivalence(),
	})
}

type runRequest struct {
	Program        string `json:"program,omitempty"`
	Source         string `json:"source,omitempty"`
	Mechanism      string `json:"mechanism"`
	TimeoutMS      int64  `json:"timeout_ms,omitempty"`
	StepBudget     int64  `json:"step_budget,omitempty"`
	MaxOutputBytes int    `json:"max_output_bytes,omitempty"`
	// Optimizer selects the build flavour: "on", "off", or "" for the
	// process default (RSTI_OPT). Optimized and unoptimized builds are
	// cached independently, so flipping this per request is cheap.
	Optimizer string `json:"optimizer,omitempty"`
	// Tier selects the execution tier: "on" (profile-guided
	// direct-threaded dispatch), "off" (switch interpreter), or "" for
	// the process default (RSTI_TIER). The tier changes host dispatch
	// speed only; every modelled number in the response is identical
	// either way.
	Tier string `json:"tier,omitempty"`
	// NoWait sheds load instead of queueing: a full queue answers 429.
	NoWait bool `json:"no_wait,omitempty"`
}

// parseOptimizer maps the wire field onto a build mode.
func parseOptimizer(w http.ResponseWriter, r *http.Request, name string) (core.OptimizeMode, bool) {
	switch name {
	case "":
		return core.OptimizeDefault, true
	case "on":
		return core.OptimizeOn, true
	case "off":
		return core.OptimizeOff, true
	}
	writeError(w, r, http.StatusBadRequest, KindBadRequest,
		"unknown optimizer mode %q (want on, off, or empty)", name)
	return core.OptimizeDefault, false
}

// parseTier maps the wire field onto an execution-tier mode.
func parseTier(w http.ResponseWriter, r *http.Request, name string) (core.TierMode, bool) {
	switch name {
	case "":
		return core.TierDefault, true
	case "on":
		return core.TierOn, true
	case "off":
		return core.TierOff, true
	}
	writeError(w, r, http.StatusBadRequest, KindBadRequest,
		"unknown tier mode %q (want on, off, or empty)", name)
	return core.TierDefault, false
}

// trapJSON is the wire form of a machine trap.
type trapJSON struct {
	Kind string `json:"kind"`
	Fn   string `json:"fn,omitempty"`
	Msg  string `json:"msg,omitempty"`
}

func trapWire(t *vm.Trap) *trapJSON {
	if t == nil {
		return nil
	}
	return &trapJSON{Kind: t.Kind.String(), Fn: t.Fn, Msg: t.Msg}
}

type runResponse struct {
	Program         string    `json:"program"`
	Mechanism       string    `json:"mechanism"`
	Exit            int64     `json:"exit"`
	Cycles          int64     `json:"cycles"`
	Instrs          int64     `json:"instrs"`
	Output          string    `json:"output,omitempty"`
	OutputTruncated bool      `json:"output_truncated,omitempty"`
	Detected        bool      `json:"detected"`
	Cancelled       bool      `json:"cancelled,omitempty"`
	Trap            *trapJSON `json:"trap,omitempty"`
	Error           string    `json:"error,omitempty"`
}

// resolve turns a run request's program-or-source into a compilation.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request, program, source string) (string, *core.Compilation, bool) {
	switch {
	case program != "" && source != "":
		writeError(w, r, http.StatusBadRequest, KindBadRequest, "give program or source, not both")
	case program != "":
		if c, ok := s.lookup(program); ok {
			return program, c, true
		}
		writeError(w, r, http.StatusNotFound, KindNotFound,
			"unknown program %q (compile it first)", program)
	case source != "":
		key, c, _, err := s.compile(source)
		if err != nil {
			writeCompileFailure(w, r, err)
			return "", nil, false
		}
		return key, c, true
	default:
		writeError(w, r, http.StatusBadRequest, KindBadRequest, "missing program or source")
	}
	return "", nil, false
}

// parseMech validates the mechanism name ("" means the None baseline).
func parseMech(w http.ResponseWriter, r *http.Request, name string) (sti.Mechanism, bool) {
	if name == "" {
		return sti.None, true
	}
	mech, ok := sti.ParseMechanism(name)
	if !ok {
		writeError(w, r, http.StatusBadRequest, KindBadRequest, "unknown mechanism %q", name)
	}
	return mech, ok
}

// runConfig assembles the RunConfig for a validated run request,
// applying the tenant's step-budget quota. ok=false means the response
// has been written.
func (s *Server) runConfig(w http.ResponseWriter, r *http.Request, req *runRequest) (core.RunConfig, bool) {
	optMode, ok := parseOptimizer(w, r, req.Optimizer)
	if !ok {
		return core.RunConfig{}, false
	}
	tierMode, ok := parseTier(w, r, req.Tier)
	if !ok {
		return core.RunConfig{}, false
	}
	return core.RunConfig{
		Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
		StepBudget:     requestTenant(r).clampStepBudget(req.StepBudget),
		MaxOutputBytes: req.MaxOutputBytes,
		Optimize:       optMode,
		Tier:           tierMode,
	}, true
}

// writeCompileFailure renders a failed compile. Engine admission
// sentinels surface when the pool refused the compile job (shutdown,
// saturation) — those are service conditions, not source defects, and
// keep their admission statuses.
func writeCompileFailure(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, engine.ErrClosed) || errors.Is(err, engine.ErrQueueFull) {
		writeAdmissionError(w, r, err)
		return
	}
	writeCompileError(w, r, err)
}

// writeAdmissionError maps an engine admission failure onto the wire;
// reports whether err was one.
func writeAdmissionError(w http.ResponseWriter, r *http.Request, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, engine.ErrQueueFull):
		writeError(w, r, http.StatusTooManyRequests, KindQueueFull, "queue full")
	case errors.Is(err, engine.ErrClosed):
		writeError(w, r, http.StatusServiceUnavailable, KindShutdown, "shutting down")
	default:
		writeError(w, r, http.StatusInternalServerError, KindInternal, "%v", err)
	}
	return true
}

// submit drives one job through the engine and renders the outcome.
// Engine-level admission failures map to HTTP statuses; execution
// outcomes (traps, cancellation) ride inside a 200.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, key string, job engine.Job, noWait bool) {
	var (
		res *core.RunResult
		err error
	)
	if noWait {
		res, err = s.eng.TrySubmit(r.Context(), job)
	} else {
		res, err = s.eng.Submit(r.Context(), job)
	}
	if writeAdmissionError(w, r, err) {
		return
	}
	s.recordPACOps(job.Mech, res)
	out := runResponse{
		Program:         key,
		Mechanism:       job.Mech.String(),
		Exit:            res.Exit,
		Cycles:          res.Stats.Cycles,
		Instrs:          res.Stats.Instrs,
		Output:          res.Output,
		OutputTruncated: res.OutputTruncated,
		Detected:        res.Detected(),
		Trap:            trapWire(res.Trap),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
		out.Cancelled = runCancelled(res.Err)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !decode(w, r, &req) {
		return
	}
	mech, ok := parseMech(w, r, req.Mechanism)
	if !ok {
		return
	}
	key, c, ok := s.resolve(w, r, req.Program, req.Source)
	if !ok {
		return
	}
	cfg, ok := s.runConfig(w, r, &req)
	if !ok {
		return
	}
	s.submit(w, r, key, engine.Job{Comp: c, Mech: mech, Cfg: cfg}, req.NoWait)
}

type attackRequest struct {
	Scenario  string `json:"scenario"`
	Mechanism string `json:"mechanism"`
	// Benign runs the victim without the corruption (false-positive
	// check).
	Benign bool `json:"benign,omitempty"`
}

type attackResponse struct {
	Scenario  string `json:"scenario"`
	Mechanism string `json:"mechanism"`
	Benign    bool   `json:"benign,omitempty"`
	// Detected: a security trap fired. Succeeded: the attack reached its
	// goal exit.
	Detected  bool      `json:"detected"`
	Succeeded bool      `json:"succeeded"`
	Exit      int64     `json:"exit"`
	Trap      *trapJSON `json:"trap,omitempty"`
	Error     string    `json:"error,omitempty"`
}

func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	var req attackRequest
	if !decode(w, r, &req) {
		return
	}
	sc, ok := s.scenarios[req.Scenario]
	if !ok {
		writeError(w, r, http.StatusNotFound, KindNotFound,
			"unknown scenario %q (GET /v1/attacks lists them)", req.Scenario)
		return
	}
	mech, ok := parseMech(w, r, req.Mechanism)
	if !ok {
		return
	}
	_, c, _, err := s.compile(sc.Source)
	if err != nil {
		writeCompileFailure(w, r, err)
		return
	}
	cfg := core.RunConfig{Externs: sc.Externs}
	if !req.Benign {
		cfg.Hooks = map[int64]vm.Hook{1: sc.Corrupt}
	}
	res, err := s.eng.Submit(r.Context(), engine.Job{Comp: c, Mech: mech, Cfg: cfg})
	if writeAdmissionError(w, r, err) {
		return
	}
	s.recordPACOps(mech, res)
	out := attackResponse{
		Scenario:  sc.Name,
		Mechanism: mech.String(),
		Benign:    req.Benign,
		Detected:  res.Detected(),
		Succeeded: !req.Benign && res.Err == nil && res.Exit == sc.SuccessExit,
		Exit:      res.Exit,
		Trap:      trapWire(res.Trap),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

type scenarioJSON struct {
	Name      string `json:"name"`
	Category  string `json:"category"`
	RealWorld bool   `json:"real_world"`
	Corrupted string `json:"corrupted"`
	Target    string `json:"target"`
}

func (s *Server) handleAttackList(w http.ResponseWriter, _ *http.Request) {
	var out []scenarioJSON
	for _, sc := range attack.Scenarios() {
		out = append(out, scenarioJSON{
			Name:      sc.Name,
			Category:  sc.Category,
			RealWorld: sc.RealWorld,
			Corrupted: sc.Corrupted,
			Target:    sc.Target,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// metricsResponse keeps the engine counters at the top level (the
// long-standing shape) and nests the compile-cache counters under their
// own key.
type metricsResponse struct {
	engine.Stats
	CompileCache compilecache.Stats      `json:"compile_cache"`
	PACOps       map[string]pacOpMetrics `json:"pac_ops"`
	Tier         tierMetrics             `json:"tier"`
	Security     *securityMetrics        `json:"security,omitempty"`
	// Cluster carries the ring/forwarding/peer-health snapshot; present
	// only in cluster mode.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Instrumentations counts the instrumentation passes this process has
	// run (excluding the uninstrumented baseline). A daemon cold-started
	// over persisted version-2 artifacts serves its whole warm working set
	// with this counter unchanged — the observable for the zero-
	// instrumentation cold-start contract.
	Instrumentations int64 `json:"instrumentations"`
	// Runtime is the host process itself: live heap, GC pauses, goroutine
	// count. The steady-state serving path allocates nothing per executed
	// instruction, so an operator watching this block should see a flat
	// heap and a quiet GC under load.
	Runtime runtimeMetrics `json:"runtime"`
}

// securityMetrics is the latest security-trajectory datapoint condensed
// for an operator: which measurement the served build carries, its
// per-mechanism worst-case equivalence class and total replay surface,
// and whether attack synthesis confirmed every derived tamper.
type securityMetrics struct {
	Label            string           `json:"label"`
	Timestamp        string           `json:"timestamp"`
	Workloads        int              `json:"workloads"`
	MaxLargestClass  map[string]int   `json:"max_largest_class"`
	TotalReplayPairs map[string]int64 `json:"total_replay_pairs"`
	SynthTampers     int              `json:"synth_tampers"`
	SynthConfirmed   int              `json:"synth_confirmed"`
}

// securitySnapshot loads the most recent datapoint from the configured
// trajectory file. Nil (never an error) when unconfigured, missing or
// unreadable: the security block is advisory and must not take the
// metrics endpoint down with it.
func (s *Server) securitySnapshot() *securityMetrics {
	if s.securityResults == "" {
		return nil
	}
	records, err := report.ReadSecurityRecords(s.securityResults)
	if err != nil || len(records) == 0 {
		return nil
	}
	rec := &records[len(records)-1]
	m := &securityMetrics{
		Label:            rec.Label,
		Timestamp:        rec.Timestamp,
		Workloads:        len(rec.Workloads),
		MaxLargestClass:  rec.MaxLargestClass,
		TotalReplayPairs: rec.TotalReplayPairs,
	}
	for _, w := range rec.Workloads {
		m.SynthTampers += w.SynthTampers
		m.SynthConfirmed += w.SynthConfirmed
	}
	return m
}

// tierMetrics summarizes the direct-threaded execution tier for an
// operator: how many function bodies this process has promoted to
// threaded code, and what share of the served modelled instructions ran
// through them.
type tierMetrics struct {
	Promotions     int64   `json:"promotions"`
	ThreadedInstrs int64   `json:"threaded_instrs"`
	ThreadedShare  float64 `json:"threaded_share"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	tier := tierMetrics{Promotions: vm.TierPromotions(), ThreadedInstrs: st.ThreadedInstrs}
	if st.Instrs > 0 {
		tier.ThreadedShare = float64(st.ThreadedInstrs) / float64(st.Instrs)
	}
	resp := metricsResponse{
		Stats:            st,
		CompileCache:     s.cache.Stats(),
		PACOps:           s.pacOpsSnapshot(),
		Tier:             tier,
		Security:         s.securitySnapshot(),
		Instrumentations: rsti.InstrumentCount(),
		Runtime:          readRuntimeMetrics(),
	}
	if s.router != nil {
		cs := s.router.Stats()
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.router == nil {
		io.WriteString(w, "ok\n")
		return
	}
	// Cluster mode: the liveness line also summarizes ring membership, so
	// `curl /v1/healthz` on any node shows fleet health at a glance.
	cs := s.router.Stats()
	down := 0
	for _, p := range cs.Peers {
		if p.State == "down" {
			down++
		}
	}
	fmt.Fprintf(w, "ok ring=%d peers=%d down=%d\n", cs.RingSize, len(cs.Peers), down)
}

package service

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// startDaemon runs a Daemon on a real TCP listener — the same serve/stop
// path cmd/rstid wires to SIGTERM — and returns its base URL.
func startDaemon(t *testing.T, cfg Config) (*Daemon, string) {
	t.Helper()
	// Generous drain timeout: the race detector slows modelled runs by an
	// order of magnitude, and a drain cut-off would turn a drained run
	// into a cancellation and fail the graceful-shutdown assertion.
	d := &Daemon{Server: New(cfg), Logf: t.Logf, DrainTimeout: time.Minute}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve(l) }()
	t.Cleanup(func() {
		d.Stop() // idempotent; frees the engine if the test didn't stop it
		if err := <-done; err != nil {
			t.Errorf("daemon serve: %v", err)
		}
	})
	return d, "http://" + l.Addr().String()
}

// TestGracefulShutdownMidRun: a stop signal arriving while a run is
// executing drains it — the client gets a complete 200 response with the
// run's numbers, not a connection reset — because http.Server.Shutdown
// runs before Engine.Close.
func TestGracefulShutdownMidRun(t *testing.T) {
	d, url := startDaemon(t, Config{Workers: 2, Queue: 8})

	// A run long enough (tens of ms native, seconds under -race) that
	// Stop lands mid-flight.
	src := `int main(void){ int i; int a; a = 0;
for (i = 0; i < 4000000; i = i + 1) { a = a + i; }
return a & 1; }`

	var (
		wg   sync.WaitGroup
		code int
		run  runResponse
		rerr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		data, _ := json.Marshal(runRequest{Source: src, Mechanism: "none"})
		resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(data))
		if err != nil {
			rerr = err
			return
		}
		defer resp.Body.Close()
		code = resp.StatusCode
		rerr = json.NewDecoder(resp.Body).Decode(&run)
	}()

	// Give the request time to reach a worker, then stop the daemon the
	// way the SIGTERM handler does.
	time.Sleep(20 * time.Millisecond)
	d.Stop()
	wg.Wait()

	if rerr != nil {
		t.Fatalf("mid-shutdown run failed at the transport level (connection reset?): %v", rerr)
	}
	if code != 200 {
		t.Fatalf("mid-shutdown run: status %d, want 200", code)
	}
	if run.Error != "" || run.Cancelled || run.Cycles == 0 {
		t.Errorf("mid-shutdown run was not drained to completion: %+v", run)
	}

	// After shutdown the engine refuses new work.
	d2 := New(Config{Workers: 1, Queue: 1})
	d2.Close()
	if _, err := d2.cache.Get("int main(void) { return 0; }"); err == nil {
		t.Error("closed server still compiles")
	}
}

// TestColdRestartServesFromDisk is the tentpole's end-to-end contract,
// exercised through real daemons: compile through daemon A with a cache
// directory, stop A, start daemon B on the same directory, and B serves
// the same program from disk — zero compiles — with bit-identical run
// output and modelled numbers.
func TestColdRestartServesFromDisk(t *testing.T) {
	cacheDir := t.TempDir()

	runReq := runRequest{Source: victimSrc, Mechanism: "rsti-stc"}

	// Daemon A: cold cache — compiles, runs, persists the artifact.
	dA, urlA := startDaemon(t, Config{Workers: 2, Queue: 8, CacheDir: cacheDir})
	var compA compileResponse
	if code := post(t, urlA+"/v1/compile", compileRequest{Source: victimSrc}, &compA); code != 200 {
		t.Fatalf("A compile: status %d", code)
	}
	var runA runResponse
	if code := post(t, urlA+"/v1/run", runReq, &runA); code != 200 {
		t.Fatalf("A run: status %d", code)
	}
	sA := dA.Server.CacheStats()
	if sA.Misses != 1 || sA.DiskWrites != 1 || sA.DiskHits != 0 {
		t.Fatalf("A cache stats: %+v, want 1 miss, 1 disk write", sA)
	}
	dA.Stop()

	// Daemon B: fresh process state, same cache directory.
	dB, urlB := startDaemon(t, Config{Workers: 2, Queue: 8, CacheDir: cacheDir})
	var compB compileResponse
	if code := post(t, urlB+"/v1/compile", compileRequest{Source: victimSrc}, &compB); code != 200 {
		t.Fatalf("B compile: status %d", code)
	}
	if compB.Program != compA.Program {
		t.Fatalf("program handle changed across restart: %q vs %q", compB.Program, compA.Program)
	}
	sB := dB.Server.CacheStats()
	if sB.DiskHits != 1 || sB.DiskWrites != 0 || sB.DiskErrors != 0 {
		t.Fatalf("B cache stats: %+v, want exactly 1 disk hit and no writes (no recompile)", sB)
	}

	var runB runResponse
	if code := post(t, urlB+"/v1/run", runReq, &runB); code != 200 {
		t.Fatalf("B run: status %d", code)
	}
	if runA.Exit != runB.Exit || runA.Output != runB.Output ||
		runA.Cycles != runB.Cycles || runA.Instrs != runB.Instrs ||
		runA.Detected != runB.Detected {
		t.Errorf("restarted daemon's output is not bit-identical:\nA %+v\nB %+v", runA, runB)
	}

	// The reloaded program serves the full mechanism × optimizer matrix
	// identically, not just the one probe.
	for _, mech := range []string{"none", "parts", "rsti-stwc", "rsti-stl"} {
		req := runRequest{Program: compA.Program, Mechanism: mech}
		var a, b runResponse
		// Daemon A is stopped; replay its side from a third daemon on a
		// fresh (memory-only) cache, which must agree with B's disk path.
		dC, urlC := startDaemon(t, Config{Workers: 1, Queue: 4})
		if code := post(t, urlC+"/v1/run", runRequest{Source: victimSrc, Mechanism: mech}, &a); code != 200 {
			t.Fatalf("C run %s: status %d", mech, code)
		}
		if code := post(t, urlB+"/v1/run", req, &b); code != 200 {
			t.Fatalf("B run %s: status %d", mech, code)
		}
		dC.Stop()
		if a.Exit != b.Exit || a.Output != b.Output || a.Cycles != b.Cycles || a.Instrs != b.Instrs {
			t.Errorf("%s: fresh-compile vs disk-reload diverge:\nfresh %+v\ndisk  %+v", mech, a, b)
		}
	}
}

package service

import (
	"crypto/subtle"
	"net/http"

	"rsti/internal/cluster"
)

// Peer endpoints: the daemon's server side of internal/cluster's router.
// Mounted only in cluster mode, guarded by the shared peer secret (not
// tenant auth — peers are infrastructure and must reach each other even
// when tenant keys gate the public surface).
//
// The artifact endpoint is deliberately non-forwarding: it answers from
// this node's own cache or compiler (compilecache.Artifact, which uses
// the no-fetch GetLocal path), so a request chain between peers with
// momentarily divergent rings terminates at one hop instead of looping.

// peerGuard enforces the shared-secret header when one is configured.
// Constant-time comparison: the secret is a bearer credential.
func (s *Server) peerGuard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.peerSecret != "" {
			got := r.Header.Get(cluster.PeerKeyHeader)
			if subtle.ConstantTimeCompare([]byte(got), []byte(s.peerSecret)) != 1 {
				writeError(w, r, http.StatusForbidden, KindForbidden, "bad peer key")
				return
			}
		}
		h(w, r)
	}
}

type peerArtifactRequest struct {
	Source string `json:"source"`
}

// handlePeerArtifact serves the encoded compile artifact for a source:
// from this node's cache when warm, compiling locally (through the same
// singleflight the public surface uses, so a cluster-wide burst of one
// source still runs exactly one compile) when cold. The response body is
// the raw artifact; the fetching peer checksum-verifies and fully
// decodes it before serving, so transport corruption degrades to a local
// compile on the fetcher, never to wrong answers.
func (s *Server) handlePeerArtifact(w http.ResponseWriter, r *http.Request) {
	var req peerArtifactRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		writeError(w, r, http.StatusBadRequest, KindBadRequest, "missing source")
		return
	}
	raw, err := s.cache.Artifact(req.Source)
	if err != nil {
		writeCompileFailure(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

// handlePeerHealth is the heartbeat probe target: 200 once the mux is
// serving. Engine saturation is deliberately not a health failure — a
// busy peer still owns its keys; marking it down would stampede its
// share of the ring onto its neighbours.
func (s *Server) handlePeerHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
}

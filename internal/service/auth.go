package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"
)

// Tenant is one API-key principal with its admission quotas. Quotas are
// enforced before engine admission: a rate-limited or over-budget request
// never occupies a queue slot or a VM worker.
type Tenant struct {
	// Key is the API key presented in the Authorization: Bearer header
	// (or X-API-Key). Required, and must be unique across tenants.
	Key string `json:"key"`
	// Name identifies the tenant in errors and (future) per-tenant
	// metrics; defaults to the key's first 8 characters.
	Name string `json:"name,omitempty"`
	// RatePerSec caps sustained request rate via a token bucket; zero
	// means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth (instantaneous burst allowance); zero
	// defaults to max(1, ceil(RatePerSec)).
	Burst float64 `json:"burst,omitempty"`
	// MaxStepBudget caps the interpreter step budget any one run may
	// request. Requests asking for more (or for the unlimited default of
	// zero) are clamped down to it; zero means no cap.
	MaxStepBudget int64 `json:"max_step_budget,omitempty"`
}

// LoadTenants reads a tenants file: a JSON array of Tenant objects.
func LoadTenants(path string) ([]Tenant, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ts []Tenant
	if err := json.Unmarshal(raw, &ts); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	seen := make(map[string]bool, len(ts))
	for i := range ts {
		if ts[i].Key == "" {
			return nil, fmt.Errorf("tenants file %s: tenant %d has no key", path, i)
		}
		if seen[ts[i].Key] {
			return nil, fmt.Errorf("tenants file %s: duplicate key %q", path, ts[i].Key)
		}
		seen[ts[i].Key] = true
		if ts[i].Name == "" {
			n := ts[i].Key
			if len(n) > 8 {
				n = n[:8]
			}
			ts[i].Name = n
		}
	}
	return ts, nil
}

// tokenBucket is a minimal leaky-bucket rate limiter (no external deps):
// tokens refill continuously at rate/sec up to burst; each admitted
// request spends one.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

func (b *tokenBucket) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenantState pairs a tenant with its live limiter.
type tenantState struct {
	Tenant
	bucket *tokenBucket // nil when RatePerSec is zero (unlimited)
}

// auth owns the tenant table. With no tenants configured the service runs
// open (no key required, no quotas) — single-user and test deployments
// keep their zero-config workflow.
type auth struct {
	tenants map[string]*tenantState // by key
	now     func() time.Time        // injectable clock for tests
}

func newAuth(tenants []Tenant) *auth {
	a := &auth{now: time.Now}
	if len(tenants) == 0 {
		return a
	}
	a.tenants = make(map[string]*tenantState, len(tenants))
	for _, t := range tenants {
		st := &tenantState{Tenant: t}
		if t.RatePerSec > 0 {
			st.bucket = newTokenBucket(t.RatePerSec, t.Burst)
		}
		a.tenants[t.Key] = st
	}
	return a
}

func (a *auth) open() bool { return a.tenants == nil }

// apiKey extracts the presented key: "Authorization: Bearer <key>" wins,
// "X-API-Key: <key>" is the curl-friendly fallback.
func apiKey(r *http.Request) string {
	const prefix = "Bearer "
	if h := r.Header.Get("Authorization"); len(h) > len(prefix) && h[:len(prefix)] == prefix {
		return h[len(prefix):]
	}
	return r.Header.Get("X-API-Key")
}

// admit authenticates and rate-limits the request. It returns the tenant
// (nil in open mode) and whether the request may proceed; on refusal the
// response has already been written.
func (a *auth) admit(w http.ResponseWriter, r *http.Request) (*tenantState, bool) {
	if a.open() {
		return nil, true
	}
	key := apiKey(r)
	if key == "" {
		writeError(w, r, http.StatusUnauthorized, KindUnauthorized,
			"missing API key (Authorization: Bearer <key> or X-API-Key)")
		return nil, false
	}
	t, ok := a.tenants[key]
	if !ok {
		writeError(w, r, http.StatusForbidden, KindForbidden, "unknown API key")
		return nil, false
	}
	if t.bucket != nil && !t.bucket.allow(a.now()) {
		writeError(w, r, http.StatusTooManyRequests, KindRateLimited,
			"tenant %s over its rate limit (%g/s)", t.Name, t.RatePerSec)
		return nil, false
	}
	return t, true
}

// clampStepBudget applies the tenant's step-budget quota to a requested
// budget (0 = unlimited request). Open mode and quota-free tenants pass
// the request through.
func (t *tenantState) clampStepBudget(requested int64) int64 {
	if t == nil || t.MaxStepBudget <= 0 {
		return requested
	}
	if requested <= 0 || requested > t.MaxStepBudget {
		return t.MaxStepBudget
	}
	return requested
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"rsti/internal/report"
)

const victimSrc = `
int g;
int benign(void) { return 7; }
int evil(void)   { return 666; }
int (*handler)(void);
int main(void) {
    int *p; int i;
    p = &g;
    handler = benign;
    for (i = 0; i < 100; i = i + 1) { *p = *p + i; }
    return handler();
}
`

const spinSrc = `int main(void){ int i; int a; a = 0; for (i = 0; i < 100000000; i = i + 1) { a = a + i; } return a & 1; }`

func startServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	return startServerCfg(t, Config{Workers: 2, Queue: 8})
}

func startServerCfg(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

// post sends a JSON body and decodes the JSON reply into out.
func post(t *testing.T, url string, body, out any) int {
	t.Helper()
	return postHeaders(t, url, nil, body, out)
}

func postHeaders(t *testing.T, url string, headers map[string]string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s reply: %v", url, err)
		}
	}
	return resp.StatusCode
}

// wireError decodes the /v1 envelope.
type wireError struct {
	Error apiError `json:"error"`
}

func TestCompileRunRoundTrip(t *testing.T) {
	ts, _ := startServer(t)

	var comp compileResponse
	if code := post(t, ts.URL+"/v1/compile", compileRequest{Source: victimSrc}, &comp); code != 200 {
		t.Fatalf("compile: status %d", code)
	}
	if comp.Program == "" || comp.Cached {
		t.Fatalf("first compile: %+v", comp)
	}
	var again compileResponse
	post(t, ts.URL+"/v1/compile", compileRequest{Source: victimSrc}, &again)
	if !again.Cached || again.Program != comp.Program {
		t.Errorf("second compile not served from cache: %+v", again)
	}

	var run runResponse
	if code := post(t, ts.URL+"/v1/run",
		runRequest{Program: comp.Program, Mechanism: "rsti-stwc"}, &run); code != 200 {
		t.Fatalf("run: status %d", code)
	}
	if run.Exit != 7 || run.Detected || run.Cycles == 0 {
		t.Errorf("benign run: %+v", run)
	}

	// Source-direct run, baseline mechanism by default.
	var direct runResponse
	if code := post(t, ts.URL+"/v1/run", runRequest{Source: victimSrc}, &direct); code != 200 {
		t.Fatalf("source run: status %d", code)
	}
	if direct.Program != comp.Program || direct.Exit != 7 {
		t.Errorf("source run: %+v", direct)
	}
}

func TestRunProtocolErrors(t *testing.T) {
	ts, _ := startServer(t)

	var we wireError
	if code := post(t, ts.URL+"/v1/run", runRequest{Program: "nope", Mechanism: "rsti-stl"}, &we); code != 404 {
		t.Errorf("unknown program: status %d, want 404", code)
	}
	if we.Error.Kind != KindNotFound || we.Error.Message == "" {
		t.Errorf("unknown program envelope: %+v", we)
	}
	we = wireError{}
	if code := post(t, ts.URL+"/v1/run", runRequest{Source: victimSrc, Mechanism: "rop"}, &we); code != 400 {
		t.Errorf("unknown mechanism: status %d, want 400", code)
	}
	if we.Error.Kind != KindBadRequest {
		t.Errorf("unknown mechanism envelope: %+v", we)
	}
	we = wireError{}
	if code := post(t, ts.URL+"/v1/compile", compileRequest{Source: "int main(void) { return 0 }"}, &we); code != 422 {
		t.Errorf("parse error: status %d, want 422", code)
	}
	if we.Error.Kind != KindParse {
		t.Errorf("parse error kind = %q", we.Error.Kind)
	}
	we = wireError{}
	if code := post(t, ts.URL+"/v1/compile", compileRequest{Source: "int main(void) { return nosuch; }"}, &we); code != 422 || we.Error.Kind != KindTypecheck {
		t.Errorf("typecheck error: status %d kind %q", code, we.Error.Kind)
	}
}

func TestRunBudgetsAndDeadlines(t *testing.T) {
	ts, _ := startServer(t)

	var budget runResponse
	post(t, ts.URL+"/v1/run", runRequest{Source: victimSrc, StepBudget: 50}, &budget)
	if budget.Trap == nil || budget.Error == "" {
		t.Fatalf("step-budget run: %+v", budget)
	}

	var dl runResponse
	post(t, ts.URL+"/v1/run", runRequest{Source: spinSrc, Mechanism: "none", TimeoutMS: 20}, &dl)
	if !dl.Cancelled || dl.Trap == nil {
		t.Fatalf("deadline run: %+v", dl)
	}
}

func TestAttackEndpoints(t *testing.T) {
	ts, _ := startServer(t)

	resp, err := http.Get(ts.URL + "/v1/attacks")
	if err != nil {
		t.Fatal(err)
	}
	var list []scenarioJSON
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 12 {
		t.Fatalf("scenario catalogue has %d entries, want 12", len(list))
	}

	name := list[0].Name
	var base attackResponse
	post(t, ts.URL+"/v1/attack", attackRequest{Scenario: name, Mechanism: "none"}, &base)
	if !base.Succeeded || base.Detected {
		t.Errorf("baseline attack: %+v", base)
	}
	var prot attackResponse
	post(t, ts.URL+"/v1/attack", attackRequest{Scenario: name, Mechanism: "rsti-stwc"}, &prot)
	if !prot.Detected || prot.Succeeded {
		t.Errorf("protected attack: %+v", prot)
	}
	var benign attackResponse
	post(t, ts.URL+"/v1/attack", attackRequest{Scenario: name, Mechanism: "rsti-stwc", Benign: true}, &benign)
	if benign.Detected {
		t.Errorf("benign run flagged: %+v", benign)
	}
	var we wireError
	if code := post(t, ts.URL+"/v1/attack", attackRequest{Scenario: "nope", Mechanism: "none"}, &we); code != 404 {
		t.Errorf("unknown scenario: status %d, want 404", code)
	}
	if we.Error.Kind != KindNotFound {
		t.Errorf("unknown scenario envelope: %+v", we)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	ts, _ := startServer(t)

	// Mix optimizer modes so the PAC-op block sees both unfused and fused
	// dispatch counters under one mechanism.
	for i, opt := range []string{"off", "on", ""} {
		var run runResponse
		if code := post(t, ts.URL+"/v1/run",
			runRequest{Source: victimSrc, Mechanism: "rsti-stc", Optimizer: opt}, &run); code != 200 {
			t.Fatalf("run %d (optimizer %q): status %d", i, opt, code)
		}
		if run.Exit != 7 {
			t.Fatalf("run %d (optimizer %q): %+v", i, opt, run)
		}
	}
	if code := post(t, ts.URL+"/v1/run",
		runRequest{Source: victimSrc, Mechanism: "rsti-stc", Optimizer: "fast"}, nil); code != 400 {
		t.Errorf("bad optimizer mode: status %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m["completed"].(float64) < 3 || m["workers"].(float64) != 2 {
		t.Errorf("metrics: %v", m)
	}
	cc, ok := m["compile_cache"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing compile_cache: %v", m)
	}
	// Three source-direct runs of the same program: one real compile
	// (the repeats are answered from the handle table before reaching
	// the cache), one retained entry.
	if cc["misses"].(float64) != 1 || cc["entries"].(float64) != 1 {
		t.Errorf("compile_cache counters: %v", cc)
	}
	pac, ok := m["pac_ops"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing pac_ops: %v", m)
	}
	stc, ok := pac["rsti-stc"].(map[string]any)
	if !ok {
		t.Fatalf("pac_ops missing rsti-stc: %v", pac)
	}
	if stc["runs"].(float64) != 3 || stc["pac_signs"].(float64) == 0 || stc["pac_auths"].(float64) == 0 {
		t.Errorf("pac_ops[rsti-stc]: %v", stc)
	}
	// Predecode fuses adjacent aut+load / pac+store pairs in every build
	// flavour, and the victim's hot loop dereferences a protected pointer,
	// so fused dispatches must have accumulated.
	if stc["fused_auth_loads"].(float64)+stc["fused_sign_stores"].(float64) == 0 {
		t.Errorf("no fused dispatches recorded: %v", stc)
	}

	h, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != 200 {
		t.Errorf("healthz: %d", h.StatusCode)
	}
}

// TestMetricsSecurityBlock checks /v1/metrics surfaces the latest
// security-trajectory datapoint when the server is pointed at a
// SECURITY_RESULTS.json, and omits the block (rather than failing) when
// it is not, or when the file is missing.
func TestMetricsSecurityBlock(t *testing.T) {
	getMetrics := func(t *testing.T, url string) map[string]any {
		t.Helper()
		resp, err := http.Get(url + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	path := filepath.Join(t.TempDir(), "SECURITY_RESULTS.json")
	for _, label := range []string{"older", "latest"} {
		rec := &report.SecurityRecord{
			Label:     label,
			Timestamp: "2026-01-01T00:00:00Z",
			Workloads: []report.WorkloadSecurity{{
				Name: "sec-small",
				Mechs: map[string]report.MechSecurity{
					"rsti-stwc": {Classes: 10, Members: 30, LargestClass: 8, ReplayPairs: 40},
				},
				SynthTampers:   10,
				SynthConfirmed: 10,
			}},
		}
		rec.Finalize()
		if err := report.AppendSecurityRecord(path, rec); err != nil {
			t.Fatal(err)
		}
	}

	ts, _ := startServerCfg(t, Config{Workers: 1, SecurityResults: path})
	sec, ok := getMetrics(t, ts.URL)["security"].(map[string]any)
	if !ok {
		t.Fatal("metrics missing the security block")
	}
	if sec["label"] != "latest" {
		t.Errorf("security block label = %v, want the most recent datapoint", sec["label"])
	}
	if sec["synth_confirmed"].(float64) != 10 || sec["workloads"].(float64) != 1 {
		t.Errorf("security block: %v", sec)
	}
	mlc, ok := sec["max_largest_class"].(map[string]any)
	if !ok || mlc["rsti-stwc"].(float64) != 8 {
		t.Errorf("security block aggregates: %v", sec)
	}

	tsOff, _ := startServerCfg(t, Config{Workers: 1})
	if _, present := getMetrics(t, tsOff.URL)["security"]; present {
		t.Error("security block present without a configured trajectory")
	}

	tsGone, _ := startServerCfg(t, Config{Workers: 1,
		SecurityResults: filepath.Join(t.TempDir(), "nope.json")})
	if _, present := getMetrics(t, tsGone.URL)["security"]; present {
		t.Error("security block present for a missing trajectory file")
	}
}

// TestCompileBurstDeduped fires concurrent /v1/compile requests for one
// fresh source and proves the pipeline ran once: the compile cache's
// singleflight coalesces the burst — and the one flight runs inside the
// bounded engine pool — so misses stays 1 no matter how the requests
// interleave.
func TestCompileBurstDeduped(t *testing.T) {
	ts, s := startServer(t)

	src := "int main(void) { int burst; burst = 42; return burst; }"
	const n = 8
	var wg sync.WaitGroup
	programs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var comp compileResponse
			if code := post(t, ts.URL+"/v1/compile", compileRequest{Source: src}, &comp); code != 200 {
				t.Errorf("compile %d: status %d", i, code)
				return
			}
			programs[i] = comp.Program
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if programs[i] != programs[0] {
			t.Fatalf("request %d got handle %q, want %q", i, programs[i], programs[0])
		}
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Errorf("burst of %d compiles ran the pipeline %d times, want 1", n, st.Misses)
	}
}

func TestProgramCacheEviction(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 4})
	defer s.Close()
	for i := 0; i < DefaultMaxPrograms+10; i++ {
		src := fmt.Sprintf("int main(void) { return %d; }", i)
		if _, _, _, err := s.compile(src); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	n, order := len(s.programs), len(s.order)
	s.mu.Unlock()
	if n != DefaultMaxPrograms || order != DefaultMaxPrograms {
		t.Errorf("cache holds %d programs (%d in order), cap is %d", n, order, DefaultMaxPrograms)
	}
}

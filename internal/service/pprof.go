package service

// Host-runtime observability: the /v1/metrics runtime block and the
// opt-in pprof handler rstid mounts on a separate listener. The execution
// core's zero-allocation contract is enforced by tests and the bench
// trajectory; this is the operator's live view of the same facts — a
// serving daemon whose heap grows or whose GC pauses climb is violating
// the contract in production, and heap/goroutine profiles are the first
// diagnostic reached for.

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
)

// runtimeMetrics is the host-process block of the metrics response: live
// heap footprint and GC behaviour of the daemon itself (everything else
// in /v1/metrics describes the modelled machine).
type runtimeMetrics struct {
	// HeapAllocBytes is the live heap (runtime.MemStats.HeapAlloc);
	// TotalAllocBytes the monotonic lifetime total.
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// NumGC counts completed collections since process start.
	NumGC uint32 `json:"num_gc"`
	// GCPauseP99Ns is the 99th-percentile stop-the-world pause over the
	// runtime's recent pause ring (up to the last 256 collections).
	GCPauseP99Ns uint64 `json:"gc_pause_p99_ns"`
	// Goroutines is the live goroutine count — a leak here is a stuck
	// run or an abandoned stream, not GC pressure.
	Goroutines int `json:"goroutines"`
}

// readRuntimeMetrics snapshots the host runtime.
func readRuntimeMetrics() runtimeMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeMetrics{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
		GCPauseP99Ns:    pauseP99(&ms),
		Goroutines:      runtime.NumGoroutine(),
	}
}

// pauseP99 computes the 99th-percentile pause from the MemStats ring.
func pauseP99(ms *runtime.MemStats) uint64 {
	n := ms.NumGC
	if n == 0 {
		return 0
	}
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	pauses := make([]uint64, n)
	for i := uint32(0); i < n; i++ {
		pauses[i] = ms.PauseNs[(ms.NumGC-1-i)%uint32(len(ms.PauseNs))]
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	return pauses[(len(pauses)-1)*99/100]
}

// PprofHandler returns the net/http/pprof mux rstid mounts on its opt-in
// -pprof listener. A separate handler (and listener) rather than routes
// on the API mux: profiles expose the daemon's internals and must never
// ride the authenticated tenant-facing port by accident.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package service

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// DefaultDrainTimeout bounds how long shutdown waits for in-flight
// requests before cutting them off.
const DefaultDrainTimeout = 10 * time.Second

// Daemon runs a Server on a listener with graceful shutdown: a stop
// signal first drains in-flight HTTP requests (http.Server.Shutdown — a
// run that is executing when SIGTERM lands still returns its complete
// response) and only then closes the engine. cmd/rstid and the
// integration tests share this path so the test exercises exactly what
// the binary does.
type Daemon struct {
	Server *Server
	// DrainTimeout bounds graceful drain (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Logf receives lifecycle messages (nil = log.Printf).
	Logf func(format string, args ...any)

	once    sync.Once
	httpSrv *http.Server
}

// srv lazily builds the embedded http.Server exactly once — Serve and
// Stop may race from different goroutines (signal handler vs accept
// loop).
func (d *Daemon) srv() *http.Server {
	d.once.Do(func() { d.httpSrv = &http.Server{Handler: d.Server} })
	return d.httpSrv
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Serve accepts connections on l until Stop (or a signal wired via
// HandleSignals) shuts it down. It returns nil on graceful shutdown.
func (d *Daemon) Serve(l net.Listener) error {
	err := d.srv().Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Stop drains in-flight requests, then closes the engine. In-flight runs
// complete (up to the drain timeout) before workers go away, so clients
// get complete responses rather than connection resets.
func (d *Daemon) Stop() {
	to := d.DrainTimeout
	if to <= 0 {
		to = DefaultDrainTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), to)
	defer cancel()
	d.srv().Shutdown(ctx)
	d.Server.Close()
}

// HandleSignals arranges for SIGINT/SIGTERM to trigger Stop; the
// returned channel closes once shutdown has completed.
func (d *Daemon) HandleSignals() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		d.logf("rstid: shutting down")
		d.Stop()
	}()
	return done
}

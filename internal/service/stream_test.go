package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sse is one parsed server-sent event.
type sse struct {
	event string
	data  string
}

// sseReader incrementally parses an SSE body.
type sseReader struct {
	sc *bufio.Scanner
}

func newSSEReader(body *bufio.Scanner) *sseReader { return &sseReader{sc: body} }

// next returns the next event, or ok=false at stream end.
func (r *sseReader) next(t *testing.T) (sse, bool) {
	t.Helper()
	var ev sse
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if ev.event != "" {
				return ev, true
			}
		case strings.HasPrefix(line, "event: "):
			ev.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[len("data: "):]
		}
	}
	return sse{}, false
}

// streamRequest opens a streaming run and returns the live response.
func streamRequest(t *testing.T, url string, req runRequest) *http.Response {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run/stream", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestStreamDeliversIncrementally: output arrives while the run is still
// executing — the first printf is on the wire before the program's long
// middle section finishes — and the terminal result event carries the
// same modelled numbers as the buffered endpoint (bit-identical across
// transports).
func TestStreamDeliversIncrementally(t *testing.T) {
	ts, srv := startServer(t)

	src := `int main(void){ int i; int a; a = 0;
printf("tick\n");
for (i = 0; i < 3000000; i = i + 1) { a = a + i; }
printf("done\n");
return 41; }`

	resp := streamRequest(t, ts.URL, runRequest{Source: src, Mechanism: "rsti-stc"})
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	rd := newSSEReader(bufio.NewScanner(resp.Body))
	ev, ok := rd.next(t)
	if !ok || ev.event != "output" {
		t.Fatalf("first event = %+v, want output", ev)
	}
	var chunk string
	if err := json.Unmarshal([]byte(ev.data), &chunk); err != nil {
		t.Fatalf("output data: %v", err)
	}
	if !strings.Contains(chunk, "tick") {
		t.Fatalf("first chunk %q does not contain tick", chunk)
	}
	// The first chunk arrived while the run is still inside its loop: the
	// engine has an active run and zero completions for this job. (The
	// compile ran through the pool too, so completed counts that one
	// SubmitFunc job; the run itself must still be in flight.)
	if st := srv.Engine().Stats(); st.Running == 0 {
		t.Errorf("first chunk arrived after the run finished (stats %+v) — not incremental", st)
	}

	var all strings.Builder
	all.WriteString(chunk)
	var result runResponse
	for {
		ev, ok := rd.next(t)
		if !ok {
			t.Fatal("stream ended without a result event")
		}
		if ev.event == "output" {
			var c string
			if err := json.Unmarshal([]byte(ev.data), &c); err != nil {
				t.Fatal(err)
			}
			all.WriteString(c)
			continue
		}
		if ev.event != "result" {
			t.Fatalf("unexpected event %+v", ev)
		}
		if err := json.Unmarshal([]byte(ev.data), &result); err != nil {
			t.Fatal(err)
		}
		break
	}
	if got := all.String(); got != "tick\ndone\n" {
		t.Errorf("streamed output = %q, want tick/done", got)
	}
	if result.Exit != 41 || result.Error != "" || result.Output != "" {
		t.Errorf("result event: %+v", result)
	}

	// Bit-identical contract across transports: the buffered endpoint
	// reports the same modelled numbers for the same job.
	var buffered runResponse
	if code := post(t, ts.URL+"/v1/run", runRequest{Source: src, Mechanism: "rsti-stc"}, &buffered); code != 200 {
		t.Fatalf("buffered run: status %d", code)
	}
	if buffered.Cycles != result.Cycles || buffered.Instrs != result.Instrs {
		t.Errorf("modelled numbers diverge across transports: stream (%d cycles, %d instrs) vs buffered (%d, %d)",
			result.Cycles, result.Instrs, buffered.Cycles, buffered.Instrs)
	}
	if buffered.Output != "tick\ndone\n" {
		t.Errorf("buffered output = %q", buffered.Output)
	}
}

// TestStreamDisconnectCancelsRun: closing the client connection mid-run
// cancels the run at the interpreter's next cancellation checkpoint —
// observable as the engine's cancelled counter ticking — instead of the
// worker spinning to completion.
func TestStreamDisconnectCancelsRun(t *testing.T) {
	ts, srv := startServer(t)

	// Prints once so the client knows the run started, then spins long
	// enough (~seconds) that only cancellation can end it promptly.
	src := `int main(void){ int i; int a; a = 0;
printf("started\n");
for (i = 0; i < 1000000000; i = i + 1) { a = a + i; }
return a & 1; }`

	resp := streamRequest(t, ts.URL, runRequest{Source: src, Mechanism: "none"})
	rd := newSSEReader(bufio.NewScanner(resp.Body))
	if ev, ok := rd.next(t); !ok || ev.event != "output" {
		t.Fatalf("first event = %+v, want output", ev)
	}
	start := time.Now()
	resp.Body.Close() // client walks away

	// The run must observe cancellation within one checkpoint interval —
	// far sooner than the ~seconds the loop would need. Poll the engine.
	deadline := time.After(5 * time.Second)
	for {
		if st := srv.Engine().Stats(); st.Cancelled >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("run not cancelled %v after disconnect: %+v", time.Since(start), srv.Engine().Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("cancellation took %v — longer than a checkpoint interval", waited)
	}
}

// TestStreamTruncation: the output byte cap applies to streamed runs and
// is surfaced on the terminal result event, mirroring Result.OutputTruncated.
func TestStreamTruncation(t *testing.T) {
	ts, _ := startServer(t)

	src := `int main(void){ int i;
for (i = 0; i < 100; i = i + 1) { printf("0123456789\n"); }
return 0; }`

	resp := streamRequest(t, ts.URL, runRequest{Source: src, Mechanism: "none", MaxOutputBytes: 64})
	defer resp.Body.Close()
	rd := newSSEReader(bufio.NewScanner(resp.Body))

	total := 0
	var result *runResponse
	for {
		ev, ok := rd.next(t)
		if !ok {
			break
		}
		switch ev.event {
		case "output":
			var c string
			if err := json.Unmarshal([]byte(ev.data), &c); err != nil {
				t.Fatal(err)
			}
			total += len(c)
		case "result":
			var rr runResponse
			if err := json.Unmarshal([]byte(ev.data), &rr); err != nil {
				t.Fatal(err)
			}
			result = &rr
		}
		if result != nil {
			break
		}
	}
	if result == nil {
		t.Fatal("no result event")
	}
	if total > 64 {
		t.Errorf("streamed %d output bytes past the 64-byte cap", total)
	}
	if !result.OutputTruncated {
		t.Errorf("truncation not surfaced on result event: %+v", result)
	}
	if result.Exit != 0 || result.Error != "" {
		t.Errorf("truncated run should still complete cleanly: %+v", result)
	}
}

// TestStreamValidationErrors: before the stream commits, failures use the
// ordinary /v1 envelope and status codes, exactly like /v1/run.
func TestStreamValidationErrors(t *testing.T) {
	ts, _ := startServer(t)

	data, _ := json.Marshal(runRequest{Source: victimSrc, Mechanism: "rop"})
	resp, err := http.Post(ts.URL+"/v1/run/stream", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad mechanism: status %d, want 400", resp.StatusCode)
	}
	var we wireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatal(err)
	}
	if we.Error.Kind != KindBadRequest {
		t.Errorf("kind = %q", we.Error.Kind)
	}
}

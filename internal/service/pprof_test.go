package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsRuntimeBlock checks /v1/metrics carries the host-runtime
// block: live heap, GC counters and goroutine count, present from the
// first scrape and sane after real runs.
func TestMetricsRuntimeBlock(t *testing.T) {
	ts, _ := startServer(t)

	var run runResponse
	if code := post(t, ts.URL+"/v1/run",
		runRequest{Source: victimSrc, Mechanism: "rsti-stc"}, &run); code != 200 {
		t.Fatalf("run: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Runtime struct {
			HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
			TotalAllocBytes uint64 `json:"total_alloc_bytes"`
			NumGC           uint32 `json:"num_gc"`
			GCPauseP99Ns    uint64 `json:"gc_pause_p99_ns"`
			Goroutines      int    `json:"goroutines"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	rt := m.Runtime
	if rt.HeapAllocBytes == 0 || rt.TotalAllocBytes < rt.HeapAllocBytes {
		t.Errorf("implausible heap accounting: %+v", rt)
	}
	if rt.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", rt.Goroutines)
	}
	if rt.NumGC == 0 && rt.GCPauseP99Ns != 0 {
		t.Errorf("pause %d ns reported with zero collections", rt.GCPauseP99Ns)
	}
}

// TestPprofHandler checks the opt-in profiler handler rstid mounts on its
// -pprof listener: the index and the named profiles answer, and the
// handler carries only debug routes (the API surface stays on the main
// mux).
func TestPprofHandler(t *testing.T) {
	ts := httptest.NewServer(PprofHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") || !strings.Contains(string(body), "heap") {
		t.Errorf("pprof index does not list the standard profiles:\n%s", body)
	}

	for _, name := range []string{"heap", "goroutine", "allocs"} {
		r, err := http.Get(ts.URL + "/debug/pprof/" + name + "?debug=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Errorf("profile %q: status %d", name, r.StatusCode)
		}
	}

	// No API route leaks onto the profiler listener.
	r, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode == 200 {
		t.Error("/v1/metrics answered on the pprof listener; API routes must stay off it")
	}
}

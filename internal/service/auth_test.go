package service

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rsti/internal/vm"
)

// TestTenantAuth covers the multi-tenant admission path: keys gate the
// costly endpoints, unknown keys are refused, rate quotas answer 429
// before the engine sees the request, and step-budget quotas clamp what
// any one run may spend.
func TestTenantAuth(t *testing.T) {
	tenants := []Tenant{
		{Key: "alpha-key", Name: "alpha", RatePerSec: 1, Burst: 2},
		{Key: "beta-key", Name: "beta", MaxStepBudget: 50},
	}
	ts, s := startServerCfg(t, Config{Workers: 2, Queue: 8, Tenants: tenants})

	// Clock injection: rate-limit tests must not sleep.
	now := time.Now()
	s.auth.now = func() time.Time { return now }

	t.Run("missing-key", func(t *testing.T) {
		var we wireError
		if code := post(t, ts.URL+"/v1/compile", compileRequest{Source: victimSrc}, &we); code != 401 {
			t.Fatalf("status %d, want 401", code)
		}
		if we.Error.Kind != KindUnauthorized {
			t.Errorf("kind = %q", we.Error.Kind)
		}
	})

	t.Run("unknown-key", func(t *testing.T) {
		var we wireError
		code := postHeaders(t, ts.URL+"/v1/compile",
			map[string]string{"Authorization": "Bearer wrong"}, compileRequest{Source: victimSrc}, &we)
		if code != 403 || we.Error.Kind != KindForbidden {
			t.Errorf("status %d kind %q, want 403 forbidden", code, we.Error.Kind)
		}
	})

	t.Run("open-endpoints-stay-open", func(t *testing.T) {
		for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/attacks"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("%s: status %d without a key, want 200", path, resp.StatusCode)
			}
		}
	})

	t.Run("bearer-and-x-api-key", func(t *testing.T) {
		for _, h := range []map[string]string{
			{"Authorization": "Bearer beta-key"},
			{"X-API-Key": "beta-key"},
		} {
			var comp compileResponse
			if code := postHeaders(t, ts.URL+"/v1/compile", h, compileRequest{Source: victimSrc}, &comp); code != 200 {
				t.Errorf("headers %v: status %d", h, code)
			}
		}
	})

	t.Run("rate-limit", func(t *testing.T) {
		hdr := map[string]string{"Authorization": "Bearer alpha-key"}
		// Burst of 2 admits two, refuses the third.
		for i := 0; i < 2; i++ {
			if code := postHeaders(t, ts.URL+"/v1/compile", hdr, compileRequest{Source: victimSrc}, nil); code != 200 {
				t.Fatalf("burst request %d: status %d", i, code)
			}
		}
		var we wireError
		if code := postHeaders(t, ts.URL+"/v1/compile", hdr, compileRequest{Source: victimSrc}, &we); code != 429 {
			t.Fatalf("over-rate request: status %d, want 429", code)
		}
		if we.Error.Kind != KindRateLimited {
			t.Errorf("kind = %q", we.Error.Kind)
		}
		// A second of refill admits exactly one more.
		now = now.Add(time.Second)
		if code := postHeaders(t, ts.URL+"/v1/compile", hdr, compileRequest{Source: victimSrc}, nil); code != 200 {
			t.Errorf("post-refill request: status %d", code)
		}
		if code := postHeaders(t, ts.URL+"/v1/compile", hdr, compileRequest{Source: victimSrc}, nil); code != 429 {
			t.Errorf("second post-refill request: status %d, want 429", code)
		}
		// Rate limiting is per tenant: beta is unaffected.
		if code := postHeaders(t, ts.URL+"/v1/compile",
			map[string]string{"Authorization": "Bearer beta-key"}, compileRequest{Source: victimSrc}, nil); code != 200 {
			t.Errorf("other tenant caught by alpha's limit: status %d", code)
		}
	})

	t.Run("step-budget-clamp", func(t *testing.T) {
		hdr := map[string]string{"Authorization": "Bearer beta-key"}
		// The victim needs thousands of steps; beta's quota of 50 must trap
		// it even though the request asked for unlimited.
		var run runResponse
		if code := postHeaders(t, ts.URL+"/v1/run", hdr, runRequest{Source: victimSrc}, &run); code != 200 {
			t.Fatalf("run: status %d", code)
		}
		if run.Trap == nil || run.Trap.Kind != vm.TrapMaxSteps.String() {
			t.Errorf("unbudgeted run under quota tenant: %+v, want %s trap", run, vm.TrapMaxSteps)
		}
		// Asking for more than the quota clamps down, not up.
		run = runResponse{}
		postHeaders(t, ts.URL+"/v1/run", hdr, runRequest{Source: victimSrc, StepBudget: 1_000_000}, &run)
		if run.Trap == nil || run.Trap.Kind != vm.TrapMaxSteps.String() {
			t.Errorf("over-quota budget not clamped: %+v", run)
		}
		// A request within quota keeps its own tighter budget semantics.
		run = runResponse{}
		postHeaders(t, ts.URL+"/v1/run", hdr, runRequest{Source: victimSrc, StepBudget: 10}, &run)
		if run.Trap == nil {
			t.Errorf("tight in-quota budget ignored: %+v", run)
		}
	})
}

// TestLoadTenants pins the tenants-file format and its validation.
func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "tenants.json")
	os.WriteFile(good, []byte(`[
		{"key": "k1", "name": "one", "rate_per_sec": 10, "burst": 20, "max_step_budget": 1000},
		{"key": "k2-long-key-name"}
	]`), 0o644)
	ts, err := LoadTenants(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Name != "one" || ts[0].RatePerSec != 10 {
		t.Fatalf("tenants: %+v", ts)
	}
	if ts[1].Name != "k2-long-" {
		t.Errorf("default name = %q, want key prefix", ts[1].Name)
	}

	bad := filepath.Join(dir, "bad.json")
	for name, content := range map[string]string{
		"no-key":    `[{"name": "x"}]`,
		"duplicate": `[{"key": "k"}, {"key": "k"}]`,
		"not-json":  `{`,
	} {
		os.WriteFile(bad, []byte(content), 0o644)
		if _, err := LoadTenants(bad); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestOpenMode pins the zero-config contract: no tenants → no auth, no
// quotas, everything works without keys.
func TestOpenMode(t *testing.T) {
	ts, _ := startServer(t)
	if code := post(t, ts.URL+"/v1/compile", compileRequest{Source: victimSrc}, nil); code != 200 {
		t.Fatalf("open-mode compile: status %d", code)
	}
}

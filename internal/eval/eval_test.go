package eval

import (
	"strings"
	"testing"

	"rsti/internal/report"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

func TestMeasureBenchmarkProducesOrderedOverheads(t *testing.T) {
	b := workload.SPEC2017()[0] // perlbench_r, pointer heavy
	row, err := MeasureBenchmark(b, sti.RSTIMechanisms)
	if err != nil {
		t.Fatal(err)
	}
	if row.BaseCycles == 0 || row.MemOps == 0 {
		t.Fatal("no baseline stats")
	}
	stc, stwc, stl := row.Overhead[sti.STC], row.Overhead[sti.STWC], row.Overhead[sti.STL]
	if !(stc > 0 && stwc > 0 && stl > 0) {
		t.Errorf("non-positive overheads: %v %v %v", stc, stwc, stl)
	}
	if !(stc <= stwc && stwc <= stl) {
		t.Errorf("ordering violated: STC=%.4f STWC=%.4f STL=%.4f", stc, stwc, stl)
	}
}

func TestNbenchOverheadsAreSmall(t *testing.T) {
	// nbench is the paper's near-zero-overhead suite (1.54% STWC).
	row, err := MeasureBenchmark(workload.NBench()[0], sti.RSTIMechanisms)
	if err != nil {
		t.Fatal(err)
	}
	if row.Overhead[sti.STWC] > 0.10 {
		t.Errorf("numeric-sort STWC overhead %.2f%% is implausibly high",
			row.Overhead[sti.STWC]*100)
	}
}

func TestMeasureTable1AllDetected(t *testing.T) {
	res, err := MeasureTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	partsMisses := 0
	for _, row := range res.Rows {
		if !row.Baseline.Succeeded {
			t.Errorf("%s: baseline attack failed", row.Scenario.Name)
		}
		for _, mech := range sti.RSTIMechanisms {
			if !row.Results[mech].Detected {
				t.Errorf("%s: %s missed the attack", row.Scenario.Name, mech)
			}
		}
		if !row.Results[sti.PARTS].Detected {
			partsMisses++
		}
	}
	if partsMisses == 0 {
		t.Error("PARTS missed nothing — the comparison should show bypasses")
	}
	out := res.Render()
	if !strings.Contains(out, "DOP ProFTPd") || !strings.Contains(out, "✓") {
		t.Error("render incomplete")
	}
}

func TestGeomeanAndSummary(t *testing.T) {
	if g := report.Geomean([]float64{0.10, 0.10}); g < 0.099 || g > 0.101 {
		t.Errorf("geomean = %v", g)
	}
	if g := report.Geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
	s := report.Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %+v", s)
	}
}

func TestPearsonOnSyntheticData(t *testing.T) {
	rows := []*OverheadRow{
		{PACOps: map[sti.Mechanism]int64{sti.STWC: 100}, Overhead: map[sti.Mechanism]float64{sti.STWC: 0.01}},
		{PACOps: map[sti.Mechanism]int64{sti.STWC: 200}, Overhead: map[sti.Mechanism]float64{sti.STWC: 0.02}},
		{PACOps: map[sti.Mechanism]int64{sti.STWC: 300}, Overhead: map[sti.Mechanism]float64{sti.STWC: 0.03}},
	}
	if p := Pearson(rows, sti.STWC); p < 0.999 {
		t.Errorf("perfectly correlated data: pearson = %v", p)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &report.Table{Title: "t", Headers: []string{"a", "bb"}}
	tb.Add("x", "y")
	out := tb.String()
	if !strings.Contains(out, "a   bb") && !strings.Contains(out, "a  bb") {
		t.Errorf("unaligned header: %q", out)
	}
}

func TestTable3AndCensusRendering(t *testing.T) {
	entries, err := MeasureTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 18 {
		t.Fatalf("entries = %d", len(entries))
	}
	t3 := RenderTable3(entries)
	for _, want := range []string{"perlbench", "xalancbmk", "ECV-STWC"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 render missing %q", want)
		}
	}
	census := RenderPPCensus(entries)
	if !strings.Contains(census, "TOTAL") || !strings.Contains(census, "7489") {
		t.Errorf("census render incomplete:\n%s", census)
	}
	// Census totals in the paper's neighbourhood.
	total, special := 0, 0
	for _, e := range entries {
		total += e.PPTotal
		special += e.PPCE
	}
	if total < 6000 || total > 9500 {
		t.Errorf("pp sites = %d, paper reports 7489", total)
	}
	if special < 15 || special > 35 {
		t.Errorf("special sites = %d, paper reports 25", special)
	}
}

func TestEngineThroughputBitIdentical(t *testing.T) {
	benches := []*workload.Benchmark{workload.SPEC2017()[0], workload.NBench()[0]}
	points, err := measureEngineThroughput(benches, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		if p.Jobs != len(benches)*4 {
			t.Errorf("%d workers: jobs = %d, want %d", p.Workers, p.Jobs, len(benches)*4)
		}
		if !p.BitIdentical {
			t.Errorf("%d workers: engine runs diverged from the sequential reference", p.Workers)
		}
		if p.InstrsPerSec <= 0 || p.Instrs <= 0 {
			t.Errorf("%d workers: empty throughput point %+v", p.Workers, p)
		}
	}
	if s := ScalingOver1(points); s < 1 {
		t.Errorf("scaling = %v, want >= 1", s)
	}
}

func TestFigure9ShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full overhead sweep")
	}
	f, err := MeasureFigure9()
	if err != nil {
		t.Fatal(err)
	}
	// Per-suite and overall orderings the paper reports.
	for suite, g := range f.Geomeans {
		if !(g[sti.STC] <= g[sti.STWC]+1e-9 && g[sti.STWC] <= g[sti.STL]+1e-9) {
			t.Errorf("%s: geomeans not ordered: %v", suite, g)
		}
	}
	if f.Geomeans["nbench"][sti.STWC] >= f.Geomeans["SPEC2006"][sti.STWC] {
		t.Error("nbench is not the cheapest suite")
	}
	// The headline range: overall STWC within a few points of 5.29%.
	all := f.Overall[sti.STWC]
	if all < 0.02 || all > 0.12 {
		t.Errorf("overall STWC geomean %.2f%% far from the paper's 5.29%%", all*100)
	}
	// Correlation claim (§6.3.2).
	if r := Pearson(f.Rows["SPEC2006"], sti.STWC); r < 0.7 {
		t.Errorf("SPEC2006 Pearson r = %.2f, paper reports 0.75-0.8", r)
	}
	if out := f.RenderFigure9(); !strings.Contains(out, "Geomean-all") {
		t.Error("Figure 9 render incomplete")
	}
	if out := f.RenderFigure10(); !strings.Contains(out, "median") {
		t.Error("Figure 10 render incomplete")
	}
}

package eval

import (
	"fmt"
	"sort"
	"time"
)

// LatencyQuantiles summarizes a latency distribution in milliseconds.
// rstiload records one per request class (compile, buffered run,
// streaming run).
type LatencyQuantiles struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	Count int     `json:"count"`
}

// Quantiles computes the p50/p95/p99/max summary of a sample set.
// The zero value is returned for an empty sample.
func Quantiles(samples []time.Duration) LatencyQuantiles {
	if len(samples) == 0 {
		return LatencyQuantiles{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		// Nearest-rank on the sorted sample: index ceil(q*n)-1.
		idx := int(q*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return float64(sorted[idx]) / float64(time.Millisecond)
	}
	return LatencyQuantiles{
		P50Ms: at(0.50),
		P95Ms: at(0.95),
		P99Ms: at(0.99),
		MaxMs: float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
		Count: len(sorted),
	}
}

// LoadTestRecord is one rstiload datapoint: many concurrent sessions,
// each a compile followed by runs (buffered or streamed over SSE),
// driven through the /v1 HTTP service. It captures service-level
// latency and throughput the per-component microbenchmarks cannot see:
// admission, cache coalescing, JSON marshalling, and engine queueing
// under contention.
type LoadTestRecord struct {
	Sessions    int     `json:"sessions"`
	Concurrency int     `json:"concurrency"`
	Workers     int     `json:"workers"`
	Programs    int     `json:"programs"`
	StreamShare float64 `json:"stream_share"`

	WallSeconds    float64 `json:"wall_seconds"`
	Requests       int     `json:"requests"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	Errors         int     `json:"errors"`
	// Mismatches counts runs whose modelled numbers diverged from the
	// first observation of the same program x mechanism — the
	// bit-identity contract checked under load.
	Mismatches int `json:"mismatches"`

	CompileLatency LatencyQuantiles  `json:"compile_latency"`
	RunLatency     LatencyQuantiles  `json:"run_latency"`
	StreamLatency  *LatencyQuantiles `json:"stream_latency,omitempty"`

	// CacheHitRate is the fraction of compile requests the service
	// answered from its program handle table (the response's cached
	// flag) — repeat compiles that never re-entered the pipeline.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Summary renders the load-test datapoint as a human-readable report.
func (l *LoadTestRecord) Summary() string {
	s := fmt.Sprintf(
		"load test: %d sessions x %d concurrent (%d workers, %d programs, %.0f%% streamed)\n"+
			"  wall clock:           %8.2f s\n"+
			"  throughput:           %8.1f req/s (%d requests, %d errors, %d mismatches)\n"+
			"  compile latency:      p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n"+
			"  run latency:          p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms",
		l.Sessions, l.Concurrency, l.Workers, l.Programs, l.StreamShare*100,
		l.WallSeconds,
		l.RequestsPerSec, l.Requests, l.Errors, l.Mismatches,
		l.CompileLatency.P50Ms, l.CompileLatency.P95Ms, l.CompileLatency.P99Ms, l.CompileLatency.MaxMs,
		l.RunLatency.P50Ms, l.RunLatency.P95Ms, l.RunLatency.P99Ms, l.RunLatency.MaxMs)
	if l.StreamLatency != nil {
		s += fmt.Sprintf(
			"\n  stream latency:       p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms",
			l.StreamLatency.P50Ms, l.StreamLatency.P95Ms, l.StreamLatency.P99Ms, l.StreamLatency.MaxMs)
	}
	s += fmt.Sprintf("\n  cache hit rate:       %8.2f %%", l.CacheHitRate*100)
	return s
}

package eval

import (
	"strings"
	"testing"

	"rsti/internal/report"
	"rsti/internal/sti"
)

// TestMeasureSecurity runs the full security measurement pass — partition
// statistics, attack synthesis and the Table 3 cross-check — and demands
// a violation-free record. This is the dashboard's own end-to-end gate:
// every synthesized tamper must execute to its predicted detect/miss
// outcome on every workload.
func TestMeasureSecurity(t *testing.T) {
	rec, err := MeasureSecurity("test")
	if err != nil {
		t.Fatal(err)
	}
	if v := SecurityViolations(rec); len(v) > 0 {
		t.Fatalf("security violations:\n  %s", strings.Join(v, "\n  "))
	}
	if len(rec.Workloads) != 3 {
		t.Fatalf("got %d workloads, want the 3 security configurations", len(rec.Workloads))
	}

	byName := make(map[string]report.WorkloadSecurity)
	for _, w := range rec.Workloads {
		byName[w.Name] = w
	}

	// The Adaptive gradient: sec-popular's pool crosses the ECV threshold,
	// so Adaptive must bind location there and split the big STWC class,
	// while on sec-small (below threshold) it coincides with STWC.
	pop := byName["sec-popular"]
	if a, s := pop.Mechs[sti.Adaptive.String()], pop.Mechs[sti.STWC.String()]; a.LargestClass >= s.LargestClass {
		t.Errorf("sec-popular: Adaptive largest class (%d) not below STWC (%d)", a.LargestClass, s.LargestClass)
	}
	small := byName["sec-small"]
	if a, s := small.Mechs[sti.Adaptive.String()], small.Mechs[sti.STWC.String()]; a.ReplayPairs != s.ReplayPairs {
		t.Errorf("sec-small: Adaptive replay surface (%d) differs from STWC (%d) below the threshold",
			a.ReplayPairs, s.ReplayPairs)
	}

	// The cast gradient: sec-cast's bridges must widen STC's surface
	// strictly beyond STWC's.
	cast := byName["sec-cast"]
	if c, s := cast.Mechs[sti.STC.String()], cast.Mechs[sti.STWC.String()]; c.ReplayPairs <= s.ReplayPairs {
		t.Errorf("sec-cast: STC replay surface (%d) not beyond STWC (%d)", c.ReplayPairs, s.ReplayPairs)
	}

	// Every workload exercises all four tamper families.
	for _, w := range rec.Workloads {
		if len(w.SynthFamilies) != 4 {
			t.Errorf("%s: synthesized families %v, want all 4", w.Name, w.SynthFamilies)
		}
	}

	// The cross-check covers the full static corpus.
	if len(rec.Table3) == 0 {
		t.Error("no Table 3 cross-check rows")
	}

	// The rendered dashboard carries every workload and mechanism row.
	md := rec.Markdown()
	for _, w := range rec.Workloads {
		if !strings.Contains(md, "| "+w.Name+" | rsti-stl |") {
			t.Errorf("dashboard missing the %s STL row", w.Name)
		}
	}
}

// TestSecurityViolationsCatchesTampering mutates a healthy record the
// ways a broken mechanism would and checks each is flagged — the
// dashboard is only worth its CI gate if weakening a mechanism's key
// derivation (collapsing classes) cannot pass silently.
func TestSecurityViolationsCatchesTampering(t *testing.T) {
	healthy := func() *report.SecurityRecord {
		ws := report.WorkloadSecurity{
			Name: "w",
			Mechs: map[string]report.MechSecurity{
				"parts":         {Classes: 4, Members: 20, LargestClass: 8, ReplayPairs: 40},
				"rsti-stwc":     {Classes: 6, Members: 20, LargestClass: 6, ReplayPairs: 25},
				"rsti-stc":      {Classes: 5, Members: 20, LargestClass: 8, ReplayPairs: 35},
				"rsti-adaptive": {Classes: 10, Members: 20, LargestClass: 4, ReplayPairs: 10},
				"rsti-stl":      {Classes: 20, Members: 20, LargestClass: 1, ReplayPairs: 0},
			},
			SynthTampers:   8,
			SynthConfirmed: 8,
			ConfirmedDetect: map[string]int{
				"parts": 5, "rsti-stwc": 6, "rsti-stc": 5, "rsti-adaptive": 6, "rsti-stl": 7,
			},
			ConfirmedMiss: map[string]int{
				"parts": 3, "rsti-stwc": 2, "rsti-stc": 3, "rsti-adaptive": 2, "rsti-stl": 1,
			},
		}
		return &report.SecurityRecord{Label: "t", Workloads: []report.WorkloadSecurity{ws}}
	}
	if v := SecurityViolations(healthy()); len(v) > 0 {
		t.Fatalf("healthy record flagged: %v", v)
	}

	mutations := []struct {
		name string
		mut  func(*report.SecurityRecord)
		want string
	}{
		{"class-collapse", func(r *report.SecurityRecord) {
			// A weakened STL key derivation collapses singletons back into
			// shared classes — the mutation drill in docs/TESTING.md.
			r.Workloads[0].Mechs["rsti-stl"] = report.MechSecurity{
				Classes: 6, Members: 20, LargestClass: 6, ReplayPairs: 25}
		}, "STL not fully singleton"},
		{"lattice-break", func(r *report.SecurityRecord) {
			m := r.Workloads[0].Mechs["rsti-adaptive"]
			m.Classes = 3
			r.Workloads[0].Mechs["rsti-adaptive"] = m
		}, "class-count lattice violated"},
		{"population-drift", func(r *report.SecurityRecord) {
			m := r.Workloads[0].Mechs["rsti-stc"]
			m.Members = 18
			r.Workloads[0].Mechs["rsti-stc"] = m
		}, "protects 18 members"},
		{"unconfirmed-tamper", func(r *report.SecurityRecord) {
			r.Workloads[0].SynthConfirmed = 7
		}, "7/8 synthesized tampers"},
		{"lost-miss-coverage", func(r *report.SecurityRecord) {
			delete(r.Workloads[0].ConfirmedMiss, "rsti-stwc")
		}, "no confirmed missed tamper under rsti-stwc"},
		{"synth-problem", func(r *report.SecurityRecord) {
			r.Workloads[0].SynthProblems = []string{"prediction mismatch"}
		}, "prediction mismatch"},
		{"table3-mismatch", func(r *report.SecurityRecord) {
			r.Table3 = []report.Table3Check{{Name: "p", PartitionSTWC: 4, EquivSTWC: 5}}
		}, "table3 cross-check p"},
	}
	for _, m := range mutations {
		rec := healthy()
		m.mut(rec)
		v := SecurityViolations(rec)
		found := false
		for _, line := range v {
			if strings.Contains(line, m.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not flag %q", m.name, v, m.want)
		}
	}
}

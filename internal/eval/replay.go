package eval

import (
	"fmt"

	"rsti/internal/report"
	"rsti/internal/sti"
	"rsti/internal/workload"
)

// ReplayRow quantifies the paper's §7 replay discussion for one benchmark:
// how many substitutable pointer pairs each mechanism leaves an attacker.
// A pair is substitutable when both members share an enforcement class
// (same PAC modifier), so a validly signed value from one slot can be
// replayed into the other. STL's location binding always leaves zero.
type ReplayRow struct {
	Name string
	// Pairs is the number of unordered substitutable (variable, variable)
	// pairs per mechanism: Σ over classes of n·(n−1)/2.
	Pairs map[sti.Mechanism]int64
	// LargestClass is the biggest class per mechanism (the paper's
	// "82 equivalent variables" for perlbench under STWC).
	LargestClass map[sti.Mechanism]int
}

// replayMechs are the mechanisms whose surfaces differ meaningfully.
var replayMechs = []sti.Mechanism{sti.PARTS, sti.STWC, sti.STC, sti.Adaptive, sti.STL}

// MeasureReplaySurface computes the replay surface over the Table 3
// (analysis-sized) SPEC2006 programs.
func MeasureReplaySurface() ([]ReplayRow, error) {
	var out []ReplayRow
	for _, b := range workload.SPEC2006Static() {
		c, err := compileCached(b.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		out = append(out, replayRowFor(b.Name, c.Analysis))
	}
	return out, nil
}

func replayRowFor(name string, an *sti.Analysis) ReplayRow {
	row := ReplayRow{
		Name:         name,
		Pairs:        make(map[sti.Mechanism]int64),
		LargestClass: make(map[sti.Mechanism]int),
	}
	for _, mech := range replayMechs {
		p := an.Partition(mech)
		row.Pairs[mech] = p.ReplayPairs()
		row.LargestClass[mech] = p.Largest()
	}
	return row
}

// RenderReplaySurface formats the replay-surface table.
func RenderReplaySurface(rows []ReplayRow) string {
	t := &report.Table{
		Title: "§7 — replay attack surface: substitutable pointer pairs per mechanism\n" +
			"(pairs sharing one PAC modifier; STL's location binding leaves none)",
		Headers: []string{"BM", "PARTS", "STWC", "STC", "Adaptive", "STL"},
	}
	var totals [5]int64
	for _, r := range rows {
		t.Add(r.Name,
			fmt.Sprintf("%d", r.Pairs[sti.PARTS]),
			fmt.Sprintf("%d", r.Pairs[sti.STWC]),
			fmt.Sprintf("%d", r.Pairs[sti.STC]),
			fmt.Sprintf("%d", r.Pairs[sti.Adaptive]),
			fmt.Sprintf("%d", r.Pairs[sti.STL]))
		for i, mech := range replayMechs {
			totals[i] += r.Pairs[mech]
		}
	}
	t.Add("TOTAL",
		fmt.Sprintf("%d", totals[0]), fmt.Sprintf("%d", totals[1]),
		fmt.Sprintf("%d", totals[2]), fmt.Sprintf("%d", totals[3]),
		fmt.Sprintf("%d", totals[4]))
	return t.String()
}

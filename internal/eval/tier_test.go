package eval

import (
	"testing"

	"rsti/internal/core"
	"rsti/internal/sti"
	"rsti/internal/vm"
	"rsti/internal/workload"
)

// tierRunOptions lowers the promotion threshold so the golden workloads'
// functions compile to threaded bodies within a single run — the test
// must exercise promoted code, not an idle tier.
func tierRunOptions() vm.Options {
	o := vm.DefaultOptions()
	o.TierThreshold = 256
	return o
}

// TestGoldenCyclesTieredBitIdentical re-runs the golden workloads with
// the direct-threaded tier forced on and requires the pinned modelled
// cycles exactly: promotion, superinstruction dispatch, and batched
// accounting must not move a reported number by even one cycle.
func TestGoldenCyclesTieredBitIdentical(t *testing.T) {
	for _, g := range goldenCycles {
		b := g.pick()
		c, err := core.Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		for _, mech := range []sti.Mechanism{sti.None, sti.STWC, sti.STC, sti.STL} {
			cfg := core.RunConfig{
				Optimize: core.OptimizeOff,
				Tier:     core.TierOn,
				Options:  tierRunOptions(),
			}
			res, err := c.Run(mech, cfg)
			if err != nil {
				t.Fatalf("%s under %s: %v", g.name, mech, err)
			}
			if res.Err != nil {
				t.Fatalf("%s under %s trapped: %v", g.name, mech, res.Err)
			}
			if res.Stats.Cycles != g.want[mech] {
				t.Errorf("%s under %s (tiered): modelled cycles = %d, golden = %d",
					g.name, mech, res.Stats.Cycles, g.want[mech])
			}
			if res.Stats.ThreadedInstrs == 0 {
				t.Errorf("%s under %s: tier never engaged (0 threaded instrs); the equality is vacuous",
					g.name, mech)
			}
		}
	}
}

// TestPACDenseFusedShareFloor pins the superinstruction selector's
// coverage on the PAC-dense kernel: a meaningful share of its modelled
// instructions must retire through fused dispatch groups. Before the
// selector learned the aut→addr→access triples this share was under 1%
// (the kernel's authenticated accesses all go through field/index
// address computation), so the floor guards against the selector
// silently narrowing again.
func TestPACDenseFusedShareFloor(t *testing.T) {
	c, err := core.Compile(workload.PACDense().Source)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.OptimizeMode{core.OptimizeOff, core.OptimizeOn} {
		res, err := c.Run(sti.STWC, core.RunConfig{Optimize: mode})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("pac-dense trapped: %v", res.Err)
		}
		if share := res.Stats.FusedShare(); share < 0.2 {
			t.Errorf("optimize=%v: fused share = %.4f of %d instrs, want >= 0.2",
				mode, share, res.Stats.Instrs)
		}
	}
}

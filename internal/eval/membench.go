package eval

// Memory-behaviour measurement for the benchmark trajectory: the
// allocation and GC-pause profile of the steady-state run path. The
// zero-allocation execution core (flat predecoded images, pooled run
// arenas) is only as durable as its regression guard — these numbers ride
// BENCH_RESULTS.json next to instrs/s and get the same walk-back
// comparison, so a PR that quietly reintroduces per-run heap churn fails
// the trajectory check instead of surviving as invisible GC pressure.

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"rsti/internal/cminor"
	"rsti/internal/lower"
	"rsti/internal/rsti"
	"rsti/internal/sti"
	"rsti/internal/vm"
)

// MemBenchRecord is the memory-behaviour section of a trajectory
// datapoint. Unlike the throughput fields these are not omitempty-guarded
// by value — zero IS the expected steady state — so the whole section is
// a pointer on BenchRecord and absence means "not measured".
type MemBenchRecord struct {
	// AllocsPerRun / BytesPerRun: average heap allocations and bytes per
	// steady-state Reset+Run of the instrumented measurement workload on
	// the switch interpreter. The execution-core contract pins both at 0.
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`

	// TierAllocsPerRun is the same measurement with the direct-threaded
	// tier serving the run (promotion paid during warmup).
	TierAllocsPerRun float64 `json:"tier_allocs_per_run"`

	// GCPauseP99Ns is the 99th-percentile stop-the-world pause over the
	// process's recent GC history after the measurement loop (0 when the
	// loop provoked no collections — the steady state a zero-allocation
	// run path earns).
	GCPauseP99Ns float64 `json:"gc_pause_p99_ns"`

	// NumGC is how many collections the measurement loop itself triggered.
	NumGC uint32 `json:"num_gc"`

	// Runs is the measurement loop length behind the averages.
	Runs int `json:"runs"`
}

// memBenchSrc is the measurement workload: pointer-chasing through
// malloc'd structs so the instrumented build carries pac/aut traffic and
// fused superinstruction groups, and — deliberately — no printf and no
// exit(), whose host-side implementations allocate and would charge the
// harness's own formatting to the execution core.
const memBenchSrc = `
struct node { int v; struct node *next; };

int sum(struct node *p) {
	int s = 0;
	while (p != 0) {
		s = s + p->v;
		p = p->next;
	}
	return s;
}

int main(void) {
	struct node *head = 0;
	int i = 0;
	while (i < 128) {
		struct node *n = (struct node *)malloc(16);
		n->v = i;
		n->next = head;
		head = n;
		i = i + 1;
	}
	int r = 0;
	int k = 0;
	while (k < 400) {
		r = r + sum(head);
		k = k + 1;
	}
	return r & 255;
}
`

// memBenchRuns sizes the measurement loop: long enough to average away a
// stray background allocation, short enough to keep the trajectory pass
// quick (~100ms at current throughput).
const memBenchRuns = 30

// MeasureMemBench measures the steady-state allocation and GC profile of
// the run path and verifies the modelled numbers stay bit-identical from
// run to run while it does so.
func MeasureMemBench() (*MemBenchRecord, error) {
	f, err := cminor.Frontend(memBenchSrc)
	if err != nil {
		return nil, err
	}
	lowered, err := lower.Lower(f)
	if err != nil {
		return nil, err
	}
	prog, _, err := rsti.Instrument(lowered, sti.Analyze(lowered), sti.STC)
	if err != nil {
		return nil, err
	}

	// warm builds a resident machine the way an engine worker holds one
	// and pays all pool growth up front.
	warm := func(tier bool) (*vm.Machine, error) {
		opts := vm.DefaultOptions()
		opts.Image = vm.NewImage(prog)
		opts.Tier = tier
		m := vm.New(prog, opts)
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		m.Reset()
		if _, err := m.Run(); err != nil {
			return nil, err
		}
		return m, nil
	}

	interp, err := warm(false)
	if err != nil {
		return nil, err
	}
	wantStats := modelledStats(interp.Stats)
	rec := &MemBenchRecord{Runs: memBenchRuns}

	var runErr error
	cycle := func(m *vm.Machine) {
		m.Reset()
		if _, err := m.Run(); err != nil && runErr == nil {
			runErr = err
		}
		if got := modelledStats(m.Stats); got != wantStats && runErr == nil {
			runErr = fmt.Errorf("membench: modelled stats diverged across Reset+Run:\n got %+v\nwant %+v", got, wantStats)
		}
	}

	// Allocation count via the runtime's own accounting (GC-quiesced,
	// single-goroutine — the same instrument the AllocBudget tests pin at
	// zero).
	rec.AllocsPerRun = testing.AllocsPerRun(memBenchRuns, func() { cycle(interp) })
	if runErr != nil {
		return nil, runErr
	}

	// Bytes and GC activity over an un-quiesced loop: TotalAlloc and
	// NumGC are monotonic, so the deltas attribute exactly the loop.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < memBenchRuns; i++ {
		cycle(interp)
	}
	runtime.ReadMemStats(&after)
	if runErr != nil {
		return nil, runErr
	}
	rec.BytesPerRun = float64(after.TotalAlloc-before.TotalAlloc) / memBenchRuns
	rec.NumGC = after.NumGC - before.NumGC
	rec.GCPauseP99Ns = gcPauseP99(&after, rec.NumGC)

	// The tier's allocation budget, measured after its warmup run paid
	// promotion and compilation.
	tiered, err := warm(true)
	if err != nil {
		return nil, err
	}
	rec.TierAllocsPerRun = testing.AllocsPerRun(memBenchRuns, func() { cycle(tiered) })
	if runErr != nil {
		return nil, runErr
	}
	return rec, nil
}

// gcPauseP99 extracts the 99th-percentile pause from the MemStats pause
// ring, restricted to the n most recent collections (the ones the
// measurement loop caused). Zero collections → zero pause.
func gcPauseP99(ms *runtime.MemStats, n uint32) float64 {
	if n == 0 {
		return 0
	}
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	if n > ms.NumGC {
		n = ms.NumGC
	}
	pauses := make([]uint64, 0, n)
	for i := uint32(0); i < n; i++ {
		pauses = append(pauses, ms.PauseNs[(ms.NumGC-1-i)%uint32(len(ms.PauseNs))])
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	return float64(pauses[(len(pauses)-1)*99/100])
}

// Summary renders the memory section for the human-readable report.
func (m *MemBenchRecord) Summary() string {
	return fmt.Sprintf(
		"  steady-state allocs:  %8.2f /run interp, %.2f /run tier (%.1f B/run, %d GCs, p99 pause %.0f µs)",
		m.AllocsPerRun, m.TierAllocsPerRun, m.BytesPerRun, m.NumGC, m.GCPauseP99Ns/1e3)
}
